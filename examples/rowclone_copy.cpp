/**
 * @file
 * Scenario: a PuD-enabled memory manager using in-DRAM RowClone for
 * bulk page copies -- and what PuDHammer means for it.
 *
 * The first half demonstrates the functional side: copying data at
 * row granularity entirely inside the DRAM array (no data movement
 * over the memory channel).  The second half shows the reliability
 * side the paper uncovers: a copy-intensive workload disturbs the
 * neighbours of its copy rows far faster than ordinary accesses
 * would, and a compute-region policy (paper §8.1) contains it.
 */

#include <cstdio>

#include "hammer/patterns.h"
#include "hammer/tester.h"
#include "mitigation/countermeasures.h"
#include "util/args.h"

using namespace pud;
using namespace pud::hammer;

namespace {

/** Copy one row to another via RowClone (CoMRA). */
void
rowClone(bender::TestBench &bench, dram::BankId bank, dram::RowId src,
         dram::RowId dst)
{
    PatternTimings t;
    bender::Program p;
    p.act(bank, src, t.base.tRP)
        .pre(bank, t.base.tRAS)
        .act(bank, dst, t.comraPreToAct)
        .pre(bank, t.base.tRAS);
    bench.run(p);
}

} // namespace

int
main(int argc, char **argv)
{
    const Args args(argc, argv);
    dram::DeviceConfig cfg = dram::makeConfig(
        "HMA81GU7AFR8N-UH",
        static_cast<std::uint64_t>(args.getInt("seed", 7)));
    cfg.rowsPerSubarray = 128;
    ModuleTester tester(cfg);
    bender::TestBench &bench = tester.bench();
    dram::Device &dev = tester.device();

    // ---- functional demo: in-DRAM bulk copy --------------------------
    const dram::RowId src = 40, dst = 44;
    dram::RowData page(cfg.cols);
    for (dram::ColId c = 0; c < cfg.cols; ++c)
        page.set(c, (c * 2654435761u) & 0x10000);  // arbitrary payload
    bench.writeRow(0, src, page);

    rowClone(bench, 0, src, dst);
    const bool ok = bench.readRow(0, dst) == page;
    std::printf("[copy] RowClone %u -> %u: %s (zero bytes moved over "
                "the channel)\n",
                src, dst, ok ? "contents match" : "MISMATCH");

    // ---- reliability demo: the copy loop as an aggressor -------------
    // A memory manager that keeps copying between two fixed buffer
    // rows is, from the neighbours' point of view, running the
    // double-sided CoMRA access pattern of paper §4.
    const dram::RowId buf_a = 64, buf_b = 66, neighbour = 65;
    ModuleTester::Options opt;
    opt.searchWcdp = true;
    const auto copies_to_flip = tester.comraDouble(neighbour, opt);
    const auto rh_to_flip = tester.rhDouble(neighbour, opt);
    std::printf("[risk] copies between rows %u/%u until row %u "
                "corrupts: %llu (plain RowHammer would need %llu "
                "activations, %.1fx more)\n",
                buf_a, buf_b, neighbour,
                static_cast<unsigned long long>(copies_to_flip),
                static_cast<unsigned long long>(rh_to_flip),
                static_cast<double>(rh_to_flip) /
                    static_cast<double>(copies_to_flip));

    // An 8-bit SIMDRAM multiplication issues ~663 CoMRA/SiMRA ops
    // (paper §8.1); how many such operations until the first flip?
    std::printf("[risk] that is ~%llu eight-bit in-DRAM multiplies "
                "on adjacent operands\n",
                static_cast<unsigned long long>(copies_to_flip / 663));

    // ---- mitigation: compute-region policy ----------------------------
    mitigation::ComputeRegionPolicy policy(cfg.rowsPerSubarray, 16, 1);
    std::printf("\n[mitigation] compute region of %u rows, one row "
                "refreshed per SiMRA op:\n",
                policy.computeRows());
    std::printf("  worst-case ops a compute row endures between "
                "refreshes: %llu (SiMRA HC_first can be as low as "
                "26)\n",
                static_cast<unsigned long long>(
                    policy.maxOpsBetweenRefreshes()));
    std::printf("  copy with both operands in the storage region "
                "allowed? %s\n",
                policy.allowsComra(100, 120) ? "yes" : "no (blocked)");
    std::printf("  copy with one compute-region operand allowed? "
                "%s\n",
                policy.allowsComra(3, 120) ? "yes" : "no");

    (void)dev;
    return 0;
}
