/**
 * @file
 * Quickstart: simulate one COTS DDR4 module, reverse engineer its
 * internals through the command interface, and measure how much
 * multiple-row activation (PuD) amplifies read disturbance.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart [--seed=N]
 */

#include <cstdio>

#include "hammer/reveng.h"
#include "hammer/tester.h"
#include "util/args.h"

using namespace pud;
using namespace pud::hammer;

int
main(int argc, char **argv)
{
    const Args args(argc, argv);

    // 1. Plug a simulated SK Hynix 8Gb A-die module into the testbed
    //    (the module family the paper uses for the SiMRA and TRR
    //    studies; see dram::table2Families() for all 14).
    dram::DeviceConfig cfg = dram::makeConfig(
        "HMA81GU7AFR8N-UH",
        static_cast<std::uint64_t>(args.getInt("seed", 42)));
    cfg.rowsPerSubarray = 128;  // scaled-down geometry for the demo
    ModuleTester tester(cfg);

    std::printf("Module: %s (%s, %s %s-die)\n",
                cfg.profile.moduleId.c_str(), name(cfg.profile.mfr),
                cfg.profile.density.c_str(),
                cfg.profile.dieRev.c_str());

    // 2. Reverse engineer the in-DRAM row mapping, exactly like the
    //    paper's methodology (§3.2): hammer rows, watch who flips.
    const dram::MappingScheme scheme =
        identifyMappingScheme(tester, 0);
    std::printf("Recovered row mapping scheme : %s\n",
                dram::name(scheme));

    // 3. Recover subarray boundaries via RowClone success (§4.2).
    const auto subarrays = findSubarrayBoundaries(tester, 0);
    std::printf("Recovered subarray boundaries: %zu subarrays of %u "
                "rows\n",
                subarrays.size(),
                subarrays.size() > 1 ? subarrays[1] - subarrays[0]
                                     : tester.device().rowsPerBank());

    // 4. Discover a simultaneously-activated row group (§5.2).
    dram::Device &dev = tester.device();
    const auto group = discoverSimraGroup(tester, 0,
                                          dev.toLogical(64),
                                          dev.toLogical(70));
    std::printf("ACT(64)-PRE-ACT(70) simultaneously activates %zu "
                "rows\n",
                group.size());

    // 5. Measure the victim row 65's HC_first under each technique.
    const dram::RowId victim = 65;
    ModuleTester::Options opt;
    opt.searchWcdp = true;

    const auto rh = tester.rhDouble(victim, opt);
    const auto comra = tester.comraDouble(victim, opt);
    const auto simra = tester.simraDouble(victim, 4, opt);

    std::printf("\nHC_first of victim row %u (worst-case pattern, "
                "80C):\n", victim);
    std::printf("  double-sided RowHammer : %8llu hammers\n",
                static_cast<unsigned long long>(rh));
    std::printf("  double-sided CoMRA     : %8llu copy cycles "
                "(%.1fx fewer)\n",
                static_cast<unsigned long long>(comra),
                static_cast<double>(rh) / static_cast<double>(comra));
    std::printf("  double-sided SiMRA-4   : %8llu operations "
                "(%.1fx fewer)\n",
                static_cast<unsigned long long>(simra),
                static_cast<double>(rh) / static_cast<double>(simra));

    std::printf("\nTakeaway: Processing-using-DRAM operations can "
                "need orders of magnitude fewer operations than "
                "RowHammer to corrupt a neighbouring row.\n");
    return 0;
}
