/**
 * @file
 * Scenario: security evaluation of an in-DRAM TRR-protected module
 * against PuDHammer (paper §7).
 *
 * Runs three attackers against the same module -- the U-TRR N-sided
 * RowHammer pattern, the same pattern built from CoMRA copy cycles,
 * and paced SiMRA multi-row activations -- with the sampling TRR
 * mitigation off and on, and reports the induced bitflips.  SiMRA
 * sails past TRR because the sampler only ever sees the two issued
 * ACT addresses and the HC_first is far below one refresh interval's
 * ACT budget.
 */

#include <cstdio>

#include "hammer/experiment.h"
#include "util/args.h"

using namespace pud;
using namespace pud::hammer;

int
main(int argc, char **argv)
{
    const Args args(argc, argv);
    const auto seed =
        static_cast<std::uint64_t>(args.getInt("seed", 3));
    const auto hammers = static_cast<std::uint64_t>(
        args.getInt("hammers", 150000));

    std::printf("Target: SK Hynix 8Gb A-die DDR4 module with "
                "sampling TRR (window 450 ACTs)\n");
    std::printf("Budget: %llu hammers per aggressor, paced at 156 "
                "ACTs per tREFI\n\n",
                static_cast<unsigned long long>(hammers));

    struct Attack
    {
        TrrTechnique tech;
        int param;
        const char *description;
    };
    const Attack attacks[] = {
        {TrrTechnique::RowHammer, 2,
         "U-TRR 2-sided RowHammer + dummy-row flooding"},
        {TrrTechnique::Comra, 2,
         "same pattern built from CoMRA copy cycles"},
        {TrrTechnique::Simra, 16,
         "paced SiMRA-16 multi-row activations"},
    };

    for (const Attack &attack : attacks) {
        TrrConfig cfg;
        cfg.nSided = attack.param;
        cfg.simraN = attack.param;
        cfg.hammersPerAggressor = hammers;

        std::uint64_t flips[2];
        for (bool trr : {false, true}) {
            dram::DeviceConfig dev_cfg =
                dram::makeConfig("HMA81GU7AFR8N-UH", seed);
            dev_cfg.rowsPerSubarray = 128;
            ModuleTester tester(dev_cfg);
            flips[trr] =
                runTrrExperiment(tester, attack.tech, cfg, trr);
        }

        std::printf("%-48s: %6llu flips w/o TRR, %6llu w/ TRR",
                    attack.description,
                    static_cast<unsigned long long>(flips[0]),
                    static_cast<unsigned long long>(flips[1]));
        if (flips[0] > 0) {
            std::printf("  (TRR stops %.1f%%)",
                        100.0 * (1.0 - static_cast<double>(flips[1]) /
                                           static_cast<double>(
                                               flips[0])));
        }
        std::printf("\n");
    }

    std::printf("\nConclusion (paper Takeaway 9): SiMRA and CoMRA "
                "bypass the in-DRAM TRR mechanism; deployed "
                "RowHammer mitigations do not protect a PuD-enabled "
                "module.\n");
    return 0;
}
