/**
 * @file
 * Scenario: in-DRAM bitmap-index analytics (one of the PuD
 * applications motivating the paper) -- and the silent corruption it
 * inflicts on neighbouring storage rows.
 *
 * A bitmap index keeps one bit per record per predicate; conjunctive
 * queries are bulk bitwise ANDs, which PuD executes inside the DRAM
 * array without moving a byte over the channel.  This example runs a
 * query workload through the PudEngine, checks the results against a
 * CPU-side evaluation, and then audits the damage: the rows next to
 * the compute scratch block -- ordinary storage from the system's
 * point of view -- accumulate read disturbance with every query.
 */

#include <cstdio>

#include "pud/engine.h"
#include "util/args.h"
#include "util/rng.h"

using namespace pud;
using namespace pud::ops;

int
main(int argc, char **argv)
{
    const Args args(argc, argv);
    const auto queries = static_cast<int>(args.getInt("queries", 250000));
    const auto seed =
        static_cast<std::uint64_t>(args.getInt("seed", 11));

    dram::DeviceConfig cfg = dram::makeConfig("HMA81GU7AFR8N-UH", seed);
    cfg.banks = 1;
    cfg.subarraysPerBank = 2;
    cfg.rowsPerSubarray = 128;
    bender::TestBench bench(cfg);
    // Pre-flight lint every program the engine issues (on by default
    // only in debug builds): the example stays protocol-clean by
    // construction even as it is edited.
    bench.executor().setPreflight(true);
    PudEngine engine(bench, 0);
    Rng rng(seed);

    // ---- build the bitmap index ----------------------------------------
    // 6 predicate bitmaps over cfg.cols records, rows 100..105.
    const int predicates = 6;
    std::vector<dram::RowData> bitmaps;
    for (int p = 0; p < predicates; ++p) {
        dram::RowData bm(cfg.cols);
        for (dram::ColId c = 0; c < cfg.cols; ++c)
            bm.set(c, rng.chance(0.4));
        bench.writeRow(0, 100 + static_cast<dram::RowId>(p), bm);
        bitmaps.push_back(bm);
    }

    // "User data" rows adjacent to the compute area: row 47 borders
    // the scratch block (48..55) and row 57 borders the control row
    // the AND/OR helpers keep at 56.
    const dram::RowData user_data(cfg.cols, dram::DataPattern::PAA);
    dram::Device &dev = bench.device();
    const dram::RowId guard_lo = dev.toLogical(47);
    const dram::RowId guard_hi = dev.toLogical(57);
    bench.writeRow(0, guard_lo, user_data);
    bench.writeRow(0, guard_hi, user_data);

    // ---- run the query workload ------------------------------------------
    std::uint64_t result_population = 0;
    int wrong = 0;
    for (int q = 0; q < queries; ++q) {
        const int a = static_cast<int>(rng.below(predicates));
        int b = static_cast<int>(rng.below(predicates));
        if (b == a)
            b = (b + 1) % predicates;

        const auto out = engine.bitAnd(
            100 + static_cast<dram::RowId>(a),
            100 + static_cast<dram::RowId>(b), /*scratch=*/48);
        if (!out) {
            std::fprintf(stderr, "query failed\n");
            return 1;
        }
        // Validate against a CPU-side evaluation.
        for (dram::ColId c = 0; c < cfg.cols; ++c) {
            const bool expect = bitmaps[a].get(c) && bitmaps[b].get(c);
            if (out->get(c) != expect)
                ++wrong;
            result_population += out->get(c);
        }
    }

    const auto &stats = engine.stats();
    std::printf("[analytics] %d conjunctive queries over %u-record "
                "bitmaps: %llu matching bits, %d result errors\n",
                queries, cfg.cols,
                static_cast<unsigned long long>(result_population),
                wrong);
    std::printf("[analytics] PuD operations issued: %llu RowClone "
                "copies + %llu multi-row activations (zero bytes "
                "over the channel)\n",
                static_cast<unsigned long long>(stats.copies),
                static_cast<unsigned long long>(stats.simraOps));

    // ---- the PuDHammer audit ----------------------------------------------
    const std::size_t flips_lo =
        bench.countBitflips(0, guard_lo, user_data);
    const std::size_t flips_hi =
        bench.countBitflips(0, guard_hi, user_data);
    std::printf("\n[audit] storage rows adjacent to the compute "
                "block after the workload: %zu + %zu bitflips\n",
                flips_lo, flips_hi);
    if (flips_lo + flips_hi > 0) {
        std::printf("[audit] -> silent data corruption in rows the "
                    "queries never touched: exactly the PuDHammer "
                    "effect the paper characterizes.\n");
    } else {
        std::printf("[audit] no flips yet at this query count; rerun "
                    "with --queries=%d.\n", queries * 4);
    }

    // With a compute-region policy the same workload is contained.
    std::printf("\n[fix] rerunning with the paper's compute-region "
                "countermeasure (32-row region, refresh every op):\n");
    bender::TestBench bench2(cfg);
    bench2.executor().setPreflight(true);
    PudEngine engine2(bench2, 0);
    mitigation::ComputeRegionPolicy policy(cfg.rowsPerSubarray, 64, 1);
    engine2.setPolicy(&policy, 0);
    for (int p = 0; p < predicates; ++p)
        bench2.writeRow(0, 100 + static_cast<dram::RowId>(p),
                        bitmaps[p]);
    const auto guarded =
        engine2.bitAnd(100, 101, /*scratch=*/48);
    std::printf("[fix] storage-region operand query %s; compute rows "
                "are refreshed on schedule (%llu refreshes injected "
                "per op cycle)\n",
                guarded ? "allowed (one operand rule)" : "rejected",
                static_cast<unsigned long long>(
                    engine2.stats().policyRefreshes));
    return 0;
}
