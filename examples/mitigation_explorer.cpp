/**
 * @file
 * Scenario: a memory-controller architect sizing PRAC for a
 * PuD-enabled system (paper §8.2).
 *
 * Explores the security/performance trade-off of the weighted-
 * counting optimization: sweeps the per-SiMRA-operation counter
 * weight and reports (a) whether the configuration still catches the
 * worst-case SiMRA attack before its HC_first and (b) the system
 * performance cost on a multiprogrammed mix, using the cycle-level
 * controller simulator.
 */

#include <cstdio>

#include "hammer/patterns.h"
#include "lint/linter.h"
#include "mitigation/prac.h"
#include "sim/system.h"
#include "util/args.h"

using namespace pud;
using namespace pud::sim;

int
main(int argc, char **argv)
{
    const Args args(argc, argv);
    const double period_ns = args.getDouble("period", 1000.0);
    const int mix_index = static_cast<int>(args.getInt("mix", 0));

    // The paper's observed worst-case thresholds.
    const double hc_rowhammer = 4000;  // ~4K
    const double hc_simra = 20;        // ~20

    // The attack PRAC is sized against: the canonical SiMRA hammer at
    // the paper's worst-case HC_first (~20 operations).  Statically
    // validate it so the threat model this sweep defends against is a
    // protocol-correct program, not an artifact of a malformed one.
    {
        const dram::DeviceConfig dev_cfg =
            dram::makeConfig("HMA81GU7AFR8N-UH");
        const dram::RowMapping mapping(dev_cfg.profile.mapping);
        const auto attack = hammer::simraHammer(
            0, mapping.toLogical(64), mapping.toLogical(70),
            static_cast<std::uint64_t>(hc_simra), {});
        const auto report = lint::requireClean(
            attack, dev_cfg, "mitigation_explorer");
        std::printf("Worst-case SiMRA attack program lint-clean: "
                    "%zu insts, %zu warnings, duration %.2f us\n\n",
                    attack.insts().size(),
                    report.count(lint::Severity::Warning),
                    units::toUs(report.duration));
    }

    const auto mix = makeMix(mix_index);
    SystemConfig base;
    base.pudPeriod = units::fromNs(period_ns);
    const double ws_base = weightedSpeedup(base, mix);

    std::printf("Mix %d, PuD period %.0f ns, baseline weighted "
                "speedup %.3f\n\n",
                mix_index, period_ns, ws_base);
    std::printf("%-10s %-8s %-22s %-12s %-10s\n", "simra wt", "RDT",
                "catches SiMRA attack?", "norm. WS", "overhead");

    for (std::uint32_t weight : {1u, 10u, 50u, 200u, 400u}) {
        SystemConfig cfg = base;
        cfg.pracEnabled = true;
        cfg.prac.weighted = true;
        cfg.prac.simraWeight = weight;
        cfg.prac.comraWeight = 10;
        cfg.prac.rdt = static_cast<std::uint32_t>(hc_rowhammer);

        // Security check: with this weight, a SiMRA op advances the
        // counter by `weight`; the alert must fire within HC_first
        // (= 20) operations.
        const bool secure =
            static_cast<double>(weight) * hc_simra >= hc_rowhammer;

        const double ws = weightedSpeedup(cfg, mix);
        std::printf("%-10u %-8u %-22s %-12.3f %.2f%%\n", weight,
                    cfg.prac.rdt, secure ? "yes" : "NO (insecure)",
                    ws / ws_base, 100.0 * (1.0 - ws / ws_base));
    }

    std::printf("\nThe paper's choice (weight 200 = 4K/20) is the "
                "smallest secure weight: smaller weights are faster "
                "but let SiMRA reach its HC_first before the "
                "back-off fires; larger weights only add RFM "
                "traffic.\n");

    // Contrast with PRAC-AO's latency problem (§8.2): a SiMRA-32 op
    // would serialize 32 counter updates.
    mitigation::PracConfig ao;
    ao.areaOptimized = true;
    mitigation::PracCounters counters(ao, 1, 64);
    std::printf("\nPRAC-AO side note: a SiMRA-32 op blocks the bank "
                "an extra %.2f us for sequential counter updates "
                "(PRAC-PO: 0).\n",
                units::toUs(counters.updateLatency(32)));
    return 0;
}
