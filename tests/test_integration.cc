/**
 * @file
 * End-to-end integration tests: the paper's headline observations must
 * hold for full measurement pipelines running through the bender
 * executor against calibrated devices.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "hammer/experiment.h"
#include "stats/summary.h"

namespace {

using namespace pud;
using namespace pud::hammer;
using dram::RowId;

PopulationConfig
population(const char *family, bool odd_only = false)
{
    PopulationConfig cfg;
    cfg.moduleId = family;
    cfg.modules = 1;
    cfg.victimsPerSubarray = 8;
    cfg.oddOnly = odd_only;
    cfg.rowsPerSubarray = 128;
    cfg.seed = 99;
    return cfg;
}

TEST(Integration, Observation1And2ComraBeatsRowHammer)
{
    // Obs. 1/2: double-sided CoMRA lowers HC_first for the vast
    // majority of rows in every manufacturer.
    for (const char *family :
         {"HMA81GU7AFR8N-UH", "MTA18ASF4G72HZ-3G2F1",
          "M391A2G43BB2-CWE", "KVR24N17S8/8"}) {
        ModuleTester::Options opt;
        opt.searchWcdp = true;
        auto series = measurePopulation(
            population(family),
            {[&](ModuleTester &t, RowId v) {
                 return t.rhDouble(v, opt);
             },
             [&](ModuleTester &t, RowId v) {
                 return t.comraDouble(v, opt);
             }});
        series = dropIncomplete(series);
        ASSERT_GT(series[0].size(), 20u) << family;
        const auto change =
            stats::changeCurve(series[0], series[1]);
        // Fraction of rows with lower HC_first under CoMRA.
        EXPECT_GT(stats::fractionBelow(change, 0.0), 0.85) << family;
    }
}

TEST(Integration, Observation12SimraExtremeReductions)
{
    // Obs. 12: >= 25% of victim rows show > 99% HC_first reduction.
    // The extreme-reduction fraction is a tail statistic, so this test
    // samples more victims per subarray than its siblings to keep the
    // estimate's standard error well inside the 0.25 - 0.20 margin.
    ModuleTester::Options opt;
    opt.pattern = dram::DataPattern::P00;
    PopulationConfig cfg = population("HMA81GU7AFR8N-UH", true);
    cfg.victimsPerSubarray = 24;
    auto series = measurePopulation(
        cfg,
        {[&](ModuleTester &t, RowId v) { return t.rhDouble(v, opt); },
         [&](ModuleTester &t, RowId v) {
             return t.simraDouble(v, 4, opt);
         }});
    series = dropIncomplete(series);
    ASSERT_GT(series[0].size(), 20u);
    const auto change = stats::changeCurve(series[0], series[1]);
    EXPECT_GT(stats::fractionBelow(change, -99.0), 0.20);
}

TEST(Integration, Observation4ComraTemperatureTrends)
{
    // SK Hynix: hotter is worse; Micron: inverted.
    auto mean_hc = [](const char *family, double temp) {
        ModuleTester::Options opt;
        auto series = measurePopulation(
            population(family),
            {[&](ModuleTester &t, RowId v) {
                t.bench().thermo().setTarget(temp);
                return t.comraDouble(v, opt);
            }});
        series = dropIncomplete(series);
        return stats::boxStats(series[0]).mean;
    };
    EXPECT_GT(mean_hc("HMA81GU7AFR8N-UH", 50.0),
              1.5 * mean_hc("HMA81GU7AFR8N-UH", 80.0));
    EXPECT_LT(mean_hc("MTA18ASF4G72HZ-3G2F1", 50.0),
              mean_hc("MTA18ASF4G72HZ-3G2F1", 80.0));
}

TEST(Integration, Observation6PressingBeatsHammering)
{
    // Takeaway 3: pressing with CoMRA beats hammering with CoMRA.
    ModuleTester::Options hammer_opt;
    ModuleTester::Options press_opt;
    press_opt.timings.tAggOn = units::fromNs(70200);
    auto series = measurePopulation(
        population("MTA18ASF4G72HZ-3G2F1"),
        {[&](ModuleTester &t, RowId v) {
             return t.comraDouble(v, hammer_opt);
         },
         [&](ModuleTester &t, RowId v) {
             return t.comraDouble(v, press_opt);
         }});
    series = dropIncomplete(series);
    const double mean_hammer = stats::boxStats(series[0]).mean;
    const double mean_press = stats::boxStats(series[1]).mean;
    // Obs. 6: ~78x average reduction for Micron at 70.2us.
    EXPECT_GT(mean_hammer / mean_press, 30.0);
}

TEST(Integration, Observation8DelaySweepRaisesHcFirst)
{
    ModuleTester::Options fast, slow;
    fast.timings.comraPreToAct = units::fromNs(7.5);
    slow.timings.comraPreToAct = units::fromNs(12.0);
    auto series = measurePopulation(
        population("HMA81GU7AFR8N-UH"),
        {[&](ModuleTester &t, RowId v) {
             return t.comraDouble(v, fast);
         },
         [&](ModuleTester &t, RowId v) {
             return t.comraDouble(v, slow);
         }});
    series = dropIncomplete(series);
    const double ratio = stats::boxStats(series[1]).mean /
                         stats::boxStats(series[0]).mean;
    // Obs. 8: 3.10x for SK Hynix.
    EXPECT_GT(ratio, 2.0);
    EXPECT_LT(ratio, 4.5);
}

TEST(Integration, Observation14OppositeFlipDirections)
{
    // SiMRA flips are dominantly 1 -> 0, RowHammer 0 -> 1: the
    // all-ones victim favours SiMRA, the all-zeros victim RowHammer.
    ModuleTester::Options aggr00, aggrFF;
    aggr00.pattern = dram::DataPattern::P00;  // victim 0xFF
    aggrFF.pattern = dram::DataPattern::PFF;  // victim 0x00
    auto series = measurePopulation(
        population("HMA81GU7AFR8N-UH", true),
        {[&](ModuleTester &t, RowId v) {
             return t.simraDouble(v, 8, aggr00);
         },
         [&](ModuleTester &t, RowId v) {
             return t.simraDouble(v, 8, aggrFF);
         }});
    // Victim 0xFF must flip far more easily than victim 0x00 under
    // SiMRA (Obs. 13: up to 57.8x).
    const auto clean = dropIncomplete(series);
    if (clean[0].size() > 10) {
        EXPECT_GT(stats::boxStats(clean[1]).mean,
                  3.0 * stats::boxStats(clean[0]).mean);
    } else {
        // Many victim-0x00 rows simply never flip in the budget.
        std::size_t noflip_ff_victim = 0;
        for (double x : series[1])
            noflip_ff_victim += std::isnan(x);
        std::size_t noflip_00_aggr = 0;
        for (double x : series[0])
            noflip_00_aggr += std::isnan(x);
        EXPECT_GT(noflip_ff_victim, 2 * noflip_00_aggr);
    }
}

TEST(Integration, Observation17SingleSidedSimraScalesWithN)
{
    ModuleTester::Options opt;
    opt.pattern = dram::DataPattern::P00;
    // Single-sided SiMRA is only ~1.2-1.5x stronger than single-sided
    // RowHammer (Obs. 16), so the budget must extend past the
    // single-refresh-window bound like the paper's multi-window runs.
    opt.search.maxHammers = 4000000;
    // Victims bordering N-aligned blocks: block base = v + 1.
    auto measure = [&](int n) {
        PopulationConfig cfg = population("HMA81GU7AFR8N-UH");
        ModuleTester tester(dram::makeConfig(cfg.moduleId, cfg.seed));
        std::vector<double> hcs;
        const RowId rps =
            tester.device().config().rowsPerSubarray;
        for (RowId block = 64; block + 32 < 2 * rps; block += 64) {
            const RowId victim = block - 1;
            if (!tester.planSimraSingle(victim, n))
                continue;
            const auto hc = tester.simraSingle(victim, n, opt);
            if (hc != kNoFlip)
                hcs.push_back(static_cast<double>(hc));
        }
        return stats::boxStats(hcs).mean;
    };
    const double hc2 = measure(2);
    const double hc32 = measure(32);
    ASSERT_GT(hc2, 0.0);
    ASSERT_GT(hc32, 0.0);
    // Obs. 17: average HC_first decreases as N grows (1.47x for 32 vs 2).
    EXPECT_LT(hc32, hc2);
}

TEST(Integration, Observation24TripleComboStrongest)
{
    ModuleTester::Options opt;
    auto series = measurePopulation(
        population("HMA81GU7AFR8N-UH", true),
        {[&](ModuleTester &t, RowId v) { return t.rhDouble(v, opt); },
         [&](ModuleTester &t, RowId v) {
             ModuleTester::CombinedSpec spec;
             spec.comraFraction = 0.9;
             return t.combinedRh(v, spec, opt);
         },
         [&](ModuleTester &t, RowId v) {
             ModuleTester::CombinedSpec spec;
             spec.comraFraction = 0.9;
             spec.simraFraction = 0.9;
             return t.combinedRh(v, spec, opt);
         }});
    series = dropIncomplete(series);
    ASSERT_GT(series[0].size(), 15u);
    const double rh = stats::boxStats(series[0]).mean;
    const double rh_comra = stats::boxStats(series[1]).mean;
    const double rh_both = stats::boxStats(series[2]).mean;
    // Obs. 22/24: combining reduces the RowHammer requirement, and
    // the triple combination is the strongest.
    EXPECT_LT(rh_comra, rh);
    EXPECT_LT(rh_both, rh_comra);
}

TEST(Integration, NanyaSolidPatternsYieldNoFlips)
{
    ModuleTester::Options solid;
    solid.pattern = dram::DataPattern::P00;
    solid.search.maxHammers = 300000;
    const auto series = measurePopulation(
        population("KVR24N17S8/8"),
        {[&](ModuleTester &t, RowId v) {
            return t.comraDouble(v, solid);
        }});
    std::size_t noflip = 0;
    for (double x : series[0])
        noflip += std::isnan(x);
    // Footnote 1: no bitflips within the refresh window with solid
    // patterns on Nanya chips.
    EXPECT_EQ(noflip, series[0].size());
}

} // namespace
