/**
 * @file
 * Unit tests for the declarative PuD op-semantics table: geometry
 * rules, reopen-window classification against the device model's
 * behaviour, tie-ability of replication weights, and the control-row
 * selection at subarray boundaries.
 */

#include <gtest/gtest.h>

#include "dram/config.h"
#include "pud/semantics.h"

namespace {

using namespace pud;
using namespace pud::semantics;

Geometry
smallGeom(dram::RowId rows_per_subarray = 64,
          dram::SubarrayId subarrays = 2, bool simra = true)
{
    Geometry g;
    g.rowsPerSubarray = rows_per_subarray;
    g.rowsPerBank = rows_per_subarray * subarrays;
    g.supportsSimra = simra;
    return g;
}

const dram::TimingParams kT{};

TEST(Semantics, GeometryOfConfig)
{
    dram::DeviceConfig cfg = dram::makeConfig("HMA81GU7AFR8N-UH");
    cfg.subarraysPerBank = 4;
    cfg.rowsPerSubarray = 32;
    const Geometry g = geometryOf(cfg);
    EXPECT_EQ(g.rowsPerSubarray, 32u);
    EXPECT_EQ(g.rowsPerBank, 128u);
    EXPECT_TRUE(g.supportsSimra);
    EXPECT_EQ(g.subarrayOf(31), 0u);
    EXPECT_EQ(g.subarrayOf(32), 1u);
    EXPECT_TRUE(g.sameSubarray(0, 31));
    EXPECT_FALSE(g.sameSubarray(31, 32));
}

// ---- reopen classification ---------------------------------------------

TEST(Semantics, ClassifyReopenComraWindow)
{
    const Geometry g = smallGeom();
    // Full tRAS restore, reopen inside the CoMRA window, same
    // subarray, different row: a copy.
    EXPECT_EQ(classifyReopen(kT, g, 10, 12, kT.tRAS,
                             units::fromNs(7.5)),
              ReopenClass::ComraCopy);
    // Same row: no copy, plain reopen.
    EXPECT_EQ(classifyReopen(kT, g, 10, 10, kT.tRAS,
                             units::fromNs(7.5)),
              ReopenClass::Conventional);
    // Cross-subarray: the bitline charge cannot cross.
    EXPECT_EQ(classifyReopen(kT, g, 10, 70, kT.tRAS,
                             units::fromNs(7.5)),
              ReopenClass::Conventional);
    // Gap beyond the window: conventional.
    EXPECT_EQ(classifyReopen(kT, g, 10, 12, kT.tRAS,
                             kT.comraMaxPreToAct + units::ns),
              ReopenClass::Conventional);
    // Short restore disqualifies CoMRA (and is not SiMRA-grade).
    EXPECT_EQ(classifyReopen(kT, g, 10, 12, kT.tRAS / 2,
                             units::fromNs(7.5)),
              ReopenClass::Conventional);
}

TEST(Semantics, ClassifyReopenSimraWindow)
{
    const Geometry g = smallGeom();
    const Time t_on = units::fromNs(3);
    const Time gap = units::fromNs(3);
    EXPECT_EQ(classifyReopen(kT, g, 8, 15, t_on, gap),
              ReopenClass::SimraGroup);
    // Unsupported chip: the violating commands are ignored.
    EXPECT_EQ(classifyReopen(kT, smallGeom(64, 2, false), 8, 15, t_on,
                             gap),
              ReopenClass::SimraIgnored);
    // Same row reissued: degenerate single-wordline set, falls back
    // to conventional (not CoMRA either -- same row).
    EXPECT_EQ(classifyReopen(kT, g, 8, 8, t_on, gap),
              ReopenClass::Conventional);
    // Cross-subarray: no group forms.
    EXPECT_EQ(classifyReopen(kT, g, 8, 70, t_on, gap),
              ReopenClass::Conventional);
}

TEST(Semantics, SimraActivatedSetMatchesDecoder)
{
    const Geometry g = smallGeom();
    const auto set = simraActivatedSet(g, 8, 15);  // hd 3 -> 8 rows
    ASSERT_EQ(set.size(), 8u);
    for (dram::RowId r = 8; r < 16; ++r)
        EXPECT_EQ(set[r - 8], r);
}

// ---- CoMRA copy ---------------------------------------------------------

TEST(Semantics, ComraCopyEffects)
{
    const Geometry g = smallGeom();
    const MacroEffect e = comraCopy(g, 10, 20);
    ASSERT_TRUE(e.valid);
    EXPECT_EQ(e.reads, std::vector<dram::RowId>{10});
    EXPECT_EQ(e.writes, std::vector<dram::RowId>{20});
    EXPECT_TRUE(e.clobbered.empty());

    EXPECT_FALSE(comraCopy(g, 10, 10).valid);
    EXPECT_FALSE(comraCopy(g, 10, 100).valid);  // other subarray
    EXPECT_FALSE(comraCopy(g, 10, 500).valid);  // outside the bank
}

// ---- SiMRA group write --------------------------------------------------

TEST(Semantics, SimraGroupWriteEffects)
{
    const Geometry g = smallGeom();
    const MacroEffect e = simraGroupWrite(g, 35, 8);
    ASSERT_TRUE(e.valid);
    ASSERT_EQ(e.writes.size(), 8u);
    EXPECT_EQ(e.writes.front(), 32u);
    EXPECT_EQ(e.writes.back(), 39u);

    EXPECT_FALSE(simraGroupWrite(g, 35, 3).valid);
    EXPECT_FALSE(simraGroupWrite(g, 35, 0).valid);
    EXPECT_FALSE(simraGroupWrite(g, 35, -8).valid);
    EXPECT_FALSE(simraGroupWrite(g, 35, 64).valid);
    EXPECT_FALSE(simraGroupWrite(smallGeom(64, 2, false), 35, 8).valid);
    // 32-row block at base 32 would reach past the 64-row subarray
    // only when rowsPerSubarray < 32; with rps 16 the 32-block crosses.
    EXPECT_FALSE(simraGroupWrite(smallGeom(16, 4), 5, 32).valid);
}

// ---- tie-ability --------------------------------------------------------

TEST(Semantics, TieableSubsetSum)
{
    // The engine's canonical replications are tie-free.
    EXPECT_FALSE(tieable({3, 3, 2}, 8));
    EXPECT_FALSE(tieable({4, 3, 3, 3, 3}, 16));
    // Naive even splits tie.
    EXPECT_TRUE(tieable({4, 4}, 8));
    EXPECT_TRUE(tieable({2, 2, 4}, 8));
    EXPECT_TRUE(tieable({1, 3, 4}, 8));
    EXPECT_TRUE(tieable({8, 8}, 16));
    // A single operand replicated n times can never tie (the subset
    // summing to n/2 would need to split one operand's weight).
    EXPECT_FALSE(tieable({8}, 8));
    // Odd n never ties.
    EXPECT_FALSE(tieable({3, 2}, 5));
}

// ---- replicated majority ------------------------------------------------

TEST(Semantics, ReplicatedMajorityPlanStagesInOrder)
{
    const Geometry g = smallGeom();
    const MajorityPlan plan =
        replicatedMajorityPlan(g, {50, 51, 52}, {3, 3, 2}, 43, 8);
    ASSERT_TRUE(plan.effect.valid);
    EXPECT_FALSE(plan.tieable);
    EXPECT_EQ(plan.base, 40u);
    ASSERT_EQ(plan.staging.size(), 8u);
    const std::vector<std::pair<dram::RowId, dram::RowId>> want{
        {50, 40}, {50, 41}, {50, 42}, {51, 43},
        {51, 44}, {51, 45}, {52, 46}, {52, 47}};
    EXPECT_EQ(plan.staging, want);
    EXPECT_EQ(plan.effect.reads,
              (std::vector<dram::RowId>{50, 51, 52}));
    ASSERT_EQ(plan.effect.writes.size(), 8u);
    EXPECT_TRUE(plan.effect.clobbered.empty());
}

TEST(Semantics, ReplicatedMajorityPlanRejections)
{
    const Geometry g = smallGeom();
    // Shape errors.
    EXPECT_FALSE(replicatedMajorityPlan(g, {1, 2, 3}, {3, 3}, 43, 8)
                     .effect.valid);
    EXPECT_FALSE(replicatedMajorityPlan(g, {1, 2, 3}, {3, 3, 3}, 43, 8)
                     .effect.valid);
    EXPECT_FALSE(replicatedMajorityPlan(g, {1, 2, 3}, {4, 4, 0}, 43, 8)
                     .effect.valid);
    EXPECT_FALSE(replicatedMajorityPlan(g, {}, {}, 43, 8).effect.valid);
    // Operand in another subarray.
    EXPECT_FALSE(
        replicatedMajorityPlan(g, {1, 100, 3}, {3, 3, 2}, 43, 8)
            .effect.valid);
    // Rejections must not emit any row sets.
    const MajorityPlan r =
        replicatedMajorityPlan(g, {1, 2, 3}, {3, 3}, 43, 8);
    EXPECT_TRUE(r.effect.reads.empty());
    EXPECT_TRUE(r.effect.writes.empty());
    EXPECT_TRUE(r.staging.empty());
}

TEST(Semantics, ReplicatedMajorityPlanMarksTieableAsClobber)
{
    const Geometry g = smallGeom();
    const MajorityPlan plan =
        replicatedMajorityPlan(g, {50, 51}, {4, 4}, 43, 8);
    ASSERT_TRUE(plan.effect.valid);
    EXPECT_TRUE(plan.tieable);
    // A tie-able merge leaves the block undefined, not written.
    EXPECT_TRUE(plan.effect.writes.empty());
    ASSERT_EQ(plan.effect.clobbered.size(), 8u);
}

// ---- control-row selection ----------------------------------------------

TEST(Semantics, AndOrControlRowFlanks)
{
    const Geometry g = smallGeom();  // 2 x 64-row subarrays
    // Interior block: the row after the block.
    EXPECT_EQ(andOrControlRow(g, 43).value(), 48u);
    // Last block of the subarray: the row before.
    EXPECT_EQ(andOrControlRow(g, 57).value(), 55u);
    // First block of the *bank*: base - 1 would underflow / cross; the
    // flank after the block is used instead.
    EXPECT_EQ(andOrControlRow(g, 0).value(), 8u);
    // First block of subarray 1: base - 1 would cross into subarray 0;
    // flank after is valid.
    EXPECT_EQ(andOrControlRow(g, 64).value(), 72u);
    // Subarray exactly one block wide: no flank exists.
    EXPECT_FALSE(andOrControlRow(smallGeom(8, 4), 0).has_value());
}

} // namespace
