/**
 * @file
 * Unit tests for the SiMRA row-decoder model.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "dram/simra_decoder.h"

namespace {

using namespace pud::dram;

TEST(SimraDecoder, SameRowIsSingle)
{
    const SimraDecoder d(512);
    const auto set = d.activatedSet(100, 100);
    ASSERT_EQ(set.size(), 1u);
    EXPECT_EQ(set[0], 100u);
}

TEST(SimraDecoder, HammingOneGivesPair)
{
    const SimraDecoder d(512);
    const auto set = d.activatedSet(100, 101);  // differ in bit 0
    ASSERT_EQ(set.size(), 2u);
    EXPECT_EQ(set[0], 100u);
    EXPECT_EQ(set[1], 101u);
}

TEST(SimraDecoder, FourRowCombination)
{
    const SimraDecoder d(512);
    // Offsets 0b000 and 0b110 differ in bits 1, 2: combos {0, 2, 4, 6}.
    const auto set = d.activatedSet(64, 64 + 6);
    ASSERT_EQ(set.size(), 4u);
    EXPECT_EQ(set, (std::vector<RowId>{64, 66, 68, 70}));
}

TEST(SimraDecoder, ThirtyTwoRowContiguousBlock)
{
    const SimraDecoder d(512);
    // Hamming distance 5 including bit 0: rows 0..31.
    const auto set = d.activatedSet(0, 31);
    ASSERT_EQ(set.size(), 32u);
    for (RowId i = 0; i < 32; ++i)
        EXPECT_EQ(set[i], i);
}

TEST(SimraDecoder, HammingFiveWithoutBitZeroFallsBack)
{
    const SimraDecoder d(512);
    // Bits 1..5 differ (mask 0b111110): unresolvable, only the issued
    // rows activate (paper footnote 3: no sandwiched victims were
    // found for 32-row activation).
    const auto set = d.activatedSet(0, 62);
    ASSERT_EQ(set.size(), 2u);
    EXPECT_EQ(set[0], 0u);
    EXPECT_EQ(set[1], 62u);
}

TEST(SimraDecoder, HammingSixFallsBack)
{
    const SimraDecoder d(512);
    const auto set = d.activatedSet(0, 63);  // 6 differing bits
    ASSERT_EQ(set.size(), 2u);
}

TEST(SimraDecoder, SubarrayOffsetsRespected)
{
    const SimraDecoder d(512);
    // Rows in the second subarray: the combination stays there.
    const auto set = d.activatedSet(512 + 8, 512 + 14);
    ASSERT_EQ(set.size(), 4u);
    for (RowId r : set) {
        EXPECT_GE(r, 512u);
        EXPECT_LT(r, 1024u);
    }
}

TEST(SimraDecoder, ResultIsSortedAndContainsIssuedRows)
{
    const SimraDecoder d(1024);
    const auto set = d.activatedSet(200, 216 + 6);  // hd of (200, 222)
    EXPECT_TRUE(std::is_sorted(set.begin(), set.end()));
    EXPECT_TRUE(std::find(set.begin(), set.end(), 200u) != set.end());
    EXPECT_TRUE(std::find(set.begin(), set.end(), 222u) != set.end());
}

/** Group size is 2^hamming-distance for resolvable pairs. */
class SizeSweep : public ::testing::TestWithParam<int>
{};

TEST_P(SizeSweep, PowerOfTwoSizes)
{
    const int k = GetParam();
    const SimraDecoder d(512);
    // Mask with bits 0..k-1: rows base..base+2^k-1.
    const RowId base = 128;
    const RowId mask = (RowId(1) << k) - 1;
    const auto set = d.activatedSet(base, base + mask);
    EXPECT_EQ(set.size(), std::size_t(1) << k);
}

INSTANTIATE_TEST_SUITE_P(Hamming, SizeSweep, ::testing::Values(1, 2, 3, 4, 5));

} // namespace
