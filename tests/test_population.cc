/**
 * @file
 * Tests for the fleet-scale sweep pipeline: shard planning, streaming
 * sketch sweeps, and checkpoint/resume.
 *
 * The measures here are cheap deterministic functions of (module seed,
 * victim) rather than real hammering -- the properties under test are
 * orchestration invariants (slot alignment, jobs-determinism,
 * resume bit-equivalence), not disturbance physics.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "hammer/hcfirst.h"
#include "hammer/population.h"

namespace {

using namespace pud;
using namespace pud::hammer;

PopulationConfig
tinyPopulation(int modules = 4)
{
    PopulationConfig cfg;
    cfg.moduleId = "HMA81GU7AFR8N-UH";
    cfg.modules = modules;
    cfg.victimsPerSubarray = 2;
    cfg.rowsPerSubarray = 64;
    cfg.seed = 7;
    return cfg;
}

/**
 * Deterministic stand-in for an HC_first measure: distinguishes module
 * instances through their per-module seed and victims through the row
 * id, and reports kNoFlip for every fourth victim so the NaN/dropped
 * path is exercised.
 */
std::uint64_t
fakeMeasure(ModuleTester &t, dram::RowId v)
{
    if (v % 4 == 3)
        return kNoFlip;
    return t.device().config().seed * 100000 + v;
}

// ---------------------------------------------------------------------------
// Shard planning (slot alignment audit, incl. empty modules)
// ---------------------------------------------------------------------------

TEST(PlanShards, ModuleGranularityCoversSlotsInOrder)
{
    const PopulationConfig cfg = tinyPopulation(3);
    const std::size_t victims = populationVictims(cfg).size();
    ASSERT_GT(victims, 0u);

    const auto shards = planPopulationShards(cfg, victims);
    ASSERT_EQ(shards.size(), 3u);
    for (std::size_t i = 0; i < shards.size(); ++i) {
        EXPECT_EQ(shards[i].module, static_cast<int>(i));
        EXPECT_EQ(shards[i].victimBegin, 0u);
        EXPECT_EQ(shards[i].victimEnd, victims);
        EXPECT_EQ(shards[i].slotBase, i * victims);
    }
}

/**
 * Regression guard for the empty-module audit: a module with no
 * victims must still produce exactly one shard, *in module order*, so
 * shard index stays aligned with slot order and telemetry reports
 * every instance.
 */
TEST(PlanShards, EmptyModulesKeepShardOrderAlignedWithSlots)
{
    PopulationConfig cfg = tinyPopulation(5);
    cfg.victimsPerSubarray = 0;
    EXPECT_TRUE(populationVictims(cfg).empty());

    const auto shards = planPopulationShards(cfg, 0);
    ASSERT_EQ(shards.size(), 5u);
    for (std::size_t i = 0; i < shards.size(); ++i) {
        EXPECT_EQ(shards[i].module, static_cast<int>(i));
        EXPECT_EQ(shards[i].victimBegin, 0u);
        EXPECT_EQ(shards[i].victimEnd, 0u);
        EXPECT_EQ(shards[i].slotBase, 0u);
    }
}

TEST(PlanShards, ChunkLargerThanVictimListYieldsOneFullChunk)
{
    PopulationConfig cfg = tinyPopulation(2);
    cfg.perVictimChunks = true;
    cfg.victimChunk = 1000;  // far more than the victim list
    const std::size_t victims = populationVictims(cfg).size();
    ASSERT_GT(victims, 0u);
    ASSERT_LT(victims, 1000u);

    const auto shards = planPopulationShards(cfg, victims);
    ASSERT_EQ(shards.size(), 2u);
    for (std::size_t i = 0; i < shards.size(); ++i) {
        EXPECT_EQ(shards[i].module, static_cast<int>(i));
        EXPECT_EQ(shards[i].victimBegin, 0u);
        EXPECT_EQ(shards[i].victimEnd, victims);
        EXPECT_EQ(shards[i].slotBase, i * victims);
    }
}

TEST(PlanShards, ChunkedSlotBasesAreMonotonicAndExhaustive)
{
    PopulationConfig cfg = tinyPopulation(3);
    cfg.perVictimChunks = true;
    cfg.victimChunk = 5;
    const std::size_t victims = populationVictims(cfg).size();
    ASSERT_GT(victims, 5u);  // force several chunks per module

    const auto shards = planPopulationShards(cfg, victims);
    std::size_t expected_slot = 0;
    int last_module = -1;
    for (const ShardPlan &s : shards) {
        EXPECT_GE(s.module, last_module);
        last_module = s.module;
        EXPECT_LT(s.victimBegin, s.victimEnd);
        EXPECT_LE(s.victimEnd - s.victimBegin, 5u);
        // Chunks tile [0, victims) per module; slotBase tracks exactly.
        EXPECT_EQ(s.slotBase, expected_slot);
        expected_slot += s.victimEnd - s.victimBegin;
    }
    EXPECT_EQ(expected_slot, 3 * victims);
}

// ---------------------------------------------------------------------------
// Fingerprint
// ---------------------------------------------------------------------------

TEST(Fingerprint, SensitiveToEveryWorkDefiningKnob)
{
    const PopulationConfig base = tinyPopulation();
    const std::uint64_t fp = populationFingerprint(base, 2);

    EXPECT_EQ(populationFingerprint(base, 2), fp);  // stable

    PopulationConfig c = base;
    c.seed = 8;
    EXPECT_NE(populationFingerprint(c, 2), fp);
    c = base;
    c.modules += 1;
    EXPECT_NE(populationFingerprint(c, 2), fp);
    c = base;
    c.victimsPerSubarray += 1;
    EXPECT_NE(populationFingerprint(c, 2), fp);
    c = base;
    c.oddOnly = true;
    EXPECT_NE(populationFingerprint(c, 2), fp);
    c = base;
    c.moduleId = "K4A8G085WB-BCPB";
    EXPECT_NE(populationFingerprint(c, 2), fp);
    c = base;
    c.rowsPerSubarray = 128;
    EXPECT_NE(populationFingerprint(c, 2), fp);
    c = base;
    c.perVictimChunks = true;
    EXPECT_NE(populationFingerprint(c, 2), fp);
    EXPECT_NE(populationFingerprint(base, 3), fp);

    // jobs must NOT enter the fingerprint: a checkpoint written at one
    // parallelism must resume at any other.
    c = base;
    c.jobs = 8;
    EXPECT_EQ(populationFingerprint(c, 2), fp);
}

// ---------------------------------------------------------------------------
// Sweep
// ---------------------------------------------------------------------------

TEST(Sweep, SketchAgreesWithExpectedSamples)
{
    const PopulationConfig cfg = tinyPopulation(2);
    const auto victims = populationVictims(cfg);
    const SweepResult r = sweepPopulation(cfg, {fakeMeasure});

    ASSERT_EQ(r.sketches.size(), 1u);
    std::uint64_t finite = 0, noflip = 0;
    double sum = 0.0;
    for (int m = 0; m < cfg.modules; ++m) {
        const auto dev = populationDeviceConfig(cfg, m);
        for (dram::RowId v : victims) {
            if (v % 4 == 3) {
                ++noflip;
            } else {
                ++finite;
                sum += static_cast<double>(dev.seed * 100000 + v);
            }
        }
    }
    EXPECT_EQ(r.sketches[0].count(), finite);
    EXPECT_EQ(r.sketches[0].dropped(), noflip);
    EXPECT_NEAR(r.sketches[0].sum(), sum, 1e-6);
    EXPECT_EQ(r.totalShards, 2u);
    EXPECT_EQ(r.resumedShards, 0u);
    EXPECT_EQ(r.telemetry.shards.size(), 2u);
    EXPECT_EQ(r.telemetry.workUnits(), victims.size() * 2);
}

TEST(Sweep, ByteIdenticalAcrossJobs)
{
    PopulationConfig cfg = tinyPopulation(6);
    cfg.jobs = 1;
    const std::string baseline =
        sweepPopulation(cfg, {fakeMeasure}).sketches[0].serialize();
    for (int jobs : {2, 8}) {
        cfg.jobs = jobs;
        EXPECT_EQ(
            sweepPopulation(cfg, {fakeMeasure}).sketches[0].serialize(),
            baseline)
            << "jobs=" << jobs;
    }
}

/**
 * Lazy-threshold equivalence under a *real* HC_first search: a fleet
 * whose testers materialize every row up front (the pre-fleet-scale
 * behavior) must report bit-identical HC_first values to the lazy
 * default.  This is the end-to-end guarantee behind the counter-based
 * per-row RNG streams.
 */
TEST(Sweep, LazySweepMatchesEagerlyMaterializedSweep)
{
    PopulationConfig cfg = tinyPopulation(2);
    cfg.victimsPerSubarray = 1;
    ModuleTester::Options opt;
    const MeasureFn real = [&](ModuleTester &t, dram::RowId v) {
        return t.rhDouble(v, opt);
    };

    const SweepResult lazy = sweepPopulation(cfg, {real});

    PopulationConfig eager_cfg = cfg;
    eager_cfg.setup = [&](ModuleTester &t) {
        t.device().materializeAllRows();
    };
    const SweepResult eager = sweepPopulation(eager_cfg, {real});

    EXPECT_GT(lazy.sketches[0].count(), 0u)
        << "search budget found no flips; equivalence would be vacuous";
    EXPECT_EQ(lazy.sketches[0].serialize(),
              eager.sketches[0].serialize());
}

TEST(Sweep, EmptyPopulationProducesEmptySketches)
{
    PopulationConfig cfg = tinyPopulation(3);
    cfg.victimsPerSubarray = 0;
    const SweepResult r = sweepPopulation(cfg, {fakeMeasure});
    ASSERT_EQ(r.sketches.size(), 1u);
    EXPECT_EQ(r.sketches[0].count(), 0u);
    EXPECT_EQ(r.totalShards, 3u);  // one empty shard per module
    EXPECT_EQ(r.telemetry.workUnits(), 0u);
}

// ---------------------------------------------------------------------------
// Checkpoint / resume
// ---------------------------------------------------------------------------

class CheckpointTest : public ::testing::Test
{
  protected:
    std::string
    path(const char *name) const
    {
        return ::testing::TempDir() + "popckpt_" + name + "_" +
               std::to_string(::testing::UnitTest::GetInstance()
                                  ->random_seed()) +
               ".txt";
    }

    /**
     * Keep the header plus the first `records` complete shard records
     * (each is one "shard=" line followed by one "sk " line per
     * measure), plus `extra_lines` lines of the following record --
     * nonzero simulates a crash mid-append.
     */
    static void
    truncateCheckpoint(const std::string &file, std::size_t records,
                       std::size_t measures,
                       std::size_t extra_lines = 0)
    {
        std::ifstream in(file);
        ASSERT_TRUE(in);
        std::ostringstream kept;
        std::string line;
        ASSERT_TRUE(std::getline(in, line));  // header
        kept << line << '\n';
        const std::size_t keep =
            records * (1 + measures) + extra_lines;
        for (std::size_t i = 0; i < keep; ++i) {
            ASSERT_TRUE(std::getline(in, line));
            kept << line << '\n';
        }
        in.close();
        std::ofstream out(file, std::ios::trunc);
        out << kept.str();
    }
};

TEST_F(CheckpointTest, ResumeAfterPrefixTruncationIsBitIdentical)
{
    PopulationConfig cfg = tinyPopulation(5);
    cfg.jobs = 2;
    const std::string file = path("prefix");

    SweepOptions opt;
    opt.checkpointPath = file;
    const SweepResult full = sweepPopulation(cfg, {fakeMeasure}, opt);
    const std::string want = full.sketches[0].serialize();
    EXPECT_EQ(full.resumedShards, 0u);

    truncateCheckpoint(file, 2, 1);
    const SweepResult resumed =
        sweepPopulation(cfg, {fakeMeasure}, opt);
    EXPECT_EQ(resumed.resumedShards, 2u);
    EXPECT_EQ(resumed.totalShards, 5u);
    EXPECT_EQ(resumed.sketches[0].serialize(), want);
    // Resumed shard telemetry is restored from the file, not zeroed.
    EXPECT_EQ(resumed.telemetry.workUnits(),
              full.telemetry.workUnits());

    // A second resume from the now-complete file computes nothing.
    const SweepResult replay =
        sweepPopulation(cfg, {fakeMeasure}, opt);
    EXPECT_EQ(replay.resumedShards, 5u);
    EXPECT_EQ(replay.sketches[0].serialize(), want);
    std::remove(file.c_str());
}

TEST_F(CheckpointTest, TornTailRecordIsDiscardedNotFatal)
{
    PopulationConfig cfg = tinyPopulation(4);
    const std::string file = path("torn");

    SweepOptions opt;
    opt.checkpointPath = file;
    const std::string want =
        sweepPopulation(cfg, {fakeMeasure}, opt).sketches[0].serialize();

    // One complete record, then only the "shard=" line of the next --
    // exactly what a crash between the two appended lines leaves.
    truncateCheckpoint(file, 1, 1, 1);
    const SweepResult resumed =
        sweepPopulation(cfg, {fakeMeasure}, opt);
    EXPECT_EQ(resumed.resumedShards, 1u);
    EXPECT_EQ(resumed.sketches[0].serialize(), want);
    std::remove(file.c_str());
}

TEST_F(CheckpointTest, ResumeIsIdenticalAcrossJobsValues)
{
    PopulationConfig cfg = tinyPopulation(6);
    cfg.jobs = 1;
    const std::string file = path("jobs");

    SweepOptions opt;
    opt.checkpointPath = file;
    const std::string want =
        sweepPopulation(cfg, {fakeMeasure}, opt).sketches[0].serialize();

    truncateCheckpoint(file, 3, 1);
    cfg.jobs = 8;  // resume at a different parallelism
    const SweepResult resumed =
        sweepPopulation(cfg, {fakeMeasure}, opt);
    EXPECT_EQ(resumed.resumedShards, 3u);
    EXPECT_EQ(resumed.sketches[0].serialize(), want);
    std::remove(file.c_str());
}

TEST_F(CheckpointTest, MismatchedFingerprintIsFatal)
{
    PopulationConfig cfg = tinyPopulation(2);
    const std::string file = path("mismatch");

    SweepOptions opt;
    opt.checkpointPath = file;
    sweepPopulation(cfg, {fakeMeasure}, opt);

    cfg.seed = 99;  // same file, different population
    EXPECT_DEATH(sweepPopulation(cfg, {fakeMeasure}, opt),
                 "different sweep configuration");
    std::remove(file.c_str());
}

} // namespace
