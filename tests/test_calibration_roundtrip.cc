/**
 * @file
 * Calibration round-trip property: for every Table 2 family, a
 * measured victim population's average HC_first must land near the
 * paper's anchors, and the technique ordering (SiMRA < CoMRA < RH on
 * minima) must hold.  This is the end-to-end guarantee behind every
 * bench binary.
 */

#include <gtest/gtest.h>

#include "hammer/experiment.h"
#include "stats/summary.h"

namespace {

using namespace pud;
using namespace pud::hammer;

class CalibrationRoundTrip : public ::testing::TestWithParam<int>
{};

TEST_P(CalibrationRoundTrip, AveragesTrackTable2Anchors)
{
    const auto &family = dram::table2Families()[GetParam()];

    PopulationConfig cfg;
    cfg.moduleId = family.moduleId;
    cfg.modules = 1;
    cfg.victimsPerSubarray = 6;
    cfg.oddOnly = family.supportsSimra;
    cfg.rowsPerSubarray = 128;
    cfg.seed = 7;

    ModuleTester::Options opt;
    opt.searchWcdp = true;

    std::vector<MeasureFn> measures = {
        [&](ModuleTester &t, dram::RowId v) {
            return t.rhDouble(v, opt);
        },
        [&](ModuleTester &t, dram::RowId v) {
            return t.comraDouble(v, opt);
        }};
    if (family.supportsSimra) {
        measures.push_back([&](ModuleTester &t, dram::RowId v) {
            return t.simraDouble(v, 4, opt);
        });
    }

    auto series = measurePopulation(cfg, measures);
    series = dropIncomplete(series);
    ASSERT_GT(series[0].size(), 20u);

    const auto rh = stats::boxStats(series[0]);
    const auto comra = stats::boxStats(series[1]);

    // Averages within 2x of the paper's anchors at this small
    // population (they converge with more rows).
    EXPECT_GT(rh.mean, family.rhAvg / 2.0) << family.moduleId;
    EXPECT_LT(rh.mean, family.rhAvg * 2.0) << family.moduleId;
    EXPECT_GT(comra.mean, family.comraAvg / 2.5) << family.moduleId;
    EXPECT_LT(comra.mean, family.comraAvg * 2.5) << family.moduleId;

    // Technique ordering on population minima (Obs. 1, Table 2).
    EXPECT_LT(comra.min, rh.min) << family.moduleId;
    if (family.supportsSimra) {
        const auto simra = stats::boxStats(series[2]);
        EXPECT_LT(simra.min, comra.min) << family.moduleId;
        // SiMRA minima sit orders of magnitude below RowHammer.
        EXPECT_LT(simra.min, rh.min / 10.0) << family.moduleId;
    }
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, CalibrationRoundTrip,
                         ::testing::Range(0, 14));

} // namespace
