/**
 * @file
 * Unit tests for the blind reverse-engineering algorithms.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "hammer/reveng.h"

namespace {

using namespace pud;
using namespace pud::hammer;
using dram::DeviceConfig;
using dram::MappingScheme;

DeviceConfig
smallConfig(const std::string &family, std::uint64_t seed = 11)
{
    DeviceConfig cfg = dram::makeConfig(family, seed);
    cfg.banks = 1;
    cfg.subarraysPerBank = 4;
    cfg.rowsPerSubarray = 64;
    cfg.cols = 256;
    return cfg;
}

TEST(RevEng, DisturbanceNeighborsArePhysicalNeighbors)
{
    ModuleTester t(smallConfig("HMA81GU7AFR8N-UH"));
    dram::Device &dev = t.device();
    const dram::RowId aggr_logical = 40;
    const auto flipped =
        findDisturbanceNeighbors(t, 0, aggr_logical);
    ASSERT_FALSE(flipped.empty());

    // Every flipped row must be within physical distance 2.
    const dram::RowId phys = dev.toPhysical(aggr_logical);
    for (dram::RowId f : flipped) {
        const auto d = static_cast<std::int64_t>(dev.toPhysical(f)) -
                       static_cast<std::int64_t>(phys);
        EXPECT_LE(std::abs(d), 2) << "logical " << f;
    }
    // And both physical distance-1 neighbours must appear.
    for (int d : {-1, 1}) {
        const dram::RowId n = dev.toLogical(phys + d);
        EXPECT_TRUE(std::find(flipped.begin(), flipped.end(), n) !=
                    flipped.end());
    }
}

class SchemeRecovery
    : public ::testing::TestWithParam<const char *>
{};

TEST_P(SchemeRecovery, IdentifiesConfiguredScheme)
{
    ModuleTester t(smallConfig(GetParam()));
    const MappingScheme truth =
        t.device().config().profile.mapping;
    EXPECT_EQ(identifyMappingScheme(t, 0), truth);
}

INSTANTIATE_TEST_SUITE_P(
    Families, SchemeRecovery,
    ::testing::Values("HMA81GU7AFR8N-UH",     // XorFold
                      "M391A2G43BB2-CWE",     // MirroredPairs
                      "MTA18ASF4G72HZ-3G2F1"  // Sequential
                      ));

TEST(RevEng, RowCloneWorksWithinSubarrayOnly)
{
    ModuleTester t(smallConfig("HMA81GU7AFR8N-UH"));
    EXPECT_TRUE(rowCloneWorks(t, 0, 10, 20));
    EXPECT_TRUE(rowCloneWorks(t, 0, 20, 10));
    // Across the subarray boundary at row 64: no copy.
    EXPECT_FALSE(rowCloneWorks(t, 0, 60, 70));
}

TEST(RevEng, SubarrayBoundariesRecovered)
{
    ModuleTester t(smallConfig("M391A2G43BB2-CWE"));
    const auto starts = findSubarrayBoundaries(t, 0);
    EXPECT_EQ(starts,
              (std::vector<dram::RowId>{0, 64, 128, 192}));
}

TEST(RevEng, SimraGroupDiscoveryMatchesDecoder)
{
    ModuleTester t(smallConfig("HMA81GU7AFR8N-UH"));
    dram::Device &dev = t.device();
    // Physical rows 16 and 22: group {16, 18, 20, 22}.
    const auto group =
        discoverSimraGroup(t, 0, dev.toLogical(16), dev.toLogical(22));
    std::vector<dram::RowId> phys;
    for (auto g : group)
        phys.push_back(dev.toPhysical(g));
    std::sort(phys.begin(), phys.end());
    EXPECT_EQ(phys, (std::vector<dram::RowId>{16, 18, 20, 22}));
}

TEST(RevEng, SimraGroupEmptyOnNonSimraChip)
{
    ModuleTester t(smallConfig("MTA18ASF4G72HZ-3G2F1"));
    dram::Device &dev = t.device();
    const auto group =
        discoverSimraGroup(t, 0, dev.toLogical(16), dev.toLogical(22));
    // The chip ignored the sequence: only the first row stayed open
    // and received the marker.
    EXPECT_LE(group.size(), 1u);
}

TEST(RevEng, ThirtyTwoRowGroupDiscovered)
{
    ModuleTester t(smallConfig("HMA81GU7AFR8N-UH"));
    dram::Device &dev = t.device();
    const auto group =
        discoverSimraGroup(t, 0, dev.toLogical(0), dev.toLogical(31));
    EXPECT_EQ(group.size(), 32u);
}

TEST(RevEng, DetectTrrPresence)
{
    {
        ModuleTester with_trr(smallConfig("HMA81GU7AFR8N-UH", 13));
        with_trr.device().setTrrEnabled(true);
        EXPECT_TRUE(detectTrr(with_trr, 0));
    }
    {
        ModuleTester without(smallConfig("HMA81GU7AFR8N-UH", 13));
        EXPECT_FALSE(detectTrr(without, 0));
    }
}

TEST(RevEng, DetectTrrOnOtherManufacturers)
{
    // TRR presence detection is technique-agnostic: it works on any
    // module the probe can flip.
    ModuleTester samsung(smallConfig("M391A2G43BB2-CWE", 17));
    EXPECT_FALSE(detectTrr(samsung, 0));
    samsung.device().setTrrEnabled(true);
    EXPECT_TRUE(detectTrr(samsung, 0));
}

} // namespace
