/**
 * @file
 * Unit tests for the HC_first bisection search.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "hammer/hcfirst.h"

namespace {

using namespace pud::hammer;

TEST(HcFirst, FindsExactThresholdWithinConvergence)
{
    HcSearchConfig cfg;
    const std::uint64_t threshold = 12345;
    int trials = 0;
    const std::uint64_t hc = findHcFirst(cfg, [&](std::uint64_t n) {
        ++trials;
        return n >= threshold;
    });
    // The result brackets the true threshold from above within 1%.
    EXPECT_GE(hc, threshold);
    EXPECT_LE(hc, threshold + threshold / 100 + 1);
    EXPECT_LT(trials, 60);
}

TEST(HcFirst, NoFlipWithinBudget)
{
    HcSearchConfig cfg;
    cfg.maxHammers = 1000;
    const std::uint64_t hc =
        findHcFirst(cfg, [](std::uint64_t) { return false; });
    EXPECT_EQ(hc, kNoFlip);
}

TEST(HcFirst, ThresholdOfOne)
{
    HcSearchConfig cfg;
    const std::uint64_t hc =
        findHcFirst(cfg, [](std::uint64_t n) { return n >= 1; });
    EXPECT_EQ(hc, 1u);
}

TEST(HcFirst, RampSurvivesBudgetNearUint64Max)
{
    // With maxHammers at UINT64_MAX the exponential ramp used to wrap
    // (hi *= 2 past 2^63 yields a value below lo, then zero), probing
    // forever without converging.  The clamped ramp must terminate in
    // O(64) ramp probes plus O(64) bisection probes.
    HcSearchConfig cfg;
    cfg.maxHammers = std::numeric_limits<std::uint64_t>::max();
    const std::uint64_t threshold = cfg.maxHammers - 5;
    std::uint64_t probes = 0;
    const std::uint64_t hc = findHcFirst(cfg, [&](std::uint64_t n) {
        ++probes;
        // A wrapped ramp revisits tiny counts indefinitely; cap the
        // probe budget so the pre-fix behavior fails instead of
        // hanging the test binary.
        EXPECT_LT(probes, 200u) << "ramp did not terminate";
        if (probes >= 200)
            return true;
        return n >= threshold;
    });
    EXPECT_GE(hc, threshold);
    EXPECT_LT(probes, 200u);
}

TEST(HcFirst, ThresholdAtBudgetBoundary)
{
    HcSearchConfig cfg;
    cfg.maxHammers = 5000;
    const std::uint64_t hc =
        findHcFirst(cfg, [&](std::uint64_t n) { return n >= 5000; });
    EXPECT_GE(hc, 5000u);
    EXPECT_LE(hc, 5000u);
}

TEST(HcFirst, ThresholdJustAboveBudgetIsNoFlip)
{
    HcSearchConfig cfg;
    cfg.maxHammers = 5000;
    const std::uint64_t hc =
        findHcFirst(cfg, [&](std::uint64_t n) { return n >= 5001; });
    EXPECT_EQ(hc, kNoFlip);
}

TEST(HcFirst, RepeatsReportMinimum)
{
    HcSearchConfig cfg;
    cfg.repeats = 5;
    // A trial whose threshold drops after the first search: the
    // minimum across repeats must win.
    int search_probes = 0;
    const std::uint64_t hc = findHcFirst(cfg, [&](std::uint64_t n) {
        ++search_probes;
        const std::uint64_t threshold = search_probes < 15 ? 40000 : 20000;
        return n >= threshold;
    });
    EXPECT_LE(hc, 20000u + 200u);
}

TEST(HcFirst, ZeroBudgetIsFatal)
{
    HcSearchConfig cfg;
    cfg.maxHammers = 0;
    EXPECT_DEATH(findHcFirst(cfg, [](std::uint64_t) { return true; }),
                 "budget");
}

/**
 * Regression: the bisection used to stop when the bracket width fell
 * below `convergence * hi`.  With a coarse convergence that terminates
 * with a bracket wider than the promised fraction of the *reported*
 * threshold (which the bracket's lower bound approximates from below).
 * With convergence = 0.25 and a true threshold of 1000, the hi-based
 * bound stopped at bracket [768, 1024] (width 256 > 0.25 * 768); the
 * lo-based bound must keep bisecting to [896, 1024].
 */
TEST(HcFirst, ConvergenceBoundUsesLowerBound)
{
    HcSearchConfig cfg;
    cfg.convergence = 0.25;
    const std::uint64_t threshold = 1000;

    // Track the largest probed count that did NOT flip: the search's
    // final lower bound is at least this, so the bracket-width
    // contract can be checked from outside.
    std::uint64_t largest_below = 0;
    const std::uint64_t hc = findHcFirst(cfg, [&](std::uint64_t n) {
        const bool flips = n >= threshold;
        if (!flips)
            largest_below = std::max(largest_below, n);
        return flips;
    });

    EXPECT_GE(hc, threshold);
    EXPECT_LE(static_cast<double>(hc - largest_below),
              std::max(1.0, cfg.convergence *
                                static_cast<double>(largest_below)))
        << "bracket [" << largest_below << ", " << hc
        << "] wider than convergence * lower bound";
}

/** lo == 0 (threshold below the ramp start) must not spin: the bound
 *  degenerates to one hammer until the lower bound rises, and the
 *  result still honors the fraction-of-lower-bound contract. */
TEST(HcFirst, CoarseConvergenceBelowRampStart)
{
    HcSearchConfig cfg;
    cfg.convergence = 0.5;
    const std::uint64_t threshold = 37;  // < rampStart = 512
    const std::uint64_t hc = findHcFirst(cfg, [&](std::uint64_t n) {
        return n >= threshold;
    });
    EXPECT_GE(hc, threshold);
    // hi <= lo * (1 + convergence) + 1 with lo < threshold.
    EXPECT_LE(hc, threshold + threshold / 2 + 1);
}

class ThresholdSweep
    : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(ThresholdSweep, BracketsWithinOnePercent)
{
    HcSearchConfig cfg;
    const std::uint64_t threshold = GetParam();
    const std::uint64_t hc = findHcFirst(cfg, [&](std::uint64_t n) {
        return n >= threshold;
    });
    EXPECT_GE(hc, threshold);
    EXPECT_LE(static_cast<double>(hc - threshold),
              0.011 * static_cast<double>(threshold) + 1.0);
}

INSTANTIATE_TEST_SUITE_P(Thresholds, ThresholdSweep,
                         ::testing::Values(1, 2, 26, 447, 1885, 4123,
                                           25000, 126000, 699999));

} // namespace
