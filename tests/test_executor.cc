/**
 * @file
 * Unit tests for the bender program builder and executor, including
 * the exactness of the loop fast-path against naive execution.
 */

#include <gtest/gtest.h>

#include "bender/host.h"
#include "hammer/patterns.h"

namespace {

using namespace pud;
using namespace pud::bender;
using namespace pud::dram;

DeviceConfig
smallConfig(std::uint64_t seed = 1)
{
    DeviceConfig cfg = makeConfig("HMA81GU7AFR8N-UH", seed);
    cfg.banks = 1;
    cfg.subarraysPerBank = 2;
    cfg.rowsPerSubarray = 64;
    cfg.cols = 256;
    return cfg;
}

TEST(Program, BuilderTracksLoopBalance)
{
    Program p;
    EXPECT_TRUE(p.balanced());
    p.loopBegin(10);
    EXPECT_FALSE(p.balanced());
    p.act(0, 1, 100).pre(0, 100);
    p.loopEnd();
    EXPECT_TRUE(p.balanced());
}

TEST(Program, LoopEndWithoutBeginIsFatal)
{
    Program p;
    EXPECT_DEATH(p.loopEnd(), "loopEnd without loopBegin");
}

TEST(Program, WrWithDanglingDataIndexIsFatal)
{
    Program p;
    // Empty data table: every index is out of range.
    EXPECT_DEATH(p.wr(0, 0, 100), "outside the data table");
    EXPECT_DEATH(p.wr(0, -1, 100), "outside the data table");
    p.addData(dram::RowData(8));
    p.wr(0, 0, 100);  // now in range
    EXPECT_DEATH(p.wr(0, 1, 100), "outside the data table");
}

TEST(Program, WrUncheckedBypassesTheBuildTimeCheck)
{
    // The escape hatch exists so tests and demo programs can build
    // intentionally-broken instructions for lint to catch.
    Program p;
    p.wrUnchecked(0, 7, 100);
    ASSERT_EQ(p.insts().size(), 1u);
    EXPECT_EQ(p.insts()[0].dataIndex, 7);
}

TEST(Program, WithLoopCountCopiesWithoutMutating)
{
    Program p;
    p.loopBegin(1).act(0, 1, 10).pre(0, 20).loopEnd();
    EXPECT_EQ(p.loopCount(), 1u);
    const Program q = p.withLoopCount(0, 500);
    EXPECT_EQ(p.insts()[0].count, 1u);
    EXPECT_EQ(q.insts()[0].count, 500u);
    EXPECT_EQ(q.insts().size(), p.insts().size());
}

TEST(Program, SetLoopCountPatchesTheRightLoop)
{
    Program p;
    p.loopBegin(1).act(0, 1, 10).loopEnd();
    p.loopBegin(2).act(0, 2, 10).loopEnd();
    p.setLoopCount(1, 99);
    int seen = 0;
    for (const auto &inst : p.insts()) {
        if (inst.op == Op::LoopBegin) {
            EXPECT_EQ(inst.count, ++seen == 1 ? 1u : 99u);
        }
    }
    EXPECT_DEATH(p.setLoopCount(5, 1), "no loop");
}

TEST(Executor, UnbalancedProgramIsFatal)
{
    Device dev(smallConfig());
    Executor ex(dev);
    Program p;
    p.loopBegin(3).act(0, 1, 100);
    EXPECT_DEATH(ex.run(p), "unbalanced");
}

TEST(Executor, CollectsReads)
{
    TestBench bench(smallConfig());
    const RowData d(256, DataPattern::PAA);
    bench.writeRow(0, 5, d);
    Program p;
    p.act(0, 5, units::fromNs(15)).rd(0, units::fromNs(15))
        .pre(0, units::fromNs(36));
    const auto result = bench.run(p);
    ASSERT_EQ(result.reads.size(), 1u);
    EXPECT_EQ(result.reads[0], d);
}

TEST(Executor, TimeAdvancesByGapSum)
{
    Device dev(smallConfig());
    Executor ex(dev);
    Program p;
    p.act(0, 1, units::fromNs(100)).pre(0, units::fromNs(50));
    const auto r = ex.run(p);
    EXPECT_EQ(r.endTime - r.startTime, units::fromNs(150));
}

TEST(Executor, LoopTimeScalesWithTripCount)
{
    Device dev(smallConfig());
    Executor ex(dev);
    Program p;
    p.loopBegin(1000)
        .act(0, 1, units::fromNs(15))
        .pre(0, units::fromNs(36))
        .loopEnd();
    const auto r = ex.run(p);
    EXPECT_EQ(r.endTime - r.startTime, 1000 * units::fromNs(51));
    EXPECT_GT(r.fastPathIterations, 0u);
}

TEST(Executor, FastPathReplaysRefLoops)
{
    Device dev(smallConfig());
    Executor ex(dev);
    Program p;
    p.loopBegin(20).ref(units::fromNs(7800)).loopEnd();
    const auto r = ex.run(p);
    // 2 warm-ups + 1 recorded iteration run live; the remaining 17
    // replay arithmetically -- with the refresh counter still
    // advancing exactly as if each REF had issued.
    EXPECT_EQ(r.fastPathIterations, 17u);
    EXPECT_EQ(dev.counters().refs, 20u);
}

TEST(Executor, FastPathEngagesExactlyAtThreshold)
{
    const std::uint64_t trips[] = {1, 2, 3, 7, 8, 9};
    for (std::uint64_t n : trips) {
        Device dev(smallConfig());
        Executor ex(dev);
        Program p;
        p.loopBegin(n)
            .act(0, 1, units::fromNs(15))
            .pre(0, units::fromNs(36))
            .loopEnd();
        const auto r = ex.run(p);
        if (n >= Executor::kFastPathThreshold)
            EXPECT_EQ(r.fastPathIterations, n - 3) << "n=" << n;
        else
            EXPECT_EQ(r.fastPathIterations, 0u) << "n=" << n;
        // Trip-count-exact command counters and duration either way.
        EXPECT_EQ(dev.counters().acts, n) << "n=" << n;
        EXPECT_EQ(dev.counters().pres, n) << "n=" << n;
        EXPECT_EQ(r.endTime - r.startTime, n * units::fromNs(51))
            << "n=" << n;
    }
}

TEST(Executor, PlanCacheSharedAcrossTripCounts)
{
    Device dev(smallConfig());
    Executor ex(dev);
    Program base;
    base.loopBegin(1)
        .act(0, 1, units::fromNs(15))
        .pre(0, units::fromNs(36))
        .loopEnd();
    const std::uint64_t probes[] = {10, 100, 1000, 50, 17};
    for (std::uint64_t n : probes)
        ex.run(base.withLoopCount(0, n));
    // All five probes share one shape: one compile, four cache hits.
    EXPECT_EQ(ex.stats().planCacheMisses, 1u);
    EXPECT_EQ(ex.stats().planCacheHits, 4u);

    Program other;
    other.loopBegin(10)
        .act(0, 2, units::fromNs(15))
        .pre(0, units::fromNs(36))
        .loopEnd();
    ex.run(other);
    EXPECT_EQ(ex.stats().planCacheMisses, 2u);
}

TEST(Executor, NestedLoopsExecute)
{
    Device dev(smallConfig());
    Executor ex(dev);
    Program p;
    p.loopBegin(3);
    p.loopBegin(4)
        .act(0, 1, units::fromNs(15))
        .pre(0, units::fromNs(36))
        .loopEnd();
    p.loopEnd();
    ex.run(p);
    EXPECT_EQ(dev.counters().acts, 12u);
}

/**
 * The critical property: fast-path execution must produce the same
 * victim bitflips as naive execution for every pattern class.
 */
class FastPathEquivalence : public ::testing::TestWithParam<int>
{};

TEST_P(FastPathEquivalence, MatchesNaiveExecution)
{
    const int pattern_kind = GetParam();
    constexpr std::uint64_t kHammers = 4000;

    auto run = [&](bool fast) {
        TestBench bench(smallConfig(7));
        bench.executor().setFastPath(fast);
        dram::Device &dev = bench.device();

        const RowId victim = 33;
        const RowData aggr(256, DataPattern::P55);
        const RowData vict(256, DataPattern::PAA);
        for (RowId r = 28; r <= 38; ++r)
            bench.writeRow(0, dev.toLogical(r),
                           r == victim ? vict : aggr);

        hammer::PatternTimings t;
        Program p;
        switch (pattern_kind) {
          case 0:
            p = hammer::doubleSidedRowHammer(
                0, dev.toLogical(32), dev.toLogical(34), kHammers, t);
            break;
          case 1:
            p = hammer::singleSidedRowHammer(0, dev.toLogical(32),
                                             kHammers, t);
            break;
          case 2:
            p = hammer::comraHammer(0, dev.toLogical(32),
                                    dev.toLogical(34), kHammers, t);
            break;
          case 3:
            p = hammer::simraHammer(0, dev.toLogical(32),
                                    dev.toLogical(38), kHammers, t);
            break;
          default:
            t.tAggOn = units::fromNs(7800);
            p = hammer::doubleSidedRowHammer(
                0, dev.toLogical(32), dev.toLogical(34), kHammers, t);
        }
        bench.run(p);

        // Compare the damage of every cell in the neighbourhood.
        std::vector<float> damage;
        for (RowId r = 28; r <= 38; ++r)
            for (const auto &cell :
                 dev.weakCells(0, dev.toLogical(r)))
                damage.push_back(cell.totalDamage());
        return damage;
    };

    const auto fast = run(true);
    const auto naive = run(false);
    ASSERT_EQ(fast.size(), naive.size());
    for (std::size_t i = 0; i < fast.size(); ++i) {
        EXPECT_NEAR(fast[i], naive[i],
                    1e-4f + 0.002f * std::abs(naive[i]))
            << "cell " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(Patterns, FastPathEquivalence,
                         ::testing::Values(0, 1, 2, 3, 4));

/** Everything observable after a REF-interleaved hammering run. */
struct RunState
{
    std::uint64_t flips = 0;
    std::size_t samplerFill = 0;
    DeviceCounters counters;
    Time duration = 0;
    RowData victimData;
    std::vector<float> damage;
};

/**
 * Run a REF-interleaved double-sided pattern, then probe the TRR
 * sampler ring: enable TRR and fire one REF, whose victim refresh
 * draws from the ring the pattern left behind.  Identical ring
 * contents, position, and RNG state are the only way the probe can
 * behave identically across executor modes.
 */
RunState
runRefInterleaved(bool fast, bool trr, std::uint64_t hammers,
                  const DeviceConfig &cfg)
{
    TestBench bench(cfg);
    bench.executor().setFastPath(fast);
    dram::Device &dev = bench.device();
    dev.setTrrEnabled(trr);

    const RowId victim = 33;
    const RowData aggr(cfg.cols, DataPattern::P55);
    const RowData vict(cfg.cols, DataPattern::PAA);
    for (RowId r = 30; r <= 36; ++r)
        bench.writeRow(0, dev.toLogical(r), r == victim ? vict : aggr);

    hammer::PatternTimings t;
    t.base = cfg.timings;
    const Program p = hammer::withRefInterleave(
        hammer::doubleSidedRowHammer(0, dev.toLogical(32),
                                     dev.toLogical(34), hammers, t),
        t.base);
    const auto result = bench.run(p);

    dev.setTrrEnabled(true);
    Program probe;
    probe.ref(units::fromNs(500));
    bench.run(probe);

    RunState s;
    s.flips = bench.countBitflips(0, dev.toLogical(victim), vict);
    s.samplerFill = dev.trrSamplerFill(0);
    s.counters = dev.counters();
    s.duration = result.endTime - result.startTime;
    s.victimData = dev.readRowDirect(0, dev.toLogical(victim));
    for (RowId r = 30; r <= 36; ++r)
        for (const auto &cell : dev.weakCells(0, dev.toLogical(r)))
            s.damage.push_back(cell.totalDamage());
    return s;
}

void
expectSameRun(const RunState &fast, const RunState &naive)
{
    EXPECT_EQ(fast.flips, naive.flips);
    EXPECT_EQ(fast.samplerFill, naive.samplerFill);
    EXPECT_EQ(fast.duration, naive.duration);
    EXPECT_TRUE(fast.victimData == naive.victimData);
    EXPECT_EQ(fast.counters.acts, naive.counters.acts);
    EXPECT_EQ(fast.counters.pres, naive.counters.pres);
    EXPECT_EQ(fast.counters.refs, naive.counters.refs);
    EXPECT_EQ(fast.counters.trrRefreshes, naive.counters.trrRefreshes);
    ASSERT_EQ(fast.damage.size(), naive.damage.size());
    for (std::size_t i = 0; i < fast.damage.size(); ++i) {
        EXPECT_NEAR(fast.damage[i], naive.damage[i],
                    1e-4f + 0.002f * std::abs(naive.damage[i]))
            << "cell " << i;
    }
}

/** {TRR enabled during the pattern, hammer count}. */
class RefFastPathEquivalence
    : public ::testing::TestWithParam<std::tuple<bool, std::uint64_t>>
{};

TEST_P(RefFastPathEquivalence, MatchesNaiveExecution)
{
    const bool trr = std::get<0>(GetParam());
    const std::uint64_t hammers = std::get<1>(GetParam());
    const DeviceConfig cfg = smallConfig(11);
    expectSameRun(runRefInterleaved(true, trr, hammers, cfg),
                  runRefInterleaved(false, trr, hammers, cfg));
}

// Hammer counts chosen to cover a partially-filled sampler ring (100
// iterations push 200 ACTs < the 450-entry window) and a saturated,
// wrapped one; each with the pattern running TRR-off (pure replay)
// and TRR-on (replay phase-breaks on TRR victim refreshes and the
// executor falls back to live execution).
INSTANTIATE_TEST_SUITE_P(
    TrrAndScale, RefFastPathEquivalence,
    ::testing::Combine(::testing::Bool(),
                       ::testing::Values(100u, 4000u)));

TEST(Executor, RefStripePhaseBreakMatchesNaive)
{
    // A dense stripe-refresh cadence (16 rows per REF) sweeps the
    // refresh pointer across the hammered neighbourhood many times per
    // run, forcing replay phase breaks and re-records.
    DeviceConfig cfg = smallConfig(13);
    cfg.timings.refsPerWindow = 8;
    expectSameRun(runRefInterleaved(true, false, 2000, cfg),
                  runRefInterleaved(false, false, 2000, cfg));
}

TEST(Executor, NestedLoopFastPathMatchesNaive)
{
    auto run = [&](bool fast) {
        TestBench bench(smallConfig(17));
        bench.executor().setFastPath(fast);
        dram::Device &dev = bench.device();

        const RowId victim = 33;
        const RowData aggr(256, DataPattern::P55);
        const RowData vict(256, DataPattern::PAA);
        for (RowId r = 30; r <= 38; ++r)
            bench.writeRow(0, dev.toLogical(r),
                           r == victim ? vict : aggr);

        hammer::PatternTimings t;
        Program p;
        p.loopBegin(50);
        p.loopBegin(64)
            .act(0, dev.toLogical(32), t.base.tRP)
            .pre(0, t.aggOn())
            .act(0, dev.toLogical(34), t.base.tRP)
            .pre(0, t.aggOn())
            .loopEnd();
        p.act(0, dev.toLogical(36), t.base.tRP)
            .pre(0, t.aggOn())
            .loopEnd();
        const auto result = bench.run(p);

        RunState s;
        s.flips = bench.countBitflips(0, dev.toLogical(victim), vict);
        s.samplerFill = dev.trrSamplerFill(0);
        s.counters = dev.counters();
        s.duration = result.endTime - result.startTime;
        s.victimData = dev.readRowDirect(0, dev.toLogical(victim));
        for (RowId r = 30; r <= 38; ++r)
            for (const auto &cell : dev.weakCells(0, dev.toLogical(r)))
                s.damage.push_back(cell.totalDamage());
        EXPECT_EQ(s.counters.acts, 50u * (64u * 2u + 1u));
        return s;
    };

    expectSameRun(run(true), run(false));
}

} // namespace
