/**
 * @file
 * Unit tests for the bender program builder and executor, including
 * the exactness of the loop fast-path against naive execution.
 */

#include <gtest/gtest.h>

#include "bender/host.h"
#include "hammer/patterns.h"

namespace {

using namespace pud;
using namespace pud::bender;
using namespace pud::dram;

DeviceConfig
smallConfig(std::uint64_t seed = 1)
{
    DeviceConfig cfg = makeConfig("HMA81GU7AFR8N-UH", seed);
    cfg.banks = 1;
    cfg.subarraysPerBank = 2;
    cfg.rowsPerSubarray = 64;
    cfg.cols = 256;
    return cfg;
}

TEST(Program, BuilderTracksLoopBalance)
{
    Program p;
    EXPECT_TRUE(p.balanced());
    p.loopBegin(10);
    EXPECT_FALSE(p.balanced());
    p.act(0, 1, 100).pre(0, 100);
    p.loopEnd();
    EXPECT_TRUE(p.balanced());
}

TEST(Program, LoopEndWithoutBeginIsFatal)
{
    Program p;
    EXPECT_DEATH(p.loopEnd(), "loopEnd without loopBegin");
}

TEST(Program, SetLoopCountPatchesTheRightLoop)
{
    Program p;
    p.loopBegin(1).act(0, 1, 10).loopEnd();
    p.loopBegin(2).act(0, 2, 10).loopEnd();
    p.setLoopCount(1, 99);
    int seen = 0;
    for (const auto &inst : p.insts()) {
        if (inst.op == Op::LoopBegin) {
            EXPECT_EQ(inst.count, ++seen == 1 ? 1u : 99u);
        }
    }
    EXPECT_DEATH(p.setLoopCount(5, 1), "no loop");
}

TEST(Executor, UnbalancedProgramIsFatal)
{
    Device dev(smallConfig());
    Executor ex(dev);
    Program p;
    p.loopBegin(3).act(0, 1, 100);
    EXPECT_DEATH(ex.run(p), "unbalanced");
}

TEST(Executor, CollectsReads)
{
    TestBench bench(smallConfig());
    const RowData d(256, DataPattern::PAA);
    bench.writeRow(0, 5, d);
    Program p;
    p.act(0, 5, units::fromNs(15)).rd(0, units::fromNs(15))
        .pre(0, units::fromNs(36));
    const auto result = bench.run(p);
    ASSERT_EQ(result.reads.size(), 1u);
    EXPECT_EQ(result.reads[0], d);
}

TEST(Executor, TimeAdvancesByGapSum)
{
    Device dev(smallConfig());
    Executor ex(dev);
    Program p;
    p.act(0, 1, units::fromNs(100)).pre(0, units::fromNs(50));
    const auto r = ex.run(p);
    EXPECT_EQ(r.endTime - r.startTime, units::fromNs(150));
}

TEST(Executor, LoopTimeScalesWithTripCount)
{
    Device dev(smallConfig());
    Executor ex(dev);
    Program p;
    p.loopBegin(1000)
        .act(0, 1, units::fromNs(15))
        .pre(0, units::fromNs(36))
        .loopEnd();
    const auto r = ex.run(p);
    EXPECT_EQ(r.endTime - r.startTime, 1000 * units::fromNs(51));
    EXPECT_GT(r.fastPathIterations, 0u);
}

TEST(Executor, FastPathSkipsRefLoops)
{
    Device dev(smallConfig());
    Executor ex(dev);
    Program p;
    p.loopBegin(20).ref(units::fromNs(7800)).loopEnd();
    const auto r = ex.run(p);
    EXPECT_EQ(r.fastPathIterations, 0u);
    EXPECT_EQ(dev.counters().refs, 20u);
}

TEST(Executor, NestedLoopsExecute)
{
    Device dev(smallConfig());
    Executor ex(dev);
    Program p;
    p.loopBegin(3);
    p.loopBegin(4)
        .act(0, 1, units::fromNs(15))
        .pre(0, units::fromNs(36))
        .loopEnd();
    p.loopEnd();
    ex.run(p);
    EXPECT_EQ(dev.counters().acts, 12u);
}

/**
 * The critical property: fast-path execution must produce the same
 * victim bitflips as naive execution for every pattern class.
 */
class FastPathEquivalence : public ::testing::TestWithParam<int>
{};

TEST_P(FastPathEquivalence, MatchesNaiveExecution)
{
    const int pattern_kind = GetParam();
    constexpr std::uint64_t kHammers = 4000;

    auto run = [&](bool fast) {
        TestBench bench(smallConfig(7));
        bench.executor().setFastPath(fast);
        dram::Device &dev = bench.device();

        const RowId victim = 33;
        const RowData aggr(256, DataPattern::P55);
        const RowData vict(256, DataPattern::PAA);
        for (RowId r = 28; r <= 38; ++r)
            bench.writeRow(0, dev.toLogical(r),
                           r == victim ? vict : aggr);

        hammer::PatternTimings t;
        Program p;
        switch (pattern_kind) {
          case 0:
            p = hammer::doubleSidedRowHammer(
                0, dev.toLogical(32), dev.toLogical(34), kHammers, t);
            break;
          case 1:
            p = hammer::singleSidedRowHammer(0, dev.toLogical(32),
                                             kHammers, t);
            break;
          case 2:
            p = hammer::comraHammer(0, dev.toLogical(32),
                                    dev.toLogical(34), kHammers, t);
            break;
          case 3:
            p = hammer::simraHammer(0, dev.toLogical(32),
                                    dev.toLogical(38), kHammers, t);
            break;
          default:
            t.tAggOn = units::fromNs(7800);
            p = hammer::doubleSidedRowHammer(
                0, dev.toLogical(32), dev.toLogical(34), kHammers, t);
        }
        bench.run(p);

        // Compare the damage of every cell in the neighbourhood.
        std::vector<float> damage;
        for (RowId r = 28; r <= 38; ++r)
            for (const auto &cell :
                 dev.weakCells(0, dev.toLogical(r)))
                damage.push_back(cell.totalDamage());
        return damage;
    };

    const auto fast = run(true);
    const auto naive = run(false);
    ASSERT_EQ(fast.size(), naive.size());
    for (std::size_t i = 0; i < fast.size(); ++i) {
        EXPECT_NEAR(fast[i], naive[i],
                    1e-4f + 0.002f * std::abs(naive[i]))
            << "cell " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(Patterns, FastPathEquivalence,
                         ::testing::Values(0, 1, 2, 3, 4));

} // namespace
