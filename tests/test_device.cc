/**
 * @file
 * Unit tests for the command-level DRAM device model.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "dram/device.h"

namespace {

using namespace pud;
using namespace pud::dram;

DeviceConfig
smallConfig(const std::string &family = "HMA81GU7AFR8N-UH",
            std::uint64_t seed = 1)
{
    DeviceConfig cfg = makeConfig(family, seed);
    cfg.banks = 2;
    cfg.subarraysPerBank = 4;
    cfg.rowsPerSubarray = 64;
    cfg.cols = 256;
    return cfg;
}

/** Issue commands with an auto-advancing cursor. */
struct Cmd
{
    explicit Cmd(Device &dev) : dev(&dev), t(dev.now() + units::fromNs(10))
    {}

    Cmd &
    act(BankId b, RowId r, Time gap = units::fromNs(15))
    {
        t += gap;
        dev->act(t, b, r);
        return *this;
    }

    Cmd &
    pre(BankId b, Time gap = units::fromNs(36))
    {
        t += gap;
        dev->pre(t, b);
        return *this;
    }

    Cmd &
    wr(BankId b, const RowData &d, Time gap = units::fromNs(15))
    {
        t += gap;
        dev->wr(t, b, d);
        return *this;
    }

    RowData
    rd(BankId b, Time gap = units::fromNs(15))
    {
        t += gap;
        return dev->rd(t, b);
    }

    Device *dev;
    Time t;
};

TEST(Device, WriteReadRoundTrip)
{
    Device dev(smallConfig());
    const RowData data(256, DataPattern::PAA);
    dev.writeRowDirect(0, 17, data);
    EXPECT_EQ(dev.readRowDirect(0, 17), data);
}

TEST(Device, ActWrRdThroughCommands)
{
    Device dev(smallConfig());
    const RowData data(256, DataPattern::P55);
    Cmd c(dev);
    c.act(0, 9).wr(0, data);
    EXPECT_EQ(c.rd(0), data);
    c.pre(0);
    EXPECT_EQ(dev.readRowDirect(0, 9), data);
}

TEST(Device, TimeMustNotGoBackwards)
{
    Device dev(smallConfig());
    dev.act(1000, 0, 1);
    EXPECT_DEATH(dev.act(999, 0, 2), "backwards");
}

TEST(Device, ActOnOpenBankIsFatal)
{
    Device dev(smallConfig());
    dev.act(units::fromNs(100), 0, 1);
    EXPECT_DEATH(dev.act(units::fromNs(200), 0, 2), "open");
}

TEST(Device, RdWithoutOpenRowIsFatal)
{
    Device dev(smallConfig());
    EXPECT_DEATH(dev.rd(units::fromNs(50), 0), "no open row");
}

TEST(Device, ComraCopiesSourceToDestination)
{
    Device dev(smallConfig());
    const RowData src_data(256, DataPattern::PAA);
    const RowData dst_data(256, DataPattern::P00);
    dev.writeRowDirect(0, 10, src_data);
    dev.writeRowDirect(0, 12, dst_data);

    Cmd c(dev);
    c.act(0, 10)
        .pre(0, units::fromNs(36))              // full restore
        .act(0, 12, units::fromNs(7.5))         // violated tRP
        .pre(0, units::fromNs(36));
    dev.flush();

    EXPECT_EQ(dev.readRowDirect(0, 12), src_data);
    EXPECT_EQ(dev.counters().comraCopies, 1u);
}

TEST(Device, NominalTrpDoesNotCopy)
{
    Device dev(smallConfig());
    const RowData src_data(256, DataPattern::PAA);
    const RowData dst_data(256, DataPattern::P00);
    dev.writeRowDirect(0, 10, src_data);
    dev.writeRowDirect(0, 12, dst_data);

    Cmd c(dev);
    c.act(0, 10).pre(0, units::fromNs(36)).act(0, 12, units::fromNs(15))
        .pre(0, units::fromNs(36));
    dev.flush();

    EXPECT_EQ(dev.readRowDirect(0, 12), dst_data);
    EXPECT_EQ(dev.counters().comraCopies, 0u);
}

TEST(Device, ComraAcrossSubarraysDoesNotCopy)
{
    DeviceConfig cfg = smallConfig();
    Device dev(cfg);
    const RowData src_data(256, DataPattern::PAA);
    const RowData dst_data(256, DataPattern::P00);
    const RowId dst = cfg.rowsPerSubarray + 2;  // next subarray
    dev.writeRowDirect(0, 10, src_data);
    dev.writeRowDirect(0, dst, dst_data);

    Cmd c(dev);
    c.act(0, 10).pre(0, units::fromNs(36))
        .act(0, dst, units::fromNs(7.5)).pre(0, units::fromNs(36));
    dev.flush();

    EXPECT_EQ(dev.readRowDirect(0, dst), dst_data);
}

TEST(Device, SimraOpensBitCombinationGroup)
{
    Device dev(smallConfig());  // SK Hynix: supports SiMRA
    // Physical rows 16..19 via offsets differing in bits 1..2; the
    // XorFold mapping is an involution, so drive logical addresses
    // that map to the intended physical rows.
    const RowId phys1 = 16, phys2 = 22;  // mask 0b110 -> 4 rows
    const RowId log1 = dev.toLogical(phys1);
    const RowId log2 = dev.toLogical(phys2);

    const RowData marker(256, DataPattern::PFF);
    const RowData canvas(256, DataPattern::P00);
    for (RowId p = 16; p < 24; ++p)
        dev.writeRowDirect(0, dev.toLogical(p), canvas);

    Cmd c(dev);
    c.act(0, log1)
        .pre(0, units::fromNs(3))
        .act(0, log2, units::fromNs(3))
        .wr(0, marker, units::fromNs(15))
        .pre(0, units::fromNs(36));
    dev.flush();

    EXPECT_EQ(dev.counters().simraOps, 1u);
    for (RowId p : {16u, 18u, 20u, 22u})
        EXPECT_EQ(dev.readRowDirect(0, dev.toLogical(p)), marker)
            << "row " << p;
    for (RowId p : {17u, 19u, 21u, 23u})
        EXPECT_EQ(dev.readRowDirect(0, dev.toLogical(p)), canvas)
            << "row " << p;
}

TEST(Device, SimraMajorityMergesData)
{
    Device dev(smallConfig());
    const RowId phys1 = 32, phys2 = 34;  // pair {32, 34}
    // 0xFF and 0xFF majority against nothing else: use three..; for a
    // 2-row tie the lower-indexed row's bit wins.
    dev.writeRowDirect(0, dev.toLogical(phys1),
                       RowData(256, DataPattern::PFF));
    dev.writeRowDirect(0, dev.toLogical(phys2),
                       RowData(256, DataPattern::P00));

    Cmd c(dev);
    c.act(0, dev.toLogical(phys1))
        .pre(0, units::fromNs(3))
        .act(0, dev.toLogical(phys2), units::fromNs(3))
        .pre(0, units::fromNs(36));
    dev.flush();

    // Tie resolved toward the lower row: both now hold 0xFF.
    const RowData expect(256, DataPattern::PFF);
    EXPECT_EQ(dev.readRowDirect(0, dev.toLogical(phys1)), expect);
    EXPECT_EQ(dev.readRowDirect(0, dev.toLogical(phys2)), expect);
}

TEST(Device, NonSimraChipIgnoresViolatingSequence)
{
    Device dev(smallConfig("MTA18ASF4G72HZ-3G2F1"));  // Micron
    EXPECT_FALSE(dev.supportsSimra());
    const RowData canvas(256, DataPattern::P00);
    const RowData marker(256, DataPattern::PFF);
    for (RowId r = 16; r < 24; ++r)
        dev.writeRowDirect(0, r, canvas);

    Cmd c(dev);
    c.act(0, 16)
        .pre(0, units::fromNs(3))
        .act(0, 22, units::fromNs(3))
        .wr(0, marker, units::fromNs(15))
        .pre(0, units::fromNs(36));
    dev.flush();

    EXPECT_EQ(dev.counters().simraOps, 0u);
    EXPECT_GE(dev.counters().ignoredCommands, 2u);
    // Only the first (still open) row received the write.
    EXPECT_EQ(dev.readRowDirect(0, 16), marker);
    EXPECT_EQ(dev.readRowDirect(0, 22), canvas);
}

TEST(Device, RefWithOpenBankIsFatal)
{
    Device dev(smallConfig());
    dev.act(units::fromNs(100), 0, 1);
    EXPECT_DEATH(dev.ref(units::fromNs(200)), "open bank");
}

TEST(Device, RefreshCoversAllRowsOncePerWindow)
{
    DeviceConfig cfg = smallConfig();
    Device dev(cfg);
    // Damage a cell artificially via hammering is slow; instead verify
    // the stripe arithmetic: after refsPerWindow REFs every row must
    // have been refreshed exactly once.  We detect refresh through
    // flip materialization: flipped cells toggle stored data.
    // Simpler structural check: issuing refsPerWindow REFs is legal
    // and the counters add up.
    Time t = units::fromNs(100);
    for (int i = 0; i < cfg.timings.refsPerWindow; ++i) {
        t += units::fromNs(100);
        dev.ref(t);
    }
    EXPECT_EQ(dev.counters().refs,
              static_cast<std::uint64_t>(cfg.timings.refsPerWindow));
}

TEST(Device, ResetTrrSamplerClearsHistory)
{
    Device dev(smallConfig());
    Cmd c(dev);
    c.act(0, 1).pre(0).act(0, 2).pre(0).act(0, 3).pre(0);
    dev.flush();
    // The sampler records every ACT, whether or not TRR is enabled.
    EXPECT_EQ(dev.trrSamplerFill(0), 3u);

    dev.resetTrrSampler();
    EXPECT_EQ(dev.trrSamplerFill(0), 0u);

    // With an empty sampler there is no aggressor to act on: REF must
    // not issue TRR victim refreshes even with the mechanism enabled.
    dev.setTrrEnabled(true);
    dev.ref(dev.now() + units::fromNs(100));
    EXPECT_EQ(dev.counters().trrRefreshes, 0u);
}

TEST(Device, WrWrongWidthIsFatal)
{
    Device dev(smallConfig());
    dev.act(units::fromNs(100), 0, 1);
    EXPECT_DEATH(dev.wr(units::fromNs(200), 0, RowData(64)), "bits");
}

TEST(Device, CountersTrackCommands)
{
    Device dev(smallConfig());
    Cmd c(dev);
    c.act(0, 1).pre(0).act(0, 2).pre(0);
    dev.flush();
    EXPECT_EQ(dev.counters().acts, 2u);
    EXPECT_EQ(dev.counters().pres, 2u);
}

TEST(Device, GeometryValidation)
{
    DeviceConfig cfg = smallConfig();
    cfg.rowsPerSubarray = 48;  // not a power of two
    EXPECT_DEATH(
        {
            Device dev(cfg);
            (void)dev;
        },
        "power of two");
}

TEST(Device, TrialNoiseRedrawnOnHostWrites)
{
    DeviceConfig cfg = smallConfig();
    cfg.trialNoiseSigma = 0.2;
    Device dev(cfg);
    const RowData d(256, DataPattern::PAA);
    dev.writeRowDirect(0, 5, d);
    const float first = dev.weakCells(0, 5).front().trialScale;
    dev.writeRowDirect(0, 5, d);
    const float second = dev.weakCells(0, 5).front().trialScale;
    EXPECT_NE(first, second);
    EXPECT_GT(first, 0.3f);
    EXPECT_LT(first, 3.0f);
}

TEST(Device, ZeroTrialNoiseStaysDeterministic)
{
    Device dev(smallConfig());
    const RowData d(256, DataPattern::PAA);
    dev.writeRowDirect(0, 5, d);
    EXPECT_FLOAT_EQ(dev.weakCells(0, 5).front().trialScale, 1.0f);
}

// ---------------------------------------------------------------------------
// Lazy row materialization
// ---------------------------------------------------------------------------

TEST(DeviceLazy, IdleDevicePopulatesNoRows)
{
    Device dev(smallConfig());
    EXPECT_EQ(dev.populatedRowCount(), 0u);
}

/**
 * The fleet-scale contract: per-row streams are counter-based, so a
 * lazily materialized device is indistinguishable from an eagerly
 * materialized one -- for any access order.
 */
TEST(DeviceLazy, WeakCellsIdenticalToEagerInAnyAccessOrder)
{
    const DeviceConfig cfg = smallConfig();
    Device eager(cfg), lazy(cfg);
    eager.materializeAllRows();
    EXPECT_EQ(eager.populatedRowCount(),
              static_cast<std::size_t>(cfg.banks) * cfg.rowsPerBank());

    // Touch the lazy device backwards, interleaving banks, to make the
    // materialization order maximally different from the eager sweep.
    for (RowId r = cfg.rowsPerBank(); r-- > 0;) {
        for (BankId b = 0; b < cfg.banks; ++b) {
            const auto &e = eager.weakCells(b, r);
            const auto &l = lazy.weakCells(b, r);
            ASSERT_EQ(e.size(), l.size()) << "bank " << b << " row " << r;
            for (std::size_t i = 0; i < e.size(); ++i) {
                EXPECT_EQ(e[i].col, l[i].col);
                EXPECT_EQ(e[i].baseHc, l[i].baseHc);
                EXPECT_EQ(e[i].comraFactor, l[i].comraFactor);
                EXPECT_EQ(e[i].simraFactor, l[i].simraFactor);
                EXPECT_EQ(e[i].tempSlopeConv, l[i].tempSlopeConv);
                EXPECT_EQ(e[i].dirConv, l[i].dirConv);
                EXPECT_EQ(e[i].dirSimra, l[i].dirSimra);
            }
            EXPECT_EQ(eager.readRowDirect(b, r), lazy.readRowDirect(b, r));
        }
    }
    EXPECT_EQ(lazy.populatedRowCount(), eager.populatedRowCount());
}

/**
 * Command-level equivalence: after identical double-sided hammer
 * traffic, a lazy device holds exactly the same row contents as a
 * fully materialized one (the pre-close flush must materialize the
 * disturbance blast radius before damage is applied), while having
 * populated only the touched neighborhood -- the property that makes
 * 10^4-module fleets affordable.  Flip-level equivalence under a real
 * HC_first search is pinned in test_population.cc.
 */
TEST(DeviceLazy, HammerTrafficLeavesIdenticalRowsWithSublinearPopulation)
{
    const DeviceConfig cfg = smallConfig();
    Device eager(cfg), lazy(cfg);
    eager.materializeAllRows();

    // Double-sided pattern around physical row 10 (subarray interior).
    const RowId agg1 = eager.toLogical(9);
    const RowId agg2 = eager.toLogical(11);

    for (Device *dev : {&eager, &lazy}) {
        Cmd c(*dev);
        for (int i = 0; i < 60000; ++i)
            c.act(0, agg1).pre(0).act(0, agg2).pre(0);
        dev->flush();
    }

    // Hammering two rows must populate only them and their disturbance
    // neighborhood -- not the bank.
    EXPECT_LE(lazy.populatedRowCount(), 16u);

    for (RowId r = 0; r < cfg.rowsPerBank(); ++r)
        EXPECT_EQ(eager.readRowDirect(0, r), lazy.readRowDirect(0, r))
            << "row " << r;

    // Reading bank 0 above materialized it wholesale, but bank 1 was
    // never touched by command traffic and must still be empty.
    EXPECT_EQ(lazy.populatedRowCount(),
              static_cast<std::size_t>(cfg.rowsPerBank()));
}

class FamilyDeviceSweep
    : public ::testing::TestWithParam<const char *>
{};

TEST_P(FamilyDeviceSweep, ConstructsAndRoundTrips)
{
    Device dev(smallConfig(GetParam(), 3));
    const RowData d(256, DataPattern::P55);
    dev.writeRowDirect(1, 33, d);
    EXPECT_EQ(dev.readRowDirect(1, 33), d);
    // Logical <-> physical translation is consistent.
    for (RowId r = 0; r < 64; ++r)
        EXPECT_EQ(dev.toLogical(dev.toPhysical(r)), r);
}

INSTANTIATE_TEST_SUITE_P(Families, FamilyDeviceSweep,
                         ::testing::Values("HMA81GU7AFR8N-UH",
                                           "MTA18ASF4G72HZ-3G2F1",
                                           "M391A2G43BB2-CWE",
                                           "KVR24N17S8/8"));

} // namespace
