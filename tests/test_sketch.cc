/**
 * @file
 * Unit tests for the mergeable streaming sample sketch.
 *
 * The population sweep's determinism contract rests on three sketch
 * properties pinned here: merge is associative and commutative on
 * everything except the floating-point sum (which is commutative but
 * only near-associative), quantiles obey the documented alpha
 * relative-error bound, and serialize() is a bit-exact round-trip.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "stats/sketch.h"

namespace {

using namespace pud::stats;

TEST(HexDouble, RoundTripsSpecialValues)
{
    const double values[] = {
        0.0,
        -0.0,
        1.5,
        -3.25e300,
        5e-324,  // smallest denormal
        std::numeric_limits<double>::infinity(),
        -std::numeric_limits<double>::infinity(),
        std::nan(""),
    };
    for (double v : values) {
        double back = 42.0;
        ASSERT_TRUE(parseHexDouble(hexDouble(v), &back));
        // Bit-equality, not value equality: NaN != NaN but its bits
        // must survive, and -0.0 must not collapse to +0.0.
        EXPECT_EQ(std::bit_cast<std::uint64_t>(v),
                  std::bit_cast<std::uint64_t>(back));
    }
}

TEST(HexDouble, RejectsMalformed)
{
    double out;
    EXPECT_FALSE(parseHexDouble("", &out));
    EXPECT_FALSE(parseHexDouble("3ff", &out));
    EXPECT_FALSE(parseHexDouble("3ff0000000000000ff", &out));
    EXPECT_FALSE(parseHexDouble("3FF0000000000000", &out));  // uppercase
    EXPECT_FALSE(parseHexDouble("3ff000000000000g", &out));
}

TEST(SampleSketch, EmptyIsWellDefined)
{
    const SampleSketch sk;
    EXPECT_EQ(sk.count(), 0u);
    EXPECT_EQ(sk.dropped(), 0u);
    EXPECT_DOUBLE_EQ(sk.mean(), 0.0);
    EXPECT_DOUBLE_EQ(sk.min(), 0.0);
    EXPECT_DOUBLE_EQ(sk.max(), 0.0);
    EXPECT_DOUBLE_EQ(sk.quantile(0.5), 0.0);
    EXPECT_EQ(sk.buckets(), 0u);
}

TEST(SampleSketch, CountMeanMinMaxExact)
{
    SampleSketch sk;
    for (double x : {4.0, -2.0, 0.0, 10.0, 4.0})
        sk.add(x);
    EXPECT_EQ(sk.count(), 5u);
    EXPECT_DOUBLE_EQ(sk.sum(), 16.0);
    EXPECT_DOUBLE_EQ(sk.mean(), 3.2);
    EXPECT_DOUBLE_EQ(sk.min(), -2.0);
    EXPECT_DOUBLE_EQ(sk.max(), 10.0);
}

TEST(SampleSketch, DropsNonFinite)
{
    SampleSketch sk;
    sk.add(std::nan(""));
    sk.add(std::numeric_limits<double>::infinity());
    sk.add(-std::numeric_limits<double>::infinity());
    sk.add(7.0);
    EXPECT_EQ(sk.count(), 1u);
    EXPECT_EQ(sk.dropped(), 3u);
    EXPECT_DOUBLE_EQ(sk.mean(), 7.0);
    EXPECT_DOUBLE_EQ(sk.min(), 7.0);
    EXPECT_DOUBLE_EQ(sk.max(), 7.0);
}

/** Deterministic pseudo-random doubles without <random> overhead. */
std::vector<double>
syntheticSamples(std::size_t n, bool with_negatives)
{
    std::vector<double> out;
    out.reserve(n);
    std::uint64_t state = 0x9E3779B97F4A7C15ULL;
    for (std::size_t i = 0; i < n; ++i) {
        state = state * 6364136223846793005ULL + 1442695040888963407ULL;
        // Magnitudes spanning ~6 decades, the realistic HC_first range.
        const double mag =
            std::exp(static_cast<double>((state >> 33) % 14000) / 1000.0);
        out.push_back(with_negatives && (state & 1) ? -mag : mag);
    }
    return out;
}

TEST(SampleSketch, QuantileWithinRelativeErrorBound)
{
    const double alpha = 0.01;
    SampleSketch sk(alpha);
    std::vector<double> samples = syntheticSamples(5000, true);
    for (double x : samples)
        sk.add(x);
    std::sort(samples.begin(), samples.end());

    for (double q : {0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
        // quantile() targets the floor(q * (n - 1))-th order statistic.
        const std::size_t k = static_cast<std::size_t>(
            q * static_cast<double>(samples.size() - 1));
        const double exact = samples[k];
        const double est = sk.quantile(q);
        EXPECT_LE(std::abs(est - exact), alpha * std::abs(exact) + 1e-12)
            << "q=" << q << " exact=" << exact << " est=" << est;
    }
}

TEST(SampleSketch, QuantileOrderedAcrossSignsAndZero)
{
    SampleSketch sk;
    for (double x : {-100.0, -1.0, 0.0, 1.0, 100.0})
        sk.add(x);
    EXPECT_LT(sk.quantile(0.0), -99.0);
    EXPECT_DOUBLE_EQ(sk.quantile(0.5), 0.0);
    EXPECT_GT(sk.quantile(1.0), 99.0);
    double prev = -std::numeric_limits<double>::infinity();
    for (double q = 0.0; q <= 1.0; q += 0.05) {
        const double v = sk.quantile(q);
        EXPECT_GE(v, prev);
        prev = v;
    }
}

TEST(SampleSketch, MergeMatchesBulkIngest)
{
    const std::vector<double> samples = syntheticSamples(600, true);
    SampleSketch whole;
    SampleSketch parts[3];
    for (std::size_t i = 0; i < samples.size(); ++i) {
        whole.add(samples[i]);
        parts[i % 3].add(samples[i]);
    }
    SampleSketch merged;
    for (const SampleSketch &p : parts)
        merged.merge(p);

    EXPECT_EQ(merged.count(), whole.count());
    EXPECT_EQ(merged.dropped(), whole.dropped());
    EXPECT_EQ(merged.buckets(), whole.buckets());
    EXPECT_DOUBLE_EQ(merged.min(), whole.min());
    EXPECT_DOUBLE_EQ(merged.max(), whole.max());
    // Sum order differs between interleaved and grouped ingestion, so
    // only near-equality holds for the FP sum...
    EXPECT_NEAR(merged.sum(), whole.sum(),
                1e-9 * std::abs(whole.sum()));
    // ...but the integer histogram is identical, so every quantile is.
    for (double q : {0.1, 0.25, 0.5, 0.75, 0.9})
        EXPECT_DOUBLE_EQ(merged.quantile(q), whole.quantile(q));
}

TEST(SampleSketch, MergeCommutesExactly)
{
    SampleSketch a, b;
    for (double x : syntheticSamples(200, true))
        a.add(x);
    for (double x : syntheticSamples(150, false))
        b.add(x * 0.5);
    b.add(std::nan(""));

    SampleSketch ab = a, ba = b;
    ab.merge(b);
    ba.merge(a);
    // FP addition is commutative (unlike associative), min/max and the
    // integer histogram trivially commute -- so this holds bit-exactly.
    EXPECT_TRUE(ab == ba);
    EXPECT_EQ(ab.serialize(), ba.serialize());
}

TEST(SampleSketch, MergeAssociativeUpToSumRounding)
{
    SampleSketch a, b, c;
    for (double x : syntheticSamples(120, true))
        a.add(x);
    for (double x : syntheticSamples(80, false))
        b.add(x + 1.0);
    for (double x : syntheticSamples(60, true))
        c.add(x * 3.0);

    SampleSketch left = a;
    left.merge(b);
    left.merge(c);
    SampleSketch bc = b;
    bc.merge(c);
    SampleSketch right = a;
    right.merge(bc);

    EXPECT_EQ(left.count(), right.count());
    EXPECT_EQ(left.buckets(), right.buckets());
    EXPECT_DOUBLE_EQ(left.min(), right.min());
    EXPECT_DOUBLE_EQ(left.max(), right.max());
    for (double q : {0.1, 0.5, 0.9})
        EXPECT_DOUBLE_EQ(left.quantile(q), right.quantile(q));
    EXPECT_NEAR(left.sum(), right.sum(), 1e-9 * std::abs(left.sum()));

    // Identical merge *order* gives identical bytes -- the property the
    // population sweep's canonical shard-order merge relies on.
    SampleSketch replay = a;
    replay.merge(b);
    replay.merge(c);
    EXPECT_EQ(left.serialize(), replay.serialize());
}

TEST(SampleSketch, SerializeRoundTripsExactly)
{
    SampleSketch sk(0.02);
    for (double x : syntheticSamples(300, true))
        sk.add(x);
    sk.add(0.0);
    sk.add(0.0);
    sk.add(std::nan(""));

    const std::string line = sk.serialize();
    const auto back = SampleSketch::deserialize(line);
    ASSERT_TRUE(back.has_value());
    EXPECT_TRUE(*back == sk);
    EXPECT_EQ(back->serialize(), line);
}

TEST(SampleSketch, SerializeEmptyRoundTrips)
{
    const SampleSketch sk(0.05);
    const auto back = SampleSketch::deserialize(sk.serialize());
    ASSERT_TRUE(back.has_value());
    EXPECT_TRUE(*back == sk);
}

TEST(SampleSketch, DeserializeRejectsMalformed)
{
    SampleSketch sk;
    sk.add(2.0);
    sk.add(-7.0);
    const std::string good = sk.serialize();

    EXPECT_FALSE(SampleSketch::deserialize("").has_value());
    EXPECT_FALSE(SampleSketch::deserialize("sketch2" +
                                           good.substr(7))
                     .has_value());
    // Truncated anywhere is rejected.
    for (std::size_t len :
         {std::size_t{5}, std::size_t{20}, good.size() - 1})
        EXPECT_FALSE(
            SampleSketch::deserialize(good.substr(0, len)).has_value())
            << "prefix length " << len;
    EXPECT_FALSE(SampleSketch::deserialize(good + " extra").has_value());

    // Bucket counts that do not sum to n are rejected (the checkpoint
    // loader depends on this to detect torn records).
    std::string inflated = good;
    const std::size_t n_pos = inflated.find(" n=");
    ASSERT_NE(n_pos, std::string::npos);
    inflated.replace(n_pos, 4, " n=9");
    EXPECT_FALSE(SampleSketch::deserialize(inflated).has_value());
}

TEST(SampleSketchDeath, MergeRejectsAlphaMismatch)
{
    SampleSketch a(0.01), b(0.02);
    EXPECT_DEATH(a.merge(b), "alpha mismatch");
}

} // namespace
