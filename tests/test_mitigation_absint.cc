/**
 * @file
 * Unit tests for the mitigation bypass certifier
 * (lint/mitigation_absint.h): per-mechanism verdict rules, the
 * three-valued lattice's degradation at pass caps, trip-count
 * independence of the abstract transformers, SARIF goldens for every
 * Mit* code, and the executor pre-flight integration.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bender/host.h"
#include "lint/effects.h"
#include "lint/linter.h"
#include "lint/mitigation_absint.h"
#include "lint/report.h"

namespace {

using namespace pud;
using namespace pud::bender;
using namespace pud::lint;

const dram::TimingParams kT{};

/**
 * One bank, two 64-row subarrays, identity mapping, and Table 2
 * anchors scaled down so a few hundred closes cross the flip
 * threshold: a ~600-trip double-sided hammer is Likely, which is what
 * makes the certifier emit its per-victim diagnostics.
 */
dram::DeviceConfig
mitConfig()
{
    dram::DeviceConfig cfg = dram::makeConfig("HMA81GU7AFR8N-UH");
    cfg.banks = 1;
    cfg.subarraysPerBank = 2;
    cfg.rowsPerSubarray = 64;
    cfg.cols = 64;
    cfg.profile.mapping = dram::MappingScheme::Sequential;
    cfg.profile.rhMin = 400;
    cfg.profile.rhAvg = 900;
    cfg.profile.comraMin = 160;
    cfg.profile.comraAvg = 360;
    cfg.profile.simraMin = 80;
    cfg.profile.simraAvg = 180;
    return cfg;
}

bool
has(const LintResult &r, Code code)
{
    return std::any_of(r.diags.begin(), r.diags.end(),
                       [&](const Diag &d) { return d.code == code; });
}

std::size_t
countCode(const LintResult &r, Code code)
{
    return static_cast<std::size_t>(
        std::count_if(r.diags.begin(), r.diags.end(),
                      [&](const Diag &d) { return d.code == code; }));
}

std::string
messageOf(const LintResult &r, Code code)
{
    for (const Diag &d : r.diags)
        if (d.code == code)
            return d.message;
    return "";
}

/** Classic double-sided hammer around `victim`, optional REF/trip. */
void
appendDoubleSided(Program &p, dram::RowId victim, std::uint64_t trips,
                  bool ref_in_loop)
{
    p.loopBegin(trips)
        .act(0, victim - 1, kT.tRFC)
        .pre(0, kT.tRAS)
        .act(0, victim + 1, kT.tRC)
        .pre(0, kT.tRAS);
    if (ref_in_loop)
        p.ref(kT.tRC).nop(kT.tRFC);
    p.loopEnd();
}

void
appendSingleSided(Program &p, dram::RowId aggressor,
                  std::uint64_t trips, bool ref_in_loop)
{
    p.loopBegin(trips).act(0, aggressor, kT.tRFC).pre(0, kT.tRAS);
    if (ref_in_loop)
        p.ref(kT.tRC).nop(kT.tRFC);
    p.loopEnd();
}

struct Analysis
{
    LintResult result;
    EffectReport report;
};

Analysis
analyze(const Program &p, const dram::DeviceConfig &cfg,
        const MitigationSpec &spec)
{
    LintOptions opts;
    opts.mitigations = spec;
    Analysis a;
    a.result = lintProgram(p, cfg, opts, &a.report);
    return a;
}

const VictimPrediction *
victimAt(const EffectReport &report, dram::RowId row)
{
    for (const VictimPrediction &vp : report.victims)
        if (vp.victimPhys == row)
            return &vp;
    return nullptr;
}

// ---- sampling TRR ------------------------------------------------------

TEST(MitAbsint, TrrRefInLoopCertifiesMitigated)
{
    Program p;
    appendDoubleSided(p, 10, 600, /*ref_in_loop=*/true);
    MitigationSpec spec;
    spec.trr = true;
    const Analysis a = analyze(p, mitConfig(), spec);

    const VictimPrediction *v = victimAt(a.report, 10);
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(v->verdict, Verdict::Likely);
    EXPECT_EQ(v->mitVerdict, MitVerdict::MitigatedCertain);
    EXPECT_TRUE(has(a.result, Code::MitMitigatedCertain));
    EXPECT_FALSE(has(a.result, Code::MitBypassCertain));
}

TEST(MitAbsint, TrrRefFreeCertifiesBypass)
{
    Program p;
    appendDoubleSided(p, 10, 600, /*ref_in_loop=*/false);
    MitigationSpec spec;
    spec.trr = true;
    const Analysis a = analyze(p, mitConfig(), spec);

    const VictimPrediction *v = victimAt(a.report, 10);
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(v->mitVerdict, MitVerdict::BypassCertain);
    EXPECT_TRUE(has(a.result, Code::MitBypassCertain));
    // The bypass bound is reported and reachable for a Likely victim.
    EXPECT_GT(v->bypassHcFirstLowerBound, 0.0);
    EXPECT_LE(v->bypassHcFirstLowerBound, v->weightedCloses);
}

TEST(MitAbsint, TrrDecoyFloodStarvesTheSamplerAndBypasses)
{
    // Phase 1: fill the sampler ring with a far decoy.  Straight-line
    // (not looped) so every REF is a walked, *exact* trace point --
    // the starvation heuristic only trusts exactly-known windows.
    // Phase 2: REF-free double-sided pressure on victim 10.
    Program p;
    for (int i = 0; i < 80; ++i) {
        p.act(0, 40, kT.tRFC)
            .pre(0, kT.tRAS)
            .ref(kT.tRC)
            .nop(kT.tRFC);
    }
    appendDoubleSided(p, 10, 600, /*ref_in_loop=*/false);
    MitigationSpec spec;
    spec.trr = true;
    const Analysis a = analyze(p, mitConfig(), spec);

    const VictimPrediction *v = victimAt(a.report, 10);
    ASSERT_NE(v, nullptr);
    // Every sampled row sits at distance 30: provably inert.
    EXPECT_EQ(v->mitVerdict, MitVerdict::BypassCertain);
    EXPECT_TRUE(has(a.result, Code::MitTrrSamplerStarved));
    const std::string msg =
        messageOf(a.result, Code::MitTrrSamplerStarved);
    EXPECT_NE(msg.find("starve"), std::string::npos);
}

TEST(MitAbsint, TrrTraceTruncationDegradesToPossible)
{
    // Loop REF points carry multiplicity, so a looped REF-per-trip
    // hammer never hits the pass cap no matter the trip count -- it
    // stays MitigatedCertain.  The *unrolled* equivalent burns one
    // trace point per REF, overruns kMaxSamplerRefPoints, and the
    // Certain verdict must degrade to the sound refusal, never stay
    // (unsoundly) Certain.
    const std::uint64_t trips = kMaxSamplerRefPoints + 64;
    MitigationSpec spec;
    spec.trr = true;
    const dram::DeviceConfig cfg = mitConfig();

    Program looped;
    appendDoubleSided(looped, 10, trips, /*ref_in_loop=*/true);
    const Analysis al = analyze(looped, cfg, spec);
    const VictimPrediction *vl = victimAt(al.report, 10);
    ASSERT_NE(vl, nullptr);
    EXPECT_EQ(vl->mitVerdict, MitVerdict::MitigatedCertain);

    Program unrolled;
    for (std::uint64_t i = 0; i < trips; ++i) {
        unrolled.act(0, 9, kT.tRFC)
            .pre(0, kT.tRAS)
            .act(0, 11, kT.tRC)
            .pre(0, kT.tRAS)
            .ref(kT.tRC)
            .nop(kT.tRFC);
    }
    const Analysis au = analyze(unrolled, cfg, spec);
    const VictimPrediction *vu = victimAt(au.report, 10);
    ASSERT_NE(vu, nullptr);
    EXPECT_EQ(vu->mitVerdict, MitVerdict::BypassPossible);
    const std::string msg =
        messageOf(au.result, Code::MitBypassPossible);
    EXPECT_NE(msg.find("truncated"), std::string::npos);
}

// ---- trip-count independence -------------------------------------------

TEST(MitAbsint, VerdictsIndependentOfLoopTripRepresentation)
{
    // The abstract transformers must see a loop body the same way at
    // any trip count representation: looped vs hand-unrolled programs
    // are inst-for-inst equivalent, so every victim's verdict and
    // bound must match exactly.
    MitigationSpec spec;
    spec.trr = true;
    spec.prac = true;
    spec.para = true;
    spec.graphene = true;
    const dram::DeviceConfig cfg = mitConfig();

    for (const std::uint64_t trips :
         {std::uint64_t(1), std::uint64_t(2), std::uint64_t(17)}) {
        Program looped;
        appendDoubleSided(looped, 10, trips, /*ref_in_loop=*/true);

        Program unrolled;
        for (std::uint64_t i = 0; i < trips; ++i) {
            unrolled.act(0, 9, kT.tRFC)
                .pre(0, kT.tRAS)
                .act(0, 11, kT.tRC)
                .pre(0, kT.tRAS)
                .ref(kT.tRC)
                .nop(kT.tRFC);
        }

        const Analysis al = analyze(looped, cfg, spec);
        const Analysis au = analyze(unrolled, cfg, spec);

        ASSERT_EQ(al.report.victims.size(), au.report.victims.size())
            << "trips=" << trips;
        for (std::size_t i = 0; i < al.report.victims.size(); ++i) {
            const VictimPrediction &vl = al.report.victims[i];
            const VictimPrediction &vu = au.report.victims[i];
            EXPECT_EQ(vl.victimPhys, vu.victimPhys) << "trips=" << trips;
            EXPECT_EQ(vl.mitVerdict, vu.mitVerdict)
                << "trips=" << trips << " row=" << vl.victimPhys;
            EXPECT_DOUBLE_EQ(vl.optimisticDamage, vu.optimisticDamage)
                << "trips=" << trips << " row=" << vl.victimPhys;
            EXPECT_DOUBLE_EQ(vl.bypassHcFirstLowerBound,
                             vu.bypassHcFirstLowerBound)
                << "trips=" << trips << " row=" << vl.victimPhys;
        }
    }
}

// ---- PRAC --------------------------------------------------------------

TEST(MitAbsint, PracAdjacentOnlyCertifiesMitigated)
{
    Program p;
    appendDoubleSided(p, 10, 600, /*ref_in_loop=*/false);
    MitigationSpec spec;
    spec.prac = true;
    spec.pracConfig.rdt = 20;
    const Analysis a = analyze(p, mitConfig(), spec);

    const VictimPrediction *v = victimAt(a.report, 10);
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(v->verdict, Verdict::Likely);
    EXPECT_EQ(v->mitVerdict, MitVerdict::MitigatedCertain);
    EXPECT_TRUE(has(a.result, Code::MitMitigatedCertain));
    EXPECT_NE(messageOf(a.result, Code::MitMitigatedCertain)
                  .find("PRAC"),
              std::string::npos);
}

TEST(MitAbsint, PracDistance2AggressorBlocksCertification)
{
    // A same-subarray distance-2 aggressor deposits damage on the
    // victim but its drain refreshes (row +-1) never reach it: no
    // trigger-driven MitigatedCertain is possible.
    Program p;
    appendDoubleSided(p, 10, 600, /*ref_in_loop=*/false);
    appendSingleSided(p, 12, 600, /*ref_in_loop=*/false);
    MitigationSpec spec;
    spec.prac = true;
    spec.pracConfig.rdt = 20;
    const Analysis a = analyze(p, mitConfig(), spec);

    const VictimPrediction *v = victimAt(a.report, 10);
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(v->mitVerdict, MitVerdict::BypassPossible);
}

TEST(MitAbsint, PracHighRdtCertifiesBypassAndFlagsSkirting)
{
    Program p;
    appendDoubleSided(p, 10, 600, /*ref_in_loop=*/false);
    MitigationSpec spec;
    spec.prac = true;
    spec.pracConfig.rdt = 20000;  // never reached: 600 closes per row
    const Analysis a = analyze(p, mitConfig(), spec);

    const VictimPrediction *v = victimAt(a.report, 10);
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(v->mitVerdict, MitVerdict::BypassCertain);
    EXPECT_TRUE(has(a.result, Code::MitBypassCertain));
    // Emitted once per program, not per victim.
    EXPECT_EQ(countCode(a.result, Code::MitAboThresholdSkirted), 1u);
}

TEST(MitAbsint, PracMultiVictimRfmIsJudgedConservatively)
{
    // Quiet adjacent cluster (80 closes/row, below the 200 RDT) next
    // to a far hot cluster.  With victimsPerRfm == 1 only >=RDT rows
    // can ever be drained, all of which are far: certain bypass.  With
    // victimsPerRfm > 1 the second drained row can be *any* non-zero
    // counter -- the quiet adjacent aggressors become drainable and
    // the certain bypass must be withdrawn.
    Program p;
    appendDoubleSided(p, 10, 80, /*ref_in_loop=*/false);
    appendDoubleSided(p, 40, 400, /*ref_in_loop=*/false);

    MitigationSpec spec;
    spec.prac = true;
    spec.pracConfig.rdt = 200;

    spec.pracConfig.victimsPerRfm = 1;
    const Analysis one = analyze(p, mitConfig(), spec);
    const VictimPrediction *v1 = victimAt(one.report, 10);
    ASSERT_NE(v1, nullptr);
    EXPECT_EQ(v1->mitVerdict, MitVerdict::BypassCertain);

    spec.pracConfig.victimsPerRfm = 2;
    const Analysis two = analyze(p, mitConfig(), spec);
    const VictimPrediction *v2 = victimAt(two.report, 10);
    ASSERT_NE(v2, nullptr);
    EXPECT_NE(v2->mitVerdict, MitVerdict::BypassCertain);
}

// ---- PARA / Graphene ---------------------------------------------------

TEST(MitAbsint, ParaVerdictsFollowTheCoin)
{
    Program p;
    appendDoubleSided(p, 10, 600, /*ref_in_loop=*/false);

    MitigationSpec spec;
    spec.para = true;
    spec.paraConfig.probability = 0.0;
    const Analysis off = analyze(p, mitConfig(), spec);
    const VictimPrediction *voff = victimAt(off.report, 10);
    ASSERT_NE(voff, nullptr);
    EXPECT_EQ(voff->mitVerdict, MitVerdict::BypassCertain);

    spec.paraConfig.probability = 1.0 / 512.0;
    const Analysis on = analyze(p, mitConfig(), spec);
    const VictimPrediction *von = victimAt(on.report, 10);
    ASSERT_NE(von, nullptr);
    // A Bernoulli mitigation can always miss every draw: neither
    // Certain verdict is available, and the refusal quantifies it.
    EXPECT_EQ(von->mitVerdict, MitVerdict::BypassPossible);
    EXPECT_NE(messageOf(on.result, Code::MitBypassPossible)
                  .find("miss probability"),
              std::string::npos);
}

TEST(MitAbsint, GrapheneUnderThresholdCertifiesBypass)
{
    Program p;
    appendDoubleSided(p, 10, 100, /*ref_in_loop=*/false);
    MitigationSpec spec;
    spec.graphene = true;  // threshold 250 > 100 closes per row
    const Analysis a = analyze(p, mitConfig(), spec);

    const VictimPrediction *v = victimAt(a.report, 10);
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(v->mitVerdict, MitVerdict::BypassCertain);
}

TEST(MitAbsint, GrapheneAdjacentCertifiesMitigatedWhenBoundHolds)
{
    // Stronger anchors so threshold * per-close damage < 1: within
    // every 250 closes the exactly-counting table provably triggers
    // and refreshes the victim before the accrual can cross.
    dram::DeviceConfig cfg = mitConfig();
    cfg.profile.rhMin = 2000;
    cfg.profile.rhAvg = 4500;

    Program p;
    appendDoubleSided(p, 10, 400, /*ref_in_loop=*/false);
    MitigationSpec spec;
    spec.graphene = true;
    const Analysis a = analyze(p, cfg, spec);

    const VictimPrediction *v = victimAt(a.report, 10);
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(v->mitVerdict, MitVerdict::MitigatedCertain);
}

TEST(MitAbsint, CombinedVerdictOneCertainMitigationWins)
{
    // REF-free: TRR alone certifies a bypass.  PRAC with a small RDT
    // certifies mitigation.  One certain mitigation stops the flips,
    // so the combined verdict is MitigatedCertain.
    Program p;
    appendDoubleSided(p, 10, 600, /*ref_in_loop=*/false);
    MitigationSpec spec;
    spec.trr = true;
    spec.prac = true;
    spec.pracConfig.rdt = 20;
    const Analysis a = analyze(p, mitConfig(), spec);

    const VictimPrediction *v = victimAt(a.report, 10);
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(v->mitVerdict, MitVerdict::MitigatedCertain);
}

TEST(MitAbsint, SpecOffLeavesVictimsNotEvaluated)
{
    Program p;
    appendDoubleSided(p, 10, 600, /*ref_in_loop=*/false);
    LintOptions opts;
    opts.effects = true;
    EffectReport report;
    lintProgram(p, mitConfig(), opts, &report);
    const VictimPrediction *v = victimAt(report, 10);
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(v->mitVerdict, MitVerdict::NotEvaluated);
}

// ---- SARIF goldens -----------------------------------------------------

std::string
renderSarif(const LintResult &r, const Program &p)
{
    char *buf = nullptr;
    std::size_t len = 0;
    std::FILE *f = open_memstream(&buf, &len);
    printSarif(r, p, f);
    std::fclose(f);
    std::string out(buf, len);
    std::free(buf);
    return out;
}

TEST(MitAbsint, SarifGoldenForEveryMitCode)
{
    const Code codes[] = {
        Code::MitBypassCertain,     Code::MitBypassPossible,
        Code::MitMitigatedCertain,  Code::MitTrrSamplerStarved,
        Code::MitAboThresholdSkirted,
    };
    LintResult r;
    for (Code c : codes)
        r.diags.push_back({c, severityOf(c), 0, "synthetic"});
    Program p;
    p.nop(10);

    const std::string out = renderSarif(r, p);
    for (Code c : codes) {
        EXPECT_NE(out.find(std::string("\"id\":\"") + name(c) + "\""),
                  std::string::npos)
            << name(c);
        EXPECT_TRUE(isMitigationCode(c)) << name(c);
    }
    EXPECT_NE(out.find("\"id\":\"mit-bypass-certain\""),
              std::string::npos);
    EXPECT_NE(out.find("\"id\":\"mit-abo-threshold-skirted\""),
              std::string::npos);
    // mit-mitigated-certain is the lattice's good news: a note, not a
    // warning; every other Mit* code is warning-severity.
    EXPECT_EQ(severityOf(Code::MitMitigatedCertain), Severity::Note);
    for (Code c : {Code::MitBypassCertain, Code::MitBypassPossible,
                   Code::MitTrrSamplerStarved,
                   Code::MitAboThresholdSkirted})
        EXPECT_EQ(severityOf(c), Severity::Warning) << name(c);
}

TEST(MitAbsint, SarifEndToEndCarriesTheBypassResult)
{
    Program p;
    appendDoubleSided(p, 10, 600, /*ref_in_loop=*/false);
    MitigationSpec spec;
    spec.trr = true;
    const Analysis a = analyze(p, mitConfig(), spec);
    const std::string out = renderSarif(a.result, p);
    EXPECT_NE(out.find("\"ruleId\":\"mit-bypass-certain\""),
              std::string::npos);
    EXPECT_NE(out.find("\"level\":\"warning\""), std::string::npos);
}

// ---- executor pre-flight integration -----------------------------------

TEST(MitAbsint, ExecutorPreflightAcceptsMitigationSpec)
{
    const dram::DeviceConfig cfg = mitConfig();
    bender::TestBench bench(cfg);
    bench.executor().setPreflight(true);
    MitigationSpec spec;
    spec.trr = true;
    bench.executor().setPreflightMitigations(spec);
    EXPECT_TRUE(bench.executor().preflightMitigations().trr);

    // A certain-bypass program is a warning, not an error: the
    // pre-flight surfaces it via warn() and the run proceeds.
    Program p;
    appendDoubleSided(p, 10, 600, /*ref_in_loop=*/false);
    bench.run(p);
    SUCCEED();
}

} // namespace
