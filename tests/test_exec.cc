/**
 * @file
 * Unit tests for the pud::exec pool and the determinism guarantee of
 * the parallel population runner: for any jobs value the results must
 * be bit-identical to the serial path.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <thread>
#include <vector>

#include "exec/pool.h"
#include "hammer/experiment.h"

namespace {

using namespace pud;
using namespace pud::exec;

TEST(Pool, IdleConstructDestruct)
{
    Pool pool(4);
    EXPECT_EQ(pool.threads(), 4);
    // Destructor joins without a batch ever running.
}

TEST(Pool, ThreadCountClampedToOne)
{
    Pool pool(0);
    EXPECT_GE(pool.threads(), 1);
}

TEST(Pool, ForEachRunsEveryIndexExactlyOnce)
{
    constexpr std::size_t n = 1000;
    std::vector<std::atomic<int>> hits(n);
    for (auto &h : hits)
        h.store(0);

    Pool pool(4);
    pool.forEach(n, [&](std::size_t i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
    });

    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(Pool, ReusableAcrossBatches)
{
    Pool pool(3);
    for (int batch = 0; batch < 5; ++batch) {
        std::atomic<std::size_t> sum{0};
        const std::size_t n = 10 * (batch + 1);
        pool.forEach(n, [&](std::size_t i) {
            sum.fetch_add(i + 1, std::memory_order_relaxed);
        });
        EXPECT_EQ(sum.load(), n * (n + 1) / 2);
    }
}

TEST(Pool, EmptyBatchIsANoOp)
{
    Pool pool(2);
    pool.forEach(0, [](std::size_t) { FAIL() << "unit ran"; });
}

TEST(Pool, ExceptionPropagatesToCaller)
{
    Pool pool(4);
    EXPECT_THROW(pool.forEach(100,
                              [](std::size_t i) {
                                  if (i == 37)
                                      throw std::runtime_error("unit 37");
                              }),
                 std::runtime_error);

    // The pool must survive a failed batch and run the next one.
    std::atomic<std::size_t> ran{0};
    pool.forEach(8, [&](std::size_t) {
        ran.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(ran.load(), 8u);
}

TEST(ParallelFor, SerialJobsRunInlineOnCallingThread)
{
    const std::thread::id caller = std::this_thread::get_id();
    std::vector<std::thread::id> seen(4);
    parallelFor(1, seen.size(), [&](std::size_t i) {
        seen[i] = std::this_thread::get_id();
    });
    for (const auto &id : seen)
        EXPECT_EQ(id, caller);
}

TEST(ParallelFor, SingleUnitRunsInlineEvenWithManyJobs)
{
    const std::thread::id caller = std::this_thread::get_id();
    std::thread::id seen;
    parallelFor(8, 1, [&](std::size_t) {
        seen = std::this_thread::get_id();
    });
    EXPECT_EQ(seen, caller);
}

TEST(ParallelFor, CoversAllIndices)
{
    constexpr std::size_t n = 257;  // not a multiple of the job count
    std::vector<std::atomic<int>> hits(n);
    for (auto &h : hits)
        h.store(0);
    parallelFor(4, n, [&](std::size_t i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ResolveJobs, AutoAndExplicit)
{
    EXPECT_EQ(resolveJobs(1), 1);
    EXPECT_EQ(resolveJobs(5), 5);
    EXPECT_EQ(resolveJobs(0), defaultJobs());
    EXPECT_EQ(resolveJobs(-3), defaultJobs());
    EXPECT_GE(defaultJobs(), 1);
}

// ---------------------------------------------------------------------------
// Determinism of the parallel population runner
// ---------------------------------------------------------------------------

using namespace pud::hammer;

PopulationConfig
tinyPopulation()
{
    PopulationConfig cfg;
    cfg.moduleId = "HMA81GU7AFR8N-UH";
    cfg.modules = 2;
    cfg.victimsPerSubarray = 2;
    cfg.rowsPerSubarray = 64;
    return cfg;
}

std::vector<MeasureFn>
tinyMeasures()
{
    // Two measures so work units = victims * 2; a reduced budget keeps
    // the sweep fast and produces a mix of numbers and NaN (kNoFlip).
    ModuleTester::Options opt;
    opt.search.maxHammers = 60000;
    return {[opt](ModuleTester &t, dram::RowId v) {
                return t.rhDouble(v, opt);
            },
            [opt](ModuleTester &t, dram::RowId v) {
                return t.comraDouble(v, opt);
            }};
}

/** Bit-level equality (NaN == NaN), which double operator== is not. */
bool
sameBits(const std::vector<std::vector<double>> &a,
         const std::vector<std::vector<double>> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t s = 0; s < a.size(); ++s) {
        if (a[s].size() != b[s].size())
            return false;
        if (!a[s].empty() &&
            std::memcmp(a[s].data(), b[s].data(),
                        a[s].size() * sizeof(double)) != 0)
            return false;
    }
    return true;
}

TEST(PopulationDeterminism, ParallelMatchesSerialBitForBit)
{
    const auto measures = tinyMeasures();
    PopulationConfig serial = tinyPopulation();
    serial.jobs = 1;
    const auto expected = measurePopulation(serial, measures);
    ASSERT_FALSE(expected[0].empty());

    for (int jobs : {2, 8}) {
        PopulationConfig par = tinyPopulation();
        par.jobs = jobs;
        const auto got = measurePopulation(par, measures);
        EXPECT_TRUE(sameBits(expected, got)) << "jobs=" << jobs;
    }
}

TEST(PopulationDeterminism, RepeatedRunsAreStable)
{
    const auto measures = tinyMeasures();
    PopulationConfig cfg = tinyPopulation();
    cfg.jobs = 4;
    const auto first = measurePopulation(cfg, measures);
    const auto second = measurePopulation(cfg, measures);
    EXPECT_TRUE(sameBits(first, second));
}

TEST(PopulationDeterminism, ChunkModeStableAcrossJobs)
{
    // Chunked sharding gives every chunk a fresh tester; its results
    // may differ from module-granularity ones, but must still be
    // independent of the jobs value (chunk boundaries depend only on
    // victimChunk).
    const auto measures = tinyMeasures();
    auto run = [&](int jobs) {
        PopulationConfig cfg = tinyPopulation();
        cfg.perVictimChunks = true;
        cfg.victimChunk = 3;
        cfg.jobs = jobs;
        return measurePopulation(cfg, measures);
    };
    const auto j1 = run(1);
    const auto j2 = run(2);
    const auto j8 = run(8);
    EXPECT_TRUE(sameBits(j1, j2));
    EXPECT_TRUE(sameBits(j1, j8));
}

TEST(PopulationTelemetryTest, ShardsCoverEveryWorkUnit)
{
    const auto measures = tinyMeasures();
    PopulationConfig cfg = tinyPopulation();
    cfg.jobs = 2;
    PopulationTelemetry t;
    const auto series = measurePopulation(cfg, measures, &t);

    EXPECT_EQ(t.jobs, 2);
    EXPECT_FALSE(t.perVictimChunks);
    // Module-granularity sharding: one shard per module instance.
    ASSERT_EQ(t.shards.size(), 2u);
    std::size_t victims = 0;
    for (const auto &s : t.shards) {
        EXPECT_EQ(s.workUnits, s.victims * measures.size());
        victims += s.victims;
    }
    EXPECT_EQ(victims, series[0].size());
    EXPECT_GE(t.wallSeconds, 0.0);
    EXPECT_GE(t.busySeconds(), 0.0);
    EXPECT_EQ(t.workUnits(), victims * measures.size());
}

TEST(PopulationTelemetryTest, ChunkModeSplitsModules)
{
    const auto measures = tinyMeasures();
    PopulationConfig cfg = tinyPopulation();
    cfg.jobs = 2;
    cfg.perVictimChunks = true;
    cfg.victimChunk = 2;
    PopulationTelemetry t;
    const auto series = measurePopulation(cfg, measures, &t);

    EXPECT_TRUE(t.perVictimChunks);
    EXPECT_GT(t.shards.size(), 2u);  // finer than one shard per module
    std::size_t victims = 0;
    for (const auto &s : t.shards) {
        EXPECT_LE(s.victims, 2u);
        victims += s.victims;
    }
    EXPECT_EQ(victims, series[0].size());
}

} // namespace
