/**
 * @file
 * Unit tests for the row-state dataflow analysis: lattice joins over
 * SiMRA merges, copy-chain resolution, loop fixpoints vs unrolled
 * execution, each Df* diagnostic code, and the SARIF rendering of the
 * new code family.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "lint/dataflow.h"
#include "lint/linter.h"
#include "lint/report.h"

namespace {

using namespace pud;
using namespace pud::bender;
using namespace pud::lint;

const dram::TimingParams kT{};

dram::DeviceConfig
smallConfig()
{
    dram::DeviceConfig cfg = dram::makeConfig("HMA81GU7AFR8N-UH");
    cfg.banks = 1;
    cfg.subarraysPerBank = 2;
    cfg.rowsPerSubarray = 64;
    cfg.cols = 256;
    cfg.profile.mapping = dram::MappingScheme::Sequential;
    return cfg;
}

/** ACT src, full restore, reopen dst in the CoMRA window: a copy. */
Program &
comra(Program &p, dram::RowId src, dram::RowId dst)
{
    return p.act(0, src, kT.tRC)
        .pre(0, kT.tRAS)
        .act(0, dst, units::fromNs(7.5))
        .pre(0, kT.tRAS);
}

/** ACT r1, quick PRE, quick ACT r2: opens the SiMRA group. */
Program &
simraOpen(Program &p, dram::RowId r1, dram::RowId r2)
{
    return p.act(0, r1, kT.tRC)
        .pre(0, units::fromNs(3))
        .act(0, r2, units::fromNs(3));
}

bool
hasCode(const std::vector<Diag> &diags, Code code)
{
    return std::any_of(diags.begin(), diags.end(),
                       [&](const Diag &d) { return d.code == code; });
}

RowStateKind
kindOf(const DataflowResult &r, dram::RowId phys)
{
    const RowState *st = r.find(0, phys);
    return st == nullptr ? RowStateKind::Initial : st->kind;
}

// ---- definitions and copies --------------------------------------------

TEST(Dataflow, WrDefinesAndCopyChainsResolve)
{
    Program p;
    const int d = p.addData(dram::RowData(256, dram::DataPattern::PAA));
    p.act(0, 10, kT.tRP).wr(0, d, kT.tRCD).pre(0, kT.tRAS);
    comra(p, 10, 12);
    comra(p, 12, 14);  // chain: still the data-table value
    comra(p, 20, 22);  // initial-contents source resolves to row 20

    const auto r = analyzeDataflow(p, smallConfig());
    ASSERT_NE(r.find(0, 14), nullptr);
    EXPECT_EQ(r.find(0, 14)->kind, RowStateKind::Written);
    EXPECT_EQ(r.find(0, 14)->dataIndex, d);
    ASSERT_NE(r.find(0, 22), nullptr);
    EXPECT_EQ(r.find(0, 22)->kind, RowStateKind::CopyOf);
    EXPECT_EQ(r.find(0, 22)->srcKey, rowKey(0, 20));
    // Sources are consumed, not redefined.
    EXPECT_EQ(r.find(0, 10)->kind, RowStateKind::Written);
    EXPECT_TRUE(r.find(0, 10)->consumed);
    EXPECT_TRUE(r.exact);
}

TEST(Dataflow, ReadBeforeWriteAndUndefinedReads)
{
    Program p;
    p.act(0, 5, kT.tRP).rd(0, kT.tRCD).pre(0, kT.tRAS);
    const auto r = analyzeDataflow(p, smallConfig());
    EXPECT_TRUE(hasCode(r.diags, Code::DfReadBeforeWrite));
    EXPECT_FALSE(hasCode(r.diags, Code::DfReadUndefined));

    // A TRNG-style merge leaves the block charge-shared; reading it
    // back is reading device entropy, not a program value.
    Program q;
    simraOpen(q, 8, 15).rd(0, kT.tRCD).pre(0, kT.tRAS);
    const auto s = analyzeDataflow(q, smallConfig());
    EXPECT_EQ(kindOf(s, 8), RowStateKind::ChargeShared);
    EXPECT_TRUE(hasCode(s.diags, Code::DfReadUndefined));
    // The all-initial merge itself is the deliberate idiom: silent.
    EXPECT_FALSE(hasCode(s.diags, Code::DfMajorityUninitInput));
}

TEST(Dataflow, DeadWriteOnlyWhenOverwrittenUnread)
{
    Program p;
    const int d = p.addData(dram::RowData(256, dram::DataPattern::P55));
    p.act(0, 9, kT.tRP).wr(0, d, kT.tRCD).pre(0, kT.tRAS);
    p.act(0, 9, kT.tRP).wr(0, d, kT.tRCD).pre(0, kT.tRAS);
    const auto r = analyzeDataflow(p, smallConfig());
    EXPECT_TRUE(hasCode(r.diags, Code::DfDeadWrite));
    // The anchor is the *first* (overwritten) WR.
    const auto it = std::find_if(
        r.diags.begin(), r.diags.end(),
        [](const Diag &d2) { return d2.code == Code::DfDeadWrite; });
    EXPECT_EQ(it->instIndex, 1u);

    // Read between the writes: both are live.
    Program q;
    const int e = q.addData(dram::RowData(256, dram::DataPattern::P55));
    q.act(0, 9, kT.tRP).wr(0, e, kT.tRCD).rd(0, kT.tRP).pre(0, kT.tRAS);
    q.act(0, 9, kT.tRP).wr(0, e, kT.tRCD).pre(0, kT.tRAS);
    EXPECT_FALSE(hasCode(analyzeDataflow(q, smallConfig()).diags,
                         Code::DfDeadWrite));

    // An end-of-program live-out is what the host reads back: live.
    Program l;
    const int f = l.addData(dram::RowData(256, dram::DataPattern::P55));
    l.act(0, 9, kT.tRP).wr(0, f, kT.tRCD).pre(0, kT.tRAS);
    EXPECT_FALSE(hasCode(analyzeDataflow(l, smallConfig()).diags,
                         Code::DfDeadWrite));
}

// ---- merge joins -------------------------------------------------------

TEST(Dataflow, GroupWriteThenUnanimousMergeKeepsValue)
{
    Program p;
    const int d = p.addData(dram::RowData(256, dram::DataPattern::PFF));
    // groupWrite idiom: open the block (incidental merge), WR all.
    simraOpen(p, 40, 47).wr(0, d, kT.tRCD).pre(0, kT.tRAS);
    // Re-opening the same block merges eight identical values.
    simraOpen(p, 40, 47).pre(0, kT.tRAS);

    const auto r = analyzeDataflow(p, smallConfig());
    for (dram::RowId row = 40; row < 48; ++row) {
        ASSERT_NE(r.find(0, row), nullptr);
        EXPECT_EQ(r.find(0, row)->kind, RowStateKind::Written);
        EXPECT_EQ(r.find(0, row)->dataIndex, d);
    }
    EXPECT_TRUE(r.merges.empty());  // unanimous joins intern nothing
    EXPECT_FALSE(hasCode(r.diags, Code::DfMajorityTie));
    EXPECT_FALSE(hasCode(r.diags, Code::DfMajorityUninitInput));
}

TEST(Dataflow, TieFreeReplicatedMajority)
{
    Program p;
    // MAJ3 staging: operands 50, 51, 52 replicated (3, 3, 2).
    comra(p, 50, 40);
    comra(p, 50, 41);
    comra(p, 50, 42);
    comra(p, 51, 43);
    comra(p, 51, 44);
    comra(p, 51, 45);
    comra(p, 52, 46);
    comra(p, 52, 47);
    simraOpen(p, 40, 47).pre(0, kT.tRAS);

    const auto r = analyzeDataflow(p, smallConfig());
    ASSERT_EQ(r.merges.size(), 1u);
    EXPECT_FALSE(r.merges[0].tieable);
    EXPECT_EQ(r.merges[0].groupSize, 8);
    ASSERT_EQ(r.merges[0].inputs.size(), 3u);
    int total = 0;
    for (const MergeInput &in : r.merges[0].inputs) {
        EXPECT_EQ(in.value.kind, RowStateKind::CopyOf);
        total += in.weight;
    }
    EXPECT_EQ(total, 8);
    for (dram::RowId row = 40; row < 48; ++row) {
        EXPECT_EQ(kindOf(r, row), RowStateKind::MajorityOf);
        EXPECT_EQ(r.find(0, row)->mergeId, 0);
    }
    EXPECT_FALSE(hasCode(r.diags, Code::DfMajorityTie));
}

TEST(Dataflow, TieableReplicationIsFlagged)
{
    Program p;
    // Naive even split (4, 4): a bitline can tie at 4-vs-4.
    for (dram::RowId dst = 40; dst < 44; ++dst)
        comra(p, 50, dst);
    for (dram::RowId dst = 44; dst < 48; ++dst)
        comra(p, 51, dst);
    simraOpen(p, 40, 47).pre(0, kT.tRAS);

    const auto r = analyzeDataflow(p, smallConfig());
    EXPECT_TRUE(hasCode(r.diags, Code::DfMajorityTie));
    ASSERT_EQ(r.merges.size(), 1u);
    EXPECT_TRUE(r.merges[0].tieable);
}

TEST(Dataflow, PartialStagingIsUninitInput)
{
    Program p;
    // Only half the block is staged; the merge mixes operand data
    // with never-written charge.
    for (dram::RowId dst = 40; dst < 44; ++dst)
        comra(p, 50, dst);
    simraOpen(p, 40, 47).pre(0, kT.tRAS);

    const auto r = analyzeDataflow(p, smallConfig());
    EXPECT_TRUE(hasCode(r.diags, Code::DfMajorityUninitInput));
    for (dram::RowId row = 40; row < 48; ++row)
        EXPECT_EQ(kindOf(r, row), RowStateKind::ChargeShared);
    EXPECT_TRUE(r.merges.empty());
}

TEST(Dataflow, OperandInsideItsOwnGroup)
{
    Program p;
    // Operand row 41 sits inside the activation block; every other
    // block row holds a copy of it.  The merge resolves (unanimous)
    // but destroys the operand's original contents.
    for (dram::RowId dst = 40; dst < 48; ++dst)
        if (dst != 41)
            comra(p, 41, dst);
    simraOpen(p, 40, 47).pre(0, kT.tRAS);

    const auto r = analyzeDataflow(p, smallConfig());
    EXPECT_TRUE(hasCode(r.diags, Code::DfGroupOverlap));
    EXPECT_FALSE(hasCode(r.diags, Code::DfMajorityUninitInput));
    for (dram::RowId row = 40; row < 48; ++row) {
        EXPECT_EQ(kindOf(r, row), RowStateKind::CopyOf);
        EXPECT_EQ(r.find(0, row)->srcKey, rowKey(0, 41));
    }
}

TEST(Dataflow, GroupCrossingSubarrayClobbers)
{
    // A non-power-of-two subarray: offsets 4 and 11 differ in four
    // bits, so the decoder fires offsets 0..15 -- rows 12..15 are in
    // the next subarray (wordline drivers are per-subarray).
    dram::DeviceConfig cfg = smallConfig();
    cfg.rowsPerSubarray = 12;

    Program p;
    simraOpen(p, 4, 11).pre(0, kT.tRAS);
    const auto r = analyzeDataflow(p, cfg);
    EXPECT_TRUE(hasCode(r.diags, Code::DfGroupCrossesSubarray));
    EXPECT_EQ(kindOf(r, 0), RowStateKind::Clobbered);
    EXPECT_EQ(kindOf(r, 15), RowStateKind::Clobbered);
}

// ---- control-row clobber and aggressor aliasing ------------------------

TEST(Dataflow, ControlRowClobberAtSubarrayBoundary)
{
    Program p;
    const int d = p.addData(dram::RowData(256, dram::DataPattern::P00));
    // The pre-fix AND/OR bug: `base - 1` for the first block of
    // subarray 1 lands on row 63, the last row of subarray 0.
    p.act(0, 63, kT.tRP).wr(0, d, kT.tRCD).pre(0, kT.tRAS);
    simraOpen(p, 70, 77).pre(0, kT.tRAS);

    const auto r = analyzeDataflow(p, smallConfig());
    EXPECT_TRUE(hasCode(r.diags, Code::DfControlRowClobber));

    // The same control row written *inside* the active subarray is
    // unconsumed but plausibly intentional: silent.
    Program q;
    const int e = q.addData(dram::RowData(256, dram::DataPattern::P00));
    q.act(0, 72, kT.tRP).wr(0, e, kT.tRCD).pre(0, kT.tRAS);
    simraOpen(q, 70, 77).pre(0, kT.tRAS);
    EXPECT_FALSE(hasCode(analyzeDataflow(q, smallConfig()).diags,
                         Code::DfControlRowClobber));

    // An interior row of the idle subarray is not boundary-shaped.
    Program m;
    const int f = m.addData(dram::RowData(256, dram::DataPattern::P00));
    m.act(0, 10, kT.tRP).wr(0, f, kT.tRCD).pre(0, kT.tRAS);
    simraOpen(m, 70, 77).pre(0, kT.tRAS);
    EXPECT_FALSE(hasCode(analyzeDataflow(m, smallConfig()).diags,
                         Code::DfControlRowClobber));
}

TEST(Dataflow, HammeredNeighbourConsumedAsData)
{
    Program p;
    p.loopBegin(300)
        .act(0, 30, kT.tRP)
        .pre(0, kT.tRAS)
        .loopEnd();
    p.act(0, 31, kT.tRC).rd(0, kT.tRCD).pre(0, kT.tRAS);
    const auto r = analyzeDataflow(p, smallConfig());
    EXPECT_TRUE(hasCode(r.diags, Code::DfAggressorAsData));

    // Same consumption far from any hammer-grade row: silent.
    Program q;
    q.loopBegin(300).act(0, 30, kT.tRP).pre(0, kT.tRAS).loopEnd();
    q.act(0, 60, kT.tRC).rd(0, kT.tRCD).pre(0, kT.tRAS);
    EXPECT_FALSE(hasCode(analyzeDataflow(q, smallConfig()).diags,
                         Code::DfAggressorAsData));
}

// ---- loops: fixpoints vs unrolled execution ----------------------------

void
copyChainBody(Program &p)
{
    comra(p, 10, 12);
    comra(p, 12, 14);
}

TEST(Dataflow, LoopFixpointMatchesUnrolled)
{
    for (std::uint64_t trips : {1ull, 2ull, 17ull}) {
        Program looped;
        looped.loopBegin(trips);
        copyChainBody(looped);
        looped.loopEnd();

        Program unrolled;
        for (std::uint64_t k = 0; k < trips; ++k)
            copyChainBody(unrolled);

        const auto a = analyzeDataflow(looped, smallConfig());
        const auto b = analyzeDataflow(unrolled, smallConfig());
        EXPECT_TRUE(a.exact) << trips;
        ASSERT_EQ(a.rows.size(), b.rows.size()) << trips;
        auto it = b.rows.begin();
        for (const auto &[key, st] : a.rows) {
            EXPECT_EQ(key, it->first) << trips;
            EXPECT_TRUE(st.sameValue(it->second))
                << trips << ": row " << (key & 0xffffffffu) << " "
                << name(st.kind) << " vs " << name(it->second.kind);
            ++it;
        }
    }
}

TEST(Dataflow, RepeatedCopyInLoopIsDeadWrite)
{
    // Each iteration overwrites dst with the same unread value; the
    // fixpoint pass still sees the overwrite-before-consume.
    Program p;
    p.loopBegin(17);
    comra(p, 10, 12);
    p.loopEnd();
    const auto r = analyzeDataflow(p, smallConfig());
    EXPECT_TRUE(r.exact);
    EXPECT_TRUE(hasCode(r.diags, Code::DfDeadWrite));
    EXPECT_EQ(kindOf(r, 12), RowStateKind::CopyOf);
}

TEST(Dataflow, DivergentLoopDegradesToUnknown)
{
    // A 5-deep rolling copy chain shifts state every iteration, so no
    // fixpoint is reached within the pass cap: the rows still in
    // flux degrade to Unknown, the settled prefix stays precise.
    Program p;
    p.loopBegin(17);
    comra(p, 14, 15);
    comra(p, 13, 14);
    comra(p, 12, 13);
    comra(p, 11, 12);
    comra(p, 10, 11);
    p.loopEnd();

    const auto r = analyzeDataflow(p, smallConfig());
    EXPECT_FALSE(r.exact);
    EXPECT_EQ(kindOf(r, 11), RowStateKind::CopyOf);
    EXPECT_EQ(r.find(0, 11)->srcKey, rowKey(0, 10));
    EXPECT_EQ(kindOf(r, 15), RowStateKind::Unknown);

    // The unrolled program resolves fully: every chained row is a
    // copy of row 10 after 17 iterations -- Unknown is sound (it
    // over-approximates), never wrong.
    Program u;
    for (int k = 0; k < 17; ++k) {
        comra(u, 14, 15);
        comra(u, 13, 14);
        comra(u, 12, 13);
        comra(u, 11, 12);
        comra(u, 10, 11);
    }
    const auto s = analyzeDataflow(u, smallConfig());
    EXPECT_TRUE(s.exact);
    EXPECT_EQ(s.find(0, 15)->srcKey, rowKey(0, 10));
}

// ---- lintProgram / SARIF integration -----------------------------------

TEST(Dataflow, LintOptionGatesTheDfFamily)
{
    Program p;
    const int d = p.addData(dram::RowData(256, dram::DataPattern::PAA));
    p.act(0, 9, kT.tRP).wr(0, d, kT.tRCD).pre(0, kT.tRAS);
    p.act(0, 9, kT.tRP).wr(0, d, kT.tRCD).pre(0, kT.tRAS);

    const auto off = lintProgram(p, smallConfig());
    EXPECT_FALSE(hasCode(off.diags, Code::DfDeadWrite));

    LintOptions opts;
    opts.dataflow = true;
    const auto on = lintProgram(p, smallConfig(), opts);
    EXPECT_TRUE(hasCode(on.diags, Code::DfDeadWrite));
    EXPECT_TRUE(on.clean());  // Df* findings are never errors
}

std::string
renderSarif(const LintResult &r, const Program &p)
{
    char *buf = nullptr;
    std::size_t len = 0;
    std::FILE *f = open_memstream(&buf, &len);
    printSarif(r, p, f);
    std::fclose(f);
    std::string out(buf, len);
    std::free(buf);
    return out;
}

TEST(Dataflow, SarifGoldenForEveryDfCode)
{
    const Code codes[] = {
        Code::DfReadBeforeWrite,    Code::DfReadUndefined,
        Code::DfDeadWrite,          Code::DfControlRowClobber,
        Code::DfAggressorAsData,    Code::DfGroupCrossesSubarray,
        Code::DfGroupOverlap,       Code::DfMajorityUninitInput,
        Code::DfMajorityTie,
    };
    LintResult r;
    for (Code c : codes)
        r.diags.push_back({c, severityOf(c), 0, "synthetic"});
    Program p;
    p.nop(10);

    const std::string out = renderSarif(r, p);
    for (Code c : codes) {
        EXPECT_NE(out.find(std::string("\"id\":\"") + name(c) + "\""),
                  std::string::npos)
            << name(c);
    }
    EXPECT_NE(out.find("\"id\":\"df-dead-write\""), std::string::npos);
    EXPECT_NE(out.find("\"level\":\"note\""), std::string::npos);
    EXPECT_NE(out.find("\"level\":\"warning\""), std::string::npos);
}

TEST(Dataflow, SarifEndToEndWithDataflowOption)
{
    Program p;
    simraOpen(p, 8, 15).rd(0, kT.tRCD).pre(0, kT.tRAS);
    LintOptions opts;
    opts.dataflow = true;
    const auto r = lintProgram(p, smallConfig(), opts);
    const std::string out = renderSarif(r, p);
    EXPECT_NE(out.find("\"id\":\"df-read-undefined\""),
              std::string::npos);
}

} // namespace
