/**
 * @file
 * Unit tests for the bender-program static analyzer: one fixture per
 * diagnostic code, golden clean canonical patterns, and the executor
 * pre-flight integration.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bender/host.h"
#include "hammer/patterns.h"
#include "lint/absint.h"
#include "lint/effects.h"
#include "lint/linter.h"
#include "lint/report.h"

namespace {

using namespace pud;
using namespace pud::bender;
using namespace pud::lint;

dram::DeviceConfig
smallConfig(const std::string &module = "HMA81GU7AFR8N-UH")
{
    dram::DeviceConfig cfg = dram::makeConfig(module);
    cfg.banks = 1;
    cfg.subarraysPerBank = 2;
    cfg.rowsPerSubarray = 64;
    cfg.cols = 256;
    // Identity mapping so tests can reason about physical adjacency
    // directly in the row numbers they pass to the builders.
    cfg.profile.mapping = dram::MappingScheme::Sequential;
    return cfg;
}

bool
has(const LintResult &r, Code code)
{
    return std::any_of(r.diags.begin(), r.diags.end(),
                       [&](const Diag &d) { return d.code == code; });
}

std::size_t
countCode(const LintResult &r, Code code)
{
    return static_cast<std::size_t>(
        std::count_if(r.diags.begin(), r.diags.end(),
                      [&](const Diag &d) { return d.code == code; }));
}

const dram::TimingParams kT{};

// ---- loop structure ----------------------------------------------------

TEST(Lint, UnbalancedLoop)
{
    Program p;
    p.loopBegin(3).act(0, 1, kT.tRP).pre(0, kT.tRAS);
    const auto r = lintProgram(p, smallConfig());
    EXPECT_TRUE(has(r, Code::UnbalancedLoop));
    EXPECT_FALSE(r.clean());
}

TEST(Lint, EmptyLoop)
{
    Program p;
    p.loopBegin(5).loopEnd();
    const auto r = lintProgram(p, smallConfig());
    EXPECT_TRUE(has(r, Code::EmptyLoop));
    EXPECT_TRUE(r.clean());  // warning, not error
}

TEST(Lint, ZeroTripLoop)
{
    Program p;
    p.loopBegin(0).act(0, 1, kT.tRP).pre(0, kT.tRAS).loopEnd();
    const auto r = lintProgram(p, smallConfig());
    EXPECT_TRUE(has(r, Code::ZeroTripLoop));
    EXPECT_EQ(r.duration, 0);  // body never executes
}

TEST(Lint, FastPathEligible)
{
    Program p;
    p.loopBegin(1000).act(0, 1, kT.tRP).pre(0, kT.tRAS).loopEnd();
    const auto r = lintProgram(p, smallConfig());
    EXPECT_TRUE(has(r, Code::FastPathEligible));
    EXPECT_FALSE(has(r, Code::FastPathIneligible));
}

TEST(Lint, RefBearingLoopIsNowFastPathEligible)
{
    // REF and nested loops no longer defeat the fast-path (the
    // executor replays them closed-form); only RD does.
    Program p;
    p.loopBegin(1000)
        .act(0, 1, kT.tRP)
        .pre(0, kT.tRAS)
        .ref(kT.tRP)
        .nop(kT.tRFC)
        .loopEnd();
    const auto r = lintProgram(p, smallConfig());
    EXPECT_TRUE(has(r, Code::FastPathEligible));
    EXPECT_FALSE(has(r, Code::FastPathIneligible));
}

TEST(Lint, FastPathIneligibleExplainsWhy)
{
    Program p;
    p.loopBegin(1000)
        .act(0, 1, kT.tRP)
        .rd(0, kT.tRCD)
        .pre(0, kT.tRAS)
        .loopEnd();
    const auto r = lintProgram(p, smallConfig());
    ASSERT_TRUE(has(r, Code::FastPathIneligible));
    for (const Diag &d : r.diags) {
        if (d.code == Code::FastPathIneligible) {
            EXPECT_NE(d.message.find("RD"), std::string::npos);
        }
    }
}

TEST(Lint, ShortLoopGetsNoFastPathNote)
{
    Program p;
    p.loopBegin(2).act(0, 1, kT.tRP).pre(0, kT.tRAS).loopEnd();
    const auto r = lintProgram(p, smallConfig());
    EXPECT_FALSE(has(r, Code::FastPathEligible));
    EXPECT_FALSE(has(r, Code::FastPathIneligible));
}

// ---- per-bank DDR protocol ---------------------------------------------

TEST(Lint, BankOutOfRange)
{
    Program p;
    p.act(5, 1, kT.tRP);
    const auto r = lintProgram(p, smallConfig());
    EXPECT_TRUE(has(r, Code::BankOutOfRange));
    EXPECT_FALSE(r.clean());
}

TEST(Lint, RowOutOfRange)
{
    Program p;
    p.act(0, 500, kT.tRP).pre(0, kT.tRAS);
    const auto r = lintProgram(p, smallConfig());
    EXPECT_TRUE(has(r, Code::RowOutOfRange));
    EXPECT_FALSE(r.clean());
}

TEST(Lint, ActWhileOpen)
{
    Program p;
    p.act(0, 1, kT.tRP).act(0, 2, kT.tRC).pre(0, kT.tRAS);
    const auto r = lintProgram(p, smallConfig());
    EXPECT_TRUE(has(r, Code::ActWhileOpen));
    EXPECT_FALSE(r.clean());
}

TEST(Lint, RdOnClosedBank)
{
    Program p;
    p.rd(0, kT.tRCD);
    const auto r = lintProgram(p, smallConfig());
    EXPECT_TRUE(has(r, Code::RdOnClosedBank));
    EXPECT_FALSE(r.clean());
}

TEST(Lint, WrOnClosedBank)
{
    Program p;
    const int d = p.addData(dram::RowData(256, dram::DataPattern::P55));
    p.wr(0, d, kT.tRCD);
    const auto r = lintProgram(p, smallConfig());
    EXPECT_TRUE(has(r, Code::WrOnClosedBank));
    EXPECT_FALSE(r.clean());
}

TEST(Lint, PreOnIdleBank)
{
    Program p;
    p.pre(0, kT.tRP);
    const auto r = lintProgram(p, smallConfig());
    EXPECT_TRUE(has(r, Code::PreOnIdleBank));
    EXPECT_TRUE(r.clean());  // a no-op, not an error
}

TEST(Lint, PreAllIsNotPreOnIdle)
{
    Program p;
    p.act(0, 1, kT.tRP).preAll(kT.tRAS).preAll(kT.tRP);
    const auto r = lintProgram(p, smallConfig());
    EXPECT_FALSE(has(r, Code::PreOnIdleBank));
}

TEST(Lint, RefWithOpenBank)
{
    Program p;
    p.act(0, 1, kT.tRP).ref(kT.tRAS);
    const auto r = lintProgram(p, smallConfig());
    EXPECT_TRUE(has(r, Code::RefWithOpenBank));
    EXPECT_FALSE(r.clean());
}

TEST(Lint, NegativeGap)
{
    Program p;
    p.act(0, 1, -5).pre(0, kT.tRAS);
    const auto r = lintProgram(p, smallConfig());
    EXPECT_TRUE(has(r, Code::NegativeGap));
    EXPECT_FALSE(r.clean());
}

TEST(Lint, OpenBankAtEnd)
{
    Program p;
    p.act(0, 1, kT.tRP);
    const auto r = lintProgram(p, smallConfig());
    EXPECT_TRUE(has(r, Code::OpenBankAtEnd));
    EXPECT_TRUE(r.clean());  // warning: the *next* program fatals
}

// ---- data table --------------------------------------------------------

TEST(Lint, WrBadDataIndex)
{
    Program p;
    p.act(0, 1, kT.tRP).wrUnchecked(0, 3, kT.tRCD).pre(0, kT.tRAS);
    const auto r = lintProgram(p, smallConfig());
    EXPECT_TRUE(has(r, Code::WrBadDataIndex));
    EXPECT_FALSE(r.clean());
}

TEST(Lint, WrWidthMismatch)
{
    Program p;
    const int d = p.addData(dram::RowData(128, dram::DataPattern::P55));
    p.act(0, 1, kT.tRP).wr(0, d, kT.tRCD).pre(0, kT.tRAS);
    const auto r = lintProgram(p, smallConfig());
    EXPECT_TRUE(has(r, Code::WrWidthMismatch));
    EXPECT_FALSE(r.clean());
}

// ---- timing classifier -------------------------------------------------

TEST(Lint, IntendedComra)
{
    Program p;
    p.act(0, 32, kT.tRP)
        .pre(0, kT.tRAS)
        .act(0, 34, units::fromNs(7.5))
        .pre(0, kT.tRAS);
    const auto r = lintProgram(p, smallConfig());
    EXPECT_TRUE(has(r, Code::IntendedComra));
    EXPECT_EQ(r.count(Severity::Warning), 0u);
}

TEST(Lint, IntendedSimra)
{
    Program p;
    p.act(0, 32, kT.tRP)
        .pre(0, units::fromNs(3))
        .act(0, 38, units::fromNs(3))
        .pre(0, kT.tRAS);
    const auto r = lintProgram(p, smallConfig());
    EXPECT_TRUE(has(r, Code::IntendedSimra));
    EXPECT_EQ(r.count(Severity::Warning), 0u);
}

TEST(Lint, SimraUnsupportedModule)
{
    // KVR21S15S8/4 (Micron) ignores grossly violating commands.
    Program p;
    p.act(0, 32, kT.tRP)
        .pre(0, units::fromNs(3))
        .act(0, 38, units::fromNs(3))
        .pre(0, kT.tRAS);
    const auto r = lintProgram(p, smallConfig("KVR21S15S8/4"));
    EXPECT_TRUE(has(r, Code::SimraUnsupported));
    EXPECT_FALSE(has(r, Code::IntendedSimra));
}

TEST(Lint, SuspiciousPreToAct)
{
    // Between the CoMRA window (13.0 ns) and nominal tRP (13.75 ns):
    // an accidental violation that neither copies nor is nominal.
    Program p;
    p.act(0, 32, kT.tRP)
        .pre(0, kT.tRAS)
        .act(0, 34, units::fromNs(13.4))
        .pre(0, kT.tRAS);
    const auto r = lintProgram(p, smallConfig());
    EXPECT_TRUE(has(r, Code::SuspiciousPreToAct));
    EXPECT_FALSE(has(r, Code::IntendedComra));
}

TEST(Lint, ComraAcrossSubarraysIsSuspicious)
{
    // Rows 32 and 96 are in different subarrays (64 rows each): the
    // gap is in the CoMRA window but no copy can occur.
    Program p;
    p.act(0, 32, kT.tRP)
        .pre(0, kT.tRAS)
        .act(0, 96, units::fromNs(7.5))
        .pre(0, kT.tRAS);
    const auto r = lintProgram(p, smallConfig());
    EXPECT_TRUE(has(r, Code::SuspiciousPreToAct));
    EXPECT_FALSE(has(r, Code::IntendedComra));
}

TEST(Lint, SuspiciousActToPre)
{
    // 20 ns on-time: violates tRAS but is far above the SiMRA window.
    Program p;
    p.act(0, 32, kT.tRP)
        .pre(0, units::fromNs(20))
        .act(0, 34, kT.tRP)
        .pre(0, kT.tRAS);
    const auto r = lintProgram(p, smallConfig());
    EXPECT_TRUE(has(r, Code::SuspiciousActToPre));
    EXPECT_FALSE(has(r, Code::IntendedSimra));
}

TEST(Lint, SuspiciousActToActWithCustomTrc)
{
    // With the default set any tRC violation implies a tRAS or tRP
    // violation (tRAS + tRP > tRC); a custom tRC = 60 ns exposes the
    // pure ACT->ACT check.
    dram::DeviceConfig cfg = smallConfig();
    cfg.timings.tRC = units::fromNs(60);
    Program p;
    p.act(0, 32, kT.tRP)
        .pre(0, kT.tRAS)
        .act(0, 34, units::fromNs(14))
        .pre(0, kT.tRAS);
    const auto r = lintProgram(p, cfg);
    EXPECT_TRUE(has(r, Code::SuspiciousActToAct));
}

TEST(Lint, ColumnBeforeTrcd)
{
    Program p;
    p.act(0, 1, kT.tRP).rd(0, units::fromNs(5)).pre(0, kT.tRAS);
    const auto r = lintProgram(p, smallConfig());
    EXPECT_TRUE(has(r, Code::ColumnBeforeTrcd));
    EXPECT_TRUE(r.clean());
}

TEST(Lint, RefRecoveryShort)
{
    Program p;
    p.ref(kT.tRP).act(0, 1, units::fromNs(100)).pre(0, kT.tRAS);
    const auto r = lintProgram(p, smallConfig());
    EXPECT_TRUE(has(r, Code::RefRecoveryShort));
    EXPECT_TRUE(r.clean());
}

TEST(Lint, RefreshWindowExceeded)
{
    // 2M iterations x ~50 ns = ~100 ms > tREFW (64 ms), no REF.
    Program p;
    p.loopBegin(2000000)
        .act(0, 1, kT.tRP)
        .pre(0, kT.tRAS)
        .loopEnd();
    const auto r = lintProgram(p, smallConfig());
    EXPECT_TRUE(has(r, Code::RefreshWindowExceeded));
    EXPECT_GT(r.duration, smallConfig().timings.tREFW);
}

TEST(Lint, RefSuppressesWindowWarning)
{
    Program p;
    p.loopBegin(2000000)
        .act(0, 1, kT.tRP)
        .pre(0, kT.tRAS)
        .ref(kT.tRP)
        .loopEnd();
    const auto r = lintProgram(p, smallConfig());
    EXPECT_FALSE(has(r, Code::RefreshWindowExceeded));
}

// ---- golden clean programs ---------------------------------------------

TEST(LintGolden, DoubleSidedRowHammerIsClean)
{
    hammer::PatternTimings t;
    const auto p = hammer::doubleSidedRowHammer(0, 32, 34, 50000, t);
    const auto r = lintProgram(p, smallConfig());
    EXPECT_EQ(r.count(Severity::Error), 0u);
    EXPECT_EQ(r.count(Severity::Warning), 0u);
}

TEST(LintGolden, ComraHammerIsClean)
{
    hammer::PatternTimings t;
    const auto p = hammer::comraHammer(0, 32, 34, 50000, t);
    const auto r = lintProgram(p, smallConfig());
    EXPECT_EQ(r.count(Severity::Error), 0u);
    EXPECT_EQ(r.count(Severity::Warning), 0u);
    EXPECT_TRUE(has(r, Code::IntendedComra));
}

TEST(LintGolden, SimraHammerIsClean)
{
    hammer::PatternTimings t;
    const auto p = hammer::simraHammer(0, 32, 38, 50000, t);
    const auto r = lintProgram(p, smallConfig());
    EXPECT_EQ(r.count(Severity::Error), 0u);
    EXPECT_EQ(r.count(Severity::Warning), 0u);
    EXPECT_TRUE(has(r, Code::IntendedSimra));
}

TEST(LintGolden, CombinedPatternIsClean)
{
    hammer::PatternTimings t;
    hammer::CombinedCounts counts;
    counts.comra = 1000;
    counts.simra = 1000;
    counts.rowHammer = 50000;
    const auto p =
        hammer::combinedPattern(0, 32, 34, 32, 34, 32, 38, counts, t);
    const auto r = lintProgram(p, smallConfig());
    EXPECT_EQ(r.count(Severity::Error), 0u);
    EXPECT_EQ(r.count(Severity::Warning), 0u);
}

// ---- walk mechanics ----------------------------------------------------

TEST(Lint, DiagnosticsDedupAcrossLoopIterations)
{
    Program p;
    p.loopBegin(1000).pre(0, kT.tRP).loopEnd();
    const auto r = lintProgram(p, smallConfig());
    EXPECT_EQ(countCode(r, Code::PreOnIdleBank), 1u);
}

TEST(Lint, DurationMatchesExecutor)
{
    Program p;
    p.loopBegin(1000)
        .act(0, 1, units::fromNs(15))
        .pre(0, units::fromNs(36))
        .loopEnd();
    const auto r = lintProgram(p, smallConfig());

    dram::Device dev(smallConfig());
    Executor ex(dev);
    ex.setPreflight(false);
    const auto exec = ex.run(p);
    EXPECT_EQ(r.duration, exec.endTime - exec.startTime);
}

TEST(Lint, NamesAreStable)
{
    for (int c = 0; c <= static_cast<int>(Code::DiagFlood); ++c) {
        EXPECT_STRNE(name(static_cast<Code>(c)), "?");
    }
    EXPECT_STREQ(name(Severity::Error), "error");
    EXPECT_STREQ(name(Severity::Warning), "warning");
    EXPECT_STREQ(name(Severity::Note), "note");
}

TEST(Lint, DescribeInst)
{
    Program p;
    p.act(0, 5, units::fromNs(13.75));
    EXPECT_EQ(describeInst(p, 0), "ACT b0 r5 @+13.75ns");
    EXPECT_EQ(describeInst(p, 9), "<end>");
}

// ---- integration -------------------------------------------------------

TEST(LintPreflight, RequireCleanIsFatalOnErrors)
{
    Program p;
    p.act(0, 1, kT.tRP).wrUnchecked(0, 3, kT.tRCD).pre(0, kT.tRAS);
    EXPECT_DEATH(requireClean(p, smallConfig(), "test"),
                 "pre-flight lint failed");
}

TEST(LintPreflight, ExecutorRefusesBadProgramWhenEnabled)
{
    dram::Device dev(smallConfig());
    Executor ex(dev);
    ex.setPreflight(true);
    Program p;
    p.act(0, 1, kT.tRP).wrUnchecked(0, 3, kT.tRCD).pre(0, kT.tRAS);
    EXPECT_DEATH(ex.run(p), "pre-flight lint failed");
}

TEST(LintPreflight, ExecutorWithoutPreflightDiesInExecOne)
{
    dram::Device dev(smallConfig());
    Executor ex(dev);
    ex.setPreflight(false);
    Program p;
    p.act(0, 1, kT.tRP).wrUnchecked(0, 3, kT.tRCD).pre(0, kT.tRAS);
    EXPECT_DEATH(ex.run(p), "invalid data index");
}

TEST(LintPreflight, ExecutorRunsCleanProgramWithPreflight)
{
    dram::Device dev(smallConfig());
    Executor ex(dev);
    ex.setPreflight(true);
    hammer::PatternTimings t;
    const auto p = hammer::comraHammer(0, 32, 34, 1000, t);
    const auto r = ex.run(p);
    EXPECT_GT(r.endTime, r.startTime);
}

TEST(LintPreflight, ExecutorEffectsPreflightStillRuns)
{
    dram::Device dev(smallConfig());
    Executor ex(dev);
    ex.setPreflight(true);
    ex.setPreflightEffects(true);
    hammer::PatternTimings t;
    // Hammer-grade (>= kHammerIntentCloses) but hopeless: the
    // pre-flight reports DisturbanceImpossible yet must not refuse.
    const auto p = hammer::doubleSidedRowHammer(0, 32, 34, 300, t);
    const auto r = ex.run(p);
    EXPECT_GT(r.endTime, r.startTime);
}

// ---- loop summaries (absint) -------------------------------------------

constexpr int kConv = static_cast<int>(dram::TechClass::Conventional);
constexpr int kComra = static_cast<int>(dram::TechClass::Comra);
constexpr int kSimra = static_cast<int>(dram::TechClass::Simra);

TEST(AbsInt, TripCountIndependence)
{
    hammer::PatternTimings t;
    const auto cfg = smallConfig();
    const auto s1 = summarizeEffects(
        hammer::doubleSidedRowHammer(0, 32, 34, 1000, t), cfg);
    const auto s2 = summarizeEffects(
        hammer::doubleSidedRowHammer(0, 32, 34, 2000, t), cfg);
    const auto big = summarizeEffects(
        hammer::doubleSidedRowHammer(0, 32, 34, 1000000, t), cfg);

    // The no-unrolling guarantee: analysis work is identical at a
    // thousand and a million iterations.
    EXPECT_EQ(big.steps, s1.steps);
    EXPECT_TRUE(big.exact);

    // Additive fields are closed-form in the trip count ...
    EXPECT_EQ(big.totalActs, 1000 * s1.totalActs);
    const RowActivity *row = findRow(big, 0, 32);
    ASSERT_NE(row, nullptr);
    EXPECT_EQ(row->acts, 1000000u);
    EXPECT_EQ(row->closes[kConv], 1000000u);
    EXPECT_EQ(row->closes[kComra], 0u);

    // ... and so is the duration: extrapolating the two small runs
    // linearly must land exactly on the million-iteration result.
    EXPECT_EQ(big.duration,
              s1.duration + (s2.duration - s1.duration) * 999);

    // A steady-state loop pins min == max inter-ACT spacing.
    EXPECT_GT(row->minInterAct, 0);
    EXPECT_EQ(row->minInterAct, row->maxInterAct);
}

TEST(AbsInt, ClassifiesComraCloses)
{
    hammer::PatternTimings t;
    const auto fx = summarizeEffects(
        hammer::comraHammer(0, 32, 34, 5000, t), smallConfig());
    const RowActivity *src = findRow(fx, 0, 32);
    const RowActivity *dst = findRow(fx, 0, 34);
    ASSERT_NE(src, nullptr);
    ASSERT_NE(dst, nullptr);
    // One copy cycle = two Comra-class closes (src + dst).
    EXPECT_EQ(src->closes[kComra], 5000u);
    EXPECT_EQ(dst->closes[kComra], 5000u);
    EXPECT_EQ(src->closes[kConv], 0u);
    EXPECT_EQ(dst->closes[kConv], 0u);
    // The copy delay is the violated PRE -> ACT gap, per close.
    EXPECT_EQ(src->comraDelaySum, 5000 * t.comraPreToAct);
}

TEST(AbsInt, ClassifiesSimraGroupCloses)
{
    hammer::PatternTimings t;
    const auto fx = summarizeEffects(
        hammer::simraHammer(0, 32, 38, 4000, t), smallConfig());
    // Rows 32 and 38 differ in bits 1-2: the bit-combination group is
    // {32, 34, 36, 38}, and every member takes each close.
    for (RowId r : {32u, 34u, 36u, 38u}) {
        const RowActivity *ra = findRow(fx, 0, r);
        ASSERT_NE(ra, nullptr) << "row " << r;
        EXPECT_EQ(ra->closes[kSimra], 4000u) << "row " << r;
        EXPECT_EQ(ra->simraN, 4) << "row " << r;
    }
    // Only the two issued addresses accrue ACT commands.
    EXPECT_EQ(findRow(fx, 0, 32)->acts, 4000u);
    EXPECT_EQ(findRow(fx, 0, 34)->acts, 0u);
}

TEST(AbsInt, NestedLoopsMultiply)
{
    Program p;
    p.loopBegin(10);
    p.loopBegin(100).act(0, 1, kT.tRP).pre(0, kT.tRAS).loopEnd();
    p.loopEnd();
    const auto fx = summarizeEffects(p, smallConfig());
    EXPECT_TRUE(fx.exact);
    EXPECT_EQ(fx.totalActs, 1000u);
    const RowActivity *row = findRow(fx, 0, 1);
    ASSERT_NE(row, nullptr);
    EXPECT_EQ(row->acts, 1000u);
}

TEST(AbsInt, UnbalancedLoopIsLowerBound)
{
    Program p;
    p.loopBegin(1000).act(0, 1, kT.tRP).pre(0, kT.tRAS);
    const auto fx = summarizeEffects(p, smallConfig());
    EXPECT_FALSE(fx.exact);
    EXPECT_EQ(fx.totalActs, 1u);  // tail analyzed once
}

// ---- static disturbance-effect prediction ------------------------------

class EffectsFamily : public ::testing::TestWithParam<const char *>
{
};

TEST_P(EffectsFamily, HammerAboveThresholdIsLikely)
{
    const auto cfg = smallConfig(GetParam());
    const auto hc = static_cast<std::uint64_t>(cfg.profile.rhMin);
    hammer::PatternTimings t;
    const auto p = hammer::doubleSidedRowHammer(0, 32, 34, 4 * hc, t);

    LintOptions opts;
    opts.effects = true;
    EffectReport report;
    const auto r = lintProgram(p, cfg, opts, &report);

    EXPECT_TRUE(has(r, Code::DisturbanceLikely));
    EXPECT_FALSE(has(r, Code::DisturbanceImpossible));
    EXPECT_TRUE(report.anyLikely);
    ASSERT_FALSE(report.victims.empty());
    // The sandwiched row takes the most damage.
    const VictimPrediction &top = report.victims.front();
    EXPECT_EQ(top.victimPhys, 33u);
    EXPECT_TRUE(top.doubleSided);
    EXPECT_EQ(top.verdict, Verdict::Likely);
    EXPECT_GT(top.optimisticDamage, 1.0);
    EXPECT_EQ(top.dominantClass, dram::TechClass::Conventional);
}

TEST_P(EffectsFamily, HammerFarBelowThresholdIsImpossible)
{
    const auto cfg = smallConfig(GetParam());
    const auto hc = static_cast<std::uint64_t>(cfg.profile.rhMin);
    // ~1% of HC_first, kept above the hammer-intent floor so the
    // predictor treats the program as a (doomed) attack.
    const std::uint64_t h =
        std::max<std::uint64_t>(hc / 100, kHammerIntentCloses);
    hammer::PatternTimings t;
    const auto p = hammer::doubleSidedRowHammer(0, 32, 34, h, t);

    LintOptions opts;
    opts.effects = true;
    EffectReport report;
    const auto r = lintProgram(p, cfg, opts, &report);

    EXPECT_FALSE(has(r, Code::DisturbanceLikely));
    EXPECT_TRUE(has(r, Code::DisturbanceImpossible));
    EXPECT_FALSE(report.anyLikely);
    EXPECT_GE(report.hottestCloses, kHammerIntentCloses);
    for (const VictimPrediction &v : report.victims) {
        EXPECT_EQ(v.verdict, Verdict::Impossible);
        EXPECT_LT(v.optimisticDamage, 1.0);
    }
}

INSTANTIATE_TEST_SUITE_P(CalibratedFamilies, EffectsFamily,
                         ::testing::Values("HMA81GU7AFR8N-UH",
                                           "75TT21NUS1R8-4"));

TEST(Effects, DefaultLintLeavesPredictorOff)
{
    hammer::PatternTimings t;
    const auto p = hammer::doubleSidedRowHammer(0, 32, 34, 200000, t);
    const auto r = lintProgram(p, smallConfig());
    EXPECT_FALSE(has(r, Code::DisturbanceLikely));
    EXPECT_FALSE(has(r, Code::DisturbanceImpossible));
}

// ---- refresh cadence ---------------------------------------------------

TEST(Lint, RefreshCadenceSparseOnClusteredRefs)
{
    Program p;
    p.ref(kT.tRFC).ref(kT.tRFC).ref(kT.tRFC);
    p.loopBegin(2000000).act(0, 1, kT.tRP).pre(0, kT.tRAS).loopEnd();
    const auto r = lintProgram(p, smallConfig());
    // REFs exist, so the window diagnostic steps aside for the
    // cadence one: all the refresh happens up front, leaving a
    // ~100 ms unrefreshed tail.
    EXPECT_TRUE(has(r, Code::RefreshCadenceSparse));
    EXPECT_FALSE(has(r, Code::RefreshWindowExceeded));
}

TEST(Lint, EvenRefCadenceIsNotSparse)
{
    Program p;
    p.loopBegin(10000).ref(kT.tREFI).loopEnd();
    const auto r = lintProgram(p, smallConfig());
    // 78 ms of runtime, but REFs paced at tREFI stay inside the
    // nominal 8192-per-tREFW budget (plus slack).
    EXPECT_FALSE(has(r, Code::RefreshCadenceSparse));
    EXPECT_FALSE(has(r, Code::RefreshWindowExceeded));
}

// ---- diagnostic flood cap ----------------------------------------------

TEST(Lint, DiagFloodCapsRepeatedCodes)
{
    Program p;
    for (int i = 0; i < 100; ++i)
        p.pre(0, kT.tRP);
    const auto r = lintProgram(p, smallConfig());
    EXPECT_EQ(countCode(r, Code::PreOnIdleBank), 8u);
    EXPECT_EQ(countCode(r, Code::DiagFlood), 1u);
    EXPECT_EQ(r.suppressed, 92u);
    const auto it = std::find_if(
        r.diags.begin(), r.diags.end(),
        [](const Diag &d) { return d.code == Code::DiagFlood; });
    ASSERT_NE(it, r.diags.end());
    EXPECT_NE(it->message.find("92 more"), std::string::npos);

    // Cap 0 disables the limiter entirely.
    LintOptions opts;
    opts.maxRepeatsPerCode = 0;
    const auto all = lintProgram(p, smallConfig(), opts);
    EXPECT_EQ(countCode(all, Code::PreOnIdleBank), 100u);
    EXPECT_EQ(countCode(all, Code::DiagFlood), 0u);
    EXPECT_EQ(all.suppressed, 0u);
}

// ---- reporters ---------------------------------------------------------

std::string
renderWith(void (*fn)(const LintResult &, const Program &, std::FILE *),
           const LintResult &r, const Program &p)
{
    char *buf = nullptr;
    std::size_t len = 0;
    std::FILE *f = open_memstream(&buf, &len);
    fn(r, p, f);
    std::fclose(f);
    std::string out(buf, len);
    std::free(buf);
    return out;
}

LintResult
sampleResult()
{
    LintResult r;
    r.duration = units::fromNs(100);
    r.diags.push_back({Code::PreOnIdleBank, Severity::Warning, 0,
                       "say \"no\"\nto stray PREs"});
    r.diags.push_back({Code::DisturbanceLikely, Severity::Note, 1,
                       "backslash \\ and tab\t"});
    return r;
}

Program
sampleProgram()
{
    Program p;
    p.act(0, 5, kT.tRP).pre(0, kT.tRAS);
    return p;
}

TEST(LintReport, TableGolden)
{
    const std::string out =
        renderWith(printReport, sampleResult(), sampleProgram());
    EXPECT_NE(out.find("pre-on-idle-bank"), std::string::npos);
    EXPECT_NE(out.find("disturbance-likely"), std::string::npos);
    EXPECT_NE(out.find("ACT b0 r5"), std::string::npos);
    EXPECT_NE(out.find("2 instruction(s), duration 0.100 us: "
                       "0 error(s), 1 warning(s), 1 note(s)"),
              std::string::npos);
}

TEST(LintReport, JsonEscapesQuotesAndNewlines)
{
    const std::string out =
        renderWith(printJson, sampleResult(), sampleProgram());
    EXPECT_NE(out.find("\"warnings\":1"), std::string::npos);
    EXPECT_NE(out.find("\"notes\":1"), std::string::npos);
    EXPECT_NE(out.find("say \\\"no\\\"\\nto stray PREs"),
              std::string::npos);
    EXPECT_NE(out.find("backslash \\\\ and tab\\t"), std::string::npos);
    // Raw control characters must never reach the document.
    EXPECT_EQ(out.find('\t'), std::string::npos);
}

TEST(LintReport, SarifShape)
{
    const std::string out =
        renderWith(printSarif, sampleResult(), sampleProgram());

    // SARIF 2.1.0 envelope.
    EXPECT_NE(out.find("sarif-schema-2.1.0.json"), std::string::npos);
    EXPECT_NE(out.find("\"version\":\"2.1.0\""), std::string::npos);
    EXPECT_NE(out.find("\"name\":\"pud-lint\""), std::string::npos);

    // Rules in first-use order, referenced by index.
    EXPECT_NE(out.find("\"id\":\"pre-on-idle-bank\""), std::string::npos);
    EXPECT_NE(out.find("\"id\":\"disturbance-likely\""),
              std::string::npos);
    EXPECT_NE(out.find("\"ruleId\":\"pre-on-idle-bank\",\"ruleIndex\":0"),
              std::string::npos);
    EXPECT_NE(
        out.find("\"ruleId\":\"disturbance-likely\",\"ruleIndex\":1"),
        std::string::npos);
    EXPECT_NE(out.find("\"defaultConfiguration\":{\"level\":\"warning\"}"),
              std::string::npos);

    // Results: levels, escaped message, synthetic artifact location.
    EXPECT_NE(out.find("\"level\":\"warning\""), std::string::npos);
    EXPECT_NE(out.find("say \\\"no\\\"\\nto stray PREs"),
              std::string::npos);
    EXPECT_NE(out.find("\"uri\":\"bender:///program\""),
              std::string::npos);
    EXPECT_NE(out.find("\"startLine\":1"), std::string::npos);
    EXPECT_NE(out.find("\"startLine\":2"), std::string::npos);

    // The document is at least brace-balanced.
    EXPECT_EQ(std::count(out.begin(), out.end(), '{'),
              std::count(out.begin(), out.end(), '}'));
}

TEST(LintReport, FloodedCountsStayVisibleToSummariesAndWerror)
{
    // Regression: the flood cap trims the *listing*, never the run
    // summary or the exit decision.  100 warnings capped at 8 visible
    // sites must still total 100 in every reporter and in the counts
    // --werror consults.
    Program warn_p;
    for (int i = 0; i < 100; ++i)
        warn_p.pre(0, kT.tRP);
    const auto w = lintProgram(warn_p, smallConfig());
    EXPECT_EQ(w.count(Severity::Warning), 8u);
    EXPECT_EQ(w.suppressedBySeverity[static_cast<std::size_t>(
                  Severity::Warning)],
              92u);
    EXPECT_EQ(w.totalCount(Severity::Warning), 100u);
    EXPECT_TRUE(w.clean());

    const std::string json = renderWith(printJson, w, warn_p);
    EXPECT_NE(json.find("\"warnings\":100"), std::string::npos);
    EXPECT_NE(json.find("\"suppressed\":{\"total\":92"),
              std::string::npos);

    const std::string sarif = renderWith(printSarif, w, warn_p);
    EXPECT_NE(sarif.find("\"suppressedByFloodCap\":92"),
              std::string::npos);
    EXPECT_NE(sarif.find("\"suppressedWarnings\":92"),
              std::string::npos);

    const std::string table = renderWith(printReport, w, warn_p);
    EXPECT_NE(table.find("100 warning(s)"), std::string::npos);
    EXPECT_NE(table.find("92 suppressed"), std::string::npos);

    // Errors past the cap must still fail clean(): a flood of
    // suppressed protocol violations is not a clean program.
    Program err_p;
    for (int i = 0; i < 20; ++i)
        err_p.act(0, 1 << 20, kT.tRC).pre(0, kT.tRAS);
    LintOptions opts;
    opts.maxRepeatsPerCode = 4;
    const auto e = lintProgram(err_p, smallConfig(), opts);
    EXPECT_EQ(e.count(Severity::Error), 4u);
    EXPECT_EQ(e.totalCount(Severity::Error), 20u);
    EXPECT_FALSE(e.clean());
}

} // namespace
