/**
 * @file
 * Unit tests for the bender-program static analyzer: one fixture per
 * diagnostic code, golden clean canonical patterns, and the executor
 * pre-flight integration.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "bender/host.h"
#include "hammer/patterns.h"
#include "lint/linter.h"
#include "lint/report.h"

namespace {

using namespace pud;
using namespace pud::bender;
using namespace pud::lint;

dram::DeviceConfig
smallConfig(const std::string &module = "HMA81GU7AFR8N-UH")
{
    dram::DeviceConfig cfg = dram::makeConfig(module);
    cfg.banks = 1;
    cfg.subarraysPerBank = 2;
    cfg.rowsPerSubarray = 64;
    cfg.cols = 256;
    // Identity mapping so tests can reason about physical adjacency
    // directly in the row numbers they pass to the builders.
    cfg.profile.mapping = dram::MappingScheme::Sequential;
    return cfg;
}

bool
has(const LintResult &r, Code code)
{
    return std::any_of(r.diags.begin(), r.diags.end(),
                       [&](const Diag &d) { return d.code == code; });
}

std::size_t
countCode(const LintResult &r, Code code)
{
    return static_cast<std::size_t>(
        std::count_if(r.diags.begin(), r.diags.end(),
                      [&](const Diag &d) { return d.code == code; }));
}

const dram::TimingParams kT{};

// ---- loop structure ----------------------------------------------------

TEST(Lint, UnbalancedLoop)
{
    Program p;
    p.loopBegin(3).act(0, 1, kT.tRP).pre(0, kT.tRAS);
    const auto r = lintProgram(p, smallConfig());
    EXPECT_TRUE(has(r, Code::UnbalancedLoop));
    EXPECT_FALSE(r.clean());
}

TEST(Lint, EmptyLoop)
{
    Program p;
    p.loopBegin(5).loopEnd();
    const auto r = lintProgram(p, smallConfig());
    EXPECT_TRUE(has(r, Code::EmptyLoop));
    EXPECT_TRUE(r.clean());  // warning, not error
}

TEST(Lint, ZeroTripLoop)
{
    Program p;
    p.loopBegin(0).act(0, 1, kT.tRP).pre(0, kT.tRAS).loopEnd();
    const auto r = lintProgram(p, smallConfig());
    EXPECT_TRUE(has(r, Code::ZeroTripLoop));
    EXPECT_EQ(r.duration, 0);  // body never executes
}

TEST(Lint, FastPathEligible)
{
    Program p;
    p.loopBegin(1000).act(0, 1, kT.tRP).pre(0, kT.tRAS).loopEnd();
    const auto r = lintProgram(p, smallConfig());
    EXPECT_TRUE(has(r, Code::FastPathEligible));
    EXPECT_FALSE(has(r, Code::FastPathIneligible));
}

TEST(Lint, FastPathIneligibleExplainsWhy)
{
    Program p;
    p.loopBegin(1000)
        .act(0, 1, kT.tRP)
        .rd(0, kT.tRCD)
        .pre(0, kT.tRAS)
        .loopEnd();
    const auto r = lintProgram(p, smallConfig());
    ASSERT_TRUE(has(r, Code::FastPathIneligible));
    for (const Diag &d : r.diags) {
        if (d.code == Code::FastPathIneligible) {
            EXPECT_NE(d.message.find("RD"), std::string::npos);
        }
    }
}

TEST(Lint, ShortLoopGetsNoFastPathNote)
{
    Program p;
    p.loopBegin(2).act(0, 1, kT.tRP).pre(0, kT.tRAS).loopEnd();
    const auto r = lintProgram(p, smallConfig());
    EXPECT_FALSE(has(r, Code::FastPathEligible));
    EXPECT_FALSE(has(r, Code::FastPathIneligible));
}

// ---- per-bank DDR protocol ---------------------------------------------

TEST(Lint, BankOutOfRange)
{
    Program p;
    p.act(5, 1, kT.tRP);
    const auto r = lintProgram(p, smallConfig());
    EXPECT_TRUE(has(r, Code::BankOutOfRange));
    EXPECT_FALSE(r.clean());
}

TEST(Lint, RowOutOfRange)
{
    Program p;
    p.act(0, 500, kT.tRP).pre(0, kT.tRAS);
    const auto r = lintProgram(p, smallConfig());
    EXPECT_TRUE(has(r, Code::RowOutOfRange));
    EXPECT_FALSE(r.clean());
}

TEST(Lint, ActWhileOpen)
{
    Program p;
    p.act(0, 1, kT.tRP).act(0, 2, kT.tRC).pre(0, kT.tRAS);
    const auto r = lintProgram(p, smallConfig());
    EXPECT_TRUE(has(r, Code::ActWhileOpen));
    EXPECT_FALSE(r.clean());
}

TEST(Lint, RdOnClosedBank)
{
    Program p;
    p.rd(0, kT.tRCD);
    const auto r = lintProgram(p, smallConfig());
    EXPECT_TRUE(has(r, Code::RdOnClosedBank));
    EXPECT_FALSE(r.clean());
}

TEST(Lint, WrOnClosedBank)
{
    Program p;
    const int d = p.addData(dram::RowData(256, dram::DataPattern::P55));
    p.wr(0, d, kT.tRCD);
    const auto r = lintProgram(p, smallConfig());
    EXPECT_TRUE(has(r, Code::WrOnClosedBank));
    EXPECT_FALSE(r.clean());
}

TEST(Lint, PreOnIdleBank)
{
    Program p;
    p.pre(0, kT.tRP);
    const auto r = lintProgram(p, smallConfig());
    EXPECT_TRUE(has(r, Code::PreOnIdleBank));
    EXPECT_TRUE(r.clean());  // a no-op, not an error
}

TEST(Lint, PreAllIsNotPreOnIdle)
{
    Program p;
    p.act(0, 1, kT.tRP).preAll(kT.tRAS).preAll(kT.tRP);
    const auto r = lintProgram(p, smallConfig());
    EXPECT_FALSE(has(r, Code::PreOnIdleBank));
}

TEST(Lint, RefWithOpenBank)
{
    Program p;
    p.act(0, 1, kT.tRP).ref(kT.tRAS);
    const auto r = lintProgram(p, smallConfig());
    EXPECT_TRUE(has(r, Code::RefWithOpenBank));
    EXPECT_FALSE(r.clean());
}

TEST(Lint, NegativeGap)
{
    Program p;
    p.act(0, 1, -5).pre(0, kT.tRAS);
    const auto r = lintProgram(p, smallConfig());
    EXPECT_TRUE(has(r, Code::NegativeGap));
    EXPECT_FALSE(r.clean());
}

TEST(Lint, OpenBankAtEnd)
{
    Program p;
    p.act(0, 1, kT.tRP);
    const auto r = lintProgram(p, smallConfig());
    EXPECT_TRUE(has(r, Code::OpenBankAtEnd));
    EXPECT_TRUE(r.clean());  // warning: the *next* program fatals
}

// ---- data table --------------------------------------------------------

TEST(Lint, WrBadDataIndex)
{
    Program p;
    p.act(0, 1, kT.tRP).wr(0, 3, kT.tRCD).pre(0, kT.tRAS);
    const auto r = lintProgram(p, smallConfig());
    EXPECT_TRUE(has(r, Code::WrBadDataIndex));
    EXPECT_FALSE(r.clean());
}

TEST(Lint, WrWidthMismatch)
{
    Program p;
    const int d = p.addData(dram::RowData(128, dram::DataPattern::P55));
    p.act(0, 1, kT.tRP).wr(0, d, kT.tRCD).pre(0, kT.tRAS);
    const auto r = lintProgram(p, smallConfig());
    EXPECT_TRUE(has(r, Code::WrWidthMismatch));
    EXPECT_FALSE(r.clean());
}

// ---- timing classifier -------------------------------------------------

TEST(Lint, IntendedComra)
{
    Program p;
    p.act(0, 32, kT.tRP)
        .pre(0, kT.tRAS)
        .act(0, 34, units::fromNs(7.5))
        .pre(0, kT.tRAS);
    const auto r = lintProgram(p, smallConfig());
    EXPECT_TRUE(has(r, Code::IntendedComra));
    EXPECT_EQ(r.count(Severity::Warning), 0u);
}

TEST(Lint, IntendedSimra)
{
    Program p;
    p.act(0, 32, kT.tRP)
        .pre(0, units::fromNs(3))
        .act(0, 38, units::fromNs(3))
        .pre(0, kT.tRAS);
    const auto r = lintProgram(p, smallConfig());
    EXPECT_TRUE(has(r, Code::IntendedSimra));
    EXPECT_EQ(r.count(Severity::Warning), 0u);
}

TEST(Lint, SimraUnsupportedModule)
{
    // KVR21S15S8/4 (Micron) ignores grossly violating commands.
    Program p;
    p.act(0, 32, kT.tRP)
        .pre(0, units::fromNs(3))
        .act(0, 38, units::fromNs(3))
        .pre(0, kT.tRAS);
    const auto r = lintProgram(p, smallConfig("KVR21S15S8/4"));
    EXPECT_TRUE(has(r, Code::SimraUnsupported));
    EXPECT_FALSE(has(r, Code::IntendedSimra));
}

TEST(Lint, SuspiciousPreToAct)
{
    // Between the CoMRA window (13.0 ns) and nominal tRP (13.75 ns):
    // an accidental violation that neither copies nor is nominal.
    Program p;
    p.act(0, 32, kT.tRP)
        .pre(0, kT.tRAS)
        .act(0, 34, units::fromNs(13.4))
        .pre(0, kT.tRAS);
    const auto r = lintProgram(p, smallConfig());
    EXPECT_TRUE(has(r, Code::SuspiciousPreToAct));
    EXPECT_FALSE(has(r, Code::IntendedComra));
}

TEST(Lint, ComraAcrossSubarraysIsSuspicious)
{
    // Rows 32 and 96 are in different subarrays (64 rows each): the
    // gap is in the CoMRA window but no copy can occur.
    Program p;
    p.act(0, 32, kT.tRP)
        .pre(0, kT.tRAS)
        .act(0, 96, units::fromNs(7.5))
        .pre(0, kT.tRAS);
    const auto r = lintProgram(p, smallConfig());
    EXPECT_TRUE(has(r, Code::SuspiciousPreToAct));
    EXPECT_FALSE(has(r, Code::IntendedComra));
}

TEST(Lint, SuspiciousActToPre)
{
    // 20 ns on-time: violates tRAS but is far above the SiMRA window.
    Program p;
    p.act(0, 32, kT.tRP)
        .pre(0, units::fromNs(20))
        .act(0, 34, kT.tRP)
        .pre(0, kT.tRAS);
    const auto r = lintProgram(p, smallConfig());
    EXPECT_TRUE(has(r, Code::SuspiciousActToPre));
    EXPECT_FALSE(has(r, Code::IntendedSimra));
}

TEST(Lint, SuspiciousActToActWithCustomTrc)
{
    // With the default set any tRC violation implies a tRAS or tRP
    // violation (tRAS + tRP > tRC); a custom tRC = 60 ns exposes the
    // pure ACT->ACT check.
    dram::DeviceConfig cfg = smallConfig();
    cfg.timings.tRC = units::fromNs(60);
    Program p;
    p.act(0, 32, kT.tRP)
        .pre(0, kT.tRAS)
        .act(0, 34, units::fromNs(14))
        .pre(0, kT.tRAS);
    const auto r = lintProgram(p, cfg);
    EXPECT_TRUE(has(r, Code::SuspiciousActToAct));
}

TEST(Lint, ColumnBeforeTrcd)
{
    Program p;
    p.act(0, 1, kT.tRP).rd(0, units::fromNs(5)).pre(0, kT.tRAS);
    const auto r = lintProgram(p, smallConfig());
    EXPECT_TRUE(has(r, Code::ColumnBeforeTrcd));
    EXPECT_TRUE(r.clean());
}

TEST(Lint, RefRecoveryShort)
{
    Program p;
    p.ref(kT.tRP).act(0, 1, units::fromNs(100)).pre(0, kT.tRAS);
    const auto r = lintProgram(p, smallConfig());
    EXPECT_TRUE(has(r, Code::RefRecoveryShort));
    EXPECT_TRUE(r.clean());
}

TEST(Lint, RefreshWindowExceeded)
{
    // 2M iterations x ~50 ns = ~100 ms > tREFW (64 ms), no REF.
    Program p;
    p.loopBegin(2000000)
        .act(0, 1, kT.tRP)
        .pre(0, kT.tRAS)
        .loopEnd();
    const auto r = lintProgram(p, smallConfig());
    EXPECT_TRUE(has(r, Code::RefreshWindowExceeded));
    EXPECT_GT(r.duration, smallConfig().timings.tREFW);
}

TEST(Lint, RefSuppressesWindowWarning)
{
    Program p;
    p.loopBegin(2000000)
        .act(0, 1, kT.tRP)
        .pre(0, kT.tRAS)
        .ref(kT.tRP)
        .loopEnd();
    const auto r = lintProgram(p, smallConfig());
    EXPECT_FALSE(has(r, Code::RefreshWindowExceeded));
}

// ---- golden clean programs ---------------------------------------------

TEST(LintGolden, DoubleSidedRowHammerIsClean)
{
    hammer::PatternTimings t;
    const auto p = hammer::doubleSidedRowHammer(0, 32, 34, 50000, t);
    const auto r = lintProgram(p, smallConfig());
    EXPECT_EQ(r.count(Severity::Error), 0u);
    EXPECT_EQ(r.count(Severity::Warning), 0u);
}

TEST(LintGolden, ComraHammerIsClean)
{
    hammer::PatternTimings t;
    const auto p = hammer::comraHammer(0, 32, 34, 50000, t);
    const auto r = lintProgram(p, smallConfig());
    EXPECT_EQ(r.count(Severity::Error), 0u);
    EXPECT_EQ(r.count(Severity::Warning), 0u);
    EXPECT_TRUE(has(r, Code::IntendedComra));
}

TEST(LintGolden, SimraHammerIsClean)
{
    hammer::PatternTimings t;
    const auto p = hammer::simraHammer(0, 32, 38, 50000, t);
    const auto r = lintProgram(p, smallConfig());
    EXPECT_EQ(r.count(Severity::Error), 0u);
    EXPECT_EQ(r.count(Severity::Warning), 0u);
    EXPECT_TRUE(has(r, Code::IntendedSimra));
}

TEST(LintGolden, CombinedPatternIsClean)
{
    hammer::PatternTimings t;
    hammer::CombinedCounts counts;
    counts.comra = 1000;
    counts.simra = 1000;
    counts.rowHammer = 50000;
    const auto p =
        hammer::combinedPattern(0, 32, 34, 32, 34, 32, 38, counts, t);
    const auto r = lintProgram(p, smallConfig());
    EXPECT_EQ(r.count(Severity::Error), 0u);
    EXPECT_EQ(r.count(Severity::Warning), 0u);
}

// ---- walk mechanics ----------------------------------------------------

TEST(Lint, DiagnosticsDedupAcrossLoopIterations)
{
    Program p;
    p.loopBegin(1000).pre(0, kT.tRP).loopEnd();
    const auto r = lintProgram(p, smallConfig());
    EXPECT_EQ(countCode(r, Code::PreOnIdleBank), 1u);
}

TEST(Lint, DurationMatchesExecutor)
{
    Program p;
    p.loopBegin(1000)
        .act(0, 1, units::fromNs(15))
        .pre(0, units::fromNs(36))
        .loopEnd();
    const auto r = lintProgram(p, smallConfig());

    dram::Device dev(smallConfig());
    Executor ex(dev);
    ex.setPreflight(false);
    const auto exec = ex.run(p);
    EXPECT_EQ(r.duration, exec.endTime - exec.startTime);
}

TEST(Lint, NamesAreStable)
{
    for (int c = 0; c <= static_cast<int>(Code::RefreshWindowExceeded);
         ++c) {
        EXPECT_STRNE(name(static_cast<Code>(c)), "?");
    }
    EXPECT_STREQ(name(Severity::Error), "error");
    EXPECT_STREQ(name(Severity::Warning), "warning");
    EXPECT_STREQ(name(Severity::Note), "note");
}

TEST(Lint, DescribeInst)
{
    Program p;
    p.act(0, 5, units::fromNs(13.75));
    EXPECT_EQ(describeInst(p, 0), "ACT b0 r5 @+13.75ns");
    EXPECT_EQ(describeInst(p, 9), "<end>");
}

// ---- integration -------------------------------------------------------

TEST(LintPreflight, RequireCleanIsFatalOnErrors)
{
    Program p;
    p.act(0, 1, kT.tRP).wr(0, 3, kT.tRCD).pre(0, kT.tRAS);
    EXPECT_DEATH(requireClean(p, smallConfig(), "test"),
                 "pre-flight lint failed");
}

TEST(LintPreflight, ExecutorRefusesBadProgramWhenEnabled)
{
    dram::Device dev(smallConfig());
    Executor ex(dev);
    ex.setPreflight(true);
    Program p;
    p.act(0, 1, kT.tRP).wr(0, 3, kT.tRCD).pre(0, kT.tRAS);
    EXPECT_DEATH(ex.run(p), "pre-flight lint failed");
}

TEST(LintPreflight, ExecutorWithoutPreflightDiesInExecOne)
{
    dram::Device dev(smallConfig());
    Executor ex(dev);
    ex.setPreflight(false);
    Program p;
    p.act(0, 1, kT.tRP).wr(0, 3, kT.tRCD).pre(0, kT.tRAS);
    EXPECT_DEATH(ex.run(p), "invalid data index");
}

TEST(LintPreflight, ExecutorRunsCleanProgramWithPreflight)
{
    dram::Device dev(smallConfig());
    Executor ex(dev);
    ex.setPreflight(true);
    hammer::PatternTimings t;
    const auto p = hammer::comraHammer(0, 32, 34, 1000, t);
    const auto r = ex.run(p);
    EXPECT_GT(r.endTime, r.startTime);
}

} // namespace
