/**
 * @file
 * Unit tests for the population runners and the TRR experiment.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "hammer/experiment.h"

namespace {

using namespace pud;
using namespace pud::hammer;

PopulationConfig
tinyPopulation()
{
    PopulationConfig cfg;
    cfg.moduleId = "HMA81GU7AFR8N-UH";
    cfg.modules = 1;
    cfg.victimsPerSubarray = 4;
    cfg.rowsPerSubarray = 128;
    return cfg;
}

TEST(Population, SeriesAlignedAcrossMeasures)
{
    ModuleTester::Options opt;
    const auto series = measurePopulation(
        tinyPopulation(),
        {[&](ModuleTester &t, dram::RowId v) {
             return t.rhDouble(v, opt);
         },
         [&](ModuleTester &t, dram::RowId v) {
             return t.comraDouble(v, opt);
         }});
    ASSERT_EQ(series.size(), 2u);
    EXPECT_EQ(series[0].size(), series[1].size());
    EXPECT_GT(series[0].size(), 10u);
}

TEST(Population, ModulesMultiplyVictims)
{
    PopulationConfig one = tinyPopulation();
    PopulationConfig two = tinyPopulation();
    two.modules = 2;
    ModuleTester::Options opt;
    const MeasureFn fn = [&](ModuleTester &t, dram::RowId v) {
        return t.rhDouble(v, opt);
    };
    const auto s1 = measurePopulation(one, {fn});
    const auto s2 = measurePopulation(two, {fn});
    EXPECT_EQ(s2[0].size(), 2 * s1[0].size());
}

/**
 * Empty-module audit: instances with zero victims still get one
 * (empty) shard each, in module order, so telemetry covers the whole
 * population and shard order stays aligned with slot order.
 */
TEST(Population, ZeroVictimModulesYieldEmptyAlignedShards)
{
    PopulationConfig cfg = tinyPopulation();
    cfg.modules = 3;
    cfg.victimsPerSubarray = 0;
    ModuleTester::Options opt;
    PopulationTelemetry tele;
    const auto series = measurePopulation(
        cfg,
        {[&](ModuleTester &t, dram::RowId v) {
            return t.rhDouble(v, opt);
        }},
        &tele);
    ASSERT_EQ(series.size(), 1u);
    EXPECT_TRUE(series[0].empty());
    ASSERT_EQ(tele.shards.size(), 3u);
    for (std::size_t i = 0; i < tele.shards.size(); ++i) {
        EXPECT_EQ(tele.shards[i].module, static_cast<int>(i));
        EXPECT_EQ(tele.shards[i].victims, 0u);
        EXPECT_EQ(tele.shards[i].firstSlot, 0u);
    }
}

/**
 * A victim chunk larger than the module's victim list degenerates to
 * one whole-module chunk, which starts from a pristine tester exactly
 * like the module-granularity path -- so the two must agree sample for
 * sample, not just statistically.
 */
TEST(Population, OversizedChunkMatchesModuleGranularity)
{
    PopulationConfig plain = tinyPopulation();
    plain.modules = 2;
    PopulationConfig chunked = plain;
    chunked.perVictimChunks = true;
    chunked.victimChunk = 100000;

    ModuleTester::Options opt;
    const MeasureFn fn = [&](ModuleTester &t, dram::RowId v) {
        return t.rhDouble(v, opt);
    };
    const auto a = measurePopulation(plain, {fn});
    const auto b = measurePopulation(chunked, {fn});
    ASSERT_EQ(a.size(), b.size());
    ASSERT_EQ(a[0].size(), b[0].size());
    for (std::size_t i = 0; i < a[0].size(); ++i) {
        if (std::isnan(a[0][i]))
            EXPECT_TRUE(std::isnan(b[0][i])) << "slot " << i;
        else
            EXPECT_DOUBLE_EQ(a[0][i], b[0][i]) << "slot " << i;
    }
}

TEST(DropIncomplete, RemovesNanPairsKeepingAlignment)
{
    const double nan = std::numeric_limits<double>::quiet_NaN();
    const std::vector<std::vector<double>> in{{1, nan, 3, 4},
                                              {10, 20, nan, 40}};
    const auto out = dropIncomplete(in);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0], (std::vector<double>{1, 4}));
    EXPECT_EQ(out[1], (std::vector<double>{10, 40}));
}

TEST(DropIncomplete, RaggedInputPanics)
{
    EXPECT_DEATH(dropIncomplete({{1.0}, {1.0, 2.0}}), "ragged");
}

class TrrExperimentTest : public ::testing::Test
{
  protected:
    static dram::DeviceConfig
    config(std::uint64_t seed = 21)
    {
        dram::DeviceConfig cfg =
            dram::makeConfig("HMA81GU7AFR8N-UH", seed);
        cfg.banks = 1;
        cfg.subarraysPerBank = 4;
        cfg.rowsPerSubarray = 128;
        cfg.cols = 256;
        return cfg;
    }

    static TrrConfig
    trrConfig()
    {
        TrrConfig cfg;
        cfg.simraN = 16;  // spaced group: victims invisible to TRR
        cfg.hammersPerAggressor = 150000;
        return cfg;
    }
};

TEST_F(TrrExperimentTest, RowHammerFlipsWithoutTrr)
{
    ModuleTester t(config());
    const auto flips = runTrrExperiment(t, TrrTechnique::RowHammer,
                                        trrConfig(), false);
    EXPECT_GT(flips, 0u);
}

TEST_F(TrrExperimentTest, TrrSuppressesRowHammer)
{
    ModuleTester without(config());
    const auto flips_without = runTrrExperiment(
        without, TrrTechnique::RowHammer, trrConfig(), false);
    ModuleTester with(config());
    const auto flips_with = runTrrExperiment(
        with, TrrTechnique::RowHammer, trrConfig(), true);
    ASSERT_GT(flips_without, 0u);
    // Obs. 25/26: TRR reduces RowHammer bitflips greatly (99.89%).
    EXPECT_LT(static_cast<double>(flips_with),
              0.2 * static_cast<double>(flips_without));
}

TEST_F(TrrExperimentTest, SimraBypassesTrr)
{
    ModuleTester without(config());
    const auto flips_without = runTrrExperiment(
        without, TrrTechnique::Simra, trrConfig(), false);
    ModuleTester with(config());
    const auto flips_with = runTrrExperiment(
        with, TrrTechnique::Simra, trrConfig(), true);
    ASSERT_GT(flips_without, 0u);
    // Obs. 26: only ~15% average reduction with TRR.
    EXPECT_GT(static_cast<double>(flips_with),
              0.5 * static_cast<double>(flips_without));
}

TEST_F(TrrExperimentTest, SimraBeatsRowHammerUnderTrr)
{
    ModuleTester rh(config());
    const auto rh_flips = runTrrExperiment(
        rh, TrrTechnique::RowHammer, trrConfig(), true);
    ModuleTester si(config());
    const auto si_flips = runTrrExperiment(
        si, TrrTechnique::Simra, trrConfig(), true);
    // Obs. 25: SiMRA induces orders of magnitude more bitflips than
    // RowHammer in the presence of TRR.
    EXPECT_GT(si_flips, 50 * std::max<std::uint64_t>(1, rh_flips));
}

TEST_F(TrrExperimentTest, ComraFlipsUnderTrrExperiment)
{
    ModuleTester t(config());
    const auto flips = runTrrExperiment(t, TrrTechnique::Comra,
                                        trrConfig(), false);
    EXPECT_GT(flips, 0u);
}

/**
 * Regression: runTrrExperiment used to enable TRR *before* the U-TRR
 * profiling sweep, so (a) profiling measured the mechanism instead of
 * the chip's intrinsic vulnerability and (b) thousands of profiling
 * ACTs were still sitting in the sampler ring when the measured
 * pattern started, soaking up its first TRR decisions.  With a
 * deliberately tiny measured pattern (far fewer ACTs than the
 * 450-entry sampler window) the sampler must end well below full;
 * the old ordering left it saturated by the profiling sweep.
 */
TEST_F(TrrExperimentTest, ProfilingActsDoNotLeakIntoMeasuredSampler)
{
    ModuleTester t(config());
    TrrConfig cfg;
    cfg.nSided = 2;
    cfg.actsPerTrefi = 30;
    cfg.hammersPerAggressor = 15;  // one paced tREFI cycle
    runTrrExperiment(t, TrrTechnique::RowHammer, cfg, true);
    const std::size_t fill = t.device().trrSamplerFill(0);
    EXPECT_GT(fill, 0u);    // the measured pattern itself was sampled
    EXPECT_LT(fill, 450u);  // profiling ACTs were cleared first
}

TEST_F(TrrExperimentTest, TrrDisabledAfterRun)
{
    ModuleTester t(config());
    runTrrExperiment(t, TrrTechnique::RowHammer, trrConfig(), true);
    EXPECT_FALSE(t.device().trrEnabled());
}

} // namespace
