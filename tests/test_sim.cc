/**
 * @file
 * Unit tests for the cycle-level system simulator.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "sim/system.h"

namespace {

using namespace pud;
using namespace pud::sim;

SystemConfig
fastConfig()
{
    SystemConfig cfg;
    cfg.instructionsPerCore = 60000;
    return cfg;
}

TEST(Workload, FivePresets)
{
    EXPECT_EQ(suitePresets().size(), 5u);
    for (const auto &w : suitePresets()) {
        EXPECT_GT(w.mpki, 0.0);
        EXPECT_GT(w.rowHitProb, 0.0);
        EXPECT_LT(w.rowHitProb, 1.0);
    }
}

TEST(Workload, SixtyDistinctMixes)
{
    std::set<std::string> signatures;
    for (int m = 0; m < 60; ++m) {
        const auto mix = makeMix(m);
        ASSERT_EQ(mix.size(), 4u);
        std::string sig;
        for (const auto &w : mix)
            sig += std::to_string(w.mpki) + "/";
        signatures.insert(sig);
    }
    EXPECT_EQ(signatures.size(), 60u);
}

TEST(Workload, MixIsDeterministic)
{
    const auto a = makeMix(7);
    const auto b = makeMix(7);
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_DOUBLE_EQ(a[i].mpki, b[i].mpki);
        EXPECT_DOUBLE_EQ(a[i].rowHitProb, b[i].rowHitProb);
    }
}

TEST(TraceCore, RetiresAllInstructions)
{
    TraceCore core(0, suitePresets()[0], 5000, 8, 128, 1);
    dram::BankId bank;
    dram::RowId row;
    Time t = 0;
    while (!core.done()) {
        t = core.nextIssueTime(t);
        core.next(bank, row);
        EXPECT_LT(bank, 8u);
        EXPECT_LT(row, 128u);
        t += units::fromNs(50);  // pretend memory latency
        core.onComplete();
    }
    EXPECT_EQ(core.instructionsDone(), 5000u);
}

TEST(Trace, SynthesizeSaveLoadRoundTrip)
{
    const auto trace =
        synthesizeTrace(suitePresets()[0], 20000, 8, 128, 5);
    ASSERT_FALSE(trace.empty());
    std::uint64_t total = 0;
    for (const auto &e : trace) {
        EXPECT_LT(e.bank, 8u);
        EXPECT_LT(e.row, 128u);
        total += e.gap;
    }
    EXPECT_EQ(total, 20000u);

    const std::string path = "/tmp/pudhammer_trace_test.txt";
    saveTrace(path, trace);
    const auto loaded = loadTrace(path);
    ASSERT_EQ(loaded.size(), trace.size());
    for (std::size_t i = 0; i < trace.size(); ++i) {
        EXPECT_EQ(loaded[i].gap, trace[i].gap);
        EXPECT_EQ(loaded[i].bank, trace[i].bank);
        EXPECT_EQ(loaded[i].row, trace[i].row);
    }
}

TEST(Trace, LoadMissingFileIsFatal)
{
    EXPECT_DEATH(loadTrace("/nonexistent/trace.txt"), "cannot open");
}

TEST(Trace, FileDrivenCoreRetiresBudget)
{
    std::vector<TraceEntry> trace{{10, 0, 1}, {5, 1, 2}, {20, 0, 3}};
    TraceCore core(0, trace, 0.4, 100);
    dram::BankId bank;
    dram::RowId row;
    Time t = 0;
    std::vector<dram::RowId> rows_seen;
    while (!core.done()) {
        t = core.nextIssueTime(t);
        core.next(bank, row);
        rows_seen.push_back(row);
        t += units::fromNs(50);
        core.onComplete();
    }
    EXPECT_EQ(core.instructionsDone(), 100u);
    // The trace replays cyclically: 1, 2, 3, 1, 2, 3, ...
    ASSERT_GE(rows_seen.size(), 6u);
    EXPECT_EQ(rows_seen[0], 1u);
    EXPECT_EQ(rows_seen[1], 2u);
    EXPECT_EQ(rows_seen[2], 3u);
    EXPECT_EQ(rows_seen[3], 1u);
}

TEST(RunSystem, CompletesAndReportsIpc)
{
    const auto mix = makeMix(0);
    const RunResult r = runSystem(fastConfig(), mix);
    ASSERT_EQ(r.coreIpc.size(), 4u);
    for (double ipc : r.coreIpc) {
        EXPECT_GT(ipc, 0.0);
        EXPECT_LT(ipc, 3.0);
    }
    EXPECT_GT(r.endTime, 0);
    EXPECT_GT(r.requests, 0u);
}

TEST(RunSystem, PudCoreIssuesOps)
{
    SystemConfig cfg = fastConfig();
    cfg.pudPeriod = units::fromNs(1000);
    const RunResult r = runSystem(cfg, makeMix(1));
    EXPECT_GT(r.pudOps, 0u);
}

TEST(RunSystem, NoPudNoPracMeansNoAlerts)
{
    const RunResult r = runSystem(fastConfig(), makeMix(2));
    EXPECT_EQ(r.alerts, 0u);
    EXPECT_EQ(r.pudOps, 0u);
}

TEST(RunSystem, NaivePracAlertsOnPud)
{
    SystemConfig cfg = fastConfig();
    cfg.pudPeriod = units::fromNs(500);
    cfg.pracEnabled = true;
    cfg.prac.rdt = 20;
    const RunResult r = runSystem(cfg, makeMix(3));
    EXPECT_GT(r.alerts, 0u);
    EXPECT_GT(r.rfms, 0u);
}

TEST(RunSystem, MitigationSlowsSystemDown)
{
    SystemConfig base = fastConfig();
    base.pudPeriod = units::fromNs(500);
    const auto mix = makeMix(4);
    const double ws_base = weightedSpeedup(base, mix);

    SystemConfig naive = base;
    naive.pracEnabled = true;
    naive.prac.rdt = 20;
    const double ws_naive = weightedSpeedup(naive, mix);

    EXPECT_GT(ws_base, 0.0);
    EXPECT_LT(ws_naive, ws_base);
}

TEST(RunSystem, WeightedCountingBeatsNaive)
{
    SystemConfig base = fastConfig();
    base.pudPeriod = units::fromNs(2000);
    const auto mix = makeMix(5);

    SystemConfig naive = base;
    naive.pracEnabled = true;
    naive.prac.rdt = 20;

    SystemConfig wc = base;
    wc.pracEnabled = true;
    wc.prac.rdt = 4096;
    wc.prac.weighted = true;

    EXPECT_GT(weightedSpeedup(wc, mix), weightedSpeedup(naive, mix));
}

TEST(RunSystem, OverheadShrinksWithPudPeriod)
{
    const auto mix = makeMix(6);
    auto overhead = [&](double period_ns) {
        SystemConfig base = fastConfig();
        base.pudPeriod = units::fromNs(period_ns);
        SystemConfig wc = base;
        wc.pracEnabled = true;
        wc.prac.rdt = 4096;
        wc.prac.weighted = true;
        return 1.0 - weightedSpeedup(wc, mix) /
                         weightedSpeedup(base, mix);
    };
    EXPECT_GT(overhead(250), overhead(16000));
}

TEST(RunSystem, DeterministicAcrossRuns)
{
    SystemConfig cfg = fastConfig();
    cfg.pudPeriod = units::fromNs(1000);
    cfg.pracEnabled = true;
    cfg.prac.rdt = 4096;
    cfg.prac.weighted = true;
    const auto mix = makeMix(8);
    const RunResult a = runSystem(cfg, mix);
    const RunResult b = runSystem(cfg, mix);
    EXPECT_EQ(a.endTime, b.endTime);
    EXPECT_EQ(a.alerts, b.alerts);
    for (std::size_t c = 0; c < a.coreIpc.size(); ++c)
        EXPECT_DOUBLE_EQ(a.coreIpc[c], b.coreIpc[c]);
}

class PudPeriodSweep : public ::testing::TestWithParam<double>
{};

TEST_P(PudPeriodSweep, SystemAlwaysCompletes)
{
    SystemConfig cfg = fastConfig();
    cfg.pudPeriod = units::fromNs(GetParam());
    cfg.pracEnabled = true;
    cfg.prac.rdt = 20;
    const RunResult r = runSystem(cfg, makeMix(9));
    for (double ipc : r.coreIpc)
        EXPECT_GT(ipc, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Periods, PudPeriodSweep,
                         ::testing::Values(125.0, 250.0, 1000.0,
                                           4000.0, 16000.0));

} // namespace
