/**
 * @file
 * Unit tests for statistical summaries.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "stats/summary.h"

namespace {

using namespace pud::stats;

TEST(Accumulator, Basics)
{
    Accumulator acc;
    EXPECT_EQ(acc.count(), 0u);
    acc.add(3.0);
    acc.add(-1.0);
    acc.add(10.0);
    EXPECT_EQ(acc.count(), 3u);
    EXPECT_DOUBLE_EQ(acc.min(), -1.0);
    EXPECT_DOUBLE_EQ(acc.max(), 10.0);
    EXPECT_DOUBLE_EQ(acc.mean(), 4.0);
}

/**
 * Regression: mirror of BoxStats.DropsNaNs for the streaming path.
 * Accumulator::add ingested non-finite samples verbatim, so one
 * kNoFlip-derived NaN poisoned sum/mean and disabled the min/max
 * comparisons for the rest of the run.
 */
TEST(Accumulator, DropsNaNs)
{
    Accumulator acc;
    acc.add(5.0);
    acc.add(std::nan(""));
    acc.add(3.0);
    acc.add(std::nan(""));
    acc.add(1.0);
    EXPECT_EQ(acc.count(), 3u);
    EXPECT_EQ(acc.dropped(), 2u);
    EXPECT_DOUBLE_EQ(acc.min(), 1.0);
    EXPECT_DOUBLE_EQ(acc.max(), 5.0);
    EXPECT_DOUBLE_EQ(acc.mean(), 3.0);
}

TEST(Accumulator, DropsInfinities)
{
    const double inf = std::numeric_limits<double>::infinity();
    Accumulator acc;
    acc.add(inf);
    acc.add(4.0);
    acc.add(-inf);
    acc.add(2.0);
    EXPECT_EQ(acc.count(), 2u);
    EXPECT_EQ(acc.dropped(), 2u);
    EXPECT_DOUBLE_EQ(acc.min(), 2.0);
    EXPECT_DOUBLE_EQ(acc.max(), 4.0);
    EXPECT_DOUBLE_EQ(acc.mean(), 3.0);
}

TEST(Accumulator, AllDroppedStaysWellDefined)
{
    Accumulator acc;
    acc.add(std::nan(""));
    EXPECT_EQ(acc.count(), 0u);
    EXPECT_EQ(acc.dropped(), 1u);
    EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
    EXPECT_DOUBLE_EQ(acc.min(), 0.0);
    EXPECT_DOUBLE_EQ(acc.max(), 0.0);
}

TEST(Accumulator, MergeMatchesSequentialAdds)
{
    Accumulator whole, left, right;
    const double samples[] = {3.0, -1.0, 10.0, 4.0};
    for (int i = 0; i < 4; ++i) {
        whole.add(samples[i]);
        (i < 2 ? left : right).add(samples[i]);
    }
    left.add(std::nan(""));
    whole.add(std::nan(""));

    left.merge(right);
    EXPECT_EQ(left.count(), whole.count());
    EXPECT_EQ(left.dropped(), whole.dropped());
    EXPECT_DOUBLE_EQ(left.min(), whole.min());
    EXPECT_DOUBLE_EQ(left.max(), whole.max());
    EXPECT_DOUBLE_EQ(left.mean(), whole.mean());
}

TEST(BoxStats, Empty)
{
    const BoxStats bs = boxStats({});
    EXPECT_EQ(bs.count, 0u);
}

TEST(BoxStats, SingleSample)
{
    const BoxStats bs = boxStats({7.0});
    EXPECT_DOUBLE_EQ(bs.min, 7.0);
    EXPECT_DOUBLE_EQ(bs.median, 7.0);
    EXPECT_DOUBLE_EQ(bs.max, 7.0);
    EXPECT_DOUBLE_EQ(bs.mean, 7.0);
}

TEST(BoxStats, KnownQuartiles)
{
    // 1..5: q1 = 2, med = 3, q3 = 4 under type-7 interpolation.
    const BoxStats bs = boxStats({5, 3, 1, 4, 2});
    EXPECT_DOUBLE_EQ(bs.min, 1.0);
    EXPECT_DOUBLE_EQ(bs.q1, 2.0);
    EXPECT_DOUBLE_EQ(bs.median, 3.0);
    EXPECT_DOUBLE_EQ(bs.q3, 4.0);
    EXPECT_DOUBLE_EQ(bs.max, 5.0);
    EXPECT_DOUBLE_EQ(bs.mean, 3.0);
}

/**
 * Regression: NaN samples (the population runner's no-flip marker)
 * used to poison boxStats -- std::sort with NaNs is not a strict weak
 * ordering, and any NaN in the kept range turns every quantile NaN.
 * They must be filtered out and counted in `dropped`.
 */
TEST(BoxStats, DropsNaNs)
{
    const double nan = std::nan("");
    const BoxStats bs = boxStats({5, nan, 3, 1, nan, 4, 2});
    EXPECT_EQ(bs.count, 5u);
    EXPECT_EQ(bs.dropped, 2u);
    EXPECT_DOUBLE_EQ(bs.min, 1.0);
    EXPECT_DOUBLE_EQ(bs.q1, 2.0);
    EXPECT_DOUBLE_EQ(bs.median, 3.0);
    EXPECT_DOUBLE_EQ(bs.q3, 4.0);
    EXPECT_DOUBLE_EQ(bs.max, 5.0);
    EXPECT_DOUBLE_EQ(bs.mean, 3.0);
}

TEST(BoxStats, AllNaN)
{
    const double nan = std::nan("");
    const BoxStats bs = boxStats({nan, nan, nan});
    EXPECT_EQ(bs.count, 0u);
    EXPECT_EQ(bs.dropped, 3u);
}

TEST(BoxStats, NoNaNsMeansNoDrops)
{
    const BoxStats bs = boxStats({2.0, 1.0});
    EXPECT_EQ(bs.count, 2u);
    EXPECT_EQ(bs.dropped, 0u);
}

/**
 * Regression: the NaN filter used std::isnan, so +/-Inf sailed
 * through into min/max/mean.  Every non-finite sample must land in
 * `dropped`.
 */
TEST(BoxStats, DropsInfinities)
{
    const double inf = std::numeric_limits<double>::infinity();
    const BoxStats bs =
        boxStats({5, inf, 3, 1, -inf, 4, 2, std::nan("")});
    EXPECT_EQ(bs.count, 5u);
    EXPECT_EQ(bs.dropped, 3u);
    EXPECT_DOUBLE_EQ(bs.min, 1.0);
    EXPECT_DOUBLE_EQ(bs.max, 5.0);
    EXPECT_DOUBLE_EQ(bs.mean, 3.0);
}

TEST(Quantile, Interpolates)
{
    const std::vector<double> sorted{0.0, 10.0};
    EXPECT_DOUBLE_EQ(quantileSorted(sorted, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(quantileSorted(sorted, 0.25), 2.5);
    EXPECT_DOUBLE_EQ(quantileSorted(sorted, 1.0), 10.0);
}

TEST(ChangeCurve, SortedMostPositiveFirst)
{
    const std::vector<double> base{100, 100, 100};
    const std::vector<double> variant{150, 50, 100};
    const auto curve = changeCurve(base, variant);
    ASSERT_EQ(curve.size(), 3u);
    EXPECT_DOUBLE_EQ(curve[0], 50.0);
    EXPECT_DOUBLE_EQ(curve[1], 0.0);
    EXPECT_DOUBLE_EQ(curve[2], -50.0);
}

TEST(ChangeCurve, SkipsZeroBase)
{
    const auto curve = changeCurve({0.0, 100.0}, {5.0, 120.0});
    ASSERT_EQ(curve.size(), 1u);
    EXPECT_DOUBLE_EQ(curve[0], 20.0);
}

/**
 * Regression: skipped non-positive-base pairs were silently
 * discarded; the curve looked like a full population.  The count now
 * comes back through the out-parameter (or a warning when none is
 * given).
 */
TEST(ChangeCurve, ReportsDroppedPairs)
{
    std::size_t dropped = 99;
    const auto curve =
        changeCurve({0.0, -3.0, 100.0, 50.0}, {5.0, 7.0, 120.0, 25.0},
                    &dropped);
    ASSERT_EQ(curve.size(), 2u);
    EXPECT_EQ(dropped, 2u);
    EXPECT_DOUBLE_EQ(curve[0], 20.0);
    EXPECT_DOUBLE_EQ(curve[1], -50.0);
}

TEST(ChangeCurve, ZeroDroppedOnCleanInput)
{
    std::size_t dropped = 99;
    const auto curve = changeCurve({100.0}, {110.0}, &dropped);
    ASSERT_EQ(curve.size(), 1u);
    EXPECT_EQ(dropped, 0u);
}

TEST(FractionBelow, Basics)
{
    const std::vector<double> v{1, 2, 3, 4};
    EXPECT_DOUBLE_EQ(fractionBelow(v, 3.0), 0.5);
    EXPECT_DOUBLE_EQ(fractionBelow(v, 0.5), 0.0);
    EXPECT_DOUBLE_EQ(fractionBelow(v, 100.0), 1.0);
    EXPECT_DOUBLE_EQ(fractionBelow({}, 1.0), 0.0);
}

TEST(Geomean, Known)
{
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

TEST(Histogram, BinsAndOverflow)
{
    Histogram h(0.0, 10.0, 5);
    h.add(-1.0);   // underflow
    h.add(0.0);    // bin 0
    h.add(1.9);    // bin 0
    h.add(5.0);    // bin 2
    h.add(9.999);  // bin 4
    h.add(10.0);   // overflow
    EXPECT_EQ(h.total(), 6u);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.binCount(0), 2u);
    EXPECT_EQ(h.binCount(2), 1u);
    EXPECT_EQ(h.binCount(4), 1u);
    EXPECT_DOUBLE_EQ(h.binLow(0), 0.0);
    EXPECT_DOUBLE_EQ(h.binHigh(4), 10.0);
}

/** Property sweep: quantiles of a uniform grid match closed form. */
class QuantileSweep : public ::testing::TestWithParam<double>
{};

TEST_P(QuantileSweep, GridQuantile)
{
    std::vector<double> grid;
    for (int i = 0; i <= 100; ++i)
        grid.push_back(i);
    const double q = GetParam();
    EXPECT_NEAR(quantileSorted(grid, q), 100.0 * q, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Quantiles, QuantileSweep,
                         ::testing::Values(0.0, 0.1, 0.25, 0.5, 0.75,
                                           0.9, 0.99, 1.0));

} // namespace
