/**
 * @file
 * Unit tests for PRAC and the §8.1 countermeasures.
 */

#include <gtest/gtest.h>

#include <array>

#include "mitigation/countermeasures.h"
#include "mitigation/prac.h"

namespace {

using namespace pud;
using namespace pud::mitigation;

PracConfig
naiveConfig()
{
    PracConfig cfg;
    cfg.rdt = 20;
    cfg.weighted = false;
    return cfg;
}

PracConfig
weightedConfig()
{
    PracConfig cfg;
    cfg.rdt = 4096;
    cfg.weighted = true;
    return cfg;
}

TEST(Prac, ActivateCountsToRdt)
{
    PracCounters prac(naiveConfig(), 1, 64);
    for (int i = 0; i < 19; ++i)
        EXPECT_FALSE(prac.onActivate(0, 5)) << i;
    EXPECT_TRUE(prac.onActivate(0, 5));
    EXPECT_EQ(prac.counter(0, 5), 20u);
}

TEST(Prac, WeightedSimraAddsWeightPerRow)
{
    PracCounters prac(weightedConfig(), 1, 64);
    const std::array<RowId, 4> rows{1, 2, 3, 4};
    EXPECT_FALSE(prac.onSimra(0, rows));
    for (RowId r : rows)
        EXPECT_EQ(prac.counter(0, r), 200u);
    // 4096 / 200 = 20.48: the 21st op alerts.
    bool alert = false;
    for (int i = 0; i < 20; ++i)
        alert = prac.onSimra(0, rows);
    EXPECT_TRUE(alert);
}

TEST(Prac, WeightedComraAddsTen)
{
    PracCounters prac(weightedConfig(), 1, 64);
    prac.onComra(0, 7, 9);
    EXPECT_EQ(prac.counter(0, 7), 10u);
    EXPECT_EQ(prac.counter(0, 9), 10u);
}

TEST(Prac, UnweightedSimraAddsOne)
{
    PracCounters prac(naiveConfig(), 1, 64);
    const std::array<RowId, 2> rows{1, 2};
    prac.onSimra(0, rows);
    EXPECT_EQ(prac.counter(0, 1), 1u);
}

TEST(Prac, RfmResetsHottestRows)
{
    PracConfig cfg = naiveConfig();
    cfg.victimsPerRfm = 2;
    PracCounters prac(cfg, 1, 64);
    for (int i = 0; i < 30; ++i)
        prac.onActivate(0, 3);
    for (int i = 0; i < 25; ++i)
        prac.onActivate(0, 4);
    for (int i = 0; i < 10; ++i)
        prac.onActivate(0, 5);
    EXPECT_TRUE(prac.alertPending(0));
    EXPECT_EQ(prac.onRfm(0), 2);
    EXPECT_EQ(prac.counter(0, 3), 0u);
    EXPECT_EQ(prac.counter(0, 4), 0u);
    EXPECT_EQ(prac.counter(0, 5), 10u);
    EXPECT_FALSE(prac.alertPending(0));
}

TEST(Prac, RfmOnIdleBankRefreshesNothing)
{
    PracCounters prac(naiveConfig(), 2, 64);
    EXPECT_EQ(prac.onRfm(1), 0);
}

TEST(Prac, UpdateLatencyAoVsPo)
{
    PracConfig ao = naiveConfig();
    ao.areaOptimized = true;
    PracCounters prac_ao(ao, 1, 64);
    // PRAC-AO: 32 counters -> 31 extra row cycles (~1.5us total with
    // the op's own tRC, §8.2).
    EXPECT_EQ(prac_ao.updateLatency(32), 31 * ao.tRC);
    EXPECT_EQ(prac_ao.updateLatency(1), 0);

    PracCounters prac_po(naiveConfig(), 1, 64);
    EXPECT_EQ(prac_po.updateLatency(32), 0);
}

TEST(Prac, ZeroRdtIsFatal)
{
    PracConfig cfg;
    cfg.rdt = 0;
    EXPECT_DEATH(
        {
            PracCounters p(cfg, 1, 8);
            (void)p;
        },
        "RDT");
}

TEST(Prac, BanksAreIndependent)
{
    PracCounters prac(naiveConfig(), 2, 64);
    prac.onActivate(0, 3);
    EXPECT_EQ(prac.counter(1, 3), 0u);
}

// --- §8.1 countermeasures ------------------------------------------------

TEST(ComputeRegion, AdmissionRules)
{
    ComputeRegionPolicy policy(512, 32, 20);
    EXPECT_TRUE(policy.inComputeRegion(0));
    EXPECT_TRUE(policy.inComputeRegion(31));
    EXPECT_FALSE(policy.inComputeRegion(32));

    const std::array<RowId, 3> in{0, 5, 31};
    const std::array<RowId, 3> mixed{0, 5, 100};
    EXPECT_TRUE(policy.allowsSimra(in));
    EXPECT_FALSE(policy.allowsSimra(mixed));

    // CoMRA: at most one operand outside the region.
    EXPECT_TRUE(policy.allowsComra(3, 400));
    EXPECT_TRUE(policy.allowsComra(400, 3));
    EXPECT_FALSE(policy.allowsComra(300, 400));
}

TEST(ComputeRegion, RefreshScheduleRoundRobin)
{
    ComputeRegionPolicy policy(512, 4, 2);
    EXPECT_EQ(policy.onSimraOp(), dram::kNoRow);
    EXPECT_EQ(policy.onSimraOp(), 0u);
    EXPECT_EQ(policy.onSimraOp(), dram::kNoRow);
    EXPECT_EQ(policy.onSimraOp(), 1u);
    EXPECT_EQ(policy.onSimraOp(), dram::kNoRow);
    EXPECT_EQ(policy.onSimraOp(), 2u);
    EXPECT_EQ(policy.onSimraOp(), dram::kNoRow);
    EXPECT_EQ(policy.onSimraOp(), 3u);
    EXPECT_EQ(policy.onSimraOp(), dram::kNoRow);
    EXPECT_EQ(policy.onSimraOp(), 0u);  // wraps
    EXPECT_EQ(policy.maxOpsBetweenRefreshes(), 8u);
}

TEST(ComputeRegion, GuaranteeBelowSimraHcFirst)
{
    // Configured as the paper sketches (refresh after ~20 SiMRA ops in
    // a 32-row compute region), the worst-case exposure must undercut
    // the lowest SiMRA HC_first... it does not with naive settings --
    // which is exactly why the refresh must be spread per-op.  With
    // one row refreshed every op, exposure is computeRows ops.
    ComputeRegionPolicy policy(512, 16, 1);
    EXPECT_LT(policy.maxOpsBetweenRefreshes(), 26u);
}

TEST(ComputeRegion, InvalidConfigIsFatal)
{
    EXPECT_DEATH(
        {
            ComputeRegionPolicy p(16, 32, 1);
            (void)p;
        },
        "compute rows");
}

TEST(Clustered, ContiguousBlocksOnly)
{
    const auto set = clusteredActivationSet(37, 8, 512);
    ASSERT_EQ(set.size(), 8u);
    EXPECT_EQ(set.front(), 32u);
    EXPECT_EQ(set.back(), 39u);
    EXPECT_FALSE(hasSandwichedVictim(set));
}

TEST(Clustered, NeverSandwichesAcrossSizes)
{
    for (int n : {2, 4, 8, 16, 32}) {
        for (RowId row : {0u, 17u, 100u, 511u}) {
            const auto set = clusteredActivationSet(row, n, 512);
            EXPECT_FALSE(hasSandwichedVictim(set))
                << "n=" << n << " row=" << row;
            // The requested row is always included.
            EXPECT_TRUE(std::find(set.begin(), set.end(), row) !=
                        set.end());
        }
    }
}

TEST(Clustered, BitCombinationGroupsDoSandwich)
{
    // Contrast: the unconstrained decoder's spaced groups sandwich
    // victims (that is what enables double-sided SiMRA).
    const std::vector<RowId> spaced{100, 102, 104, 106};
    EXPECT_TRUE(hasSandwichedVictim(spaced));
}

TEST(Clustered, NonPowerOfTwoIsFatal)
{
    EXPECT_DEATH(clusteredActivationSet(0, 3, 512), "power of two");
}

} // namespace
