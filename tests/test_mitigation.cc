/**
 * @file
 * Unit tests for PRAC and the §8.1 countermeasures.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <vector>

#include "bender/host.h"
#include "mitigation/countermeasures.h"
#include "mitigation/prac.h"

namespace {

using namespace pud;
using namespace pud::mitigation;

PracConfig
naiveConfig()
{
    PracConfig cfg;
    cfg.rdt = 20;
    cfg.weighted = false;
    return cfg;
}

PracConfig
weightedConfig()
{
    PracConfig cfg;
    cfg.rdt = 4096;
    cfg.weighted = true;
    return cfg;
}

TEST(Prac, ActivateCountsToRdt)
{
    PracCounters prac(naiveConfig(), 1, 64);
    for (int i = 0; i < 19; ++i)
        EXPECT_FALSE(prac.onActivate(0, 5)) << i;
    EXPECT_TRUE(prac.onActivate(0, 5));
    EXPECT_EQ(prac.counter(0, 5), 20u);
}

TEST(Prac, WeightedSimraAddsWeightPerRow)
{
    PracCounters prac(weightedConfig(), 1, 64);
    const std::array<RowId, 4> rows{1, 2, 3, 4};
    EXPECT_FALSE(prac.onSimra(0, rows));
    for (RowId r : rows)
        EXPECT_EQ(prac.counter(0, r), 200u);
    // 4096 / 200 = 20.48: the 21st op alerts.
    bool alert = false;
    for (int i = 0; i < 20; ++i)
        alert = prac.onSimra(0, rows);
    EXPECT_TRUE(alert);
}

TEST(Prac, WeightedComraAddsTen)
{
    PracCounters prac(weightedConfig(), 1, 64);
    prac.onComra(0, 7, 9);
    EXPECT_EQ(prac.counter(0, 7), 10u);
    EXPECT_EQ(prac.counter(0, 9), 10u);
}

TEST(Prac, UnweightedSimraAddsOne)
{
    PracCounters prac(naiveConfig(), 1, 64);
    const std::array<RowId, 2> rows{1, 2};
    prac.onSimra(0, rows);
    EXPECT_EQ(prac.counter(0, 1), 1u);
}

TEST(Prac, RfmResetsHottestRows)
{
    PracConfig cfg = naiveConfig();
    cfg.victimsPerRfm = 2;
    PracCounters prac(cfg, 1, 64);
    for (int i = 0; i < 30; ++i)
        prac.onActivate(0, 3);
    for (int i = 0; i < 25; ++i)
        prac.onActivate(0, 4);
    for (int i = 0; i < 10; ++i)
        prac.onActivate(0, 5);
    EXPECT_TRUE(prac.alertPending(0));
    EXPECT_EQ(prac.onRfm(0), 2);
    EXPECT_EQ(prac.counter(0, 3), 0u);
    EXPECT_EQ(prac.counter(0, 4), 0u);
    EXPECT_EQ(prac.counter(0, 5), 10u);
    EXPECT_FALSE(prac.alertPending(0));
}

TEST(Prac, RfmOnIdleBankRefreshesNothing)
{
    PracCounters prac(naiveConfig(), 2, 64);
    EXPECT_EQ(prac.onRfm(1), 0);
}

TEST(Prac, UpdateLatencyAoVsPo)
{
    PracConfig ao = naiveConfig();
    ao.areaOptimized = true;
    PracCounters prac_ao(ao, 1, 64);
    // PRAC-AO: 32 counters -> 31 extra row cycles (~1.5us total with
    // the op's own tRC, §8.2).
    EXPECT_EQ(prac_ao.updateLatency(32), 31 * ao.tRC);
    EXPECT_EQ(prac_ao.updateLatency(1), 0);

    PracCounters prac_po(naiveConfig(), 1, 64);
    EXPECT_EQ(prac_po.updateLatency(32), 0);
}

TEST(Prac, ZeroRdtIsFatal)
{
    PracConfig cfg;
    cfg.rdt = 0;
    EXPECT_DEATH(
        {
            PracCounters p(cfg, 1, 8);
            (void)p;
        },
        "RDT");
}

TEST(Prac, BanksAreIndependent)
{
    PracCounters prac(naiveConfig(), 2, 64);
    prac.onActivate(0, 3);
    EXPECT_EQ(prac.counter(1, 3), 0u);
}

// --- §8.1 countermeasures ------------------------------------------------

TEST(ComputeRegion, AdmissionRules)
{
    ComputeRegionPolicy policy(512, 32, 20);
    EXPECT_TRUE(policy.inComputeRegion(0));
    EXPECT_TRUE(policy.inComputeRegion(31));
    EXPECT_FALSE(policy.inComputeRegion(32));

    const std::array<RowId, 3> in{0, 5, 31};
    const std::array<RowId, 3> mixed{0, 5, 100};
    EXPECT_TRUE(policy.allowsSimra(in));
    EXPECT_FALSE(policy.allowsSimra(mixed));

    // CoMRA: at most one operand outside the region.
    EXPECT_TRUE(policy.allowsComra(3, 400));
    EXPECT_TRUE(policy.allowsComra(400, 3));
    EXPECT_FALSE(policy.allowsComra(300, 400));
}

TEST(ComputeRegion, RefreshScheduleRoundRobin)
{
    ComputeRegionPolicy policy(512, 4, 2);
    EXPECT_EQ(policy.onSimraOp(), dram::kNoRow);
    EXPECT_EQ(policy.onSimraOp(), 0u);
    EXPECT_EQ(policy.onSimraOp(), dram::kNoRow);
    EXPECT_EQ(policy.onSimraOp(), 1u);
    EXPECT_EQ(policy.onSimraOp(), dram::kNoRow);
    EXPECT_EQ(policy.onSimraOp(), 2u);
    EXPECT_EQ(policy.onSimraOp(), dram::kNoRow);
    EXPECT_EQ(policy.onSimraOp(), 3u);
    EXPECT_EQ(policy.onSimraOp(), dram::kNoRow);
    EXPECT_EQ(policy.onSimraOp(), 0u);  // wraps
    EXPECT_EQ(policy.maxOpsBetweenRefreshes(), 8u);
}

TEST(ComputeRegion, GuaranteeBelowSimraHcFirst)
{
    // Configured as the paper sketches (refresh after ~20 SiMRA ops in
    // a 32-row compute region), the worst-case exposure must undercut
    // the lowest SiMRA HC_first... it does not with naive settings --
    // which is exactly why the refresh must be spread per-op.  With
    // one row refreshed every op, exposure is computeRows ops.
    ComputeRegionPolicy policy(512, 16, 1);
    EXPECT_LT(policy.maxOpsBetweenRefreshes(), 26u);
}

TEST(ComputeRegion, InvalidConfigIsFatal)
{
    EXPECT_DEATH(
        {
            ComputeRegionPolicy p(16, 32, 1);
            (void)p;
        },
        "compute rows");
}

TEST(Clustered, ContiguousBlocksOnly)
{
    const auto set = clusteredActivationSet(37, 8, 512);
    ASSERT_EQ(set.size(), 8u);
    EXPECT_EQ(set.front(), 32u);
    EXPECT_EQ(set.back(), 39u);
    EXPECT_FALSE(hasSandwichedVictim(set));
}

TEST(Clustered, NeverSandwichesAcrossSizes)
{
    for (int n : {2, 4, 8, 16, 32}) {
        for (RowId row : {0u, 17u, 100u, 511u}) {
            const auto set = clusteredActivationSet(row, n, 512);
            EXPECT_FALSE(hasSandwichedVictim(set))
                << "n=" << n << " row=" << row;
            // The requested row is always included.
            EXPECT_TRUE(std::find(set.begin(), set.end(), row) !=
                        set.end());
        }
    }
}

TEST(Clustered, BitCombinationGroupsDoSandwich)
{
    // Contrast: the unconstrained decoder's spaced groups sandwich
    // victims (that is what enables double-sided SiMRA).
    const std::vector<RowId> spaced{100, 102, 104, 106};
    EXPECT_TRUE(hasSandwichedVictim(spaced));
}

TEST(Clustered, NonPowerOfTwoIsFatal)
{
    EXPECT_DEATH(clusteredActivationSet(0, 3, 512), "power of two");
}

// ---- close-driven device hooks (PARA / Graphene / PRAC) ----------------

dram::CloseEvent
closeOf(RowId row)
{
    dram::CloseEvent ev;
    ev.rows = {row};
    return ev;
}

TEST(ParaHook, CoinExtremes)
{
    std::vector<RowId> refresh;

    ParaConfig never;
    never.probability = 0.0;
    ParaMitigation off(never, 64);
    for (int i = 0; i < 100; ++i)
        off.onClose(0, closeOf(10), refresh);
    EXPECT_EQ(off.fires(), 0u);
    EXPECT_TRUE(refresh.empty());

    ParaConfig always;
    always.probability = 1.0;
    ParaMitigation on(always, 64);
    on.onClose(0, closeOf(10), refresh);
    EXPECT_EQ(on.fires(), 1u);
    ASSERT_EQ(refresh.size(), 2u);
    EXPECT_EQ(refresh[0], 9u);
    EXPECT_EQ(refresh[1], 11u);
}

TEST(ParaHook, RefreshClipsAtSubarrayBoundary)
{
    ParaConfig always;
    always.probability = 1.0;
    ParaMitigation para(always, 64);
    std::vector<RowId> refresh;
    // First row of subarray 1: row 63 is across the boundary and must
    // not be refreshed (a cross-subarray refresh would be a different
    // wordline entirely).
    para.onClose(0, closeOf(64), refresh);
    ASSERT_EQ(refresh.size(), 1u);
    EXPECT_EQ(refresh[0], 65u);
}

TEST(GrapheneHook, TriggersAtThresholdAndResets)
{
    GrapheneConfig cfg;
    cfg.tableSize = 4;
    cfg.threshold = 5;
    GrapheneMitigation g(cfg, 1, 64);
    std::vector<RowId> refresh;
    for (int i = 0; i < 4; ++i)
        g.onClose(0, closeOf(10), refresh);
    EXPECT_EQ(g.triggers(), 0u);
    EXPECT_EQ(g.estimate(0, 10), 4u);
    EXPECT_TRUE(refresh.empty());

    g.onClose(0, closeOf(10), refresh);
    EXPECT_EQ(g.triggers(), 1u);
    EXPECT_EQ(g.estimate(0, 10), 0u);  // slot freed after the trigger
    ASSERT_EQ(refresh.size(), 2u);
    EXPECT_EQ(refresh[0], 9u);
    EXPECT_EQ(refresh[1], 11u);
}

TEST(GrapheneHook, SpillDecrementsInsteadOfEvicting)
{
    GrapheneConfig cfg;
    cfg.tableSize = 2;
    cfg.threshold = 100;
    GrapheneMitigation g(cfg, 1, 64);
    std::vector<RowId> refresh;
    g.onClose(0, closeOf(1), refresh);
    g.onClose(0, closeOf(1), refresh);
    g.onClose(0, closeOf(2), refresh);
    // Table full at {1:2, 2:1}: the untracked arrival charges every
    // tracked count instead of evicting a slot (Misra-Gries).
    g.onClose(0, closeOf(3), refresh);
    EXPECT_EQ(g.estimate(0, 1), 1u);
    EXPECT_EQ(g.estimate(0, 2), 0u);  // decremented to zero, freed
    EXPECT_EQ(g.estimate(0, 3), 0u);  // never admitted
    EXPECT_EQ(g.triggers(), 0u);
    EXPECT_TRUE(refresh.empty());
}

TEST(PracHook, AlertDrainsHotRowAndItsNeighbors)
{
    PracMitigation prac(naiveConfig(), 1, 128, 64);
    std::vector<RowId> refresh;
    for (int i = 0; i < 19; ++i)
        prac.onClose(0, closeOf(10), refresh);
    EXPECT_EQ(prac.alerts(), 0u);
    EXPECT_TRUE(refresh.empty());

    prac.onClose(0, closeOf(10), refresh);
    EXPECT_EQ(prac.alerts(), 1u);
    EXPECT_GE(prac.rfms(), 1u);
    for (RowId r : {RowId(9), RowId(10), RowId(11)})
        EXPECT_NE(std::find(refresh.begin(), refresh.end(), r),
                  refresh.end())
            << r;
    // The drain resets the hot counter below the RDT.
    EXPECT_LT(prac.counters().counter(0, 10), naiveConfig().rdt);
}

TEST(HookDevice, ParaAlwaysFireSuppressesFlips)
{
    // End-to-end: the same double-sided hammer on two identically
    // seeded devices, one with a fire-every-close PARA hook.  The
    // unprotected arm flips victim bits; the hook refreshes both
    // neighbors of every close, so no victim ever accumulates more
    // than one close of damage.
    dram::DeviceConfig cfg = dram::makeConfig("HMA81GU7AFR8N-UH");
    cfg.banks = 1;
    cfg.subarraysPerBank = 2;
    cfg.rowsPerSubarray = 64;
    cfg.cols = 64;
    cfg.profile.mapping = dram::MappingScheme::Sequential;
    cfg.profile.rhMin = 400;
    cfg.profile.rhAvg = 900;

    const dram::TimingParams t{};
    bender::Program p;
    p.loopBegin(3000)
        .act(0, 9, t.tRFC)
        .pre(0, t.tRAS)
        .act(0, 11, t.tRC)
        .pre(0, t.tRAS)
        .loopEnd();

    const dram::RowData init(cfg.cols, dram::DataPattern::PAA);
    const auto flipsWith = [&](dram::MitigationHook *hook) {
        bender::TestBench bench(cfg);
        bench.executor().setPreflight(false);
        if (hook != nullptr)
            bench.device().setMitigation(hook);
        for (RowId r = 8; r <= 12; ++r)
            bench.writeRow(0, r, init);
        bench.run(p);
        std::size_t flips = 0;
        for (RowId r : {RowId(8), RowId(10), RowId(12)})
            flips += bench.readRow(0, r).diffCount(init);
        return flips;
    };

    EXPECT_GT(flipsWith(nullptr), 0u);
    ParaConfig always;
    always.probability = 1.0;
    ParaMitigation para(always, cfg.rowsPerSubarray);
    EXPECT_EQ(flipsWith(&para), 0u);
}

} // namespace
