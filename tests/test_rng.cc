/**
 * @file
 * Unit tests for the deterministic random number generator.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "util/rng.h"

namespace {

using pud::Rng;

TEST(Rng, SameSeedSameStream)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng rng(9);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform(-3.5, 12.25);
        EXPECT_GE(u, -3.5);
        EXPECT_LT(u, 12.25);
    }
}

TEST(Rng, BelowRespectsBound)
{
    Rng rng(11);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, BelowZeroBoundIsZero)
{
    Rng rng(1);
    EXPECT_EQ(rng.below(0), 0u);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(13);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const auto v = rng.range(-2, 3);
        EXPECT_GE(v, -2);
        EXPECT_LE(v, 3);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 6u);  // all values hit
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(17);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, GaussianMoments)
{
    Rng rng(19);
    const int n = 200000;
    double sum = 0, sq = 0;
    for (int i = 0; i < n; ++i) {
        const double g = rng.gaussian();
        sum += g;
        sq += g * g;
    }
    const double mean = sum / n;
    const double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 0.0, 0.02);
    EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, LogNormalMedianIsMedian)
{
    Rng rng(23);
    const double median = 5000.0;
    const int n = 100001;
    std::vector<double> xs;
    xs.reserve(n);
    for (int i = 0; i < n; ++i)
        xs.push_back(rng.logNormalMedian(median, 0.7));
    std::nth_element(xs.begin(), xs.begin() + n / 2, xs.end());
    EXPECT_NEAR(xs[n / 2] / median, 1.0, 0.05);
}

TEST(Rng, ForkIndependence)
{
    Rng parent(31);
    Rng a = parent.fork(1);
    Rng b = parent.fork(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

/** Determinism across seeds: property sweep. */
class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(RngSeedSweep, StreamReproducible)
{
    Rng a(GetParam()), b(GetParam());
    for (int i = 0; i < 64; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST_P(RngSeedSweep, MeanOfUniformNearHalf)
{
    Rng rng(GetParam());
    double sum = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.02);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(0, 1, 2, 42, 0xDEADBEEF,
                                           ~0ULL));

} // namespace
