/**
 * @file
 * Unit tests for the testbench host layer (paper Fig. 2's rig).
 */

#include <gtest/gtest.h>

#include "bender/host.h"

namespace {

using namespace pud;
using namespace pud::bender;
using dram::DataPattern;
using dram::DeviceConfig;
using dram::RowData;

DeviceConfig
smallConfig()
{
    DeviceConfig cfg = dram::makeConfig("M391A2G43BB2-CWE", 2);
    cfg.banks = 2;
    cfg.subarraysPerBank = 2;
    cfg.rowsPerSubarray = 64;
    cfg.cols = 128;
    return cfg;
}

TEST(TemperatureController, SetsDeviceTemperature)
{
    TestBench bench(smallConfig());
    EXPECT_DOUBLE_EQ(bench.thermo().current(), 80.0);
    bench.thermo().setTarget(50.0);
    EXPECT_DOUBLE_EQ(bench.thermo().current(), 50.0);
    EXPECT_DOUBLE_EQ(bench.device().temperature(), 50.0);
}

TEST(TemperatureController, RejectsOutOfRangeTargets)
{
    TestBench bench(smallConfig());
    EXPECT_DEATH(bench.thermo().setTarget(10.0), "rig range");
    EXPECT_DEATH(bench.thermo().setTarget(120.0), "rig range");
}

TEST(TestBench, FillAndCountBitflips)
{
    TestBench bench(smallConfig());
    bench.fillRow(0, 5, DataPattern::PAA);
    const RowData expected(128, DataPattern::PAA);
    EXPECT_EQ(bench.countBitflips(0, 5, expected), 0u);

    RowData corrupted = expected;
    corrupted.toggle(3);
    corrupted.toggle(77);
    bench.writeRow(0, 5, corrupted);
    EXPECT_EQ(bench.countBitflips(0, 5, expected), 2u);
}

TEST(TestBench, WriteReadAcrossBanks)
{
    TestBench bench(smallConfig());
    const RowData a(128, DataPattern::P55);
    const RowData b(128, DataPattern::P00);
    bench.writeRow(0, 9, a);
    bench.writeRow(1, 9, b);
    EXPECT_EQ(bench.readRow(0, 9), a);
    EXPECT_EQ(bench.readRow(1, 9), b);
}

TEST(TestBench, RunReturnsMonotonicTimes)
{
    TestBench bench(smallConfig());
    Program p;
    p.act(0, 1, units::fromNs(15)).pre(0, units::fromNs(36));
    const auto r1 = bench.run(p);
    const auto r2 = bench.run(p);
    EXPECT_GT(r2.startTime, r1.endTime);
}

} // namespace
