/**
 * @file
 * Unit tests for the disturbance model's condition factors.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "dram/disturb.h"

namespace {

using namespace pud;
using namespace pud::dram;

DeviceConfig
hynixConfig()
{
    return makeConfig("HMA81GU7AFR8N-UH", 1);
}

DeviceConfig
micronConfig()
{
    return makeConfig("MTA18ASF4G72HZ-3G2F1", 1);
}

TEST(PressGain, ConventionalAnchors)
{
    const DisturbanceModel m(hynixConfig());
    EXPECT_NEAR(m.pressGain(TechClass::Conventional, 1,
                            units::fromNs(36)),
                1.0, 1e-9);
    EXPECT_NEAR(m.pressGain(TechClass::Conventional, 1,
                            units::fromNs(144)),
                1.878, 1e-3);
    // Obs. 6: 31.15x average HC_first reduction at t_AggOn = 70.2us.
    EXPECT_NEAR(m.pressGain(TechClass::Conventional, 1,
                            units::fromNs(70200)),
                31.15, 1e-2);
}

TEST(PressGain, MonotonicInTAggOn)
{
    const DisturbanceModel m(hynixConfig());
    double prev = 0.0;
    for (double t : {36., 50., 144., 1000., 7800., 30000., 70200.}) {
        const double g =
            m.pressGain(TechClass::Comra, 1, units::fromNs(t));
        EXPECT_GT(g, prev) << "t=" << t;
        prev = g;
    }
}

TEST(PressGain, PartialOpenAttenuates)
{
    const DisturbanceModel m(hynixConfig());
    EXPECT_LT(m.pressGain(TechClass::Conventional, 1, units::fromNs(3)),
              0.1);
    EXPECT_NEAR(m.pressGain(TechClass::Conventional, 1, 0), 0.0, 1e-12);
}

TEST(PressGain, SimraEndFactorsWithinPaperRange)
{
    // Obs. 18: 144.93x - 270.27x at 70.2us across all N.
    const DisturbanceModel m(hynixConfig());
    for (int n : {2, 4, 8, 16, 32}) {
        const double g =
            m.pressGain(TechClass::Simra, n, units::fromNs(70200));
        EXPECT_GE(g, 144.0) << "N=" << n;
        EXPECT_LE(g, 271.0) << "N=" << n;
    }
}

TEST(ComraDelayGain, NominalAtSevenPointFive)
{
    const DisturbanceModel m(hynixConfig());
    EXPECT_DOUBLE_EQ(m.comraDelayGain(units::fromNs(7.5)), 1.0);
    EXPECT_DOUBLE_EQ(m.comraDelayGain(units::fromNs(3.0)), 1.0);
}

TEST(ComraDelayGain, PaperEndpoints)
{
    // Obs. 8: HC_first increases 3.10x (SK Hynix) / 1.18x (Micron)
    // from 7.5ns to 12ns.
    const DisturbanceModel hynix(hynixConfig());
    EXPECT_NEAR(1.0 / hynix.comraDelayGain(units::fromNs(12.0)), 3.10,
                1e-2);
    const DisturbanceModel micron(micronConfig());
    EXPECT_NEAR(1.0 / micron.comraDelayGain(units::fromNs(12.0)), 1.18,
                1e-2);
}

TEST(SimraTimingGain, PartialActivationPenalty)
{
    const DisturbanceModel m(hynixConfig());
    const double nominal = m.simraTimingGain(units::fromNs(3.0),
                                             units::fromNs(3.0));
    const double partial = m.simraTimingGain(units::fromNs(1.5),
                                             units::fromNs(3.0));
    // Obs. 20: 2.28x average HC_first increase.
    EXPECT_NEAR(nominal / partial, 2.28, 1e-2);
}

TEST(SimraTimingGain, PreToActTrend)
{
    const DisturbanceModel m(hynixConfig());
    const double lo = m.simraTimingGain(units::fromNs(3.0),
                                        units::fromNs(1.5));
    const double hi = m.simraTimingGain(units::fromNs(3.0),
                                        units::fromNs(4.5));
    // Obs. 19: 1.23x decrease in HC_first from 1.5ns to 4.5ns.
    EXPECT_NEAR(hi / lo, 1.23, 1e-2);
}

TEST(TempGain, ComraFamilyTrends)
{
    const DisturbanceModel hynix(hynixConfig());
    const DisturbanceModel micron(micronConfig());
    WeakCell cell;
    // SK Hynix: hotter is worse (3.45x from 50C to 80C).
    const double h50 = hynix.tempGain(TechClass::Comra, 1, 50.0, cell);
    const double h80 = hynix.tempGain(TechClass::Comra, 1, 80.0, cell);
    EXPECT_NEAR(h80 / h50, 3.45, 1e-2);
    // Micron: inverted (1.14x the other way, Obs. 4).
    const double m50 = micron.tempGain(TechClass::Comra, 1, 50.0, cell);
    const double m80 = micron.tempGain(TechClass::Comra, 1, 80.0, cell);
    EXPECT_NEAR(m50 / m80, 1.14, 1e-2);
}

TEST(TempGain, SimraConsistentIncrease)
{
    const DisturbanceModel m(hynixConfig());
    WeakCell cell;
    for (int n : {2, 4, 8, 16}) {
        const double g50 = m.tempGain(TechClass::Simra, n, 50.0, cell);
        const double g80 = m.tempGain(TechClass::Simra, n, 80.0, cell);
        EXPECT_GT(g80 / g50, 2.9) << "N=" << n;  // Obs. 15: ~3.0-3.3x
        EXPECT_LT(g80 / g50, 3.4) << "N=" << n;
    }
}

TEST(TempGain, ConventionalFollowsCellSlope)
{
    const DisturbanceModel m(hynixConfig());
    WeakCell hot, cold;
    hot.tempSlopeConv = 0.5f;
    cold.tempSlopeConv = -0.3f;
    EXPECT_LT(m.tempGain(TechClass::Conventional, 1, 50.0, hot), 1.0);
    EXPECT_GT(m.tempGain(TechClass::Conventional, 1, 50.0, cold), 1.0);
    EXPECT_DOUBLE_EQ(m.tempGain(TechClass::Conventional, 1, 80.0, hot),
                     1.0);
}

TEST(DataGain, AntiParallelAndCheckerboardStrongest)
{
    const DisturbanceModel m(hynixConfig());
    const RowData checker(64, DataPattern::P55);
    const RowData solid(64, DataPattern::PFF);
    // Victim bit 0 stored under an aggressor 1 with local alternation:
    // full coupling.
    EXPECT_DOUBLE_EQ(m.dataGain(checker, 0, false), 1.0);
    // Same-value coupling is weaker.
    EXPECT_LT(m.dataGain(checker, 0, true), 1.0);
    // Solid pattern loses the alternation bonus.
    EXPECT_LT(m.dataGain(solid, 0, false), 1.0);
}

TEST(DataGain, NanyaSolidPatternsIneffective)
{
    const DisturbanceModel m(makeConfig("KVR24N17S8/8", 1));
    const RowData solid(64, DataPattern::P00);
    const RowData checker(64, DataPattern::PAA);
    // Footnote 1: no bitflips within a refresh window for 0x00/0xFF.
    EXPECT_LT(m.dataGain(solid, 0, true), 0.05);
    EXPECT_GT(m.dataGain(checker, 1, false), 0.5);
}

TEST(Region, PartitionIsUniform)
{
    const DisturbanceModel m(hynixConfig());
    const RowId rps = hynixConfig().rowsPerSubarray;
    int counts[kNumRegions] = {};
    for (RowId r = 0; r < rps; ++r)
        ++counts[static_cast<int>(m.regionOf(r))];
    // rps need not divide evenly by 5; regions differ by at most 1.
    for (int c : counts) {
        EXPECT_GE(c, static_cast<int>(rps) / kNumRegions);
        EXPECT_LE(c, static_cast<int>(rps) / kNumRegions + 1);
    }
    // Second subarray partitions identically.
    EXPECT_EQ(m.regionOf(rps), Region::Beginning);
    EXPECT_EQ(m.regionOf(2 * rps - 1), Region::End);
}

TEST(RegionGain, ComraVariationMatchesManufacturer)
{
    // Fig. 11: max/min average HC_first variation 1.40x for SK Hynix,
    // 2.25x for Micron.
    auto ratio = [](const DeviceConfig &cfg) {
        const DisturbanceModel m(cfg);
        double lo = 1e9, hi = 0;
        for (int r = 0; r < kNumRegions; ++r) {
            const double g = m.regionGain(TechClass::Comra, 1,
                                          static_cast<Region>(r));
            lo = std::min(lo, g);
            hi = std::max(hi, g);
        }
        return hi / lo;
    };
    EXPECT_NEAR(ratio(hynixConfig()), 1.40, 0.02);
    EXPECT_NEAR(ratio(micronConfig()), 2.25, 0.02);
}

TEST(RegionGain, ConventionalSharesTheFamilyProfile)
{
    // The spatial vulnerability profile is a property of the silicon,
    // shared between single-row activation and CoMRA, so the CoMRA-
    // vs-RowHammer comparison is region-neutral (keeps Obs. 2 true).
    const DisturbanceModel m(hynixConfig());
    for (int r = 0; r < kNumRegions; ++r)
        EXPECT_DOUBLE_EQ(m.regionGain(TechClass::Conventional, 1,
                                      static_cast<Region>(r)),
                         m.regionGain(TechClass::Comra, 1,
                                      static_cast<Region>(r)));
}

TEST(ApplyClose, DoubleSidedNormalization)
{
    // An alternating double-sided RowHammer at reference conditions
    // must flip the weakest cell after ~baseHc rounds: feed synthetic
    // close events directly and verify the damage arithmetic.
    DeviceConfig cfg = hynixConfig();
    DisturbanceModel m(cfg);

    std::vector<Row> rows(8);
    for (auto &row : rows)
        row.data = RowData(cfg.cols, DataPattern::PAA);

    WeakCell cell;
    cell.col = 0;  // 0xAA has bit 0 = 0: matches dirConv 0 -> 1
    cell.baseHc = 1000.0f;
    cell.dirConv = FlipDirection::ZeroToOne;
    rows[3].cells.push_back(cell);

    CloseEvent left, right;
    left.rows = {2};
    right.rows = {4};
    left.cls = right.cls = TechClass::Conventional;
    left.tOn = right.tOn = units::fromNs(36);

    // Aggressors hold 0x55 (bit 0 = 1, anti-parallel, alternating).
    rows[2].data = RowData(cfg.cols, DataPattern::P55);
    rows[4].data = RowData(cfg.cols, DataPattern::P55);

    // The family's spatial profile scales the per-event damage; fold
    // it into the expected round count.
    const double gain =
        m.regionGain(TechClass::Conventional, 1, m.regionOf(3));
    const int rounds = static_cast<int>(1000.0 / gain);
    for (int round = 0; round < rounds - 2; ++round) {
        m.applyClose(rows, left, 80.0);
        m.applyClose(rows, right, 80.0);
    }
    EXPECT_FALSE(rows[3].cells[0].flipped());
    // A few more rounds push it over 1.0 (the very first event is
    // reduced-strength before alternation establishes).
    for (int round = 0; round < 4; ++round) {
        m.applyClose(rows, left, 80.0);
        m.applyClose(rows, right, 80.0);
    }
    EXPECT_TRUE(rows[3].cells[0].flipped());
}

TEST(ApplyClose, SubarrayBoundaryIsolates)
{
    DeviceConfig cfg = hynixConfig();
    DisturbanceModel m(cfg);
    const RowId rps = cfg.rowsPerSubarray;

    std::vector<Row> rows(2 * rps);
    for (auto &row : rows)
        row.data = RowData(cfg.cols, DataPattern::PAA);

    WeakCell cell;
    cell.col = 0;
    cell.baseHc = 10.0f;
    cell.dirConv = FlipDirection::ZeroToOne;
    // Victim on the far side of the boundary from the aggressor.
    rows[rps].cells.push_back(cell);

    CloseEvent ev;
    ev.rows = {rps - 1};  // last row of subarray 0
    ev.cls = TechClass::Conventional;
    ev.tOn = units::fromNs(36);
    for (int i = 0; i < 1000; ++i)
        m.applyClose(rows, ev, 80.0);
    EXPECT_FLOAT_EQ(rows[rps].cells[0].totalDamage(), 0.0f);
}

TEST(ApplyClose, RecordingReplaysExactly)
{
    DeviceConfig cfg = hynixConfig();
    DisturbanceModel m(cfg);

    std::vector<Row> rows(8);
    for (auto &row : rows)
        row.data = RowData(cfg.cols, DataPattern::PAA);
    WeakCell cell;
    cell.col = 2;  // 0xAA bit 2 = 0
    cell.baseHc = 100000.0f;
    rows[3].cells.push_back(cell);
    rows[2].data = RowData(cfg.cols, DataPattern::P55);

    CloseEvent ev;
    ev.rows = {2};
    ev.cls = TechClass::Conventional;
    ev.tOn = units::fromNs(36);

    m.applyClose(rows, ev, 80.0);  // warm-up (side state)
    const float after_one = rows[3].cells[0].damage[0];

    m.beginRecording();
    m.applyClose(rows, ev, 80.0);
    const auto record = m.endRecording();
    const float per_iter = rows[3].cells[0].damage[0] - after_one;

    DisturbanceModel::replay(record, 10);
    EXPECT_NEAR(rows[3].cells[0].damage[0], after_one + 11 * per_iter,
                1e-3 * per_iter);
}

TEST(FoldThreshold, AnchorBudgetHitsRegionGain)
{
    const DeviceConfig cfg = hynixConfig();
    const DisturbanceModel m(cfg);
    const double base = cfg.profile.rhMin;

    AggregateExposure e;
    e.cls = TechClass::Conventional;
    e.tOn = cfg.timings.tRAS;
    e.doubleSided = true;
    e.region = Region::Middle;
    e.temperature = 80.0;
    // Exactly the double-sided HC_first budget: 2 * base closes split
    // across both aggressors.  At the anchor conditions (tRAS on-time,
    // 80C) every gain except the spatial one is 1.0, so the fold must
    // return precisely the family's Middle-region factor.
    e.weightedCloses = 2.0 * base;
    const double d = foldThreshold(cfg, e, base);
    EXPECT_NEAR(
        d, m.regionGain(TechClass::Conventional, 2, Region::Middle),
        1e-9);

    // Linear in the close total.
    e.weightedCloses *= 3.0;
    EXPECT_NEAR(foldThreshold(cfg, e, base), 3.0 * d, 1e-9);
}

TEST(FoldThreshold, SideAndDelayFactors)
{
    const DeviceConfig cfg = hynixConfig();
    const double base = cfg.profile.rhMin;

    AggregateExposure e;
    e.cls = TechClass::Conventional;
    e.tOn = cfg.timings.tRAS;
    e.weightedCloses = 2.0 * base;
    const double both = foldThreshold(cfg, e, base);
    e.doubleSided = false;
    EXPECT_NEAR(foldThreshold(cfg, e, base),
                both * cfg.singleSidedScale, 1e-9);
    e.doubleSided = true;

    // CoMRA damage decays as the violated PRE -> ACT delay grows
    // toward nominal tRP (Fig. 9).
    e.cls = TechClass::Comra;
    e.comraDelay = units::fromNs(7.5);
    const double fast = foldThreshold(cfg, e, base);
    e.comraDelay = units::fromNs(12.0);
    const double slow = foldThreshold(cfg, e, base);
    EXPECT_GT(fast, slow);
    EXPECT_GT(slow, 0.0);
}

TEST(FoldThreshold, DegenerateInputsAreZero)
{
    const DeviceConfig cfg = hynixConfig();
    AggregateExposure e;
    e.weightedCloses = 1000.0;
    EXPECT_EQ(foldThreshold(cfg, e, 0.0), 0.0);
    e.weightedCloses = 0.0;
    EXPECT_EQ(foldThreshold(cfg, e, 25000.0), 0.0);
}

} // namespace
