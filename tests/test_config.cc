/**
 * @file
 * Unit tests for the module-family calibration profiles and the
 * analytic distribution fit.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "dram/config.h"

namespace {

using namespace pud::dram;

TEST(Table2, PopulationMatchesPaper)
{
    const auto &families = table2Families();
    EXPECT_EQ(families.size(), 14u);

    int modules = 0, chips = 0;
    for (const auto &f : families) {
        modules += f.numModules;
        chips += f.numChips;
    }
    EXPECT_EQ(modules, 40);  // paper: 40 modules
    EXPECT_EQ(chips, 316);   // paper: 316 chips
}

TEST(Table2, ManufacturerCounts)
{
    int by_mfr[4] = {0, 0, 0, 0};
    for (const auto &f : table2Families())
        by_mfr[static_cast<int>(f.mfr)] += f.numModules;
    EXPECT_EQ(by_mfr[static_cast<int>(Manufacturer::SKHynix)], 17);
    EXPECT_EQ(by_mfr[static_cast<int>(Manufacturer::Micron)], 11);
    EXPECT_EQ(by_mfr[static_cast<int>(Manufacturer::Samsung)], 9);
    EXPECT_EQ(by_mfr[static_cast<int>(Manufacturer::Nanya)], 3);
}

TEST(Table2, OnlySkHynixSupportsSimra)
{
    for (const auto &f : table2Families()) {
        EXPECT_EQ(f.supportsSimra, f.mfr == Manufacturer::SKHynix)
            << f.moduleId;
        if (f.supportsSimra) {
            EXPECT_GT(f.simraMin, 0.0);
        }
    }
}

TEST(Table2, AnchorsAreOrdered)
{
    for (const auto &f : table2Families()) {
        EXPECT_LT(f.rhMin, f.rhAvg) << f.moduleId;
        EXPECT_LT(f.comraMin, f.comraAvg) << f.moduleId;
        // CoMRA is at least as effective as RowHammer (Obs. 1).
        EXPECT_LE(f.comraMin, f.rhMin) << f.moduleId;
        EXPECT_LE(f.comraAvg, f.rhAvg) << f.moduleId;
    }
}

TEST(Table2, HeadlineAnchors)
{
    const auto &f = findFamily("HMA81GU7AFR8N-UH");
    EXPECT_DOUBLE_EQ(f.simraMin, 26.0);  // the paper's headline HC_first
    EXPECT_DOUBLE_EQ(f.rhMin, 25000.0);
    EXPECT_DOUBLE_EQ(f.comraMin, 1885.0);
}

TEST(FindFamily, UnknownIsFatal)
{
    EXPECT_DEATH(findFamily("NOPE-123"), "unknown module family");
}

TEST(InverseNormalCdf, KnownValues)
{
    EXPECT_NEAR(inverseNormalCdf(0.5), 0.0, 1e-8);
    EXPECT_NEAR(inverseNormalCdf(0.975), 1.959964, 1e-4);
    EXPECT_NEAR(inverseNormalCdf(0.025), -1.959964, 1e-4);
    EXPECT_NEAR(inverseNormalCdf(0.001), -3.090232, 1e-4);
}

TEST(InverseNormalCdf, RejectsOutOfRange)
{
    EXPECT_DEATH(inverseNormalCdf(0.0), "out of");
    EXPECT_DEATH(inverseNormalCdf(1.0), "out of");
}

TEST(Calibrate, MedianBelowMean)
{
    for (const auto &f : table2Families()) {
        const auto cal = calibrate(f);
        EXPECT_GT(cal.rhSigma, 0.0) << f.moduleId;
        EXPECT_LT(cal.rhMedian, f.rhAvg) << f.moduleId;
        // Lognormal mean identity: median * exp(sigma^2 / 2) == avg.
        EXPECT_NEAR(cal.rhMedian * std::exp(0.5 * cal.rhSigma *
                                            cal.rhSigma),
                    f.rhAvg, 1e-6 * f.rhAvg)
            << f.moduleId;
    }
}

TEST(Calibrate, ComraFactorReflectsAnchors)
{
    // Families with a deep CoMRA min (SK Hynix A 8Gb: 25K -> 1885)
    // need a wider factor spread than ones with a shallow min
    // (Micron R: 3.84K -> 3.67K).
    const auto deep = calibrate(findFamily("HMA81GU7AFR8N-UH"));
    const auto shallow = calibrate(findFamily("KSM32ES8/8MR"));
    EXPECT_GT(deep.comraFactorSigma, shallow.comraFactorSigma);
    EXPECT_GE(deep.comraFactorMedian, 1.0);
}

TEST(Calibrate, SimraExtremeTailPinned)
{
    const auto &f = findFamily("HMA81GU7AFR8N-UH");
    const auto cal = calibrate(f);
    EXPECT_GT(cal.simraExtremeMedian, cal.simraRegularMedian);
    EXPECT_GT(cal.simraExtremeFraction, 0.2);  // >= 25% of victim rows
                                               // show >99% reduction
}

TEST(MakeConfig, DefaultsAreSane)
{
    const DeviceConfig cfg = makeConfig("KVR24N17S8/8", 7);
    EXPECT_EQ(cfg.profile.mfr, Manufacturer::Nanya);
    EXPECT_TRUE(cfg.profile.trueAntiCells);
    EXPECT_EQ(cfg.seed, 7u);
    EXPECT_GT(cfg.rowsPerBank(), 0u);
    EXPECT_EQ(cfg.rowsPerBank(),
              cfg.subarraysPerBank * cfg.rowsPerSubarray);
}

class FamilySweep : public ::testing::TestWithParam<int>
{};

TEST_P(FamilySweep, CalibrationIsFinitePositive)
{
    const auto &f = table2Families()[GetParam()];
    const auto cal = calibrate(f);
    EXPECT_TRUE(std::isfinite(cal.rhMedian));
    EXPECT_GT(cal.rhMedian, 0.0);
    EXPECT_TRUE(std::isfinite(cal.comraFactorMedian));
    EXPECT_GT(cal.comraFactorMedian, 0.99);
    if (f.supportsSimra) {
        EXPECT_TRUE(std::isfinite(cal.simraExtremeMedian));
        EXPECT_TRUE(std::isfinite(cal.simraRegularMedian));
    }
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, FamilySweep,
                         ::testing::Range(0, 14));

} // namespace
