/**
 * @file
 * Differential-checker tests: the seeded generator's programs agree
 * between the row-state dataflow analysis and the real device model,
 * the run is deterministic and composable across seed ranges, and the
 * rejection half of the contract holds (lint-rejected programs never
 * reach the device's data path; the dataflow side degrades the same
 * rows to Unknown).
 *
 * CI runs a much larger seed budget through the `pudhammer diffcheck`
 * CLI; this fixture keeps ctest latency low.
 */

#include <gtest/gtest.h>

#include "bender/host.h"
#include "check/diffcheck.h"
#include "lint/dataflow.h"
#include "lint/linter.h"

namespace {

using namespace pud;
using namespace pud::check;

TEST(DiffCheck, SmallBudgetAgreesWithTheDevice)
{
    DiffCheckConfig cfg;
    cfg.seeds = 150;
    const DiffCheckStats stats = runDiffCheck(cfg);
    EXPECT_TRUE(stats.ok()) << stats.firstMismatch;
    EXPECT_EQ(stats.programs, 150u);
    // The generator menu must actually exercise the interesting paths:
    // proven rows, refused rows (TRNG / tie-able merges), SiMRA merge
    // records, and loops.
    EXPECT_GT(stats.rowsVerified, 0u);
    EXPECT_GT(stats.rowsUnverifiable, 0u);
    EXPECT_GT(stats.merges, 0u);
    EXPECT_GT(stats.loops, 0u);
}

TEST(DiffCheck, DeterministicInTheSeed)
{
    DiffCheckConfig cfg;
    cfg.seeds = 25;
    cfg.firstSeed = 1000;
    const DiffCheckStats a = runDiffCheck(cfg);
    const DiffCheckStats b = runDiffCheck(cfg);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.rowsVerified, b.rowsVerified);
    EXPECT_EQ(a.rowsUnverifiable, b.rowsUnverifiable);
    EXPECT_EQ(a.merges, b.merges);
    EXPECT_EQ(a.mismatches, b.mismatches);
}

TEST(DiffCheck, SeedRangesCompose)
{
    DiffCheckConfig lo, hi, all;
    lo.seeds = 30;
    lo.firstSeed = 1;
    hi.seeds = 30;
    hi.firstSeed = 31;
    all.seeds = 60;
    all.firstSeed = 1;
    const DiffCheckStats a = runDiffCheck(lo);
    const DiffCheckStats b = runDiffCheck(hi);
    const DiffCheckStats c = runDiffCheck(all);
    EXPECT_EQ(a.instructions + b.instructions, c.instructions);
    EXPECT_EQ(a.rowsVerified + b.rowsVerified, c.rowsVerified);
    EXPECT_EQ(a.rowsUnverifiable + b.rowsUnverifiable,
              c.rowsUnverifiable);
    EXPECT_EQ(a.mismatches + b.mismatches, c.mismatches);
}

/**
 * Rejection agreement: a program lint refuses (error severity) also
 * dies in the engine -- pre-flight or device, depending on build --
 * and the dataflow side claims nothing bit-exact about its rows.
 */
TEST(DiffCheck, LintRejectedProgramsAlsoDieInTheEngine)
{
    const dram::TimingParams t{};
    bender::Program p;
    p.act(0, 5, t.tRC)
        .wrUnchecked(0, 7, t.tRCD)  // dangling data index
        .pre(0, t.tRAS);

    dram::DeviceConfig cfg = dram::makeConfig("HMA81GU7AFR8N-UH");
    cfg.banks = 1;
    cfg.subarraysPerBank = 2;
    cfg.rowsPerSubarray = 64;
    cfg.cols = 64;
    cfg.profile.mapping = dram::MappingScheme::Sequential;

    const lint::LintResult lr = lint::lintProgram(p, cfg);
    EXPECT_FALSE(lr.clean());

    const lint::DataflowResult df = lint::analyzeDataflow(p, cfg);
    ASSERT_NE(df.find(0, 5), nullptr);
    EXPECT_EQ(df.find(0, 5)->kind, lint::RowStateKind::Unknown);

    EXPECT_DEATH(
        {
            bender::TestBench bench(cfg);
            bench.executor().setPreflight(true);
            bench.run(p);
        },
        "data index");
}

// ---- mitigation mode ---------------------------------------------------

TEST(DiffCheckMitigation, TrrSmokeHasNoSoundnessViolations)
{
    DiffCheckConfig cfg;
    cfg.seeds = 120;
    cfg.mitigation = MitigationUnderTest::Trr;
    const DiffCheckStats stats = runDiffCheck(cfg);
    EXPECT_TRUE(stats.ok()) << stats.firstMismatch;
    EXPECT_EQ(stats.soundnessViolations, 0u);
    EXPECT_EQ(stats.programs, 120u);
    // The generator must populate every verdict class, and some
    // victims must actually flip -- otherwise the run proves nothing.
    EXPECT_GT(stats.likelyVictims, 0u);
    EXPECT_GT(stats.mitigatedCertainRows, 0u);
    EXPECT_GT(stats.bypassCertainRows, 0u);
    EXPECT_GT(stats.possibleRows, 0u);
    EXPECT_GT(stats.flippedRows, 0u);
}

TEST(DiffCheckMitigation, PracSmokeHasNoSoundnessViolations)
{
    DiffCheckConfig cfg;
    cfg.seeds = 120;
    cfg.mitigation = MitigationUnderTest::Prac;
    const DiffCheckStats stats = runDiffCheck(cfg);
    EXPECT_TRUE(stats.ok()) << stats.firstMismatch;
    EXPECT_EQ(stats.soundnessViolations, 0u);
    EXPECT_GT(stats.mitigatedCertainRows, 0u);
    EXPECT_GT(stats.bypassCertainRows, 0u);
    EXPECT_GT(stats.possibleRows, 0u);
}

TEST(DiffCheckMitigation, DeterministicInTheSeed)
{
    DiffCheckConfig cfg;
    cfg.seeds = 20;
    cfg.firstSeed = 500;
    cfg.mitigation = MitigationUnderTest::Trr;
    const DiffCheckStats a = runDiffCheck(cfg);
    const DiffCheckStats b = runDiffCheck(cfg);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.likelyVictims, b.likelyVictims);
    EXPECT_EQ(a.mitigatedCertainRows, b.mitigatedCertainRows);
    EXPECT_EQ(a.bypassCertainRows, b.bypassCertainRows);
    EXPECT_EQ(a.possibleRows, b.possibleRows);
    EXPECT_EQ(a.flippedRows, b.flippedRows);
    EXPECT_EQ(a.soundnessViolations, b.soundnessViolations);
}

} // namespace
