/**
 * @file
 * Tests for the multi-process popsweep supervisor and the arena-reuse
 * device reset underneath it.
 *
 * The invariants under test are the PR's determinism contract: the
 * merged fleet sketch must be byte-identical across worker counts,
 * thread counts, crashes, restarts, and kill-mid-run interruptions --
 * and identical to the single-process sweepPopulation path.  Measures
 * are cheap deterministic functions (as in test_population.cc) except
 * where a real HC_first search is needed to pin device-state
 * bit-identity.
 */

#include <gtest/gtest.h>

#include <dirent.h>
#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "hammer/hcfirst.h"
#include "hammer/popsweep.h"

namespace {

using namespace pud;
using namespace pud::hammer;

PopulationConfig
tinyPopulation(int modules = 4)
{
    PopulationConfig cfg;
    cfg.moduleId = "HMA81GU7AFR8N-UH";
    cfg.modules = modules;
    cfg.victimsPerSubarray = 2;
    cfg.rowsPerSubarray = 64;
    cfg.seed = 7;
    return cfg;
}

/** Deterministic stand-in measure (same shape as test_population.cc). */
std::uint64_t
fakeMeasure(ModuleTester &t, dram::RowId v)
{
    if (v % 4 == 3)
        return kNoFlip;
    return t.device().config().seed * 100000 + v;
}

/**
 * Per-test scratch path, wiped before use: a leftover directory from a
 * previous test-binary run holds *complete* checkpoints, which would
 * silently turn every assertion below into a resume-only run.
 */
std::string
scratchDir(const char *name)
{
    const std::string dir = ::testing::TempDir() + "popsweep_" +
                            std::to_string(::getpid()) + "_" + name;
    if (DIR *d = ::opendir(dir.c_str())) {
        while (const dirent *e = ::readdir(d)) {
            const std::string leaf = e->d_name;
            if (leaf != "." && leaf != "..")
                ::unlink((dir + "/" + leaf).c_str());
        }
        ::closedir(d);
        ::rmdir(dir.c_str());
    }
    return dir;
}

// ---------------------------------------------------------------------------
// Worker ranges
// ---------------------------------------------------------------------------

TEST(WorkerRange, TilesShardsContiguouslyAndEvenly)
{
    for (std::size_t shards : {0u, 1u, 7u, 100u}) {
        for (int workers : {1, 2, 3, 8}) {
            std::size_t expect_begin = 0;
            std::size_t smallest = shards + 1, largest = 0;
            for (int w = 0; w < workers; ++w) {
                const auto [begin, end] =
                    popsweepWorkerRange(shards, workers, w);
                EXPECT_EQ(begin, expect_begin)
                    << "shards=" << shards << " workers=" << workers
                    << " w=" << w;
                EXPECT_LE(begin, end);
                expect_begin = end;
                smallest = std::min(smallest, end - begin);
                largest = std::max(largest, end - begin);
            }
            EXPECT_EQ(expect_begin, shards);
            // Balanced: range sizes differ by at most one shard.
            EXPECT_LE(largest - smallest, 1u);
        }
    }
}

// ---------------------------------------------------------------------------
// Byte-identity across (workers x jobs) and vs single-process
// ---------------------------------------------------------------------------

TEST(Popsweep, ByteIdenticalAcrossWorkersAndJobsVsSingleProcess)
{
    const PopulationConfig cfg = tinyPopulation(8);
    const SweepResult single = sweepPopulation(cfg, {fakeMeasure});
    const std::string want = single.sketches[0].serialize();

    for (int workers : {1, 2, 4}) {
        for (int jobs : {1, 2}) {
            PopsweepOptions opt;
            opt.dir = scratchDir(
                ("matrix_w" + std::to_string(workers) + "_j" +
                 std::to_string(jobs))
                    .c_str());
            opt.workers = workers;
            opt.jobsPerWorker = jobs;
            const PopsweepResult r =
                popsweep(cfg, {fakeMeasure}, opt);
            EXPECT_EQ(r.sweep.sketches[0].serialize(), want)
                << "workers=" << workers << " jobs=" << jobs;
            EXPECT_EQ(r.sweep.totalShards, single.totalShards);
            EXPECT_EQ(r.sweep.resumedShards, 0u);
            EXPECT_EQ(r.sweep.telemetry.shards.size(),
                      single.telemetry.shards.size());
            EXPECT_EQ(r.sweep.telemetry.workUnits(),
                      single.telemetry.workUnits());
            ASSERT_EQ(r.workers.size(),
                      static_cast<std::size_t>(workers));
            for (const WorkerReport &w : r.workers) {
                EXPECT_EQ(w.restarts, 0);
                EXPECT_GT(w.peakRssBytes, 0u);
            }
            EXPECT_GT(r.aggregateRssBytes, 0u);
        }
    }
}

TEST(Popsweep, RerunOverCompleteDirectoryResumesEverythingIdentically)
{
    const PopulationConfig cfg = tinyPopulation(6);
    PopsweepOptions opt;
    opt.dir = scratchDir("rerun");
    opt.workers = 2;

    const PopsweepResult first = popsweep(cfg, {fakeMeasure}, opt);
    const std::string want = first.sweep.sketches[0].serialize();
    EXPECT_EQ(first.sweep.resumedShards, 0u);

    // Same directory again: every worker must restore its whole range
    // from its own checkpoint and compute nothing.
    const PopsweepResult again = popsweep(cfg, {fakeMeasure}, opt);
    EXPECT_EQ(again.sweep.sketches[0].serialize(), want);
    EXPECT_EQ(again.sweep.resumedShards, again.sweep.totalShards);
}

// ---------------------------------------------------------------------------
// Crash / restart
// ---------------------------------------------------------------------------

/**
 * A measure that kills its own worker process the first time it runs
 * anywhere in the fleet (marker file = "already crashed once").  After
 * the restart it behaves exactly like fakeMeasure, so the final result
 * must be bit-identical to an undisturbed run.
 */
MeasureFn
crashOnceMeasure(const std::string &marker)
{
    return [marker](ModuleTester &t, dram::RowId v) -> std::uint64_t {
        if (::access(marker.c_str(), F_OK) != 0) {
            const int fd =
                ::open(marker.c_str(), O_CREAT | O_WRONLY, 0644);
            if (fd >= 0)
                ::close(fd);
            ::_exit(42);
        }
        return fakeMeasure(t, v);
    };
}

TEST(Popsweep, CrashedWorkerIsRestartedAndResultIsIdentical)
{
    const PopulationConfig cfg = tinyPopulation(6);
    const std::string want =
        sweepPopulation(cfg, {fakeMeasure}).sketches[0].serialize();

    PopsweepOptions opt;
    opt.dir = scratchDir("crash");
    opt.workers = 2;
    const std::string marker = opt.dir + ".crashed";
    std::remove(marker.c_str());

    const PopsweepResult r =
        popsweep(cfg, {crashOnceMeasure(marker)}, opt);
    EXPECT_EQ(r.sweep.sketches[0].serialize(), want);
    int restarts = 0;
    for (const WorkerReport &w : r.workers)
        restarts += w.restarts;
    EXPECT_GE(restarts, 1);
    std::remove(marker.c_str());
}

TEST(Popsweep, RestartBudgetExhaustionIsFatal)
{
    const PopulationConfig cfg = tinyPopulation(2);
    const MeasureFn always_crash = [](ModuleTester &,
                                      dram::RowId) -> std::uint64_t {
        ::_exit(7);
    };
    PopsweepOptions opt;
    opt.dir = scratchDir("budget");
    opt.workers = 1;
    opt.maxRestartsPerWorker = 1;
    EXPECT_DEATH(popsweep(cfg, {always_crash}, opt),
                 "exceeded 1 restarts");
}

// ---------------------------------------------------------------------------
// Kill-mid-run: atomic commits leave no torn checkpoint
// ---------------------------------------------------------------------------

/**
 * SIGKILL a process in the middle of a checkpointed sweep -- at a
 * random point relative to its commit cadence -- and require that the
 * surviving file is a clean canonical prefix (torn == false), and that
 * resuming from it reproduces the undisturbed result bit-identically.
 * This is the pin on the write-temp + fsync + rename append path: with
 * plain in-place appends this test catches half-written tail records.
 */
TEST(Popsweep, KillMidRunLeavesUntornCheckpointAndResumesIdentically)
{
    PopulationConfig cfg = tinyPopulation(200);
    const MeasureFn slow = [](ModuleTester &t,
                              dram::RowId v) -> std::uint64_t {
        ::usleep(1000);  // ~12ms/shard: the run outlives the kill
        return fakeMeasure(t, v);
    };
    const std::string file =
        scratchDir("killmid") + ".ckpt";
    std::remove(file.c_str());

    std::fflush(nullptr);
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        SweepOptions so;
        so.checkpointPath = file;
        sweepPopulation(cfg, {slow}, so);
        ::_exit(0);
    }
    // Past the ~1s commit-cadence floor, mid-run: at least one commit
    // has happened and many shards are still outstanding.
    std::this_thread::sleep_for(std::chrono::milliseconds(1600));
    ::kill(pid, SIGKILL);
    int status = 0;
    ::waitpid(pid, &status, 0);
    ASSERT_TRUE(WIFSIGNALED(status));

    const CheckpointScan scan = scanCheckpoint(file);
    ASSERT_TRUE(scan.valid);
    EXPECT_FALSE(scan.torn);
    EXPECT_EQ(scan.fingerprint, populationFingerprint(cfg, 1));
    EXPECT_EQ(scan.measures, 1u);
    EXPECT_EQ(scan.shards, 200u);
    EXPECT_EQ(scan.base, 0u);
    EXPECT_GT(scan.records, 0u);
    EXPECT_LT(scan.records, 200u);

    const std::string want =
        sweepPopulation(cfg, {fakeMeasure}).sketches[0].serialize();
    SweepOptions so;
    so.checkpointPath = file;
    const SweepResult resumed = sweepPopulation(cfg, {slow}, so);
    EXPECT_EQ(resumed.resumedShards, scan.records);
    EXPECT_EQ(resumed.sketches[0].serialize(), want);
    std::remove(file.c_str());
}

// ---------------------------------------------------------------------------
// Arena reuse: Device::reset vs fresh construction
// ---------------------------------------------------------------------------

/**
 * The arena pool in sweepPopulation replaces per-shard ModuleTester
 * construction with reset(seed) on a dirty tester.  That is only legal
 * if a reset device is observationally identical to a freshly
 * constructed one -- including the per-row RNG streams behind lazy
 * weak-cell materialization -- under a *real* HC_first search.
 */
TEST(ArenaReuse, ResetTesterMatchesFreshConstructionBitIdentically)
{
    PopulationConfig cfg = tinyPopulation(2);
    cfg.victimsPerSubarray = 1;
    const dram::DeviceConfig dev_a = populationDeviceConfig(cfg, 0);
    const dram::DeviceConfig dev_b = populationDeviceConfig(cfg, 1);
    ASSERT_NE(dev_a.seed, dev_b.seed);

    ModuleTester::Options opt;
    ModuleTester fresh(dev_a);
    const std::vector<dram::RowId> victims = fresh.sampleVictims(1);
    ASSERT_FALSE(victims.empty());

    std::vector<std::uint64_t> want;
    for (dram::RowId v : victims)
        want.push_back(fresh.rhDouble(v, opt));
    const std::size_t want_rows = fresh.device().populatedRowCount();
    ASSERT_GT(want_rows, 0u);

    // Dirty an arena with a different module instance, then reset it
    // to module 0's seed: every HC_first and the materialized-row
    // footprint must match the fresh tester exactly.
    ModuleTester reused(dev_b);
    for (dram::RowId v : victims)
        reused.rhDouble(v, opt);
    reused.reset(dev_a.seed);
    EXPECT_EQ(reused.device().populatedRowCount(), 0u);
    for (std::size_t i = 0; i < victims.size(); ++i)
        EXPECT_EQ(reused.rhDouble(victims[i], opt), want[i])
            << "victim " << victims[i];
    EXPECT_EQ(reused.device().populatedRowCount(), want_rows);

    // Reset is repeatable: a second pass over the same seed from the
    // same arena reproduces the same sequence again.
    reused.reset(dev_a.seed);
    for (std::size_t i = 0; i < victims.size(); ++i)
        EXPECT_EQ(reused.rhDouble(victims[i], opt), want[i]);
}

/**
 * End-to-end arena guarantee: the pooled sweep (which reuses testers
 * across shards within a job) must equal a per-victim-chunked sweep's
 * contract of identically-seeded independence -- here pinned by
 * comparing a real-search sweep at jobs=1 and jobs=2, where jobs=2
 * makes two arenas serve interleaved shard subsets.
 */
TEST(ArenaReuse, PooledSweepIsByteIdenticalAcrossJobs)
{
    PopulationConfig cfg = tinyPopulation(4);
    cfg.victimsPerSubarray = 1;
    ModuleTester::Options opt;
    const MeasureFn real = [&](ModuleTester &t, dram::RowId v) {
        return t.rhDouble(v, opt);
    };
    cfg.jobs = 1;
    const std::string want =
        sweepPopulation(cfg, {real}).sketches[0].serialize();
    cfg.jobs = 2;
    EXPECT_EQ(sweepPopulation(cfg, {real}).sketches[0].serialize(),
              want);
}

} // namespace
