/**
 * @file
 * Unit tests for the pud::obs metrics registry and trace writer.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace {

using namespace pud::obs;

// ---- MetricsRegistry -------------------------------------------------------

class MetricsTest : public ::testing::Test
{
  protected:
    MetricsTest()
    {
        metrics().reset();
        metrics().setEnabled(true);
    }
    ~MetricsTest() override
    {
        metrics().setEnabled(false);
        metrics().reset();
    }
};

TEST_F(MetricsTest, CounterIdsAreInterned)
{
    const CounterId a = metrics().counterId("obs_test.alpha");
    const CounterId b = metrics().counterId("obs_test.beta");
    EXPECT_NE(a, b);
    EXPECT_EQ(metrics().counterId("obs_test.alpha"), a);
    EXPECT_EQ(metrics().histId("obs_test.h"),
              metrics().histId("obs_test.h"));
}

TEST_F(MetricsTest, AddAccumulatesIntoSnapshot)
{
    const CounterId id = metrics().counterId("obs_test.adds");
    metrics().add(id);
    metrics().add(id, 41);
    const MetricsSnapshot snap = metrics().snapshot();
    std::uint64_t got = 0;
    for (const auto &c : snap.counters)
        if (c.name == "obs_test.adds")
            got = c.value;
    EXPECT_EQ(got, 42u);
}

TEST_F(MetricsTest, DisabledRecordingIsANoOp)
{
    const CounterId id = metrics().counterId("obs_test.off");
    metrics().setEnabled(false);
    metrics().add(id, 100);
    metrics().setEnabled(true);
    std::uint64_t got = 0;
    for (const auto &c : metrics().snapshot().counters) {
        if (c.name == "obs_test.off")
            got = c.value;
    }
    EXPECT_EQ(got, 0u);
}

TEST_F(MetricsTest, BucketBoundaries)
{
    EXPECT_EQ(MetricsRegistry::bucketOf(0), 0u);
    EXPECT_EQ(MetricsRegistry::bucketOf(1), 1u);
    EXPECT_EQ(MetricsRegistry::bucketOf(2), 2u);
    EXPECT_EQ(MetricsRegistry::bucketOf(3), 2u);
    EXPECT_EQ(MetricsRegistry::bucketOf(4), 3u);
    EXPECT_EQ(MetricsRegistry::bucketOf(7), 3u);
    EXPECT_EQ(MetricsRegistry::bucketOf(8), 4u);
    EXPECT_EQ(MetricsRegistry::bucketOf(255), 8u);
    EXPECT_EQ(MetricsRegistry::bucketOf(256), 9u);
    EXPECT_EQ(MetricsRegistry::bucketOf(~std::uint64_t(0)), 64u);

    EXPECT_EQ(MetricsRegistry::bucketLow(0), 0u);
    EXPECT_EQ(MetricsRegistry::bucketLow(1), 0u);
    EXPECT_EQ(MetricsRegistry::bucketLow(2), 2u);
    EXPECT_EQ(MetricsRegistry::bucketLow(3), 4u);
    EXPECT_EQ(MetricsRegistry::bucketLow(64),
              std::uint64_t(1) << 63);
}

TEST_F(MetricsTest, ObserveLandsInTheRightBucket)
{
    const HistId id = metrics().histId("obs_test.hist");
    metrics().observe(id, 0);
    metrics().observe(id, 1);
    metrics().observe(id, 5);
    metrics().observe(id, 5);
    const MetricsSnapshot snap = metrics().snapshot();
    bool found = false;
    for (const auto &h : snap.hists) {
        if (h.name != "obs_test.hist")
            continue;
        found = true;
        EXPECT_EQ(h.total, 4u);
        ASSERT_EQ(h.buckets.size(), MetricsRegistry::kHistBuckets);
        EXPECT_EQ(h.buckets[0], 1u);  // value 0
        EXPECT_EQ(h.buckets[1], 1u);  // value 1
        EXPECT_EQ(h.buckets[3], 2u);  // [4, 8)
    }
    EXPECT_TRUE(found);
}

TEST_F(MetricsTest, SnapshotIsSortedByName)
{
    metrics().counterId("obs_test.zz");
    metrics().counterId("obs_test.aa");
    const MetricsSnapshot snap = metrics().snapshot();
    for (std::size_t i = 1; i < snap.counters.size(); ++i)
        EXPECT_LT(snap.counters[i - 1].name, snap.counters[i].name);
    for (std::size_t i = 1; i < snap.hists.size(); ++i)
        EXPECT_LT(snap.hists[i - 1].name, snap.hists[i].name);
}

TEST_F(MetricsTest, ShardsMergeAcrossThreads)
{
    const CounterId id = metrics().counterId("obs_test.threads");
    constexpr int kThreads = 4;
    constexpr int kPerThread = 1000;
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t)
        workers.emplace_back([id] {
            for (int i = 0; i < kPerThread; ++i)
                metrics().add(id);
        });
    for (auto &w : workers)
        w.join();
    std::uint64_t got = 0;
    for (const auto &c : metrics().snapshot().counters)
        if (c.name == "obs_test.threads")
            got = c.value;
    EXPECT_EQ(got,
              std::uint64_t(kThreads) * std::uint64_t(kPerThread));
}

TEST_F(MetricsTest, ResetZeroesEverything)
{
    const CounterId id = metrics().counterId("obs_test.reset");
    metrics().add(id, 7);
    metrics().reset();
    for (const auto &c : metrics().snapshot().counters)
        EXPECT_EQ(c.value, 0u) << c.name;
}

// ---- snapshot JSON + cross-process merge ----------------------------------

TEST_F(MetricsTest, SnapshotJsonRoundTripsExactly)
{
    const CounterId c = metrics().counterId("obs_test.json.count");
    metrics().counterId("obs_test.json.zero");  // stays at 0
    const HistId h = metrics().histId("obs_test.json.hist");
    metrics().add(c, 12345678901234567ull);
    metrics().observe(h, 0);
    metrics().observe(h, 300);

    const MetricsSnapshot snap = metrics().snapshot();
    const std::string json = snapshotToJson(snap);
    const auto back = snapshotFromJson(json);
    ASSERT_TRUE(back.has_value());
    ASSERT_EQ(back->counters.size(), snap.counters.size());
    for (std::size_t i = 0; i < snap.counters.size(); ++i) {
        EXPECT_EQ(back->counters[i].name, snap.counters[i].name);
        EXPECT_EQ(back->counters[i].value, snap.counters[i].value);
    }
    ASSERT_EQ(back->hists.size(), snap.hists.size());
    for (std::size_t i = 0; i < snap.hists.size(); ++i) {
        EXPECT_EQ(back->hists[i].name, snap.hists[i].name);
        EXPECT_EQ(back->hists[i].total, snap.hists[i].total);
        EXPECT_EQ(back->hists[i].buckets, snap.hists[i].buckets);
    }

    // Determinism: serializing the parsed snapshot reproduces the
    // original bytes (this is what makes the sidecar files diffable).
    EXPECT_EQ(snapshotToJson(*back), json);
}

TEST(MetricsJson, EscapedNamesSurviveTheRoundTrip)
{
    MetricsSnapshot snap;
    snap.counters.push_back({"weird \"name\"\\with\nescapes\t!", 7});
    const auto back = snapshotFromJson(snapshotToJson(snap));
    ASSERT_TRUE(back.has_value());
    ASSERT_EQ(back->counters.size(), 1u);
    EXPECT_EQ(back->counters[0].name, snap.counters[0].name);
    EXPECT_EQ(back->counters[0].value, 7u);
}

TEST(MetricsJson, MalformedInputIsRejectedNotMisparsed)
{
    const std::string good =
        "{\"counters\":[{\"name\":\"a\",\"value\":1}],\"hists\":[]}";
    ASSERT_TRUE(snapshotFromJson(good).has_value());

    EXPECT_FALSE(snapshotFromJson("").has_value());
    EXPECT_FALSE(snapshotFromJson("{").has_value());
    EXPECT_FALSE(snapshotFromJson(good + "x").has_value());
    EXPECT_FALSE(
        snapshotFromJson(good.substr(0, good.size() - 3)).has_value());
    // Out-of-range bucket index.
    EXPECT_FALSE(
        snapshotFromJson("{\"counters\":[],\"hists\":[{\"name\":\"h\","
                         "\"buckets\":[[999,1]]}]}")
            .has_value());
    // Value overflowing uint64.
    EXPECT_FALSE(
        snapshotFromJson("{\"counters\":[{\"name\":\"a\",\"value\":"
                         "99999999999999999999999}],\"hists\":[]}")
            .has_value());
}

TEST_F(MetricsTest, MergeAddsValuesAndInternsZeroCounters)
{
    MetricsSnapshot incoming;
    incoming.counters.push_back({"obs_test.merge.sum", 40});
    incoming.counters.push_back({"obs_test.merge.zero", 0});
    MetricsSnapshot::Hist hist;
    hist.name = "obs_test.merge.hist";
    hist.buckets.assign(MetricsRegistry::kHistBuckets, 0);
    hist.buckets[3] = 5;
    hist.total = 5;
    incoming.hists.push_back(hist);

    metrics().add(metrics().counterId("obs_test.merge.sum"), 2);
    // merge must work with recording disabled: the supervisor folds
    // worker sidecars whether or not --metrics enabled this process.
    metrics().setEnabled(false);
    metrics().merge(incoming);
    metrics().merge(incoming);
    metrics().setEnabled(true);

    const MetricsSnapshot snap = metrics().snapshot();
    std::uint64_t sum = 0;
    bool zero_listed = false, hist_found = false;
    for (const auto &c : snap.counters) {
        if (c.name == "obs_test.merge.sum")
            sum = c.value;
        if (c.name == "obs_test.merge.zero") {
            zero_listed = true;
            EXPECT_EQ(c.value, 0u);
        }
    }
    for (const auto &h : snap.hists) {
        if (h.name != "obs_test.merge.hist")
            continue;
        hist_found = true;
        EXPECT_EQ(h.buckets[3], 10u);
        EXPECT_EQ(h.total, 10u);
    }
    EXPECT_EQ(sum, 82u);
    // A zero-valued counter must still be *listed* after a merge:
    // otherwise the fleet printout's line set would depend on which
    // worker happened to touch a call site.
    EXPECT_TRUE(zero_listed);
    EXPECT_TRUE(hist_found);
}

// ---- TraceWriter -----------------------------------------------------------

std::vector<std::string>
readLines(const std::string &path)
{
    std::ifstream in(path);
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line))
        lines.push_back(line);
    return lines;
}

/**
 * One end-to-end open/event/close cycle.  TraceWriter is a process
 * singleton, so the whole life cycle is exercised in a single test to
 * keep ordering deterministic; a reopen is checked at the end.
 */
TEST(TraceWriter, LifecycleAndFieldFormatting)
{
    const std::string path =
        ::testing::TempDir() + "pud_obs_trace_test.jsonl";

    ASSERT_FALSE(traceOn());
    trace().open(path);
    EXPECT_TRUE(traceOn());
    EXPECT_EQ(trace().path(), path);

    trace().event("unit_test",
                  {{"i", std::int64_t(-5)},
                   {"u", std::uint64_t(18446744073709551615ull)},
                   {"d", 1.5},
                   {"flag", true},
                   {"s", "a\"b\\c\nd"}});
    trace().event("unit_test_nonfinite",
                  {{"d", std::numeric_limits<double>::infinity()}});
    trace().close();
    EXPECT_FALSE(traceOn());

    // A post-close event must be dropped, not crash.
    trace().event("after_close", {});

    const std::vector<std::string> lines = readLines(path);
    ASSERT_EQ(lines.size(), 4u);
    EXPECT_NE(lines[0].find("\"ev\":\"trace_open\""),
              std::string::npos);
    EXPECT_NE(lines[0].find("\"ts\":0.000000"), std::string::npos);
    EXPECT_NE(lines[1].find("\"i\":-5"), std::string::npos);
    EXPECT_NE(lines[1].find("\"u\":18446744073709551615"),
              std::string::npos);
    EXPECT_NE(lines[1].find("\"d\":1.500000"), std::string::npos);
    EXPECT_NE(lines[1].find("\"flag\":true"), std::string::npos);
    EXPECT_NE(lines[1].find("\"s\":\"a\\\"b\\\\c\\nd\""),
              std::string::npos);
    // Non-finite doubles must not produce invalid JSON.
    EXPECT_NE(lines[2].find("\"d\":null"), std::string::npos);
    EXPECT_NE(lines[3].find("\"ev\":\"trace_close\""),
              std::string::npos);
    EXPECT_NE(lines[3].find("\"wall_s\":"), std::string::npos);

    // Every line is a braced object.
    for (const std::string &l : lines) {
        EXPECT_EQ(l.front(), '{');
        EXPECT_EQ(l.back(), '}');
    }

    // Reopening after close starts a fresh trace.
    trace().open(path);
    EXPECT_TRUE(traceOn());
    trace().close();
    const std::vector<std::string> reopened = readLines(path);
    ASSERT_EQ(reopened.size(), 2u);
    EXPECT_NE(reopened[0].find("trace_open"), std::string::npos);
    EXPECT_NE(reopened[1].find("trace_close"), std::string::npos);
    std::remove(path.c_str());
}

} // namespace
