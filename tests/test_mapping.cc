/**
 * @file
 * Unit tests for logical-to-physical row mapping schemes.
 */

#include <gtest/gtest.h>

#include <set>

#include "dram/mapping.h"

namespace {

using namespace pud::dram;

class MappingSweep : public ::testing::TestWithParam<MappingScheme>
{};

TEST_P(MappingSweep, RoundTripExhaustive)
{
    const RowMapping m(GetParam());
    for (RowId r = 0; r < 4096; ++r)
        ASSERT_EQ(m.toLogical(m.toPhysical(r)), r) << "row " << r;
}

TEST_P(MappingSweep, IsPermutation)
{
    const RowMapping m(GetParam());
    std::set<RowId> image;
    for (RowId r = 0; r < 1024; ++r)
        image.insert(m.toPhysical(r));
    EXPECT_EQ(image.size(), 1024u);
    EXPECT_EQ(*image.begin(), 0u);
    EXPECT_EQ(*image.rbegin(), 1023u);
}

TEST_P(MappingSweep, LocalWithinEightRowBlocks)
{
    // All modeled schemes scramble only within aligned 8-row groups,
    // so subarray boundaries (multiples of >= 8) are preserved.
    const RowMapping m(GetParam());
    for (RowId r = 0; r < 4096; ++r)
        ASSERT_EQ(m.toPhysical(r) / 8, r / 8) << "row " << r;
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, MappingSweep,
                         ::testing::Values(MappingScheme::Sequential,
                                           MappingScheme::MirroredPairs,
                                           MappingScheme::XorFold));

TEST(Mapping, SequentialIsIdentity)
{
    const RowMapping m(MappingScheme::Sequential);
    for (RowId r = 0; r < 100; ++r)
        EXPECT_EQ(m.toPhysical(r), r);
}

TEST(Mapping, MirroredPairsSwapsMiddle)
{
    const RowMapping m(MappingScheme::MirroredPairs);
    EXPECT_EQ(m.toPhysical(0), 0u);
    EXPECT_EQ(m.toPhysical(1), 1u);
    EXPECT_EQ(m.toPhysical(2), 3u);
    EXPECT_EQ(m.toPhysical(3), 2u);
    EXPECT_EQ(m.toPhysical(4), 5u);
    EXPECT_EQ(m.toPhysical(5), 4u);
    EXPECT_EQ(m.toPhysical(6), 6u);
    EXPECT_EQ(m.toPhysical(7), 7u);
    EXPECT_EQ(m.toPhysical(10), 11u);  // repeats per 8-row group
}

TEST(Mapping, XorFoldScramblesUpperHalfOfBlock)
{
    const RowMapping m(MappingScheme::XorFold);
    // Rows with bit 3 clear are untouched.
    for (RowId r = 0; r < 8; ++r)
        EXPECT_EQ(m.toPhysical(r), r);
    // Rows with bit 3 set have bits 2..1 flipped.
    EXPECT_EQ(m.toPhysical(8), 8u ^ 0b110u);
    EXPECT_EQ(m.toPhysical(15), 15u ^ 0b110u);
}

TEST(Mapping, SchemesAreDistinct)
{
    const RowMapping a(MappingScheme::Sequential);
    const RowMapping b(MappingScheme::MirroredPairs);
    const RowMapping c(MappingScheme::XorFold);
    bool ab = false, ac = false, bc = false;
    for (RowId r = 0; r < 64; ++r) {
        ab |= a.toPhysical(r) != b.toPhysical(r);
        ac |= a.toPhysical(r) != c.toPhysical(r);
        bc |= b.toPhysical(r) != c.toPhysical(r);
    }
    EXPECT_TRUE(ab);
    EXPECT_TRUE(ac);
    EXPECT_TRUE(bc);
}

} // namespace
