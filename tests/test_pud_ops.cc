/**
 * @file
 * Unit tests for the Processing-using-DRAM operations library.
 */

#include <gtest/gtest.h>

#include "pud/engine.h"
#include "util/rng.h"

namespace {

using namespace pud;
using namespace pud::ops;

dram::DeviceConfig
hynixConfig(std::uint64_t seed = 31)
{
    dram::DeviceConfig cfg = dram::makeConfig("HMA81GU7AFR8N-UH", seed);
    cfg.banks = 1;
    cfg.subarraysPerBank = 2;
    cfg.rowsPerSubarray = 128;
    cfg.cols = 256;
    return cfg;
}

RowData
randomRow(Rng &rng, dram::ColId cols)
{
    RowData d(cols);
    for (dram::ColId c = 0; c < cols; ++c)
        d.set(c, rng.chance(0.5));
    return d;
}

class PudOpsTest : public ::testing::Test
{
  protected:
    PudOpsTest() : bench(hynixConfig()), engine(bench, 0) {}

    bender::TestBench bench;
    PudEngine engine;
    Rng rng{99};
};

TEST_F(PudOpsTest, CopyMovesArbitraryData)
{
    const RowData payload = randomRow(rng, 256);
    bench.writeRow(0, 10, payload);
    EXPECT_TRUE(engine.copy(10, 20));
    EXPECT_EQ(bench.readRow(0, 20), payload);
    EXPECT_EQ(engine.stats().copies, 1u);
}

TEST_F(PudOpsTest, CopyRejectsCrossSubarray)
{
    EXPECT_FALSE(engine.copy(10, 200));  // other subarray
    EXPECT_FALSE(engine.copy(10, 10));   // same row
}

TEST_F(PudOpsTest, BroadcastWritesWholeBlock)
{
    const RowData payload = randomRow(rng, 256);
    bench.writeRow(0, 70, payload);
    ASSERT_TRUE(engine.broadcast(70, 32, 16));
    dram::Device &dev = bench.device();
    for (dram::RowId p = 32; p < 48; ++p)
        EXPECT_EQ(bench.readRow(0, dev.toLogical(p)), payload)
            << "row " << p;
    EXPECT_EQ(engine.stats().simraOps, 1u);
}

TEST_F(PudOpsTest, BroadcastRejectsBadSizes)
{
    EXPECT_FALSE(engine.broadcast(70, 32, 3));
    EXPECT_FALSE(engine.broadcast(70, 32, 64));
}

TEST_F(PudOpsTest, Maj3TruthOnRandomData)
{
    const RowData a = randomRow(rng, 256);
    const RowData b = randomRow(rng, 256);
    const RowData c = randomRow(rng, 256);
    bench.writeRow(0, 100, a);
    bench.writeRow(0, 101, b);
    bench.writeRow(0, 102, c);

    const auto out = engine.maj3(100, 101, 102, /*scratch=*/48);
    ASSERT_TRUE(out.has_value());
    for (dram::ColId col = 0; col < 256; ++col) {
        const int ones = a.get(col) + b.get(col) + c.get(col);
        EXPECT_EQ(out->get(col), ones >= 2) << "col " << col;
    }
    // 8 staging copies + 1 SiMRA op.
    EXPECT_EQ(engine.stats().copies, 8u);
    EXPECT_EQ(engine.stats().simraOps, 1u);
}

TEST_F(PudOpsTest, Maj5TruthOnRandomData)
{
    RowData in[5] = {randomRow(rng, 256), randomRow(rng, 256),
                     randomRow(rng, 256), randomRow(rng, 256),
                     randomRow(rng, 256)};
    for (int i = 0; i < 5; ++i)
        bench.writeRow(0, 100 + static_cast<dram::RowId>(i), in[i]);

    const auto out =
        engine.maj5(100, 101, 102, 103, 104, /*scratch=*/64);
    ASSERT_TRUE(out.has_value());
    for (dram::ColId col = 0; col < 256; ++col) {
        int ones = 0;
        for (const auto &row : in)
            ones += row.get(col);
        EXPECT_EQ(out->get(col), ones >= 3) << "col " << col;
    }
}

TEST_F(PudOpsTest, AndOrTruth)
{
    const RowData a = randomRow(rng, 256);
    const RowData b = randomRow(rng, 256);
    bench.writeRow(0, 100, a);
    bench.writeRow(0, 101, b);

    const auto band = engine.bitAnd(100, 101, /*scratch=*/48);
    ASSERT_TRUE(band.has_value());
    const auto bor = engine.bitOr(100, 101, /*scratch=*/48);
    ASSERT_TRUE(bor.has_value());
    for (dram::ColId col = 0; col < 256; ++col) {
        EXPECT_EQ(band->get(col), a.get(col) && b.get(col));
        EXPECT_EQ(bor->get(col), a.get(col) || b.get(col));
    }
}

TEST_F(PudOpsTest, NonSimraChipCannotCompute)
{
    bender::TestBench micron(
        [] {
            dram::DeviceConfig cfg =
                dram::makeConfig("MTA18ASF4G72HZ-3G2F1", 5);
            cfg.banks = 1;
            cfg.subarraysPerBank = 2;
            cfg.rowsPerSubarray = 128;
            cfg.cols = 256;
            return cfg;
        }());
    PudEngine eng(micron, 0);
    // Copy (CoMRA) works on all four manufacturers...
    micron.fillRow(0, 10, dram::DataPattern::PAA);
    EXPECT_TRUE(eng.copy(10, 20));
    // ... but SiMRA-based ops do not.
    EXPECT_FALSE(eng.maj3(100, 101, 102, 48).has_value());
    EXPECT_FALSE(eng.broadcast(70, 32, 16));
}

TEST_F(PudOpsTest, PolicyBlocksStorageRegionSimra)
{
    mitigation::ComputeRegionPolicy policy(128, 32, 4);
    engine.setPolicy(&policy, 0);

    // Scratch block inside the compute region: allowed.
    bench.writeRow(0, 1, randomRow(rng, 256));
    bench.writeRow(0, 2, randomRow(rng, 256));
    bench.writeRow(0, 3, randomRow(rng, 256));
    EXPECT_TRUE(engine.maj3(1, 2, 3, /*scratch=*/16).has_value());

    // Scratch block in the storage region: rejected.
    EXPECT_FALSE(engine.maj3(1, 2, 3, /*scratch=*/64).has_value());
    EXPECT_GT(engine.stats().rejected, 0u);
}

TEST_F(PudOpsTest, PolicyInjectsComputeRowRefreshes)
{
    mitigation::ComputeRegionPolicy policy(128, 32, 1);
    engine.setPolicy(&policy, 0);
    bench.writeRow(0, 1, randomRow(rng, 256));
    for (int i = 0; i < 4; ++i)
        ASSERT_TRUE(engine.broadcast(1, 8, 8));
    EXPECT_EQ(engine.stats().policyRefreshes, 4u);
}

TEST_F(PudOpsTest, PolicyAllowsOneStorageOperandCopies)
{
    mitigation::ComputeRegionPolicy policy(128, 32, 4);
    engine.setPolicy(&policy, 0);
    bench.writeRow(0, 100, randomRow(rng, 256));
    EXPECT_TRUE(engine.copy(100, 5));   // storage -> compute
    EXPECT_TRUE(engine.copy(5, 100));   // compute -> storage
    EXPECT_FALSE(engine.copy(100, 110));  // storage -> storage
}

/** Property sweep: MAJ3 is correct for every constant input pattern. */
class Maj3PatternSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{};

TEST_P(Maj3PatternSweep, ConstantInputs)
{
    bender::TestBench bench(hynixConfig(77));
    PudEngine engine(bench, 0);
    const auto [va, vb, vc] = GetParam();
    engine.fill(100, va);
    engine.fill(101, vb);
    engine.fill(102, vc);
    const auto out = engine.maj3(100, 101, 102, 48);
    ASSERT_TRUE(out.has_value());
    const bool expect = va + vb + vc >= 2;
    for (dram::ColId col = 0; col < 256; ++col)
        ASSERT_EQ(out->get(col), expect);
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, Maj3PatternSweep,
    ::testing::Combine(::testing::Values(0, 1), ::testing::Values(0, 1),
                       ::testing::Values(0, 1)));

} // namespace
