/**
 * @file
 * Unit tests for the Processing-using-DRAM operations library.
 */

#include <gtest/gtest.h>

#include "pud/engine.h"
#include "util/rng.h"

namespace {

using namespace pud;
using namespace pud::ops;

dram::DeviceConfig
hynixConfig(std::uint64_t seed = 31)
{
    dram::DeviceConfig cfg = dram::makeConfig("HMA81GU7AFR8N-UH", seed);
    cfg.banks = 1;
    cfg.subarraysPerBank = 2;
    cfg.rowsPerSubarray = 128;
    cfg.cols = 256;
    return cfg;
}

RowData
randomRow(Rng &rng, dram::ColId cols)
{
    RowData d(cols);
    for (dram::ColId c = 0; c < cols; ++c)
        d.set(c, rng.chance(0.5));
    return d;
}

class PudOpsTest : public ::testing::Test
{
  protected:
    PudOpsTest() : bench(hynixConfig()), engine(bench, 0) {}

    bender::TestBench bench;
    PudEngine engine;
    Rng rng{99};
};

TEST_F(PudOpsTest, CopyMovesArbitraryData)
{
    const RowData payload = randomRow(rng, 256);
    bench.writeRow(0, 10, payload);
    EXPECT_TRUE(engine.copy(10, 20));
    EXPECT_EQ(bench.readRow(0, 20), payload);
    EXPECT_EQ(engine.stats().copies, 1u);
}

TEST_F(PudOpsTest, CopyRejectsCrossSubarray)
{
    EXPECT_FALSE(engine.copy(10, 200));  // other subarray
    EXPECT_FALSE(engine.copy(10, 10));   // same row
}

TEST_F(PudOpsTest, BroadcastWritesWholeBlock)
{
    const RowData payload = randomRow(rng, 256);
    bench.writeRow(0, 70, payload);
    ASSERT_TRUE(engine.broadcast(70, 32, 16));
    dram::Device &dev = bench.device();
    for (dram::RowId p = 32; p < 48; ++p)
        EXPECT_EQ(bench.readRow(0, dev.toLogical(p)), payload)
            << "row " << p;
    EXPECT_EQ(engine.stats().simraOps, 1u);
}

TEST_F(PudOpsTest, BroadcastRejectsBadSizes)
{
    EXPECT_FALSE(engine.broadcast(70, 32, 3));
    EXPECT_FALSE(engine.broadcast(70, 32, 64));
}

TEST_F(PudOpsTest, Maj3TruthOnRandomData)
{
    const RowData a = randomRow(rng, 256);
    const RowData b = randomRow(rng, 256);
    const RowData c = randomRow(rng, 256);
    bench.writeRow(0, 100, a);
    bench.writeRow(0, 101, b);
    bench.writeRow(0, 102, c);

    const auto out = engine.maj3(100, 101, 102, /*scratch=*/48);
    ASSERT_TRUE(out.has_value());
    for (dram::ColId col = 0; col < 256; ++col) {
        const int ones = a.get(col) + b.get(col) + c.get(col);
        EXPECT_EQ(out->get(col), ones >= 2) << "col " << col;
    }
    // 8 staging copies + 1 SiMRA op.
    EXPECT_EQ(engine.stats().copies, 8u);
    EXPECT_EQ(engine.stats().simraOps, 1u);
}

TEST_F(PudOpsTest, Maj5TruthOnRandomData)
{
    RowData in[5] = {randomRow(rng, 256), randomRow(rng, 256),
                     randomRow(rng, 256), randomRow(rng, 256),
                     randomRow(rng, 256)};
    for (int i = 0; i < 5; ++i)
        bench.writeRow(0, 100 + static_cast<dram::RowId>(i), in[i]);

    const auto out =
        engine.maj5(100, 101, 102, 103, 104, /*scratch=*/64);
    ASSERT_TRUE(out.has_value());
    for (dram::ColId col = 0; col < 256; ++col) {
        int ones = 0;
        for (const auto &row : in)
            ones += row.get(col);
        EXPECT_EQ(out->get(col), ones >= 3) << "col " << col;
    }
}

TEST_F(PudOpsTest, AndOrTruth)
{
    const RowData a = randomRow(rng, 256);
    const RowData b = randomRow(rng, 256);
    bench.writeRow(0, 100, a);
    bench.writeRow(0, 101, b);

    const auto band = engine.bitAnd(100, 101, /*scratch=*/48);
    ASSERT_TRUE(band.has_value());
    const auto bor = engine.bitOr(100, 101, /*scratch=*/48);
    ASSERT_TRUE(bor.has_value());
    for (dram::ColId col = 0; col < 256; ++col) {
        EXPECT_EQ(band->get(col), a.get(col) && b.get(col));
        EXPECT_EQ(bor->get(col), a.get(col) || b.get(col));
    }
}

TEST_F(PudOpsTest, NonSimraChipCannotCompute)
{
    bender::TestBench micron(
        [] {
            dram::DeviceConfig cfg =
                dram::makeConfig("MTA18ASF4G72HZ-3G2F1", 5);
            cfg.banks = 1;
            cfg.subarraysPerBank = 2;
            cfg.rowsPerSubarray = 128;
            cfg.cols = 256;
            return cfg;
        }());
    PudEngine eng(micron, 0);
    // Copy (CoMRA) works on all four manufacturers...
    micron.fillRow(0, 10, dram::DataPattern::PAA);
    EXPECT_TRUE(eng.copy(10, 20));
    // ... but SiMRA-based ops do not.
    EXPECT_FALSE(eng.maj3(100, 101, 102, 48).has_value());
    EXPECT_FALSE(eng.broadcast(70, 32, 16));
}

TEST_F(PudOpsTest, PolicyBlocksStorageRegionSimra)
{
    mitigation::ComputeRegionPolicy policy(128, 32, 4);
    engine.setPolicy(&policy, 0);

    // Scratch block inside the compute region: allowed.
    bench.writeRow(0, 1, randomRow(rng, 256));
    bench.writeRow(0, 2, randomRow(rng, 256));
    bench.writeRow(0, 3, randomRow(rng, 256));
    EXPECT_TRUE(engine.maj3(1, 2, 3, /*scratch=*/16).has_value());

    // Scratch block in the storage region: rejected.
    EXPECT_FALSE(engine.maj3(1, 2, 3, /*scratch=*/64).has_value());
    EXPECT_GT(engine.stats().rejected, 0u);
}

TEST_F(PudOpsTest, PolicyInjectsComputeRowRefreshes)
{
    mitigation::ComputeRegionPolicy policy(128, 32, 1);
    engine.setPolicy(&policy, 0);
    bench.writeRow(0, 1, randomRow(rng, 256));
    for (int i = 0; i < 4; ++i)
        ASSERT_TRUE(engine.broadcast(1, 8, 8));
    EXPECT_EQ(engine.stats().policyRefreshes, 4u);
}

TEST_F(PudOpsTest, PolicyAllowsOneStorageOperandCopies)
{
    mitigation::ComputeRegionPolicy policy(128, 32, 4);
    engine.setPolicy(&policy, 0);
    bench.writeRow(0, 100, randomRow(rng, 256));
    EXPECT_TRUE(engine.copy(100, 5));   // storage -> compute
    EXPECT_TRUE(engine.copy(5, 100));   // compute -> storage
    EXPECT_FALSE(engine.copy(100, 110));  // storage -> storage
}

TEST_F(PudOpsTest, PolicyRejectionLeavesStateUntouched)
{
    mitigation::ComputeRegionPolicy policy(128, 32, 4);
    engine.setPolicy(&policy, 0);
    bench.writeRow(0, 1, randomRow(rng, 256));
    bench.writeRow(0, 2, randomRow(rng, 256));
    bench.writeRow(0, 3, randomRow(rng, 256));

    // Scratch in the storage region: the SiMRA policy check rejects
    // before any staging copy runs.
    dram::Device &dev = bench.device();
    const dram::RowId base = dev.toPhysical(64) & ~dram::RowId(7);
    std::vector<RowData> before;
    for (dram::RowId p = base; p < base + 8; ++p)
        before.push_back(bench.readRow(0, dev.toLogical(p)));

    EXPECT_FALSE(engine.maj3(1, 2, 3, /*scratch=*/64).has_value());
    EXPECT_EQ(engine.stats().rejected, 1u);
    EXPECT_EQ(engine.stats().copies, 0u);
    EXPECT_EQ(engine.stats().simraOps, 0u);
    for (dram::RowId p = base; p < base + 8; ++p)
        EXPECT_EQ(bench.readRow(0, dev.toLogical(p)),
                  before[p - base])
            << "scratch row " << p << " mutated by rejected op";
}

// ---- regression: replicatedMajority validated before any issueCopy ----

TEST_F(PudOpsTest, ReplicatedMajorityValidatesReplicationUpFront)
{
    bench.writeRow(0, 100, randomRow(rng, 256));
    bench.writeRow(0, 101, randomRow(rng, 256));
    bench.writeRow(0, 102, randomRow(rng, 256));

    dram::Device &dev = bench.device();
    const dram::RowId base = dev.toPhysical(48) & ~dram::RowId(7);
    std::vector<RowData> before;
    for (dram::RowId p = base; p < base + 8; ++p)
        before.push_back(bench.readRow(0, dev.toLogical(p)));

    // Previously an out-of-bounds read of replication[2].
    EXPECT_FALSE(engine
                     .replicatedMajority({100, 101, 102}, {3, 3},
                                         /*scratch=*/48, 8)
                     .has_value());
    // Previously panicked on slot != n -- but only after nine copies
    // had already overflowed the block.
    EXPECT_FALSE(engine
                     .replicatedMajority({100, 101, 102}, {3, 3, 3},
                                         /*scratch=*/48, 8)
                     .has_value());
    // Zero replication counts never made sense; now rejected.
    EXPECT_FALSE(engine
                     .replicatedMajority({100, 101, 102}, {4, 4, 0},
                                         /*scratch=*/48, 8)
                     .has_value());
    EXPECT_FALSE(
        engine.replicatedMajority({}, {}, /*scratch=*/48, 8)
            .has_value());

    EXPECT_EQ(engine.stats().copies, 0u);
    EXPECT_EQ(engine.stats().simraOps, 0u);
    EXPECT_EQ(engine.stats().rejected, 4u);
    for (dram::RowId p = base; p < base + 8; ++p)
        EXPECT_EQ(bench.readRow(0, dev.toLogical(p)),
                  before[p - base])
            << "scratch row " << p << " mutated by rejected op";
}

TEST_F(PudOpsTest, ReplicatedMajorityRejectsBadOperandBeforeCopies)
{
    bench.writeRow(0, 100, randomRow(rng, 256));
    bench.writeRow(0, 102, randomRow(rng, 256));
    // Row 200 lives in the other subarray.  Previously the first
    // operand's three staging copies were issued before the check on
    // operand 1 failed, leaving the scratch block half-written.
    dram::Device &dev = bench.device();
    const dram::RowId base = dev.toPhysical(48) & ~dram::RowId(7);
    std::vector<RowData> before;
    for (dram::RowId p = base; p < base + 8; ++p)
        before.push_back(bench.readRow(0, dev.toLogical(p)));

    EXPECT_FALSE(engine
                     .replicatedMajority({100, 200, 102}, {3, 3, 2},
                                         /*scratch=*/48, 8)
                     .has_value());
    EXPECT_EQ(engine.stats().copies, 0u);
    EXPECT_EQ(engine.stats().rejected, 1u);
    for (dram::RowId p = base; p < base + 8; ++p)
        EXPECT_EQ(bench.readRow(0, dev.toLogical(p)),
                  before[p - base])
            << "scratch row " << p << " mutated by rejected op";
}

// ---- regression: bitAnd/bitOr control-row selection at boundaries ----

dram::DeviceConfig
tinyConfig(dram::RowId rows_per_subarray)
{
    dram::DeviceConfig cfg = dram::makeConfig("HMA81GU7AFR8N-UH", 31);
    cfg.banks = 1;
    cfg.subarraysPerBank = 4;
    cfg.rowsPerSubarray = rows_per_subarray;
    cfg.cols = 64;
    return cfg;
}

TEST(PudOpsBoundary, BitAndAtPhysicalRowZeroRejectsCleanly)
{
    // rowsPerSubarray == 8: every 8-row block spans its whole
    // subarray, so no control row exists on either side.  For the
    // block at physical row 0 the old `base - 1` underflowed RowId
    // and indexed a nonexistent row.
    bender::TestBench bench(tinyConfig(8));
    PudEngine engine(bench, 0);
    dram::Device &dev = bench.device();
    const dram::RowId a = dev.toLogical(1);
    const dram::RowId b = dev.toLogical(2);
    bench.fillRow(0, a, dram::DataPattern::P55);
    bench.fillRow(0, b, dram::DataPattern::PAA);

    EXPECT_FALSE(engine.bitAnd(a, b, dev.toLogical(0)).has_value());
    EXPECT_FALSE(engine.bitOr(a, b, dev.toLogical(0)).has_value());
    EXPECT_EQ(engine.stats().copies, 0u);
    EXPECT_EQ(engine.stats().rejected, 2u);
}

TEST(PudOpsBoundary, BitAndNeverFillsIntoPreviousSubarray)
{
    // Scratch block = first (and only) block of subarray 1.  The old
    // code picked physical row 7 -- the *previous* subarray's last
    // row -- as the control row and clobbered it with fill() before
    // maj3 noticed the subarray mismatch and bailed out.
    bender::TestBench bench(tinyConfig(8));
    PudEngine engine(bench, 0);
    dram::Device &dev = bench.device();

    const dram::RowId neighbor = dev.toLogical(7);
    bench.fillRow(0, neighbor, dram::DataPattern::PAA);
    const RowData before = bench.readRow(0, neighbor);

    const dram::RowId a = dev.toLogical(9);
    const dram::RowId b = dev.toLogical(10);
    bench.fillRow(0, a, dram::DataPattern::P55);
    bench.fillRow(0, b, dram::DataPattern::PFF);

    EXPECT_FALSE(
        engine.bitAnd(a, b, dev.toLogical(8)).has_value());
    EXPECT_GT(engine.stats().rejected, 0u);
    EXPECT_EQ(bench.readRow(0, neighbor), before)
        << "rejected bitAnd mutated the previous subarray";
}

TEST(PudOpsBoundary, BitAndUsesPrecedingRowAtSubarrayEnd)
{
    // rowsPerSubarray == 16: the block [8, 16) is the last of
    // subarray 0, so the control row must be physical row 7 -- the
    // legitimate use of the "row before" fallback.
    bender::TestBench bench(tinyConfig(16));
    PudEngine engine(bench, 0);
    dram::Device &dev = bench.device();

    Rng rng(7);
    const RowData va = randomRow(rng, 64);
    const RowData vb = randomRow(rng, 64);
    const dram::RowId a = dev.toLogical(1);
    const dram::RowId b = dev.toLogical(2);
    bench.writeRow(0, a, va);
    bench.writeRow(0, b, vb);

    const auto band = engine.bitAnd(a, b, dev.toLogical(9));
    ASSERT_TRUE(band.has_value());
    for (dram::ColId col = 0; col < 64; ++col)
        EXPECT_EQ(band->get(col), va.get(col) && vb.get(col));
}

TEST(PudOpsBoundary, BroadcastBlockCrossingSubarrayRejected)
{
    // A 16-row block in an 8-row subarray necessarily spans two
    // subarrays; groupWrite must refuse without touching DRAM.
    bender::TestBench bench(tinyConfig(8));
    PudEngine engine(bench, 0);
    dram::Device &dev = bench.device();
    const dram::RowId src = dev.toLogical(20);
    bench.fillRow(0, src, dram::DataPattern::P55);
    EXPECT_FALSE(engine.broadcast(src, dev.toLogical(0), 16));
    EXPECT_EQ(engine.stats().simraOps, 0u);
}

TEST_F(PudOpsTest, GroupWriteValidatesN)
{
    const RowData data = randomRow(rng, 256);
    dram::Device &dev = bench.device();
    std::vector<RowData> before;
    for (dram::RowId p = 32; p < 64; ++p)
        before.push_back(bench.readRow(0, dev.toLogical(p)));

    EXPECT_FALSE(engine.groupWrite(32, 3, data));   // not a power of 2
    EXPECT_FALSE(engine.groupWrite(32, 0, data));   // below range
    EXPECT_FALSE(engine.groupWrite(32, 1, data));   // below range
    EXPECT_FALSE(engine.groupWrite(32, -8, data));  // negative
    EXPECT_FALSE(engine.groupWrite(32, 64, data));  // above range
    EXPECT_EQ(engine.stats().simraOps, 0u);
    for (dram::RowId p = 32; p < 64; ++p)
        EXPECT_EQ(bench.readRow(0, dev.toLogical(p)),
                  before[p - 32]);
}

/** Property sweep: MAJ3 is correct for every constant input pattern. */
class Maj3PatternSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{};

TEST_P(Maj3PatternSweep, ConstantInputs)
{
    bender::TestBench bench(hynixConfig(77));
    PudEngine engine(bench, 0);
    const auto [va, vb, vc] = GetParam();
    engine.fill(100, va);
    engine.fill(101, vb);
    engine.fill(102, vc);
    const auto out = engine.maj3(100, 101, 102, 48);
    ASSERT_TRUE(out.has_value());
    const bool expect = va + vb + vc >= 2;
    for (dram::ColId col = 0; col < 256; ++col)
        ASSERT_EQ(out->get(col), expect);
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, Maj3PatternSweep,
    ::testing::Combine(::testing::Values(0, 1), ::testing::Values(0, 1),
                       ::testing::Values(0, 1)));

} // namespace
