/**
 * @file
 * Unit tests for data patterns and RowData.
 */

#include <gtest/gtest.h>

#include "dram/datapattern.h"

namespace {

using namespace pud::dram;

TEST(DataPattern, Negation)
{
    EXPECT_EQ(negate(DataPattern::P00), DataPattern::PFF);
    EXPECT_EQ(negate(DataPattern::PFF), DataPattern::P00);
    EXPECT_EQ(negate(DataPattern::PAA), DataPattern::P55);
    EXPECT_EQ(negate(DataPattern::P55), DataPattern::PAA);
}

TEST(DataPattern, Checkerboard)
{
    EXPECT_TRUE(isCheckerboard(DataPattern::PAA));
    EXPECT_TRUE(isCheckerboard(DataPattern::P55));
    EXPECT_FALSE(isCheckerboard(DataPattern::P00));
    EXPECT_FALSE(isCheckerboard(DataPattern::PFF));
}

TEST(RowData, FillPatterns)
{
    RowData zeros(128, DataPattern::P00);
    RowData ones(128, DataPattern::PFF);
    RowData alt(128, DataPattern::P55);
    for (ColId c = 0; c < 128; ++c) {
        EXPECT_FALSE(zeros.get(c));
        EXPECT_TRUE(ones.get(c));
        // 0x55 = 0b01010101 LSB-first: even bit positions are 1.
        EXPECT_EQ(alt.get(c), c % 2 == 0);
    }
}

TEST(RowData, SetGetToggle)
{
    RowData d(100);
    EXPECT_FALSE(d.get(63));
    d.set(63, true);
    EXPECT_TRUE(d.get(63));
    d.toggle(63);
    EXPECT_FALSE(d.get(63));
    d.set(64, true);  // crosses word boundary
    EXPECT_TRUE(d.get(64));
    EXPECT_FALSE(d.get(65));
}

TEST(RowData, Equality)
{
    RowData a(96, DataPattern::PAA);
    RowData b(96, DataPattern::PAA);
    EXPECT_EQ(a, b);
    b.toggle(95);
    EXPECT_NE(a, b);
}

TEST(RowData, DiffCount)
{
    RowData a(256, DataPattern::P00);
    RowData b(256, DataPattern::P00);
    EXPECT_EQ(a.diffCount(b), 0u);
    b.toggle(0);
    b.toggle(100);
    b.toggle(255);
    EXPECT_EQ(a.diffCount(b), 3u);

    const RowData x(256, DataPattern::P00);
    const RowData y(256, DataPattern::PFF);
    EXPECT_EQ(x.diffCount(y), 256u);
}

TEST(RowData, NonWordMultipleTailMasked)
{
    // 70 bits: filling 0xFF must not set bits past 70, so diff with an
    // explicit 70-bit all-ones row is zero.
    RowData filled(70, DataPattern::PFF);
    RowData manual(70);
    for (ColId c = 0; c < 70; ++c)
        manual.set(c, true);
    EXPECT_EQ(filled, manual);
    EXPECT_EQ(filled.diffCount(manual), 0u);
}

class PatternSweep : public ::testing::TestWithParam<DataPattern>
{};

TEST_P(PatternSweep, FillMatchesByteDefinition)
{
    const DataPattern p = GetParam();
    const auto byte = static_cast<std::uint8_t>(p);
    RowData d(512, p);
    for (ColId c = 0; c < 512; ++c)
        EXPECT_EQ(d.get(c), ((byte >> (c % 8)) & 1) != 0) << "col " << c;
}

TEST_P(PatternSweep, DoubleNegationIsIdentity)
{
    EXPECT_EQ(negate(negate(GetParam())), GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllPatterns, PatternSweep,
                         ::testing::ValuesIn(kAllPatterns));

} // namespace
