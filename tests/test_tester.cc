/**
 * @file
 * Unit tests for the ModuleTester characterization front-end.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "hammer/tester.h"

namespace {

using namespace pud;
using namespace pud::hammer;
using dram::DeviceConfig;
using dram::RowId;

DeviceConfig
smallConfig(const std::string &family = "HMA81GU7AFR8N-UH",
            std::uint64_t seed = 5)
{
    DeviceConfig cfg = dram::makeConfig(family, seed);
    cfg.banks = 1;
    cfg.subarraysPerBank = 6;
    cfg.rowsPerSubarray = 128;
    cfg.cols = 512;
    return cfg;
}

TEST(ModuleTester, SampleVictimsInteriorAndStrided)
{
    ModuleTester t(smallConfig());
    const auto victims = t.sampleVictims(8);
    EXPECT_FALSE(victims.empty());
    const RowId rps = t.rowsPerSubarray();
    for (RowId v : victims) {
        const RowId off = v % rps;
        EXPECT_GE(off, 2u);
        EXPECT_LE(off, rps - 3);
    }
    // Strictly increasing (no duplicates).
    EXPECT_TRUE(std::is_sorted(victims.begin(), victims.end()));
    EXPECT_TRUE(std::adjacent_find(victims.begin(), victims.end()) ==
                victims.end());
}

TEST(ModuleTester, SampleVictimsOddOnlyMod4)
{
    ModuleTester t(smallConfig());
    for (RowId v : t.sampleVictims(8, /*odd_only=*/true))
        EXPECT_EQ(v % 4, 1u) << v;
}

TEST(ModuleTester, TestedSubarraysSpreadAcrossBank)
{
    ModuleTester t(smallConfig());
    const auto subs = t.testedSubarrays(6);
    ASSERT_EQ(subs.size(), 6u);  // config has exactly 6 subarrays
    EXPECT_EQ(subs.front(), 0u);
    EXPECT_EQ(subs.back(), 5u);
}

TEST(ModuleTester, RhDoubleFindsFiniteHcFirst)
{
    ModuleTester t(smallConfig());
    ModuleTester::Options opt;
    opt.searchWcdp = true;
    const auto hc = t.rhDouble(301, opt);
    EXPECT_NE(hc, kNoFlip);
    EXPECT_GT(hc, 1000u);  // far above SiMRA-class thresholds
}

TEST(ModuleTester, SingleSidedWeakerThanDoubleSided)
{
    ModuleTester t(smallConfig());
    ModuleTester::Options opt;
    int weaker = 0, total = 0;
    for (RowId v : t.sampleVictims(3)) {
        const auto ds = t.rhDouble(v, opt);
        const auto ss = t.rhSingle(v, opt);
        if (ds == kNoFlip)
            continue;
        ++total;
        weaker += (ss == kNoFlip || ss > ds);
    }
    ASSERT_GT(total, 0);
    EXPECT_EQ(weaker, total);
}

TEST(ModuleTester, ComraDoubleBeatsRowHammerForMostRows)
{
    ModuleTester t(smallConfig());
    ModuleTester::Options opt;
    int lower = 0, total = 0;
    for (RowId v : t.sampleVictims(4)) {
        const auto rh = t.rhDouble(v, opt);
        const auto co = t.comraDouble(v, opt);
        if (rh == kNoFlip || co == kNoFlip)
            continue;
        ++total;
        lower += co < rh;
    }
    ASSERT_GT(total, 10);
    // Obs. 2: 99% of rows see a reduction; allow slack at this scale.
    EXPECT_GT(static_cast<double>(lower) / total, 0.9);
}

TEST(ModuleTester, PlanSimraDoubleGeometry)
{
    ModuleTester t(smallConfig());
    for (int n : {2, 4, 8, 16}) {
        const auto plan = t.planSimraDouble(33, n);
        ASSERT_TRUE(plan.has_value()) << "N=" << n;
        EXPECT_EQ(plan->n, n);
        EXPECT_EQ(static_cast<int>(plan->group.size()), n);
        // Sandwich: victim +- 1 in the group, victim not.
        auto has = [&](RowId r) {
            return std::find(plan->group.begin(), plan->group.end(),
                             r) != plan->group.end();
        };
        EXPECT_TRUE(has(32));
        EXPECT_TRUE(has(34));
        EXPECT_FALSE(has(33));
    }
}

TEST(ModuleTester, PlanSimraDoubleRejectsEvenVictims)
{
    ModuleTester t(smallConfig());
    EXPECT_FALSE(t.planSimraDouble(32, 4).has_value());
    EXPECT_FALSE(t.planSimraDouble(33, 32).has_value());  // no ds-32
    EXPECT_FALSE(t.planSimraDouble(33, 3).has_value());
}

TEST(ModuleTester, PlanSimraSingleBlockAlignment)
{
    ModuleTester t(smallConfig());
    const auto plan = t.planSimraSingle(31, 16);  // block 32..47
    ASSERT_TRUE(plan.has_value());
    EXPECT_EQ(plan->group.size(), 16u);
    EXPECT_EQ(plan->group.front(), 32u);
    EXPECT_EQ(plan->group.back(), 47u);
    // Misaligned base rejected.
    EXPECT_FALSE(t.planSimraSingle(30, 16).has_value());
}

TEST(ModuleTester, SimraDoubleMuchStrongerThanRowHammer)
{
    ModuleTester t(smallConfig());
    ModuleTester::Options opt;
    opt.pattern = dram::DataPattern::P00;  // 1 -> 0 friendly victims
    std::uint64_t best_ratio_num = 0, best_ratio_den = 1;
    for (RowId v : t.sampleVictims(4, /*odd_only=*/true)) {
        const auto rh = t.rhDouble(v, opt);
        const auto si = t.simraDouble(v, 4, opt);
        if (rh == kNoFlip || si == kNoFlip)
            continue;
        if (best_ratio_num == 0 ||
            rh * best_ratio_den > si * best_ratio_num) {
            best_ratio_num = rh;
            best_ratio_den = si;
        }
    }
    ASSERT_GT(best_ratio_num, 0u);
    // At least one victim with a large reduction (paper: up to 158x).
    EXPECT_GT(static_cast<double>(best_ratio_num) /
                  static_cast<double>(best_ratio_den),
              10.0);
}

TEST(ModuleTester, WcdpNoWorseThanAnyFixedPattern)
{
    ModuleTester t(smallConfig());
    const RowId victim = 205;
    ModuleTester::Options wcdp;
    wcdp.searchWcdp = true;
    const auto hc_wcdp = t.rhDouble(victim, wcdp);
    for (dram::DataPattern p : dram::kAllPatterns) {
        ModuleTester::Options fixed;
        fixed.pattern = p;
        EXPECT_LE(hc_wcdp, t.rhDouble(victim, fixed))
            << dram::name(p);
    }
}

TEST(ModuleTester, CombinedReducesRowHammerRequirement)
{
    ModuleTester t(smallConfig());
    ModuleTester::Options opt;
    int reduced = 0, total = 0;
    for (RowId v : t.sampleVictims(3, /*odd_only=*/true)) {
        const auto rh = t.rhDouble(v, opt);
        ModuleTester::CombinedSpec spec;
        spec.comraFraction = 0.9;
        const auto combined = t.combinedRh(v, spec, opt);
        if (rh == kNoFlip || combined == kNoFlip)
            continue;
        ++total;
        reduced += combined < rh;
    }
    ASSERT_GT(total, 5);
    EXPECT_GT(static_cast<double>(reduced) / total, 0.8);
}

TEST(ModuleTester, RepeatsWithTrialNoiseTakeMinimum)
{
    dram::DeviceConfig cfg = smallConfig();
    cfg.trialNoiseSigma = 0.15;
    ModuleTester tester(cfg);

    ModuleTester::Options once;
    once.search.repeats = 1;
    ModuleTester::Options five;
    five.search.repeats = 5;

    // With run-to-run variation, the minimum of five searches is
    // statistically no larger than a single search across victims.
    int not_larger = 0, total = 0;
    for (dram::RowId v : tester.sampleVictims(3)) {
        const auto hc1 = tester.rhDouble(v, once);
        const auto hc5 = tester.rhDouble(v, five);
        if (hc1 == kNoFlip || hc5 == kNoFlip)
            continue;
        ++total;
        not_larger += hc5 <= hc1 * 105 / 100;  // 5% bisection slack
    }
    ASSERT_GT(total, 10);
    EXPECT_GT(static_cast<double>(not_larger) / total, 0.85);
}

TEST(ModuleTester, RhDoubleAtBoundaryIsFatal)
{
    ModuleTester t(smallConfig());
    ModuleTester::Options opt;
    EXPECT_DEATH(t.rhDouble(0, opt), "neighbours");
}

} // namespace
