/**
 * @file
 * Unit tests for the access-pattern builders.
 */

#include <gtest/gtest.h>

#include "bender/host.h"
#include "hammer/patterns.h"

namespace {

using namespace pud;
using namespace pud::hammer;
using bender::Op;

std::uint64_t
countOps(const Program &p, Op op)
{
    std::uint64_t n = 0;
    for (const auto &inst : p.insts())
        n += inst.op == op;
    return n;
}

TEST(Patterns, ZeroHammersYieldEmptyPrograms)
{
    PatternTimings t;
    EXPECT_TRUE(doubleSidedRowHammer(0, 1, 3, 0, t).insts().empty());
    EXPECT_TRUE(comraHammer(0, 1, 3, 0, t).insts().empty());
    EXPECT_TRUE(simraHammer(0, 1, 3, 0, t).insts().empty());
}

TEST(Patterns, DoubleSidedStructure)
{
    PatternTimings t;
    const Program p = doubleSidedRowHammer(0, 10, 12, 5, t);
    EXPECT_TRUE(p.balanced());
    EXPECT_EQ(countOps(p, Op::Act), 2u);  // per iteration
    EXPECT_EQ(countOps(p, Op::Pre), 2u);
    EXPECT_EQ(p.insts().front().op, Op::LoopBegin);
    EXPECT_EQ(p.insts().front().count, 5u);
}

TEST(Patterns, ComraUsesViolatedGap)
{
    PatternTimings t;
    t.comraPreToAct = units::fromNs(9.0);
    const Program p = comraHammer(0, 10, 12, 3, t);
    // The dst activation's gap carries the violated tRP.
    bool found = false;
    for (const auto &inst : p.insts())
        if (inst.op == Op::Act && inst.row == 12)
            found = inst.gap == units::fromNs(9.0);
    EXPECT_TRUE(found);
}

TEST(Patterns, SimraUsesBothViolatedGaps)
{
    PatternTimings t;
    t.simraActToPre = units::fromNs(1.5);
    t.simraPreToAct = units::fromNs(4.5);
    const Program p = simraHammer(0, 20, 22, 3, t);
    bool pre_ok = false, act_ok = false;
    for (const auto &inst : p.insts()) {
        if (inst.op == Op::Pre && inst.gap == units::fromNs(1.5))
            pre_ok = true;
        if (inst.op == Op::Act && inst.row == 22 &&
            inst.gap == units::fromNs(4.5))
            act_ok = true;
    }
    EXPECT_TRUE(pre_ok);
    EXPECT_TRUE(act_ok);
}

TEST(Patterns, RowPressHoldsAggressorOpen)
{
    PatternTimings t;
    t.tAggOn = units::fromNs(7800);
    const Program p = doubleSidedRowHammer(0, 1, 3, 2, t);
    for (const auto &inst : p.insts()) {
        if (inst.op == Op::Pre) {
            EXPECT_EQ(inst.gap, units::fromNs(7800));
        }
    }
}

TEST(Patterns, CombinedOrdersPhases)
{
    PatternTimings t;
    CombinedCounts counts;
    counts.comra = 10;
    counts.simra = 20;
    counts.rowHammer = 30;
    const Program p =
        combinedPattern(0, 5, 7, 4, 8, 4, 12, counts, t);
    std::vector<std::uint64_t> loop_counts;
    for (const auto &inst : p.insts())
        if (inst.op == Op::LoopBegin)
            loop_counts.push_back(inst.count);
    ASSERT_EQ(loop_counts.size(), 3u);
    EXPECT_EQ(loop_counts[0], 10u);  // CoMRA phase first
    EXPECT_EQ(loop_counts[1], 20u);  // then SiMRA
    EXPECT_EQ(loop_counts[2], 30u);  // then RowHammer
}

TEST(Patterns, CombinedSkipsEmptyPhases)
{
    PatternTimings t;
    CombinedCounts counts;
    counts.rowHammer = 7;
    const Program p =
        combinedPattern(0, 5, 7, 4, 8, 4, 12, counts, t);
    std::uint64_t loops = 0;
    for (const auto &inst : p.insts())
        loops += inst.op == Op::LoopBegin;
    EXPECT_EQ(loops, 1u);
}

TEST(Patterns, TrrBypassPacing)
{
    PatternTimings t;
    const Program p =
        trrBypassPattern(0, {10, 12}, 40, false, 2, t, 156);
    // One cycle: 156 aggressor ACTs + 3 * 156 dummy ACTs + 4 REFs.
    EXPECT_EQ(countOps(p, Op::Act), 4u * 156u);
    EXPECT_EQ(countOps(p, Op::Ref), 4u);

    // Each tREFI segment must fit within tREFI.
    Time seg = 0;
    std::vector<Time> segments;
    for (const auto &inst : p.insts()) {
        if (inst.op == Op::LoopBegin || inst.op == Op::LoopEnd)
            continue;
        seg += inst.gap;
        if (inst.op == Op::Ref) {
            segments.push_back(seg);
            seg = 0;
        }
    }
    ASSERT_EQ(segments.size(), 4u);
    for (Time s : segments)
        EXPECT_LE(s, t.base.tREFI + t.base.tRP + t.base.tRAS);
}

TEST(Patterns, TrrBypassComraNeedsPairs)
{
    PatternTimings t;
    EXPECT_DEATH(trrBypassPattern(0, {1, 2, 3}, 9, true, 1, t),
                 "pairs");
    EXPECT_DEATH(trrBypassPattern(0, {}, 9, false, 1, t),
                 "no aggressors");
}

TEST(Patterns, TrrSimraOpsPerTrefi)
{
    PatternTimings t;
    const Program p = trrSimraPattern(0, 16, 18, 3, t, 156);
    // 78 ops per cycle, 2 ACTs each, one REF per cycle.
    EXPECT_EQ(countOps(p, Op::Act), 2u * 78u);
    EXPECT_EQ(countOps(p, Op::Ref), 1u);
    EXPECT_EQ(p.insts().front().count, 3u);
}

class HammerCountSweep
    : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(HammerCountSweep, LoopCountMatchesRequested)
{
    PatternTimings t;
    for (const Program &p :
         {doubleSidedRowHammer(0, 1, 3, GetParam(), t),
          comraHammer(0, 1, 3, GetParam(), t),
          simraHammer(0, 1, 3, GetParam(), t)}) {
        ASSERT_FALSE(p.insts().empty());
        EXPECT_EQ(p.insts().front().count, GetParam());
    }
}

INSTANTIATE_TEST_SUITE_P(Counts, HammerCountSweep,
                         ::testing::Values(1, 2, 100, 65536, 700000));

} // namespace
