/**
 * @file
 * Unit tests for the access-pattern builders.
 */

#include <gtest/gtest.h>

#include <map>

#include "bender/host.h"
#include "dram/config.h"
#include "hammer/patterns.h"

namespace {

using namespace pud;
using namespace pud::hammer;
using bender::Op;

std::uint64_t
countOps(const Program &p, Op op)
{
    std::uint64_t n = 0;
    for (const auto &inst : p.insts())
        n += inst.op == op;
    return n;
}

/** Loop-expanded ACT totals per row: what the device would replay. */
std::map<RowId, std::uint64_t>
perRowActs(const Program &p)
{
    std::map<RowId, std::uint64_t> acts;
    std::vector<std::uint64_t> mult{1};
    for (const auto &inst : p.insts()) {
        if (inst.op == Op::LoopBegin)
            mult.push_back(mult.back() * inst.count);
        else if (inst.op == Op::LoopEnd)
            mult.pop_back();
        else if (inst.op == Op::Act)
            acts[inst.row] += mult.back();
    }
    return acts;
}

TEST(Patterns, ZeroHammersYieldEmptyPrograms)
{
    PatternTimings t;
    EXPECT_TRUE(doubleSidedRowHammer(0, 1, 3, 0, t).insts().empty());
    EXPECT_TRUE(comraHammer(0, 1, 3, 0, t).insts().empty());
    EXPECT_TRUE(simraHammer(0, 1, 3, 0, t).insts().empty());
}

TEST(Patterns, DoubleSidedStructure)
{
    PatternTimings t;
    const Program p = doubleSidedRowHammer(0, 10, 12, 5, t);
    EXPECT_TRUE(p.balanced());
    EXPECT_EQ(countOps(p, Op::Act), 2u);  // per iteration
    EXPECT_EQ(countOps(p, Op::Pre), 2u);
    EXPECT_EQ(p.insts().front().op, Op::LoopBegin);
    EXPECT_EQ(p.insts().front().count, 5u);
}

TEST(Patterns, ComraUsesViolatedGap)
{
    PatternTimings t;
    t.comraPreToAct = units::fromNs(9.0);
    const Program p = comraHammer(0, 10, 12, 3, t);
    // The dst activation's gap carries the violated tRP.
    bool found = false;
    for (const auto &inst : p.insts())
        if (inst.op == Op::Act && inst.row == 12)
            found = inst.gap == units::fromNs(9.0);
    EXPECT_TRUE(found);
}

TEST(Patterns, SimraUsesBothViolatedGaps)
{
    PatternTimings t;
    t.simraActToPre = units::fromNs(1.5);
    t.simraPreToAct = units::fromNs(4.5);
    const Program p = simraHammer(0, 20, 22, 3, t);
    bool pre_ok = false, act_ok = false;
    for (const auto &inst : p.insts()) {
        if (inst.op == Op::Pre && inst.gap == units::fromNs(1.5))
            pre_ok = true;
        if (inst.op == Op::Act && inst.row == 22 &&
            inst.gap == units::fromNs(4.5))
            act_ok = true;
    }
    EXPECT_TRUE(pre_ok);
    EXPECT_TRUE(act_ok);
}

TEST(Patterns, RowPressHoldsAggressorOpen)
{
    PatternTimings t;
    t.tAggOn = units::fromNs(7800);
    const Program p = doubleSidedRowHammer(0, 1, 3, 2, t);
    for (const auto &inst : p.insts()) {
        if (inst.op == Op::Pre) {
            EXPECT_EQ(inst.gap, units::fromNs(7800));
        }
    }
}

TEST(Patterns, CombinedOrdersPhases)
{
    PatternTimings t;
    CombinedCounts counts;
    counts.comra = 10;
    counts.simra = 20;
    counts.rowHammer = 30;
    const Program p =
        combinedPattern(0, 5, 7, 4, 8, 4, 12, counts, t);
    std::vector<std::uint64_t> loop_counts;
    for (const auto &inst : p.insts())
        if (inst.op == Op::LoopBegin)
            loop_counts.push_back(inst.count);
    ASSERT_EQ(loop_counts.size(), 3u);
    EXPECT_EQ(loop_counts[0], 10u);  // CoMRA phase first
    EXPECT_EQ(loop_counts[1], 20u);  // then SiMRA
    EXPECT_EQ(loop_counts[2], 30u);  // then RowHammer
}

TEST(Patterns, CombinedSkipsEmptyPhases)
{
    PatternTimings t;
    CombinedCounts counts;
    counts.rowHammer = 7;
    const Program p =
        combinedPattern(0, 5, 7, 4, 8, 4, 12, counts, t);
    std::uint64_t loops = 0;
    for (const auto &inst : p.insts())
        loops += inst.op == Op::LoopBegin;
    EXPECT_EQ(loops, 1u);
}

TEST(Patterns, TrrBypassPacing)
{
    PatternTimings t;
    const Program p =
        trrBypassPattern(0, {10, 12}, 40, false, 2, t, 156);
    // One cycle: 156 aggressor ACTs + 3 * 156 dummy ACTs + 4 REFs.
    EXPECT_EQ(countOps(p, Op::Act), 4u * 156u);
    EXPECT_EQ(countOps(p, Op::Ref), 4u);

    // Each tREFI segment must fit within tREFI.
    Time seg = 0;
    std::vector<Time> segments;
    for (const auto &inst : p.insts()) {
        if (inst.op == Op::LoopBegin || inst.op == Op::LoopEnd)
            continue;
        seg += inst.gap;
        if (inst.op == Op::Ref) {
            segments.push_back(seg);
            seg = 0;
        }
    }
    ASSERT_EQ(segments.size(), 4u);
    for (Time s : segments)
        EXPECT_LE(s, t.base.tREFI + t.base.tRP + t.base.tRAS);
}

TEST(Patterns, TrrBypassRotationCoversAllAggressors)
{
    // 8 aggressors but only 4 ACT slots per cycle: the rotation must
    // carry across cycles so the tail of the list is not starved.
    PatternTimings t;
    const std::vector<RowId> aggr{10, 12, 14, 16, 18, 20, 22, 24};
    const std::uint64_t cycles = 4;
    const Program p =
        trrBypassPattern(0, aggr, 40, false, cycles, t, 4);
    EXPECT_TRUE(p.balanced());

    const auto acts = perRowActs(p);
    for (RowId r : aggr) {
        ASSERT_TRUE(acts.count(r))
            << "aggressor row " << r << " never activated";
        // 4 cycles x 4 ACTs spread evenly over 8 rows = 2 each.
        EXPECT_EQ(acts.at(r), 2u) << "row " << r;
    }
    EXPECT_EQ(acts.at(40), cycles * 3u * 4u);  // dummy phase
    EXPECT_EQ(countOps(p, Op::Ref) * p.insts().front().count,
              cycles * 4u);
}

TEST(Patterns, TrrBypassRotationEvensShortLists)
{
    // units < acts_per_trefi with a non-dividing count: without the
    // carried rotation the first rows of the list soak up the slack
    // every cycle (6/3/3 over 3 cycles); with it every row gets an
    // equal share.
    PatternTimings t;
    const std::vector<RowId> aggr{10, 12, 14};
    const Program p = trrBypassPattern(0, aggr, 40, false, 3, t, 4);
    const auto acts = perRowActs(p);
    for (RowId r : aggr)
        EXPECT_EQ(acts.at(r), 4u) << "row " << r;
}

TEST(Patterns, TrrBypassComraRotationCoversAllPairs)
{
    // 4 (src, dst) pairs, 2 copy cycles per tREFI: two outer cycles
    // must visit every pair exactly once.
    PatternTimings t;
    const std::vector<RowId> aggr{50, 51, 52, 53, 54, 55, 56, 57};
    const Program p = trrBypassPattern(0, aggr, 90, true, 2, t, 4);
    const auto acts = perRowActs(p);
    for (RowId r : aggr) {
        ASSERT_TRUE(acts.count(r))
            << "CoMRA operand row " << r << " never activated";
        EXPECT_EQ(acts.at(r), 1u) << "row " << r;
    }
}

TEST(Patterns, TrrBypassRotationRemainderCycles)
{
    // period = 2 (8 rows / 4 acts) but cycles = 3: one full rotation
    // in the loop plus a flat leftover cycle that restarts at offset
    // 0.  Totals: rows 10-16 get 2, rows 18-24 get 1.
    PatternTimings t;
    const std::vector<RowId> aggr{10, 12, 14, 16, 18, 20, 22, 24};
    const Program p = trrBypassPattern(0, aggr, 40, false, 3, t, 4);
    EXPECT_TRUE(p.balanced());
    const auto acts = perRowActs(p);
    std::uint64_t total = 0;
    for (RowId r : aggr) {
        ASSERT_TRUE(acts.count(r)) << "row " << r;
        EXPECT_GE(acts.at(r), 1u);
        total += acts.at(r);
    }
    EXPECT_EQ(total, 3u * 4u);
    EXPECT_EQ(acts.at(10), 2u);
    EXPECT_EQ(acts.at(18), 1u);
}

TEST(Patterns, TrrBypassComraNeedsPairs)
{
    PatternTimings t;
    EXPECT_DEATH(trrBypassPattern(0, {1, 2, 3}, 9, true, 1, t),
                 "pairs");
    EXPECT_DEATH(trrBypassPattern(0, {}, 9, false, 1, t),
                 "no aggressors");
}

TEST(Patterns, TrrSimraOpsPerTrefi)
{
    PatternTimings t;
    const Program p = trrSimraPattern(0, 16, 18, 3, t, 156);
    // 78 ops per cycle, 2 ACTs each, one REF per cycle.
    EXPECT_EQ(countOps(p, Op::Act), 2u * 78u);
    EXPECT_EQ(countOps(p, Op::Ref), 1u);
    EXPECT_EQ(p.insts().front().count, 3u);
}

TEST(Patterns, RejectsDegenerateActsPerTrefi)
{
    PatternTimings t;
    EXPECT_DEATH(trrBypassPattern(0, {10, 12}, 40, false, 1, t, 0),
                 "actsPerTrefi");
    EXPECT_DEATH(trrBypassPattern(0, {10, 12}, 40, true, 1, t, 1),
                 "actsPerTrefi");
    EXPECT_DEATH(trrSimraPattern(0, 16, 18, 1, t, 1),
                 "actsPerTrefi");
    EXPECT_DEATH(trrSimraPattern(0, 16, 18, 1, t, 0),
                 "actsPerTrefi");
}

TEST(Patterns, RefInterleaveRejectsTrefiBelowTrfc)
{
    PatternTimings t;
    const Program flat = doubleSidedRowHammer(0, 10, 12, 100, t);
    dram::TimingParams bad = t.base;
    bad.tREFI = bad.tRFC;
    EXPECT_DEATH(withRefInterleave(flat, bad), "tREFI");
    bad.tREFI = bad.tRFC - 1;
    EXPECT_DEATH(withRefInterleave(flat, bad), "tREFI");
}

std::vector<std::uint64_t>
loopCounts(const Program &p)
{
    std::vector<std::uint64_t> counts;
    for (const auto &inst : p.insts())
        if (inst.op == Op::LoopBegin)
            counts.push_back(inst.count);
    return counts;
}

TEST(Patterns, RefInterleaveEmitsRemainderTail)
{
    // Body duration 100 ns, budget 450 ns => per = 4; count 10 =>
    // two full tREFI groups plus a flat remainder loop of 2.
    dram::TimingParams t;
    t.tRFC = units::fromNs(50.0);
    t.tREFI = units::fromNs(500.0);
    Program flat;
    flat.loopBegin(10)
        .act(0, 5, units::fromNs(60.0))
        .pre(0, units::fromNs(40.0))
        .loopEnd();
    const Program p = withRefInterleave(flat, t);
    EXPECT_TRUE(p.balanced());
    EXPECT_EQ(loopCounts(p),
              (std::vector<std::uint64_t>{2, 4, 2}));
    EXPECT_EQ(countOps(p, Op::Ref), 1u);
    EXPECT_EQ(countOps(p, Op::Nop), 1u);

    // Loop-expanded totals are preserved: 2*4 + 2 = 10 activations.
    EXPECT_EQ(perRowActs(p).at(5), 10u);
}

TEST(Patterns, RefInterleaveClampsOversizedBodyToOnePerTrefi)
{
    // Body (200 ns) longer than the post-tRFC budget (150 ns): per
    // clamps to 1, i.e. one body iteration between consecutive REFs.
    dram::TimingParams t;
    t.tRFC = units::fromNs(50.0);
    t.tREFI = units::fromNs(200.0);
    Program flat;
    flat.loopBegin(10)
        .act(0, 5, units::fromNs(120.0))
        .pre(0, units::fromNs(80.0))
        .loopEnd();
    const Program p = withRefInterleave(flat, t);
    EXPECT_TRUE(p.balanced());
    EXPECT_EQ(loopCounts(p),
              (std::vector<std::uint64_t>{10, 1}));
    EXPECT_EQ(perRowActs(p).at(5), 10u);
    EXPECT_EQ(countOps(p, Op::Ref), 1u);
}

/**
 * Flip results of the REF-interleaved rewrite vs the flat program,
 * both under the fast path.  The run is arranged so the inserted REFs
 * are flip-neutral -- too few for the stripe to reach the populated
 * rows, TRR off, and aggressor off-times already past the off-gain
 * saturation knee in the flat layout -- so the rewrite must leave the
 * device's end state byte-identical.
 */
TEST(Patterns, RefInterleaveFlipResultsMatchFlatWhenRefsAreNeutral)
{
    dram::DeviceConfig cfg = dram::makeConfig("HMA81GU7AFR8N-UH", 11);
    cfg.banks = 1;
    cfg.subarraysPerBank = 2;
    cfg.rowsPerSubarray = 64;
    cfg.cols = 64;
    cfg.profile.mapping = dram::MappingScheme::Sequential;

    PatternTimings t;
    t.base = cfg.timings;
    t.tAggOn = units::fromNs(100.0);  // saturate offGain in both runs

    // 40001 iterations: exercises the remainder tail as well.
    const Program flat =
        doubleSidedRowHammer(0, 31, 33, 40001, t);
    const Program inter = withRefInterleave(flat, t.base);
    ASSERT_GT(countOps(inter, Op::Ref), 0u);

    const dram::RowData aggr(cfg.cols, dram::DataPattern::P55);
    const dram::RowData vict(cfg.cols, dram::DataPattern::PAA);

    const auto run = [&](const Program &p) {
        bender::TestBench bench(cfg);
        for (RowId r = 28; r <= 36; ++r)
            bench.writeRow(0, r, r == 32 ? vict : aggr);
        bench.run(p);
        std::vector<dram::RowData> rows;
        for (RowId r = 28; r <= 36; ++r)
            rows.push_back(bench.readRow(0, r));
        return rows;
    };

    const auto flat_rows = run(flat);
    const auto inter_rows = run(inter);
    ASSERT_EQ(flat_rows.size(), inter_rows.size());
    for (std::size_t i = 0; i < flat_rows.size(); ++i)
        EXPECT_EQ(flat_rows[i].diffCount(inter_rows[i]), 0u)
            << "row " << (28 + i);
}

class HammerCountSweep
    : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(HammerCountSweep, LoopCountMatchesRequested)
{
    PatternTimings t;
    for (const Program &p :
         {doubleSidedRowHammer(0, 1, 3, GetParam(), t),
          comraHammer(0, 1, 3, GetParam(), t),
          simraHammer(0, 1, 3, GetParam(), t)}) {
        ASSERT_FALSE(p.insts().empty());
        EXPECT_EQ(p.insts().front().count, GetParam());
    }
}

INSTANTIATE_TEST_SUITE_P(Counts, HammerCountSweep,
                         ::testing::Values(1, 2, 100, 65536, 700000));

} // namespace
