/**
 * @file
 * Randomized property tests: the executor fast-path, the device
 * protocol, and the data plane are exercised with generated inputs.
 */

#include <gtest/gtest.h>

#include <bitset>

#include "bender/host.h"
#include "hammer/experiment.h"

namespace {

using namespace pud;
using namespace pud::bender;
using dram::DataPattern;
using dram::DeviceConfig;
using dram::RowData;
using dram::RowId;

DeviceConfig
fuzzConfig(std::uint64_t seed)
{
    DeviceConfig cfg = dram::makeConfig("HMA81GU7AFR8N-UH", seed);
    cfg.banks = 2;
    cfg.subarraysPerBank = 2;
    cfg.rowsPerSubarray = 64;
    cfg.cols = 128;
    return cfg;
}

/**
 * Generate a random but protocol-correct program: per bank we track
 * open/closed state so ACT/PRE/RD/WR sequences are always legal, with
 * gaps spanning nominal and violated timings.
 */
Program
randomProgram(Rng &rng, const DeviceConfig &cfg, int length)
{
    Program p;
    std::vector<bool> open(cfg.banks, false);
    const Time gaps[] = {units::fromNs(3),    units::fromNs(7.5),
                         units::fromNs(13.75), units::fromNs(36),
                         units::fromNs(100)};
    const int marker = p.addData(RowData(cfg.cols, DataPattern::PFF));

    for (int i = 0; i < length; ++i) {
        const auto bank =
            static_cast<dram::BankId>(rng.below(cfg.banks));
        const Time gap = gaps[rng.below(5)];
        if (!open[bank]) {
            if (rng.chance(0.1)) {
                // Hammering loop (always legal: act/pre pairs).
                const auto row = static_cast<RowId>(
                    rng.below(cfg.rowsPerBank()));
                p.loopBegin(1 + rng.below(64));
                p.act(bank, row, gap).pre(bank, units::fromNs(36));
                p.loopEnd();
            } else {
                p.act(bank,
                      static_cast<RowId>(rng.below(cfg.rowsPerBank())),
                      gap);
                open[bank] = true;
            }
        } else {
            switch (rng.below(4)) {
              case 0:
                p.pre(bank, gap);
                open[bank] = false;
                break;
              case 1:
                p.rd(bank, gap);
                break;
              case 2:
                p.wr(bank, marker, gap);
                break;
              default:
                p.nop(gap);
                break;
            }
        }
    }
    for (dram::BankId b = 0; b < cfg.banks; ++b)
        if (open[b])
            p.pre(b, units::fromNs(36));
    return p;
}

class ProgramFuzz : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(ProgramFuzz, DeviceSurvivesAndStaysConsistent)
{
    const DeviceConfig cfg = fuzzConfig(GetParam());
    Rng rng(GetParam() * 77 + 5);
    TestBench bench(cfg);
    for (RowId r = 0; r < cfg.rowsPerBank(); ++r)
        bench.fillRow(0, r, DataPattern::PAA);

    const Program p = randomProgram(rng, cfg, 200);
    const auto result = bench.run(p);
    EXPECT_GE(result.endTime, result.startTime);

    // Every row remains readable and well-formed.
    for (RowId r = 0; r < cfg.rowsPerBank(); ++r)
        EXPECT_EQ(bench.readRow(0, r).bits(), cfg.cols);
}

TEST_P(ProgramFuzz, FastPathMatchesNaiveOnRandomPrograms)
{
    auto run = [&](bool fast) {
        const DeviceConfig cfg = fuzzConfig(GetParam());
        Rng rng(GetParam() * 31 + 1);
        TestBench bench(cfg);
        bench.executor().setFastPath(fast);
        for (dram::BankId b = 0; b < cfg.banks; ++b)
            for (RowId r = 0; r < cfg.rowsPerBank(); ++r)
                bench.device().writeRowDirect(
                    b, r, RowData(cfg.cols, DataPattern::PAA));

        bench.run(randomProgram(rng, cfg, 300));

        // Collect the full damage state and the full data state.
        std::vector<float> damage;
        std::vector<RowData> data;
        for (dram::BankId b = 0; b < cfg.banks; ++b) {
            for (RowId r = 0; r < cfg.rowsPerBank(); ++r) {
                data.push_back(bench.device().readRowDirect(b, r));
                for (const auto &cell :
                     bench.device().weakCells(b, r))
                    damage.push_back(cell.totalDamage());
            }
        }
        return std::make_pair(damage, data);
    };

    const auto fast = run(true);
    const auto naive = run(false);
    ASSERT_EQ(fast.first.size(), naive.first.size());
    for (std::size_t i = 0; i < fast.first.size(); ++i) {
        EXPECT_NEAR(fast.first[i], naive.first[i],
                    1e-4f + 0.01f * std::abs(naive.first[i]))
            << "cell " << i;
    }
    EXPECT_EQ(fast.second, naive.second);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProgramFuzz,
                         ::testing::Range<std::uint64_t>(1, 13));

TEST(DataFuzz, RowDataMatchesBitsetReference)
{
    Rng rng(404);
    RowData d(300);
    std::bitset<300> ref;
    for (int op = 0; op < 5000; ++op) {
        const auto col = static_cast<dram::ColId>(rng.below(300));
        switch (rng.below(3)) {
          case 0:
            d.set(col, true);
            ref.set(col);
            break;
          case 1:
            d.set(col, false);
            ref.reset(col);
            break;
          default:
            d.toggle(col);
            ref.flip(col);
            break;
        }
        ASSERT_EQ(d.get(col), ref.test(col)) << "op " << op;
    }
    std::size_t ones = 0;
    for (dram::ColId c = 0; c < 300; ++c)
        ones += d.get(c);
    EXPECT_EQ(ones, ref.count());
}

TEST(DeterminismFuzz, PopulationRunsAreBitStable)
{
    hammer::PopulationConfig cfg;
    cfg.moduleId = "M391A2G43BB2-CWE";
    cfg.victimsPerSubarray = 3;
    cfg.rowsPerSubarray = 64;
    cfg.seed = 2024;

    hammer::ModuleTester::Options opt;
    const hammer::MeasureFn fn = [&](hammer::ModuleTester &t,
                                     RowId v) {
        return t.rhDouble(v, opt);
    };
    const auto a = hammer::measurePopulation(cfg, {fn});
    const auto b = hammer::measurePopulation(cfg, {fn});
    ASSERT_EQ(a[0].size(), b[0].size());
    for (std::size_t i = 0; i < a[0].size(); ++i)
        EXPECT_EQ(a[0][i], b[0][i]);
}

TEST(DeterminismFuzz, DifferentSeedsGiveDifferentModules)
{
    const DeviceConfig a_cfg = fuzzConfig(1);
    const DeviceConfig b_cfg = fuzzConfig(2);
    dram::Device a(a_cfg), b(b_cfg);
    int identical = 0, total = 0;
    for (RowId r = 0; r < 32; ++r) {
        const auto &ca = a.weakCells(0, r);
        const auto &cb = b.weakCells(0, r);
        for (std::size_t i = 0; i < ca.size(); ++i) {
            ++total;
            identical += ca[i].baseHc == cb[i].baseHc;
        }
    }
    EXPECT_LT(identical, total / 10);
}

} // namespace
