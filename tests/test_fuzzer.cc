/**
 * @file
 * Unit tests for the frequency-domain pattern fuzzer (pud::fuzz).
 */

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "fuzz/campaign.h"
#include "fuzz/fuzz.h"
#include "fuzz/minimize.h"

namespace {

using namespace pud;
using namespace pud::fuzz;
using bender::Op;

std::uint64_t
countOps(const Program &p, Op op)
{
    std::uint64_t n = 0;
    for (const auto &inst : p.insts())
        n += inst.op == op;
    return n;
}

/** A small, fast campaign configuration shared by the smoke tests. */
CampaignConfig
smokeConfig()
{
    CampaignConfig cfg;
    cfg.candidates = 40;
    cfg.seed = 3;
    cfg.maxPeriods = 4000;
    cfg.chunk = 8;
    cfg.baseline = false;  // the slow part; covered by the CLI test
    cfg.minimizeTop = 1;
    return cfg;
}

TEST(FuzzGenerator, PureFunctionOfSeedAndIndex)
{
    for (std::uint64_t i = 0; i < 100; ++i) {
        const Candidate a = generateCandidate(7, i);
        const Candidate b = generateCandidate(7, i);
        EXPECT_EQ(shapeHash(a), shapeHash(b)) << "index " << i;
    }
    // Different seeds must decorrelate the stream.
    std::size_t diff = 0;
    for (std::uint64_t i = 0; i < 100; ++i)
        diff += shapeHash(generateCandidate(7, i)) !=
                shapeHash(generateCandidate(8, i));
    EXPECT_GT(diff, 50u);
}

TEST(FuzzGenerator, StaysInsideTheCalibratedMenus)
{
    const std::set<std::uint8_t> slots{8, 12, 16, 24, 32};
    for (std::uint64_t i = 0; i < 500; ++i) {
        const Candidate c = generateCandidate(1, i);
        EXPECT_GE(c.trefis, 1);
        EXPECT_LE(c.trefis, 4);
        EXPECT_TRUE(slots.count(c.slotsPerTrefi));
        ASSERT_GE(c.comps.size(), 1u);
        ASSERT_LE(c.comps.size(), 4u);
        for (const Component &k : c.comps) {
            EXPECT_GE(k.stride, 1);
            EXPECT_LT(k.phase, c.slotsPerTrefi);
            // Offsets must stay inside buildPattern's victim margin.
            EXPECT_LE(std::abs(static_cast<int>(k.offLo)),
                      static_cast<int>(kVictimMargin) - 1);
            EXPECT_LE(std::abs(static_cast<int>(k.offHi)),
                      static_cast<int>(kVictimMargin) - 1);
            switch (k.tech) {
              case Tech::RowHammer:
                // Pinned to the nominal hold: canonical for dedup.
                EXPECT_EQ(k.timingSel, 0);
                break;
              case Tech::Press:
                EXPECT_GE(k.timingSel, 1);
                EXPECT_LT(k.timingSel, kAggOnMenuSize);
                break;
              case Tech::Comra:
                EXPECT_LT(k.timingSel, kComraDelayMenuSize);
                break;
              case Tech::Simra:
                EXPECT_TRUE(k.simraN == 2 || k.simraN == 4 ||
                            k.simraN == 8);
                EXPECT_LT(k.timingSel, kSimraGapMenuSize);
                break;
            }
        }
    }
}

TEST(FuzzGenerator, ShapeHashCoversEveryField)
{
    const Candidate base = generateCandidate(1, 0);
    const std::uint64_t h = shapeHash(base);

    Candidate m = base;
    m.trefis = static_cast<std::uint8_t>(m.trefis + 1);
    EXPECT_NE(shapeHash(m), h);

    m = base;
    m.refSync = !m.refSync;
    EXPECT_NE(shapeHash(m), h);

    m = base;
    m.comps[0].phase = static_cast<std::uint8_t>(m.comps[0].phase + 1);
    EXPECT_NE(shapeHash(m), h);

    m = base;
    m.comps[0].stride =
        static_cast<std::uint8_t>(m.comps[0].stride + 1);
    EXPECT_NE(shapeHash(m), h);

    m = base;
    m.comps.push_back(m.comps[0]);
    EXPECT_NE(shapeHash(m), h);
}

TEST(FuzzBuild, StampsTheClaimedLattice)
{
    CampaignConfig ccfg;
    const dram::DeviceConfig dcfg = campaignDeviceConfig(ccfg);
    const RowId victim = campaignVictim(ccfg.rowsPerSubarray);

    Candidate c;
    c.trefis = 1;
    c.slotsPerTrefi = 8;
    c.refSync = true;
    Component k;
    k.tech = Tech::RowHammer;
    k.phase = 0;
    k.stride = 2;
    k.offLo = -1;
    k.offHi = 1;
    c.comps.push_back(k);

    const BuiltPattern b = buildPattern(c, 0, victim, 11, dcfg);
    EXPECT_TRUE(b.program.balanced());
    EXPECT_EQ(b.program.insts().front().op, Op::LoopBegin);
    EXPECT_EQ(b.program.insts().front().count, 11u);
    // Slots 0, 2, 4, 6 of the 8-slot period.
    EXPECT_EQ(b.actsPerPeriod, 4u);
    EXPECT_EQ(countOps(b.program, Op::Act), 4u);
    // refSync: one REF per tREFI in the period.
    EXPECT_EQ(countOps(b.program, Op::Ref), 1u);
    // Double-sided: alternating occurrences hit both neighbours.
    ASSERT_EQ(b.aggressors.size(), 2u);
    EXPECT_EQ(b.aggressors[0], victim - 1);
    EXPECT_EQ(b.aggressors[1], victim + 1);
}

TEST(FuzzBuild, EarlierComponentsWinContestedSlots)
{
    CampaignConfig ccfg;
    const dram::DeviceConfig dcfg = campaignDeviceConfig(ccfg);
    const RowId victim = campaignVictim(ccfg.rowsPerSubarray);

    Candidate c;
    c.trefis = 1;
    c.slotsPerTrefi = 8;
    Component a;  // claims 0, 2, 4, 6 (1 ACT each)
    a.tech = Tech::RowHammer;
    a.phase = 0;
    a.stride = 2;
    a.offLo = -1;
    a.offHi = 1;
    Component b;  // wants every slot, only gets 1, 3, 5, 7
    b.tech = Tech::Comra;
    b.phase = 0;
    b.stride = 1;
    b.offLo = -2;
    b.offHi = 2;
    c.comps = {a, b};

    const BuiltPattern built = buildPattern(c, 0, victim, 1, dcfg);
    // 4 RowHammer ACTs + 4 CoMRA copy cycles (2 ACTs each).
    EXPECT_EQ(built.actsPerPeriod, 4u + 8u);
    ASSERT_EQ(built.aggressors.size(), 4u);
    EXPECT_EQ(built.aggressors[0], victim - 2);
    EXPECT_EQ(built.aggressors[3], victim + 2);
}

TEST(FuzzBuild, SimraGroupSandwichesTheVictim)
{
    CampaignConfig ccfg;
    const dram::DeviceConfig dcfg = campaignDeviceConfig(ccfg);
    const RowId victim = campaignVictim(ccfg.rowsPerSubarray);
    ASSERT_EQ(victim % 16, 1u);

    Candidate c;
    c.trefis = 1;
    c.slotsPerTrefi = 8;
    Component k;
    k.tech = Tech::Simra;
    k.phase = 0;
    k.stride = 4;
    k.simraN = 4;
    c.comps.push_back(k);

    const BuiltPattern b = buildPattern(c, 0, victim, 1, dcfg);
    // N=4 group: r1, r1^2, r1^4, r1^6 with r1 = victim - 1.
    ASSERT_EQ(b.aggressors.size(), 4u);
    const RowId r1 = victim - 1;
    EXPECT_EQ(b.aggressors[0], r1);
    EXPECT_EQ(b.aggressors[1], r1 ^ 0x2u);
    EXPECT_EQ(b.aggressors[2], r1 ^ 0x4u);
    EXPECT_EQ(b.aggressors[3], r1 ^ 0x6u);
    // 2 slots claimed (0, 4), 2 ACTs per group open.
    EXPECT_EQ(b.actsPerPeriod, 4u);
}

TEST(FuzzBuildDeathTest, RejectsInvalidVictims)
{
    CampaignConfig ccfg;
    const dram::DeviceConfig dcfg = campaignDeviceConfig(ccfg);
    Candidate c = generateCandidate(1, 0);
    // Misaligned: SiMRA groups could not sandwich this victim.
    EXPECT_DEATH(buildPattern(c, 0, 34, 1, dcfg), "victim");
    // Aligned, but without subarray margin.
    EXPECT_DEATH(buildPattern(c, 0, 1, 1, dcfg), "margin");
    // No components.
    Candidate empty;
    EXPECT_DEATH(
        buildPattern(empty, 0, campaignVictim(ccfg.rowsPerSubarray), 1,
                     dcfg),
        "components");
}

TEST(FuzzCampaign, CorpusIsByteIdenticalAcrossJobs)
{
    CampaignConfig cfg = smokeConfig();
    cfg.jobs = 1;
    const CampaignResult r1 = runCampaign(cfg);
    cfg.jobs = 3;
    const CampaignResult r3 = runCampaign(cfg);

    std::ostringstream c1, c3;
    writeCorpusJsonl(r1, c1);
    writeCorpusJsonl(r3, c3);
    EXPECT_EQ(c1.str(), c3.str());
    EXPECT_EQ(summarize(r1), summarize(r3));
}

TEST(FuzzCampaign, FindsEffectivePatternsAndMinimizes)
{
    const CampaignConfig cfg = smokeConfig();
    const CampaignResult r = runCampaign(cfg);

    EXPECT_EQ(r.generated, cfg.candidates);
    EXPECT_EQ(r.corpus.size(), r.results.size());
    EXPECT_GE(r.effective, 1u);
    ASSERT_NE(r.bestIdx, static_cast<std::size_t>(-1));
    const CandidateResult &best = r.results[r.bestIdx];
    EXPECT_EQ(best.status, Status::Effective);
    EXPECT_EQ(best.hcActs, best.hcPeriods * best.actsPerPeriod);

    // The minimizer replays the campaign measurement exactly, then
    // only ever reduces the total-ACT cost.
    ASSERT_EQ(r.minimized.size(), 1u);
    const MinimizedPattern &m = r.minimized.front();
    EXPECT_EQ(m.corpusIdx, r.bestIdx);
    EXPECT_EQ(m.originalActs, best.hcActs);
    EXPECT_LE(m.minimizedActs, m.originalActs);
    EXPECT_LE(m.aggressorsAfter, m.aggressorsBefore);
    EXPECT_GT(m.probes, 0u);
    ASSERT_EQ(m.intensitySweep.size(), 4u);
    EXPECT_EQ(m.intensitySweep[0].first, 1);
    EXPECT_EQ(m.intensitySweep[0].second, m.minimizedActs);
}

TEST(FuzzCampaign, StaticFilterOnlySkipsTrueNoFlips)
{
    // With the filter off, every skipped candidate must measure as a
    // no-flip: the predictor is an optimization, never an oracle.
    CampaignConfig cfg = smokeConfig();
    cfg.minimizeTop = 0;
    cfg.staticFilter = true;
    const CampaignResult with = runCampaign(cfg);
    cfg.staticFilter = false;
    const CampaignResult without = runCampaign(cfg);

    ASSERT_EQ(with.results.size(), without.results.size());
    for (std::size_t i = 0; i < with.results.size(); ++i) {
        if (with.results[i].status == Status::StaticSkip)
            EXPECT_EQ(without.results[i].status, Status::NoFlip)
                << "corpus idx " << i;
        else
            EXPECT_EQ(with.results[i].status,
                      without.results[i].status);
    }
    EXPECT_EQ(with.effective, without.effective);
}

TEST(FuzzCorpus, JsonlNullsHcFieldsForNonFlips)
{
    const Candidate c = generateCandidate(1, 0);
    const std::uint64_t none = ~std::uint64_t(0);
    const std::string dead =
        toJsonl(c, 0, shapeHash(c), "no_flip", 6, none, none);
    EXPECT_NE(dead.find("\"hc_periods\":null"), std::string::npos);
    EXPECT_NE(dead.find("\"hc_acts\":null"), std::string::npos);
    const std::string live =
        toJsonl(c, 0, shapeHash(c), "effective", 6, 100, 600);
    EXPECT_NE(live.find("\"hc_periods\":100"), std::string::npos);
    EXPECT_NE(live.find("\"hc_acts\":600"), std::string::npos);
}

TEST(FuzzCampaignDeathTest, RejectsDegenerateConfigs)
{
    CampaignConfig cfg = smokeConfig();
    cfg.candidates = 0;
    EXPECT_DEATH(runCampaign(cfg), "candidates");
    cfg = smokeConfig();
    cfg.chunk = 0;
    EXPECT_DEATH(runCampaign(cfg), "chunk");
    cfg = smokeConfig();
    cfg.maxPeriods = 0;
    EXPECT_DEATH(runCampaign(cfg), "maxPeriods");
}

} // namespace
