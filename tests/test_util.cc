/**
 * @file
 * Unit tests for the util layer: CLI parsing, table rendering, and
 * time units.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "util/args.h"
#include "util/table.h"
#include "util/units.h"

namespace {

using namespace pud;

Args
makeArgs(std::initializer_list<const char *> argv)
{
    static std::vector<char *> storage;
    storage.clear();
    storage.push_back(const_cast<char *>("prog"));
    for (const char *a : argv)
        storage.push_back(const_cast<char *>(a));
    return Args(static_cast<int>(storage.size()), storage.data());
}

TEST(Args, KeyValueAndFlags)
{
    const Args args =
        makeArgs({"--victims=16", "--full", "run", "--seed=7"});
    EXPECT_TRUE(args.has("full"));
    EXPECT_FALSE(args.has("fast"));
    EXPECT_EQ(args.getInt("victims", 0), 16);
    EXPECT_EQ(args.getInt("seed", 0), 7);
    EXPECT_EQ(args.getInt("missing", 42), 42);
    ASSERT_EQ(args.positional().size(), 1u);
    EXPECT_EQ(args.positional().front(), "run");
}

TEST(Args, StringsAndDoubles)
{
    const Args args = makeArgs({"--module=KVR24N17S8/8", "--temp=62.5"});
    EXPECT_EQ(args.get("module", ""), "KVR24N17S8/8");
    EXPECT_DOUBLE_EQ(args.getDouble("temp", 0.0), 62.5);
    EXPECT_EQ(args.get("other", "dflt"), "dflt");
}

TEST(Args, FlagValueIsTruthyOne)
{
    const Args args = makeArgs({"--trr"});
    EXPECT_EQ(args.get("trr", ""), "1");
    EXPECT_EQ(args.getInt("trr", 0), 1);
}

/**
 * Regression: getInt used to be atoi-style -- `--victims=abc` parsed
 * as 0 and `--jobs=4x` as 4, silently running the wrong experiment.
 * Malformed numerics must die with a diagnostic naming the flag.
 */
TEST(ArgsDeath, GetIntRejectsNonNumeric)
{
    const Args args = makeArgs({"--victims=abc"});
    EXPECT_DEATH(args.getInt("victims", 0),
                 "--victims=abc.*expected an integer");
}

TEST(ArgsDeath, GetIntRejectsTrailingGarbage)
{
    const Args args = makeArgs({"--jobs=4x"});
    EXPECT_DEATH(args.getInt("jobs", 0),
                 "--jobs=4x.*expected an integer");
}

TEST(ArgsDeath, GetDoubleRejectsGarbage)
{
    const Args args = makeArgs({"--temp=warm"});
    EXPECT_DEATH(args.getDouble("temp", 0.0),
                 "--temp=warm.*expected a number");
}

TEST(ArgsDeath, GetDoubleRejectsTrailingGarbage)
{
    const Args args = makeArgs({"--temp=62.5C"});
    EXPECT_DEATH(args.getDouble("temp", 0.0),
                 "--temp=62.5C.*expected a number");
}

TEST(Args, NegativeAndWhitespaceFreeNumericsStillParse)
{
    const Args args = makeArgs({"--delta=-3", "--scale=2.5e2"});
    EXPECT_EQ(args.getInt("delta", 0), -3);
    EXPECT_DOUBLE_EQ(args.getDouble("scale", 0.0), 250.0);
}

TEST(Table, AlignedRendering)
{
    Table t({"col", "value"});
    t.addRow({"x", Table::num(1.5, 2)});
    t.addRow({"longer-label", Table::count(42)});

    char buf[512] = {};
    std::FILE *mem = fmemopen(buf, sizeof(buf) - 1, "w");
    ASSERT_NE(mem, nullptr);
    t.print(mem);
    std::fclose(mem);

    const std::string out(buf);
    EXPECT_NE(out.find("col"), std::string::npos);
    EXPECT_NE(out.find("1.50"), std::string::npos);
    EXPECT_NE(out.find("longer-label"), std::string::npos);
    // Header separator line present.
    EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(Table, CsvRendering)
{
    Table t({"a", "b"});
    t.addRow({"1", "2"});
    char buf[256] = {};
    std::FILE *mem = fmemopen(buf, sizeof(buf) - 1, "w");
    t.printCsv(mem);
    std::fclose(mem);
    EXPECT_STREQ(buf, "a,b\n1,2\n");
}

TEST(Units, Conversions)
{
    EXPECT_EQ(units::fromNs(1.0), units::ns);
    EXPECT_EQ(units::fromNs(7.5), 7500);
    EXPECT_DOUBLE_EQ(units::toNs(units::fromNs(36.0)), 36.0);
    EXPECT_DOUBLE_EQ(units::toUs(7800 * units::ns), 7.8);
    EXPECT_EQ(units::ms, 1000 * units::us);
    EXPECT_EQ(units::us, 1000 * units::ns);
}

} // namespace
