file(REMOVE_RECURSE
  "CMakeFiles/test_datapattern.dir/test_datapattern.cc.o"
  "CMakeFiles/test_datapattern.dir/test_datapattern.cc.o.d"
  "test_datapattern"
  "test_datapattern.pdb"
  "test_datapattern[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_datapattern.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
