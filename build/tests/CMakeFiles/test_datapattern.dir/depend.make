# Empty dependencies file for test_datapattern.
# This may be replaced when dependencies are built.
