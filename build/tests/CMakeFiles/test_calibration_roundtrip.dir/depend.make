# Empty dependencies file for test_calibration_roundtrip.
# This may be replaced when dependencies are built.
