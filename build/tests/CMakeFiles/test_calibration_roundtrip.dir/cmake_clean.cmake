file(REMOVE_RECURSE
  "CMakeFiles/test_calibration_roundtrip.dir/test_calibration_roundtrip.cc.o"
  "CMakeFiles/test_calibration_roundtrip.dir/test_calibration_roundtrip.cc.o.d"
  "test_calibration_roundtrip"
  "test_calibration_roundtrip.pdb"
  "test_calibration_roundtrip[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_calibration_roundtrip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
