# Empty compiler generated dependencies file for test_hcfirst.
# This may be replaced when dependencies are built.
