file(REMOVE_RECURSE
  "CMakeFiles/test_hcfirst.dir/test_hcfirst.cc.o"
  "CMakeFiles/test_hcfirst.dir/test_hcfirst.cc.o.d"
  "test_hcfirst"
  "test_hcfirst.pdb"
  "test_hcfirst[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hcfirst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
