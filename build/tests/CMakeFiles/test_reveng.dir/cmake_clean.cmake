file(REMOVE_RECURSE
  "CMakeFiles/test_reveng.dir/test_reveng.cc.o"
  "CMakeFiles/test_reveng.dir/test_reveng.cc.o.d"
  "test_reveng"
  "test_reveng.pdb"
  "test_reveng[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reveng.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
