file(REMOVE_RECURSE
  "CMakeFiles/test_disturb.dir/test_disturb.cc.o"
  "CMakeFiles/test_disturb.dir/test_disturb.cc.o.d"
  "test_disturb"
  "test_disturb.pdb"
  "test_disturb[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_disturb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
