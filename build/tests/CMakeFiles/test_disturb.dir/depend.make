# Empty dependencies file for test_disturb.
# This may be replaced when dependencies are built.
