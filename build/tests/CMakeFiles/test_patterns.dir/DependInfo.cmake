
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_patterns.cc" "tests/CMakeFiles/test_patterns.dir/test_patterns.cc.o" "gcc" "tests/CMakeFiles/test_patterns.dir/test_patterns.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hammer/CMakeFiles/pud_hammer.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pud_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mitigation/CMakeFiles/pud_mitigation.dir/DependInfo.cmake"
  "/root/repo/build/src/pud/CMakeFiles/pud_ops.dir/DependInfo.cmake"
  "/root/repo/build/src/bender/CMakeFiles/pud_bender.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/pud_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/pud_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
