file(REMOVE_RECURSE
  "CMakeFiles/test_simra_decoder.dir/test_simra_decoder.cc.o"
  "CMakeFiles/test_simra_decoder.dir/test_simra_decoder.cc.o.d"
  "test_simra_decoder"
  "test_simra_decoder.pdb"
  "test_simra_decoder[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simra_decoder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
