# Empty compiler generated dependencies file for test_simra_decoder.
# This may be replaced when dependencies are built.
