file(REMOVE_RECURSE
  "CMakeFiles/test_pud_ops.dir/test_pud_ops.cc.o"
  "CMakeFiles/test_pud_ops.dir/test_pud_ops.cc.o.d"
  "test_pud_ops"
  "test_pud_ops.pdb"
  "test_pud_ops[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pud_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
