# Empty compiler generated dependencies file for test_pud_ops.
# This may be replaced when dependencies are built.
