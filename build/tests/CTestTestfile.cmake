# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_rng[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_datapattern[1]_include.cmake")
include("/root/repo/build/tests/test_mapping[1]_include.cmake")
include("/root/repo/build/tests/test_simra_decoder[1]_include.cmake")
include("/root/repo/build/tests/test_config[1]_include.cmake")
include("/root/repo/build/tests/test_disturb[1]_include.cmake")
include("/root/repo/build/tests/test_device[1]_include.cmake")
include("/root/repo/build/tests/test_executor[1]_include.cmake")
include("/root/repo/build/tests/test_patterns[1]_include.cmake")
include("/root/repo/build/tests/test_hcfirst[1]_include.cmake")
include("/root/repo/build/tests/test_tester[1]_include.cmake")
include("/root/repo/build/tests/test_reveng[1]_include.cmake")
include("/root/repo/build/tests/test_experiment[1]_include.cmake")
include("/root/repo/build/tests/test_mitigation[1]_include.cmake")
include("/root/repo/build/tests/test_pud_ops[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_host[1]_include.cmake")
include("/root/repo/build/tests/test_calibration_roundtrip[1]_include.cmake")
