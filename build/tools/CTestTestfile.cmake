# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_modules "/root/repo/build/tools/pudhammer" "modules")
set_tests_properties(cli_modules PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_hcfirst "/root/repo/build/tools/pudhammer" "hcfirst" "--module=HMA81GU7AFR8N-UH" "--technique=comra" "--victims=3")
set_tests_properties(cli_hcfirst PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_reveng "/root/repo/build/tools/pudhammer" "reveng" "--module=M391A2G43BB2-CWE" "--rows=64")
set_tests_properties(cli_reveng PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_attack "/root/repo/build/tools/pudhammer" "attack" "--technique=simra" "--n=8" "--hammers=50000" "--trr")
set_tests_properties(cli_attack PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_usage "/root/repo/build/tools/pudhammer")
set_tests_properties(cli_usage PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
