# Empty compiler generated dependencies file for pudhammer.
# This may be replaced when dependencies are built.
