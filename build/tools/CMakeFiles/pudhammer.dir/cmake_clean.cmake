file(REMOVE_RECURSE
  "CMakeFiles/pudhammer.dir/pudhammer_cli.cpp.o"
  "CMakeFiles/pudhammer.dir/pudhammer_cli.cpp.o.d"
  "pudhammer"
  "pudhammer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pudhammer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
