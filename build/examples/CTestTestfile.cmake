# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_rowclone_copy "/root/repo/build/examples/rowclone_copy")
set_tests_properties(example_rowclone_copy PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_trr_bypass_attack "/root/repo/build/examples/trr_bypass_attack" "--hammers=60000")
set_tests_properties(example_trr_bypass_attack PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_mitigation_explorer "/root/repo/build/examples/mitigation_explorer")
set_tests_properties(example_mitigation_explorer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_bitmap_analytics "/root/repo/build/examples/bitmap_analytics" "--queries=20000")
set_tests_properties(example_bitmap_analytics PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
