# Empty compiler generated dependencies file for bitmap_analytics.
# This may be replaced when dependencies are built.
