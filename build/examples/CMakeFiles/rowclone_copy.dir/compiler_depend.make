# Empty compiler generated dependencies file for rowclone_copy.
# This may be replaced when dependencies are built.
