file(REMOVE_RECURSE
  "CMakeFiles/rowclone_copy.dir/rowclone_copy.cpp.o"
  "CMakeFiles/rowclone_copy.dir/rowclone_copy.cpp.o.d"
  "rowclone_copy"
  "rowclone_copy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rowclone_copy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
