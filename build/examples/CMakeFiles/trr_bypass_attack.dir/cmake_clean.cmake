file(REMOVE_RECURSE
  "CMakeFiles/trr_bypass_attack.dir/trr_bypass_attack.cpp.o"
  "CMakeFiles/trr_bypass_attack.dir/trr_bypass_attack.cpp.o.d"
  "trr_bypass_attack"
  "trr_bypass_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trr_bypass_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
