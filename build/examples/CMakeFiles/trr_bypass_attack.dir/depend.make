# Empty dependencies file for trr_bypass_attack.
# This may be replaced when dependencies are built.
