file(REMOVE_RECURSE
  "libpud_ops.a"
)
