# Empty dependencies file for pud_ops.
# This may be replaced when dependencies are built.
