file(REMOVE_RECURSE
  "CMakeFiles/pud_ops.dir/engine.cc.o"
  "CMakeFiles/pud_ops.dir/engine.cc.o.d"
  "libpud_ops.a"
  "libpud_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pud_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
