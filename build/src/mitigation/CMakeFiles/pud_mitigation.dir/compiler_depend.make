# Empty compiler generated dependencies file for pud_mitigation.
# This may be replaced when dependencies are built.
