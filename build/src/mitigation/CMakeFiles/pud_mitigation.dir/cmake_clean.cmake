file(REMOVE_RECURSE
  "CMakeFiles/pud_mitigation.dir/countermeasures.cc.o"
  "CMakeFiles/pud_mitigation.dir/countermeasures.cc.o.d"
  "CMakeFiles/pud_mitigation.dir/prac.cc.o"
  "CMakeFiles/pud_mitigation.dir/prac.cc.o.d"
  "libpud_mitigation.a"
  "libpud_mitigation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pud_mitigation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
