file(REMOVE_RECURSE
  "libpud_mitigation.a"
)
