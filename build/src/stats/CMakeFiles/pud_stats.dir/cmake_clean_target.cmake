file(REMOVE_RECURSE
  "libpud_stats.a"
)
