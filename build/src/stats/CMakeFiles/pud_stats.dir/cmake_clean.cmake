file(REMOVE_RECURSE
  "CMakeFiles/pud_stats.dir/summary.cc.o"
  "CMakeFiles/pud_stats.dir/summary.cc.o.d"
  "libpud_stats.a"
  "libpud_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pud_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
