# Empty dependencies file for pud_stats.
# This may be replaced when dependencies are built.
