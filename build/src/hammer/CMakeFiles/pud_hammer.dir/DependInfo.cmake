
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hammer/experiment.cc" "src/hammer/CMakeFiles/pud_hammer.dir/experiment.cc.o" "gcc" "src/hammer/CMakeFiles/pud_hammer.dir/experiment.cc.o.d"
  "/root/repo/src/hammer/hcfirst.cc" "src/hammer/CMakeFiles/pud_hammer.dir/hcfirst.cc.o" "gcc" "src/hammer/CMakeFiles/pud_hammer.dir/hcfirst.cc.o.d"
  "/root/repo/src/hammer/patterns.cc" "src/hammer/CMakeFiles/pud_hammer.dir/patterns.cc.o" "gcc" "src/hammer/CMakeFiles/pud_hammer.dir/patterns.cc.o.d"
  "/root/repo/src/hammer/reveng.cc" "src/hammer/CMakeFiles/pud_hammer.dir/reveng.cc.o" "gcc" "src/hammer/CMakeFiles/pud_hammer.dir/reveng.cc.o.d"
  "/root/repo/src/hammer/tester.cc" "src/hammer/CMakeFiles/pud_hammer.dir/tester.cc.o" "gcc" "src/hammer/CMakeFiles/pud_hammer.dir/tester.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bender/CMakeFiles/pud_bender.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/pud_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/pud_dram.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
