file(REMOVE_RECURSE
  "CMakeFiles/pud_hammer.dir/experiment.cc.o"
  "CMakeFiles/pud_hammer.dir/experiment.cc.o.d"
  "CMakeFiles/pud_hammer.dir/hcfirst.cc.o"
  "CMakeFiles/pud_hammer.dir/hcfirst.cc.o.d"
  "CMakeFiles/pud_hammer.dir/patterns.cc.o"
  "CMakeFiles/pud_hammer.dir/patterns.cc.o.d"
  "CMakeFiles/pud_hammer.dir/reveng.cc.o"
  "CMakeFiles/pud_hammer.dir/reveng.cc.o.d"
  "CMakeFiles/pud_hammer.dir/tester.cc.o"
  "CMakeFiles/pud_hammer.dir/tester.cc.o.d"
  "libpud_hammer.a"
  "libpud_hammer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pud_hammer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
