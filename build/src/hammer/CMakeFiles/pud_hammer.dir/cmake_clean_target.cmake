file(REMOVE_RECURSE
  "libpud_hammer.a"
)
