# Empty dependencies file for pud_hammer.
# This may be replaced when dependencies are built.
