file(REMOVE_RECURSE
  "libpud_bender.a"
)
