file(REMOVE_RECURSE
  "CMakeFiles/pud_bender.dir/executor.cc.o"
  "CMakeFiles/pud_bender.dir/executor.cc.o.d"
  "libpud_bender.a"
  "libpud_bender.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pud_bender.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
