# Empty dependencies file for pud_bender.
# This may be replaced when dependencies are built.
