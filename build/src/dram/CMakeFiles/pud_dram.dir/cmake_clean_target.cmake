file(REMOVE_RECURSE
  "libpud_dram.a"
)
