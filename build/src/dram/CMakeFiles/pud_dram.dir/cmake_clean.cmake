file(REMOVE_RECURSE
  "CMakeFiles/pud_dram.dir/config.cc.o"
  "CMakeFiles/pud_dram.dir/config.cc.o.d"
  "CMakeFiles/pud_dram.dir/device.cc.o"
  "CMakeFiles/pud_dram.dir/device.cc.o.d"
  "CMakeFiles/pud_dram.dir/disturb.cc.o"
  "CMakeFiles/pud_dram.dir/disturb.cc.o.d"
  "libpud_dram.a"
  "libpud_dram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pud_dram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
