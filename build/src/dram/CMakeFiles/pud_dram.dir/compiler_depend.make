# Empty compiler generated dependencies file for pud_dram.
# This may be replaced when dependencies are built.
