# Empty dependencies file for pud_sim.
# This may be replaced when dependencies are built.
