file(REMOVE_RECURSE
  "CMakeFiles/pud_sim.dir/system.cc.o"
  "CMakeFiles/pud_sim.dir/system.cc.o.d"
  "CMakeFiles/pud_sim.dir/workload.cc.o"
  "CMakeFiles/pud_sim.dir/workload.cc.o.d"
  "libpud_sim.a"
  "libpud_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pud_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
