file(REMOVE_RECURSE
  "libpud_sim.a"
)
