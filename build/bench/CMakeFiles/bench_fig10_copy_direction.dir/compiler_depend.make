# Empty compiler generated dependencies file for bench_fig10_copy_direction.
# This may be replaced when dependencies are built.
