file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_copy_direction.dir/bench_fig10_copy_direction.cc.o"
  "CMakeFiles/bench_fig10_copy_direction.dir/bench_fig10_copy_direction.cc.o.d"
  "bench_fig10_copy_direction"
  "bench_fig10_copy_direction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_copy_direction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
