# Empty compiler generated dependencies file for bench_fig06_comra_temperature.
# This may be replaced when dependencies are built.
