file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_comra_temperature.dir/bench_fig06_comra_temperature.cc.o"
  "CMakeFiles/bench_fig06_comra_temperature.dir/bench_fig06_comra_temperature.cc.o.d"
  "bench_fig06_comra_temperature"
  "bench_fig06_comra_temperature.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_comra_temperature.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
