file(REMOVE_RECURSE
  "CMakeFiles/bench_fig19_simra_spatial.dir/bench_fig19_simra_spatial.cc.o"
  "CMakeFiles/bench_fig19_simra_spatial.dir/bench_fig19_simra_spatial.cc.o.d"
  "bench_fig19_simra_spatial"
  "bench_fig19_simra_spatial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig19_simra_spatial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
