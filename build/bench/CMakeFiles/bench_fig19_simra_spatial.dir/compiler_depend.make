# Empty compiler generated dependencies file for bench_fig19_simra_spatial.
# This may be replaced when dependencies are built.
