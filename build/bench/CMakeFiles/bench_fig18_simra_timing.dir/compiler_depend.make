# Empty compiler generated dependencies file for bench_fig18_simra_timing.
# This may be replaced when dependencies are built.
