# Empty compiler generated dependencies file for bench_fig11_comra_spatial.
# This may be replaced when dependencies are built.
