file(REMOVE_RECURSE
  "CMakeFiles/bench_fig24_trr_bypass.dir/bench_fig24_trr_bypass.cc.o"
  "CMakeFiles/bench_fig24_trr_bypass.dir/bench_fig24_trr_bypass.cc.o.d"
  "bench_fig24_trr_bypass"
  "bench_fig24_trr_bypass.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig24_trr_bypass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
