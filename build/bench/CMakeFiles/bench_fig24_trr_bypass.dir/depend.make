# Empty dependencies file for bench_fig24_trr_bypass.
# This may be replaced when dependencies are built.
