file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_comra_rowpress.dir/bench_fig08_comra_rowpress.cc.o"
  "CMakeFiles/bench_fig08_comra_rowpress.dir/bench_fig08_comra_rowpress.cc.o.d"
  "bench_fig08_comra_rowpress"
  "bench_fig08_comra_rowpress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_comra_rowpress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
