# Empty compiler generated dependencies file for bench_fig08_comra_rowpress.
# This may be replaced when dependencies are built.
