# Empty compiler generated dependencies file for bench_fig17_simra_rowpress.
# This may be replaced when dependencies are built.
