# Empty dependencies file for bench_fig16_simra_single_sided.
# This may be replaced when dependencies are built.
