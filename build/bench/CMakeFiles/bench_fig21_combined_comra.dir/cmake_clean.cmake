file(REMOVE_RECURSE
  "CMakeFiles/bench_fig21_combined_comra.dir/bench_fig21_combined_comra.cc.o"
  "CMakeFiles/bench_fig21_combined_comra.dir/bench_fig21_combined_comra.cc.o.d"
  "bench_fig21_combined_comra"
  "bench_fig21_combined_comra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig21_combined_comra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
