# Empty dependencies file for bench_fig21_combined_comra.
# This may be replaced when dependencies are built.
