# Empty dependencies file for bench_fig22_combined_simra.
# This may be replaced when dependencies are built.
