file(REMOVE_RECURSE
  "CMakeFiles/bench_fig22_combined_simra.dir/bench_fig22_combined_simra.cc.o"
  "CMakeFiles/bench_fig22_combined_simra.dir/bench_fig22_combined_simra.cc.o.d"
  "bench_fig22_combined_simra"
  "bench_fig22_combined_simra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig22_combined_simra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
