# Empty compiler generated dependencies file for bench_fig09_comra_timing.
# This may be replaced when dependencies are built.
