# Empty dependencies file for bench_ablation_damage_model.
# This may be replaced when dependencies are built.
