# Empty dependencies file for bench_fig14_simra_datapattern.
# This may be replaced when dependencies are built.
