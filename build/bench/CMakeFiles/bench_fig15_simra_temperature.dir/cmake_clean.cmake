file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_simra_temperature.dir/bench_fig15_simra_temperature.cc.o"
  "CMakeFiles/bench_fig15_simra_temperature.dir/bench_fig15_simra_temperature.cc.o.d"
  "bench_fig15_simra_temperature"
  "bench_fig15_simra_temperature.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_simra_temperature.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
