# Empty dependencies file for bench_fig15_simra_temperature.
# This may be replaced when dependencies are built.
