# Empty dependencies file for bench_fig25_prac_overhead.
# This may be replaced when dependencies are built.
