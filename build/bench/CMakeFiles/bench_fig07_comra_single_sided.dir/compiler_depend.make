# Empty compiler generated dependencies file for bench_fig07_comra_single_sided.
# This may be replaced when dependencies are built.
