file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_comra_single_sided.dir/bench_fig07_comra_single_sided.cc.o"
  "CMakeFiles/bench_fig07_comra_single_sided.dir/bench_fig07_comra_single_sided.cc.o.d"
  "bench_fig07_comra_single_sided"
  "bench_fig07_comra_single_sided.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_comra_single_sided.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
