# Empty compiler generated dependencies file for bench_fig23_combined_all.
# This may be replaced when dependencies are built.
