file(REMOVE_RECURSE
  "CMakeFiles/bench_fig23_combined_all.dir/bench_fig23_combined_all.cc.o"
  "CMakeFiles/bench_fig23_combined_all.dir/bench_fig23_combined_all.cc.o.d"
  "bench_fig23_combined_all"
  "bench_fig23_combined_all.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig23_combined_all.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
