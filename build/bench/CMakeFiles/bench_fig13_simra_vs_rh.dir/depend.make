# Empty dependencies file for bench_fig13_simra_vs_rh.
# This may be replaced when dependencies are built.
