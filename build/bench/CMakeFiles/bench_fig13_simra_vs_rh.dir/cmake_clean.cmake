file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_simra_vs_rh.dir/bench_fig13_simra_vs_rh.cc.o"
  "CMakeFiles/bench_fig13_simra_vs_rh.dir/bench_fig13_simra_vs_rh.cc.o.d"
  "bench_fig13_simra_vs_rh"
  "bench_fig13_simra_vs_rh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_simra_vs_rh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
