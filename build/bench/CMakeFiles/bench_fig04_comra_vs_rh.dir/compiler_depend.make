# Empty compiler generated dependencies file for bench_fig04_comra_vs_rh.
# This may be replaced when dependencies are built.
