file(REMOVE_RECURSE
  "CMakeFiles/bench_fig05_comra_datapattern.dir/bench_fig05_comra_datapattern.cc.o"
  "CMakeFiles/bench_fig05_comra_datapattern.dir/bench_fig05_comra_datapattern.cc.o.d"
  "bench_fig05_comra_datapattern"
  "bench_fig05_comra_datapattern.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_comra_datapattern.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
