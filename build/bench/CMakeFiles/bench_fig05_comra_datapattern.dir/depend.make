# Empty dependencies file for bench_fig05_comra_datapattern.
# This may be replaced when dependencies are built.
