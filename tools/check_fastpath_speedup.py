#!/usr/bin/env python3
"""Perf-regression gate for the executor loop fast-path.

Reads a google-benchmark JSON file (--benchmark_out of
bench_ablation_fastpath), pairs each fast-path-enabled run with its
fast-path-disabled twin at the same hammer count, and fails if any
pair's speedup falls below the floor.

Benchmarks encode their arguments in the name:
    BM_HammerProbe/0/100000   (fast-path off, 100K hammers)
    BM_HammerProbe/1/100000   (fast-path on,  100K hammers)
Pairs lacking a twin (e.g. the 700K fast-only points) are ignored.

Usage:
    check_fastpath_speedup.py BENCH_fastpath.json [--min 10] \
        [--hammers 100000]
"""

import argparse
import json
import sys


def parse_name(name):
    """Split 'BM_Foo/0/100000' -> ('BM_Foo', 0, 100000); None if not
    a two-argument benchmark name."""
    parts = name.split("/")
    if len(parts) != 3:
        return None
    try:
        return parts[0], int(parts[1]), int(parts[2])
    except ValueError:
        return None


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("json_file")
    ap.add_argument("--min", type=float, default=10.0,
                    help="minimum required fast/naive speedup")
    ap.add_argument("--hammers", type=int, default=100000,
                    help="only gate pairs at this hammer count "
                         "(0 = all counts)")
    args = ap.parse_args()

    with open(args.json_file) as f:
        data = json.load(f)

    # name -> {fast_flag -> real_time}
    times = {}
    for b in data.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        parsed = parse_name(b["name"])
        if parsed is None:
            continue
        family, fast, hammers = parsed
        times.setdefault((family, hammers), {})[fast] = b["real_time"]

    failures = []
    checked = 0
    for (family, hammers), by_mode in sorted(times.items()):
        if 0 not in by_mode or 1 not in by_mode:
            continue
        if args.hammers and hammers != args.hammers:
            continue
        speedup = by_mode[0] / by_mode[1]
        checked += 1
        status = "ok" if speedup >= args.min else "FAIL"
        print(f"{family} @ {hammers} hammers: "
              f"naive {by_mode[0]:.0f} ns, fast {by_mode[1]:.0f} ns, "
              f"speedup {speedup:.1f}x (floor {args.min:g}x) {status}")
        if speedup < args.min:
            failures.append((family, hammers, speedup))

    if checked == 0:
        print("error: no (fast, naive) benchmark pairs found "
              f"at hammers={args.hammers}", file=sys.stderr)
        return 2
    if failures:
        print(f"error: {len(failures)} pair(s) below the "
              f"{args.min:g}x floor", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
