#!/usr/bin/env python3
"""Schema validator for pud::obs JSONL traces.

Checks, line by line:
  - every line parses as a flat JSON object,
  - `ev` is a known event type and every required field is present
    with the right JSON type,
  - `ts` is monotonically non-decreasing in file order (the writer
    reads the clock under the same lock that serializes lines),
  - the first event is `trace_open` and (unless --allow-truncated)
    the last is `trace_close`.

Exits 0 when the trace is valid, 1 with a line-numbered diagnostic
otherwise.

Usage:
    check_trace.py TRACE.jsonl [--allow-truncated]
"""

import argparse
import json
import sys

NUM = (int, float)

# Required fields per event type: name -> JSON type(s).
SCHEMA = {
    "trace_open": {},
    "trace_close": {"wall_s": NUM},
    "program_start": {"insts": int},
    "program_end": {
        "device_ns": int,
        "wall_s": NUM,
        "reads": int,
        "fastpath_iters": int,
    },
    "plan_compile": {"hash": int, "insts": int, "loops": int},
    "plan_cache_hit": {"hash": int},
    "fastpath_record": {"loop": int, "it": int, "quiescent": bool},
    "fastpath_replay": {"loop": int, "replayed": int, "remaining": int},
    "phase_break": {"loop": int, "it": int},
    "naive_fallback": {"loop": int, "trip": int, "reason": str},
    "trr_evict": {"bank": int, "evicted": int, "row": int},
    "ref_anchor": {"slot": int, "start": int, "end": int,
                   "recording": bool},
    "trr_refresh": {"bank": int, "aggr": int, "victim": int},
    "parallel_for": {"jobs": int, "units": int, "wall_s": NUM},
    "sweep_start": {"module_id": str, "modules": int, "victims": int,
                    "measures": int, "shards": int, "jobs": int},
    "work_unit": {"module": int, "first_slot": int, "victims": int,
                  "units": int, "seconds": NUM, "fastpath_iters": int,
                  "plan_hits": int, "plan_misses": int},
    "sweep_end": {"wall_s": NUM, "units": int, "shards": int},
    "hc_probe": {"phase": str, "hammers": int, "flipped": bool,
                 "lo": int, "hi": int},
    "hc_result": {"found": bool, "hc": int},
}

NAIVE_REASONS = {"body-class", "cost-model", "strikes"}
HC_PHASES = {"ramp", "bisect"}


def check(path, allow_truncated):
    errors = []
    last_ts = None
    first_ev = None
    last_ev = None
    n = 0

    def err(lineno, msg):
        errors.append("%s:%d: %s" % (path, lineno, msg))

    with open(path, "r", encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                err(lineno, "blank line")
                continue
            n += 1
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as e:
                err(lineno, "invalid JSON: %s" % e)
                continue
            if not isinstance(obj, dict):
                err(lineno, "not a JSON object")
                continue

            ev = obj.get("ev")
            if first_ev is None:
                first_ev = ev
            last_ev = ev
            if ev not in SCHEMA:
                err(lineno, "unknown event type %r" % (ev,))
                continue

            ts = obj.get("ts")
            if not isinstance(ts, NUM) or isinstance(ts, bool):
                err(lineno, "missing/non-numeric ts")
            else:
                if last_ts is not None and ts < last_ts:
                    err(lineno,
                        "ts went backwards (%.6f after %.6f)"
                        % (ts, last_ts))
                last_ts = ts

            for field, want in SCHEMA[ev].items():
                if field not in obj:
                    err(lineno, "%s missing field %r" % (ev, field))
                    continue
                val = obj[field]
                # bool is an int subclass in Python; keep them apart.
                if want is int and (isinstance(val, bool)
                                    or not isinstance(val, int)):
                    err(lineno, "%s.%s: expected integer, got %r"
                        % (ev, field, val))
                elif want is bool and not isinstance(val, bool):
                    err(lineno, "%s.%s: expected bool, got %r"
                        % (ev, field, val))
                elif want is str and not isinstance(val, str):
                    err(lineno, "%s.%s: expected string, got %r"
                        % (ev, field, val))
                elif want is NUM and (isinstance(val, bool)
                                      or not isinstance(val, NUM)):
                    err(lineno, "%s.%s: expected number, got %r"
                        % (ev, field, val))

            if ev == "naive_fallback" and \
                    obj.get("reason") not in NAIVE_REASONS:
                err(lineno, "naive_fallback.reason %r not in %s"
                    % (obj.get("reason"), sorted(NAIVE_REASONS)))
            if ev == "hc_probe" and obj.get("phase") not in HC_PHASES:
                err(lineno, "hc_probe.phase %r not in %s"
                    % (obj.get("phase"), sorted(HC_PHASES)))

    if n == 0:
        errors.append("%s: empty trace" % path)
    else:
        if first_ev != "trace_open":
            errors.append("%s: first event is %r, expected trace_open"
                          % (path, first_ev))
        if last_ev != "trace_close" and not allow_truncated:
            errors.append("%s: last event is %r, expected trace_close"
                          % (path, last_ev))
    return n, errors


def main():
    ap = argparse.ArgumentParser(
        description="validate a pud::obs JSONL trace")
    ap.add_argument("trace", help="path to the .jsonl trace")
    ap.add_argument("--allow-truncated", action="store_true",
                    help="accept a trace without a final trace_close")
    args = ap.parse_args()

    n, errors = check(args.trace, args.allow_truncated)
    if errors:
        for e in errors[:50]:
            print(e, file=sys.stderr)
        if len(errors) > 50:
            print("... and %d more" % (len(errors) - 50),
                  file=sys.stderr)
        print("FAIL: %s: %d error(s) in %d event(s)"
              % (args.trace, len(errors), n), file=sys.stderr)
        return 1
    print("OK: %s: %d schema-valid events" % (args.trace, n))
    return 0


if __name__ == "__main__":
    sys.exit(main())
