#!/usr/bin/env python3
"""Schema validator for pud::fuzz JSONL corpora.

Checks:
  - line 1 is the header: schema "pud-fuzz-corpus-v1" with the
    campaign parameters, and `unique` equals the entry count while
    `unique + dedup_hits == candidates`,
  - every entry line parses as JSON with every required field of the
    right type, `idx` strictly increasing (generation order) and
    `hash` a unique 0x-prefixed 16-digit value,
  - `status` is one of static_skip / no_flip / effective, and the
    hc fields are consistent with it: effective entries carry
    hc_periods / hc_acts with hc_acts == hc_periods * acts_per_period,
    everything else carries nulls,
  - every component stays inside the generator's menus (tech name,
    stride >= 1, SiMRA group size in {2, 4, 8}).

Exits 0 when the corpus is valid, 1 with a line-numbered diagnostic
otherwise.

Usage:
    check_fuzz_corpus.py CORPUS.jsonl [--min-effective N]
"""

import argparse
import json
import sys

TECHS = {"rowhammer", "comra", "simra", "press"}
STATUSES = {"static_skip", "no_flip", "effective"}

HEADER_FIELDS = {
    "schema": str,
    "module": str,
    "seed": int,
    "candidates": int,
    "unique": int,
    "dedup_hits": int,
    "max_periods": int,
    "baseline_acts": int,
}

ENTRY_FIELDS = {
    "idx": int,
    "hash": str,
    "status": str,
    "trefis": int,
    "slots_per_trefi": int,
    "ref_sync": bool,
    "acts_per_period": int,
    "comps": list,
}

COMP_FIELDS = {
    "tech": str,
    "phase": int,
    "stride": int,
    "off_lo": int,
    "off_hi": int,
    "simra_n": int,
    "timing": int,
}


def fail(lineno, msg):
    print(f"check_fuzz_corpus: line {lineno}: {msg}", file=sys.stderr)
    sys.exit(1)


def check_fields(lineno, obj, fields, what):
    for name, typ in fields.items():
        if name not in obj:
            fail(lineno, f"{what} missing field {name!r}")
        if not isinstance(obj[name], typ) or (
            typ is int and isinstance(obj[name], bool)
        ):
            fail(lineno, f"{what} field {name!r} has wrong type")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("corpus")
    ap.add_argument(
        "--min-effective",
        type=int,
        default=0,
        help="require at least N effective entries",
    )
    args = ap.parse_args()

    with open(args.corpus, encoding="utf-8") as f:
        lines = f.read().splitlines()
    if not lines:
        fail(0, "empty corpus")

    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as e:
        fail(1, f"header is not JSON: {e}")
    check_fields(1, header, HEADER_FIELDS, "header")
    if header["schema"] != "pud-fuzz-corpus-v1":
        fail(1, f"unknown schema {header['schema']!r}")
    if header["unique"] + header["dedup_hits"] != header["candidates"]:
        fail(1, "unique + dedup_hits != candidates")
    if header["unique"] != len(lines) - 1:
        fail(1, f"header says {header['unique']} entries, "
                f"file has {len(lines) - 1}")

    prev_idx = -1
    hashes = set()
    effective = 0
    for lineno, line in enumerate(lines[1:], start=2):
        try:
            e = json.loads(line)
        except json.JSONDecodeError as exc:
            fail(lineno, f"not JSON: {exc}")
        check_fields(lineno, e, ENTRY_FIELDS, "entry")

        if e["idx"] <= prev_idx:
            fail(lineno, f"idx {e['idx']} not strictly increasing")
        prev_idx = e["idx"]
        if e["idx"] >= header["candidates"]:
            fail(lineno, f"idx {e['idx']} beyond candidate count")

        h = e["hash"]
        if len(h) != 18 or not h.startswith("0x"):
            fail(lineno, f"malformed hash {h!r}")
        try:
            int(h, 16)
        except ValueError:
            fail(lineno, f"malformed hash {h!r}")
        if h in hashes:
            fail(lineno, f"duplicate hash {h} survived dedup")
        hashes.add(h)

        if e["status"] not in STATUSES:
            fail(lineno, f"unknown status {e['status']!r}")
        if e["status"] == "effective":
            effective += 1
            for k in ("hc_periods", "hc_acts"):
                if not isinstance(e.get(k), int):
                    fail(lineno, f"effective entry needs integer {k}")
            if e["hc_acts"] != e["hc_periods"] * e["acts_per_period"]:
                fail(lineno,
                     "hc_acts != hc_periods * acts_per_period")
        else:
            for k in ("hc_periods", "hc_acts"):
                if e.get(k) is not None:
                    fail(lineno, f"{e['status']} entry must null {k}")

        if not (1 <= e["trefis"]):
            fail(lineno, "trefis must be >= 1")
        if e["slots_per_trefi"] < 1:
            fail(lineno, "slots_per_trefi must be >= 1")
        if not e["comps"]:
            fail(lineno, "entry has no components")
        for c in e["comps"]:
            if not isinstance(c, dict):
                fail(lineno, "component is not an object")
            check_fields(lineno, c, COMP_FIELDS, "component")
            if c["tech"] not in TECHS:
                fail(lineno, f"unknown tech {c['tech']!r}")
            if c["stride"] < 1:
                fail(lineno, "component stride must be >= 1")
            if c["tech"] == "simra" and c["simra_n"] not in (2, 4, 8):
                fail(lineno, f"bad simra_n {c['simra_n']}")

    if effective < args.min_effective:
        fail(len(lines),
             f"only {effective} effective entries, "
             f"need {args.min_effective}")

    print(f"check_fuzz_corpus: OK ({len(lines) - 1} entries, "
          f"{effective} effective)")


if __name__ == "__main__":
    main()
