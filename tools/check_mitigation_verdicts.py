#!/usr/bin/env python3
"""Soundness gate for the mitigation bypass certifier.

Runs `pudhammer diffcheck --mitigation=<mech> --json` for each
requested mechanism (or validates pre-captured JSON reports), checks
the report schema, and fails when

  - any soundness violation was recorded (a Certain verdict the
    executed mitigation contradicted),
  - any mismatch leaked in from the dataflow contract,
  - the seed budget did not populate every verdict class
    (mitigated-certain, bypass-certain, bypass-possible) -- a run
    that never exercises a class proves nothing about it, or
  - no victim row ever flipped in the unmitigated arm (the generator
    stopped producing flip-grade programs, so the MitigatedCertain
    half of the contract was tested against thin air).

Usage:
    check_mitigation_verdicts.py --binary PATH/TO/pudhammer \
        [--seeds 300] [--mechanisms trr,prac]
    check_mitigation_verdicts.py report_trr.json report_prac.json
"""

import argparse
import json
import subprocess
import sys

REQUIRED = {
    "mode": str,
    "programs": int,
    "instructions": int,
    "loops": int,
    "likelyVictims": int,
    "mitigatedCertainRows": int,
    "bypassCertainRows": int,
    "possibleRows": int,
    "flippedRows": int,
    "mismatches": int,
    "soundnessViolations": int,
}

# Verdict classes every healthy run must populate.
COVERAGE = ("mitigatedCertainRows", "bypassCertainRows", "possibleRows")


def fail(msg):
    print(f"check_mitigation_verdicts: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def validate(report, origin):
    for key, typ in REQUIRED.items():
        if key not in report:
            fail(f"{origin}: missing key '{key}'")
        if not isinstance(report[key], typ):
            fail(f"{origin}: key '{key}' is {type(report[key]).__name__},"
                 f" expected {typ.__name__}")
    if report["mode"] not in ("trr", "prac"):
        fail(f"{origin}: mode '{report['mode']}' is not a mitigation run")
    if report["programs"] == 0:
        fail(f"{origin}: zero programs checked")
    if report["soundnessViolations"] != 0:
        fail(f"{origin}: {report['soundnessViolations']} soundness "
             f"violation(s) across {report['programs']} programs")
    if report["mismatches"] != 0:
        fail(f"{origin}: {report['mismatches']} mismatch(es)")
    for key in COVERAGE:
        if report[key] == 0:
            fail(f"{origin}: verdict class '{key}' never populated "
                 f"({report['programs']} programs) -- the run cannot "
                 f"witness that class's contract")
    if report["flippedRows"] == 0:
        fail(f"{origin}: no victim row ever flipped unmitigated; the "
             f"generator produced no flip-grade programs")
    print(f"check_mitigation_verdicts: {origin}: OK -- "
          f"{report['programs']} programs, "
          f"{report['mitigatedCertainRows']} mitigated-certain, "
          f"{report['bypassCertainRows']} bypass-certain, "
          f"{report['possibleRows']} refused, "
          f"{report['flippedRows']} flipped, 0 violations")


def run_binary(binary, mech, seeds):
    cmd = [binary, "diffcheck", f"--mitigation={mech}",
           f"--seeds={seeds}", "--json"]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        fail(f"{' '.join(cmd)} exited {proc.returncode}: "
             f"{proc.stdout}{proc.stderr}")
    try:
        return json.loads(proc.stdout)
    except json.JSONDecodeError as e:
        fail(f"{' '.join(cmd)}: bad JSON ({e}): {proc.stdout!r}")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("reports", nargs="*",
                    help="pre-captured --json reports to validate")
    ap.add_argument("--binary", help="pudhammer binary to invoke")
    ap.add_argument("--seeds", type=int, default=300)
    ap.add_argument("--mechanisms", default="trr,prac")
    args = ap.parse_args()

    if not args.reports and not args.binary:
        fail("pass report files or --binary")

    for path in args.reports:
        with open(path, encoding="utf-8") as f:
            validate(json.load(f), path)

    if args.binary:
        for mech in args.mechanisms.split(","):
            mech = mech.strip()
            if not mech:
                continue
            validate(run_binary(args.binary, mech, args.seeds),
                     f"{mech} x{args.seeds}")

    print("check_mitigation_verdicts: all gates passed")


if __name__ == "__main__":
    main()
