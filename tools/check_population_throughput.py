#!/usr/bin/env python3
"""Schema check + perf-regression gate for the population sweep bench.

Validates a BENCH_population.json written by bench_population_scale
and fails if hammers/sec regressed more than the allowed fraction
against a recorded baseline (bench/baselines/population_baseline.json
by default).

Throughput is absolute, so cross-machine comparisons are only
meaningful against a baseline recorded on comparable hardware; CI
passes an explicit --max-regress tuned for runner variance, and a
baseline refresh is just `--update-baseline` on the reference box.

Beyond throughput, two scale invariants are gated unconditionally:
  * peak RSS must stay sublinear in the module count relative to the
    baseline (the lazy-threshold guarantee), and
  * populated rows per module must not grow (a regression there means
    the sweep started materializing rows it never touches).

Usage:
    check_population_throughput.py BENCH_population.json \
        [--baseline bench/baselines/population_baseline.json] \
        [--max-regress 0.10] [--update-baseline]
"""

import argparse
import json
import shutil
import sys

# Key -> required type(s).  `int` also admits bool in Python, so bool
# is explicitly rejected below.
SCHEMA = {
    "bench": str,
    "module_id": str,
    "modules": int,
    "victims_per_module": int,
    "measures": int,
    "work_units": int,
    "shards": int,
    "resumed_shards": int,
    "jobs": int,
    "wall_seconds": (int, float),
    "acts": int,
    "hammers_per_sec": (int, float),
    "work_units_per_sec": (int, float),
    "peak_rss_bytes": int,
    "populated_rows_per_module_max": int,
}


def load_record(path):
    with open(path) as f:
        data = json.load(f)
    errors = []
    for key, types in SCHEMA.items():
        if key not in data:
            errors.append(f"missing key {key!r}")
        elif isinstance(data[key], bool) or \
                not isinstance(data[key], types):
            errors.append(f"key {key!r} has type "
                          f"{type(data[key]).__name__}")
    if data.get("bench") != "population_scale":
        errors.append(f"bench is {data.get('bench')!r}, expected "
                      "'population_scale'")
    if errors:
        for e in errors:
            print(f"{path}: schema error: {e}", file=sys.stderr)
        sys.exit(2)
    return data


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("json_file")
    ap.add_argument("--baseline",
                    default="bench/baselines/population_baseline.json")
    ap.add_argument("--max-regress", type=float, default=0.10,
                    help="maximum tolerated fractional hammers/sec "
                         "drop vs baseline (default 0.10)")
    ap.add_argument("--update-baseline", action="store_true",
                    help="record json_file as the new baseline "
                         "instead of gating")
    args = ap.parse_args()

    cur = load_record(args.json_file)
    print(f"{args.json_file}: schema ok "
          f"({cur['modules']} modules, {cur['work_units']} units, "
          f"{cur['hammers_per_sec']:.3g} hammers/s, "
          f"peak RSS {cur['peak_rss_bytes'] / 2**20:.1f} MiB)")

    if args.update_baseline:
        shutil.copyfile(args.json_file, args.baseline)
        print(f"baseline updated: {args.baseline}")
        return 0

    base = load_record(args.baseline)
    if cur["module_id"] != base["module_id"]:
        print(f"error: module_id {cur['module_id']!r} does not match "
              f"baseline {base['module_id']!r}; throughput is not "
              "comparable across families", file=sys.stderr)
        return 2

    failures = []

    # Throughput: hammers/sec within --max-regress of the baseline.
    # Scale (modules) may differ between run and baseline -- rates are
    # already per-second.
    ratio = cur["hammers_per_sec"] / base["hammers_per_sec"]
    status = "ok" if ratio >= 1.0 - args.max_regress else "FAIL"
    print(f"hammers/sec: {cur['hammers_per_sec']:.3g} vs baseline "
          f"{base['hammers_per_sec']:.3g} ({ratio:.2f}x, floor "
          f"{1.0 - args.max_regress:.2f}x) {status}")
    if status == "FAIL":
        failures.append("hammers/sec regression")

    # Lazy thresholds: RSS per module must not trend back toward
    # linear.  Comparing rss/modules directly penalizes small runs
    # (the fixed process footprint dominates), so gate on the
    # *absolute* RSS staying below baseline-RSS scaled by any module
    # growth, with 2x headroom.
    scale = max(1.0, cur["modules"] / base["modules"])
    rss_cap = 2.0 * base["peak_rss_bytes"] * scale
    status = "ok" if cur["peak_rss_bytes"] <= rss_cap else "FAIL"
    print(f"peak RSS: {cur['peak_rss_bytes'] / 2**20:.1f} MiB "
          f"(cap {rss_cap / 2**20:.1f} MiB at {cur['modules']} "
          f"modules) {status}")
    if status == "FAIL":
        failures.append("peak RSS grew superlinearly")

    status = ("ok" if cur["populated_rows_per_module_max"] <=
              base["populated_rows_per_module_max"] else "FAIL")
    print(f"populated rows/module: "
          f"{cur['populated_rows_per_module_max']} vs baseline "
          f"{base['populated_rows_per_module_max']} {status}")
    if status == "FAIL":
        failures.append("lazy materialization touches more rows")

    if failures:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1
    print("population throughput gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
