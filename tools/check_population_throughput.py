#!/usr/bin/env python3
"""Schema check + perf-regression gate for the population sweep bench.

Validates a BENCH_population.json written by bench_population_scale
and fails if hammers/sec regressed more than the allowed fraction
against a recorded baseline (bench/baselines/population_baseline.json
by default).

Throughput is absolute, so cross-machine comparisons are only
meaningful against a baseline recorded on comparable hardware; CI
passes an explicit --max-regress tuned for runner variance, and a
baseline refresh is just `--update-baseline` on the reference box.

Beyond throughput, two scale invariants are gated unconditionally:
  * aggregate RSS must stay sublinear in the module count relative to
    the baseline (the lazy-threshold guarantee, summed across worker
    processes for multi-process runs), and
  * populated rows per module must not grow (a regression there means
    the sweep started materializing rows it never touches).

Multi-process scaling (--scan-workers runs) is gated opt-in with
--min-worker-speedup: the "scaling" array must show the largest worker
count reaching at least that speedup over workers=1.  CI derives the
floor from the runner's core count -- demanding 5x from a 1-core
container would only test the scheduler's sense of humor.

Usage:
    check_population_throughput.py BENCH_population.json \
        [--baseline bench/baselines/population_baseline.json] \
        [--max-regress 0.10] [--min-worker-speedup X] \
        [--update-baseline]
"""

import argparse
import json
import shutil
import sys

# Key -> required type(s).  `int` also admits bool in Python, so bool
# is explicitly rejected below.
SCHEMA = {
    "bench": str,
    "module_id": str,
    "modules": int,
    "victims_per_module": int,
    "measures": int,
    "work_units": int,
    "shards": int,
    "resumed_shards": int,
    "jobs": int,
    "workers": int,
    "wall_seconds": (int, float),
    "acts": int,
    "hammers_per_sec": (int, float),
    "work_units_per_sec": (int, float),
    "peak_rss_bytes": int,
    "aggregate_rss_bytes": int,
    "populated_rows_per_module_max": int,
}

# Per-entry schema of the optional "scaling" array (--scan-workers).
SCALING_SCHEMA = {
    "workers": int,
    "wall_seconds": (int, float),
    "acts": int,
    "hammers_per_sec": (int, float),
    "aggregate_rss_bytes": int,
}


def check_keys(data, schema, errors, where=""):
    for key, types in schema.items():
        if key not in data:
            errors.append(f"missing key {where}{key!r}")
        elif isinstance(data[key], bool) or \
                not isinstance(data[key], types):
            errors.append(f"key {where}{key!r} has type "
                          f"{type(data[key]).__name__}")


def load_record(path):
    with open(path) as f:
        data = json.load(f)
    errors = []
    check_keys(data, SCHEMA, errors)
    if data.get("bench") != "population_scale":
        errors.append(f"bench is {data.get('bench')!r}, expected "
                      "'population_scale'")
    scaling = data.get("scaling")
    if scaling is not None:
        if not isinstance(scaling, list):
            errors.append("key 'scaling' is not a list")
        else:
            for i, entry in enumerate(scaling):
                if not isinstance(entry, dict):
                    errors.append(f"scaling[{i}] is not an object")
                else:
                    check_keys(entry, SCALING_SCHEMA, errors,
                               where=f"scaling[{i}].")
    if errors:
        for e in errors:
            print(f"{path}: schema error: {e}", file=sys.stderr)
        sys.exit(2)
    return data


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("json_file")
    ap.add_argument("--baseline",
                    default="bench/baselines/population_baseline.json")
    ap.add_argument("--max-regress", type=float, default=0.10,
                    help="maximum tolerated fractional hammers/sec "
                         "drop vs baseline (default 0.10)")
    ap.add_argument("--min-worker-speedup", type=float, default=None,
                    help="require the scaling array's largest worker "
                         "count to reach this speedup over workers=1")
    ap.add_argument("--update-baseline", action="store_true",
                    help="record json_file as the new baseline "
                         "instead of gating")
    args = ap.parse_args()

    cur = load_record(args.json_file)
    print(f"{args.json_file}: schema ok "
          f"({cur['modules']} modules, {cur['work_units']} units, "
          f"{cur['hammers_per_sec']:.3g} hammers/s, "
          f"workers {cur['workers']}, aggregate RSS "
          f"{cur['aggregate_rss_bytes'] / 2**20:.1f} MiB)")

    if args.update_baseline:
        shutil.copyfile(args.json_file, args.baseline)
        print(f"baseline updated: {args.baseline}")
        return 0

    base = load_record(args.baseline)
    if cur["module_id"] != base["module_id"]:
        print(f"error: module_id {cur['module_id']!r} does not match "
              f"baseline {base['module_id']!r}; throughput is not "
              "comparable across families", file=sys.stderr)
        return 2

    failures = []

    # Throughput: hammers/sec within --max-regress of the baseline.
    # Scale (modules) may differ between run and baseline -- rates are
    # already per-second.
    ratio = cur["hammers_per_sec"] / base["hammers_per_sec"]
    status = "ok" if ratio >= 1.0 - args.max_regress else "FAIL"
    print(f"hammers/sec: {cur['hammers_per_sec']:.3g} vs baseline "
          f"{base['hammers_per_sec']:.3g} ({ratio:.2f}x, floor "
          f"{1.0 - args.max_regress:.2f}x) {status}")
    if status == "FAIL":
        failures.append("hammers/sec regression")

    # Lazy thresholds: RSS per module must not trend back toward
    # linear.  Comparing rss/modules directly penalizes small runs
    # (the fixed process footprint dominates), so gate on the
    # *absolute* RSS staying below baseline-RSS scaled by any module
    # growth, with 2x headroom.  The multi-process figure is the sum
    # of worker peaks; scale its cap by any worker-count growth too
    # (each process pays the fixed footprint once).
    scale = max(1.0, cur["modules"] / base["modules"])
    procs = max(1.0,
                max(1, cur["workers"]) / max(1, base["workers"]))
    rss_cap = 2.0 * base["aggregate_rss_bytes"] * scale * procs
    status = ("ok" if cur["aggregate_rss_bytes"] <= rss_cap
              else "FAIL")
    print(f"aggregate RSS: {cur['aggregate_rss_bytes'] / 2**20:.1f} "
          f"MiB (cap {rss_cap / 2**20:.1f} MiB at {cur['modules']} "
          f"modules, {max(1, cur['workers'])} workers) {status}")
    if status == "FAIL":
        failures.append("aggregate RSS grew superlinearly")

    status = ("ok" if cur["populated_rows_per_module_max"] <=
              base["populated_rows_per_module_max"] else "FAIL")
    print(f"populated rows/module: "
          f"{cur['populated_rows_per_module_max']} vs baseline "
          f"{base['populated_rows_per_module_max']} {status}")
    if status == "FAIL":
        failures.append("lazy materialization touches more rows")

    # Multi-process scaling gate (opt-in; CI derives the floor from
    # the runner's core count).
    if args.min_worker_speedup is not None:
        scaling = cur.get("scaling") or []
        by_workers = {e["workers"]: e for e in scaling}
        if 1 not in by_workers or len(by_workers) < 2:
            print("FAIL: --min-worker-speedup needs a scaling array "
                  "with workers=1 and at least one larger count",
                  file=sys.stderr)
            failures.append("scaling data missing")
        else:
            top = max(by_workers)
            speedup = (by_workers[top]["hammers_per_sec"] /
                       by_workers[1]["hammers_per_sec"])
            status = ("ok" if speedup >= args.min_worker_speedup
                      else "FAIL")
            print(f"worker scaling: {speedup:.2f}x at workers={top} "
                  f"(floor {args.min_worker_speedup:.2f}x) {status}")
            if status == "FAIL":
                failures.append("worker scaling below floor")

    if failures:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1
    print("population throughput gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
