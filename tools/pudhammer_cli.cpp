/**
 * @file
 * pudhammer — command-line front-end over the characterization
 * library, for exploring simulated modules without writing C++.
 *
 *   pudhammer modules
 *       list the Table 2 module families
 *   pudhammer reveng   --module=ID [--seed=N]
 *       recover mapping scheme, subarray bounds, SiMRA support, TRR
 *   pudhammer hcfirst  --module=ID --technique=rh|comra|simra
 *                      [--n=4] [--victims=K] [--temp=C] [--seed=N]
 *                      [--pattern=0x55|0xAA|0x00|0xFF|wcdp] [--jobs=N]
 *       HC_first distribution for a victim population
 *   pudhammer attack   --module=ID --technique=rh|comra|simra
 *                      [--trr] [--hammers=N] [--seed=N]
 *       run the §7 bitflip-count experiment
 *   pudhammer lint     --program=NAME [--module=ID|--profile=ID]
 *                      [--hammers=N] [--effects] [--json|--sarif]
 *                      [--werror]
 *       statically analyze a canonical or demo test program
 */

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>

#include "exec/pool.h"
#include "hammer/experiment.h"
#include "hammer/reveng.h"
#include "lint/effects.h"
#include "lint/linter.h"
#include "lint/report.h"
#include "stats/summary.h"
#include "util/args.h"
#include "util/table.h"

using namespace pud;
using namespace pud::hammer;

namespace {

int
cmdModules()
{
    Table table({"module", "mfr", "density", "die", "org", "#mods",
                 "#chips", "SiMRA"});
    for (const auto &f : dram::table2Families()) {
        table.addRow({f.moduleId, dram::name(f.mfr), f.density,
                      f.dieRev, f.org, Table::count(f.numModules),
                      Table::count(f.numChips),
                      f.supportsSimra ? "yes" : "no"});
    }
    table.print();
    return 0;
}

dram::DeviceConfig
configFrom(const Args &args)
{
    // --profile is the lint-facing alias: "lint this program as if it
    // ran on family X" reads better than --module there, but both
    // select the same Table 2 calibration profile everywhere.
    const std::string module =
        args.get("profile", args.get("module", "HMA81GU7AFR8N-UH"));
    dram::DeviceConfig cfg = dram::makeConfig(
        module, static_cast<std::uint64_t>(args.getInt("seed", 1)));
    cfg.rowsPerSubarray = static_cast<dram::RowId>(
        args.getInt("rows", 128));
    return cfg;
}

int
cmdReveng(const Args &args)
{
    ModuleTester tester(configFrom(args));
    std::printf("module          : %s\n",
                tester.device().config().profile.moduleId.c_str());
    std::printf("mapping scheme  : %s\n",
                dram::name(identifyMappingScheme(tester, 0)));
    const auto bounds = findSubarrayBoundaries(tester, 0);
    std::printf("subarrays       : %zu (first boundary at row %u)\n",
                bounds.size(),
                bounds.size() > 1 ? bounds[1]
                                  : tester.device().rowsPerBank());
    const auto group = discoverSimraGroup(
        tester, 0, tester.device().toLogical(64),
        tester.device().toLogical(70));
    std::printf("SiMRA support   : %s (ACT(64)-PRE-ACT(70) activates "
                "%zu rows)\n",
                group.size() > 1 ? "yes" : "no", group.size());
    std::printf("TRR (as shipped): %s\n",
                detectTrr(tester, 0) ? "present" : "not detected");
    tester.device().setTrrEnabled(true);
    std::printf("TRR (enabled)   : %s\n",
                detectTrr(tester, 0) ? "present" : "not detected");
    return 0;
}

int
cmdHcFirst(const Args &args)
{
    const std::string technique = args.get("technique", "rh");
    const int n = static_cast<int>(args.getInt("n", 4));
    const double temp = args.getDouble("temp", 80.0);

    ModuleTester::Options opt;
    const std::string pattern = args.get("pattern", "wcdp");
    if (pattern == "wcdp") {
        opt.searchWcdp = true;
    } else if (pattern == "0x55") {
        opt.pattern = dram::DataPattern::P55;
    } else if (pattern == "0xAA") {
        opt.pattern = dram::DataPattern::PAA;
    } else if (pattern == "0x00") {
        opt.pattern = dram::DataPattern::P00;
    } else if (pattern == "0xFF") {
        opt.pattern = dram::DataPattern::PFF;
    } else {
        fatal("unknown --pattern=%s", pattern.c_str());
    }

    MeasureFn measure;
    if (technique == "rh")
        measure = [opt](ModuleTester &t, dram::RowId v) {
            return t.rhDouble(v, opt);
        };
    else if (technique == "comra")
        measure = [opt](ModuleTester &t, dram::RowId v) {
            return t.comraDouble(v, opt);
        };
    else if (technique == "simra")
        measure = [opt, n](ModuleTester &t, dram::RowId v) {
            return t.simraDouble(v, n, opt);
        };
    else
        fatal("unknown --technique=%s (rh|comra|simra)",
              technique.c_str());

    // Route through the population runner so the sweep parallelizes
    // under --jobs.  With jobs > 1 the victim list is cut into fixed
    // chunks (independent of the jobs value), so any --jobs=N output
    // matches any other --jobs=M > 1 bit for bit; --jobs=1 is the
    // legacy serial path on one tester.
    PopulationConfig pop;
    pop.moduleId = args.get("module", "HMA81GU7AFR8N-UH");
    pop.modules = 1;
    pop.victimsPerSubarray =
        static_cast<dram::RowId>(args.getInt("victims", 8));
    pop.oddOnly = technique == "simra";
    pop.seed = static_cast<std::uint64_t>(args.getInt("seed", 1));
    pop.rowsPerSubarray =
        static_cast<dram::RowId>(args.getInt("rows", 128));
    pop.jobs = exec::resolveJobs(
        static_cast<int>(args.getInt("jobs", 1)));
    pop.perVictimChunks = pop.jobs > 1;
    pop.setup = [temp](ModuleTester &t) {
        t.bench().thermo().setTarget(temp);
    };

    const auto series = measurePopulation(pop, {measure});

    std::vector<double> hcs;
    std::size_t noflip = 0;
    for (double hc : series[0]) {
        if (std::isnan(hc))
            ++noflip;
        else
            hcs.push_back(hc);
    }

    const auto bs = stats::boxStats(hcs);
    std::printf("technique %s%s, %zu victims (%zu without flips in "
                "budget)\n",
                technique.c_str(),
                technique == "simra"
                    ? ("-" + std::to_string(n)).c_str()
                    : "",
                series[0].size(), noflip);
    std::printf("HC_first min/q1/median/q3/max: %s\n",
                bs.str().c_str());
    return 0;
}

int
cmdAttack(const Args &args)
{
    const std::string technique = args.get("technique", "simra");
    TrrTechnique tech;
    if (technique == "rh")
        tech = TrrTechnique::RowHammer;
    else if (technique == "comra")
        tech = TrrTechnique::Comra;
    else if (technique == "simra")
        tech = TrrTechnique::Simra;
    else
        fatal("unknown --technique=%s", technique.c_str());

    TrrConfig cfg;
    cfg.nSided = static_cast<int>(args.getInt("n", 2));
    cfg.simraN = static_cast<int>(args.getInt("n", 16));
    cfg.hammersPerAggressor = static_cast<std::uint64_t>(
        args.getInt("hammers", 150000));

    ModuleTester tester(configFrom(args));
    const bool trr = args.has("trr");
    const auto flips = runTrrExperiment(tester, tech, cfg, trr);
    std::printf("%s attack, %llu hammers/aggressor, TRR %s: "
                "%llu bitflips\n",
                name(tech),
                static_cast<unsigned long long>(
                    cfg.hammersPerAggressor),
                trr ? "on" : "off",
                static_cast<unsigned long long>(flips));
    return 0;
}

/**
 * Build the named program for `lint`.  Canonical patterns use the
 * same geometry the characterization front-end uses (mid-subarray
 * physical rows, translated through the module's mapping); the demo-*
 * programs exhibit the bug classes the analyzer exists to catch.
 */
bender::Program
lintProgramByName(const std::string &name, const dram::DeviceConfig &cfg,
                  std::uint64_t hammers)
{
    const dram::RowMapping mapping(cfg.profile.mapping);
    // Physical rows in the middle of subarray 0: victim v (odd),
    // sandwiched by v-1 / v+1; the SiMRA pair (v-1, v-1 ^ 0b110)
    // bit-combines to a 4-row group (see planSimraDouble).
    const dram::RowId v = (cfg.rowsPerSubarray / 2) | 1;
    const dram::RowId lo = mapping.toLogical(v - 1);
    const dram::RowId hi = mapping.toLogical(v + 1);
    const dram::RowId simra2 = mapping.toLogical((v - 1) ^ 0b110);
    const PatternTimings t;
    const dram::TimingParams &nominal = t.base;

    if (name == "rh")
        return doubleSidedRowHammer(0, lo, hi, hammers, t);
    if (name == "comra")
        return comraHammer(0, lo, hi, hammers, t);
    if (name == "simra")
        return simraHammer(0, lo, simra2, hammers, t);
    if (name == "combined") {
        CombinedCounts counts;
        counts.comra = hammers / 4;
        counts.simra = hammers / 4;
        counts.rowHammer = hammers;
        return combinedPattern(0, lo, hi, lo, hi, lo, simra2, counts, t);
    }
    if (name == "trr-rh")
        return trrBypassPattern(0, {lo, hi}, mapping.toLogical(4), false,
                                hammers / 156 + 1, t);
    if (name == "trr-simra")
        return trrSimraPattern(0, lo, simra2, hammers / 78 + 1, t);

    if (name == "demo-unbalanced") {
        bender::Program p;
        p.loopBegin(hammers).act(0, lo, nominal.tRP).pre(0, nominal.tRAS);
        return p;  // missing loopEnd
    }
    if (name == "demo-bad-wr") {
        bender::Program p;
        p.act(0, lo, nominal.tRP)
            .wr(0, 7, nominal.tRCD)  // index 7 into an empty data table
            .pre(0, nominal.tRAS);
        return p;
    }
    if (name == "demo-subtrp") {
        // A PRE->ACT gap between the CoMRA window (13.0 ns) and
        // nominal tRP (13.75 ns): violates tRP without copying --
        // exactly the accidental violation that corrupts sweeps.
        bender::Program p;
        p.act(0, lo, nominal.tRP)
            .pre(0, nominal.tRAS)
            .act(0, hi, units::fromNs(13.4))
            .pre(0, nominal.tRAS);
        return p;
    }
    if (name == "demo-broken") {
        // All three bug classes at once (the acceptance showcase).
        bender::Program p;
        p.act(0, lo, nominal.tRP)
            .pre(0, nominal.tRAS)
            .act(0, hi, units::fromNs(13.4))  // accidental sub-tRP
            .wr(0, 7, nominal.tRCD)           // out-of-range data index
            .pre(0, nominal.tRAS)
            .loopBegin(hammers)               // never closed
            .act(0, lo, nominal.tRP)
            .pre(0, nominal.tRAS);
        return p;
    }
    fatal("unknown --program=%s (rh|comra|simra|combined|trr-rh|"
          "trr-simra|demo-unbalanced|demo-bad-wr|demo-subtrp|"
          "demo-broken)",
          name.c_str());
}

int
cmdLint(const Args &args)
{
    const dram::DeviceConfig cfg = configFrom(args);
    const std::string program_name = args.get("program", "demo-broken");
    const bender::Program program = lintProgramByName(
        program_name, cfg,
        static_cast<std::uint64_t>(args.getInt("hammers", 100000)));

    lint::LintOptions opts;
    opts.effects = args.has("effects");
    lint::EffectReport report;
    const lint::LintResult result =
        lint::lintProgram(program, cfg, opts,
                          opts.effects ? &report : nullptr);

    if (args.has("sarif")) {
        lint::printSarif(result, program);
    } else if (args.has("json")) {
        lint::printJson(result, program);
    } else {
        lint::printReport(result, program);
        if (opts.effects && !report.victims.empty()) {
            std::printf("\npredicted victims on %s "
                        "(damage as a fraction of the flip threshold):\n",
                        cfg.profile.moduleId.c_str());
            Table table({"bank", "phys row", "weighted closes",
                         "optimistic", "typical", "verdict"});
            for (const auto &v : report.victims) {
                table.addRow(
                    {Table::count(v.bank), Table::count(v.victimPhys),
                     Table::num(v.weightedCloses),
                     Table::num(v.optimisticDamage, 3),
                     Table::num(v.typicalDamage, 3),
                     v.verdict == lint::Verdict::Likely ? "likely"
                                                        : "impossible"});
            }
            table.print(stdout);
        }
    }

    if (!result.clean())
        return 1;
    if (args.has("werror") && result.count(lint::Severity::Warning) > 0)
        return 1;
    return 0;
}

void
usage()
{
    std::printf(
        "usage: pudhammer <command> [options]\n"
        "  modules                      list Table 2 module families\n"
        "  reveng  --module=ID          reverse engineer a module\n"
        "  hcfirst --module=ID --technique=rh|comra|simra [--n=4]\n"
        "          [--victims=K] [--temp=C] [--pattern=...|wcdp]\n"
        "          [--jobs=N]  (N threads; 0 = all cores, 1 = serial;\n"
        "           results are identical for every N > 1)\n"
        "  attack  --module=ID --technique=rh|comra|simra [--trr]\n"
        "          [--hammers=N]\n"
        "  lint    --program=rh|comra|simra|combined|trr-rh|trr-simra\n"
        "          |demo-unbalanced|demo-bad-wr|demo-subtrp|demo-broken\n"
        "          [--module=ID | --profile=ID] [--hammers=N]\n"
        "          [--effects] [--json | --sarif] [--werror]\n"
        "          (--effects: static disturbance prediction;\n"
        "           --werror: warnings also exit nonzero)\n"
        "common: --seed=N --rows=N (rows per subarray)\n");
}

} // namespace

int
main(int argc, char **argv)
{
    const Args args(argc, argv);
    if (args.positional().empty()) {
        usage();
        return 2;
    }
    const std::string &cmd = args.positional().front();
    if (cmd == "modules")
        return cmdModules();
    if (cmd == "reveng")
        return cmdReveng(args);
    if (cmd == "hcfirst")
        return cmdHcFirst(args);
    if (cmd == "attack")
        return cmdAttack(args);
    if (cmd == "lint")
        return cmdLint(args);
    usage();
    return 2;
}
