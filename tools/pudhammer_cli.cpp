/**
 * @file
 * pudhammer — command-line front-end over the characterization
 * library, for exploring simulated modules without writing C++.
 *
 *   pudhammer modules
 *       list the Table 2 module families
 *   pudhammer reveng   --module=ID [--seed=N]
 *       recover mapping scheme, subarray bounds, SiMRA support, TRR
 *   pudhammer hcfirst  --module=ID --technique=rh|comra|simra
 *                      [--n=4] [--victims=K] [--temp=C] [--seed=N]
 *                      [--pattern=0x55|0xAA|0x00|0xFF|wcdp] [--jobs=N]
 *       HC_first distribution for a victim population
 *   pudhammer attack   --module=ID --technique=rh|comra|simra
 *                      [--trr] [--hammers=N] [--seed=N]
 *       run the §7 bitflip-count experiment
 *   pudhammer lint     --program=NAME [--module=ID|--profile=ID]
 *                      [--hammers=N] [--effects] [--json|--sarif]
 *                      [--werror]
 *       statically analyze a canonical or demo test program
 *   pudhammer trace-summarize --trace=FILE
 *       fold a pud::obs JSONL trace into per-phase time/count tables
 *
 * All run commands also accept --trace=FILE (structured JSONL event
 * trace) and --metrics (deterministic counters on stdout at exit).
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include <fstream>

#include "check/diffcheck.h"
#include "exec/pool.h"
#include "fuzz/campaign.h"
#include "hammer/experiment.h"
#include "hammer/popsweep.h"
#include "hammer/reveng.h"
#include "lint/effects.h"
#include "lint/linter.h"
#include "lint/report.h"
#include "obs/obs.h"
#include "stats/summary.h"
#include "util/args.h"
#include "util/table.h"

using namespace pud;
using namespace pud::hammer;

namespace {

/** Split a comma-separated option value ("trr,prac") into entries. */
std::vector<std::string>
splitList(const std::string &value)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= value.size()) {
        const std::size_t comma = value.find(',', start);
        const std::size_t end =
            comma == std::string::npos ? value.size() : comma;
        if (end > start)
            out.push_back(value.substr(start, end - start));
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return out;
}

const char *
mitVerdictName(lint::MitVerdict v)
{
    switch (v) {
      case lint::MitVerdict::NotEvaluated:     return "-";
      case lint::MitVerdict::BypassCertain:    return "bypass-certain";
      case lint::MitVerdict::BypassPossible:   return "bypass-possible";
      case lint::MitVerdict::MitigatedCertain:
        return "mitigated-certain";
    }
    return "?";
}

int
cmdModules()
{
    Table table({"module", "mfr", "density", "die", "org", "#mods",
                 "#chips", "SiMRA"});
    for (const auto &f : dram::table2Families()) {
        table.addRow({f.moduleId, dram::name(f.mfr), f.density,
                      f.dieRev, f.org, Table::count(f.numModules),
                      Table::count(f.numChips),
                      f.supportsSimra ? "yes" : "no"});
    }
    table.print();
    return 0;
}

dram::DeviceConfig
configFrom(const Args &args)
{
    // --profile is the lint-facing alias: "lint this program as if it
    // ran on family X" reads better than --module there, but both
    // select the same Table 2 calibration profile everywhere.
    const std::string module =
        args.get("profile", args.get("module", "HMA81GU7AFR8N-UH"));
    dram::DeviceConfig cfg = dram::makeConfig(
        module, static_cast<std::uint64_t>(args.getInt("seed", 1)));
    cfg.rowsPerSubarray = static_cast<dram::RowId>(
        args.getInt("rows", 128));
    return cfg;
}

int
cmdReveng(const Args &args)
{
    ModuleTester tester(configFrom(args));
    std::printf("module          : %s\n",
                tester.device().config().profile.moduleId.c_str());
    std::printf("mapping scheme  : %s\n",
                dram::name(identifyMappingScheme(tester, 0)));
    const auto bounds = findSubarrayBoundaries(tester, 0);
    std::printf("subarrays       : %zu (first boundary at row %u)\n",
                bounds.size(),
                bounds.size() > 1 ? bounds[1]
                                  : tester.device().rowsPerBank());
    const auto group = discoverSimraGroup(
        tester, 0, tester.device().toLogical(64),
        tester.device().toLogical(70));
    std::printf("SiMRA support   : %s (ACT(64)-PRE-ACT(70) activates "
                "%zu rows)\n",
                group.size() > 1 ? "yes" : "no", group.size());
    std::printf("TRR (as shipped): %s\n",
                detectTrr(tester, 0) ? "present" : "not detected");
    tester.device().setTrrEnabled(true);
    std::printf("TRR (enabled)   : %s\n",
                detectTrr(tester, 0) ? "present" : "not detected");
    return 0;
}

int
cmdHcFirst(const Args &args)
{
    const std::string technique = args.get("technique", "rh");
    const int n = static_cast<int>(args.getInt("n", 4));
    const double temp = args.getDouble("temp", 80.0);

    ModuleTester::Options opt;
    const std::string pattern = args.get("pattern", "wcdp");
    if (pattern == "wcdp") {
        opt.searchWcdp = true;
    } else if (pattern == "0x55") {
        opt.pattern = dram::DataPattern::P55;
    } else if (pattern == "0xAA") {
        opt.pattern = dram::DataPattern::PAA;
    } else if (pattern == "0x00") {
        opt.pattern = dram::DataPattern::P00;
    } else if (pattern == "0xFF") {
        opt.pattern = dram::DataPattern::PFF;
    } else {
        fatal("unknown --pattern=%s", pattern.c_str());
    }

    MeasureFn measure;
    if (technique == "rh")
        measure = [opt](ModuleTester &t, dram::RowId v) {
            return t.rhDouble(v, opt);
        };
    else if (technique == "comra")
        measure = [opt](ModuleTester &t, dram::RowId v) {
            return t.comraDouble(v, opt);
        };
    else if (technique == "simra")
        measure = [opt, n](ModuleTester &t, dram::RowId v) {
            return t.simraDouble(v, n, opt);
        };
    else
        fatal("unknown --technique=%s (rh|comra|simra)",
              technique.c_str());

    // Route through the population runner so the sweep parallelizes
    // under --jobs.  With jobs > 1 the victim list is cut into fixed
    // chunks (independent of the jobs value), so any --jobs=N output
    // matches any other --jobs=M > 1 bit for bit; --jobs=1 is the
    // legacy serial path on one tester.
    PopulationConfig pop;
    pop.moduleId = args.get("module", "HMA81GU7AFR8N-UH");
    pop.modules = 1;
    pop.victimsPerSubarray =
        static_cast<dram::RowId>(args.getInt("victims", 8));
    pop.oddOnly = technique == "simra";
    pop.seed = static_cast<std::uint64_t>(args.getInt("seed", 1));
    pop.rowsPerSubarray =
        static_cast<dram::RowId>(args.getInt("rows", 128));
    pop.jobs = exec::resolveJobs(
        static_cast<int>(args.getInt("jobs", 1)));
    pop.perVictimChunks = pop.jobs > 1;
    pop.setup = [temp](ModuleTester &t) {
        t.bench().thermo().setTarget(temp);
    };

    const auto series = measurePopulation(pop, {measure});

    std::vector<double> hcs;
    std::size_t noflip = 0;
    for (double hc : series[0]) {
        if (std::isnan(hc))
            ++noflip;
        else
            hcs.push_back(hc);
    }

    const auto bs = stats::boxStats(hcs);
    std::printf("technique %s%s, %zu victims (%zu without flips in "
                "budget)\n",
                technique.c_str(),
                technique == "simra"
                    ? ("-" + std::to_string(n)).c_str()
                    : "",
                series[0].size(), noflip);
    std::printf("HC_first min/q1/median/q3/max: %s\n",
                bs.str().c_str());
    return 0;
}

/**
 * Fleet-scale population sweep through the sketch pipeline, across
 * worker processes.  The stdout summary is built purely from the
 * canonical-order sketch merge, so it is byte-identical across
 * --workers values (0 = in-process sweepPopulation, the identity
 * reference), --jobs values, and interrupt/restart schedules;
 * wall-time and RSS go to stderr to keep stdout diffable.
 */
int
cmdPopsweep(const Args &args)
{
    const std::string technique = args.get("technique", "rh");
    const int n = static_cast<int>(args.getInt("n", 4));
    const double temp = args.getDouble("temp", 80.0);

    ModuleTester::Options opt;
    opt.searchWcdp = false;
    opt.pattern = dram::DataPattern::P55;

    MeasureFn measure;
    if (technique == "rh")
        measure = [opt](ModuleTester &t, dram::RowId v) {
            return t.rhDouble(v, opt);
        };
    else if (technique == "comra")
        measure = [opt](ModuleTester &t, dram::RowId v) {
            return t.comraDouble(v, opt);
        };
    else if (technique == "simra")
        measure = [opt, n](ModuleTester &t, dram::RowId v) {
            return t.simraDouble(v, n, opt);
        };
    else
        fatal("unknown --technique=%s (rh|comra|simra)",
              technique.c_str());

    PopulationConfig pop;
    pop.moduleId = args.get("module", "HMA81GU7AFR8N-UH");
    pop.modules = static_cast<int>(args.getInt("modules", 100));
    pop.victimsPerSubarray =
        static_cast<dram::RowId>(args.getInt("victims", 2));
    pop.oddOnly = technique == "simra";
    pop.seed = static_cast<std::uint64_t>(args.getInt("seed", 1));
    pop.rowsPerSubarray =
        static_cast<dram::RowId>(args.getInt("rows", 128));
    pop.setup = [temp](ModuleTester &t) {
        t.bench().thermo().setTarget(temp);
    };

    const int workers = static_cast<int>(args.getInt("workers", 0));
    const int jobs = static_cast<int>(args.getInt("jobs", 1));
    const double alpha = args.getDouble("alpha", 0.01);
    const std::string dir = args.get("dir", "");

    SweepResult sweep;
    if (workers <= 0) {
        // In-process reference path (the byte-identity baseline the
        // multi-process runs are diffed against).
        pop.jobs = jobs;
        SweepOptions so;
        so.sketchAlpha = alpha;
        if (!dir.empty())
            so.checkpointPath = dir + "/single.ckpt";
        sweep = sweepPopulation(pop, {measure}, so);
        std::fprintf(stderr,
                     "# in-process: jobs=%d wall=%.2fs resumed=%zu\n",
                     exec::resolveJobs(jobs), sweep.telemetry.wallSeconds,
                     sweep.resumedShards);
    } else {
        if (dir.empty())
            fatal("popsweep: --dir=PATH is required with --workers>0");
        PopsweepOptions po;
        po.dir = dir;
        po.workers = workers;
        po.jobsPerWorker = jobs;
        po.sketchAlpha = alpha;
        po.stallTimeoutSeconds =
            args.getDouble("stall-timeout", 120.0);
        const PopsweepResult r = popsweep(pop, {measure}, po);
        sweep = std::move(r.sweep);
        for (const WorkerReport &w : r.workers)
            std::fprintf(stderr,
                         "# worker %d: shards [%zu, %zu) restarts=%d "
                         "rss=%llu wall=%.2fs resumed=%zu\n",
                         w.worker, w.shardBegin, w.shardEnd,
                         w.restarts,
                         static_cast<unsigned long long>(
                             w.peakRssBytes),
                         w.wallSeconds, w.resumedShards);
        std::fprintf(stderr,
                     "# aggregate rss=%llu wall=%.2fs workers=%d\n",
                     static_cast<unsigned long long>(
                         r.aggregateRssBytes),
                     sweep.telemetry.wallSeconds, workers);
    }

    std::printf("popsweep %s technique=%s%s modules=%d victims=%zu "
                "shards=%zu\n",
                pop.moduleId.c_str(), technique.c_str(),
                technique == "simra"
                    ? ("-" + std::to_string(n)).c_str()
                    : "",
                pop.modules,
                populationVictims(pop).size(), sweep.totalShards);
    for (std::size_t i = 0; i < sweep.sketches.size(); ++i) {
        const stats::SampleSketch &sk = sweep.sketches[i];
        std::printf("measure %zu: count=%llu dropped=%llu\n", i,
                    static_cast<unsigned long long>(sk.count()),
                    static_cast<unsigned long long>(sk.dropped()));
        std::printf("  min=%.6g q25=%.6g median=%.6g q75=%.6g "
                    "max=%.6g mean=%.6g\n",
                    sk.min(), sk.quantile(0.25), sk.quantile(0.5),
                    sk.quantile(0.75), sk.max(), sk.mean());
        std::printf("  sum=%s buckets=%zu\n",
                    stats::hexDouble(sk.sum()).c_str(), sk.buckets());
    }
    return 0;
}

int
cmdAttack(const Args &args)
{
    const std::string technique = args.get("technique", "simra");
    TrrTechnique tech;
    if (technique == "rh")
        tech = TrrTechnique::RowHammer;
    else if (technique == "comra")
        tech = TrrTechnique::Comra;
    else if (technique == "simra")
        tech = TrrTechnique::Simra;
    else
        fatal("unknown --technique=%s", technique.c_str());

    TrrConfig cfg;
    cfg.nSided = static_cast<int>(args.getInt("n", 2));
    cfg.simraN = static_cast<int>(args.getInt("n", 16));
    cfg.hammersPerAggressor = static_cast<std::uint64_t>(
        args.getInt("hammers", 150000));

    ModuleTester tester(configFrom(args));
    const bool trr = args.has("trr");
    const auto flips = runTrrExperiment(tester, tech, cfg, trr);
    std::printf("%s attack, %llu hammers/aggressor, TRR %s: "
                "%llu bitflips\n",
                name(tech),
                static_cast<unsigned long long>(
                    cfg.hammersPerAggressor),
                trr ? "on" : "off",
                static_cast<unsigned long long>(flips));
    return 0;
}

/**
 * Build the named program for `lint`.  Canonical patterns use the
 * same geometry the characterization front-end uses (mid-subarray
 * physical rows, translated through the module's mapping); the demo-*
 * programs exhibit the bug classes the analyzer exists to catch.
 */
bender::Program
lintProgramByName(const std::string &name, const dram::DeviceConfig &cfg,
                  std::uint64_t hammers)
{
    const dram::RowMapping mapping(cfg.profile.mapping);
    // Physical rows in the middle of subarray 0: victim v (odd),
    // sandwiched by v-1 / v+1; the SiMRA pair (v-1, v-1 ^ 0b110)
    // bit-combines to a 4-row group (see planSimraDouble).
    const dram::RowId v = (cfg.rowsPerSubarray / 2) | 1;
    const dram::RowId lo = mapping.toLogical(v - 1);
    const dram::RowId hi = mapping.toLogical(v + 1);
    const dram::RowId simra2 = mapping.toLogical((v - 1) ^ 0b110);
    const PatternTimings t;
    const dram::TimingParams &nominal = t.base;

    if (name == "rh")
        return doubleSidedRowHammer(0, lo, hi, hammers, t);
    if (name == "comra")
        return comraHammer(0, lo, hi, hammers, t);
    if (name == "simra")
        return simraHammer(0, lo, simra2, hammers, t);
    if (name == "combined") {
        CombinedCounts counts;
        counts.comra = hammers / 4;
        counts.simra = hammers / 4;
        counts.rowHammer = hammers;
        return combinedPattern(0, lo, hi, lo, hi, lo, simra2, counts, t);
    }
    if (name == "trr-rh")
        return trrBypassPattern(0, {lo, hi}, mapping.toLogical(4), false,
                                hammers / 156 + 1, t);
    if (name == "trr-simra")
        return trrSimraPattern(0, lo, simra2, hammers / 78 + 1, t);

    if (name == "demo-unbalanced") {
        bender::Program p;
        p.loopBegin(hammers).act(0, lo, nominal.tRP).pre(0, nominal.tRAS);
        return p;  // missing loopEnd
    }
    if (name == "demo-bad-wr") {
        bender::Program p;
        p.act(0, lo, nominal.tRP)
            .wrUnchecked(0, 7, nominal.tRCD)  // empty data table
            .pre(0, nominal.tRAS);
        return p;
    }
    if (name == "demo-subtrp") {
        // A PRE->ACT gap between the CoMRA window (13.0 ns) and
        // nominal tRP (13.75 ns): violates tRP without copying --
        // exactly the accidental violation that corrupts sweeps.
        bender::Program p;
        p.act(0, lo, nominal.tRP)
            .pre(0, nominal.tRAS)
            .act(0, hi, units::fromNs(13.4))
            .pre(0, nominal.tRAS);
        return p;
    }
    // Shared snippet builders for the dataflow demos: a CoMRA copy and
    // a SiMRA group open, both in physical coordinates.
    const auto copyRow = [&](bender::Program &p, dram::RowId src,
                             dram::RowId dst) {
        p.act(0, mapping.toLogical(src), nominal.tRC)
            .pre(0, nominal.tRAS)
            .act(0, mapping.toLogical(dst), units::fromNs(7.5))
            .pre(0, nominal.tRAS);
    };
    const auto openGroup = [&](bender::Program &p, dram::RowId r1,
                               dram::RowId r2) {
        p.act(0, mapping.toLogical(r1), nominal.tRC)
            .pre(0, units::fromNs(3))
            .act(0, mapping.toLogical(r2), units::fromNs(3))
            .pre(0, nominal.tRAS);
    };
    if (name == "demo-ctrl-clobber") {
        // Pre-fix bitAnd/bitOr control-row bug: for an operand block
        // at the base of subarray 1 the control row was computed as
        // base-1 -- the *last row of subarray 0* -- so the control
        // fill landed across the boundary and the group activation one
        // subarray over could never consume it.
        bender::Program p;
        const dram::RowId base = cfg.rowsPerSubarray;
        const int zeros = p.addData(
            dram::RowData(cfg.cols, dram::DataPattern::P00));
        p.act(0, mapping.toLogical(base - 1), nominal.tRP)
            .wr(0, zeros, nominal.tRCD)
            .pre(0, nominal.tRAS);
        copyRow(p, base + 8, base + 0);
        copyRow(p, base + 9, base + 1);
        openGroup(p, base, base + 3);
        return p;
    }
    if (name == "demo-majority-geom") {
        // Pre-fix replicatedMajority geometry bugs: a replication that
        // does not sum to the group size leaves the block half-staged
        // (staged replicas merged with never-written rows), and an
        // operand placed inside its own activation block is swallowed
        // by the group open.
        bender::Program p;
        const dram::RowId half = 16;  // 8-row block, rows +6/+7 unstaged
        copyRow(p, 32, half + 0);
        copyRow(p, 32, half + 1);
        copyRow(p, 32, half + 2);
        copyRow(p, 33, half + 3);
        copyRow(p, 33, half + 4);
        copyRow(p, 33, half + 5);
        openGroup(p, half, half + 7);
        const dram::RowId swallowed = 40;  // operand at +1, in-block
        copyRow(p, swallowed + 1, swallowed + 0);
        copyRow(p, 48, swallowed + 2);
        copyRow(p, 48, swallowed + 3);
        openGroup(p, swallowed, swallowed + 3);
        return p;
    }
    if (name == "demo-broken") {
        // All three bug classes at once (the acceptance showcase).
        bender::Program p;
        p.act(0, lo, nominal.tRP)
            .pre(0, nominal.tRAS)
            .act(0, hi, units::fromNs(13.4))  // accidental sub-tRP
            .wrUnchecked(0, 7, nominal.tRCD)  // out-of-range data index
            .pre(0, nominal.tRAS)
            .loopBegin(hammers)               // never closed
            .act(0, lo, nominal.tRP)
            .pre(0, nominal.tRAS);
        return p;
    }
    fatal("unknown --program=%s (rh|comra|simra|combined|trr-rh|"
          "trr-simra|demo-unbalanced|demo-bad-wr|demo-subtrp|"
          "demo-broken|demo-ctrl-clobber|demo-majority-geom)",
          name.c_str());
}

int
cmdLint(const Args &args)
{
    const dram::DeviceConfig cfg = configFrom(args);
    const std::string program_name = args.get("program", "demo-broken");
    const bender::Program program = lintProgramByName(
        program_name, cfg,
        static_cast<std::uint64_t>(args.getInt("hammers", 100000)));

    lint::LintOptions opts;
    opts.effects = args.has("effects");
    opts.dataflow = args.has("dataflow");
    if (args.has("mitigations")) {
        for (const std::string &m :
             splitList(args.get("mitigations", ""))) {
            if (m == "trr")
                opts.mitigations.trr = true;
            else if (m == "prac")
                opts.mitigations.prac = true;
            else if (m == "para")
                opts.mitigations.para = true;
            else if (m == "graphene")
                opts.mitigations.graphene = true;
            else
                fatal("unknown --mitigations entry '%s' "
                      "(trr|prac|para|graphene)",
                      m.c_str());
        }
        if (!opts.mitigations.any())
            fatal("--mitigations needs at least one of "
                  "trr,prac,para,graphene");
    }
    lint::EffectReport report;
    const bool want_report = opts.effects || opts.mitigations.any();
    const lint::LintResult result = lint::lintProgram(
        program, cfg, opts, want_report ? &report : nullptr);

    if (args.has("sarif")) {
        lint::printSarif(result, program);
    } else if (args.has("json")) {
        lint::printJson(result, program);
    } else {
        lint::printReport(result, program);
        if (want_report && !report.victims.empty()) {
            const bool mit = opts.mitigations.any();
            std::printf("\npredicted victims on %s "
                        "(damage as a fraction of the flip threshold):\n",
                        cfg.profile.moduleId.c_str());
            std::vector<std::string> cols = {"bank", "phys row",
                                             "weighted closes",
                                             "optimistic", "typical",
                                             "verdict"};
            if (mit) {
                cols.push_back("mitigation");
                cols.push_back("bypass HC_first >=");
            }
            Table table(cols);
            for (const auto &v : report.victims) {
                std::vector<std::string> row = {
                    Table::count(v.bank), Table::count(v.victimPhys),
                    Table::num(v.weightedCloses),
                    Table::num(v.optimisticDamage, 3),
                    Table::num(v.typicalDamage, 3),
                    v.verdict == lint::Verdict::Likely ? "likely"
                                                       : "impossible"};
                if (mit) {
                    row.push_back(mitVerdictName(v.mitVerdict));
                    row.push_back(
                        v.bypassHcFirstLowerBound > 0
                            ? Table::num(v.bypassHcFirstLowerBound, 0)
                            : std::string("unreachable"));
                }
                table.addRow(row);
            }
            table.print(stdout);
        }
    }

    if (!result.clean())
        return 1;
    if (args.has("werror") &&
        result.totalCount(lint::Severity::Warning) > 0)
        return 1;
    return 0;
}

int
cmdDiffCheck(const Args &args)
{
    check::DiffCheckConfig cfg;
    cfg.seeds =
        static_cast<std::uint64_t>(args.getInt("seeds", 1000));
    cfg.firstSeed =
        static_cast<std::uint64_t>(args.getInt("first-seed", 1));
    if (args.has("mitigation")) {
        const std::string mech = args.get("mitigation", "");
        if (mech == "trr")
            cfg.mitigation = check::MitigationUnderTest::Trr;
        else if (mech == "prac")
            cfg.mitigation = check::MitigationUnderTest::Prac;
        else
            fatal("unknown --mitigation '%s' (expected trr or prac)",
                  mech.c_str());
    }
    const bool mit =
        cfg.mitigation != check::MitigationUnderTest::None;
    const check::DiffCheckStats stats = check::runDiffCheck(cfg);

    if (args.has("json")) {
        std::printf(
            "{\"mode\":\"%s\",\"programs\":%llu,"
            "\"instructions\":%llu,\"loops\":%llu,"
            "\"likelyVictims\":%llu,\"mitigatedCertainRows\":%llu,"
            "\"bypassCertainRows\":%llu,\"possibleRows\":%llu,"
            "\"flippedRows\":%llu,\"rowsVerified\":%llu,"
            "\"mismatches\":%llu,\"soundnessViolations\":%llu}\n",
            !mit ? "dataflow"
                 : cfg.mitigation == check::MitigationUnderTest::Trr
                       ? "trr"
                       : "prac",
            static_cast<unsigned long long>(stats.programs),
            static_cast<unsigned long long>(stats.instructions),
            static_cast<unsigned long long>(stats.loops),
            static_cast<unsigned long long>(stats.likelyVictims),
            static_cast<unsigned long long>(stats.mitigatedCertainRows),
            static_cast<unsigned long long>(stats.bypassCertainRows),
            static_cast<unsigned long long>(stats.possibleRows),
            static_cast<unsigned long long>(stats.flippedRows),
            static_cast<unsigned long long>(stats.rowsVerified),
            static_cast<unsigned long long>(stats.mismatches),
            static_cast<unsigned long long>(
                stats.soundnessViolations));
        return stats.ok() ? 0 : 1;
    }

    Table table({"metric", "value"});
    const auto row = [&](const char *label, std::uint64_t v) {
        table.addRow({label, Table::count(static_cast<long long>(v))});
    };
    row("programs", stats.programs);
    row("instructions", stats.instructions);
    row("loops", stats.loops);
    if (mit) {
        row("likely victims", stats.likelyVictims);
        row("mitigated-certain rows (asserted)",
            stats.mitigatedCertainRows);
        row("bypass-certain rows (asserted)", stats.bypassCertainRows);
        row("bypass-possible rows (refused)", stats.possibleRows);
        row("victim rows flipped unmitigated", stats.flippedRows);
        row("soundness violations", stats.soundnessViolations);
    } else {
        row("SiMRA merges", stats.merges);
        row("rows verified bit-exact", stats.rowsVerified);
        row("rows unverifiable (by design)", stats.rowsUnverifiable);
        row("mismatches", stats.mismatches);
    }
    table.print();

    if (!stats.ok()) {
        std::printf("\nFIRST MISMATCH: %s\n",
                    stats.firstMismatch.c_str());
        return 1;
    }
    if (mit) {
        std::printf("\nno soundness violations across %llu programs\n",
                    static_cast<unsigned long long>(stats.programs));
    } else {
        std::printf("\nno static/dynamic disagreement across %llu "
                    "programs\n",
                    static_cast<unsigned long long>(stats.programs));
    }
    return 0;
}

/**
 * Extract one value from a flat single-line JSON object as written by
 * obs::TraceWriter: quoted strings come back unquoted (escapes left
 * as-is; event names and field keys never contain them), everything
 * else as the raw token.  Empty string when the key is absent.
 */
std::string
jsonRaw(const std::string &line, const std::string &key)
{
    const std::string needle = "\"" + key + "\":";
    const auto pos = line.find(needle);
    if (pos == std::string::npos)
        return "";
    std::size_t i = pos + needle.size();
    if (i < line.size() && line[i] == '"') {
        std::size_t j = i + 1;
        while (j < line.size() && line[j] != '"') {
            if (line[j] == '\\')
                ++j;
            ++j;
        }
        return line.substr(i + 1, j - i - 1);
    }
    std::size_t j = i;
    while (j < line.size() && line[j] != ',' && line[j] != '}')
        ++j;
    return line.substr(i, j - i);
}

double
jsonNum(const std::string &line, const std::string &key,
        double fallback = 0.0)
{
    const std::string raw = jsonRaw(line, key);
    return raw.empty() ? fallback : std::atof(raw.c_str());
}

int
cmdTraceSummarize(const Args &args)
{
    std::string path = args.get("trace");
    if (path.empty() && args.positional().size() > 1)
        path = args.positional()[1];
    if (path.empty())
        fatal("trace-summarize: need --trace=FILE (or a positional "
              "trace path)");
    std::FILE *f = std::fopen(path.c_str(), "r");
    if (!f)
        fatal("trace-summarize: cannot open '%s'", path.c_str());

    std::map<std::string, std::uint64_t> counts;
    double total = 0.0;       // trace_close wall_s
    double last_ts = 0.0;     // fallback for truncated traces
    double sweep_wall = 0.0;  // sum of sweep_end wall_s
    double shard_busy = 0.0;  // sum of work_unit seconds
    std::vector<std::pair<double, double>> sweeps;
    std::vector<double> open_sweeps;
    std::vector<std::pair<double, double>> program_ends;  // (ts, wall)
    bool closed = false;

    char buf[4096];
    while (std::fgets(buf, sizeof(buf), f)) {
        const std::string line(buf);
        const std::string ev = jsonRaw(line, "ev");
        if (ev.empty())
            continue;
        ++counts[ev];
        const double ts = jsonNum(line, "ts");
        last_ts = std::max(last_ts, ts);
        if (ev == "sweep_start") {
            open_sweeps.push_back(ts);
        } else if (ev == "sweep_end") {
            const double start =
                open_sweeps.empty() ? 0.0 : open_sweeps.back();
            if (!open_sweeps.empty())
                open_sweeps.pop_back();
            sweeps.emplace_back(start, ts);
            sweep_wall += jsonNum(line, "wall_s");
        } else if (ev == "work_unit") {
            shard_busy += jsonNum(line, "seconds");
        } else if (ev == "program_end") {
            program_ends.emplace_back(ts, jsonNum(line, "wall_s"));
        } else if (ev == "trace_close") {
            total = jsonNum(line, "wall_s");
            closed = true;
        }
    }
    std::fclose(f);
    if (counts.empty())
        fatal("trace-summarize: no events in '%s'", path.c_str());
    if (!closed) {
        warn("trace has no trace_close (truncated run?); using the "
             "last timestamp as total wall time");
        total = last_ts;
    }

    std::printf("trace: %s\n\n", path.c_str());
    Table events({"event", "count"});
    std::uint64_t total_events = 0;
    for (const auto &[ev, n] : counts) {
        events.addRow(
            {ev, Table::count(static_cast<long long>(n))});
        total_events += n;
    }
    events.addRow(
        {"(all)", Table::count(static_cast<long long>(total_events))});
    events.print();

    // Wall-time attribution: population sweeps cover their interval
    // wholesale (per-shard detail is in the work_unit rows); programs
    // that ran *outside* any sweep (e.g. pudhammer attack, TRR
    // experiments) contribute their own wall time.
    double outside = 0.0;
    for (const auto &[ts, wall] : program_ends) {
        bool inside = false;
        for (const auto &[s, e] : sweeps)
            inside = inside || (ts >= s && ts <= e);
        if (!inside)
            outside += wall;
    }
    const double accounted = sweep_wall + outside;
    const double pct =
        total > 0.0 ? 100.0 * accounted / total : 100.0;

    std::printf("\n");
    Table phases({"phase", "wall s", "% of total"});
    auto pctOf = [&](double s) {
        return Table::num(total > 0.0 ? 100.0 * s / total : 0.0, 1);
    };
    phases.addRow({"population sweeps", Table::num(sweep_wall, 3),
                   pctOf(sweep_wall)});
    phases.addRow({"  shard busy (parallel)", Table::num(shard_busy, 3),
                   pctOf(shard_busy)});
    phases.addRow({"programs outside sweeps", Table::num(outside, 3),
                   pctOf(outside)});
    phases.addRow({"unattributed",
                   Table::num(std::max(0.0, total - accounted), 3),
                   pctOf(std::max(0.0, total - accounted))});
    phases.addRow({"total (trace_close)", Table::num(total, 3),
                   Table::num(100.0, 1)});
    phases.print();
    std::printf("\naccounted for %.1f%% of wall time\n", pct);
    return 0;
}

int
cmdFuzz(const Args &args)
{
    fuzz::CampaignConfig cfg;
    cfg.moduleId = args.get("module", cfg.moduleId);
    cfg.candidates = static_cast<std::uint64_t>(
        args.getInt("candidates", 2000));
    cfg.seed = static_cast<std::uint64_t>(args.getInt("seed", 1));
    cfg.jobs = static_cast<int>(args.getInt("jobs", 1));
    cfg.rowsPerSubarray =
        static_cast<dram::RowId>(args.getInt("rows", 64));
    cfg.maxPeriods = static_cast<std::uint64_t>(
        args.getInt("budget-periods", 20000));
    cfg.chunk =
        static_cast<std::size_t>(args.getInt("chunk", 256));
    cfg.staticFilter = !args.has("no-static-filter");
    cfg.baseline = !args.has("no-baseline");
    cfg.minimizeTop =
        static_cast<int>(args.getInt("minimize-top", 1));

    const fuzz::CampaignResult result = fuzz::runCampaign(cfg);

    const std::string corpus_path = args.get("corpus");
    if (!corpus_path.empty()) {
        std::ofstream os(corpus_path);
        if (!os)
            fatal("fuzz: cannot open corpus file %s",
                  corpus_path.c_str());
        fuzz::writeCorpusJsonl(result, os);
    }
    std::fputs(fuzz::summarize(result).c_str(), stdout);
    return 0;
}

void
usage()
{
    std::printf(
        "usage: pudhammer <command> [options]\n"
        "  modules                      list Table 2 module families\n"
        "  reveng  --module=ID          reverse engineer a module\n"
        "  hcfirst --module=ID --technique=rh|comra|simra [--n=4]\n"
        "          [--victims=K] [--temp=C] [--pattern=...|wcdp]\n"
        "          [--jobs=N]  (N threads; 0 = all cores, 1 = serial;\n"
        "           results are identical for every N > 1)\n"
        "  popsweep --module=ID [--modules=N] [--victims=K]\n"
        "          [--technique=rh|comra|simra] [--n=4]\n"
        "          [--workers=W --dir=PATH] [--jobs=J] [--alpha=A]\n"
        "          [--stall-timeout=S]\n"
        "          fleet sweep through the sketch pipeline; W worker\n"
        "          processes (0 = in-process reference path); stdout\n"
        "          is byte-identical across workers/jobs/restarts\n"
        "  attack  --module=ID --technique=rh|comra|simra [--trr]\n"
        "          [--hammers=N]\n"
        "  lint    --program=rh|comra|simra|combined|trr-rh|trr-simra\n"
        "          |demo-unbalanced|demo-bad-wr|demo-subtrp|demo-broken\n"
        "          |demo-ctrl-clobber|demo-majority-geom\n"
        "          [--module=ID | --profile=ID] [--hammers=N]\n"
        "          [--effects] [--dataflow]\n"
        "          [--mitigations=trr,prac,para,graphene]\n"
        "          [--json | --sarif] [--werror]\n"
        "          (--effects: static disturbance prediction;\n"
        "           --dataflow: row-state dataflow analysis;\n"
        "           --mitigations: bypass certifier vs the listed\n"
        "           mechanisms; --werror: warnings also exit nonzero)\n"
        "  fuzz    [--module=ID] [--candidates=N] [--seed=N]\n"
        "          [--jobs=N] [--rows=N] [--budget-periods=N]\n"
        "          [--chunk=N] [--corpus=FILE] [--minimize-top=K]\n"
        "          [--no-static-filter] [--no-baseline]\n"
        "          frequency-domain pattern fuzzing campaign; the\n"
        "          JSONL corpus and stdout are byte-identical across\n"
        "          --jobs values for a fixed seed\n"
        "  diffcheck [--seeds=N] [--first-seed=N]\n"
        "          [--mitigation=trr|prac] [--json]\n"
        "          differential check: seeded random programs through\n"
        "          the dataflow pass and the device, bit-exact rows;\n"
        "          with --mitigation, the bypass certifier's Certain\n"
        "          verdicts are asserted against a live mitigation\n"
        "  trace-summarize --trace=FILE\n"
        "          per-phase time/count tables from a JSONL trace\n"
        "common: --seed=N --rows=N (rows per subarray)\n"
        "        --trace=FILE (JSONL event trace)\n"
        "        --metrics (deterministic counters on stdout at exit)\n");
}

} // namespace

int
main(int argc, char **argv)
{
    const Args args(argc, argv);
    if (args.positional().empty()) {
        usage();
        return 2;
    }
    const std::string &cmd = args.positional().front();
    if (cmd != "trace-summarize")
        obs::initFromArgs(args);
    if (cmd == "modules")
        return cmdModules();
    if (cmd == "reveng")
        return cmdReveng(args);
    if (cmd == "hcfirst")
        return cmdHcFirst(args);
    if (cmd == "popsweep")
        return cmdPopsweep(args);
    if (cmd == "attack")
        return cmdAttack(args);
    if (cmd == "lint")
        return cmdLint(args);
    if (cmd == "fuzz")
        return cmdFuzz(args);
    if (cmd == "diffcheck")
        return cmdDiffCheck(args);
    if (cmd == "trace-summarize")
        return cmdTraceSummarize(args);
    usage();
    return 2;
}
