#include "sim/workload.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/logging.h"

namespace pud::sim {

const std::vector<WorkloadParams> &
suitePresets()
{
    static const std::vector<WorkloadParams> presets = {
        // Intensity classes modeled on the suites' published memory
        // behaviour: MPKI and row-buffer locality.
        {"spec06-mem", 18.0, 0.45, 0.40},
        {"spec17-mix", 10.0, 0.55, 0.40},
        {"tpc-oltp", 25.0, 0.30, 0.45},
        {"media-stream", 5.0, 0.80, 0.35},
        {"ycsb-kv", 30.0, 0.25, 0.45},
    };
    return presets;
}

std::vector<WorkloadParams>
makeMix(int mix_index)
{
    const auto &presets = suitePresets();
    Rng rng(0xC0FFEE + static_cast<std::uint64_t>(mix_index) * 7919);

    std::vector<WorkloadParams> mix;
    for (int c = 0; c < 4; ++c) {
        WorkloadParams w =
            presets[(mix_index + c * 2 + c * c) % presets.size()];
        // Per-mix jitter so the 60 mixes are distinct workload points.
        w.mpki = std::max(1.0, w.mpki * rng.uniform(0.7, 1.4));
        w.rowHitProb =
            std::clamp(w.rowHitProb * rng.uniform(0.8, 1.2), 0.05, 0.95);
        w.name += "-m" + std::to_string(mix_index) + "c" +
                  std::to_string(c);
        mix.push_back(std::move(w));
    }
    return mix;
}

std::vector<TraceEntry>
loadTrace(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "r");
    if (!f)
        fatal("loadTrace: cannot open '%s'", path.c_str());
    std::vector<TraceEntry> out;
    char line[256];
    while (std::fgets(line, sizeof(line), f)) {
        if (line[0] == '#' || line[0] == '\n')
            continue;
        unsigned gap, bank, row;
        if (std::sscanf(line, "%u %u %u", &gap, &bank, &row) != 3) {
            std::fclose(f);
            fatal("loadTrace: malformed line in '%s': %s",
                  path.c_str(), line);
        }
        out.push_back({gap, static_cast<BankId>(bank),
                       static_cast<RowId>(row)});
    }
    std::fclose(f);
    if (out.empty())
        fatal("loadTrace: '%s' contains no entries", path.c_str());
    return out;
}

void
saveTrace(const std::string &path, const std::vector<TraceEntry> &trace)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        fatal("saveTrace: cannot open '%s'", path.c_str());
    std::fprintf(f, "# pudhammer trace: <gap> <bank> <row>\n");
    for (const TraceEntry &e : trace)
        std::fprintf(f, "%u %u %u\n", e.gap, e.bank, e.row);
    std::fclose(f);
}

std::vector<TraceEntry>
synthesizeTrace(const WorkloadParams &params, std::uint64_t instructions,
                BankId banks, RowId rows_per_bank, std::uint64_t seed)
{
    TraceCore core(0, params, instructions, banks, rows_per_bank, seed);
    std::vector<TraceEntry> out;
    std::uint64_t done = 0;
    while (!core.done()) {
        TraceEntry e;
        core.next(e.bank, e.row);
        const std::uint64_t before = core.instructionsDone();
        core.onComplete();
        e.gap = static_cast<std::uint32_t>(core.instructionsDone() -
                                           before);
        done += e.gap;
        out.push_back(e);
    }
    (void)done;
    return out;
}

TraceCore::TraceCore(int id, std::vector<TraceEntry> trace, double cpi,
                     std::uint64_t instructions)
    : id_(id), banks_(1), rowsPerBank_(1), rng_(1),
      recorded_(std::move(trace)), instructionsLeft_(instructions)
{
    if (instructions == 0)
        fatal("TraceCore: zero instruction budget");
    params_.cpi = cpi;
    params_.name = "recorded";
    rollSegment();
}

TraceCore::TraceCore(int id, const WorkloadParams &params,
                     std::uint64_t instructions, BankId banks,
                     RowId rows_per_bank, std::uint64_t seed)
    : id_(id), params_(params), banks_(banks), rowsPerBank_(rows_per_bank),
      rng_(seed ^ (0x5EEDULL + static_cast<std::uint64_t>(id) * 104729)),
      instructionsLeft_(instructions)
{
    if (instructions == 0)
        fatal("TraceCore: zero instruction budget");
    curBank_ = static_cast<BankId>(rng_.below(banks_));
    curRow_ = static_cast<RowId>(rng_.below(rowsPerBank_));
    rollSegment();
}

void
TraceCore::rollSegment()
{
    if (!recorded_.empty()) {
        std::uint64_t gap = std::max<std::uint64_t>(
            1, recorded_[recordedPos_].gap);
        gap = std::min(gap, instructionsLeft_);
        segment_ = gap;
        computeTime_ = static_cast<Time>(
            static_cast<double>(gap) * params_.cpi *
            static_cast<double>(units::ns));
        return;
    }
    // Geometric-ish inter-load instruction gap around 1000 / MPKI.
    const double mean_gap = 1000.0 / params_.mpki;
    const double u = std::max(1e-9, rng_.uniform());
    auto gap = static_cast<std::uint64_t>(
        std::max(1.0, -mean_gap * std::log(u)));
    gap = std::min(gap, instructionsLeft_);
    segment_ = gap;
    computeTime_ = static_cast<Time>(
        static_cast<double>(gap) * params_.cpi *
        static_cast<double>(units::ns));
}

void
TraceCore::next(BankId &bank, RowId &row)
{
    if (!recorded_.empty()) {
        bank = recorded_[recordedPos_].bank;
        row = recorded_[recordedPos_].row;
        recordedPos_ = (recordedPos_ + 1) % recorded_.size();
        return;
    }
    if (!rng_.chance(params_.rowHitProb)) {
        curBank_ = static_cast<BankId>(rng_.below(banks_));
        curRow_ = static_cast<RowId>(rng_.below(rowsPerBank_));
    }
    bank = curBank_;
    row = curRow_;
}

void
TraceCore::onComplete()
{
    done_ += segment_;
    instructionsLeft_ -= segment_;
    if (instructionsLeft_ > 0)
        rollSegment();
}

} // namespace pud::sim
