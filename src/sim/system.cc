#include "sim/system.h"

#include <algorithm>
#include <limits>

#include "util/logging.h"

namespace pud::sim {

namespace {

constexpr Time kInf = std::numeric_limits<Time>::max() / 4;

/** Kind of a memory request in the controller. */
enum class Kind : std::uint8_t { Read, Simra, Comra };

struct Request
{
    Time arrival = 0;
    int core = -1;  //!< -1 for PuD requests
    BankId bank = 0;
    RowId row = 0;
    Kind kind = Kind::Read;
};

struct BankCtl
{
    Time freeAt = 0;
    RowId openRow = dram::kNoRow;
    int hitStreak = 0;
    std::vector<Request> queue;
};

/** Push a service start out of any refresh window it falls into. */
Time
afterRefresh(const MemTimings &mem, Time t)
{
    const Time k = t / mem.tREFI;
    const Time window_start = k * mem.tREFI;
    if (t < window_start + mem.tRFC)
        return window_start + mem.tRFC;
    return t;
}

} // namespace

RunResult
runSystem(const SystemConfig &cfg, const std::vector<WorkloadParams> &cores)
{
    RunResult result;

    std::vector<TraceCore> trace;
    trace.reserve(cores.size());
    for (std::size_t c = 0; c < cores.size(); ++c) {
        trace.emplace_back(static_cast<int>(c), cores[c],
                           cfg.instructionsPerCore, cfg.banks,
                           cfg.rowsPerBank, cfg.seed);
    }

    std::vector<BankCtl> banks(cfg.banks);
    mitigation::PracCounters prac(cfg.prac, cfg.banks, cfg.rowsPerBank);

    // SiMRA group / CoMRA pair used by the PuD core: a fixed compute
    // region at the top of the PuD bank.
    std::vector<RowId> simra_rows;
    for (int i = 0; i < cfg.pudSimraN; ++i)
        simra_rows.push_back(static_cast<RowId>(i));
    const RowId comra_src = static_cast<RowId>(cfg.pudSimraN);
    const RowId comra_dst = static_cast<RowId>(cfg.pudSimraN + 2);

    // Per-core next-issue times (kInf while a request is outstanding
    // or the core is done).
    std::vector<Time> core_next(trace.size());
    for (std::size_t c = 0; c < trace.size(); ++c)
        core_next[c] = trace[c].nextIssueTime(0);

    Time pud_next = cfg.pudPeriod > 0 ? cfg.pudPeriod : kInf;
    Time block_until = 0;  //!< PRAC alert back-off (all banks)

    auto all_done = [&] {
        return std::all_of(trace.begin(), trace.end(),
                           [](const TraceCore &t) { return t.done(); });
    };

    std::uint64_t guard = 0;
    while (!all_done()) {
        if (++guard > 200'000'000ULL)
            fatal("runSystem: simulation failed to converge");

        // Next arrival event.
        Time t_arr = pud_next;
        int arr_core = -1;
        for (std::size_t c = 0; c < trace.size(); ++c) {
            if (core_next[c] < t_arr) {
                t_arr = core_next[c];
                arr_core = static_cast<int>(c);
            }
        }

        // Next serviceable bank.
        Time t_srv = kInf;
        BankId srv_bank = 0;
        for (BankId b = 0; b < cfg.banks; ++b) {
            if (banks[b].queue.empty())
                continue;
            Time earliest = kInf;
            for (const Request &r : banks[b].queue)
                earliest = std::min(earliest, r.arrival);
            Time t = std::max({banks[b].freeAt, block_until, earliest});
            t = afterRefresh(cfg.mem, t);
            if (t < t_srv) {
                t_srv = t;
                srv_bank = b;
            }
        }

        if (t_arr <= t_srv) {
            if (t_arr == kInf)
                fatal("runSystem: deadlock (no events)");
            if (arr_core >= 0) {
                // Trace-core load.
                Request r;
                r.arrival = t_arr;
                r.core = arr_core;
                trace[arr_core].next(r.bank, r.row);
                r.kind = Kind::Read;
                banks[r.bank].queue.push_back(r);
                core_next[arr_core] = kInf;  // outstanding
                ++result.requests;
            } else {
                // PuD core: one SiMRA + one CoMRA, back to back.  The
                // core is closed-loop: the next pair is scheduled when
                // this one completes (PuD software waits for its
                // operations to finish before issuing more).
                Request s;
                s.arrival = t_arr;
                s.bank = cfg.pudBank;
                s.kind = Kind::Simra;
                banks[s.bank].queue.push_back(s);
                Request c = s;
                c.kind = Kind::Comra;
                banks[c.bank].queue.push_back(c);
                pud_next = kInf;  // re-armed on CoMRA completion
                result.pudOps += 2;
            }
            continue;
        }

        // Serve one request on srv_bank at t_srv with FR-FCFS+Cap.
        BankCtl &bank = banks[srv_bank];
        std::size_t pick = bank.queue.size();
        bool picked_hit = false;
        if (bank.hitStreak < cfg.frfcfsCap) {
            for (std::size_t i = 0; i < bank.queue.size(); ++i) {
                const Request &r = bank.queue[i];
                if (r.arrival <= t_srv && r.kind == Kind::Read &&
                    r.row == bank.openRow) {
                    pick = i;
                    picked_hit = true;
                    break;
                }
            }
        }
        if (!picked_hit) {
            for (std::size_t i = 0; i < bank.queue.size(); ++i) {
                if (bank.queue[i].arrival > t_srv)
                    continue;
                if (pick == bank.queue.size() ||
                    bank.queue[i].arrival < bank.queue[pick].arrival)
                    pick = i;
            }
        }
        if (pick == bank.queue.size())
            panic("runSystem: no serviceable request at pick time");
        Request req = bank.queue[pick];
        bank.queue.erase(bank.queue.begin() +
                         static_cast<std::ptrdiff_t>(pick));

        Time busy = 0;
        bool alert = false;
        switch (req.kind) {
          case Kind::Read:
            if (picked_hit) {
                busy = cfg.mem.tCL + cfg.mem.tBurst;
                ++bank.hitStreak;
            } else {
                const bool was_open = bank.openRow != dram::kNoRow;
                busy = (was_open ? cfg.mem.tRP : Time(0)) +
                       cfg.mem.tRCD + cfg.mem.tCL + cfg.mem.tBurst;
                bank.openRow = req.row;
                bank.hitStreak = 1;
                if (cfg.pracEnabled)
                    alert = prac.onActivate(srv_bank, req.row);
            }
            break;
          case Kind::Simra:
            // ACT-PRE-ACT + tRAS + PRE: about one row cycle, plus the
            // sequential counter-update penalty for PRAC-AO.
            busy = cfg.mem.tRC;
            if (cfg.pracEnabled) {
                alert = prac.onSimra(srv_bank, simra_rows);
                busy += prac.updateLatency(cfg.pudSimraN);
            }
            bank.openRow = dram::kNoRow;
            bank.hitStreak = 0;
            break;
          case Kind::Comra:
            // ACT src + tRAS + PRE/ACT dst + tRAS + PRE.
            busy = cfg.mem.tRAS + cfg.mem.tRAS + cfg.mem.tRP;
            if (cfg.pracEnabled) {
                alert = prac.onComra(srv_bank, comra_src, comra_dst);
                busy += prac.updateLatency(2);
            }
            bank.openRow = dram::kNoRow;
            bank.hitStreak = 0;
            break;
        }

        const Time completion = t_srv + busy;
        bank.freeAt = completion;

        if (alert) {
            // Back-off (DDR5 ABO): the controller stops issuing ACTs
            // and services rfmsPerAlert all-bank RFMs; each RFM lets
            // the device refresh its hottest rows and reset their
            // counters.  Rows still at/above the RDT afterwards
            // re-assert the alert on their next activation, so a
            // saturated counter population (e.g. a SiMRA group under
            // weighted counting, or all rows under a naive RDT of 20)
            // produces a sustained back-off stream -- the mechanism
            // behind Fig. 25's overheads.
            ++result.alerts;
            Time t_block = std::max(block_until, completion);
            for (int k = 0; k < cfg.mem.rfmsPerAlert; ++k) {
                for (BankId b = 0; b < cfg.banks; ++b)
                    prac.onRfm(b);
                t_block += cfg.mem.tRFM;
                ++result.rfms;
            }
            block_until = t_block;
            for (BankId b = 0; b < cfg.banks; ++b) {
                banks[b].openRow = dram::kNoRow;
                banks[b].hitStreak = 0;
            }
        }

        if (req.kind == Kind::Comra && cfg.pudPeriod > 0)
            pud_next = completion + cfg.pudPeriod;

        if (req.core >= 0) {
            TraceCore &core = trace[req.core];
            core.onComplete();
            if (core.done()) {
                core.setFinishTime(completion);
                core_next[req.core] = kInf;
            } else {
                core_next[req.core] = core.nextIssueTime(completion);
            }
        }
    }

    result.endTime = 0;
    for (const TraceCore &core : trace) {
        result.endTime = std::max(result.endTime, core.finishTime());
        const double t_ns = units::toNs(core.finishTime());
        result.coreIpc.push_back(
            t_ns > 0 ? static_cast<double>(core.instructionsDone()) / t_ns
                     : 0.0);
    }
    return result;
}

double
weightedSpeedup(const SystemConfig &cfg,
                const std::vector<WorkloadParams> &mix)
{
    // IPC_alone: each workload solo, no PuD core, no mitigation.
    std::vector<double> alone;
    for (const WorkloadParams &w : mix) {
        SystemConfig solo = cfg;
        solo.pudPeriod = 0;
        solo.pracEnabled = false;
        const RunResult r = runSystem(solo, {w});
        alone.push_back(r.coreIpc.at(0));
    }

    const RunResult shared = runSystem(cfg, mix);
    double ws = 0.0;
    for (std::size_t c = 0; c < mix.size(); ++c) {
        if (alone[c] > 0)
            ws += shared.coreIpc.at(c) / alone[c];
    }
    return ws;
}

} // namespace pud::sim
