/**
 * @file
 * Cycle-level memory-system simulation for the §8.2 PRAC evaluation
 * (paper Fig. 25): a multi-bank DRAM controller with FR-FCFS+Cap
 * scheduling, periodic refresh, PRAC counters with alert/back-off RFM
 * storms, four trace cores, and one synthetic PuD core issuing
 * back-to-back SiMRA-32 + CoMRA operations at a sweepable period.
 */

#ifndef PUD_SIM_SYSTEM_H
#define PUD_SIM_SYSTEM_H

#include <cstdint>
#include <vector>

#include "mitigation/prac.h"
#include "sim/workload.h"

namespace pud::sim {

/** DDR5-like controller timing (ns-resolution Time). */
struct MemTimings
{
    Time tRP = units::fromNs(14);
    Time tRCD = units::fromNs(14);
    Time tCL = units::fromNs(14);
    Time tBurst = units::fromNs(4);
    Time tRC = units::fromNs(46);
    Time tRAS = units::fromNs(32);
    Time tREFI = units::fromNs(3900);
    Time tRFC = units::fromNs(295);
    Time tRFM = units::fromNs(350);
    int rfmsPerAlert = 4;  //!< all-bank RFMs per back-off event
};

/** Full system configuration for one run. */
struct SystemConfig
{
    MemTimings mem;

    /**
     * Geometry is scaled down so that per-row activation counts over
     * the (scaled-down) instruction budget match the paper's
     * 100M-instruction runs against full-size banks; what matters for
     * PRAC overhead is activations-per-row relative to the RDT.
     */
    BankId banks = 4;
    RowId rowsPerBank = 48;
    std::uint64_t instructionsPerCore = 400000;
    int frfcfsCap = 4;  //!< FR-FCFS+Cap row-hit streak cap

    /** PuD core: one SiMRA-32 + one CoMRA every period (0 = none). */
    Time pudPeriod = 0;
    int pudSimraN = 32;
    BankId pudBank = 0;

    bool pracEnabled = false;
    mitigation::PracConfig prac;

    std::uint64_t seed = 1;
};

/** Outcome of one system run. */
struct RunResult
{
    std::vector<double> coreIpc;  //!< instructions per ns, per core
    Time endTime = 0;
    std::uint64_t alerts = 0;       //!< PRAC back-off events
    std::uint64_t rfms = 0;
    std::uint64_t pudOps = 0;
    std::uint64_t requests = 0;
};

/** Run the system with the given per-core workloads. */
RunResult runSystem(const SystemConfig &cfg,
                    const std::vector<WorkloadParams> &cores);

/**
 * Weighted speedup of a mix under `cfg`:
 * sum over cores of IPC_shared / IPC_alone, with IPC_alone measured
 * solo on the unmitigated, PuD-free system.
 */
double weightedSpeedup(const SystemConfig &cfg,
                       const std::vector<WorkloadParams> &mix);

} // namespace pud::sim

#endif // PUD_SIM_SYSTEM_H
