/**
 * @file
 * Synthetic trace cores for the §8.2 system evaluation.
 *
 * The paper draws four workloads per mix from five benchmark suites
 * (SPEC CPU2006, SPEC CPU2017, TPC, MediaBench, YCSB) plus one
 * synthetic PuD workload.  Without the proprietary traces we model
 * each suite as an intensity class (memory accesses per kilo-
 * instruction and row-buffer locality drawn from the suites'
 * published characteristics); the mix generator reproduces the
 * 60-mix structure deterministically.
 */

#ifndef PUD_SIM_WORKLOAD_H
#define PUD_SIM_WORKLOAD_H

#include <cstdint>
#include <string>
#include <vector>

#include "dram/types.h"
#include "util/rng.h"
#include "util/units.h"

namespace pud::sim {

using dram::BankId;
using dram::RowId;

/** Memory-intensity class of one workload. */
struct WorkloadParams
{
    std::string name;
    double mpki = 10.0;        //!< loads per kilo-instruction
    double rowHitProb = 0.5;   //!< probability of staying in the row
    double cpi = 0.4;          //!< non-memory CPI (ns per instruction
                               //!< at the modeled clock)
};

/** The five suite presets. */
const std::vector<WorkloadParams> &suitePresets();

/**
 * Deterministic mix generator: mix k yields four workloads drawn from
 * the five suites with per-mix parameter jitter, matching the paper's
 * 60 five-core multiprogrammed mixes (the fifth core is the PuD
 * workload, configured separately).
 */
std::vector<WorkloadParams> makeMix(int mix_index);

/** One recorded trace entry: instruction gap, then a load. */
struct TraceEntry
{
    std::uint32_t gap = 1;  //!< instructions before the load
    BankId bank = 0;
    RowId row = 0;
};

/**
 * Load a recorded trace from disk.  The format is one entry per line,
 * "<gap> <bank> <row>", with '#' comments -- simple enough to write
 * from any profiler.
 */
std::vector<TraceEntry> loadTrace(const std::string &path);

/** Save a trace (the inverse of loadTrace). */
void saveTrace(const std::string &path,
               const std::vector<TraceEntry> &trace);

/**
 * Synthesize a reproducible trace from an intensity class, for
 * recording workloads to disk.
 */
std::vector<TraceEntry> synthesizeTrace(const WorkloadParams &params,
                                        std::uint64_t instructions,
                                        BankId banks,
                                        RowId rows_per_bank,
                                        std::uint64_t seed);

/**
 * An in-order trace core: retires `cpi`-paced instructions between
 * memory requests and blocks on each outstanding load (MLP 1).
 * Addresses come either from the synthetic generator or from a
 * recorded trace (replayed cyclically until the instruction budget
 * is spent).
 */
class TraceCore
{
  public:
    TraceCore(int id, const WorkloadParams &params,
              std::uint64_t instructions, BankId banks,
              RowId rows_per_bank, std::uint64_t seed);

    /** File-driven core: addresses and gaps replay `trace`. */
    TraceCore(int id, std::vector<TraceEntry> trace, double cpi,
              std::uint64_t instructions);

    bool done() const { return instructionsLeft_ == 0; }
    int id() const { return id_; }

    /** Time the next request is issued, given readiness at `t`. */
    Time nextIssueTime(Time t) const { return t + computeTime_; }

    /** Address of the next request (advances the trace). */
    void next(BankId &bank, RowId &row);

    /** Called when the outstanding request completes. */
    void onComplete();

    std::uint64_t instructionsDone() const { return done_; }
    Time finishTime() const { return finishTime_; }
    void setFinishTime(Time t) { finishTime_ = t; }

  private:
    void rollSegment();

    int id_;
    WorkloadParams params_;
    BankId banks_;
    RowId rowsPerBank_;
    Rng rng_;

    std::vector<TraceEntry> recorded_;
    std::size_t recordedPos_ = 0;

    std::uint64_t instructionsLeft_;
    std::uint64_t done_ = 0;
    std::uint64_t segment_ = 0;   //!< instructions until next load
    Time computeTime_ = 0;        //!< ns spent on the segment
    BankId curBank_ = 0;
    RowId curRow_ = 0;
    Time finishTime_ = 0;
};

} // namespace pud::sim

#endif // PUD_SIM_WORKLOAD_H
