/**
 * @file
 * Umbrella header for pud::obs plus the flag wiring every binary
 * shares.  `--trace=FILE` opens the JSONL trace sink, `--metrics`
 * enables the deterministic counter/histogram registry and prints it
 * to stdout at exit (stdout so the existing jobs=1-vs-jobs=2 output
 * diff in CI also proves metrics determinism).
 */

#ifndef PUD_OBS_OBS_H
#define PUD_OBS_OBS_H

#include <cstdlib>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/args.h"

namespace pud::obs {

/**
 * Wire --trace=FILE / --metrics.  Called from Scale::parse (all fig
 * benches) and from the pudhammer CLI; safe to call more than once.
 */
inline void
initFromArgs(const Args &args)
{
    if (args.has("trace") && !trace().enabled())
        trace().open(args.get("trace"));
    if (args.has("metrics") && !metrics().enabled()) {
        metrics().setEnabled(true);
        // Flush the merged snapshot to stdout at exit; the printout
        // is sorted and contains only deterministic quantities, so
        // it diffs clean across --jobs values.
        std::atexit([] { metrics().print(stdout); });
    }
}

} // namespace pud::obs

#endif // PUD_OBS_OBS_H
