#include "obs/trace.h"

#include <cmath>
#include <cstdlib>

#include "util/logging.h"

namespace pud::obs {

TraceWriter &
TraceWriter::instance()
{
    static TraceWriter writer;
    return writer;
}

void
TraceWriter::open(const std::string &path)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (file_)
        fatal("obs: trace already open (%s)", path_.c_str());
    file_ = std::fopen(path.c_str(), "w");
    if (!file_)
        fatal("obs: cannot open trace file '%s'", path.c_str());
    path_ = path;
    start_ = std::chrono::steady_clock::now();
    // Close on normal process exit so short-lived binaries still get
    // a complete trace without having to call close() themselves.
    static bool hooked = false;
    if (!hooked) {
        hooked = true;
        std::atexit([] { TraceWriter::instance().close(); });
    }
    std::fprintf(file_, "{\"ev\":\"trace_open\",\"ts\":0.000000}\n");
    detail::g_traceEnabled.store(true, std::memory_order_relaxed);
}

void
TraceWriter::close()
{
    std::lock_guard<std::mutex> lock(mu_);
    if (!file_)
        return;
    detail::g_traceEnabled.store(false, std::memory_order_relaxed);
    std::fprintf(file_,
                 "{\"ev\":\"trace_close\",\"ts\":%.6f,"
                 "\"wall_s\":%.6f}\n",
                 elapsedLocked(), elapsedLocked());
    std::fclose(file_);
    file_ = nullptr;
}

double
TraceWriter::elapsedLocked() const
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start_)
        .count();
}

void
TraceWriter::writeEscaped(std::FILE *f, const char *s)
{
    for (; *s; ++s) {
        const unsigned char c = (unsigned char)*s;
        switch (c) {
        case '"':
            std::fputs("\\\"", f);
            break;
        case '\\':
            std::fputs("\\\\", f);
            break;
        case '\n':
            std::fputs("\\n", f);
            break;
        case '\t':
            std::fputs("\\t", f);
            break;
        default:
            if (c < 0x20)
                std::fprintf(f, "\\u%04x", c);
            else
                std::fputc(c, f);
        }
    }
}

void
TraceWriter::event(const char *type,
                   std::initializer_list<TraceField> fields)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (!file_)
        return;
    std::fprintf(file_, "{\"ev\":\"%s\",\"ts\":%.6f", type,
                 elapsedLocked());
    for (const TraceField &f : fields) {
        std::fprintf(file_, ",\"%s\":", f.key);
        switch (f.kind) {
        case TraceField::Kind::Int:
            std::fprintf(file_, "%lld", (long long)f.i);
            break;
        case TraceField::Kind::Uint:
            std::fprintf(file_, "%llu", (unsigned long long)f.u);
            break;
        case TraceField::Kind::Double:
            if (std::isfinite(f.d))
                std::fprintf(file_, "%.6f", f.d);
            else
                std::fputs("null", file_);
            break;
        case TraceField::Kind::Bool:
            std::fputs(f.b ? "true" : "false", file_);
            break;
        case TraceField::Kind::Str:
            std::fputc('"', file_);
            writeEscaped(file_, f.s ? f.s : "");
            std::fputc('"', file_);
            break;
        }
    }
    std::fputs("}\n", file_);
}

} // namespace pud::obs
