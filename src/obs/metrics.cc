#include "obs/metrics.h"

#include <algorithm>

#include "util/logging.h"

namespace pud::obs {

MetricsRegistry &
MetricsRegistry::instance()
{
    static MetricsRegistry reg;
    return reg;
}

CounterId
MetricsRegistry::counterId(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    for (std::size_t i = 0; i < counterNames_.size(); ++i)
        if (counterNames_[i] == name)
            return i;
    if (counterNames_.size() >= kMaxCounters)
        panic("obs: counter cap (%zu) exceeded registering '%s'",
              kMaxCounters, name.c_str());
    counterNames_.push_back(name);
    return counterNames_.size() - 1;
}

HistId
MetricsRegistry::histId(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    for (std::size_t i = 0; i < histNames_.size(); ++i)
        if (histNames_[i] == name)
            return i;
    if (histNames_.size() >= kMaxHists)
        panic("obs: histogram cap (%zu) exceeded registering '%s'",
              kMaxHists, name.c_str());
    histNames_.push_back(name);
    return histNames_.size() - 1;
}

MetricsRegistry::Shard &
MetricsRegistry::shard()
{
    // One pointer per thread; the shard itself lives in the registry
    // so snapshot() can still see it after the thread exits.
    thread_local Shard *mine = nullptr;
    if (!mine)
        mine = &registerShard();
    return *mine;
}

MetricsRegistry::Shard &
MetricsRegistry::registerShard()
{
    std::lock_guard<std::mutex> lock(mu_);
    shards_.push_back(std::make_unique<Shard>());
    return *shards_.back();
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    std::lock_guard<std::mutex> lock(mu_);
    MetricsSnapshot snap;
    snap.counters.resize(counterNames_.size());
    for (std::size_t i = 0; i < counterNames_.size(); ++i)
        snap.counters[i].name = counterNames_[i];
    snap.hists.resize(histNames_.size());
    for (std::size_t i = 0; i < histNames_.size(); ++i) {
        snap.hists[i].name = histNames_[i];
        snap.hists[i].buckets.assign(kHistBuckets, 0);
    }
    for (const auto &sh : shards_) {
        for (std::size_t i = 0; i < snap.counters.size(); ++i)
            snap.counters[i].value +=
                sh->counters[i].load(std::memory_order_relaxed);
        for (std::size_t i = 0; i < snap.hists.size(); ++i)
            for (std::size_t b = 0; b < kHistBuckets; ++b) {
                const std::uint64_t c =
                    sh->hists[i][b].load(std::memory_order_relaxed);
                snap.hists[i].buckets[b] += c;
                snap.hists[i].total += c;
            }
    }
    auto byName = [](const auto &a, const auto &b) {
        return a.name < b.name;
    };
    std::sort(snap.counters.begin(), snap.counters.end(), byName);
    std::sort(snap.hists.begin(), snap.hists.end(), byName);
    return snap;
}

void
MetricsRegistry::print(std::FILE *out) const
{
    const MetricsSnapshot snap = snapshot();
    std::fprintf(out, "# metrics\n");
    for (const auto &c : snap.counters)
        std::fprintf(out, "%-44s %llu\n", c.name.c_str(),
                     (unsigned long long)c.value);
    for (const auto &h : snap.hists) {
        std::fprintf(out, "%-44s n=%llu\n", h.name.c_str(),
                     (unsigned long long)h.total);
        for (std::size_t b = 0; b < h.buckets.size(); ++b) {
            if (!h.buckets[b])
                continue;
            std::fprintf(out, "  [>=%llu] %llu\n",
                         (unsigned long long)bucketLow(b),
                         (unsigned long long)h.buckets[b]);
        }
    }
}

void
MetricsRegistry::reset()
{
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto &sh : shards_) {
        for (auto &c : sh->counters)
            c.store(0, std::memory_order_relaxed);
        for (auto &hist : sh->hists)
            for (auto &b : hist)
                b.store(0, std::memory_order_relaxed);
    }
}

} // namespace pud::obs
