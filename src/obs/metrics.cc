#include "obs/metrics.h"

#include <algorithm>

#include "util/logging.h"

namespace pud::obs {

MetricsRegistry &
MetricsRegistry::instance()
{
    static MetricsRegistry reg;
    return reg;
}

CounterId
MetricsRegistry::counterId(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    for (std::size_t i = 0; i < counterNames_.size(); ++i)
        if (counterNames_[i] == name)
            return i;
    if (counterNames_.size() >= kMaxCounters)
        panic("obs: counter cap (%zu) exceeded registering '%s'",
              kMaxCounters, name.c_str());
    counterNames_.push_back(name);
    return counterNames_.size() - 1;
}

HistId
MetricsRegistry::histId(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    for (std::size_t i = 0; i < histNames_.size(); ++i)
        if (histNames_[i] == name)
            return i;
    if (histNames_.size() >= kMaxHists)
        panic("obs: histogram cap (%zu) exceeded registering '%s'",
              kMaxHists, name.c_str());
    histNames_.push_back(name);
    return histNames_.size() - 1;
}

MetricsRegistry::Shard &
MetricsRegistry::shard()
{
    // One pointer per thread; the shard itself lives in the registry
    // so snapshot() can still see it after the thread exits.
    thread_local Shard *mine = nullptr;
    if (!mine)
        mine = &registerShard();
    return *mine;
}

MetricsRegistry::Shard &
MetricsRegistry::registerShard()
{
    std::lock_guard<std::mutex> lock(mu_);
    shards_.push_back(std::make_unique<Shard>());
    return *shards_.back();
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    std::lock_guard<std::mutex> lock(mu_);
    MetricsSnapshot snap;
    snap.counters.resize(counterNames_.size());
    for (std::size_t i = 0; i < counterNames_.size(); ++i)
        snap.counters[i].name = counterNames_[i];
    snap.hists.resize(histNames_.size());
    for (std::size_t i = 0; i < histNames_.size(); ++i) {
        snap.hists[i].name = histNames_[i];
        snap.hists[i].buckets.assign(kHistBuckets, 0);
    }
    for (const auto &sh : shards_) {
        for (std::size_t i = 0; i < snap.counters.size(); ++i)
            snap.counters[i].value +=
                sh->counters[i].load(std::memory_order_relaxed);
        for (std::size_t i = 0; i < snap.hists.size(); ++i)
            for (std::size_t b = 0; b < kHistBuckets; ++b) {
                const std::uint64_t c =
                    sh->hists[i][b].load(std::memory_order_relaxed);
                snap.hists[i].buckets[b] += c;
                snap.hists[i].total += c;
            }
    }
    auto byName = [](const auto &a, const auto &b) {
        return a.name < b.name;
    };
    std::sort(snap.counters.begin(), snap.counters.end(), byName);
    std::sort(snap.hists.begin(), snap.hists.end(), byName);
    return snap;
}

void
MetricsRegistry::print(std::FILE *out) const
{
    const MetricsSnapshot snap = snapshot();
    std::fprintf(out, "# metrics\n");
    for (const auto &c : snap.counters)
        std::fprintf(out, "%-44s %llu\n", c.name.c_str(),
                     (unsigned long long)c.value);
    for (const auto &h : snap.hists) {
        std::fprintf(out, "%-44s n=%llu\n", h.name.c_str(),
                     (unsigned long long)h.total);
        for (std::size_t b = 0; b < h.buckets.size(); ++b) {
            if (!h.buckets[b])
                continue;
            std::fprintf(out, "  [>=%llu] %llu\n",
                         (unsigned long long)bucketLow(b),
                         (unsigned long long)h.buckets[b]);
        }
    }
}

void
MetricsRegistry::merge(const MetricsSnapshot &snap)
{
    for (const auto &c : snap.counters) {
        // Intern the name even at value 0 so a merged registry lists
        // exactly the counters the workers knew about -- otherwise a
        // zero counter would appear or vanish depending on which
        // process happened to touch its call site.
        const CounterId id = counterId(c.name);
        if (c.value != 0)
            shard().counters[id].fetch_add(c.value,
                                           std::memory_order_relaxed);
    }
    for (const auto &h : snap.hists) {
        const HistId id = histId(h.name);
        const std::size_t n =
            std::min<std::size_t>(h.buckets.size(), kHistBuckets);
        for (std::size_t b = 0; b < n; ++b)
            if (h.buckets[b])
                shard().hists[id][b].fetch_add(
                    h.buckets[b], std::memory_order_relaxed);
    }
}

void
MetricsRegistry::reset()
{
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto &sh : shards_) {
        for (auto &c : sh->counters)
            c.store(0, std::memory_order_relaxed);
        for (auto &hist : sh->hists)
            for (auto &b : hist)
                b.store(0, std::memory_order_relaxed);
    }
}

namespace {

void
appendJsonString(std::string &out, const std::string &s)
{
    out += '"';
    for (char ch : s) {
        switch (ch) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(ch) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", ch);
                out += buf;
            } else {
                out += ch;
            }
        }
    }
    out += '"';
}

/**
 * Minimal strict cursor over the exact JSON grammar snapshotToJson
 * emits (no floats, no nested objects beyond the fixed shape).  Not a
 * general JSON parser on purpose: the sidecar files are machine
 * written, so anything unexpected is corruption and should fail.
 */
struct JsonCursor
{
    const char *p;
    const char *end;

    void
    ws()
    {
        while (p < end &&
               (*p == ' ' || *p == '\n' || *p == '\t' || *p == '\r'))
            ++p;
    }

    bool
    lit(char c)
    {
        ws();
        if (p < end && *p == c) {
            ++p;
            return true;
        }
        return false;
    }

    bool
    str(std::string *out)
    {
        ws();
        if (p >= end || *p != '"')
            return false;
        ++p;
        out->clear();
        while (p < end && *p != '"') {
            char ch = *p++;
            if (ch == '\\') {
                if (p >= end)
                    return false;
                const char esc = *p++;
                switch (esc) {
                  case '"': ch = '"'; break;
                  case '\\': ch = '\\'; break;
                  case 'n': ch = '\n'; break;
                  case 't': ch = '\t'; break;
                  case 'u': {
                    if (end - p < 4)
                        return false;
                    unsigned v = 0;
                    for (int i = 0; i < 4; ++i) {
                        const char h = *p++;
                        v <<= 4;
                        if (h >= '0' && h <= '9')
                            v |= static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            v |= static_cast<unsigned>(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F')
                            v |= static_cast<unsigned>(h - 'A' + 10);
                        else
                            return false;
                    }
                    if (v > 0x7F)
                        return false;  // names are ASCII
                    ch = static_cast<char>(v);
                    break;
                  }
                  default:
                    return false;
                }
            }
            *out += ch;
        }
        if (p >= end)
            return false;
        ++p;  // closing quote
        return true;
    }

    bool
    u64(std::uint64_t *out)
    {
        ws();
        if (p >= end || *p < '0' || *p > '9')
            return false;
        std::uint64_t v = 0;
        while (p < end && *p >= '0' && *p <= '9') {
            const std::uint64_t d =
                static_cast<std::uint64_t>(*p - '0');
            if (v > (~0ULL - d) / 10)
                return false;  // overflow
            v = v * 10 + d;
            ++p;
        }
        *out = v;
        return true;
    }
};

} // namespace

std::string
snapshotToJson(const MetricsSnapshot &snap)
{
    std::string out = "{\"counters\":[";
    bool first = true;
    for (const auto &c : snap.counters) {
        if (!first)
            out += ',';
        first = false;
        out += "{\"name\":";
        appendJsonString(out, c.name);
        out += ",\"value\":" + std::to_string(c.value) + '}';
    }
    out += "],\"hists\":[";
    first = true;
    for (const auto &h : snap.hists) {
        if (!first)
            out += ',';
        first = false;
        out += "{\"name\":";
        appendJsonString(out, h.name);
        out += ",\"buckets\":[";
        bool fb = true;
        for (std::size_t b = 0; b < h.buckets.size(); ++b) {
            if (!h.buckets[b])
                continue;
            if (!fb)
                out += ',';
            fb = false;
            out += '[' + std::to_string(b) + ',' +
                   std::to_string(h.buckets[b]) + ']';
        }
        out += "]}";
    }
    out += "]}";
    return out;
}

std::optional<MetricsSnapshot>
snapshotFromJson(std::string_view json)
{
    JsonCursor c{json.data(), json.data() + json.size()};
    MetricsSnapshot snap;
    std::string key;

    if (!c.lit('{') || !c.str(&key) || key != "counters" ||
        !c.lit(':') || !c.lit('['))
        return std::nullopt;
    c.ws();
    if (!c.lit(']')) {
        for (;;) {
            MetricsSnapshot::Counter counter;
            if (!c.lit('{') || !c.str(&key) || key != "name" ||
                !c.lit(':') || !c.str(&counter.name) || !c.lit(',') ||
                !c.str(&key) || key != "value" || !c.lit(':') ||
                !c.u64(&counter.value) || !c.lit('}'))
                return std::nullopt;
            snap.counters.push_back(std::move(counter));
            if (c.lit(','))
                continue;
            if (c.lit(']'))
                break;
            return std::nullopt;
        }
    }

    if (!c.lit(',') || !c.str(&key) || key != "hists" ||
        !c.lit(':') || !c.lit('['))
        return std::nullopt;
    c.ws();
    if (!c.lit(']')) {
        for (;;) {
            MetricsSnapshot::Hist hist;
            hist.buckets.assign(MetricsRegistry::kHistBuckets, 0);
            if (!c.lit('{') || !c.str(&key) || key != "name" ||
                !c.lit(':') || !c.str(&hist.name) || !c.lit(',') ||
                !c.str(&key) || key != "buckets" || !c.lit(':') ||
                !c.lit('['))
                return std::nullopt;
            c.ws();
            if (!c.lit(']')) {
                for (;;) {
                    std::uint64_t b = 0, count = 0;
                    if (!c.lit('[') || !c.u64(&b) || !c.lit(',') ||
                        !c.u64(&count) || !c.lit(']') ||
                        b >= MetricsRegistry::kHistBuckets)
                        return std::nullopt;
                    hist.buckets[b] = count;
                    hist.total += count;
                    if (c.lit(','))
                        continue;
                    if (c.lit(']'))
                        break;
                    return std::nullopt;
                }
            }
            if (!c.lit('}'))
                return std::nullopt;
            snap.hists.push_back(std::move(hist));
            if (c.lit(','))
                continue;
            if (c.lit(']'))
                break;
            return std::nullopt;
        }
    }
    if (!c.lit('}'))
        return std::nullopt;
    c.ws();
    if (c.p != c.end)
        return std::nullopt;
    return snap;
}

} // namespace pud::obs
