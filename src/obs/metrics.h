/**
 * @file
 * pud::obs metrics -- a process-wide registry of named counters and
 * fixed-bucket (power-of-two) histograms for the runtime layers.
 *
 * Design constraints (and why):
 *
 *  - *Lock-free hot path*: instrumentation sites sit inside the
 *    executor's command loop and the device's per-ACT paths, so an
 *    increment must never contend.  Every thread owns a private shard
 *    of plain relaxed-atomic slots; the only lock is taken once per
 *    thread (shard registration) and once per snapshot.
 *  - *Determinism*: the parallel runner guarantees bit-identical
 *    results for every --jobs value, and the metrics output keeps that
 *    promise: only deterministic quantities (operation counts, device
 *    time, sizes) are ever recorded -- wall-clock timing belongs in
 *    the trace (obs/trace.h), which makes no determinism claim.
 *    Snapshots merge all shards and sort by name, so the printout is
 *    byte-identical across thread counts and schedules.
 *  - *Zero cost when off*: every record path first reads one relaxed
 *    atomic bool; with --metrics absent that is the entire overhead.
 *
 * Instrumentation idiom (the id lookup is paid once per call site):
 *
 *   if (obs::metricsOn()) {
 *       static const obs::CounterId id =
 *           obs::metrics().counterId("executor.plan_cache_hits");
 *       obs::metrics().add(id);
 *   }
 */

#ifndef PUD_OBS_METRICS_H
#define PUD_OBS_METRICS_H

#include <array>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace pud::obs {

using CounterId = std::size_t;
using HistId = std::size_t;

namespace detail {
/**
 * The global on/off flag lives outside the registry singleton so the
 * hot-path gate (`metricsOn()`) compiles down to one relaxed load --
 * calling into the Meyers singleton would cost an out-of-line call
 * plus its init guard on every ACT.
 */
inline std::atomic<bool> g_metricsEnabled{false};
} // namespace detail

/** Merged, name-sorted view of the registry at one point in time. */
struct MetricsSnapshot
{
    struct Counter
    {
        std::string name;
        std::uint64_t value = 0;
    };

    struct Hist
    {
        std::string name;
        std::uint64_t total = 0;  //!< sum of all bucket counts
        /** buckets[0] counts value 0; buckets[b] counts
         *  [2^(b-1), 2^b) for b >= 1. */
        std::vector<std::uint64_t> buckets;
    };

    std::vector<Counter> counters;
    std::vector<Hist> hists;
};

/** Registry of named counters and power-of-two-bucket histograms. */
class MetricsRegistry
{
  public:
    /** Hard caps keep per-thread shards fixed-size (lock-free). */
    static constexpr std::size_t kMaxCounters = 64;
    static constexpr std::size_t kMaxHists = 32;
    /** Bucket 0 = value 0, bucket b = [2^(b-1), 2^b), b in 1..64. */
    static constexpr std::size_t kHistBuckets = 65;

    static MetricsRegistry &instance();

    void
    setEnabled(bool on)
    {
        detail::g_metricsEnabled.store(on, std::memory_order_relaxed);
    }

    bool
    enabled() const
    {
        return detail::g_metricsEnabled.load(
            std::memory_order_relaxed);
    }

    /** Intern a counter name; idempotent, fatal past kMaxCounters. */
    CounterId counterId(const std::string &name);

    /** Intern a histogram name; idempotent, fatal past kMaxHists. */
    HistId histId(const std::string &name);

    /** Lock-free: touches only the calling thread's shard. */
    void
    add(CounterId id, std::uint64_t delta = 1)
    {
        if (!enabled())
            return;
        shard().counters[id].fetch_add(delta,
                                       std::memory_order_relaxed);
    }

    /** Lock-free: one bucket increment in the thread's shard. */
    void
    observe(HistId id, std::uint64_t value)
    {
        if (!enabled())
            return;
        shard().hists[id][bucketOf(value)].fetch_add(
            1, std::memory_order_relaxed);
    }

    /** Bucket index of a value (0, or its bit width). */
    static std::size_t
    bucketOf(std::uint64_t v)
    {
        std::size_t b = 0;
        while (v) {
            ++b;
            v >>= 1;
        }
        return b;
    }

    /** Inclusive-exclusive bounds of a bucket (b >= 1). */
    static std::uint64_t
    bucketLow(std::size_t b)
    {
        return b <= 1 ? 0 : std::uint64_t(1) << (b - 1);
    }

    /** Merge every shard; counters/hists come back sorted by name. */
    MetricsSnapshot snapshot() const;

    /**
     * Print the snapshot, deterministically: one line per counter,
     * one per histogram (non-empty buckets only), sorted by name.
     * Only deterministic quantities are recorded, so for a fixed
     * workload this output is byte-identical across --jobs values.
     */
    void print(std::FILE *out) const;

    /** Zero every shard (tests; not safe against concurrent writers). */
    void reset();

    /**
     * Fold a snapshot from another process into this registry (names
     * are interned on the fly, values add into the calling thread's
     * shard).  This is how the popsweep supervisor propagates worker
     * metrics: every worker dumps its snapshot beside its checkpoint
     * and the supervisor merges them, so the final name-sorted print
     * stays deterministic across worker counts -- counter sums are
     * partition-independent.  Works regardless of the enabled flag.
     */
    void merge(const MetricsSnapshot &snap);

  private:
    struct Shard
    {
        std::array<std::atomic<std::uint64_t>, kMaxCounters> counters{};
        std::array<std::array<std::atomic<std::uint64_t>, kHistBuckets>,
                   kMaxHists>
            hists{};
    };

    MetricsRegistry() = default;

    Shard &shard();
    Shard &registerShard();

    mutable std::mutex mu_;  //!< guards names and the shard list
    std::vector<std::string> counterNames_;
    std::vector<std::string> histNames_;
    std::vector<std::unique_ptr<Shard>> shards_;
};

/** The process-wide registry. */
inline MetricsRegistry &
metrics()
{
    return MetricsRegistry::instance();
}

/** Cheap global check instrumentation sites branch on. */
inline bool
metricsOn()
{
    return detail::g_metricsEnabled.load(std::memory_order_relaxed);
}

/**
 * Snapshot <-> JSON, for cross-process metrics propagation (worker
 * sidecar files).  The JSON is deterministic: a name-sorted snapshot
 * serializes to byte-identical output, and
 * snapshotFromJson(snapshotToJson(s)) reproduces s exactly (empty
 * histogram buckets are elided on both sides).
 */
std::string snapshotToJson(const MetricsSnapshot &snap);

/** Strict parser for snapshotToJson output; nullopt when malformed. */
std::optional<MetricsSnapshot> snapshotFromJson(std::string_view json);

} // namespace pud::obs

#endif // PUD_OBS_METRICS_H
