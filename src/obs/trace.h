/**
 * @file
 * pud::obs trace -- a structured JSONL event sink.
 *
 * One line per event, flat JSON objects only.  Every event carries
 *
 *   ev : string  event type (see DESIGN.md section 7 for the schema)
 *   ts : double  seconds since the trace was opened (steady clock)
 *
 * plus typed event-specific fields.  The writer is a process-wide
 * singleton guarded by a mutex: events from worker threads interleave
 * at line granularity and `ts` is read under the same lock, so
 * timestamps are monotonically non-decreasing in file order --
 * tools/check_trace.py asserts exactly that.
 *
 * The trace intentionally makes NO determinism promise: it records
 * wall-clock timing and thread interleaving, the two things the
 * deterministic metrics output (obs/metrics.h) must exclude.
 *
 * Instrumentation idiom:
 *
 *   if (obs::traceOn())
 *       obs::trace().event("plan_cache_hit", {{"hash", hash}});
 */

#ifndef PUD_OBS_TRACE_H
#define PUD_OBS_TRACE_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <initializer_list>
#include <mutex>
#include <string>

namespace pud::obs {

namespace detail {
/**
 * Hot-path gate; lives outside the writer singleton so `traceOn()`
 * is a single relaxed load instead of an out-of-line singleton call.
 */
inline std::atomic<bool> g_traceEnabled{false};
} // namespace detail

/** One "key": value pair of a trace event. */
struct TraceField
{
    enum class Kind
    {
        Int,
        Uint,
        Double,
        Bool,
        Str
    };

    TraceField(const char *k, std::int64_t v)
        : key(k), kind(Kind::Int), i(v)
    {}
    TraceField(const char *k, int v)
        : key(k), kind(Kind::Int), i(v)
    {}
    TraceField(const char *k, std::uint64_t v)
        : key(k), kind(Kind::Uint), u(v)
    {}
    TraceField(const char *k, unsigned v)
        : key(k), kind(Kind::Uint), u(v)
    {}
    TraceField(const char *k, double v)
        : key(k), kind(Kind::Double), d(v)
    {}
    TraceField(const char *k, bool v)
        : key(k), kind(Kind::Bool), b(v)
    {}
    TraceField(const char *k, const char *v)
        : key(k), kind(Kind::Str), s(v)
    {}
    TraceField(const char *k, const std::string &v)
        : key(k), kind(Kind::Str), s(v.c_str())
    {}

    const char *key;
    Kind kind;
    std::int64_t i = 0;
    std::uint64_t u = 0;
    double d = 0;
    bool b = false;
    const char *s = nullptr;
};

/** Process-wide JSONL trace writer; inert until open() succeeds. */
class TraceWriter
{
  public:
    static TraceWriter &instance();

    /**
     * Open (truncate) @p path and emit `trace_open`.  Fatal if the
     * file cannot be created.  Registers an atexit hook so the
     * closing `trace_close` event is emitted even when a binary
     * simply returns from main().
     */
    void open(const std::string &path);

    /** Emit `trace_close` (with total wall seconds) and close. */
    void close();

    bool
    enabled() const
    {
        return detail::g_traceEnabled.load(
            std::memory_order_relaxed);
    }

    /** Append one event line; no-op when the trace is closed. */
    void event(const char *type,
               std::initializer_list<TraceField> fields);

    const std::string &
    path() const
    {
        return path_;
    }

  private:
    TraceWriter() = default;

    double elapsedLocked() const;
    static void writeEscaped(std::FILE *f, const char *s);

    std::mutex mu_;
    std::FILE *file_ = nullptr;
    std::string path_;
    std::chrono::steady_clock::time_point start_;
};

/** The process-wide trace writer. */
inline TraceWriter &
trace()
{
    return TraceWriter::instance();
}

/** Cheap global check instrumentation sites branch on. */
inline bool
traceOn()
{
    return detail::g_traceEnabled.load(std::memory_order_relaxed);
}

} // namespace pud::obs

#endif // PUD_OBS_TRACE_H
