#include "dram/disturb.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <utility>

#include "util/logging.h"

namespace pud::dram {

namespace {

/**
 * Piecewise log-log interpolation through (t_ns, gain) anchor points,
 * clamped to the endpoint values outside the anchor range.
 */
double
interpLogLog(const double (&ts)[4], const double (&gs)[4], double t_ns)
{
    if (t_ns <= ts[0])
        return gs[0];
    if (t_ns >= ts[3])
        return gs[3];
    for (int i = 0; i < 3; ++i) {
        if (t_ns <= ts[i + 1]) {
            const double f = (std::log(t_ns) - std::log(ts[i])) /
                             (std::log(ts[i + 1]) - std::log(ts[i]));
            return std::exp(std::log(gs[i]) +
                            f * (std::log(gs[i + 1]) - std::log(gs[i])));
        }
    }
    return gs[3];
}

// Press-gain anchors vs t_AggOn, calibrated to paper Figs. 8 and 17:
// RowPress 31.15x at 70.2us (Obs. 6), CoMRA 78.74x overall => dst-side
// gain 156.5 (DESIGN.md §4), and the CoMRA-vs-RowPress crossovers of
// Obs. 7 at 144ns / 7.8us / 70.2us.
constexpr double kPressT[4] = {36.0, 144.0, 7800.0, 70200.0};
constexpr double kPressConv[4] = {1.0, 1.878, 11.5, 31.15};
constexpr double kPressComra[4] = {1.0, 2.756, 14.48, 156.5};

// SiMRA press end factors per N (Obs. 18: 144.93x - 270.27x at 70.2us).
constexpr double kSimraPressEnd[5] = {270.27, 230.0, 185.0, 144.93, 160.0};

// Fractional log-progress of the SiMRA press curve at the anchor times.
constexpr double kSimraPressW[4] = {0.0, 0.15, 0.67, 1.0};

// CoMRA PRE->ACT delay: HC_first increase from 7.5ns to 12ns (Obs. 8).
double
comraDelayEnd(Manufacturer mfr)
{
    switch (mfr) {
      case Manufacturer::SKHynix: return 3.10;
      case Manufacturer::Micron:  return 1.18;
      case Manufacturer::Samsung: return 1.17;
      case Manufacturer::Nanya:   return 3.01;
    }
    return 1.0;
}

// SiMRA spatial-region damage gains per N index (Obs. 21: e.g. for
// 4-row activation the beginning of the subarray sees the highest
// HC_first; for 8-row activation the end does).
constexpr double kSimraRegionGain[5][kNumRegions] = {
    {0.95, 1.00, 1.05, 1.00, 0.95},  // N=2
    {0.70, 0.95, 1.10, 1.05, 1.00},  // N=4
    {1.05, 1.10, 1.00, 0.90, 0.70},  // N=8
    {0.90, 1.05, 1.10, 0.95, 0.85},  // N=16
    {1.00, 0.95, 1.05, 1.00, 0.90},  // N=32
};

// Non-sandwiched (edge) victims of a SiMRA group see only a mild
// per-N gain rather than the full SiMRA amplification: the paper's
// single-sided SiMRA beats single-sided RowHammer by just 1.17x at
// N=32 (Obs. 16) while sandwiched victims see >100x reductions, and
// the average HC_first falls 1.47x from N=2 to N=32 (Obs. 17).
constexpr double kSimraEdgeGain[5] = {0.30, 0.33, 0.36, 0.40, 0.44};

/** Damage scale for a cell whose flip direction is the class minority. */
double
minorityScale(TechClass cls, const WeakCell &cell)
{
    if (cls == TechClass::Simra)
        return cell.dirSimra == FlipDirection::ZeroToOne ? 0.05 : 1.0;
    return cell.dirConv == FlipDirection::OneToZero ? 0.85 : 1.0;
}

} // namespace

DisturbanceModel::DisturbanceModel(const DeviceConfig &cfg)
    : cfg_(cfg), rowsPerSubarray_(cfg.rowsPerSubarray)
{
}

double
DisturbanceModel::crossTransfer(TechClass from, TechClass to)
{
    if (from == to)
        return 1.0;
    // Cross-technique damage feeds only the conventional channel: the
    // trap-assisted leakage pathway RowHammer exploits is the common
    // denominator that multiple-row activation partially charges
    // (Obs. 22: CoMRA pre-hammering to 90% of its HC_first cuts the
    // subsequent RowHammer requirement by just 1.34x), while the
    // PuD-specific pathways are not charged by plain hammering --
    // otherwise a 90% pre-charged CoMRA accumulator would be topped up
    // by the RowHammer phase and flip at ~3x instead.
    if (to != TechClass::Conventional)
        return 0.0;
    return from == TechClass::Comra ? 0.30 : 0.35;
}

void
DisturbanceModel::deposit(WeakCell &cell, TechClass cls, float delta)
{
    const auto own = static_cast<int>(cls);
    cell.damage[own] += delta;
    for (int other = 0; other < 3; ++other) {
        if (other == own)
            continue;
        const auto to = static_cast<TechClass>(other);
        // Damage only transfers between classes pulling the cell's
        // bit the same way.
        if (cell.fromBit(cls) != cell.fromBit(to))
            continue;
        cell.damage[other] += static_cast<float>(
            crossTransfer(cls, to) * delta);
    }
}

void
DisturbanceModel::addDamage(WeakCell &cell, TechClass cls, float delta)
{
    deposit(cell, cls, delta);
    if (recording_)
        record_.push_back({&cell, delta, cls, false});
}

void
DisturbanceModel::replay(const DamageRecord &record, std::uint64_t times)
{
    // Fold the event stream into per-cell per-class deltas and a
    // reset flag; the per-iteration map is affine per accumulator.
    struct Net
    {
        float delta[3] = {0, 0, 0};
        bool reset = false;
    };
    std::unordered_map<WeakCell *, Net> net;
    for (const auto &e : record) {
        auto &state = net[e.cell];
        if (e.reset) {
            state.delta[0] = state.delta[1] = state.delta[2] = 0.0f;
            state.reset = true;
        } else {
            state.delta[static_cast<int>(e.cls)] += e.delta;
        }
    }
    for (const auto &[cell, state] : net) {
        if (state.reset)
            continue;  // fixed point already reached
        for (int cls = 0; cls < 3; ++cls) {
            if (state.delta[cls] != 0.0f) {
                deposit(*cell, static_cast<TechClass>(cls),
                        state.delta[cls] * static_cast<float>(times));
            }
        }
    }
}

double
DisturbanceModel::pressGain(TechClass cls, int simra_n, Time t_on) const
{
    const double t_ns = units::toNs(t_on);
    // A row open for less than tRAS only partially disturbs its
    // neighbours (charge restoration incomplete).
    if (t_ns < 36.0)
        return std::max(0.0, t_ns / 36.0);
    switch (cls) {
      case TechClass::Conventional:
        return interpLogLog(kPressT, kPressConv, t_ns);
      case TechClass::Comra:
        return interpLogLog(kPressT, kPressComra, t_ns);
      case TechClass::Simra: {
        const double end = kSimraPressEnd[simraIndex(simra_n)];
        double w;
        if (t_ns <= kPressT[0]) {
            w = 0.0;
        } else if (t_ns >= kPressT[3]) {
            w = 1.0;
        } else {
            w = 1.0;
            for (int i = 0; i < 3; ++i) {
                if (t_ns <= kPressT[i + 1]) {
                    const double f =
                        (std::log(t_ns) - std::log(kPressT[i])) /
                        (std::log(kPressT[i + 1]) - std::log(kPressT[i]));
                    w = kSimraPressW[i] +
                        f * (kSimraPressW[i + 1] - kSimraPressW[i]);
                    break;
                }
            }
        }
        return std::exp(std::log(end) * w);
      }
    }
    return 1.0;
}

double
DisturbanceModel::offGain(Time reopen_gap) const
{
    if (reopen_gap <= 0)
        return 1.0;
    // Normalized to 1.0 at the double-sided RowHammer cycle's natural
    // off-time (tRP + t_AggOn + tRP ~= 63.5 ns); shorter off-times --
    // e.g. plain single-sided hammering at tRP -- couple more weakly,
    // matching Obs. 5 (ss-CoMRA and far-ds-RH beat ss-RH ~1.4x).
    const double ratio = units::toNs(reopen_gap) / 63.5;
    return std::min(1.05, std::pow(ratio, 0.25));
}

double
DisturbanceModel::comraDelayGain(Time delay) const
{
    const double d_ns = units::toNs(delay);
    if (d_ns <= 7.5)
        return 1.0;
    const double end = comraDelayEnd(cfg_.profile.mfr);
    return std::pow(end, -(d_ns - 7.5) / 4.5);
}

double
DisturbanceModel::simraTimingGain(Time act_to_pre, Time pre_to_act) const
{
    double g = 1.0;
    // Partial activation at very small ACT->PRE gaps (Obs. 20).
    if (act_to_pre <= cfg_.timings.simraPartialActToPre)
        g /= 2.28;
    // Larger PRE->ACT gaps slightly strengthen the disturbance
    // (Obs. 19: 1.23x from 1.5ns to 4.5ns); normalized to 1.0 at 3ns.
    const double p_ns = units::toNs(pre_to_act);
    g *= 0.902 * std::pow(1.23, (p_ns - 1.5) / 3.0);
    return g;
}

double
DisturbanceModel::tempGain(TechClass cls, int simra_n, Celsius temp,
                           const WeakCell &cell) const
{
    const double dt = (temp - 80.0) / 30.0;
    switch (cls) {
      case TechClass::Conventional:
        return std::max(0.05, 1.0 + cell.tempSlopeConv * dt);
      case TechClass::Comra:
        return std::pow(cfg_.profile.comraTempGain50To80, dt);
      case TechClass::Simra:
        return std::pow(
            cfg_.profile.simraTempGain50To80[simraIndex(simra_n)], dt);
    }
    return 1.0;
}

double
DisturbanceModel::dataGain(const RowData &aggressor, ColId col,
                           bool victim_bit) const
{
    const bool aggr_bit = aggressor.get(col);
    double g = aggr_bit != victim_bit ? 1.0 : 0.75;
    // Local bitline alternation (checkerboard) strengthens coupling.
    const bool local_alt = aggressor.get(col) != aggressor.get(col ^ 1);
    if (!local_alt) {
        g *= 0.80;
        // Nanya's true-/anti-cell layout makes solid patterns
        // ineffective within a refresh window (paper footnote 1).
        if (cfg_.profile.trueAntiCells)
            g *= 0.05;
    }
    return g;
}

double
DisturbanceModel::regionGain(TechClass cls, int simra_n, Region region) const
{
    const auto r = static_cast<int>(region);
    switch (cls) {
      case TechClass::Conventional:
      case TechClass::Comra:
        // The family's spatial vulnerability profile applies to both
        // single-row and CoMRA activation (spatial variation in plain
        // RowHammer is well documented); this keeps Obs. 2 (CoMRA
        // lowers HC_first for ~99% of rows) true in every region
        // while still producing Fig. 11's per-region distributions.
        return cfg_.profile.comraRegionGain[r];
      case TechClass::Simra:
        // The family's spatial vulnerability profile underlies every
        // technique; SiMRA adds its own per-N trend on top (Obs. 21).
        return cfg_.profile.comraRegionGain[r] *
               kSimraRegionGain[simraIndex(simra_n)][r];
    }
    return 1.0;
}

Region
DisturbanceModel::regionOf(RowId physical_row) const
{
    const RowId offset = physical_row % rowsPerSubarray_;
    const auto r = std::min<RowId>(
        kNumRegions - 1, offset * kNumRegions / rowsPerSubarray_);
    return static_cast<Region>(r);
}

double
foldThreshold(const DeviceConfig &cfg, const AggregateExposure &e,
              double base_hc)
{
    if (base_hc <= 0.0 || e.weightedCloses <= 0.0)
        return 0.0;
    const DisturbanceModel model(cfg);
    // Population-neutral cell: tempSlopeConv 0 (no conventional
    // temperature trend at the population level), majority flip
    // direction, upperShare 0.5 -- so dist_w at distance 1 is exactly
    // 1.0 and minorityScale/dataGain stay out of the fold (the anchors
    // were measured at the worst-case data pattern, i.e. dataGain 1).
    const WeakCell neutral;
    const double side = e.doubleSided ? 1.0 : cfg.singleSidedScale;
    double gain = side * model.pressGain(e.cls, e.simraN, e.tOn) *
                  model.regionGain(e.cls, e.simraN, e.region) *
                  model.tempGain(e.cls, e.simraN, e.temperature, neutral);
    switch (e.cls) {
      case TechClass::Comra:
        gain *= model.comraDelayGain(e.comraDelay);
        break;
      case TechClass::Simra:
        gain *= model.simraTimingGain(e.simraActToPre, e.simraPreToAct);
        break;
      case TechClass::Conventional:
        break;
    }
    return e.weightedCloses * gain / (2.0 * base_hc);
}

void
DisturbanceModel::applyClose(std::vector<Row> &rows, const CloseEvent &event,
                             Celsius temperature)
{
    // Collect distance-1 / distance-2 victims of every closed aggressor.
    // The aggressor set is small (<= 32) so linear membership tests are
    // cheaper than hashing.
    auto is_aggressor = [&event](RowId r) {
        return std::find(event.rows.begin(), event.rows.end(), r) !=
               event.rows.end();
    };

    std::vector<Contribution> &contribs = contribScratch_;
    contribs.clear();
    contribs.reserve(event.rows.size() * 4);

    for (RowId a : event.rows) {
        const RowId sub = a / rowsPerSubarray_;
        for (int d : {-2, -1, 1, 2}) {
            const std::int64_t v =
                static_cast<std::int64_t>(a) + d;
            if (v < 0 || v >= static_cast<std::int64_t>(rows.size()))
                continue;
            const auto vr = static_cast<RowId>(v);
            if (vr / rowsPerSubarray_ != sub)
                continue;  // sense-amp isolation at subarray boundary
            if (is_aggressor(vr))
                continue;
            contribs.push_back({vr, a, d < 0 ? -d : d, d < 0 ? 1 : -1});
        }
    }

    // Group by victim.  Single-aggressor closes (the overwhelmingly
    // common case: every RowHammer/CoMRA half-cycle) emit victims in
    // strictly increasing order with no duplicates, so the sort would
    // be an exact no-op -- skip it.  Multi-row groups keep the sort:
    // with duplicate victim keys its (unstable) equal-key order fixes
    // the FP deposit order, which must not change under a perf tweak.
    if (event.rows.size() > 1) {
        std::sort(contribs.begin(), contribs.end(),
                  [](const Contribution &x, const Contribution &y) {
                      return x.victim < y.victim;
                  });
    }

    std::size_t i = 0;
    while (i < contribs.size()) {
        std::size_t j = i;
        while (j < contribs.size() &&
               contribs[j].victim == contribs[i].victim)
            ++j;

        const RowId victim_row = contribs[i].victim;
        Row &victim = rows[victim_row];

        bool has_left = false, has_right = false;
        for (std::size_t k = i; k < j; ++k) {
            if (contribs[k].side < 0)
                has_left = true;
            else
                has_right = true;
        }

        double side_strength;
        std::int8_t new_side;
        if (has_left && has_right) {
            side_strength = 1.0;
            new_side = 0;  // "both": next one-sided hit counts as a switch
        } else {
            const std::int8_t s = has_left ? -1 : 1;
            side_strength =
                (victim.lastSide != 0 && victim.lastSide != s)
                    ? 1.0
                    : cfg_.singleSidedScale;
            new_side = s;
        }

        const Region region = regionOf(victim_row);

        // The CoMRA amplification is local to the just-closed /
        // just-reopened wordline pair: it applies only to victims
        // within the blast radius of *both* operands (Obs. 5: a far
        // destination degenerates to far double-sided RowHammer).
        bool comra_local = false;
        if (event.cls == TechClass::Comra &&
            event.comraPartner != kNoRow) {
            const auto d =
                static_cast<std::int64_t>(victim_row) -
                static_cast<std::int64_t>(event.comraPartner);
            comra_local = d >= -2 && d <= 2;
        }
        const TechClass eff_cls =
            event.cls == TechClass::Comra && !comra_local
                ? TechClass::Conventional
                : event.cls;

        // Likewise, the full SiMRA amplification needs a sandwiched
        // victim; group-edge victims behave close to conventional
        // hammering (Obs. 16/17).
        const bool simra_sandwiched =
            eff_cls == TechClass::Simra && has_left && has_right;

        const double common =
            side_strength *
            pressGain(eff_cls, event.simraN, event.tOn) *
            (eff_cls == TechClass::Comra
                 ? comraDelayGain(event.comraDelay)
                 : eff_cls == TechClass::Simra
                       ? simraTimingGain(event.simraActToPre,
                                         event.simraPreToAct)
                       : 1.0) *
            (eff_cls == TechClass::Conventional
                 ? offGain(event.reopenGap)
                 : 1.0) *
            regionGain(eff_cls, event.simraN, region);

        // The CoMRA/SiMRA temperature gains are pow() of family
        // constants -- identical for every cell of the victim -- and so
        // is the SiMRA N index; hoist both out of the per-cell fold.
        // (The conventional class keeps its per-cell slope inline.)
        const int simra_idx = simraIndex(event.simraN);
        const WeakCell neutralCell;
        const double class_temp =
            eff_cls == TechClass::Conventional
                ? 1.0
                : tempGain(eff_cls, event.simraN, temperature,
                           neutralCell);
        const double simra_tech =
            simra_sandwiched ? 0.0 : kSimraEdgeGain[simra_idx];

        for (std::size_t k = i; k < j; ++k) {
            const Contribution &c = contribs[k];
            const RowData &aggr_data = rows[c.aggressor].data;

            for (WeakCell &cell : victim.cells) {
                const bool stored = victim.data.get(cell.col);
                if (stored != cell.fromBit(eff_cls))
                    continue;  // cannot flip in this class's direction

                double dist_w;
                if (c.distance == 1) {
                    // Per-cell split of the coupling between the upper
                    // and lower neighbour (mean-preserving).
                    dist_w = c.side > 0 ? 2.0 * cell.upperShare
                                        : 2.0 * (1.0 - cell.upperShare);
                } else {
                    dist_w = cfg_.distance2Weight;
                }

                double tech;
                switch (eff_cls) {
                  case TechClass::Comra:
                    tech = cell.comraFactor *
                           (event.comraDstRole ? cell.dstRoleGain
                                               : 1.0);
                    break;
                  case TechClass::Simra:
                    tech = simra_sandwiched
                               ? cell.simraFactor[simra_idx]
                               : simra_tech;
                    break;
                  default:
                    tech = 1.0;
                }

                const double cell_temp =
                    eff_cls == TechClass::Conventional
                        ? tempGain(eff_cls, event.simraN, temperature,
                                   cell)
                        : class_temp;
                const double delta =
                    common * dist_w * tech *
                    minorityScale(eff_cls, cell) * cell_temp *
                    dataGain(aggr_data, cell.col, stored) /
                    (2.0 * cell.baseHc * cell.trialScale);
                addDamage(cell, eff_cls, static_cast<float>(delta));
            }
        }

        victim.lastSide = new_side;
        i = j;
    }
}

} // namespace pud::dram
