/**
 * @file
 * Command-level DDR4 device model with multiple-row activation.
 *
 * The device consumes timestamped DDR4 commands (ACT, PRE, RD, WR,
 * REF) exactly as DRAM Bender issues them to a real module.  Timing
 * *violations are allowed* -- they are the mechanism behind
 * Processing-using-DRAM:
 *
 *  - ACT src ... PRE, ACT dst with the PRE->ACT gap below tRP and both
 *    rows in one subarray performs an in-DRAM RowClone copy (CoMRA).
 *  - ACT R1, PRE, ACT R2 with both gaps grossly violated activates the
 *    bit-combination row set simultaneously (SiMRA) on chips that
 *    tolerate the sequence (SK Hynix in the paper); other chips ignore
 *    the violating commands, matching the paper's §5.3 footnote.
 *
 * Every row-close feeds the DisturbanceModel, which accrues read-
 * disturbance damage on neighbouring rows' weak cells.  REF performs
 * stripe refresh and, when enabled, sampling-based Target Row Refresh.
 */

#ifndef PUD_DRAM_DEVICE_H
#define PUD_DRAM_DEVICE_H

#include <array>
#include <cstdint>
#include <vector>

#include "dram/cell.h"
#include "dram/config.h"
#include "dram/datapattern.h"
#include "dram/disturb.h"
#include "dram/mapping.h"
#include "dram/simra_decoder.h"
#include "dram/types.h"
#include "util/rng.h"
#include "util/units.h"

namespace pud::dram {

/** Aggregate command counters, exposed for tests and benches. */
struct DeviceCounters
{
    std::uint64_t acts = 0;       //!< explicit ACT commands
    std::uint64_t pres = 0;
    std::uint64_t refs = 0;
    std::uint64_t comraCopies = 0;   //!< detected CoMRA copy cycles
    std::uint64_t simraOps = 0;      //!< detected SiMRA group opens
    std::uint64_t ignoredCommands = 0;  //!< grossly violating, ignored
    std::uint64_t trrRefreshes = 0;     //!< TRR victim refreshes
};

/** A simulated DRAM module (rank granularity). */
/**
 * Observer-side mitigation mechanism attached to a Device.
 *
 * The device calls onClose() once per close event, immediately after
 * the event's disturbance deposit lands; the hook appends the
 * physical rows it wants preventively refreshed and the device
 * refreshes them on the spot (exactly like a TRR victim refresh:
 * flips materialize, damage resets).  SamplingTrr stays native
 * (setTrrEnabled) because it is driven by REF rather than by closes;
 * PRAC / PARA / Graphene models live in src/mitigation and implement
 * this interface.
 *
 * A device with a hook attached records loop iterations as
 * never-quiescent, so the executor falls back to exact naive
 * execution instead of arithmetic replay -- mitigation state machines
 * are not iteration-affine.
 */
class MitigationHook
{
  public:
    virtual ~MitigationHook() = default;

    /**
     * One close event in `bank`.  Append physical rows to refresh to
     * *refresh; out-of-range rows are ignored.
     */
    virtual void onClose(BankId bank, const CloseEvent &event,
                         std::vector<RowId> &refresh) = 0;
};

class Device
{
  public:
    /** Number of ACTs the TRR sampler considers before a REF (§7). */
    static constexpr std::size_t kTrrWindow = 450;

    explicit Device(DeviceConfig cfg);

    // ---- DDR command interface (t must be non-decreasing) -------------
    void act(Time t, BankId bank, RowId logical_row);
    void pre(Time t, BankId bank);
    void preAll(Time t);
    /** Read the open row (flip-composed view). */
    RowData rd(Time t, BankId bank);
    /** Write all currently open rows (SiMRA groups included). */
    void wr(Time t, BankId bank, const RowData &data);
    /** Stripe refresh + TRR; all banks must be precharged. */
    void ref(Time t);

    /** Apply any pending close events (end of a test program). */
    void flush();

    // ---- environment ----------------------------------------------------
    void setTemperature(Celsius c) { temperature_ = c; }
    Celsius temperature() const { return temperature_; }
    void setTrrEnabled(bool on) { trrEnabled_ = on; }
    bool trrEnabled() const { return trrEnabled_; }

    /**
     * Attach (or with nullptr detach) a close-driven mitigation.  The
     * hook is borrowed, not owned, and must outlive the device or be
     * detached first.
     */
    void setMitigation(MitigationHook *hook) { mitigation_ = hook; }
    MitigationHook *mitigation() const { return mitigation_; }

    /**
     * Clear every bank's TRR sampler ring.  Experiments use this to
     * isolate a measured pattern from preceding setup/profiling ACTs,
     * which would otherwise occupy the sampler window and distort the
     * first TRR decisions of the run.
     */
    void resetTrrSampler();

    /** Sampled ACT addresses currently held by a bank's TRR ring. */
    std::size_t
    trrSamplerFill(BankId bank) const
    {
        return banks_[bank].trrFill;
    }

    // ---- testbench (host-DMA) helpers ------------------------------------
    /** Write a row directly, restoring full charge (resets damage). */
    void writeRowDirect(BankId bank, RowId logical_row, const RowData &data);
    /** Read a row directly without disturbing anything. */
    RowData readRowDirect(BankId bank, RowId logical_row) const;

    // ---- executor fast-path recording ------------------------------------

    /**
     * One steady-state loop iteration, captured for arithmetic replay.
     * Beyond the per-cell damage deltas this remembers everything the
     * body does to iteration-dependent device state: the ACT addresses
     * it pushes into each bank's TRR sampler ring (in order), where
     * its REFs fall relative to those pushes, which rows it touches,
     * and the command-counter deltas.
     */
    struct LoopRecord
    {
        DamageRecord damage;  //!< per-cell deposits/resets, one iteration

        /** ACT/PRE/op counter deltas of one iteration (REF/TRR are
         *  counted live during replay instead). */
        DeviceCounters counterDelta;

        /** Per bank: ACT addresses sampled by TRR, in push order. */
        std::vector<std::vector<RowId>> samplerActs;

        /** One entry per REF in the body. */
        struct RefPoint
        {
            /** Per bank: sampler pushes issued before this REF. */
            std::vector<std::uint32_t> actsBefore;
        };
        std::vector<RefPoint> refs;

        /** Per bank, sorted: physical rows whose damage, data, or
         *  close-side state the body mutates (deposit victims are
         *  over-approximated by the +-2 blast radius). */
        std::vector<std::vector<RowId>> tracked;

        /** False if a refresh hit a tracked row *during* recording:
         *  the iteration is then not periodic and must not replay. */
        bool quiescent = true;
    };

    void beginLoopRecording();
    LoopRecord endLoopRecording();

    /**
     * Replay up to `max_iterations` further iterations of the recorded
     * body and return how many were committed.  Per virtual iteration
     * the TRR RNG draws and refresh counters advance exactly as a live
     * iteration would (the sampler ring is advanced closed-form at the
     * end); damage deposits are applied once, scaled by the committed
     * count.  Replay stops early -- a *phase break* -- the moment a
     * stripe or TRR refresh would land on a tracked row, with the RNG
     * rewound so the caller can execute that iteration live.
     */
    std::uint64_t replayLoopIterations(const LoopRecord &record,
                                       std::uint64_t max_iterations);

    /**
     * After a loop fast-path replay, advance every timestamp that was
     * set during the loop (pending closes, per-row last-close times)
     * by the skipped iterations' duration, so cross-loop-boundary
     * timing detection (CoMRA/SiMRA windows, off-time gains) behaves
     * exactly as if every iteration had executed.
     */
    void shiftLoopTimestamps(Time from, Time delta);

    // ---- introspection ----------------------------------------------------
    const DeviceConfig &config() const { return cfg_; }
    const DeviceCounters &counters() const { return counters_; }
    bool supportsSimra() const { return cfg_.profile.supportsSimra; }
    RowId rowsPerBank() const { return cfg_.rowsPerBank(); }
    RowId toPhysical(RowId logical) const { return mapping_.toPhysical(logical); }
    RowId toLogical(RowId physical) const { return mapping_.toLogical(physical); }
    SubarrayId
    subarrayOfPhysical(RowId physical) const
    {
        return physical / cfg_.rowsPerSubarray;
    }
    const DisturbanceModel &disturbModel() const { return disturb_; }
    Time now() const { return now_; }

    /** Test-only: the weak cells of a (logical) row (materializes it). */
    const std::vector<WeakCell> &weakCells(BankId bank,
                                           RowId logical_row) const;

    // ---- lazy row materialization ----------------------------------------

    /**
     * Eagerly draw every row's data and weak-cell population, exactly
     * as pre-fleet-scale Devices did at construction.  Row streams are
     * counter-based, so this is observably identical to letting rows
     * materialize on first touch; tests pin that equivalence, and the
     * population benches use it as the memory/startup-cost ablation
     * baseline.
     */
    void materializeAllRows();

    /** Rows whose weak-cell population has been drawn so far. */
    std::size_t populatedRowCount() const { return populatedRows_; }

    // ---- arena reuse ------------------------------------------------------

    /**
     * Return the device to the state a freshly constructed
     * `Device(cfg)` with `cfg.seed = seed` would have, in
     * O(populated rows) instead of O(all rows): only rows whose
     * weak-cell population was drawn are cleared (each bank keeps a
     * dense index-vector of them), bank shells and the row arrays keep
     * their allocations, and the per-module RNG streams are re-seeded
     * exactly as the constructor does.  Population sweeps use this to
     * reuse one Device arena per worker slot across thousands of
     * module instances; a test pins that a reset device reproduces a
     * fresh one's HC_first bit-identically.  Fatal while a loop
     * recording is active.
     */
    void reset(std::uint64_t seed);

  private:
    struct BankState
    {
        enum class St { Idle, Open, Precharging };

        std::vector<Row> rows;

        /**
         * Dense index-vector of the rows in `rows` whose population
         * has been drawn (in materialization order, not sorted).  This
         * is what keeps reset() O(populated rows): mostly-idle modules
         * at fleet scale touch a few dozen rows out of tens of
         * thousands, and the reset walks exactly those.
         */
        std::vector<RowId> populatedIdx;

        St st = St::Idle;
        std::vector<RowId> openRows;  //!< physical, sorted
        OpenKind openKind = OpenKind::Normal;
        Time openedAt = 0;
        Time comraDelayOfOpen = 0;
        RowId comraPartnerOfOpen = kNoRow;
        Time offGapOfOpen = 0;
        Time simraActToPre = 0;
        Time simraPreToAct = 0;

        bool pendingValid = false;
        CloseEvent pending;
        Time pendingClosedAt = 0;
        Time pendingOpenedAt = 0;
        OpenKind pendingKind = OpenKind::Normal;

        // TRR sampler: ring of the last kTrrWindow ACT row addresses.
        std::vector<RowId> trrRing;
        std::size_t trrPos = 0;
        std::size_t trrFill = 0;
    };

    /** First-touch bank shell: size the row array and TRR ring. */
    void touchBank(BankState &bank);

    /** Draw one row's data and weak cells from its keyed stream. */
    void populateRow(BankState &bank, RowId physical);

    /** Materializing accessor: every row mutation goes through here. */
    Row &
    rowAt(BankState &bank, RowId physical)
    {
        touchBank(bank);
        Row &row = bank.rows[physical];
        if (!row.populated) [[unlikely]]
            populateRow(bank, physical);
        return row;
    }

    void advanceTime(Time t);
    void flushPending(BankState &bank);
    void openNormal(BankState &bank, Time t, RowId physical);
    void trrRecord(BankState &bank, RowId physical);
    void refreshRow(BankState &bank, RowId physical);

    /** Restore a row's charge: materialize flips, clear damage. */
    void restoreRow(BankState &bank, RowId physical);

    std::size_t
    bankIndex(const BankState &bank) const
    {
        return static_cast<std::size_t>(&bank - banks_.data());
    }

    /** Loop-recording hook: the body mutates this row's state. */
    void
    noteLoopTouched(const BankState &bank, RowId physical)
    {
        if (recorder_.active && !recorder_.inRefresh)
            recorder_.touched[bankIndex(bank)].push_back(physical);
    }

    /** Flip-composed view of a row's contents. */
    static RowData viewOf(const Row &row);

    /** Overwrite all open rows with the column-wise majority. */
    void majorityMerge(BankState &bank);

    /** Scratch state while a loop iteration is being recorded. */
    struct LoopRecorder
    {
        bool active = false;
        bool inRefresh = false;  //!< suppress touched-row hooks
        DeviceCounters countersAtStart;
        std::vector<std::vector<RowId>> samplerActs;
        std::vector<LoopRecord::RefPoint> refs;
        std::vector<std::vector<RowId>> touched;
        /** (bank, row) refreshed during the recorded iteration. */
        std::vector<std::pair<std::size_t, RowId>> refreshTargets;
    };

    DeviceConfig cfg_;
    RowMapping mapping_;
    SimraDecoder decoder_;
    DisturbanceModel disturb_;
    std::vector<BankState> banks_;
    LoopRecorder recorder_;
    Celsius temperature_;
    bool trrEnabled_ = false;
    Time now_ = 0;
    std::uint64_t refCounter_ = 0;
    Rng trrRng_;
    Rng noiseRng_;
    DeviceCounters counters_;
    std::size_t populatedRows_ = 0;
    MitigationHook *mitigation_ = nullptr;
    std::vector<RowId> mitigationRefresh_;  //!< scratch for hook calls
};

} // namespace pud::dram

#endif // PUD_DRAM_DEVICE_H
