/**
 * @file
 * The read-disturbance model: turns aggressor-row close events into
 * damage on neighbouring rows' weak cells.
 *
 * This is the calibrated substitute for real DRAM silicon.  Every
 * condition dependence the paper characterizes is a multiplicative
 * factor on the per-event damage:
 *
 *   damage += sideStrength * distanceWeight
 *             * F_tech * F_press(t_on) * F_temp * F_data * F_region
 *             * F_timing / (2 * baseHc(cell))
 *
 * normalized so that an alternating double-sided RowHammer at the
 * reference conditions flips the weakest cell after exactly baseHc
 * hammers per aggressor.  Factor magnitudes are calibrated to the
 * paper's observations; see DESIGN.md §4 for the anchor table.
 */

#ifndef PUD_DRAM_DISTURB_H
#define PUD_DRAM_DISTURB_H

#include <vector>

#include "dram/cell.h"
#include "dram/config.h"
#include "dram/datapattern.h"
#include "dram/types.h"
#include "util/units.h"

namespace pud::dram {

/** Context of one aggressor row (group) being closed. */
struct CloseEvent
{
    /** Sorted physical rows that were open together (1 for non-SiMRA). */
    std::vector<RowId> rows;

    TechClass cls = TechClass::Conventional;

    /** Number of simultaneously activated rows (SiMRA only). */
    int simraN = 1;

    /** How long the row (group) stayed open. */
    Time tOn = 0;

    /** Violated PRE->ACT gap of the CoMRA cycle (both halves). */
    Time comraDelay = 0;

    /**
     * The other operand of the copy cycle.  The CoMRA amplification is
     * local to the just-closed/just-opened wordline pair: it only
     * applies to victims near *both* operands, which is why
     * single-sided CoMRA behaves like far double-sided RowHammer
     * (paper Obs. 5).
     */
    RowId comraPartner = kNoRow;

    /** True when this close is the destination half of the cycle. */
    bool comraDstRole = false;

    /**
     * The aggressor's off-time (t_AggOFF) *preceding* this open: the
     * gap between the row's previous close and this activation.
     * Longer off-times strengthen conventional hammering (RowPress
     * companion effect; what makes far double-sided RowHammer and
     * single-sided CoMRA beat plain single-sided RowHammer, Obs. 5).
     */
    Time reopenGap = 0;

    /** SiMRA ACT->PRE / PRE->ACT gaps of the ACT-PRE-ACT open. */
    Time simraActToPre = 0;
    Time simraPreToAct = 0;
};

/**
 * Aggregate exposure of one victim row, for static prediction.
 *
 * Where CloseEvent describes one concrete close, AggregateExposure
 * describes the *sum* of a program's closes as seen by one victim:
 * adjacency-weighted event count plus the representative condition
 * factors (sidedness, on-time, timing-delay) shared by those events.
 */
struct AggregateExposure
{
    TechClass cls = TechClass::Conventional;

    /** Number of simultaneously activated rows (SiMRA only). */
    int simraN = 2;

    /**
     * Aggressor close events weighted by distance (1.0 at distance 1,
     * DeviceConfig::distance2Weight at distance 2) summed over the
     * program.
     */
    double weightedCloses = 0;

    /** Representative per-close aggressor on-time. */
    Time tOn = 0;

    /** CoMRA PRE->ACT copy delay (Comra class only). */
    Time comraDelay = 0;

    /** SiMRA ACT->PRE / PRE->ACT gaps (Simra class only). */
    Time simraActToPre = 0;
    Time simraPreToAct = 0;

    /** Aggressors on both sides (sandwich) vs one side only. */
    bool doubleSided = true;

    /** Victim's spatial region within its subarray. */
    Region region = Region::Middle;

    Celsius temperature = 80.0;
};

/**
 * Pure threshold fold: the fractional damage a victim cell whose
 * double-sided reference HC_first is `base_hc` accrues under an
 * aggregate exposure -- the same multiplicative factor chain
 * DisturbanceModel::applyClose walks, evaluated population-neutrally
 * (zero temperature slope, majority flip direction, unit data gain,
 * mean distance-1 split).  The cell reads flipped once the returned
 * value reaches 1.0.
 *
 * This is what the static effect predictor (pud::lint) folds a
 * program's per-row activation totals through, using the family's
 * Table 2 anchors as `base_hc`, so the prediction and the device agree
 * by construction.
 */
double foldThreshold(const DeviceConfig &cfg, const AggregateExposure &e,
                     double base_hc);

/** One recorded damage event, for the executor's loop fast-path. */
struct DamageDelta
{
    WeakCell *cell;
    float delta;
    TechClass cls;  //!< originating technique class
    bool reset;     //!< charge restoration (aggressor self-refresh, WR)
};

/** Damage events of one loop iteration, replayable k more times. */
using DamageRecord = std::vector<DamageDelta>;

/**
 * Applies close events to a bank's rows.  Owned by Device; stateless
 * apart from calibration constants and an optional recording sink.
 */
class DisturbanceModel
{
  public:
    DisturbanceModel(const DeviceConfig &cfg);

    /**
     * Apply one close event to the rows of a bank.
     *
     * @param rows        the bank's physical row array
     * @param event       the closed aggressor context
     * @param temperature current chip temperature
     */
    void applyClose(std::vector<Row> &rows, const CloseEvent &event,
                    Celsius temperature);

    /** Start mirroring damage additions into a record. */
    void beginRecording() { recording_ = true; record_.clear(); }

    /** Stop mirroring and take the record. */
    DamageRecord
    endRecording()
    {
        recording_ = false;
        return std::move(record_);
    }

    /**
     * Re-apply a record's net per-iteration effect `times` more times.
     *
     * Per cell, one iteration is an affine map: if the cell was reset
     * during the iteration (it was activated/written, restoring its
     * charge), its post-iteration damage is a fixed point and further
     * iterations leave it unchanged; otherwise the iteration adds a
     * constant, which scales linearly with the remaining trip count.
     */
    static void replay(const DamageRecord &record, std::uint64_t times);

    /** Record a charge restoration while recording (no-op otherwise). */
    void
    noteReset(WeakCell &cell)
    {
        if (recording_)
            record_.push_back(
                {&cell, 0.0f, TechClass::Conventional, true});
    }

    // --- individual factors, exposed for unit tests -------------------

    /** Press gain vs t_AggOn for a technique class and SiMRA N. */
    double pressGain(TechClass cls, int simra_n, Time t_on) const;

    /** CoMRA PRE->ACT delay gain (1.0 at <= 7.5 ns). */
    double comraDelayGain(Time delay) const;

    /** SiMRA ACT->PRE / PRE->ACT timing gain. */
    double simraTimingGain(Time act_to_pre, Time pre_to_act) const;

    /** Temperature gain for a class (per-cell slope for conventional). */
    double tempGain(TechClass cls, int simra_n, Celsius temp,
                    const WeakCell &cell) const;

    /** Data-coupling gain given aggressor data and the victim bit. */
    double dataGain(const RowData &aggressor, ColId col,
                    bool victim_bit) const;

    /** Spatial region gain for a class. */
    double regionGain(TechClass cls, int simra_n, Region region) const;

    /** Aggressor off-time gain (conventional class only). */
    double offGain(Time reopen_gap) const;

    /** Region of a physical row within its subarray. */
    Region regionOf(RowId physical_row) const;

  private:
    void disturbVictim(Row &victim, RowId victim_row,
                       const CloseEvent &event,
                       const std::vector<Row> &rows, Celsius temperature,
                       const std::vector<RowId> &left_aggressors,
                       const std::vector<RowId> &right_aggressors);

    /**
     * Deposit damage from a class: full amount into the class's own
     * accumulator, and a calibrated cross-transfer fraction into the
     * other classes whose flip direction matches (see
     * crossTransfer()).
     */
    void addDamage(WeakCell &cell, TechClass cls, float delta);

    /** Cross-class damage transfer coefficient. */
    static double crossTransfer(TechClass from, TechClass to);

    /** Apply one deposit (shared by live path and replay). */
    static void deposit(WeakCell &cell, TechClass cls, float delta);

    /** One (victim, aggressor) adjacency of a close event. */
    struct Contribution
    {
        RowId victim;
        RowId aggressor;
        int distance;
        int side;  //!< -1: aggressor below victim, +1: above
    };

    DeviceConfig cfg_;
    RowId rowsPerSubarray_;

    /**
     * Scratch for applyClose, reused across close events.  Every close
     * of a fleet sweep's hammer loop used to heap-allocate a fresh
     * contribution vector; at 10^5+ modules that allocation churn is
     * measurable, so the model keeps the buffer warm instead (cleared,
     * never shrunk).
     */
    std::vector<Contribution> contribScratch_;

    bool recording_ = false;
    DamageRecord record_;
};

} // namespace pud::dram

#endif // PUD_DRAM_DISTURB_H
