/**
 * @file
 * The weak-cell model: per-cell read-disturbance thresholds and
 * accumulated damage.
 *
 * Each simulated DRAM row carries a handful of disturbance-prone weak
 * cells.  The weakest cell under the active conditions defines the
 * row's HC_first; the rest let bitflip *counts* keep growing past
 * HC_first, which the TRR experiment (paper Fig. 24) relies on.
 *
 * Damage accrues linearly: one aggressor activation event adds
 * 1 / HC_effective(cell | conditions); the cell's bit reads flipped
 * once accumulated damage reaches 1.  Linear accrual is what makes the
 * paper's combined RowHammer + CoMRA + SiMRA patterns (§6) compose.
 */

#ifndef PUD_DRAM_CELL_H
#define PUD_DRAM_CELL_H

#include <array>
#include <vector>

#include "dram/datapattern.h"
#include "dram/types.h"
#include "util/units.h"

namespace pud::dram {

/** One disturbance-prone cell within a row. */
struct WeakCell
{
    /** Bit position within the row. */
    ColId col = 0;

    /**
     * Double-sided RowHammer HC_first of this cell at the reference
     * conditions (80C, worst-case data pattern, nominal t_AggOn).
     */
    float baseHc = 1e9f;

    /** Damage gain when the activation is part of a CoMRA copy cycle. */
    float comraFactor = 1.0f;

    /** Damage gain for SiMRA, per N in {2, 4, 8, 16, 32}. */
    std::array<float, 5> simraFactor{1, 1, 1, 1, 1};

    /**
     * Fractional damage change per +30C for conventional hammering;
     * drawn with random sign per cell because the paper finds no clear
     * population-level RowHammer temperature trend.
     */
    float tempSlopeConv = 0.0f;

    /** Flip direction for conventional / CoMRA class disturbance. */
    FlipDirection dirConv = FlipDirection::ZeroToOne;

    /** Flip direction for SiMRA-class disturbance (Obs. 14: 1 -> 0). */
    FlipDirection dirSimra = FlipDirection::OneToZero;

    /**
     * Share of the distance-1 coupling felt from the upper neighbour
     * (the lower neighbour gets the complement); mean 0.5 preserves
     * the double-sided calibration.
     */
    float upperShare = 0.5f;

    /**
     * Small per-cell asymmetry between the two halves of a CoMRA copy
     * cycle (the destination is the quick-reopened wordline); this is
     * what makes reversing the copy direction matter (paper Obs. 9).
     */
    float dstRoleGain = 1.0f;

    /**
     * Trial-to-trial threshold variation: redrawn on every host write
     * (the start of a fresh trial).  Real DRAM cells show run-to-run
     * HC_first variation, which is why the paper repeats every
     * HC_first search five times and reports the minimum.
     */
    float trialScale = 1.0f;

    /**
     * Accumulated fractional damage per technique class (indexed by
     * TechClass).  Different disturbance mechanisms charge partially
     * disjoint trap populations, so cross-technique damage transfers
     * only a calibrated fraction (paper §6: pre-hammering with CoMRA
     * to 90% of its HC_first cuts the subsequent RowHammer
     * requirement by only 1.34x, not 10x).  The bit reads flipped
     * once any class's accumulator reaches 1.
     */
    std::array<float, 3> damage{0.0f, 0.0f, 0.0f};

    /** Sum across classes (reporting/testing only). */
    float
    totalDamage() const
    {
        return damage[0] + damage[1] + damage[2];
    }

    /** True once any accumulator crossed the flip threshold. */
    bool
    flipped() const
    {
        return damage[0] >= 1.0f || damage[1] >= 1.0f ||
               damage[2] >= 1.0f;
    }

    /** Clear all accumulators (charge restoration). */
    void
    resetDamage()
    {
        damage = {0.0f, 0.0f, 0.0f};
    }

    /** The charge state this cell flips away from, for a class. */
    bool
    fromBit(TechClass cls) const
    {
        const FlipDirection d =
            cls == TechClass::Simra ? dirSimra : dirConv;
        return d == FlipDirection::OneToZero;
    }
};

/** log2(N) - 1 index into per-N SiMRA tables for N in {2,4,8,16,32}. */
inline int
simraIndex(int n)
{
    switch (n) {
      case 2:  return 0;
      case 4:  return 1;
      case 8:  return 2;
      case 16: return 3;
      case 32: return 4;
    }
    return 0;
}

/** One DRAM row: stored data, weak cells, and alternation state. */
struct Row
{
    RowData data;
    std::vector<WeakCell> cells;

    /**
     * True once the row's data and weak-cell population have been
     * drawn (Device::populateRow).  Rows start as unpopulated shells
     * and materialize on first touch: the per-row threshold stream is
     * counter-based (keyed by seed, bank, row), so a lazily-built row
     * is bit-identical to the same row in an eagerly-built device.
     * Cannot be inferred from cells.empty(): weakCellsPerRow may be 0
     * (the differential checker runs flip-free devices).
     */
    bool populated = false;

    /** When this row last closed; -1 before its first activation. */
    Time lastCloseAt = -1;

    /**
     * Which side (-1 left, +1 right, 0 none) last disturbed this row,
     * for the double-sided synergy model: alternating or simultaneous
     * two-sided aggression couples at full strength; persistent
     * one-sided aggression is scaled down.
     */
    std::int8_t lastSide = 0;
};

} // namespace pud::dram

#endif // PUD_DRAM_CELL_H
