/**
 * @file
 * Data patterns used in memory reliability testing (paper §4.2).
 *
 * The paper tests the four classic byte patterns 0x00, 0xFF, 0xAA and
 * 0x55, filling aggressor rows with the pattern and victim rows with
 * its negation.  RowData is a packed bit vector holding one row's
 * contents.
 */

#ifndef PUD_DRAM_DATAPATTERN_H
#define PUD_DRAM_DATAPATTERN_H

#include <cstdint>
#include <vector>

#include "dram/types.h"

namespace pud::dram {

/** One of the four standard test byte patterns. */
enum class DataPattern : std::uint8_t
{
    P00 = 0x00,
    PFF = 0xFF,
    PAA = 0xAA,
    P55 = 0x55,
};

/** All four patterns in the order the paper's figures use. */
constexpr DataPattern kAllPatterns[] = {
    DataPattern::P00, DataPattern::PFF, DataPattern::PAA, DataPattern::P55,
};

/** The bitwise negation of a pattern (victim pattern convention). */
inline DataPattern
negate(DataPattern p)
{
    return static_cast<DataPattern>(~static_cast<std::uint8_t>(p) & 0xFF);
}

inline const char *
name(DataPattern p)
{
    switch (p) {
      case DataPattern::P00: return "0x00";
      case DataPattern::PFF: return "0xFF";
      case DataPattern::PAA: return "0xAA";
      case DataPattern::P55: return "0x55";
    }
    return "?";
}

/** True for the checkerboard patterns 0xAA / 0x55. */
inline bool
isCheckerboard(DataPattern p)
{
    return p == DataPattern::PAA || p == DataPattern::P55;
}

/** Packed row contents, 64 bits per word, LSB-first within a word. */
class RowData
{
  public:
    RowData() = default;

    explicit RowData(ColId bits)
        : bits_(bits), words_((bits + 63) / 64, 0)
    {}

    /** Construct filled with a repeating byte pattern. */
    RowData(ColId bits, DataPattern pattern)
        : RowData(bits)
    {
        fill(pattern);
    }

    ColId bits() const { return bits_; }

    bool
    get(ColId col) const
    {
        return (words_[col / 64] >> (col % 64)) & 1;
    }

    void
    set(ColId col, bool value)
    {
        if (value)
            words_[col / 64] |= 1ULL << (col % 64);
        else
            words_[col / 64] &= ~(1ULL << (col % 64));
    }

    void
    toggle(ColId col)
    {
        words_[col / 64] ^= 1ULL << (col % 64);
    }

    /** Fill with a repeating byte pattern. */
    void
    fill(DataPattern pattern)
    {
        const auto byte =
            static_cast<std::uint64_t>(static_cast<std::uint8_t>(pattern));
        std::uint64_t word = 0;
        for (int i = 0; i < 8; ++i)
            word |= byte << (8 * i);
        for (auto &w : words_)
            w = word;
        maskTail();
    }

    bool
    operator==(const RowData &other) const
    {
        return bits_ == other.bits_ && words_ == other.words_;
    }

    bool operator!=(const RowData &other) const { return !(*this == other); }

    /** Number of bit positions at which two rows differ. */
    std::size_t
    diffCount(const RowData &other) const
    {
        std::size_t n = 0;
        for (std::size_t i = 0; i < words_.size(); ++i)
            n += __builtin_popcountll(words_[i] ^ other.words_[i]);
        return n;
    }

    const std::vector<std::uint64_t> &words() const { return words_; }
    std::vector<std::uint64_t> &words() { return words_; }

  private:
    /** Zero bits past bits_ so equality/popcount stay exact. */
    void
    maskTail()
    {
        const ColId rem = bits_ % 64;
        if (rem && !words_.empty())
            words_.back() &= (1ULL << rem) - 1;
    }

    ColId bits_ = 0;
    std::vector<std::uint64_t> words_;
};

} // namespace pud::dram

#endif // PUD_DRAM_DATAPATTERN_H
