/**
 * @file
 * Row-decoder model for simultaneous multiple-row activation.
 *
 * Prior work (Yuksel et al., DSN'24; Olgun et al., QUAC-TRNG) shows
 * that issuing ACT R1 - PRE - ACT R2 with grossly violated timings
 * leaves multiple row-address latch stages driven, simultaneously
 * activating every row whose in-subarray address offset is a bitwise
 * combination of R1's and R2's offsets: 2^k rows for Hamming distance
 * k, giving the 2/4/8/16/32-row activations the paper uses.
 *
 * Matching the paper's footnote 3 (no sandwiched victim was found for
 * 32-row activation), the modeled decoder only resolves a Hamming
 * distance of 5 when bit 0 participates (a contiguous 32-row block);
 * any other unresolvable pair falls back to activating just the two
 * issued rows.
 */

#ifndef PUD_DRAM_SIMRA_DECODER_H
#define PUD_DRAM_SIMRA_DECODER_H

#include <algorithm>
#include <vector>

#include "dram/types.h"

namespace pud::dram {

/** Expand an ACT-PRE-ACT row pair into the simultaneously-activated set. */
class SimraDecoder
{
  public:
    explicit SimraDecoder(RowId rows_per_subarray)
        : rowsPerSubarray_(rows_per_subarray)
    {}

    /**
     * Compute the activated physical row set for issued physical rows
     * r1 and r2 (which must be in the same subarray).  The result is
     * sorted and always contains r1 and r2.
     */
    std::vector<RowId>
    activatedSet(RowId r1, RowId r2) const
    {
        const RowId base = (r1 / rowsPerSubarray_) * rowsPerSubarray_;
        const RowId o1 = r1 - base;
        const RowId o2 = r2 - base;
        const RowId mask = o1 ^ o2;
        const int hd = __builtin_popcount(mask);

        if (hd == 0)
            return {r1};
        if (hd > 5 || (hd == 5 && !(mask & 1))) {
            // Decoder cannot resolve the combination: only the two
            // issued wordlines fire.
            if (r1 == r2)
                return {r1};
            RowId lo = std::min(r1, r2), hi = std::max(r1, r2);
            return {lo, hi};
        }

        // Enumerate all bit combinations of the differing bits.
        std::vector<RowId> bits;
        for (int b = 0; b < 32; ++b)
            if (mask & (RowId(1) << b))
                bits.push_back(b);

        const RowId common = o1 & ~mask;
        std::vector<RowId> rows;
        rows.reserve(std::size_t(1) << bits.size());
        for (RowId combo = 0; combo < (RowId(1) << bits.size()); ++combo) {
            RowId offset = common;
            for (std::size_t i = 0; i < bits.size(); ++i)
                if (combo & (RowId(1) << i))
                    offset |= RowId(1) << bits[i];
            rows.push_back(base + offset);
        }
        std::sort(rows.begin(), rows.end());
        return rows;
    }

    RowId rowsPerSubarray() const { return rowsPerSubarray_; }

  private:
    RowId rowsPerSubarray_;
};

} // namespace pud::dram

#endif // PUD_DRAM_SIMRA_DECODER_H
