/**
 * @file
 * Device geometry, per-module-family calibration profiles, and the
 * analytic fit that turns the paper's Table 2 anchors into weak-cell
 * threshold distributions.
 *
 * The paper characterizes 14 DDR4 module families (Table 1 / Table 2)
 * and reports, per family, the minimum and average HC_first across all
 * tested rows for double-sided RowHammer, CoMRA, and SiMRA.  Those six
 * anchors, plus the per-observation condition factors (temperature,
 * data pattern, spatial region, timing), are the single source of
 * truth from which every simulated module's weak-cell population is
 * drawn.
 */

#ifndef PUD_DRAM_CONFIG_H
#define PUD_DRAM_CONFIG_H

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "dram/mapping.h"
#include "dram/timing.h"
#include "dram/types.h"

namespace pud::dram {

/**
 * Calibration anchors and condition-factor parameters for one module
 * family (one row of the paper's Table 2).
 */
struct FamilyProfile
{
    std::string moduleId;   //!< module identifier (e.g. HMA81GU7AFR8N-UH)
    Manufacturer mfr = Manufacturer::SKHynix;
    int numModules = 1;
    int numChips = 8;
    std::string density;    //!< e.g. "8Gb"
    std::string dieRev;     //!< e.g. "A"
    std::string org;        //!< e.g. "x8"

    // ---- Table 2 anchors: double-sided, WCDP, 80C, nominal timings ----
    double rhMin = 0, rhAvg = 0;        //!< RowHammer HC_first
    double comraMin = 0, comraAvg = 0;  //!< CoMRA HC_first
    double simraMin = 0, simraAvg = 0;  //!< SiMRA HC_first; 0 => no SiMRA

    /** Chips that ignore grossly violated commands cannot do SiMRA. */
    bool supportsSimra = false;

    /**
     * Nanya's complicated true-/anti-cell layout prevented the paper
     * from observing bitflips with solid (0x00/0xFF) patterns within a
     * refresh window; modeled as a large damage penalty for solid
     * aggressor patterns.
     */
    bool trueAntiCells = false;

    /**
     * Multiplicative increase of CoMRA disturbance from 50C to 80C
     * (Fig. 6): >1 means hotter is worse; Micron's trend is inverted.
     */
    double comraTempGain50To80 = 1.0;

    /** Per-N (2,4,8,16,32) SiMRA temperature gains 50C->80C (Fig. 15). */
    std::array<double, 5> simraTempGain50To80{1, 1, 1, 1, 1};

    /**
     * Per-region CoMRA damage multipliers (Fig. 11), normalized to
     * geometric mean 1 so Table 2 anchors are preserved.
     */
    std::array<double, kNumRegions> comraRegionGain{1, 1, 1, 1, 1};

    /** In-DRAM logical-to-physical row scrambling scheme. */
    MappingScheme mapping = MappingScheme::Sequential;
};

/**
 * Parameters of the per-cell threshold distributions, derived
 * analytically from a FamilyProfile by calibrate().
 */
struct CalibratedDistributions
{
    /** Lognormal of the per-row base (RowHammer) HC_first. */
    double rhMedian = 0;
    double rhSigma = 0;

    /** Lognormal of the per-row CoMRA damage-gain factor. */
    double comraFactorMedian = 1;
    double comraFactorSigma = 0.1;

    /** SiMRA gain mixture: regular component ... */
    double simraRegularMedian = 1;
    double simraRegularSigma = 0.5;
    /** ... and the extreme tail component (paper: >=25% of victim rows
     *  show >99% HC_first reduction for all N). */
    double simraExtremeMedian = 1;
    double simraExtremeSigma = 1.1;
    double simraExtremeFraction = 0.32;

    /** Reference tested-row population used for the min-anchor fit. */
    double population = 3000;
};

/** Fit the threshold distributions to a family's Table 2 anchors. */
CalibratedDistributions calibrate(const FamilyProfile &profile);

/** Inverse standard normal CDF (Acklam's approximation). */
double inverseNormalCdf(double p);

/** The 14 module families of the paper's Table 2. */
const std::vector<FamilyProfile> &table2Families();

/** Look up a family by module identifier; fatal() if unknown. */
const FamilyProfile &findFamily(const std::string &module_id);

/**
 * Full configuration of one simulated DRAM module.
 *
 * Geometry defaults are scaled down from real 8Gb chips (64K rows per
 * bank) to keep experiments fast; the characterization methodology is
 * geometry-independent.  A module is modeled at rank granularity: the
 * row width is the per-chip row slice, and bitflip counts aggregate
 * across the rank exactly as the real testbed reads them.
 */
struct DeviceConfig
{
    FamilyProfile profile;
    TimingParams timings;

    BankId banks = 2;
    SubarrayId subarraysPerBank = 8;
    RowId rowsPerSubarray = 512;
    ColId cols = 1024;             //!< bits per row

    /** Average number of disturbance-prone weak cells per row. */
    int weakCellsPerRow = 6;

    /** Fraction of the distance-1 coupling felt at distance 2. */
    double distance2Weight = 0.20;

    /** Damage penalty for hammering from one side only (no sandwich). */
    double singleSidedScale = 1.0 / 3.0;

    /**
     * Sigma of the per-trial lognormal threshold jitter, redrawn at
     * every host row write.  Zero (default) keeps the model fully
     * deterministic; characterization runs that use the paper's
     * repeat-five-take-minimum methodology enable it.
     */
    double trialNoiseSigma = 0.0;

    /** Device temperature at power-up; the testbed can change it. */
    Celsius temperature = 80.0;

    std::uint64_t seed = 1;

    RowId rowsPerBank() const { return subarraysPerBank * rowsPerSubarray; }
};

/** Convenience: default-geometry config for a Table 2 family. */
DeviceConfig makeConfig(const std::string &module_id, std::uint64_t seed = 1);

} // namespace pud::dram

#endif // PUD_DRAM_CONFIG_H
