/**
 * @file
 * DDR4 timing parameters (paper §2.1) and the violated-timing windows
 * that enable multiple-row activation (paper §4.1, §5.1).
 *
 * All figures are nominal DDR4-2400 values; the testing infrastructure
 * may issue commands that violate them -- that is precisely how CoMRA
 * and SiMRA are performed on commercial off-the-shelf chips.
 */

#ifndef PUD_DRAM_TIMING_H
#define PUD_DRAM_TIMING_H

#include "util/units.h"

namespace pud::dram {

/** Nominal timing parameter set plus multiple-row-activation windows. */
struct TimingParams
{
    // --- Nominal DDR4 parameters ---------------------------------------
    Time tRCD = units::fromNs(13.75);  //!< ACT to column command
    Time tRAS = units::fromNs(36.0);   //!< ACT to PRE (charge restore)
    Time tRP = units::fromNs(13.75);   //!< PRE to ACT
    Time tRC = units::fromNs(46.0);    //!< ACT to ACT (same bank)
    Time tWR = units::fromNs(15.0);    //!< write recovery
    Time tRFC = units::fromNs(350.0);  //!< REF to next command
    Time tREFI = units::fromNs(7800.0);   //!< REF interval
    Time tREFW = 64 * units::ms;          //!< refresh window

    // --- Multiple-row activation windows --------------------------------
    /**
     * A PRE -> ACT gap below this value, after a full tRAS restore and
     * targeting the same subarray, leaves the source row's charge on
     * the bitlines and turns the new activation into an in-DRAM copy
     * (CoMRA).  The paper sweeps 7.5 ns - 12 ns; nominal tRP (13.75 ns)
     * no longer copies.
     */
    Time comraMaxPreToAct = units::fromNs(13.0);

    /**
     * An ACT -> PRE gap at or below this value (grossly violating
     * tRAS), followed by a quick second ACT, simultaneously activates
     * the bit-combination row set (SiMRA).  The paper uses 3 ns and
     * sweeps 1.5 / 3 / 4.5 ns.
     */
    Time simraMaxActToPre = units::fromNs(6.0);

    /** Maximum PRE -> ACT gap for the SiMRA ACT-PRE-ACT sequence. */
    Time simraMaxPreToAct = units::fromNs(6.0);

    /**
     * Below this ACT -> PRE gap some aggressor rows are only partially
     * activated (paper Obs. 20), weakening the disturbance.
     */
    Time simraPartialActToPre = units::fromNs(2.0);

    /** Number of REF commands that cover the whole device (8K groups). */
    int refsPerWindow = 8192;
};

/** The default DDR4 timing set used throughout the experiments. */
inline TimingParams
ddr4Timings()
{
    return TimingParams{};
}

} // namespace pud::dram

#endif // PUD_DRAM_TIMING_H
