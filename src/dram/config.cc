#include "dram/config.h"

#include <cmath>

#include "util/logging.h"

namespace pud::dram {

double
inverseNormalCdf(double p)
{
    // Acklam's rational approximation, |relative error| < 1.15e-9.
    if (p <= 0.0 || p >= 1.0)
        panic("inverseNormalCdf: p=%f out of (0,1)", p);

    static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                               -2.759285104469687e+02, 1.383577518672690e+02,
                               -3.066479806614716e+01, 2.506628277459239e+00};
    static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                               -1.556989798598866e+02, 6.680131188771972e+01,
                               -1.328068155288572e+01};
    static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                               -2.400758277161838e+00, -2.549732539343734e+00,
                               4.374664141464968e+00,  2.938163982698783e+00};
    static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                               2.445134137142996e+00, 3.754408661907416e+00};

    const double p_low = 0.02425;
    const double p_high = 1.0 - p_low;

    if (p < p_low) {
        const double q = std::sqrt(-2.0 * std::log(p));
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
                c[5]) /
               ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
    }
    if (p <= p_high) {
        const double q = p - 0.5;
        const double r = q * q;
        return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
                a[5]) *
               q /
               (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r +
                1.0);
    }
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
             c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
}

namespace {

/**
 * Solve for the lognormal sigma of the base threshold distribution
 * given the min/avg anchors and the tested population size.
 *
 * For X ~ LogNormal(median m, sigma s): mean = m * exp(s^2/2) and the
 * expected minimum of M samples ~= m * exp(-z * s) with
 * z = -Phi^-1(1/M).  Hence avg/min = exp(s^2/2 + z*s), a quadratic in
 * s with the positive root below.
 */
double
solveSigma(double avg, double min, double z)
{
    if (min <= 0 || avg <= min)
        return 0.05;
    const double target = std::log(avg / min);
    const double s = -z + std::sqrt(z * z + 2.0 * target);
    return std::max(0.02, s);
}

} // namespace

CalibratedDistributions
calibrate(const FamilyProfile &profile)
{
    CalibratedDistributions out;
    const double M = out.population;
    const double z = -inverseNormalCdf(1.0 / M);

    // Base (RowHammer) threshold distribution.
    out.rhSigma = solveSigma(profile.rhAvg, profile.rhMin, z);
    out.rhMedian =
        profile.rhAvg * std::exp(-0.5 * out.rhSigma * out.rhSigma);

    // CoMRA gain factor F_c: HC_comra(row) = base(row) / F_c(row).
    //   avg anchor: E[base/F] = rhAvg * exp(sf^2/2) / f_med
    //   min anchor: min(base/F) ~= (rhMedian / f_med)
    //                              * exp(-z * sqrt(s^2 + sf^2))
    // Solve for sf by bisection with f_med eliminated via the avg
    // equation.
    {
        const double avg_ratio =
            std::max(1.01, profile.rhAvg / std::max(1.0, profile.comraAvg));
        const double min_target = std::max(1.0, profile.comraMin);
        auto min_given_sf = [&](double sf) {
            const double f_med = avg_ratio * std::exp(0.5 * sf * sf);
            const double spread =
                std::sqrt(out.rhSigma * out.rhSigma + sf * sf);
            return (out.rhMedian / f_med) * std::exp(-z * spread);
        };
        double lo = 0.02, hi = 2.5;
        // min_given_sf is decreasing in sf; find sf hitting min_target.
        if (min_given_sf(lo) <= min_target) {
            out.comraFactorSigma = lo;
        } else if (min_given_sf(hi) >= min_target) {
            out.comraFactorSigma = hi;
        } else {
            for (int i = 0; i < 60; ++i) {
                const double mid = 0.5 * (lo + hi);
                if (min_given_sf(mid) > min_target)
                    lo = mid;
                else
                    hi = mid;
            }
            out.comraFactorSigma = 0.5 * (lo + hi);
        }
        out.comraFactorMedian =
            avg_ratio *
            std::exp(0.5 * out.comraFactorSigma * out.comraFactorSigma);
    }

    // SiMRA gain mixture.
    if (profile.supportsSimra && profile.simraMin > 0) {
        // Extreme tail median pinned so the population minimum lands on
        // the simraMin anchor.
        const double spread = std::sqrt(out.rhSigma * out.rhSigma +
                                        out.simraExtremeSigma *
                                            out.simraExtremeSigma);
        // Only the extreme fraction of rows participates in the tail;
        // effective population for the min is p_ext * M.
        const double z_ext =
            -inverseNormalCdf(1.0 / (out.simraExtremeFraction * M));
        out.simraExtremeMedian = std::max(
            2.0, out.rhMedian * std::exp(-z_ext * spread) / profile.simraMin);

        // Regular component median from the avg anchor:
        //   simraAvg ~= (1-p) * rhAvg * exp(sr^2/2) / f_reg
        //             + p * rhAvg * exp(se^2/2) / f_ext
        const double p = out.simraExtremeFraction;
        const double ext_term = p * profile.rhAvg *
                                std::exp(0.5 * out.simraExtremeSigma *
                                         out.simraExtremeSigma) /
                                out.simraExtremeMedian;
        const double reg_avg_target =
            std::max(profile.simraAvg - ext_term, 0.05 * profile.simraAvg);
        out.simraRegularMedian = std::max(
            1.2, (1.0 - p) * profile.rhAvg *
                     std::exp(0.5 * out.simraRegularSigma *
                              out.simraRegularSigma) /
                     reg_avg_target);
    }

    return out;
}

const std::vector<FamilyProfile> &
table2Families()
{
    static const std::vector<FamilyProfile> families = [] {
        std::vector<FamilyProfile> v;

        auto add = [&v](FamilyProfile p) { v.push_back(std::move(p)); };

        // Spatial region gain templates per manufacturer (Fig. 11):
        // SK Hynix: beginning rows most vulnerable, max/min 1.40x.
        const std::array<double, 5> hynix_region{1.28, 1.02, 0.915, 0.96,
                                                 1.00};
        // Micron: strong beginning bias, max/min 2.25x.
        const std::array<double, 5> micron_region{1.80, 1.28, 0.96, 0.80,
                                                  1.00};
        // Samsung: middle rows most vulnerable, max/min 2.57x.
        const std::array<double, 5> samsung_region{0.62, 0.96, 1.59, 1.12,
                                                   0.93};
        // Nanya: nearly flat, max/min 1.04x.
        const std::array<double, 5> nanya_region{1.02, 1.01, 0.99, 0.98,
                                                 1.00};

        const std::array<double, 5> hynix_simra_temp{3.24, 3.10, 3.02, 3.26,
                                                     3.15};
        const std::array<double, 5> no_simra_temp{1, 1, 1, 1, 1};

        FamilyProfile p;

        // --- SK Hynix ---------------------------------------------------
        p = {};
        p.moduleId = "75TT21NUS1R8-4";
        p.mfr = Manufacturer::SKHynix;
        p.numModules = 1;
        p.numChips = 8;
        p.density = "4Gb";
        p.dieRev = "A";
        p.org = "x8";
        p.rhMin = 38450; p.rhAvg = 112000;
        p.comraMin = 447; p.comraAvg = 5840;
        p.simraMin = 585; p.simraAvg = 6620;
        p.supportsSimra = true;
        p.comraTempGain50To80 = 3.45;
        p.simraTempGain50To80 = hynix_simra_temp;
        p.comraRegionGain = hynix_region;
        p.mapping = MappingScheme::XorFold;
        add(p);

        p = {};
        p.moduleId = "HMA81GU7AFR8N-UH";
        p.mfr = Manufacturer::SKHynix;
        p.numModules = 8;
        p.numChips = 64;
        p.density = "8Gb";
        p.dieRev = "A";
        p.org = "x8";
        p.rhMin = 25000; p.rhAvg = 63240;
        p.comraMin = 1885; p.comraAvg = 45280;
        p.simraMin = 26; p.simraAvg = 16140;
        p.supportsSimra = true;
        p.comraTempGain50To80 = 3.45;
        p.simraTempGain50To80 = hynix_simra_temp;
        p.comraRegionGain = hynix_region;
        p.mapping = MappingScheme::XorFold;
        add(p);

        p = {};
        p.moduleId = "KSM26ES8/16HC";
        p.mfr = Manufacturer::SKHynix;
        p.numModules = 2;
        p.numChips = 16;
        p.density = "16Gb";
        p.dieRev = "C";
        p.org = "x8";
        p.rhMin = 6250; p.rhAvg = 17130;
        p.comraMin = 4540; p.comraAvg = 12270;
        p.simraMin = 48; p.simraAvg = 16020;
        p.supportsSimra = true;
        p.comraTempGain50To80 = 3.45;
        p.simraTempGain50To80 = hynix_simra_temp;
        p.comraRegionGain = hynix_region;
        p.mapping = MappingScheme::XorFold;
        add(p);

        p = {};
        p.moduleId = "HMA81GU7DJR8N-WM";
        p.mfr = Manufacturer::SKHynix;
        p.numModules = 6;
        p.numChips = 48;
        p.density = "8Gb";
        p.dieRev = "D";
        p.org = "x8";
        p.rhMin = 7580; p.rhAvg = 23110;
        p.comraMin = 632; p.comraAvg = 16420;
        p.simraMin = 95; p.simraAvg = 22810;
        p.supportsSimra = true;
        p.comraTempGain50To80 = 3.45;
        p.simraTempGain50To80 = hynix_simra_temp;
        p.comraRegionGain = hynix_region;
        p.mapping = MappingScheme::XorFold;
        add(p);

        // --- Micron -------------------------------------------------------
        p = {};
        p.moduleId = "KVR21S15S8/4";
        p.mfr = Manufacturer::Micron;
        p.numModules = 1;
        p.numChips = 8;
        p.density = "4Gb";
        p.dieRev = "B";
        p.org = "x8";
        p.rhMin = 126000; p.rhAvg = 338000;
        p.comraMin = 93000; p.comraAvg = 295000;
        p.comraTempGain50To80 = 1.0 / 1.14;  // inverted trend (Obs. 4)
        p.simraTempGain50To80 = no_simra_temp;
        p.comraRegionGain = micron_region;
        p.mapping = MappingScheme::Sequential;
        add(p);

        p = {};
        p.moduleId = "MTA4ATF1G64HZ-3G2E1";
        p.mfr = Manufacturer::Micron;
        p.numModules = 4;
        p.numChips = 32;
        p.density = "16Gb";
        p.dieRev = "E";
        p.org = "x16";
        p.rhMin = 4890; p.rhAvg = 10010;
        p.comraMin = 3720; p.comraAvg = 7690;
        p.comraTempGain50To80 = 1.0 / 1.14;
        p.simraTempGain50To80 = no_simra_temp;
        p.comraRegionGain = micron_region;
        p.mapping = MappingScheme::Sequential;
        add(p);

        p = {};
        p.moduleId = "MTA18ASF4G72HZ-3G2F1";
        p.mfr = Manufacturer::Micron;
        p.numModules = 4;
        p.numChips = 32;
        p.density = "16Gb";
        p.dieRev = "F";
        p.org = "x8";
        p.rhMin = 4123; p.rhAvg = 9030;
        p.comraMin = 3490; p.comraAvg = 7060;
        p.comraTempGain50To80 = 1.0 / 1.14;
        p.simraTempGain50To80 = no_simra_temp;
        p.comraRegionGain = micron_region;
        p.mapping = MappingScheme::Sequential;
        add(p);

        p = {};
        p.moduleId = "KSM32ES8/8MR";
        p.mfr = Manufacturer::Micron;
        p.numModules = 2;
        p.numChips = 16;
        p.density = "8Gb";
        p.dieRev = "R";
        p.org = "x8";
        p.rhMin = 3840; p.rhAvg = 9320;
        p.comraMin = 3670; p.comraAvg = 7670;
        p.comraTempGain50To80 = 1.0 / 1.14;
        p.simraTempGain50To80 = no_simra_temp;
        p.comraRegionGain = micron_region;
        p.mapping = MappingScheme::Sequential;
        add(p);

        // --- Samsung ------------------------------------------------------
        p = {};
        p.moduleId = "M378A2G43AB3-CWE";
        p.mfr = Manufacturer::Samsung;
        p.numModules = 1;
        p.numChips = 8;
        p.density = "16Gb";
        p.dieRev = "A";
        p.org = "x8";
        p.rhMin = 6700; p.rhAvg = 14800;
        p.comraMin = 5260; p.comraAvg = 10610;
        p.comraTempGain50To80 = 2.13;
        p.simraTempGain50To80 = no_simra_temp;
        p.comraRegionGain = samsung_region;
        p.mapping = MappingScheme::MirroredPairs;
        add(p);

        p = {};
        p.moduleId = "M391A2G43BB2-CWE";
        p.mfr = Manufacturer::Samsung;
        p.numModules = 5;
        p.numChips = 40;
        p.density = "16Gb";
        p.dieRev = "B";
        p.org = "x8";
        p.rhMin = 6150; p.rhAvg = 14790;
        p.comraMin = 1875; p.comraAvg = 10640;
        p.comraTempGain50To80 = 2.13;
        p.simraTempGain50To80 = no_simra_temp;
        p.comraRegionGain = samsung_region;
        p.mapping = MappingScheme::MirroredPairs;
        add(p);

        p = {};
        p.moduleId = "M471A5244CB0-CRC";
        p.mfr = Manufacturer::Samsung;
        p.numModules = 1;
        p.numChips = 4;
        p.density = "4Gb";
        p.dieRev = "C";
        p.org = "x16";
        p.rhMin = 8940; p.rhAvg = 25830;
        p.comraMin = 6250; p.comraAvg = 18400;
        p.comraTempGain50To80 = 2.13;
        p.simraTempGain50To80 = no_simra_temp;
        p.comraRegionGain = samsung_region;
        p.mapping = MappingScheme::MirroredPairs;
        add(p);

        p = {};
        p.moduleId = "M471A4G43CB1-CWE";
        p.mfr = Manufacturer::Samsung;
        p.numModules = 1;
        p.numChips = 8;
        p.density = "16Gb";
        p.dieRev = "C";
        p.org = "x8";
        p.rhMin = 6810; p.rhAvg = 15220;
        p.comraMin = 4433; p.comraAvg = 10950;
        p.comraTempGain50To80 = 2.13;
        p.simraTempGain50To80 = no_simra_temp;
        p.comraRegionGain = samsung_region;
        p.mapping = MappingScheme::MirroredPairs;
        add(p);

        p = {};
        p.moduleId = "MTA4ATF1G64HZ-3G2B2";
        p.mfr = Manufacturer::Samsung;
        p.numModules = 1;
        p.numChips = 8;
        p.density = "4Gb";
        p.dieRev = "E";
        p.org = "x8";
        p.rhMin = 15770; p.rhAvg = 81030;
        p.comraMin = 11720; p.comraAvg = 60830;
        p.comraTempGain50To80 = 2.13;
        p.simraTempGain50To80 = no_simra_temp;
        p.comraRegionGain = samsung_region;
        p.mapping = MappingScheme::MirroredPairs;
        add(p);

        // --- Nanya --------------------------------------------------------
        p = {};
        p.moduleId = "KVR24N17S8/8";
        p.mfr = Manufacturer::Nanya;
        p.numModules = 3;
        p.numChips = 24;
        p.density = "8Gb";
        p.dieRev = "C";
        p.org = "x8";
        p.rhMin = 31290; p.rhAvg = 128000;
        p.comraMin = 20190; p.comraAvg = 107000;
        p.trueAntiCells = true;
        p.comraTempGain50To80 = 1.14;
        p.simraTempGain50To80 = no_simra_temp;
        p.comraRegionGain = nanya_region;
        p.mapping = MappingScheme::Sequential;
        add(p);

        return v;
    }();
    return families;
}

const FamilyProfile &
findFamily(const std::string &module_id)
{
    for (const auto &f : table2Families())
        if (f.moduleId == module_id)
            return f;
    fatal("unknown module family '%s'", module_id.c_str());
}

DeviceConfig
makeConfig(const std::string &module_id, std::uint64_t seed)
{
    DeviceConfig cfg;
    cfg.profile = findFamily(module_id);
    cfg.seed = seed;
    return cfg;
}

} // namespace pud::dram
