/**
 * @file
 * Fundamental identifiers and enumerations for the DRAM device model.
 */

#ifndef PUD_DRAM_TYPES_H
#define PUD_DRAM_TYPES_H

#include <cstdint>
#include <string>

namespace pud::dram {

/** Logical or physical row index within a bank. */
using RowId = std::uint32_t;

/** Bank index within a (single-rank) module. */
using BankId = std::uint32_t;

/** Subarray index within a bank. */
using SubarrayId = std::uint32_t;

/** Bit-column index within a row. */
using ColId = std::uint32_t;

/** Sentinel for "no row". */
constexpr RowId kNoRow = ~RowId(0);

/** The four DRAM manufacturers characterized by the paper. */
enum class Manufacturer
{
    SKHynix,
    Micron,
    Samsung,
    Nanya,
};

/** Human-readable manufacturer name. */
inline const char *
name(Manufacturer m)
{
    switch (m) {
      case Manufacturer::SKHynix: return "SK Hynix";
      case Manufacturer::Micron:  return "Micron";
      case Manufacturer::Samsung: return "Samsung";
      case Manufacturer::Nanya:   return "Nanya";
    }
    return "?";
}

/**
 * Read-disturbance technique class as seen by the disturbance model.
 *
 * Conventional covers RowHammer and RowPress (a single row activated at
 * a time with nominal inter-command delays); Comra is an activation
 * that is part of a consecutive-multiple-row-activation in-DRAM copy
 * cycle; Simra is a simultaneous multiple-row activation.
 */
enum class TechClass
{
    Conventional,
    Comra,
    Simra,
};

inline const char *
name(TechClass t)
{
    switch (t) {
      case TechClass::Conventional: return "conventional";
      case TechClass::Comra:        return "CoMRA";
      case TechClass::Simra:        return "SiMRA";
    }
    return "?";
}

/** Direction of a read-disturbance bitflip. */
enum class FlipDirection : std::uint8_t
{
    ZeroToOne,
    OneToZero,
};

/** Victim-row location region within a subarray (paper §4.2). */
enum class Region : std::uint8_t
{
    Beginning,        //!< first 20% of rows
    BeginningMiddle,  //!< second 20%
    Middle,           //!< third 20%
    MiddleEnd,        //!< fourth 20%
    End,              //!< last 20%
};

constexpr int kNumRegions = 5;

inline const char *
name(Region r)
{
    switch (r) {
      case Region::Beginning:       return "Beginning";
      case Region::BeginningMiddle: return "Beg-Mid";
      case Region::Middle:          return "Middle";
      case Region::MiddleEnd:       return "Mid-End";
      case Region::End:             return "End";
    }
    return "?";
}

/** How a currently-open row (group) was opened. */
enum class OpenKind : std::uint8_t
{
    Normal,    //!< ordinary single-row ACT
    ComraDst,  //!< ACT issued with a violated tRP after a full restore
    Simra,     //!< simultaneous group open via ACT-PRE-ACT
};

} // namespace pud::dram

#endif // PUD_DRAM_TYPES_H
