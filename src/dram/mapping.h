/**
 * @file
 * Logical-to-physical in-DRAM row address mapping (paper §3.2).
 *
 * DRAM manufacturers remap memory-controller-visible (logical) row
 * addresses to internal (physical) wordlines for yield and circuit
 * reasons.  Read-disturbance experiments must know *physical*
 * adjacency, so the paper reverse engineers the layout of every chip.
 * We model three representative invertible schemes; the reverse
 * engineering algorithms in pud::hammer recover them blindly, the same
 * way the real methodology does.
 */

#ifndef PUD_DRAM_MAPPING_H
#define PUD_DRAM_MAPPING_H

#include <cstdint>

#include "dram/types.h"

namespace pud::dram {

/** The remapping schemes modeled for the four manufacturers. */
enum class MappingScheme : std::uint8_t
{
    /** physical == logical. */
    Sequential,

    /**
     * Samsung-style pair mirroring: within each aligned group of 8
     * rows, the middle pairs are swapped (logical ...2,3,4,5... map to
     * physical ...3,2,5,4...), modeled after published DDR4 layouts.
     */
    MirroredPairs,

    /**
     * SK Hynix-style XOR fold: bit 3 of the logical address XORs into
     * bits 2..1, scrambling adjacency across 8-row blocks.
     */
    XorFold,
};

inline const char *
name(MappingScheme s)
{
    switch (s) {
      case MappingScheme::Sequential:    return "sequential";
      case MappingScheme::MirroredPairs: return "mirrored-pairs";
      case MappingScheme::XorFold:       return "xor-fold";
    }
    return "?";
}

/** Invertible logical<->physical row translator for one scheme. */
class RowMapping
{
  public:
    explicit RowMapping(MappingScheme scheme) : scheme_(scheme) {}

    MappingScheme scheme() const { return scheme_; }

    /** Translate a logical (controller-visible) row to a wordline. */
    RowId
    toPhysical(RowId logical) const
    {
        switch (scheme_) {
          case MappingScheme::Sequential:
            return logical;
          case MappingScheme::MirroredPairs: {
            // Swap rows 2<->3 and 4<->5 within each 8-row group.
            const RowId pos = logical & 7;
            if (pos >= 2 && pos <= 5)
                return (logical & ~RowId(7)) | (pos ^ 1);
            return logical;
          }
          case MappingScheme::XorFold: {
            const RowId b3 = (logical >> 3) & 1;
            return logical ^ (b3 ? RowId(0b110) : RowId(0));
          }
        }
        return logical;
    }

    /** Inverse translation.  All modeled schemes are involutions. */
    RowId
    toLogical(RowId physical) const
    {
        // Each scheme is its own inverse: applying it twice yields the
        // identity, which the unit tests verify exhaustively.
        return toPhysical(physical);
    }

  private:
    MappingScheme scheme_;
};

} // namespace pud::dram

#endif // PUD_DRAM_MAPPING_H
