#include "dram/device.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace pud::dram {

namespace {

// Fraction of the calibrated factor spread assigned to the row level
// vs the cell level.  Per-cell heterogeneity is what makes combined
// RowHammer + PuDHammer patterns (paper §6) only *partially* share
// damage: the cell that is most vulnerable to RowHammer is often not
// the one most vulnerable to CoMRA/SiMRA (paper Obs. 23).
constexpr double kRowShare = 0.8;
constexpr double kCellShare = 0.6;  // sqrt(0.8^2 + 0.6^2) = 1

// Probability that a cell's conventional-class flip direction is the
// dominant 0 -> 1 (Obs. 14 for RowHammer).
constexpr double kConvZeroToOneFraction = 0.60;

// Probability that a cell's SiMRA flip direction is the dominant
// 1 -> 0 (Obs. 14).
constexpr double kSimraOneToZeroFraction = 0.90;

// Per-N jitter of the SiMRA factor, making the HC_first reduction
// non-monotonic in N per victim row (paper §5.3).
constexpr double kSimraPerNJitterSigma = 0.30;



} // namespace

Device::Device(DeviceConfig cfg)
    : cfg_(std::move(cfg)),
      mapping_(cfg_.profile.mapping),
      decoder_(cfg_.rowsPerSubarray),
      disturb_(cfg_),
      temperature_(cfg_.temperature),
      trrRng_(Rng(cfg_.seed).fork(0x7272)),
      noiseRng_(Rng(cfg_.seed).fork(0x4E01))
{
    if (cfg_.banks == 0 || cfg_.subarraysPerBank == 0 ||
        cfg_.rowsPerSubarray == 0 || cfg_.cols == 0) {
        fatal("Device: degenerate geometry");
    }
    if ((cfg_.rowsPerSubarray & (cfg_.rowsPerSubarray - 1)) != 0)
        fatal("Device: rowsPerSubarray must be a power of two");

    // Banks start as empty shells and rows materialize on first touch
    // (populateRow): an idle module costs O(1) memory and construction
    // time, which is what lets fleet-scale population sweeps build one
    // Device per shard without paying for the ~10^4 rows a sweep never
    // hammers.
    banks_.resize(cfg_.banks);
}

void
Device::touchBank(BankState &bank)
{
    if (!bank.rows.empty()) [[likely]]
        return;
    bank.rows.resize(cfg_.rowsPerBank());
    bank.trrRing.assign(kTrrWindow, kNoRow);
}

void
Device::populateRow(BankState &bank, RowId r)
{
    const auto cal = calibrate(cfg_.profile);

    const double comra_row_sigma = kRowShare * cal.comraFactorSigma;
    const double comra_cell_sigma = kCellShare * cal.comraFactorSigma;

    // Counter-based stream keyed by (seed, bank, row): no draw depends
    // on any other row's draws, so materialization order -- lazy,
    // eager, or any interleaving -- cannot change the population.
    Rng rng = Rng::keyed(cfg_.seed, bankIndex(bank) + 1, r + 1);

    Row &row = bank.rows[r];
    row.populated = true;
    bank.populatedIdx.push_back(r);
    ++populatedRows_;
    row.data = RowData(cfg_.cols);

    const double base_row = std::max(
        100.0, rng.logNormalMedian(cal.rhMedian, cal.rhSigma));
    // CoMRA amplifies read disturbance for essentially every row
    // (Obs. 2: 99% of rows see a lower HC_first), so the row-level
    // gain is floored just above 1.
    const double comra_row = std::max(
        1.05,
        rng.logNormalMedian(cal.comraFactorMedian, comra_row_sigma));

    double simra_row = 1.0;
    if (cfg_.profile.supportsSimra) {
        if (rng.chance(cal.simraExtremeFraction)) {
            simra_row =
                rng.logNormalMedian(cal.simraExtremeMedian,
                                    kRowShare * cal.simraExtremeSigma);
        } else {
            simra_row =
                rng.logNormalMedian(cal.simraRegularMedian,
                                    kRowShare * cal.simraRegularSigma);
        }
        simra_row = std::max(0.8, simra_row);
    }

    row.cells.resize(cfg_.weakCellsPerRow);
    for (int c = 0; c < cfg_.weakCellsPerRow; ++c) {
        WeakCell &cell = row.cells[c];

        // Distinct column per cell.
        for (;;) {
            cell.col = static_cast<ColId>(rng.below(cfg_.cols));
            bool dup = false;
            for (int k = 0; k < c; ++k)
                if (row.cells[k].col == cell.col)
                    dup = true;
            if (!dup)
                break;
        }

        const double mult =
            c == 0 ? 1.0 : std::exp(rng.uniform(0.08, 1.3));
        cell.baseHc = static_cast<float>(base_row * mult);

        cell.comraFactor = static_cast<float>(std::max(
            1.02,
            comra_row * std::exp(comra_cell_sigma * rng.gaussian())));

        if (cfg_.profile.supportsSimra) {
            const double cell_simra = std::max(
                0.3, simra_row * std::exp(kCellShare *
                                          cal.simraRegularSigma *
                                          rng.gaussian()));
            double jitter[5];
            rng.gaussianBlock(jitter, 5);
            for (int n = 0; n < 5; ++n) {
                cell.simraFactor[n] = static_cast<float>(std::max(
                    0.2, cell_simra * std::exp(kSimraPerNJitterSigma *
                                               jitter[n])));
            }
        }

        cell.tempSlopeConv =
            static_cast<float>(rng.uniform(-0.35, 0.5));
        cell.upperShare = static_cast<float>(rng.uniform(0.38, 0.62));
        cell.dstRoleGain =
            static_cast<float>(std::exp(0.04 * rng.gaussian()));
        cell.dirConv = rng.chance(kConvZeroToOneFraction)
                           ? FlipDirection::ZeroToOne
                           : FlipDirection::OneToZero;
        cell.dirSimra = rng.chance(kSimraOneToZeroFraction)
                            ? FlipDirection::OneToZero
                            : FlipDirection::ZeroToOne;
        cell.resetDamage();
    }
}

void
Device::reset(std::uint64_t seed)
{
    if (recorder_.active)
        fatal("Device::reset: loop recording active");

    cfg_.seed = seed;

    for (BankState &bank : banks_) {
        if (bank.rows.empty()) {
            // Never-touched shell: nothing to clear, and leaving it
            // empty preserves the lazy first-touch cost profile.
            continue;
        }
        for (RowId r : bank.populatedIdx)
            bank.rows[r] = Row{};
        bank.populatedIdx.clear();

        bank.st = BankState::St::Idle;
        bank.openRows.clear();
        bank.openKind = OpenKind::Normal;
        bank.openedAt = 0;
        bank.comraDelayOfOpen = 0;
        bank.comraPartnerOfOpen = kNoRow;
        bank.offGapOfOpen = 0;
        bank.simraActToPre = 0;
        bank.simraPreToAct = 0;
        bank.pendingValid = false;
        bank.pending = CloseEvent{};
        bank.pendingClosedAt = 0;
        bank.pendingOpenedAt = 0;
        bank.pendingKind = OpenKind::Normal;
        std::fill(bank.trrRing.begin(), bank.trrRing.end(), kNoRow);
        bank.trrPos = 0;
        bank.trrFill = 0;
    }

    disturb_ = DisturbanceModel(cfg_);
    temperature_ = cfg_.temperature;
    trrEnabled_ = false;
    now_ = 0;
    refCounter_ = 0;
    trrRng_ = Rng(cfg_.seed).fork(0x7272);
    noiseRng_ = Rng(cfg_.seed).fork(0x4E01);
    counters_ = DeviceCounters{};
    populatedRows_ = 0;
    mitigation_ = nullptr;
    mitigationRefresh_.clear();
}

void
Device::materializeAllRows()
{
    for (BankState &bank : banks_) {
        touchBank(bank);
        for (RowId r = 0; r < cfg_.rowsPerBank(); ++r)
            if (!bank.rows[r].populated)
                populateRow(bank, r);
    }
}

const std::vector<WeakCell> &
Device::weakCells(BankId bank, RowId logical_row) const
{
    // Lazy materialization is an internal cache: logically const.
    auto *self = const_cast<Device *>(this);
    return self->rowAt(self->banks_[bank], toPhysical(logical_row))
        .cells;
}

void
Device::advanceTime(Time t)
{
    if (t < now_)
        fatal("Device: command time went backwards (%lld < %lld)",
              static_cast<long long>(t), static_cast<long long>(now_));
    now_ = t;
}

void
Device::restoreRow(BankState &bank, RowId physical)
{
    Row &row = rowAt(bank, physical);
    for (WeakCell &cell : row.cells) {
        if (cell.flipped())
            row.data.toggle(cell.col);
        cell.resetDamage();
        disturb_.noteReset(cell);
    }
    noteLoopTouched(bank, physical);
}

RowData
Device::viewOf(const Row &row)
{
    RowData out = row.data;
    for (const WeakCell &cell : row.cells)
        if (cell.flipped())
            out.toggle(cell.col);
    return out;
}

void
Device::majorityMerge(BankState &bank)
{
    const auto n = bank.openRows.size();
    if (n < 2)
        return;

    RowData out(cfg_.cols);
    for (ColId col = 0; col < cfg_.cols; ++col) {
        unsigned ones = 0;
        for (RowId r : bank.openRows)
            ones += bank.rows[r].data.get(col);
        bool bit;
        if (2 * ones > n)
            bit = true;
        else if (2 * ones < n)
            bit = false;
        else
            bit = bank.rows[bank.openRows.front()].data.get(col);
        out.set(col, bit);
    }
    for (RowId r : bank.openRows)
        bank.rows[r].data = out;
}

void
Device::trrRecord(BankState &bank, RowId physical)
{
    const RowId evicted = bank.trrRing[bank.trrPos];
    if (evicted != kNoRow) {
        // A full ring forgetting an aggressor is exactly how TRR
        // bypass patterns win (Obs. 24-26) -- worth a trace event.
        if (obs::metricsOn()) [[unlikely]] {
            static const obs::CounterId c =
                obs::metrics().counterId("device.trr_evictions");
            obs::metrics().add(c);
        }
        if (obs::traceOn()) [[unlikely]]
            obs::trace().event(
                "trr_evict",
                {{"bank", static_cast<std::uint64_t>(
                              bankIndex(bank))},
                 {"evicted", static_cast<std::uint64_t>(evicted)},
                 {"row", static_cast<std::uint64_t>(physical)}});
    }
    bank.trrRing[bank.trrPos] = physical;
    bank.trrPos = (bank.trrPos + 1) % kTrrWindow;
    if (bank.trrFill < kTrrWindow)
        ++bank.trrFill;
    if (recorder_.active)
        recorder_.samplerActs[bankIndex(bank)].push_back(physical);
}

void
Device::resetTrrSampler()
{
    for (BankState &bank : banks_) {
        std::fill(bank.trrRing.begin(), bank.trrRing.end(), kNoRow);
        bank.trrPos = 0;
        bank.trrFill = 0;
    }
}

void
Device::refreshRow(BankState &bank, RowId physical)
{
    // A pristine row holds full charge and no damage: refreshing it is
    // a no-op, and skipping keeps stripe REFs from materializing every
    // row they sweep (which would defeat lazy population).  Such a row
    // is never loop-tracked either, so replay quiescence is unaffected.
    if (physical >= bank.rows.size() ||
        !bank.rows[physical].populated)
        return;
    if (recorder_.active) {
        // Refreshes are aperiodic (the stripe rotates, TRR draws are
        // random): log the target for the quiescence check, and keep
        // its restoreRow from marking the row as body-touched.
        recorder_.refreshTargets.emplace_back(bankIndex(bank),
                                              physical);
        recorder_.inRefresh = true;
    }
    restoreRow(bank, physical);
    recorder_.inRefresh = false;
    bank.rows[physical].lastSide = 0;
}

void
Device::flushPending(BankState &bank)
{
    if (!bank.pendingValid)
        return;
    bank.pendingValid = false;
    if (recorder_.active && !recorder_.inRefresh) {
        // Over-approximate this close's deposit victims: every row in
        // the distance-2 blast radius of each closing aggressor (plus
        // the aggressors themselves, whose lastSide advances).
        auto &touched = recorder_.touched[bankIndex(bank)];
        const auto rows =
            static_cast<std::int64_t>(bank.rows.size());
        for (RowId a : bank.pending.rows) {
            touched.push_back(a);
            const SubarrayId sub = subarrayOfPhysical(a);
            for (int d : {-2, -1, 1, 2}) {
                const std::int64_t v =
                    static_cast<std::int64_t>(a) + d;
                if (v < 0 || v >= rows)
                    continue;
                if (subarrayOfPhysical(static_cast<RowId>(v)) != sub)
                    continue;
                touched.push_back(static_cast<RowId>(v));
            }
        }
    }
    // applyClose charges damage onto every weak cell in the closing
    // aggressors' +-2 same-subarray blast radius; those victim rows
    // must have their cell populations drawn before the deposit, or a
    // lazily-built device would silently drop it.
    for (RowId a : bank.pending.rows) {
        const SubarrayId sub = subarrayOfPhysical(a);
        for (int d : {-2, -1, 1, 2}) {
            const std::int64_t v = static_cast<std::int64_t>(a) + d;
            if (v < 0 ||
                v >= static_cast<std::int64_t>(bank.rows.size()))
                continue;
            if (subarrayOfPhysical(static_cast<RowId>(v)) != sub)
                continue;
            rowAt(bank, static_cast<RowId>(v));
        }
    }
    disturb_.applyClose(bank.rows, bank.pending, temperature_);
    if (mitigation_ != nullptr) {
        // bank.pending still holds the event (only the valid flag was
        // cleared above), so the hook sees the final classification --
        // including the CoMRA retro-tag applied by act().
        mitigationRefresh_.clear();
        mitigation_->onClose(bankIndex(bank), bank.pending,
                             mitigationRefresh_);
        for (RowId r : mitigationRefresh_) {
            if (r < bank.rows.size())
                refreshRow(bank, r);
        }
    }
}

void
Device::openNormal(BankState &bank, Time t, RowId physical)
{
    bank.st = BankState::St::Open;
    bank.openRows.assign(1, physical);
    bank.openKind = OpenKind::Normal;
    bank.openedAt = t;
    const Time last = rowAt(bank, physical).lastCloseAt;
    bank.offGapOfOpen = last >= 0 ? t - last : 0;
    restoreRow(bank, physical);
    trrRecord(bank, physical);
}

void
Device::act(Time t, BankId b, RowId logical_row)
{
    advanceTime(t);
    if (b >= banks_.size())
        fatal("ACT to bank %u (device has %zu banks)", b, banks_.size());
    BankState &bank = banks_[b];
    if (logical_row >= cfg_.rowsPerBank())
        fatal("ACT to row %u (bank has %u rows)", logical_row,
              cfg_.rowsPerBank());
    const RowId phys = mapping_.toPhysical(logical_row);

    if (bank.st == BankState::St::Open)
        fatal("ACT to bank %u while a row is open (missing PRE)", b);

    ++counters_.acts;

    if (bank.pendingValid) {
        const Time gap = t - bank.pendingClosedAt;
        const bool single = bank.pending.rows.size() == 1;
        const bool same_sub =
            single && subarrayOfPhysical(bank.pending.rows.front()) ==
                          subarrayOfPhysical(phys);

        // --- SiMRA: ACT-PRE-ACT with both gaps grossly violated -------
        if (single && same_sub &&
            bank.pending.tOn <= cfg_.timings.simraMaxActToPre &&
            gap <= cfg_.timings.simraMaxPreToAct) {
            if (!cfg_.profile.supportsSimra) {
                // The chip ignores commands that grossly violate the
                // nominal timings (paper §5.3 footnote): the quick PRE
                // and this ACT have no effect; the first row stays
                // open with its original activation time.
                counters_.ignoredCommands += 2;
                bank.st = BankState::St::Open;
                bank.openRows = bank.pending.rows;
                bank.openKind = bank.pendingKind;
                bank.openedAt = bank.pendingOpenedAt;
                bank.pendingValid = false;
                return;
            }
            auto group =
                decoder_.activatedSet(bank.pending.rows.front(), phys);
            if (group.size() > 1) {
                const Time act_to_pre = bank.pending.tOn;
                bank.pendingValid = false;  // blip is part of this op
                for (RowId r : group)
                    restoreRow(bank, r);
                bank.st = BankState::St::Open;
                bank.openRows = std::move(group);
                bank.openKind = OpenKind::Simra;
                bank.openedAt = t;
                bank.simraActToPre = act_to_pre;
                bank.simraPreToAct = gap;
                {
                    const Time last = bank.rows[phys].lastCloseAt;
                    bank.offGapOfOpen = last >= 0 ? t - last : 0;
                }
                majorityMerge(bank);
                trrRecord(bank, phys);
                ++counters_.simraOps;
                return;
            }
            // Degenerate pair (same row reissued): fall through.
        }

        // --- CoMRA: full restore then reopen below tRP -----------------
        if (single && same_sub && bank.pending.rows.front() != phys &&
            bank.pending.tOn >= cfg_.timings.tRAS - units::ns &&
            gap <= cfg_.timings.comraMaxPreToAct) {
            const RowId src = bank.pending.rows.front();
            // Retro-tag the source row's close as the copy cycle's
            // first half: the disturbance hypothesis (paper §4.3) ties
            // the amplification to the short wordline off-interval.
            bank.pending.cls = TechClass::Comra;
            bank.pending.comraDelay = gap;
            bank.pending.comraPartner = phys;
            bank.pending.comraDstRole = false;
            flushPending(bank);

            // Destination latches the source's bitline charge: the
            // in-DRAM copy, with full charge restoration on dst.
            restoreRow(bank, src);
            rowAt(bank, phys).data = bank.rows[src].data;
            for (WeakCell &c : bank.rows[phys].cells) {
                c.resetDamage();
                disturb_.noteReset(c);
            }
            noteLoopTouched(bank, phys);

            bank.st = BankState::St::Open;
            bank.openRows.assign(1, phys);
            bank.openKind = OpenKind::ComraDst;
            bank.openedAt = t;
            bank.comraDelayOfOpen = gap;
            bank.comraPartnerOfOpen = src;
            {
                const Time last = bank.rows[phys].lastCloseAt;
                bank.offGapOfOpen = last >= 0 ? t - last : 0;
            }
            trrRecord(bank, phys);
            ++counters_.comraCopies;
            return;
        }

        flushPending(bank);
    }

    openNormal(bank, t, phys);
}

void
Device::pre(Time t, BankId b)
{
    advanceTime(t);
    BankState &bank = banks_.at(b);
    ++counters_.pres;
    if (bank.st != BankState::St::Open)
        return;  // PRE on a precharged bank is a no-op

    if (bank.pendingValid)
        flushPending(bank);

    CloseEvent ev;
    ev.rows = bank.openRows;
    switch (bank.openKind) {
      case OpenKind::ComraDst:
        ev.cls = TechClass::Comra;
        ev.comraDelay = bank.comraDelayOfOpen;
        ev.comraPartner = bank.comraPartnerOfOpen;
        ev.comraDstRole = true;
        break;
      case OpenKind::Simra:
        ev.cls = TechClass::Simra;
        ev.simraN = static_cast<int>(bank.openRows.size());
        ev.simraActToPre = bank.simraActToPre;
        ev.simraPreToAct = bank.simraPreToAct;
        break;
      default:
        ev.cls = TechClass::Conventional;
        break;
    }
    ev.tOn = t - bank.openedAt;
    ev.reopenGap = bank.offGapOfOpen;
    for (RowId r : bank.openRows)
        bank.rows[r].lastCloseAt = t;

    bank.pending = std::move(ev);
    bank.pendingValid = true;
    bank.pendingClosedAt = t;
    bank.pendingKind = bank.openKind;
    bank.pendingOpenedAt = bank.openedAt;

    bank.st = BankState::St::Precharging;
    bank.openRows.clear();
}

void
Device::preAll(Time t)
{
    for (BankId b = 0; b < banks_.size(); ++b)
        pre(t, b);
}

RowData
Device::rd(Time t, BankId b)
{
    advanceTime(t);
    BankState &bank = banks_.at(b);
    if (bank.st != BankState::St::Open)
        fatal("RD on bank %u with no open row", b);
    return viewOf(bank.rows[bank.openRows.front()]);
}

void
Device::wr(Time t, BankId b, const RowData &data)
{
    advanceTime(t);
    BankState &bank = banks_.at(b);
    if (bank.st != BankState::St::Open)
        fatal("WR on bank %u with no open row", b);
    if (data.bits() != cfg_.cols)
        fatal("WR with %u bits to a %u-bit row", data.bits(), cfg_.cols);
    for (RowId r : bank.openRows) {
        bank.rows[r].data = data;
        for (WeakCell &c : bank.rows[r].cells) {
            c.resetDamage();
            disturb_.noteReset(c);
        }
        noteLoopTouched(bank, r);
    }
}

void
Device::ref(Time t)
{
    advanceTime(t);
    ++counters_.refs;
    if (recorder_.active) {
        // Anchor this REF against the body's sampler pushes so replay
        // can reconstruct each bank's exact ring fill at this point of
        // any later iteration.
        LoopRecord::RefPoint rp;
        rp.actsBefore.reserve(recorder_.samplerActs.size());
        for (const auto &acts : recorder_.samplerActs)
            rp.actsBefore.push_back(
                static_cast<std::uint32_t>(acts.size()));
        recorder_.refs.push_back(std::move(rp));
    }
    const RowId rows_per_bank = cfg_.rowsPerBank();
    const auto window = static_cast<std::uint64_t>(
        cfg_.timings.refsPerWindow);
    const std::uint64_t slot = refCounter_ % window;
    const RowId start =
        static_cast<RowId>(slot * rows_per_bank / window);
    const RowId end =
        static_cast<RowId>((slot + 1) * rows_per_bank / window);
    ++refCounter_;
    if (obs::metricsOn()) [[unlikely]] {
        static const obs::CounterId c =
            obs::metrics().counterId("device.refs");
        obs::metrics().add(c);
    }
    if (obs::traceOn()) [[unlikely]]
        obs::trace().event(
            "ref_anchor",
            {{"slot", slot},
             {"start", static_cast<std::uint64_t>(start)},
             {"end", static_cast<std::uint64_t>(end)},
             {"recording", recorder_.active}});

    for (BankState &bank : banks_) {
        if (bank.st == BankState::St::Open)
            fatal("REF issued with an open bank");
        flushPending(bank);
        for (RowId r = start; r < end; ++r)
            refreshRow(bank, r);

        if (trrEnabled_ && bank.trrFill > 0) {
            // Sampling TRR: pick one of the last kTrrWindow activated
            // row addresses and preventively refresh its neighbours.
            const std::size_t span =
                std::min(bank.trrFill, kTrrWindow);
            const std::size_t back = trrRng_.below(span);
            const std::size_t idx =
                (bank.trrPos + kTrrWindow - 1 - back) % kTrrWindow;
            const RowId aggr = bank.trrRing[idx];
            if (aggr != kNoRow) {
                const SubarrayId sub = subarrayOfPhysical(aggr);
                for (int d : {-1, 1}) {
                    const std::int64_t v =
                        static_cast<std::int64_t>(aggr) + d;
                    if (v < 0 ||
                        v >= static_cast<std::int64_t>(
                                 bank.rows.size()))
                        continue;
                    if (subarrayOfPhysical(static_cast<RowId>(v)) != sub)
                        continue;
                    refreshRow(bank, static_cast<RowId>(v));
                    ++counters_.trrRefreshes;
                    if (obs::metricsOn()) [[unlikely]] {
                        static const obs::CounterId c =
                            obs::metrics().counterId(
                                "device.trr_refreshes");
                        obs::metrics().add(c);
                    }
                    if (obs::traceOn()) [[unlikely]]
                        obs::trace().event(
                            "trr_refresh",
                            {{"bank",
                              static_cast<std::uint64_t>(
                                  bankIndex(bank))},
                             {"aggr", static_cast<std::uint64_t>(
                                          aggr)},
                             {"victim",
                              static_cast<std::uint64_t>(v)}});
                }
            }
        }
    }
}

void
Device::beginLoopRecording()
{
    if (recorder_.active)
        fatal("Device: nested loop recording");
    recorder_.active = true;
    recorder_.inRefresh = false;
    recorder_.countersAtStart = counters_;
    recorder_.samplerActs.assign(banks_.size(), {});
    recorder_.refs.clear();
    recorder_.touched.assign(banks_.size(), {});
    recorder_.refreshTargets.clear();
    disturb_.beginRecording();
}

Device::LoopRecord
Device::endLoopRecording()
{
    if (!recorder_.active)
        fatal("Device: endLoopRecording without beginLoopRecording");
    recorder_.active = false;

    LoopRecord rec;
    rec.damage = disturb_.endRecording();
    rec.samplerActs = std::move(recorder_.samplerActs);
    rec.refs = std::move(recorder_.refs);
    rec.tracked = std::move(recorder_.touched);
    for (auto &rows : rec.tracked) {
        std::sort(rows.begin(), rows.end());
        rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
    }

    // REF/TRR refreshes are replayed live (they rotate and draw), so
    // only the strictly per-iteration counters are scaled.
    rec.counterDelta.acts =
        counters_.acts - recorder_.countersAtStart.acts;
    rec.counterDelta.pres =
        counters_.pres - recorder_.countersAtStart.pres;
    rec.counterDelta.comraCopies =
        counters_.comraCopies - recorder_.countersAtStart.comraCopies;
    rec.counterDelta.simraOps =
        counters_.simraOps - recorder_.countersAtStart.simraOps;
    rec.counterDelta.ignoredCommands =
        counters_.ignoredCommands -
        recorder_.countersAtStart.ignoredCommands;

    // Quiescence: if a refresh reset a row the body also deposits into
    // (or otherwise mutates), the recorded iteration is not the
    // periodic steady state and must not be replayed.
    for (const auto &[b, r] : recorder_.refreshTargets) {
        if (std::binary_search(rec.tracked[b].begin(),
                               rec.tracked[b].end(), r)) {
            rec.quiescent = false;
            break;
        }
    }
    // A close-driven mitigation is an arbitrary state machine over
    // the close stream; its refreshes are not iteration-affine, so a
    // hooked device never exposes a replayable steady state.
    if (mitigation_ != nullptr)
        rec.quiescent = false;
    return rec;
}

std::uint64_t
Device::replayLoopIterations(const LoopRecord &rec,
                             std::uint64_t max_iterations)
{
    if (!rec.quiescent || max_iterations == 0)
        return 0;

    const std::size_t nbanks = banks_.size();
    const RowId rows_per_bank = cfg_.rowsPerBank();
    const auto window =
        static_cast<std::uint64_t>(cfg_.timings.refsPerWindow);

    std::uint64_t completed = 0;
    std::uint64_t obs_trr_refreshes = 0;

    // Pre-replay sampler state per bank; the live ring stays frozen
    // until the committed iteration count is known, so negative
    // virtual indices can read it directly.
    std::vector<std::size_t> fill0(nbanks), pos0(nbanks);
    std::vector<std::uint64_t> acts_per_iter(nbanks);
    for (std::size_t b = 0; b < nbanks; ++b) {
        fill0[b] = banks_[b].trrFill;
        pos0[b] = banks_[b].trrPos;
        acts_per_iter[b] = rec.samplerActs[b].size();
    }

    if (rec.refs.empty()) {
        // Nothing iteration-dependent happens between deposits: the
        // whole remaining trip count commits in one step.
        completed = max_iterations;
    } else {
        // Union of tracked rows across banks: a REF refreshes the same
        // stripe range in every bank, so one sorted set answers "does
        // this stripe touch loop state anywhere".
        std::vector<RowId> union_tracked;
        for (const auto &rows : rec.tracked)
            union_tracked.insert(union_tracked.end(), rows.begin(),
                                 rows.end());
        std::sort(union_tracked.begin(), union_tracked.end());
        union_tracked.erase(
            std::unique(union_tracked.begin(), union_tracked.end()),
            union_tracked.end());

        auto stripe_hits_tracked = [&](RowId lo, RowId hi) {
            const auto it = std::lower_bound(union_tracked.begin(),
                                             union_tracked.end(), lo);
            return it != union_tracked.end() && *it < hi;
        };
        auto is_tracked = [&](std::size_t b, RowId r) {
            return std::binary_search(rec.tracked[b].begin(),
                                      rec.tracked[b].end(), r);
        };
        // Sampler ring entry `gidx` pushes after the replay started
        // (negative = still-live pre-replay slot).
        auto ring_at = [&](std::size_t b, std::int64_t gidx) -> RowId {
            if (gidx >= 0)
                return rec.samplerActs[b][static_cast<std::size_t>(
                    gidx % static_cast<std::int64_t>(
                               acts_per_iter[b]))];
            return banks_[b].trrRing[static_cast<std::size_t>(
                (static_cast<std::int64_t>(pos0[b]) +
                 static_cast<std::int64_t>(kTrrWindow) + gidx) %
                static_cast<std::int64_t>(kTrrWindow))];
        };

        std::vector<std::pair<std::size_t, RowId>> trr_targets;
        while (completed < max_iterations) {
            // Dry-run this iteration's REFs: perform the TRR draws in
            // live order, but commit nothing until the whole iteration
            // is known to stay clear of tracked rows.  On a hit the
            // RNG rewinds so the caller's live boundary iteration
            // redraws the exact same stream.
            const Rng rng_snapshot = trrRng_;
            trr_targets.clear();
            bool interesting = false;
            std::uint64_t local_ref = refCounter_;
            for (const LoopRecord::RefPoint &rp : rec.refs) {
                const std::uint64_t slot = local_ref % window;
                ++local_ref;
                const RowId start = static_cast<RowId>(
                    slot * rows_per_bank / window);
                const RowId end = static_cast<RowId>(
                    (slot + 1) * rows_per_bank / window);
                if (start < end && stripe_hits_tracked(start, end)) {
                    interesting = true;
                    break;
                }
                if (!trrEnabled_)
                    continue;
                for (std::size_t b = 0; b < nbanks && !interesting;
                     ++b) {
                    const std::uint64_t acts_before =
                        completed * acts_per_iter[b] +
                        rp.actsBefore[b];
                    const std::size_t fill =
                        static_cast<std::size_t>(std::min<std::uint64_t>(
                            kTrrWindow, fill0[b] + acts_before));
                    if (fill == 0)
                        continue;
                    const std::size_t back = trrRng_.below(fill);
                    const RowId aggr = ring_at(
                        b, static_cast<std::int64_t>(acts_before) - 1 -
                               static_cast<std::int64_t>(back));
                    if (aggr == kNoRow)
                        continue;
                    const SubarrayId sub = subarrayOfPhysical(aggr);
                    for (int d : {-1, 1}) {
                        const std::int64_t v =
                            static_cast<std::int64_t>(aggr) + d;
                        if (v < 0 ||
                            v >= static_cast<std::int64_t>(
                                     rows_per_bank))
                            continue;
                        if (subarrayOfPhysical(
                                static_cast<RowId>(v)) != sub)
                            continue;
                        if (is_tracked(b, static_cast<RowId>(v))) {
                            interesting = true;
                            break;
                        }
                        trr_targets.emplace_back(
                            b, static_cast<RowId>(v));
                    }
                }
                if (interesting)
                    break;
            }
            if (interesting) {
                trrRng_ = rng_snapshot;
                break;
            }

            // Commit: stripe and TRR refreshes all land on untracked
            // rows, whose state is loop-invariant, so they are
            // idempotent and order-insensitive within the iteration.
            local_ref = refCounter_;
            for (std::size_t e = 0; e < rec.refs.size(); ++e) {
                const std::uint64_t slot = local_ref % window;
                ++local_ref;
                const RowId start = static_cast<RowId>(
                    slot * rows_per_bank / window);
                const RowId end = static_cast<RowId>(
                    (slot + 1) * rows_per_bank / window);
                for (BankState &bank : banks_)
                    for (RowId r = start; r < end; ++r)
                        refreshRow(bank, r);
                ++counters_.refs;
            }
            refCounter_ = local_ref;
            for (const auto &[b, v] : trr_targets) {
                refreshRow(banks_[b], v);
                ++counters_.trrRefreshes;
            }
            obs_trr_refreshes += trr_targets.size();
            ++completed;
        }
    }

    if (completed == 0)
        return 0;

    // Keep the obs counters in lockstep with counters_ so the metrics
    // totals do not depend on how many REFs were replayed vs executed
    // live.  Rolled up once after the replay loop (never inside it --
    // this is the simulator's hottest loop); replay emits no per-REF
    // trace events, fastpath_replay summarizes them.
    if (obs::metricsOn()) [[unlikely]] {
        static const obs::CounterId c_refs =
            obs::metrics().counterId("device.refs");
        static const obs::CounterId c_trr =
            obs::metrics().counterId("device.trr_refreshes");
        if (!rec.refs.empty())
            obs::metrics().add(c_refs, rec.refs.size() * completed);
        if (obs_trr_refreshes > 0)
            obs::metrics().add(c_trr, obs_trr_refreshes);
    }

    // Damage: the recorded iteration's deltas, scaled once.  Safe to
    // defer past the refreshes above because those never touch a
    // deposit-bearing (tracked) row.
    DisturbanceModel::replay(rec.damage, completed);

    counters_.acts += rec.counterDelta.acts * completed;
    counters_.pres += rec.counterDelta.pres * completed;
    counters_.comraCopies += rec.counterDelta.comraCopies * completed;
    counters_.simraOps += rec.counterDelta.simraOps * completed;
    counters_.ignoredCommands +=
        rec.counterDelta.ignoredCommands * completed;

    // Advance each bank's sampler ring closed-form: of the
    // completed * acts_per_iter pushes only the last kTrrWindow can
    // survive, and the pushed stream is periodic in the body.
    for (std::size_t b = 0; b < nbanks; ++b) {
        BankState &bank = banks_[b];
        const std::uint64_t per = acts_per_iter[b];
        const std::uint64_t pushes = per * completed;
        if (pushes == 0)
            continue;
        const std::uint64_t first =
            pushes > kTrrWindow ? pushes - kTrrWindow : 0;
        for (std::uint64_t i = first; i < pushes; ++i) {
            bank.trrRing[(pos0[b] + i) % kTrrWindow] =
                rec.samplerActs[b][i % per];
        }
        bank.trrPos = (pos0[b] + pushes) % kTrrWindow;
        bank.trrFill = static_cast<std::size_t>(
            std::min<std::uint64_t>(kTrrWindow, fill0[b] + pushes));
    }
    return completed;
}

void
Device::shiftLoopTimestamps(Time from, Time delta)
{
    if (delta <= 0)
        return;
    for (BankState &bank : banks_) {
        if (bank.pendingValid && bank.pendingClosedAt >= from) {
            bank.pendingClosedAt += delta;
            bank.pendingOpenedAt += delta;
        }
        if (bank.st == BankState::St::Open && bank.openedAt >= from)
            bank.openedAt += delta;
        for (Row &row : bank.rows)
            if (row.lastCloseAt >= from)
                row.lastCloseAt += delta;
    }
}

void
Device::flush()
{
    for (BankState &bank : banks_)
        flushPending(bank);
}

void
Device::writeRowDirect(BankId b, RowId logical_row, const RowData &data)
{
    BankState &bank = banks_.at(b);
    const RowId phys = mapping_.toPhysical(logical_row);
    Row &row = rowAt(bank, phys);
    row.data = data;
    for (WeakCell &c : row.cells) {
        c.resetDamage();
        if (cfg_.trialNoiseSigma > 0.0) {
            // A host write starts a fresh trial: redraw the cell's
            // run-to-run threshold jitter.
            c.trialScale = static_cast<float>(
                std::exp(cfg_.trialNoiseSigma * noiseRng_.gaussian()));
        }
    }
    row.lastSide = 0;
}

RowData
Device::readRowDirect(BankId b, RowId logical_row) const
{
    // Logically const: reading a pristine row returns its (drawn)
    // initial data, so materializing here is an internal cache fill.
    auto *self = const_cast<Device *>(this);
    BankState &bank = self->banks_.at(b);
    const RowId phys = mapping_.toPhysical(logical_row);
    return viewOf(self->rowAt(bank, phys));
}

} // namespace pud::dram
