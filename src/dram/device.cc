#include "dram/device.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace pud::dram {

namespace {

// Fraction of the calibrated factor spread assigned to the row level
// vs the cell level.  Per-cell heterogeneity is what makes combined
// RowHammer + PuDHammer patterns (paper §6) only *partially* share
// damage: the cell that is most vulnerable to RowHammer is often not
// the one most vulnerable to CoMRA/SiMRA (paper Obs. 23).
constexpr double kRowShare = 0.8;
constexpr double kCellShare = 0.6;  // sqrt(0.8^2 + 0.6^2) = 1

// Probability that a cell's conventional-class flip direction is the
// dominant 0 -> 1 (Obs. 14 for RowHammer).
constexpr double kConvZeroToOneFraction = 0.60;

// Probability that a cell's SiMRA flip direction is the dominant
// 1 -> 0 (Obs. 14).
constexpr double kSimraOneToZeroFraction = 0.90;

// Per-N jitter of the SiMRA factor, making the HC_first reduction
// non-monotonic in N per victim row (paper §5.3).
constexpr double kSimraPerNJitterSigma = 0.30;



} // namespace

Device::Device(DeviceConfig cfg)
    : cfg_(std::move(cfg)),
      mapping_(cfg_.profile.mapping),
      decoder_(cfg_.rowsPerSubarray),
      disturb_(cfg_),
      temperature_(cfg_.temperature),
      trrRng_(Rng(cfg_.seed).fork(0x7272)),
      noiseRng_(Rng(cfg_.seed).fork(0x4E01))
{
    if (cfg_.banks == 0 || cfg_.subarraysPerBank == 0 ||
        cfg_.rowsPerSubarray == 0 || cfg_.cols == 0) {
        fatal("Device: degenerate geometry");
    }
    if ((cfg_.rowsPerSubarray & (cfg_.rowsPerSubarray - 1)) != 0)
        fatal("Device: rowsPerSubarray must be a power of two");

    Rng rng(cfg_.seed);
    banks_.resize(cfg_.banks);
    for (BankId b = 0; b < cfg_.banks; ++b) {
        Rng bank_rng = rng.fork(b + 1);
        populateBank(banks_[b], bank_rng);
    }
}

void
Device::populateBank(BankState &bank, Rng &rng)
{
    const auto cal = calibrate(cfg_.profile);
    const RowId num_rows = cfg_.rowsPerBank();

    bank.rows.resize(num_rows);
    bank.trrRing.assign(kTrrWindow, kNoRow);

    const double comra_row_sigma = kRowShare * cal.comraFactorSigma;
    const double comra_cell_sigma = kCellShare * cal.comraFactorSigma;

    for (RowId r = 0; r < num_rows; ++r) {
        Row &row = bank.rows[r];
        row.data = RowData(cfg_.cols);

        const double base_row = std::max(
            100.0, rng.logNormalMedian(cal.rhMedian, cal.rhSigma));
        // CoMRA amplifies read disturbance for essentially every row
        // (Obs. 2: 99% of rows see a lower HC_first), so the row-level
        // gain is floored just above 1.
        const double comra_row = std::max(
            1.05, rng.logNormalMedian(cal.comraFactorMedian,
                                      comra_row_sigma));

        double simra_row = 1.0;
        if (cfg_.profile.supportsSimra) {
            if (rng.chance(cal.simraExtremeFraction)) {
                simra_row = rng.logNormalMedian(
                    cal.simraExtremeMedian,
                    kRowShare * cal.simraExtremeSigma);
            } else {
                simra_row = rng.logNormalMedian(
                    cal.simraRegularMedian,
                    kRowShare * cal.simraRegularSigma);
            }
            simra_row = std::max(0.8, simra_row);
        }

        row.cells.resize(cfg_.weakCellsPerRow);
        for (int c = 0; c < cfg_.weakCellsPerRow; ++c) {
            WeakCell &cell = row.cells[c];

            // Distinct column per cell.
            for (;;) {
                cell.col = static_cast<ColId>(rng.below(cfg_.cols));
                bool dup = false;
                for (int k = 0; k < c; ++k)
                    if (row.cells[k].col == cell.col)
                        dup = true;
                if (!dup)
                    break;
            }

            const double mult =
                c == 0 ? 1.0 : std::exp(rng.uniform(0.08, 1.3));
            cell.baseHc = static_cast<float>(base_row * mult);

            cell.comraFactor = static_cast<float>(std::max(
                1.02, comra_row * std::exp(comra_cell_sigma *
                                           rng.gaussian())));

            if (cfg_.profile.supportsSimra) {
                const double cell_simra = std::max(
                    0.3, simra_row *
                             std::exp(kCellShare *
                                      cal.simraRegularSigma *
                                      rng.gaussian()));
                for (int n = 0; n < 5; ++n) {
                    cell.simraFactor[n] = static_cast<float>(std::max(
                        0.2, cell_simra *
                                 std::exp(kSimraPerNJitterSigma *
                                          rng.gaussian())));
                }
            }

            cell.tempSlopeConv =
                static_cast<float>(rng.uniform(-0.35, 0.5));
            cell.upperShare =
                static_cast<float>(rng.uniform(0.38, 0.62));
            cell.dstRoleGain = static_cast<float>(
                std::exp(0.04 * rng.gaussian()));
            cell.dirConv = rng.chance(kConvZeroToOneFraction)
                               ? FlipDirection::ZeroToOne
                               : FlipDirection::OneToZero;
            cell.dirSimra = rng.chance(kSimraOneToZeroFraction)
                                ? FlipDirection::OneToZero
                                : FlipDirection::ZeroToOne;
            cell.resetDamage();
        }
    }
}

void
Device::advanceTime(Time t)
{
    if (t < now_)
        fatal("Device: command time went backwards (%lld < %lld)",
              static_cast<long long>(t), static_cast<long long>(now_));
    now_ = t;
}

void
Device::restoreRow(Row &row)
{
    for (WeakCell &cell : row.cells) {
        if (cell.flipped())
            row.data.toggle(cell.col);
        cell.resetDamage();
        disturb_.noteReset(cell);
    }
}

RowData
Device::viewOf(const Row &row)
{
    RowData out = row.data;
    for (const WeakCell &cell : row.cells)
        if (cell.flipped())
            out.toggle(cell.col);
    return out;
}

void
Device::majorityMerge(BankState &bank)
{
    const auto n = bank.openRows.size();
    if (n < 2)
        return;

    RowData out(cfg_.cols);
    for (ColId col = 0; col < cfg_.cols; ++col) {
        unsigned ones = 0;
        for (RowId r : bank.openRows)
            ones += bank.rows[r].data.get(col);
        bool bit;
        if (2 * ones > n)
            bit = true;
        else if (2 * ones < n)
            bit = false;
        else
            bit = bank.rows[bank.openRows.front()].data.get(col);
        out.set(col, bit);
    }
    for (RowId r : bank.openRows)
        bank.rows[r].data = out;
}

void
Device::trrRecord(BankState &bank, RowId physical)
{
    bank.trrRing[bank.trrPos] = physical;
    bank.trrPos = (bank.trrPos + 1) % kTrrWindow;
    if (bank.trrFill < kTrrWindow)
        ++bank.trrFill;
}

void
Device::resetTrrSampler()
{
    for (BankState &bank : banks_) {
        std::fill(bank.trrRing.begin(), bank.trrRing.end(), kNoRow);
        bank.trrPos = 0;
        bank.trrFill = 0;
    }
}

void
Device::refreshRow(BankState &bank, RowId physical)
{
    restoreRow(bank.rows[physical]);
    bank.rows[physical].lastSide = 0;
}

void
Device::flushPending(BankState &bank)
{
    if (!bank.pendingValid)
        return;
    bank.pendingValid = false;
    disturb_.applyClose(bank.rows, bank.pending, temperature_);
}

void
Device::openNormal(BankState &bank, Time t, RowId physical)
{
    bank.st = BankState::St::Open;
    bank.openRows.assign(1, physical);
    bank.openKind = OpenKind::Normal;
    bank.openedAt = t;
    const Time last = bank.rows[physical].lastCloseAt;
    bank.offGapOfOpen = last >= 0 ? t - last : 0;
    restoreRow(bank.rows[physical]);
    trrRecord(bank, physical);
}

void
Device::act(Time t, BankId b, RowId logical_row)
{
    advanceTime(t);
    if (b >= banks_.size())
        fatal("ACT to bank %u (device has %zu banks)", b, banks_.size());
    BankState &bank = banks_[b];
    if (logical_row >= cfg_.rowsPerBank())
        fatal("ACT to row %u (bank has %u rows)", logical_row,
              cfg_.rowsPerBank());
    const RowId phys = mapping_.toPhysical(logical_row);

    if (bank.st == BankState::St::Open)
        fatal("ACT to bank %u while a row is open (missing PRE)", b);

    ++counters_.acts;

    if (bank.pendingValid) {
        const Time gap = t - bank.pendingClosedAt;
        const bool single = bank.pending.rows.size() == 1;
        const bool same_sub =
            single && subarrayOfPhysical(bank.pending.rows.front()) ==
                          subarrayOfPhysical(phys);

        // --- SiMRA: ACT-PRE-ACT with both gaps grossly violated -------
        if (single && same_sub &&
            bank.pending.tOn <= cfg_.timings.simraMaxActToPre &&
            gap <= cfg_.timings.simraMaxPreToAct) {
            if (!cfg_.profile.supportsSimra) {
                // The chip ignores commands that grossly violate the
                // nominal timings (paper §5.3 footnote): the quick PRE
                // and this ACT have no effect; the first row stays
                // open with its original activation time.
                counters_.ignoredCommands += 2;
                bank.st = BankState::St::Open;
                bank.openRows = bank.pending.rows;
                bank.openKind = bank.pendingKind;
                bank.openedAt = bank.pendingOpenedAt;
                bank.pendingValid = false;
                return;
            }
            auto group =
                decoder_.activatedSet(bank.pending.rows.front(), phys);
            if (group.size() > 1) {
                const Time act_to_pre = bank.pending.tOn;
                bank.pendingValid = false;  // blip is part of this op
                for (RowId r : group)
                    restoreRow(bank.rows[r]);
                bank.st = BankState::St::Open;
                bank.openRows = std::move(group);
                bank.openKind = OpenKind::Simra;
                bank.openedAt = t;
                bank.simraActToPre = act_to_pre;
                bank.simraPreToAct = gap;
                {
                    const Time last = bank.rows[phys].lastCloseAt;
                    bank.offGapOfOpen = last >= 0 ? t - last : 0;
                }
                majorityMerge(bank);
                trrRecord(bank, phys);
                ++counters_.simraOps;
                return;
            }
            // Degenerate pair (same row reissued): fall through.
        }

        // --- CoMRA: full restore then reopen below tRP -----------------
        if (single && same_sub && bank.pending.rows.front() != phys &&
            bank.pending.tOn >= cfg_.timings.tRAS - units::ns &&
            gap <= cfg_.timings.comraMaxPreToAct) {
            const RowId src = bank.pending.rows.front();
            // Retro-tag the source row's close as the copy cycle's
            // first half: the disturbance hypothesis (paper §4.3) ties
            // the amplification to the short wordline off-interval.
            bank.pending.cls = TechClass::Comra;
            bank.pending.comraDelay = gap;
            bank.pending.comraPartner = phys;
            bank.pending.comraDstRole = false;
            flushPending(bank);

            // Destination latches the source's bitline charge: the
            // in-DRAM copy, with full charge restoration on dst.
            restoreRow(bank.rows[src]);
            bank.rows[phys].data = bank.rows[src].data;
            for (WeakCell &c : bank.rows[phys].cells) {
                c.resetDamage();
                disturb_.noteReset(c);
            }

            bank.st = BankState::St::Open;
            bank.openRows.assign(1, phys);
            bank.openKind = OpenKind::ComraDst;
            bank.openedAt = t;
            bank.comraDelayOfOpen = gap;
            bank.comraPartnerOfOpen = src;
            {
                const Time last = bank.rows[phys].lastCloseAt;
                bank.offGapOfOpen = last >= 0 ? t - last : 0;
            }
            trrRecord(bank, phys);
            ++counters_.comraCopies;
            return;
        }

        flushPending(bank);
    }

    openNormal(bank, t, phys);
}

void
Device::pre(Time t, BankId b)
{
    advanceTime(t);
    BankState &bank = banks_.at(b);
    ++counters_.pres;
    if (bank.st != BankState::St::Open)
        return;  // PRE on a precharged bank is a no-op

    if (bank.pendingValid)
        flushPending(bank);

    CloseEvent ev;
    ev.rows = bank.openRows;
    switch (bank.openKind) {
      case OpenKind::ComraDst:
        ev.cls = TechClass::Comra;
        ev.comraDelay = bank.comraDelayOfOpen;
        ev.comraPartner = bank.comraPartnerOfOpen;
        ev.comraDstRole = true;
        break;
      case OpenKind::Simra:
        ev.cls = TechClass::Simra;
        ev.simraN = static_cast<int>(bank.openRows.size());
        ev.simraActToPre = bank.simraActToPre;
        ev.simraPreToAct = bank.simraPreToAct;
        break;
      default:
        ev.cls = TechClass::Conventional;
        break;
    }
    ev.tOn = t - bank.openedAt;
    ev.reopenGap = bank.offGapOfOpen;
    for (RowId r : bank.openRows)
        bank.rows[r].lastCloseAt = t;

    bank.pending = std::move(ev);
    bank.pendingValid = true;
    bank.pendingClosedAt = t;
    bank.pendingKind = bank.openKind;
    bank.pendingOpenedAt = bank.openedAt;

    bank.st = BankState::St::Precharging;
    bank.openRows.clear();
}

void
Device::preAll(Time t)
{
    for (BankId b = 0; b < banks_.size(); ++b)
        pre(t, b);
}

RowData
Device::rd(Time t, BankId b)
{
    advanceTime(t);
    BankState &bank = banks_.at(b);
    if (bank.st != BankState::St::Open)
        fatal("RD on bank %u with no open row", b);
    return viewOf(bank.rows[bank.openRows.front()]);
}

void
Device::wr(Time t, BankId b, const RowData &data)
{
    advanceTime(t);
    BankState &bank = banks_.at(b);
    if (bank.st != BankState::St::Open)
        fatal("WR on bank %u with no open row", b);
    if (data.bits() != cfg_.cols)
        fatal("WR with %u bits to a %u-bit row", data.bits(), cfg_.cols);
    for (RowId r : bank.openRows) {
        bank.rows[r].data = data;
        for (WeakCell &c : bank.rows[r].cells) {
            c.resetDamage();
            disturb_.noteReset(c);
        }
    }
}

void
Device::ref(Time t)
{
    advanceTime(t);
    ++counters_.refs;
    const RowId rows_per_bank = cfg_.rowsPerBank();
    const auto window = static_cast<std::uint64_t>(
        cfg_.timings.refsPerWindow);
    const std::uint64_t slot = refCounter_ % window;
    const RowId start =
        static_cast<RowId>(slot * rows_per_bank / window);
    const RowId end =
        static_cast<RowId>((slot + 1) * rows_per_bank / window);
    ++refCounter_;

    for (BankState &bank : banks_) {
        if (bank.st == BankState::St::Open)
            fatal("REF issued with an open bank");
        flushPending(bank);
        for (RowId r = start; r < end; ++r)
            refreshRow(bank, r);

        if (trrEnabled_ && bank.trrFill > 0) {
            // Sampling TRR: pick one of the last kTrrWindow activated
            // row addresses and preventively refresh its neighbours.
            const std::size_t span =
                std::min(bank.trrFill, kTrrWindow);
            const std::size_t back = trrRng_.below(span);
            const std::size_t idx =
                (bank.trrPos + kTrrWindow - 1 - back) % kTrrWindow;
            const RowId aggr = bank.trrRing[idx];
            if (aggr != kNoRow) {
                const SubarrayId sub = subarrayOfPhysical(aggr);
                for (int d : {-1, 1}) {
                    const std::int64_t v =
                        static_cast<std::int64_t>(aggr) + d;
                    if (v < 0 ||
                        v >= static_cast<std::int64_t>(
                                 bank.rows.size()))
                        continue;
                    if (subarrayOfPhysical(static_cast<RowId>(v)) != sub)
                        continue;
                    refreshRow(bank, static_cast<RowId>(v));
                    ++counters_.trrRefreshes;
                }
            }
        }
    }
}

void
Device::shiftLoopTimestamps(Time from, Time delta)
{
    if (delta <= 0)
        return;
    for (BankState &bank : banks_) {
        if (bank.pendingValid && bank.pendingClosedAt >= from) {
            bank.pendingClosedAt += delta;
            bank.pendingOpenedAt += delta;
        }
        if (bank.st == BankState::St::Open && bank.openedAt >= from)
            bank.openedAt += delta;
        for (Row &row : bank.rows)
            if (row.lastCloseAt >= from)
                row.lastCloseAt += delta;
    }
}

void
Device::flush()
{
    for (BankState &bank : banks_)
        flushPending(bank);
}

void
Device::writeRowDirect(BankId b, RowId logical_row, const RowData &data)
{
    BankState &bank = banks_.at(b);
    const RowId phys = mapping_.toPhysical(logical_row);
    Row &row = bank.rows.at(phys);
    row.data = data;
    for (WeakCell &c : row.cells) {
        c.resetDamage();
        if (cfg_.trialNoiseSigma > 0.0) {
            // A host write starts a fresh trial: redraw the cell's
            // run-to-run threshold jitter.
            c.trialScale = static_cast<float>(
                std::exp(cfg_.trialNoiseSigma * noiseRng_.gaussian()));
        }
    }
    row.lastSide = 0;
}

RowData
Device::readRowDirect(BankId b, RowId logical_row) const
{
    const BankState &bank = banks_.at(b);
    const RowId phys = mapping_.toPhysical(logical_row);
    return viewOf(bank.rows.at(phys));
}

} // namespace pud::dram
