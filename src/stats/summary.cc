#include "stats/summary.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/logging.h"

namespace pud::stats {

std::string
BoxStats::str(int precision) const
{
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "%.*f / %.*f / %.*f / %.*f / %.*f (mean %.*f)",
                  precision, min, precision, q1, precision, median,
                  precision, q3, precision, max,
                  precision == 0 ? 1 : precision, mean);
    return buf;
}

double
quantileSorted(const std::vector<double> &sorted, double q)
{
    if (sorted.empty())
        return 0.0;
    if (sorted.size() == 1)
        return sorted.front();
    const double pos = q * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

BoxStats
boxStats(std::vector<double> samples)
{
    BoxStats out;
    const auto finite_end = std::remove_if(
        samples.begin(), samples.end(),
        [](double x) { return !std::isfinite(x); });
    out.dropped =
        static_cast<std::size_t>(samples.end() - finite_end);
    samples.erase(finite_end, samples.end());
    out.count = samples.size();
    if (samples.empty())
        return out;
    std::sort(samples.begin(), samples.end());
    out.min = samples.front();
    out.max = samples.back();
    out.q1 = quantileSorted(samples, 0.25);
    out.median = quantileSorted(samples, 0.50);
    out.q3 = quantileSorted(samples, 0.75);
    double sum = 0.0;
    for (double x : samples)
        sum += x;
    out.mean = sum / static_cast<double>(samples.size());
    return out;
}

std::vector<double>
changeCurve(const std::vector<double> &base,
            const std::vector<double> &variant, std::size_t *dropped)
{
    if (base.size() != variant.size())
        panic("changeCurve: mismatched sample counts (%zu vs %zu)",
              base.size(), variant.size());
    std::vector<double> change;
    change.reserve(base.size());
    std::size_t skipped = 0;
    for (std::size_t i = 0; i < base.size(); ++i) {
        if (base[i] <= 0.0) {
            ++skipped;
            continue;
        }
        change.push_back(100.0 * (variant[i] - base[i]) / base[i]);
    }
    if (dropped)
        *dropped = skipped;
    else if (skipped)
        warn("changeCurve: dropped %zu of %zu pairs with "
             "non-positive base",
             skipped, base.size());
    // Most positive change first, matching the paper's x-axis.
    std::sort(change.begin(), change.end(), std::greater<>());
    return change;
}

double
fractionBelow(const std::vector<double> &v, double threshold)
{
    if (v.empty())
        return 0.0;
    std::size_t below = 0;
    for (double x : v)
        if (x < threshold)
            ++below;
    return static_cast<double>(below) / static_cast<double>(v.size());
}

double
geomean(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double x : v) {
        if (x <= 0.0)
            panic("geomean: non-positive sample %f", x);
        log_sum += std::log(x);
    }
    return std::exp(log_sum / static_cast<double>(v.size()));
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0)
{
    if (bins == 0 || hi <= lo)
        panic("Histogram: invalid range [%f, %f) with %zu bins",
              lo, hi, bins);
}

void
Histogram::add(double x)
{
    ++total_;
    if (x < lo_) {
        ++underflow_;
        return;
    }
    if (x >= hi_) {
        ++overflow_;
        return;
    }
    const double span = hi_ - lo_;
    auto idx = static_cast<std::size_t>(
        (x - lo_) / span * static_cast<double>(counts_.size()));
    if (idx >= counts_.size())
        idx = counts_.size() - 1;
    ++counts_[idx];
}

double
Histogram::binLow(std::size_t i) const
{
    const double span = hi_ - lo_;
    return lo_ + span * static_cast<double>(i) /
           static_cast<double>(counts_.size());
}

} // namespace pud::stats
