/**
 * @file
 * Mergeable streaming sample sketch for fleet-scale summaries.
 *
 * Population benches at 10^4+ modules cannot afford whole-population
 * sample vectors (the paper's boxplots are over every tested row of
 * every module).  SampleSketch keeps count/mean/min/max exactly and
 * quantiles approximately in O(log range) memory, supports an
 * associative merge so per-shard sketches fold into one fleet sketch
 * in any grouping, and serializes bit-exactly so checkpoint/resume and
 * cross-jobs runs produce byte-identical snapshots.
 *
 * The quantile structure is a DDSketch-style logarithmic histogram
 * (Masson et al., VLDB 2019): a nonzero sample x lands in bucket
 * ceil(log_gamma |x|) with gamma = (1 + alpha) / (1 - alpha), and the
 * bucket's representative value 2 * gamma^i / (gamma + 1) is within a
 * factor (1 +- alpha) of every sample in the bucket.  quantile() is
 * therefore *relative-error* bounded: the returned value differs from
 * the true sample quantile by at most alpha of its magnitude (exact
 * for zeros).  Bucket counts are integers keyed by integer indices, so
 * merge() is associative and commutative on the histogram; only the
 * running `sum` is subject to floating-point rounding, which is
 * commutative but not associative -- callers that need byte-identical
 * output must merge in a canonical order (see hammer/population.h).
 */

#ifndef PUD_STATS_SKETCH_H
#define PUD_STATS_SKETCH_H

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>

namespace pud::stats {

/** Hex of a double's IEEE-754 bits: 16 lowercase digits, bit-exact. */
std::string hexDouble(double x);

/** Inverse of hexDouble; false on malformed input. */
bool parseHexDouble(std::string_view tok, double *out);

class SampleSketch
{
  public:
    /** alpha = maximum relative quantile error (default 1%). */
    explicit SampleSketch(double alpha = 0.01);

    /** Ingest one sample; non-finite samples are dropped-and-counted
     *  (same policy as Accumulator/boxStats). */
    void add(double x);

    /** Fold another sketch in; both must share the same alpha. */
    void merge(const SampleSketch &other);

    double alpha() const { return alpha_; }
    std::uint64_t count() const { return n_; }
    std::uint64_t dropped() const { return dropped_; }
    double sum() const { return sum_; }
    double mean() const
    {
        return n_ ? sum_ / static_cast<double>(n_) : 0.0;
    }
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }

    /**
     * Approximate q-quantile (q in [0, 1]) of all ingested finite
     * samples: the representative value of the bucket holding the
     * floor(q * (count - 1))-th order statistic.  Relative error is at
     * most alpha; 0.0 on an empty sketch.
     */
    double quantile(double q) const;

    /** Number of occupied histogram buckets (memory introspection). */
    std::size_t buckets() const
    {
        return neg_.size() + pos_.size() + (zero_ ? 1 : 0);
    }

    /**
     * Bit-exact single-line snapshot: doubles are encoded as the hex
     * of their IEEE-754 bits and buckets in ascending index order, so
     * equal sketches serialize to equal bytes on every platform and
     * deserialize(serialize(s)) reproduces s exactly.
     */
    std::string serialize() const;

    /** Parse a serialize() line; nullopt on malformed input. */
    static std::optional<SampleSketch> deserialize(std::string_view s);

    /** Exact structural equality (counts, buckets, and sum bits). */
    bool operator==(const SampleSketch &other) const;

  private:
    int bucketIndex(double magnitude) const;
    double representative(int index) const;

    double alpha_;
    double gamma_;
    double invLogGamma_;

    std::uint64_t n_ = 0;
    std::uint64_t dropped_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;  //!< valid only when n_ > 0
    double max_ = 0.0;

    // Bucket index -> sample count.  std::map keeps deterministic
    // (ascending) iteration for serialization and trivially
    // associative integer merges.
    std::map<int, std::uint64_t> neg_;  //!< indexed by |x| for x < 0
    std::uint64_t zero_ = 0;
    std::map<int, std::uint64_t> pos_;
};

} // namespace pud::stats

#endif // PUD_STATS_SKETCH_H
