#include "stats/sketch.h"

#include <bit>
#include <charconv>
#include <cmath>
#include <limits>

#include "util/logging.h"

namespace pud::stats {

std::string
hexDouble(double x)
{
    char buf[17];
    const std::uint64_t bits = std::bit_cast<std::uint64_t>(x);
    static const char digits[] = "0123456789abcdef";
    for (int i = 0; i < 16; ++i)
        buf[i] = digits[(bits >> (60 - 4 * i)) & 0xF];
    buf[16] = '\0';
    return buf;
}

bool
parseHexDouble(std::string_view tok, double *out)
{
    if (tok.size() != 16)
        return false;
    std::uint64_t bits = 0;
    for (char c : tok) {
        std::uint64_t d;
        if (c >= '0' && c <= '9')
            d = static_cast<std::uint64_t>(c - '0');
        else if (c >= 'a' && c <= 'f')
            d = static_cast<std::uint64_t>(c - 'a' + 10);
        else
            return false;
        bits = (bits << 4) | d;
    }
    *out = std::bit_cast<double>(bits);
    return true;
}

namespace {

/** Pop the next whitespace-delimited token; empty view when done. */
std::string_view
nextToken(std::string_view &s)
{
    while (!s.empty() && (s.front() == ' ' || s.front() == '\t'))
        s.remove_prefix(1);
    std::size_t end = 0;
    while (end < s.size() && s[end] != ' ' && s[end] != '\t')
        ++end;
    const std::string_view tok = s.substr(0, end);
    s.remove_prefix(end);
    return tok;
}

/** Split "key=value", returning false if `key` does not match. */
bool
keyValue(std::string_view tok, std::string_view key,
         std::string_view *value)
{
    if (tok.size() <= key.size() || tok.substr(0, key.size()) != key ||
        tok[key.size()] != '=')
        return false;
    *value = tok.substr(key.size() + 1);
    return true;
}

template <typename T>
bool
parseInt(std::string_view tok, T *out)
{
    const char *first = tok.data();
    const char *last = tok.data() + tok.size();
    const auto [ptr, ec] = std::from_chars(first, last, *out);
    return ec == std::errc() && ptr == last;
}

/** Parse "i:c,i:c,..." into the bucket map; empty string = no buckets. */
bool
parseBuckets(std::string_view body, std::map<int, std::uint64_t> *out)
{
    while (!body.empty()) {
        const std::size_t comma = body.find(',');
        const std::string_view entry = body.substr(0, comma);
        const std::size_t colon = entry.find(':');
        if (colon == std::string_view::npos)
            return false;
        int index = 0;
        std::uint64_t count = 0;
        if (!parseInt(entry.substr(0, colon), &index) ||
            !parseInt(entry.substr(colon + 1), &count) || count == 0)
            return false;
        if (!out->emplace(index, count).second)
            return false;  // duplicate index
        if (comma == std::string_view::npos)
            break;
        body.remove_prefix(comma + 1);
    }
    return true;
}

void
appendBuckets(std::string *out,
              const std::map<int, std::uint64_t> &buckets)
{
    bool first = true;
    for (const auto &[index, count] : buckets) {
        if (!first)
            *out += ',';
        first = false;
        *out += std::to_string(index);
        *out += ':';
        *out += std::to_string(count);
    }
}

} // namespace

SampleSketch::SampleSketch(double alpha) : alpha_(alpha)
{
    if (!(alpha > 0.0) || !(alpha < 1.0))
        fatal("SampleSketch: alpha must be in (0, 1), got %g", alpha);
    gamma_ = (1.0 + alpha_) / (1.0 - alpha_);
    invLogGamma_ = 1.0 / std::log(gamma_);
}

int
SampleSketch::bucketIndex(double magnitude) const
{
    // Subnormal-tiny magnitudes would need huge negative indices;
    // clamp them into the lowest practical bucket.  At alpha = 0.01
    // index -38000 covers down to ~1e-330, i.e. everything normal.
    const double raw =
        std::ceil(std::log(magnitude) * invLogGamma_);
    constexpr double kLimit = 1e8;
    if (raw < -kLimit)
        return static_cast<int>(-kLimit);
    if (raw > kLimit)
        return static_cast<int>(kLimit);
    return static_cast<int>(raw);
}

double
SampleSketch::representative(int index) const
{
    return 2.0 * std::pow(gamma_, index) / (gamma_ + 1.0);
}

void
SampleSketch::add(double x)
{
    if (!std::isfinite(x)) {
        ++dropped_;
        return;
    }
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        if (x < min_)
            min_ = x;
        if (x > max_)
            max_ = x;
    }
    ++n_;
    sum_ += x;
    if (x == 0.0)
        ++zero_;
    else if (x > 0.0)
        ++pos_[bucketIndex(x)];
    else
        ++neg_[bucketIndex(-x)];
}

void
SampleSketch::merge(const SampleSketch &other)
{
    if (alpha_ != other.alpha_)
        fatal("SampleSketch::merge: alpha mismatch (%g vs %g)", alpha_,
              other.alpha_);
    if (other.n_ > 0) {
        if (n_ == 0) {
            min_ = other.min_;
            max_ = other.max_;
        } else {
            if (other.min_ < min_)
                min_ = other.min_;
            if (other.max_ > max_)
                max_ = other.max_;
        }
    }
    n_ += other.n_;
    dropped_ += other.dropped_;
    sum_ += other.sum_;
    zero_ += other.zero_;
    for (const auto &[index, count] : other.neg_)
        neg_[index] += count;
    for (const auto &[index, count] : other.pos_)
        pos_[index] += count;
}

double
SampleSketch::quantile(double q) const
{
    if (n_ == 0)
        return 0.0;
    if (q < 0.0)
        q = 0.0;
    if (q > 1.0)
        q = 1.0;
    const std::uint64_t target = static_cast<std::uint64_t>(
        q * static_cast<double>(n_ - 1));

    std::uint64_t cum = 0;
    // Ascending sample order: most-negative first (descending |x|
    // bucket index), then zeros, then positives (ascending index).
    for (auto it = neg_.rbegin(); it != neg_.rend(); ++it) {
        cum += it->second;
        if (cum > target)
            return -representative(it->first);
    }
    cum += zero_;
    if (cum > target)
        return 0.0;
    for (const auto &[index, count] : pos_) {
        cum += count;
        if (cum > target)
            return representative(index);
    }
    return max_;
}

std::string
SampleSketch::serialize() const
{
    std::string out = "sketch1 alpha=";
    out += hexDouble(alpha_);
    out += " n=";
    out += std::to_string(n_);
    out += " dropped=";
    out += std::to_string(dropped_);
    out += " sum=";
    out += hexDouble(sum_);
    out += " min=";
    out += hexDouble(min_);
    out += " max=";
    out += hexDouble(max_);
    out += " zero=";
    out += std::to_string(zero_);
    out += " neg=";
    appendBuckets(&out, neg_);
    out += " pos=";
    appendBuckets(&out, pos_);
    return out;
}

std::optional<SampleSketch>
SampleSketch::deserialize(std::string_view s)
{
    if (nextToken(s) != "sketch1")
        return std::nullopt;

    std::string_view v;
    double alpha = 0.0;
    if (!keyValue(nextToken(s), "alpha", &v) || !parseHexDouble(v, &alpha))
        return std::nullopt;
    if (!(alpha > 0.0) || !(alpha < 1.0))
        return std::nullopt;
    SampleSketch out(alpha);

    if (!keyValue(nextToken(s), "n", &v) || !parseInt(v, &out.n_))
        return std::nullopt;
    if (!keyValue(nextToken(s), "dropped", &v) ||
        !parseInt(v, &out.dropped_))
        return std::nullopt;
    if (!keyValue(nextToken(s), "sum", &v) ||
        !parseHexDouble(v, &out.sum_))
        return std::nullopt;
    if (!keyValue(nextToken(s), "min", &v) ||
        !parseHexDouble(v, &out.min_))
        return std::nullopt;
    if (!keyValue(nextToken(s), "max", &v) ||
        !parseHexDouble(v, &out.max_))
        return std::nullopt;
    if (!keyValue(nextToken(s), "zero", &v) || !parseInt(v, &out.zero_))
        return std::nullopt;
    if (!keyValue(nextToken(s), "neg", &v) ||
        !parseBuckets(v, &out.neg_))
        return std::nullopt;
    if (!keyValue(nextToken(s), "pos", &v) ||
        !parseBuckets(v, &out.pos_))
        return std::nullopt;
    if (!nextToken(s).empty())
        return std::nullopt;  // trailing garbage

    // Consistency: bucket counts must sum to n.
    std::uint64_t total = out.zero_;
    for (const auto &[index, count] : out.neg_)
        total += count;
    for (const auto &[index, count] : out.pos_)
        total += count;
    if (total != out.n_)
        return std::nullopt;
    return out;
}

bool
SampleSketch::operator==(const SampleSketch &other) const
{
    return std::bit_cast<std::uint64_t>(alpha_) ==
               std::bit_cast<std::uint64_t>(other.alpha_) &&
           n_ == other.n_ && dropped_ == other.dropped_ &&
           std::bit_cast<std::uint64_t>(sum_) ==
               std::bit_cast<std::uint64_t>(other.sum_) &&
           std::bit_cast<std::uint64_t>(min_) ==
               std::bit_cast<std::uint64_t>(other.min_) &&
           std::bit_cast<std::uint64_t>(max_) ==
               std::bit_cast<std::uint64_t>(other.max_) &&
           zero_ == other.zero_ && neg_ == other.neg_ &&
           pos_ == other.pos_;
}

} // namespace pud::stats
