/**
 * @file
 * Statistical summaries used by the characterization harness.
 *
 * The paper reports HC_first populations as boxplots (min, quartiles,
 * median, mean, max), sorted percent-change curves (Figs. 4 and 13
 * left), and averaged bitflip counts with ranges (Fig. 24).  These
 * helpers compute those exact summaries from sample vectors.
 */

#ifndef PUD_STATS_SUMMARY_H
#define PUD_STATS_SUMMARY_H

#include <cmath>
#include <cstddef>
#include <limits>
#include <string>
#include <vector>

namespace pud::stats {

/**
 * Streaming accumulator for count/mean/min/max without storing
 * samples.  Non-finite inputs (NaN from kNoFlip victims, +/-Inf from
 * diverging ratios) are dropped and counted instead of ingested: one
 * NaN would otherwise poison sum/mean and disable the min/max
 * comparisons forever, exactly the failure mode boxStats guards
 * against with its `dropped` field.
 */
class Accumulator
{
  public:
    void
    add(double x)
    {
        if (!std::isfinite(x)) {
            ++dropped_;
            return;
        }
        ++n_;
        sum_ += x;
        if (x < min_)
            min_ = x;
        if (x > max_)
            max_ = x;
    }

    /** Fold another accumulator in (associative, order-sensitive only
     *  in sum's last-bit rounding). */
    void
    merge(const Accumulator &other)
    {
        n_ += other.n_;
        dropped_ += other.dropped_;
        sum_ += other.sum_;
        if (other.min_ < min_)
            min_ = other.min_;
        if (other.max_ > max_)
            max_ = other.max_;
    }

    std::size_t count() const { return n_; }
    std::size_t dropped() const { return dropped_; }
    double sum() const { return sum_; }
    double mean() const { return n_ ? sum_ / static_cast<double>(n_) : 0.0; }
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }

  private:
    std::size_t n_ = 0;
    std::size_t dropped_ = 0;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/** Five-number summary plus mean: what one boxplot in the paper shows. */
struct BoxStats
{
    std::size_t count = 0;    //!< finite samples the summary is over
    std::size_t dropped = 0;  //!< non-finite samples excluded
    double min = 0.0;
    double q1 = 0.0;
    double median = 0.0;
    double q3 = 0.0;
    double max = 0.0;
    double mean = 0.0;

    /** Render as "min / q1 / med / q3 / max (mean)" for bench output. */
    std::string str(int precision = 0) const;
};

/**
 * Compute a BoxStats from samples.  The input is copied and sorted;
 * quartiles use linear interpolation (type-7, the numpy default).
 * Non-finite entries -- NaN (e.g. kNoFlip victims from
 * measurePopulation summarized without dropIncomplete) *and* +/-Inf
 * (a diverging ratio) -- are excluded and reported via `dropped`:
 * NaN breaks the sort's strict weak ordering, and an Inf would
 * poison min/max/mean even though it sorts fine.
 */
BoxStats boxStats(std::vector<double> samples);

/** Quantile of a *sorted* sample vector with linear interpolation. */
double quantileSorted(const std::vector<double> &sorted, double q);

/**
 * Sorted percent-change curve: for paired samples (base, variant),
 * computes 100 * (variant - base) / base for each pair and sorts from
 * most positive to most negative -- the x-axis convention of the
 * paper's Figs. 4 and 13 (left plots).
 *
 * Pairs with base[i] <= 0 cannot be expressed as a percent change and
 * are dropped; the count is stored in *dropped when given, and warned
 * about otherwise, so a thinned curve is never silent.
 */
std::vector<double> changeCurve(const std::vector<double> &base,
                                const std::vector<double> &variant,
                                std::size_t *dropped = nullptr);

/** Fraction of entries in v that are strictly below the threshold. */
double fractionBelow(const std::vector<double> &v, double threshold);

/** Geometric mean; all samples must be positive. */
double geomean(const std::vector<double> &v);

/** Fixed-bin histogram for distribution-shape reporting. */
class Histogram
{
  public:
    Histogram(double lo, double hi, std::size_t bins);

    void add(double x);

    std::size_t bins() const { return counts_.size(); }
    std::size_t binCount(std::size_t i) const { return counts_[i]; }
    double binLow(std::size_t i) const;
    double binHigh(std::size_t i) const { return binLow(i + 1); }
    std::size_t total() const { return total_; }
    std::size_t underflow() const { return underflow_; }
    std::size_t overflow() const { return overflow_; }

  private:
    double lo_;
    double hi_;
    std::vector<std::size_t> counts_;
    std::size_t total_ = 0;
    std::size_t underflow_ = 0;
    std::size_t overflow_ = 0;
};

} // namespace pud::stats

#endif // PUD_STATS_SUMMARY_H
