/**
 * @file
 * Static disturbance-effect prediction on top of the loop summary.
 *
 * predictEffects() takes a ProgramEffects summary (absint.h) and a
 * calibration profile, identifies every potential victim row (the
 * distance-1/2 same-subarray neighbours of each aggressor), and folds
 * the adjacency-weighted close totals and condition factors through
 * dram::foldThreshold -- the same multiplicative threshold chain the
 * device model applies at execution time.  Two damage figures come
 * out per victim:
 *
 *  - optimisticDamage: against a hypothetical cell twice as weak as
 *    the family's Table 2 *minimum* anchor.  Below 1.0 here, no cell
 *    the calibration can draw flips: the sweep is statically
 *    unreachable (DisturbanceImpossible).
 *  - typicalDamage: against the family's *average* anchor -- roughly
 *    the damage a median row accrues.
 *
 * Victims whose optimistic damage crosses 1.0 are reported as
 * DisturbanceLikely notes; a hammer-grade program (any aggressor with
 * >= kHammerIntentCloses close events) in which *no* victim crosses
 * earns one DisturbanceImpossible warning.
 */

#ifndef PUD_LINT_EFFECTS_H
#define PUD_LINT_EFFECTS_H

#include <vector>

#include "dram/config.h"
#include "dram/types.h"
#include "lint/absint.h"
#include "lint/diag.h"

namespace pud::lint {

/** A program below this many closes per row is not trying to hammer. */
constexpr std::uint64_t kHammerIntentCloses = 256;

/** Predicted outcome for one potential victim row. */
enum class Verdict : std::uint8_t
{
    Impossible,  //!< even a worst-case weak cell stays below threshold
    Likely,      //!< a plausibly-weak cell crosses the flip threshold
};

/**
 * Mitigation-pass verdict on one victim (mitigation_absint.h).
 *
 * The lattice is deliberately three-valued plus bottom: *Certain*
 * verdicts are universally quantified over every execution consistent
 * with the summary (and therefore require an exact summary and an
 * untruncated sampler trace), while BypassPossible is the sound
 * refusal -- the pass could prove neither direction.
 */
enum class MitVerdict : std::uint8_t
{
    NotEvaluated,      //!< mitigation pass did not run on this victim
    BypassCertain,     //!< every enabled mitigation provably never
                       //!< touches rows v-2..v+2: the victim's bit
                       //!< trajectory is identical to the unmitigated
                       //!< run
    BypassPossible,    //!< neither bypass nor mitigation provable
    MitigatedCertain,  //!< some enabled mitigation provably keeps the
                       //!< victim's damage below the flip threshold at
                       //!< every instant
};

/** Predicted disturbance on one victim row. */
struct VictimPrediction
{
    dram::BankId bank = 0;
    dram::RowId victimPhys = 0;

    /** Damage vs a cell 2x weaker than the family minimum anchor. */
    double optimisticDamage = 0;

    /** Damage vs the family average anchor. */
    double typicalDamage = 0;

    /** Class contributing the most optimistic damage. */
    dram::TechClass dominantClass = dram::TechClass::Conventional;

    /** Adjacency-weighted aggressor closes (all classes). */
    double weightedCloses = 0;

    /** Aggressors on both sides of the victim. */
    bool doubleSided = false;

    Verdict verdict = Verdict::Impossible;

    /** Instruction anchoring diagnostics (hottest aggressor's ACT). */
    std::size_t anchorIndex = 0;

    /** Combined verdict of the mitigation pass (mitigation_absint.h). */
    MitVerdict mitVerdict = MitVerdict::NotEvaluated;

    /**
     * Static lower bound on the HC_first of a successful bypass:
     * the weighted closes a cell twice as weak as the family minimum
     * anchor needs under this program's per-close conditions.  0 when
     * the exposure cannot flip any drawable cell (optimisticDamage is
     * 0), i.e. the bound is unreachable.
     */
    double bypassHcFirstLowerBound = 0;
};

/** Everything the predictor derives from one summary. */
struct EffectReport
{
    /** Per-victim predictions, strongest (most damage) first. */
    std::vector<VictimPrediction> victims;

    /** DisturbanceLikely / DisturbanceImpossible diagnostics. */
    std::vector<Diag> diags;

    /** Any victim crossed the optimistic threshold. */
    bool anyLikely = false;

    /** Largest per-row close count seen (hammer-intent detector). */
    std::uint64_t hottestCloses = 0;
};

/** Run the static effect predictor over a program summary. */
EffectReport predictEffects(const ProgramEffects &fx,
                            const dram::DeviceConfig &cfg);

} // namespace pud::lint

#endif // PUD_LINT_EFFECTS_H
