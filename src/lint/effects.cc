#include "lint/effects.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <map>

#include "dram/cell.h"
#include "dram/disturb.h"

namespace pud::lint {

namespace {

using dram::BankId;
using dram::RowId;
using dram::TechClass;

std::string
format(const char *fmt, ...)
{
    char buf[512];
    va_list args;
    va_start(args, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, args);
    va_end(args);
    return buf;
}

const char *
techName(TechClass cls)
{
    switch (cls) {
      case TechClass::Conventional: return "RowHammer";
      case TechClass::Comra:        return "CoMRA";
      case TechClass::Simra:        return "SiMRA";
    }
    return "?";
}

/** Exposure of one victim, accumulated across its aggressors. */
struct Accum
{
    double left[3] = {0, 0, 0};   //!< weighted closes from below
    double right[3] = {0, 0, 0};  //!< weighted closes from above
    Time onSum[3] = {0, 0, 0};
    std::uint64_t closeCnt[3] = {0, 0, 0};
    Time delaySum = 0;
    Time a2pSum = 0, p2aSum = 0;
    int simraN = 2;
    std::size_t anchor = 0;
    std::uint64_t anchorCloses = 0;
};

double
anchorMin(const dram::FamilyProfile &p, TechClass cls)
{
    switch (cls) {
      case TechClass::Conventional: return p.rhMin;
      case TechClass::Comra:        return p.comraMin;
      case TechClass::Simra:        return p.simraMin;
    }
    return 0;
}

double
anchorAvg(const dram::FamilyProfile &p, TechClass cls)
{
    switch (cls) {
      case TechClass::Conventional: return p.rhAvg;
      case TechClass::Comra:        return p.comraAvg;
      case TechClass::Simra:        return p.simraAvg;
    }
    return 0;
}

} // namespace

EffectReport
predictEffects(const ProgramEffects &fx, const dram::DeviceConfig &cfg)
{
    EffectReport report;
    const dram::DisturbanceModel model(cfg);

    // Collect victim exposures: for each aggressor row, its distance
    // 1/2 same-subarray neighbours that are never themselves activated
    // (mirrors DisturbanceModel::applyClose's victim collection).
    std::map<std::uint64_t, Accum> victims;
    for (const auto &[key, activity] : fx.rows) {
        const std::uint64_t closes = activity.totalCloses();
        report.hottestCloses = std::max(report.hottestCloses, closes);
        if (closes == 0)
            continue;
        const auto bank = static_cast<BankId>(key >> 32);
        const auto aggr = static_cast<RowId>(key & 0xffffffffu);
        const RowId sub = aggr / cfg.rowsPerSubarray;
        for (int d : {-2, -1, 1, 2}) {
            const std::int64_t v = static_cast<std::int64_t>(aggr) + d;
            if (v < 0 ||
                v >= static_cast<std::int64_t>(cfg.rowsPerBank()))
                continue;
            const auto vr = static_cast<RowId>(v);
            if (vr / cfg.rowsPerSubarray != sub)
                continue;  // sense-amp isolation
            if (const RowActivity *va = findRow(fx, bank, vr);
                va != nullptr && (va->acts > 0 || va->totalCloses() > 0))
                continue;  // activated rows restore; not a victim

            Accum &acc = victims[rowKey(bank, vr)];
            const double w =
                (d == 1 || d == -1) ? 1.0 : cfg.distance2Weight;
            for (int c = 0; c < 3; ++c) {
                const double wc =
                    w * static_cast<double>(activity.closes[c]);
                // d < 0: the aggressor sits below the victim.
                (d < 0 ? acc.left[c] : acc.right[c]) += wc;
                acc.onSum[c] += activity.onTime[c];
                acc.closeCnt[c] += activity.closes[c];
            }
            acc.delaySum += activity.comraDelaySum;
            acc.a2pSum += activity.simraActToPreSum;
            acc.p2aSum += activity.simraPreToActSum;
            acc.simraN = std::max(acc.simraN, activity.simraN);
            if (closes > acc.anchorCloses) {
                acc.anchorCloses = closes;
                acc.anchor = activity.firstActIndex;
            }
        }
    }

    for (const auto &[key, acc] : victims) {
        VictimPrediction vp;
        vp.bank = static_cast<BankId>(key >> 32);
        vp.victimPhys = static_cast<RowId>(key & 0xffffffffu);
        vp.anchorIndex = acc.anchor;

        const dram::Region region = model.regionOf(vp.victimPhys);
        double best_contrib = 0;
        for (int c = 0; c < 3; ++c) {
            const double w = acc.left[c] + acc.right[c];
            if (w <= 0)
                continue;
            const auto cls = static_cast<TechClass>(c);
            const double amin = anchorMin(cfg.profile, cls);
            const double aavg = anchorAvg(cfg.profile, cls);
            if (amin <= 0 || aavg <= 0)
                continue;  // family cannot do this class (no SiMRA)

            dram::AggregateExposure e;
            e.cls = cls;
            e.simraN = acc.simraN;
            e.weightedCloses = w;
            e.tOn = acc.closeCnt[c] > 0
                        ? acc.onSum[c] /
                              static_cast<Time>(acc.closeCnt[c])
                        : 0;
            if (cls == TechClass::Comra && acc.closeCnt[c] > 0)
                e.comraDelay =
                    acc.delaySum / static_cast<Time>(acc.closeCnt[c]);
            if (cls == TechClass::Simra && acc.closeCnt[c] > 0) {
                e.simraActToPre =
                    acc.a2pSum / static_cast<Time>(acc.closeCnt[c]);
                e.simraPreToAct =
                    acc.p2aSum / static_cast<Time>(acc.closeCnt[c]);
            }
            e.doubleSided = acc.left[c] > 0 && acc.right[c] > 0;
            e.region = region;
            e.temperature = cfg.temperature;

            // Optimistic: a cell twice as weak as the weakest the
            // paper observed for this family; below 1.0 even here,
            // the calibration cannot draw a cell that flips.
            const double opt = dram::foldThreshold(cfg, e, amin / 2.0);
            vp.optimisticDamage += opt;
            vp.typicalDamage += dram::foldThreshold(cfg, e, aavg);
            vp.weightedCloses += w;
            vp.doubleSided |= e.doubleSided;
            if (opt > best_contrib) {
                best_contrib = opt;
                vp.dominantClass = cls;
            }
        }
        if (vp.weightedCloses <= 0)
            continue;
        vp.verdict = vp.optimisticDamage >= 1.0 ? Verdict::Likely
                                                : Verdict::Impossible;
        report.anyLikely |= vp.verdict == Verdict::Likely;
        report.victims.push_back(vp);
    }

    std::sort(report.victims.begin(), report.victims.end(),
              [](const VictimPrediction &a, const VictimPrediction &b) {
                  return a.optimisticDamage > b.optimisticDamage;
              });

    for (const VictimPrediction &vp : report.victims) {
        if (vp.verdict != Verdict::Likely)
            continue;
        report.diags.push_back(
            {Code::DisturbanceLikely, severityOf(Code::DisturbanceLikely),
             vp.anchorIndex,
             format("victim physical row %u (bank %u) accrues %.3g x "
                    "the weakest-cell flip threshold (%.3g x a typical "
                    "row) from %.0f weighted %s-side %s closes: "
                    "bitflips plausible on %s",
                    vp.victimPhys, vp.bank, vp.optimisticDamage,
                    vp.typicalDamage, vp.weightedCloses,
                    vp.doubleSided ? "double" : "single",
                    techName(vp.dominantClass),
                    cfg.profile.moduleId.c_str())});
    }

    if (!report.anyLikely &&
        report.hottestCloses >= kHammerIntentCloses) {
        const VictimPrediction *best =
            report.victims.empty() ? nullptr : &report.victims.front();
        report.diags.push_back(
            {Code::DisturbanceImpossible,
             severityOf(Code::DisturbanceImpossible),
             best != nullptr ? best->anchorIndex : 0,
             format("hammer-grade program (%llu closes on the hottest "
                    "row) cannot flip bits on %s: best-case predicted "
                    "damage is %.3g of the flip threshold%s -- the "
                    "sweep is statically unreachable",
                    static_cast<unsigned long long>(report.hottestCloses),
                    cfg.profile.moduleId.c_str(),
                    best != nullptr ? best->optimisticDamage : 0.0,
                    fx.exact ? "" : " (lower bound: unbalanced loop)")});
    }

    return report;
}

} // namespace pud::lint
