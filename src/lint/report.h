/**
 * @file
 * Rendering of lint results: a column-aligned human table (the CLI
 * default) and a stable JSON document (`--json`) for tooling.
 */

#ifndef PUD_LINT_REPORT_H
#define PUD_LINT_REPORT_H

#include <cstdio>

#include "bender/program.h"
#include "lint/diag.h"

namespace pud::lint {

/** Print a human-readable diagnostic table plus a summary line. */
void printReport(const LintResult &result, const bender::Program &program,
                 std::FILE *out = stdout);

/**
 * Print the result as one JSON object:
 * {"duration_ps":..., "errors":N, "warnings":N, "notes":N,
 *  "diagnostics":[{"code":..., "severity":..., "inst":...,
 *                  "op":..., "message":...}, ...]}
 */
void printJson(const LintResult &result, const bender::Program &program,
               std::FILE *out = stdout);

/**
 * Print the result as a SARIF 2.1.0 document (the static-analysis
 * interchange format GitHub code scanning ingests): one run with a
 * "pud-lint" tool driver, one reporting descriptor per code that
 * appears, and one result per diagnostic.  Instruction indices map to
 * 1-based "lines" of a synthetic bender:///program artifact.
 */
void printSarif(const LintResult &result, const bender::Program &program,
                std::FILE *out = stdout);

/** Short mnemonic of an instruction, e.g. "ACT b0 r123 @+13.75ns". */
std::string describeInst(const bender::Program &program, std::size_t index);

} // namespace pud::lint

#endif // PUD_LINT_REPORT_H
