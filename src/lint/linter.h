/**
 * @file
 * Static protocol and timing analyzer for bender test programs.
 *
 * lintProgram() walks a Program without executing it and reports every
 * condition that would make the run fatal (protocol violations, bad
 * data indices, unbalanced loops), silently wrong (a timing violation
 * that matches no PuD idiom and therefore corrupts a characterization
 * sweep), or slow (a hot loop that defeats the executor fast-path).
 *
 * PuDHammer's methodology is built on *deliberate* timing violations:
 * a PRE->ACT gap below tRP is exactly how CoMRA copies and an
 * ACT-PRE-ACT with both gaps grossly violated is exactly how SiMRA
 * opens a row group.  The analyzer therefore never treats a violated
 * nominal parameter as an error; instead it classifies each violation
 * against the device model's CoMRA/SiMRA windows and labels it
 * *intended* (Note) or *suspicious* (Warning).
 *
 * The walk mirrors the executor: loop bodies are traversed twice (the
 * second pass observes cross-iteration gaps at the back edge) with
 * diagnostics deduplicated per (code, instruction), and the exact
 * duration is computed arithmetically from the trip counts.
 */

#ifndef PUD_LINT_LINTER_H
#define PUD_LINT_LINTER_H

#include "bender/program.h"
#include "dram/config.h"
#include "lint/diag.h"
#include "lint/mitigation_absint.h"

namespace pud::lint {

struct EffectReport;  // effects.h

/** Optional analyses and rendering knobs of one lint pass. */
struct LintOptions
{
    /**
     * Run the static disturbance-effect predictor (absint + effects)
     * and merge its DisturbanceLikely / DisturbanceImpossible
     * diagnostics into the result.  Off by default: the predictor's
     * verdicts depend on the sweep's intent (a deliberately-below-
     * threshold bisection step is not a bug), so only callers that
     * know they want a full-budget program checked opt in.
     */
    bool effects = false;

    /**
     * Run the row-state dataflow pass (lint/dataflow.h) and merge its
     * Df* diagnostics into the result.  Off by default for the same
     * reason as `effects`: reading a never-written victim row is the
     * *point* of a characterization sweep, so the verdicts only help
     * callers checking a compute-style program.
     */
    bool dataflow = false;

    /**
     * Run the mitigation bypass certifier (lint/mitigation_absint.h)
     * against the mechanisms enabled here and merge its Mit*
     * diagnostics into the result.  Implies running the effect
     * predictor internally (the certifier annotates its victim list),
     * but Disturbance* diagnostics are still merged only under
     * `effects`.
     */
    MitigationSpec mitigations;

    /**
     * Keep at most this many diagnostics per code; the rest collapse
     * into one DiagFlood note ("and N more").  0 disables the cap.
     */
    std::size_t maxRepeatsPerCode = 8;
};

/** Statically analyze `program` against a device configuration. */
LintResult lintProgram(const bender::Program &program,
                       const dram::DeviceConfig &cfg);

/**
 * As above with explicit options.  When `report_out` is non-null the
 * effect predictor runs regardless of `opts.effects` and its full
 * per-victim report is stored there (diagnostics are merged only when
 * `opts.effects` is set).
 */
LintResult lintProgram(const bender::Program &program,
                       const dram::DeviceConfig &cfg,
                       const LintOptions &opts,
                       EffectReport *report_out = nullptr);

/**
 * Lint and fatal() on the first error-severity finding; returns the
 * result so callers can additionally surface warnings.  `context`
 * names the caller in the fatal message.
 */
LintResult requireClean(const bender::Program &program,
                        const dram::DeviceConfig &cfg,
                        const char *context,
                        const LintOptions &opts = {});

} // namespace pud::lint

#endif // PUD_LINT_LINTER_H
