/**
 * @file
 * Static protocol and timing analyzer for bender test programs.
 *
 * lintProgram() walks a Program without executing it and reports every
 * condition that would make the run fatal (protocol violations, bad
 * data indices, unbalanced loops), silently wrong (a timing violation
 * that matches no PuD idiom and therefore corrupts a characterization
 * sweep), or slow (a hot loop that defeats the executor fast-path).
 *
 * PuDHammer's methodology is built on *deliberate* timing violations:
 * a PRE->ACT gap below tRP is exactly how CoMRA copies and an
 * ACT-PRE-ACT with both gaps grossly violated is exactly how SiMRA
 * opens a row group.  The analyzer therefore never treats a violated
 * nominal parameter as an error; instead it classifies each violation
 * against the device model's CoMRA/SiMRA windows and labels it
 * *intended* (Note) or *suspicious* (Warning).
 *
 * The walk mirrors the executor: loop bodies are traversed twice (the
 * second pass observes cross-iteration gaps at the back edge) with
 * diagnostics deduplicated per (code, instruction), and the exact
 * duration is computed arithmetically from the trip counts.
 */

#ifndef PUD_LINT_LINTER_H
#define PUD_LINT_LINTER_H

#include "bender/program.h"
#include "dram/config.h"
#include "lint/diag.h"

namespace pud::lint {

/** Statically analyze `program` against a device configuration. */
LintResult lintProgram(const bender::Program &program,
                       const dram::DeviceConfig &cfg);

/**
 * Lint and fatal() on the first error-severity finding; returns the
 * result so callers can additionally surface warnings.  `context`
 * names the caller in the fatal message.
 */
LintResult requireClean(const bender::Program &program,
                        const dram::DeviceConfig &cfg,
                        const char *context);

} // namespace pud::lint

#endif // PUD_LINT_LINTER_H
