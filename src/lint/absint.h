/**
 * @file
 * Loop-summarizing abstract interpreter for bender programs.
 *
 * summarizeEffects() computes the *aggregate* effects of a program --
 * per-(bank, physical row) activation and close-event counts split by
 * technique class, total aggressor on-time, min/max inter-ACT spacing,
 * and the REF cadence -- without unrolling loops.  Each loop body is
 * walked at most twice (a warm-up pass plus one steady-state pass that
 * observes the back-edge gaps), and the remaining (k - 2) iterations
 * are replayed arithmetically: additive fields scale linearly with the
 * trip count, min/max fields are fixed points of the steady state, and
 * the time cursor jumps by (k - 2) * bodyDuration.  This is the same
 * closed-form-in-the-trip-count reasoning the executor fast-path uses,
 * so analysis cost is O(program size), independent of iteration
 * counts.
 *
 * Close events are classified against the device model's CoMRA/SiMRA
 * reopen windows (mirroring Device::act), which is what lets the
 * effect predictor (effects.h) fold the summary through the same
 * threshold model the device applies at execution time.
 */

#ifndef PUD_LINT_ABSINT_H
#define PUD_LINT_ABSINT_H

#include <cstdint>
#include <map>
#include <vector>

#include "bender/program.h"
#include "dram/config.h"
#include "dram/types.h"
#include "util/units.h"

namespace pud::lint {

/** Aggregate activity of one physical row over the whole program. */
struct RowActivity
{
    /** ACT commands opening this row (alone or in a SiMRA group). */
    std::uint64_t acts = 0;

    /** Close events per technique class (indexed by TechClass). */
    std::uint64_t closes[3] = {0, 0, 0};

    /** Summed aggressor on-time per technique class. */
    Time onTime[3] = {0, 0, 0};

    /** Summed CoMRA PRE->ACT copy delay over Comra-class closes. */
    Time comraDelaySum = 0;

    /** Summed SiMRA ACT->PRE / PRE->ACT gaps over Simra-class closes. */
    Time simraActToPreSum = 0;
    Time simraPreToActSum = 0;

    /** Largest SiMRA group this row was ever activated in (1: never). */
    int simraN = 1;

    /** Min/max spacing between consecutive ACTs to this row. */
    Time minInterAct = 0;
    Time maxInterAct = 0;

    /** First ACT instruction index, as a diagnostic anchor. */
    std::size_t firstActIndex = 0;

    // ---- worst-case per-close condition factors --------------------------
    // The damage gains are monotone in each timing parameter
    // (pressGain grows with on-time, comraDelayGain falls with delay,
    // simraTimingGain grows with both gaps), so the extremes below let
    // the mitigation pass (mitigation_absint) bound the damage of any
    // *single* close without assuming the per-class averages are
    // representative.

    /** Largest single-close aggressor on-time per technique class. */
    Time maxOnTime[3] = {0, 0, 0};

    /** Smallest CoMRA PRE->ACT copy delay (-1: no Comra close). */
    Time minComraDelay = -1;

    /** Largest SiMRA ACT->PRE / PRE->ACT gaps over Simra closes. */
    Time maxSimraActToPre = 0;
    Time maxSimraPreToAct = 0;

    // ---- REF-epoch close counts ------------------------------------------
    // Closes are also tracked per refresh epoch (the stretch between
    // consecutive REFs, including the partial epochs before the first
    // and after the last REF).  maxEpochCloses bounds how much a row
    // can hammer between two REFs anywhere in the program, which is
    // what a REF-driven mitigation (TRR) caps per-victim damage with.

    /** Closes per class in the current (still open) epoch. */
    std::uint64_t epochCloses[3] = {0, 0, 0};

    /** Max closes per class over any single refresh epoch. */
    std::uint64_t maxEpochCloses[3] = {0, 0, 0};

    std::uint64_t
    totalCloses() const
    {
        return closes[0] + closes[1] + closes[2];
    }
};

/** The symbolic summary of one program. */
struct ProgramEffects
{
    /** Exact duration, loop trip counts included (saturating). */
    Time duration = 0;

    /**
     * False when the program has an unbalanced loop: the tail was
     * analyzed once, so counts are a lower bound, not exact.
     */
    bool exact = true;

    std::uint64_t totalActs = 0;
    std::uint64_t totalRefs = 0;

    /**
     * Instructions visited by the analysis.  Bounded by the program
     * size (times two passes per loop nesting level), *independent of
     * trip counts* -- the regression handle for the no-unrolling
     * guarantee.
     */
    std::uint64_t steps = 0;

    /** Per-(bank, physical row) activity, keyed by rowKey(). */
    std::map<std::uint64_t, RowActivity> rows;

    // ---- REF cadence -----------------------------------------------------

    /** Worst gap between consecutive REFs (0 with fewer than 2 REFs). */
    Time maxRefGap = 0;

    /** Instruction index of the REF ending the worst gap. */
    std::size_t maxRefGapIndex = 0;

    /** Issue times of the first/last REF; -1 with no REF. */
    Time firstRefAt = -1;
    Time lastRefAt = -1;
};

/** Map key of one physical row within the summary. */
inline std::uint64_t
rowKey(dram::BankId bank, dram::RowId phys)
{
    return (static_cast<std::uint64_t>(bank) << 32) | phys;
}

/** Look up a row's activity; nullptr when the row was never touched. */
const RowActivity *findRow(const ProgramEffects &fx, dram::BankId bank,
                           dram::RowId phys);

// ---- TRR sampler trace ---------------------------------------------------

/**
 * Abstract TRR sampler window at one REF for one bank.
 *
 * The walked passes maintain the exact ring of the last
 * Device::kTrrWindow sampler pushes, so REFs reached by a walked pass
 * carry the exact window multiset (`exact`).  REFs accounted for by
 * the loop tail (or downstream of one) carry an over-approximation:
 * the window *rows* are a superset of any row the real window can
 * hold at that point (walked window plus every row the loop body
 * pushes), the counts are unreliable, and `multiplicity` says how
 * many tail REFs the point stands for.  `fillLo` is a lower bound on
 * the real fill in every case (pushes only accumulate).
 */
struct SamplerRefPoint
{
    std::size_t instIndex = 0;  //!< REF instruction index (anchor)
    dram::BankId bank = 0;
    std::uint64_t multiplicity = 1;
    std::size_t fillLo = 0;
    bool exact = true;
    std::map<dram::RowId, std::uint64_t> window;  //!< row -> pushes
};

/**
 * Pass cap on (REF, bank) sampler trace points.  Past this the trace
 * stops covering every REF and flips SamplerTrace::truncated, which
 * forces the mitigation pass to degrade its universally-quantified
 * Certain verdicts to Possible (never unsoundly Certain).
 */
constexpr std::size_t kMaxSamplerRefPoints = 4096;

/** Sampler occupancy trace of one program (all banks, all REFs). */
struct SamplerTrace
{
    /** Ring capacity (Device::kTrrWindow). */
    std::size_t window = 0;

    /** One point per (REF, bank), in program order. */
    std::vector<SamplerRefPoint> refs;

    /** Total sampler pushes per bank (saturating). */
    std::vector<std::uint64_t> pushes;

    /**
     * True when the pass cap on ref points was hit; the trace no
     * longer covers every REF and universally-quantified (Certain)
     * conclusions must degrade to Possible.
     */
    bool truncated = false;
};

/**
 * Compute the symbolic summary of `program` on a device config.  When
 * `trace` is non-null it is filled with the abstract TRR sampler
 * occupancy (slower; keyed to the same recordAct sites Device's
 * trrRecord uses).
 */
ProgramEffects summarizeEffects(const bender::Program &program,
                                const dram::DeviceConfig &cfg,
                                SamplerTrace *trace);
ProgramEffects summarizeEffects(const bender::Program &program,
                                const dram::DeviceConfig &cfg);

} // namespace pud::lint

#endif // PUD_LINT_ABSINT_H
