#include "lint/linter.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <limits>
#include <map>
#include <set>
#include <utility>

#include <iterator>

#include "bender/plan.h"
#include "dram/mapping.h"
#include "lint/absint.h"
#include "lint/dataflow.h"
#include "lint/effects.h"
#include "util/logging.h"

namespace pud::lint {

const char *
name(Code code)
{
    switch (code) {
      case Code::UnbalancedLoop:        return "unbalanced-loop";
      case Code::EmptyLoop:             return "empty-loop";
      case Code::ZeroTripLoop:          return "zero-trip-loop";
      case Code::FastPathEligible:      return "fast-path-eligible";
      case Code::FastPathIneligible:    return "fast-path-ineligible";
      case Code::BankOutOfRange:        return "bank-out-of-range";
      case Code::RowOutOfRange:         return "row-out-of-range";
      case Code::ActWhileOpen:          return "act-while-open";
      case Code::RdOnClosedBank:        return "rd-on-closed-bank";
      case Code::WrOnClosedBank:        return "wr-on-closed-bank";
      case Code::PreOnIdleBank:         return "pre-on-idle-bank";
      case Code::RefWithOpenBank:       return "ref-with-open-bank";
      case Code::NegativeGap:           return "negative-gap";
      case Code::OpenBankAtEnd:         return "open-bank-at-end";
      case Code::WrBadDataIndex:        return "wr-bad-data-index";
      case Code::WrWidthMismatch:       return "wr-width-mismatch";
      case Code::IntendedComra:         return "intended-comra";
      case Code::IntendedSimra:         return "intended-simra";
      case Code::SimraUnsupported:      return "simra-unsupported";
      case Code::SuspiciousPreToAct:    return "suspicious-pre-to-act";
      case Code::SuspiciousActToPre:    return "suspicious-act-to-pre";
      case Code::SuspiciousActToAct:    return "suspicious-act-to-act";
      case Code::ColumnBeforeTrcd:      return "column-before-trcd";
      case Code::RefRecoveryShort:      return "ref-recovery-short";
      case Code::RefreshWindowExceeded: return "refresh-window-exceeded";
      case Code::RefreshCadenceSparse:  return "refresh-cadence-sparse";
      case Code::DisturbanceLikely:     return "disturbance-likely";
      case Code::DisturbanceImpossible: return "disturbance-impossible";
      case Code::DfReadBeforeWrite:     return "df-read-before-write";
      case Code::DfReadUndefined:       return "df-read-undefined";
      case Code::DfDeadWrite:           return "df-dead-write";
      case Code::DfControlRowClobber:   return "df-control-row-clobber";
      case Code::DfAggressorAsData:     return "df-aggressor-as-data";
      case Code::DfGroupCrossesSubarray:
        return "df-group-crosses-subarray";
      case Code::DfGroupOverlap:        return "df-group-overlap";
      case Code::DfMajorityUninitInput:
        return "df-majority-uninit-input";
      case Code::DfMajorityTie:         return "df-majority-tie";
      case Code::MitBypassCertain:      return "mit-bypass-certain";
      case Code::MitBypassPossible:     return "mit-bypass-possible";
      case Code::MitMitigatedCertain:   return "mit-mitigated-certain";
      case Code::MitTrrSamplerStarved:
        return "mit-trr-sampler-starved";
      case Code::MitAboThresholdSkirted:
        return "mit-abo-threshold-skirted";
      case Code::DiagFlood:             return "diag-flood";
    }
    return "?";
}

const char *
name(Severity severity)
{
    switch (severity) {
      case Severity::Note:    return "note";
      case Severity::Warning: return "warning";
      case Severity::Error:   return "error";
    }
    return "?";
}

Severity
severityOf(Code code)
{
    switch (code) {
      case Code::UnbalancedLoop:
      case Code::BankOutOfRange:
      case Code::RowOutOfRange:
      case Code::ActWhileOpen:
      case Code::RdOnClosedBank:
      case Code::WrOnClosedBank:
      case Code::RefWithOpenBank:
      case Code::NegativeGap:
      case Code::WrBadDataIndex:
      case Code::WrWidthMismatch:
        return Severity::Error;

      case Code::EmptyLoop:
      case Code::ZeroTripLoop:
      case Code::PreOnIdleBank:
      case Code::OpenBankAtEnd:
      case Code::SimraUnsupported:
      case Code::SuspiciousPreToAct:
      case Code::SuspiciousActToPre:
      case Code::SuspiciousActToAct:
      case Code::ColumnBeforeTrcd:
      case Code::RefRecoveryShort:
      case Code::RefreshWindowExceeded:
      case Code::RefreshCadenceSparse:
      case Code::DisturbanceImpossible:
      // Dataflow findings are never errors: every flagged program
      // still runs; the verdicts explain what its rows will (not)
      // hold.
      case Code::DfReadUndefined:
      case Code::DfControlRowClobber:
      case Code::DfAggressorAsData:
      case Code::DfGroupCrossesSubarray:
      case Code::DfGroupOverlap:
      case Code::DfMajorityUninitInput:
      case Code::DfMajorityTie:
      // A certain or possible bypass is the finding the mitigation
      // pass exists to surface; a starved sampler or skirted ABO
      // threshold explains *how* the bypass is engineered.
      case Code::MitBypassCertain:
      case Code::MitBypassPossible:
      case Code::MitTrrSamplerStarved:
      case Code::MitAboThresholdSkirted:
        return Severity::Warning;

      case Code::FastPathEligible:
      case Code::FastPathIneligible:
      case Code::IntendedComra:
      case Code::IntendedSimra:
      case Code::DisturbanceLikely:
      case Code::DfReadBeforeWrite:
      case Code::DfDeadWrite:
      case Code::MitMitigatedCertain:
      case Code::DiagFlood:
        return Severity::Note;
    }
    return Severity::Error;
}

namespace {

using bender::Inst;
using bender::Op;
using bender::Program;

std::string
format(const char *fmt, ...)
{
    char buf[512];
    va_list args;
    va_start(args, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, args);
    va_end(args);
    return buf;
}

/** The analyzer's walk state and diagnostic sink. */
class Walker
{
  public:
    Walker(const Program &program, const dram::DeviceConfig &cfg,
           LintResult &out)
        : program_(program),
          cfg_(cfg),
          mapping_(cfg.profile.mapping),
          out_(out),
          banks_(cfg.banks)
    {}

    void
    run()
    {
        const auto &insts = program_.insts();
        walkRange(0, insts.size());
        finish();
        out_.duration = exactDuration(0, insts.size());
    }

  private:
    struct BankSt
    {
        enum class St { Idle, Open, Closed };

        St st = St::Idle;
        Time openedAt = 0;
        dram::RowId openPhys = 0;

        // The most recent close, pending classification against the
        // next ACT (mirrors Device::BankState::pending).
        bool pendingValid = false;
        Time pendingTOn = 0;
        Time pendingClosedAt = 0;
        dram::RowId pendingPhys = 0;
        std::size_t pendingPreIndex = 0;
    };

    template <typename... Args>
    void
    add(Code code, std::size_t inst, const char *fmt, Args... args)
    {
        if (!seen_.insert({static_cast<int>(code), inst}).second)
            return;
        out_.diags.push_back({code, severityOf(code), inst,
                              format(fmt, args...)});
    }

    /** Find the LoopEnd matching the LoopBegin at `begin` (or npos). */
    std::size_t
    matchEnd(std::size_t begin) const
    {
        const auto &insts = program_.insts();
        int depth = 0;
        for (std::size_t i = begin; i < insts.size(); ++i) {
            if (insts[i].op == Op::LoopBegin)
                ++depth;
            else if (insts[i].op == Op::LoopEnd && --depth == 0)
                return i;
        }
        return npos;
    }

    /** Exact duration of [begin, end) with real trip counts. */
    Time
    exactDuration(std::size_t begin, std::size_t end) const
    {
        const auto &insts = program_.insts();
        Time d = 0;
        std::size_t i = begin;
        while (i < end) {
            const Inst &inst = insts[i];
            if (inst.op == Op::LoopBegin) {
                std::size_t close = matchEnd(i);
                if (close == npos || close > end)
                    close = end;  // unbalanced: treat the tail as body
                const Time body = exactDuration(i + 1, close);
                if (body > 0 && inst.count >
                        static_cast<std::uint64_t>(
                            std::numeric_limits<Time>::max() / body))
                    return std::numeric_limits<Time>::max();
                d += static_cast<Time>(inst.count) * body;
                i = close + 1;
            } else {
                d += std::max<Time>(inst.gap, 0);
                ++i;
            }
        }
        return d;
    }

    void
    walkRange(std::size_t begin, std::size_t end)
    {
        const auto &insts = program_.insts();
        std::size_t i = begin;
        while (i < end) {
            const Inst &inst = insts[i];
            if (inst.op == Op::LoopBegin) {
                std::size_t close = matchEnd(i);
                if (close == npos || close > end) {
                    add(Code::UnbalancedLoop, i,
                        "LoopBegin (count %llu) has no matching "
                        "LoopEnd; the executor refuses to run "
                        "unbalanced programs",
                        static_cast<unsigned long long>(inst.count));
                    close = end;  // analyze the tail as the body, once
                    walkRange(i + 1, close);
                    return;
                }
                checkLoop(i, close, inst.count);
                // Two passes: the second observes back-edge gaps
                // (e.g. the PRE->ACT spacing across iterations).
                const int passes =
                    inst.count == 0 ? 1
                                    : static_cast<int>(
                                          std::min<std::uint64_t>(
                                              inst.count, 2));
                for (int p = 0; p < passes; ++p)
                    walkRange(i + 1, close);
                i = close + 1;
            } else if (inst.op == Op::LoopEnd) {
                // Builder-made programs cannot produce a stray
                // LoopEnd (Program::loopEnd fatals); be defensive.
                ++i;
            } else {
                step(i);
                ++i;
            }
        }
    }

    void
    checkLoop(std::size_t begin, std::size_t close, std::uint64_t count)
    {
        const auto &insts = program_.insts();
        if (close == begin + 1)
            add(Code::EmptyLoop, begin,
                "loop body is empty; %llu iterations do nothing",
                static_cast<unsigned long long>(count));
        if (count == 0)
            add(Code::ZeroTripLoop, begin,
                "trip count is 0: the body never executes (forgot "
                "Program::setLoopCount?)");

        if (count < bender::kFastPathThreshold)
            return;

        // Fast-path eligibility, via the executor's own classifier
        // (bender/plan.h) so lint verdicts cannot drift from runtime.
        switch (bender::classifyBody(insts, begin + 1, close)) {
          case bender::BodyClass::Simple:
            add(Code::FastPathEligible, begin,
                "hot loop (%llu iterations) is fast-path eligible: "
                "the executor replays one recorded iteration "
                "arithmetically",
                static_cast<unsigned long long>(count));
            break;
          case bender::BodyClass::Recorded:
            add(Code::FastPathEligible, begin,
                "hot loop (%llu iterations) is fast-path eligible: "
                "REF/TRR effects and nested loops replay by "
                "closed-form per-iteration deltas from one recorded "
                "iteration",
                static_cast<unsigned long long>(count));
            break;
          case bender::BodyClass::Naive:
            add(Code::FastPathIneligible, begin,
                "hot loop (%llu iterations) runs naively: body "
                "contains RD (results are collected per iteration)",
                static_cast<unsigned long long>(count));
            break;
        }
    }

    /** Flush a bank's pending close without a consuming ACT. */
    void
    dropPending(BankSt &bank)
    {
        if (!bank.pendingValid)
            return;
        bank.pendingValid = false;
        if (bank.pendingTOn < cfg_.timings.tRAS) {
            add(Code::SuspiciousActToPre, bank.pendingPreIndex,
                "row held open only %.2f ns, violating nominal tRAS "
                "(%.2f ns) with no SiMRA-completing ACT following: "
                "the row is left with a partial charge restore",
                units::toNs(bank.pendingTOn),
                units::toNs(cfg_.timings.tRAS));
        }
    }

    /**
     * Classify the PRE->ACT transition on one bank: intended CoMRA,
     * intended SiMRA, or a suspicious timing violation (paper §4.1,
     * §5.1; windows from the device model).
     */
    void
    classifyReopen(BankSt &bank, std::size_t act_index,
                   dram::RowId act_phys)
    {
        const dram::TimingParams &t = cfg_.timings;
        const Time t_on = bank.pendingTOn;
        const Time gap = cursor_ - bank.pendingClosedAt;
        const bool same_subarray =
            bank.pendingPhys / cfg_.rowsPerSubarray ==
            act_phys / cfg_.rowsPerSubarray;
        bank.pendingValid = false;

        if (t_on <= t.simraMaxActToPre && gap <= t.simraMaxPreToAct) {
            if (!same_subarray) {
                add(Code::SuspiciousActToPre, bank.pendingPreIndex,
                    "ACT-PRE-ACT with SiMRA-grade violations "
                    "(t_AggOn %.2f ns, PRE->ACT %.2f ns) but the two "
                    "rows are in different subarrays: no group "
                    "activates",
                    units::toNs(t_on), units::toNs(gap));
                return;
            }
            if (!cfg_.profile.supportsSimra) {
                add(Code::SimraUnsupported, act_index,
                    "ACT-PRE-ACT matches the SiMRA signature, but "
                    "module %s ignores grossly violating commands "
                    "(no SiMRA support): the quick PRE and this ACT "
                    "have no effect",
                    cfg_.profile.moduleId.c_str());
                return;
            }
            add(Code::IntendedSimra, act_index,
                "ACT-PRE-ACT with t_AggOn %.2f ns (<= %.2f ns) and "
                "PRE->ACT %.2f ns (<= %.2f ns): intended SiMRA "
                "multi-row activation",
                units::toNs(t_on), units::toNs(t.simraMaxActToPre),
                units::toNs(gap), units::toNs(t.simraMaxPreToAct));
            return;
        }

        if (t_on >= t.tRAS - units::ns && gap <= t.comraMaxPreToAct &&
            bank.pendingPhys != act_phys) {
            if (!same_subarray) {
                add(Code::SuspiciousPreToAct, act_index,
                    "PRE->ACT gap %.2f ns is in the CoMRA window "
                    "(<= %.2f ns) but source and destination are in "
                    "different subarrays: no copy occurs, only an "
                    "accidental tRP violation",
                    units::toNs(gap),
                    units::toNs(t.comraMaxPreToAct));
                return;
            }
            add(Code::IntendedComra, act_index,
                "full tRAS restore then PRE->ACT %.2f ns (nominal "
                "tRP %.2f ns, CoMRA window <= %.2f ns): intended "
                "in-DRAM RowClone copy",
                units::toNs(gap), units::toNs(t.tRP),
                units::toNs(t.comraMaxPreToAct));
            return;
        }

        bool flagged = false;
        if (t_on < t.tRAS) {
            add(Code::SuspiciousActToPre, bank.pendingPreIndex,
                "ACT->PRE gap %.2f ns violates nominal tRAS "
                "(%.2f ns) but matches no PuD idiom (SiMRA needs "
                "<= %.2f ns followed by an ACT within %.2f ns)",
                units::toNs(t_on), units::toNs(t.tRAS),
                units::toNs(t.simraMaxActToPre),
                units::toNs(t.simraMaxPreToAct));
            flagged = true;
        }
        if (gap < t.tRP) {
            add(Code::SuspiciousPreToAct, act_index,
                "PRE->ACT gap %.2f ns violates nominal tRP (%.2f ns) "
                "but matches no PuD idiom (CoMRA needs <= %.2f ns "
                "after a full tRAS restore, same subarray)",
                units::toNs(gap), units::toNs(t.tRP),
                units::toNs(t.comraMaxPreToAct));
            flagged = true;
        }
        if (!flagged && t_on + gap < t.tRC) {
            add(Code::SuspiciousActToAct, act_index,
                "ACT->ACT spacing %.2f ns violates nominal tRC "
                "(%.2f ns)",
                units::toNs(t_on + gap), units::toNs(t.tRC));
        }
    }

    void
    closeBank(BankSt &bank, std::size_t pre_index)
    {
        dropPending(bank);
        bank.pendingValid = true;
        bank.pendingTOn = cursor_ - bank.openedAt;
        bank.pendingClosedAt = cursor_;
        bank.pendingPhys = bank.openPhys;
        bank.pendingPreIndex = pre_index;
        bank.st = BankSt::St::Closed;
    }

    void
    checkColumnTiming(const BankSt &bank, std::size_t i, const char *op)
    {
        if (cursor_ - bank.openedAt < cfg_.timings.tRCD) {
            add(Code::ColumnBeforeTrcd, i,
                "%s %.2f ns after ACT violates nominal tRCD "
                "(%.2f ns): the row is not yet sensed",
                op, units::toNs(cursor_ - bank.openedAt),
                units::toNs(cfg_.timings.tRCD));
        }
    }

    void
    checkRefRecovery(std::size_t i)
    {
        if (!afterRef_)
            return;
        afterRef_ = false;
        if (cursor_ - lastRefAt_ < cfg_.timings.tRFC) {
            add(Code::RefRecoveryShort, i,
                "command issued %.2f ns after REF violates nominal "
                "tRFC (%.2f ns)",
                units::toNs(cursor_ - lastRefAt_),
                units::toNs(cfg_.timings.tRFC));
        }
    }

    void
    step(std::size_t i)
    {
        const Inst &inst = program_.insts()[i];
        if (inst.gap < 0) {
            add(Code::NegativeGap, i,
                "gap %lld ps is negative: command time would go "
                "backwards",
                static_cast<long long>(inst.gap));
        }
        cursor_ += std::max<Time>(inst.gap, 0);
        if (inst.op == Op::Nop)
            return;
        checkRefRecovery(i);

        const bool banked = inst.op == Op::Act || inst.op == Op::Pre ||
                            inst.op == Op::Rd || inst.op == Op::Wr;
        if (banked && inst.bank >= cfg_.banks) {
            add(Code::BankOutOfRange, i,
                "command targets bank %u (device has %u banks)",
                inst.bank, cfg_.banks);
            return;
        }

        switch (inst.op) {
          case Op::Act: {
            if (inst.row >= cfg_.rowsPerBank()) {
                add(Code::RowOutOfRange, i,
                    "ACT targets row %u (bank has %u rows)", inst.row,
                    cfg_.rowsPerBank());
                return;
            }
            BankSt &bank = banks_[inst.bank];
            const dram::RowId phys = mapping_.toPhysical(inst.row);
            if (bank.st == BankSt::St::Open) {
                add(Code::ActWhileOpen, i,
                    "ACT to bank %u while row %u is open (missing "
                    "PRE): the device fatals here",
                    inst.bank, bank.openPhys);
            } else if (bank.pendingValid) {
                classifyReopen(bank, i, phys);
            }
            bank.st = BankSt::St::Open;
            bank.openedAt = cursor_;
            bank.openPhys = phys;
            bank.pendingValid = false;
            break;
          }
          case Op::Pre: {
            BankSt &bank = banks_[inst.bank];
            if (bank.st == BankSt::St::Open)
                closeBank(bank, i);
            else
                add(Code::PreOnIdleBank, i,
                    "PRE on bank %u with no open row is a no-op "
                    "(duplicate PRE or wrong bank?)",
                    inst.bank);
            break;
          }
          case Op::PreAll: {
            for (BankSt &bank : banks_)
                if (bank.st == BankSt::St::Open)
                    closeBank(bank, i);
            break;
          }
          case Op::Rd: {
            BankSt &bank = banks_[inst.bank];
            if (bank.st != BankSt::St::Open)
                add(Code::RdOnClosedBank, i,
                    "RD on bank %u with no open row: the device "
                    "fatals here",
                    inst.bank);
            else
                checkColumnTiming(bank, i, "RD");
            break;
          }
          case Op::Wr: {
            BankSt &bank = banks_[inst.bank];
            if (bank.st != BankSt::St::Open)
                add(Code::WrOnClosedBank, i,
                    "WR on bank %u with no open row: the device "
                    "fatals here",
                    inst.bank);
            else
                checkColumnTiming(bank, i, "WR");
            const auto &table = program_.dataTable();
            if (inst.dataIndex < 0 ||
                inst.dataIndex >= static_cast<int>(table.size())) {
                add(Code::WrBadDataIndex, i,
                    "WR data index %d is outside the program data "
                    "table (%zu entries)",
                    inst.dataIndex, table.size());
            } else if (table[static_cast<std::size_t>(inst.dataIndex)]
                           .bits() != cfg_.cols) {
                add(Code::WrWidthMismatch, i,
                    "WR data entry %d is %u bits wide, device rows "
                    "are %u bits",
                    inst.dataIndex,
                    table[static_cast<std::size_t>(inst.dataIndex)]
                        .bits(),
                    cfg_.cols);
            }
            break;
          }
          case Op::Ref: {
            for (dram::BankId b = 0; b < cfg_.banks; ++b) {
                BankSt &bank = banks_[b];
                if (bank.st == BankSt::St::Open)
                    add(Code::RefWithOpenBank, i,
                        "REF issued while bank %u has an open row: "
                        "the device fatals here",
                        b);
                dropPending(bank);
            }
            lastRefAt_ = cursor_;
            afterRef_ = true;
            break;
          }
          case Op::Nop:
          case Op::LoopBegin:
          case Op::LoopEnd:
            break;
        }
    }

    void
    finish()
    {
        const std::size_t last =
            program_.insts().empty() ? 0 : program_.insts().size() - 1;
        for (dram::BankId b = 0; b < cfg_.banks; ++b) {
            BankSt &bank = banks_[b];
            if (bank.st == BankSt::St::Open)
                add(Code::OpenBankAtEnd, last,
                    "program ends with a row open on bank %u: the "
                    "next program's ACT to this bank will fatal",
                    b);
            dropPending(bank);
        }
    }

    static constexpr std::size_t npos = static_cast<std::size_t>(-1);

    const Program &program_;
    const dram::DeviceConfig &cfg_;
    dram::RowMapping mapping_;
    LintResult &out_;
    std::vector<BankSt> banks_;
    std::set<std::pair<int, std::size_t>> seen_;
    Time cursor_ = 0;
    Time lastRefAt_ = 0;
    bool afterRef_ = false;
};

/**
 * Refresh-cadence analysis over the loop summary (the Walker cannot
 * see replayed iterations, so REF density comes from absint).  A
 * program shorter than tREFW needs no REF at all; past tREFW, zero
 * REFs is the classic retention hazard, and REFs that *are* present
 * but clustered leave some refresh stripes unserved: the nominal
 * schedule spreads 8192 REFs evenly over the window, so any
 * unrefreshed span above ~1.25x tREFW / 8192-per-gap means some rows
 * go longer than their retention budget.
 */
void
checkRefreshCadence(const ProgramEffects &fx, const bender::Program &program,
                    const dram::DeviceConfig &cfg, LintResult &result)
{
    const dram::TimingParams &t = cfg.timings;
    if (fx.duration <= t.tREFW)
        return;
    if (fx.totalRefs == 0) {
        result.diags.push_back(
            {Code::RefreshWindowExceeded,
             severityOf(Code::RefreshWindowExceeded), 0,
             format("program runs %.1f ms, beyond the %.0f ms refresh "
                    "window, without a single REF: retention failures "
                    "will pollute bitflip counts",
                    static_cast<double>(fx.duration) / units::ms,
                    static_cast<double>(t.tREFW) / units::ms)});
        return;
    }

    // Worst unrefreshed span: the largest interior REF-to-REF gap or
    // the trailing run from the last REF to the program end.
    Time worst = fx.maxRefGap;
    std::size_t anchor = fx.maxRefGapIndex;
    const Time trailing = fx.duration - fx.lastRefAt;
    if (trailing > worst) {
        worst = trailing;
        anchor = program.insts().empty() ? 0 : program.insts().size() - 1;
    }

    const double nominal_gap =
        static_cast<double>(t.tREFW) / t.refsPerWindow;
    // 25% slack: canonical patterns pace REFs at tREFI, which already
    // sits just under the nominal budget.
    if (static_cast<double>(worst) <= nominal_gap * 1.25)
        return;
    result.diags.push_back(
        {Code::RefreshCadenceSparse,
         severityOf(Code::RefreshCadenceSparse), anchor,
         format("program runs %.1f ms with %llu REFs, but the worst "
                "unrefreshed span is %.2f us -- %.1fx the nominal "
                "%.2f us cadence (%u REFs per %.0f ms window): rows "
                "whose refresh stripe lands in the gap risk retention "
                "failures",
                static_cast<double>(fx.duration) / units::ms,
                static_cast<unsigned long long>(fx.totalRefs),
                units::toUs(worst),
                static_cast<double>(worst) / nominal_gap,
                nominal_gap / units::us, t.refsPerWindow,
                static_cast<double>(t.tREFW) / units::ms)});
}

/**
 * Collapse diagnostic floods: keep the first `cap` sites per code and
 * fold the rest into one DiagFlood note per capped code.
 */
void
capDiagFloods(LintResult &result, std::size_t cap)
{
    if (cap == 0)
        return;
    std::map<Code, std::size_t> kept;
    std::map<Code, std::size_t> lastKeptAt;
    std::map<Code, std::size_t> flooded;
    std::vector<Diag> out;
    out.reserve(result.diags.size());
    for (Diag &d : result.diags) {
        if (++kept[d.code] <= cap) {
            lastKeptAt[d.code] = d.instIndex;
            out.push_back(std::move(d));
        } else {
            ++flooded[d.code];
            ++result.suppressed;
            ++result.suppressedBySeverity[
                static_cast<std::size_t>(d.severity)];
        }
    }
    for (const auto &[code, n] : flooded) {
        out.push_back(
            {Code::DiagFlood, severityOf(Code::DiagFlood),
             lastKeptAt[code],
             format("and %zu more '%s' diagnostic(s) suppressed "
                    "(first %zu sites shown)",
                    n, name(code), cap)});
    }
    result.diags = std::move(out);
}

} // namespace

LintResult
lintProgram(const bender::Program &program, const dram::DeviceConfig &cfg)
{
    return lintProgram(program, cfg, LintOptions{});
}

LintResult
lintProgram(const bender::Program &program, const dram::DeviceConfig &cfg,
            const LintOptions &opts, EffectReport *report_out)
{
    LintResult result;
    Walker(program, cfg, result).run();

    // The sampler trace is only needed by the TRR abstract
    // transformer and costs extra ring bookkeeping, so collect it
    // only when that mitigation is under analysis.
    SamplerTrace trace;
    const bool want_trace = opts.mitigations.any() && opts.mitigations.trr;
    const ProgramEffects fx =
        want_trace ? summarizeEffects(program, cfg, &trace)
                   : summarizeEffects(program, cfg);
    checkRefreshCadence(fx, program, cfg, result);

    if (opts.dataflow) {
        DataflowResult df = analyzeDataflow(program, cfg, &fx);
        result.diags.insert(result.diags.end(),
                            std::make_move_iterator(df.diags.begin()),
                            std::make_move_iterator(df.diags.end()));
    }

    if (opts.effects || opts.mitigations.any() ||
        report_out != nullptr) {
        EffectReport report = predictEffects(fx, cfg);
        if (opts.effects)
            result.diags.insert(result.diags.end(),
                                report.diags.begin(), report.diags.end());
        if (opts.mitigations.any()) {
            std::vector<Diag> mit = analyzeMitigations(
                cfg, opts.mitigations, fx,
                want_trace ? &trace : nullptr, report);
            result.diags.insert(result.diags.end(),
                                std::make_move_iterator(mit.begin()),
                                std::make_move_iterator(mit.end()));
        }
        if (report_out != nullptr)
            *report_out = std::move(report);
    }

    std::stable_sort(result.diags.begin(), result.diags.end(),
                     [](const Diag &a, const Diag &b) {
                         return a.instIndex < b.instIndex;
                     });
    capDiagFloods(result, opts.maxRepeatsPerCode);
    return result;
}

LintResult
requireClean(const bender::Program &program,
             const dram::DeviceConfig &cfg, const char *context,
             const LintOptions &opts)
{
    LintResult result = lintProgram(program, cfg, opts);
    for (const Diag &d : result.diags) {
        if (d.severity == Severity::Error) {
            fatal("%s: pre-flight lint failed: [%s] %s "
                  "(instruction %zu; %zu error(s) total)",
                  context, name(d.code), d.message.c_str(),
                  d.instIndex, result.count(Severity::Error));
        }
    }
    return result;
}

} // namespace pud::lint
