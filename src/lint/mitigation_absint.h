/**
 * @file
 * Abstract mitigation transformers over the loop summary: the bypass
 * certifier.
 *
 * analyzeMitigations() layers abstract models of the four mitigation
 * mechanisms (sampling TRR, PRAC, PARA, Graphene) on top of a
 * program's ProgramEffects summary (absint.h) and the effect
 * predictor's victim list (effects.h), and certifies -- per victim,
 * without unrolling loops -- one of three outcomes:
 *
 *  - MitVerdict::BypassCertain: no enabled mitigation can ever
 *    refresh a row in the victim's distance-2 neighbourhood, so the
 *    victim's bit trajectory is *identical* to the unmitigated run
 *    (any mitigation-triggered refresh of rows v-2..v+2 perturbs the
 *    aggressors' lastSide/charge state and would change the
 *    trajectory, which is why the bit-identity rule requires every
 *    possible trigger row at row-index distance >= 4: its +-1 refresh
 *    targets then stay at distance >= 3).
 *  - MitVerdict::MitigatedCertain: some enabled mitigation provably
 *    refreshes the victim often enough that its accumulated damage
 *    stays below the flip threshold at *every instant* (refreshRow
 *    materializes flips, so a transient crossing would persist; the
 *    proofs bound the worst-case damage between consecutive
 *    guaranteed victim refreshes using per-close damage maxima built
 *    from the summary's per-row timing extremes).
 *  - MitVerdict::BypassPossible: the sound refusal -- neither
 *    direction provable (always the result when the summary is
 *    inexact or the sampler trace was truncated at the pass cap).
 *
 * Every abstract transformer shares its arithmetic with the concrete
 * mitigation models through pud::mitigation's pure-function core
 * (mitsem.h), so the certificate and the executed mitigation cannot
 * drift; src/check/diffcheck validates exactly that, differentially,
 * over randomized programs.
 *
 * Soundness in loop trip counts is inherited from absint.h: all the
 * facts consumed here (close totals, per-epoch maxima, timing
 * extremes, the sampler trace) are closed forms in the trip counts,
 * so a loop of 10^9 iterations costs the same as one of 3 and Certain
 * verdicts quantify over the *real* iteration count.
 */

#ifndef PUD_LINT_MITIGATION_ABSINT_H
#define PUD_LINT_MITIGATION_ABSINT_H

#include <vector>

#include "dram/config.h"
#include "lint/absint.h"
#include "lint/diag.h"
#include "lint/effects.h"
#include "mitigation/mitsem.h"

namespace pud::lint {

/** Which mitigations the certifier assumes enabled, and their knobs. */
struct MitigationSpec
{
    bool trr = false;       //!< device sampling TRR (Device native)
    bool prac = false;      //!< per-row activation counting + ABO
    bool para = false;      //!< probabilistic adjacent-row activation
    bool graphene = false;  //!< Misra-Gries frequent-aggressor table

    mitigation::PracConfig pracConfig;
    mitigation::ParaConfig paraConfig;
    mitigation::GrapheneConfig grapheneConfig;

    bool any() const { return trr || prac || para || graphene; }
};

/**
 * Run the abstract mitigation transformers over a program summary.
 *
 * Annotates every victim in `report` with a combined MitVerdict
 * (MitigatedCertain if *any* enabled mitigation certainly prevents
 * flips; BypassCertain iff *all* enabled mitigations are certainly
 * inert near the victim; BypassPossible otherwise) and the static
 * bypass-HC_first lower bound, and returns the Mit* diagnostics to
 * merge into the lint result.
 *
 * `trace` is the TRR sampler trace from summarizeEffects(); required
 * (non-null) when spec.trr is set -- without it every TRR judgement
 * degrades to Possible.  Passing a spec with any() == false is a
 * no-op.
 */
std::vector<Diag> analyzeMitigations(const dram::DeviceConfig &cfg,
                                     const MitigationSpec &spec,
                                     const ProgramEffects &fx,
                                     const SamplerTrace *trace,
                                     EffectReport &report);

} // namespace pud::lint

#endif // PUD_LINT_MITIGATION_ABSINT_H
