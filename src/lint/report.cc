#include "lint/report.h"

#include <cinttypes>
#include <string>

#include "util/table.h"

namespace pud::lint {

namespace {

using bender::Op;

const char *
opName(Op op)
{
    switch (op) {
      case Op::Act:       return "ACT";
      case Op::Pre:       return "PRE";
      case Op::PreAll:    return "PREA";
      case Op::Rd:        return "RD";
      case Op::Wr:        return "WR";
      case Op::Ref:       return "REF";
      case Op::Nop:       return "NOP";
      case Op::LoopBegin: return "LOOP";
      case Op::LoopEnd:   return "ENDL";
    }
    return "?";
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (char c : s) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

std::string
describeInst(const bender::Program &program, std::size_t index)
{
    if (index >= program.insts().size())
        return "<end>";
    const bender::Inst &inst = program.insts()[index];
    char buf[96];
    switch (inst.op) {
      case Op::Act:
        std::snprintf(buf, sizeof(buf), "ACT b%u r%u @+%.2fns", inst.bank,
                      inst.row, units::toNs(inst.gap));
        break;
      case Op::Pre:
      case Op::Rd:
        std::snprintf(buf, sizeof(buf), "%s b%u @+%.2fns", opName(inst.op),
                      inst.bank, units::toNs(inst.gap));
        break;
      case Op::Wr:
        std::snprintf(buf, sizeof(buf), "WR b%u d%d @+%.2fns", inst.bank,
                      inst.dataIndex, units::toNs(inst.gap));
        break;
      case Op::LoopBegin:
        std::snprintf(buf, sizeof(buf), "LOOP x%" PRIu64, inst.count);
        break;
      case Op::LoopEnd:
        std::snprintf(buf, sizeof(buf), "ENDL");
        break;
      default:
        std::snprintf(buf, sizeof(buf), "%s @+%.2fns", opName(inst.op),
                      units::toNs(inst.gap));
        break;
    }
    return buf;
}

void
printReport(const LintResult &result, const bender::Program &program,
            std::FILE *out)
{
    if (!result.diags.empty()) {
        Table table({"#", "severity", "code", "instruction", "message"});
        for (const Diag &d : result.diags) {
            table.addRow({Table::count(static_cast<long long>(d.instIndex)),
                          name(d.severity), name(d.code),
                          describeInst(program, d.instIndex), d.message});
        }
        table.print(out);
        std::fprintf(out, "\n");
    }
    // Totals include flood-suppressed repeats: the cap trims the
    // listing, never the verdict.
    std::fprintf(out,
                 "%zu instruction(s), duration %.3f us: "
                 "%zu error(s), %zu warning(s), %zu note(s)",
                 program.insts().size(), units::toUs(result.duration),
                 result.totalCount(Severity::Error),
                 result.totalCount(Severity::Warning),
                 result.totalCount(Severity::Note));
    if (result.suppressed > 0)
        std::fprintf(out, " (%zu suppressed by the flood cap)",
                     result.suppressed);
    std::fprintf(out, "\n");
}

void
printJson(const LintResult &result, const bender::Program &program,
          std::FILE *out)
{
    std::fprintf(out,
                 "{\"instructions\":%zu,\"duration_ps\":%" PRId64
                 ",\"errors\":%zu,\"warnings\":%zu,\"notes\":%zu,"
                 "\"suppressed\":{\"total\":%zu,\"errors\":%zu,"
                 "\"warnings\":%zu,\"notes\":%zu},"
                 "\"diagnostics\":[",
                 program.insts().size(), result.duration,
                 result.totalCount(Severity::Error),
                 result.totalCount(Severity::Warning),
                 result.totalCount(Severity::Note), result.suppressed,
                 result.suppressedBySeverity[static_cast<std::size_t>(
                     Severity::Error)],
                 result.suppressedBySeverity[static_cast<std::size_t>(
                     Severity::Warning)],
                 result.suppressedBySeverity[static_cast<std::size_t>(
                     Severity::Note)]);
    for (std::size_t i = 0; i < result.diags.size(); ++i) {
        const Diag &d = result.diags[i];
        std::fprintf(out,
                     "%s{\"code\":\"%s\",\"severity\":\"%s\","
                     "\"inst\":%zu,\"op\":\"%s\",\"message\":\"%s\"}",
                     i ? "," : "", name(d.code), name(d.severity),
                     d.instIndex,
                     jsonEscape(describeInst(program, d.instIndex)).c_str(),
                     jsonEscape(d.message).c_str());
    }
    std::fprintf(out, "]}\n");
}

void
printSarif(const LintResult &result, const bender::Program &program,
           std::FILE *out)
{
    // SARIF "level" vocabulary: error / warning / note.
    const auto level = [](Severity s) {
        switch (s) {
          case Severity::Error:   return "error";
          case Severity::Warning: return "warning";
          case Severity::Note:    return "note";
        }
        return "none";
    };

    // One reporting descriptor per code that appears, in first-use
    // order; results reference them by index.
    std::vector<Code> rules;
    const auto ruleIndex = [&rules](Code code) {
        for (std::size_t i = 0; i < rules.size(); ++i)
            if (rules[i] == code)
                return i;
        rules.push_back(code);
        return rules.size() - 1;
    };
    std::vector<std::size_t> indices;
    indices.reserve(result.diags.size());
    for (const Diag &d : result.diags)
        indices.push_back(ruleIndex(d.code));

    std::fprintf(out,
                 "{\"$schema\":\"https://raw.githubusercontent.com/"
                 "oasis-tcs/sarif-spec/master/Schemata/"
                 "sarif-schema-2.1.0.json\","
                 "\"version\":\"2.1.0\",\"runs\":[{"
                 "\"tool\":{\"driver\":{\"name\":\"pud-lint\","
                 "\"informationUri\":"
                 "\"https://github.com/pudhammer/pudhammer\","
                 "\"rules\":[");
    for (std::size_t i = 0; i < rules.size(); ++i) {
        std::fprintf(out,
                     "%s{\"id\":\"%s\",\"shortDescription\":"
                     "{\"text\":\"%s\"},\"defaultConfiguration\":"
                     "{\"level\":\"%s\"}}",
                     i ? "," : "", name(rules[i]), name(rules[i]),
                     level(severityOf(rules[i])));
    }
    std::fprintf(out, "]}},\"results\":[");
    for (std::size_t i = 0; i < result.diags.size(); ++i) {
        const Diag &d = result.diags[i];
        std::fprintf(
            out,
            "%s{\"ruleId\":\"%s\",\"ruleIndex\":%zu,"
            "\"level\":\"%s\",\"message\":{\"text\":\"%s\"},"
            "\"locations\":[{\"physicalLocation\":"
            "{\"artifactLocation\":{\"uri\":\"bender:///program\"},"
            "\"region\":{\"startLine\":%zu}}}],"
            "\"properties\":{\"instruction\":\"%s\"}}",
            i ? "," : "", name(d.code), indices[i],
            level(d.severity), jsonEscape(d.message).c_str(),
            d.instIndex + 1,
            jsonEscape(describeInst(program, d.instIndex)).c_str());
    }
    // Run-level summary: flood-suppressed repeats are invisible in
    // `results` but must stay visible to policy gates reading the run.
    std::fprintf(out,
                 "],\"properties\":{\"totalErrors\":%zu,"
                 "\"totalWarnings\":%zu,\"totalNotes\":%zu,"
                 "\"suppressedByFloodCap\":%zu,"
                 "\"suppressedErrors\":%zu,\"suppressedWarnings\":%zu,"
                 "\"suppressedNotes\":%zu}}]}\n",
                 result.totalCount(Severity::Error),
                 result.totalCount(Severity::Warning),
                 result.totalCount(Severity::Note), result.suppressed,
                 result.suppressedBySeverity[static_cast<std::size_t>(
                     Severity::Error)],
                 result.suppressedBySeverity[static_cast<std::size_t>(
                     Severity::Warning)],
                 result.suppressedBySeverity[static_cast<std::size_t>(
                     Severity::Note)]);
}

} // namespace pud::lint
