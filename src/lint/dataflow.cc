#include "lint/dataflow.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <limits>
#include <set>
#include <string>
#include <utility>

#include "dram/mapping.h"
#include "lint/effects.h"
#include "pud/semantics.h"

namespace pud::lint {

const char *
name(RowStateKind kind)
{
    switch (kind) {
      case RowStateKind::Initial:      return "initial";
      case RowStateKind::Written:      return "written";
      case RowStateKind::CopyOf:       return "copy-of";
      case RowStateKind::MajorityOf:   return "majority-of";
      case RowStateKind::ChargeShared: return "charge-shared";
      case RowStateKind::Clobbered:    return "clobbered";
      case RowStateKind::Unknown:      return "unknown";
    }
    return "?";
}

namespace {

using bender::Inst;
using bender::Op;
using bender::Program;
using dram::BankId;
using dram::RowId;

constexpr Time kMaxTime = std::numeric_limits<Time>::max();

Time
satAddT(Time a, Time b)
{
    if (b > 0 && a > kMaxTime - b)
        return kMaxTime;
    return a + b;
}

Time
satMulT(Time a, std::uint64_t n)
{
    if (a <= 0 || n == 0)
        return 0;
    if (static_cast<std::uint64_t>(a) >
        static_cast<std::uint64_t>(kMaxTime) / n)
        return kMaxTime;
    return a * static_cast<Time>(n);
}

std::string
format(const char *fmt, ...)
{
    char buf[512];
    va_list args;
    va_start(args, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, args);
    va_end(args);
    return buf;
}

bool
stateEq(const RowState &a, const RowState &b)
{
    return a.sameValue(b) && a.consumed == b.consumed &&
           a.defIndex == b.defIndex;
}

/** Strict value order for merge-input canonicalization. */
bool
valueLess(const RowState &a, const RowState &b)
{
    if (a.kind != b.kind)
        return a.kind < b.kind;
    if (a.dataIndex != b.dataIndex)
        return a.dataIndex < b.dataIndex;
    if (a.srcKey != b.srcKey)
        return a.srcKey < b.srcKey;
    return a.mergeId < b.mergeId;
}

/**
 * The dataflow walk: the absint bank machine (open / pending close,
 * reopen classification through pud::semantics) extended with the
 * per-row contents lattice, loop bodies walked to a state fixpoint.
 */
class DfWalker
{
  public:
    DfWalker(const Program &program, const dram::DeviceConfig &cfg,
             const ProgramEffects &fx, DataflowResult &out)
        : program_(program),
          cfg_(cfg),
          mapping_(cfg.profile.mapping),
          geom_(semantics::geometryOf(cfg)),
          fx_(fx),
          out_(out),
          banks_(cfg.banks)
    {}

    void
    run()
    {
        walkRange(0, program_.insts().size());
        finish();
    }

  private:
    struct BankSt
    {
        bool open = false;
        std::vector<RowId> openRows;  //!< physical; > 1 for SiMRA
        Time openedAt = 0;

        bool pendingValid = false;
        std::vector<RowId> pendingRows;
        Time pendingTOn = 0;
        Time pendingClosedAt = 0;
        Time pendingOpenedAt = 0;
    };

    /** Time-free machine + row-state image for fixpoint detection. */
    struct Snapshot
    {
        std::map<std::uint64_t, RowState> rows;
        std::vector<std::pair<std::vector<RowId>, std::vector<RowId>>>
            banks;  //!< (openRows-or-empty, pendingRows-or-empty)
        std::vector<std::uint8_t> flags;  //!< open<<1 | pendingValid
    };

    Snapshot
    capture() const
    {
        Snapshot s;
        s.rows = out_.rows;
        for (const BankSt &b : banks_) {
            s.banks.push_back({b.open ? b.openRows : std::vector<RowId>{},
                               b.pendingValid ? b.pendingRows
                                              : std::vector<RowId>{}});
            s.flags.push_back(
                static_cast<std::uint8_t>((b.open ? 2 : 0) |
                                          (b.pendingValid ? 1 : 0)));
        }
        return s;
    }

    bool
    sameState(const Snapshot &s) const
    {
        if (s.rows.size() != out_.rows.size())
            return false;
        auto it = s.rows.begin();
        for (const auto &[key, st] : out_.rows) {
            if (it->first != key || !stateEq(it->second, st))
                return false;
            ++it;
        }
        for (std::size_t b = 0; b < banks_.size(); ++b) {
            const BankSt &bk = banks_[b];
            const std::uint8_t f = static_cast<std::uint8_t>(
                (bk.open ? 2 : 0) | (bk.pendingValid ? 1 : 0));
            if (s.flags[b] != f)
                return false;
            if (bk.open && s.banks[b].first != bk.openRows)
                return false;
            if (bk.pendingValid && s.banks[b].second != bk.pendingRows)
                return false;
        }
        return true;
    }

    RowState &
    stateOf(BankId b, RowId phys)
    {
        return out_.rows[rowKey(b, phys)];
    }

    template <typename... Args>
    void
    add(Code code, std::size_t inst, const char *fmt, Args... args)
    {
        if (!seen_.insert({static_cast<int>(code), inst}).second)
            return;
        out_.diags.push_back({code, severityOf(code), inst,
                              format(fmt, args...)});
    }

    std::size_t
    matchEnd(std::size_t begin) const
    {
        const auto &insts = program_.insts();
        int depth = 0;
        for (std::size_t i = begin; i < insts.size(); ++i) {
            if (insts[i].op == Op::LoopBegin)
                ++depth;
            else if (insts[i].op == Op::LoopEnd && --depth == 0)
                return i;
        }
        return npos;
    }

    void
    walkRange(std::size_t begin, std::size_t end)
    {
        const auto &insts = program_.insts();
        std::size_t i = begin;
        while (i < end) {
            const Inst &inst = insts[i];
            if (inst.op == Op::LoopBegin) {
                std::size_t close = matchEnd(i);
                if (close == npos || close > end) {
                    out_.exact = false;
                    walkRange(i + 1, end);
                    return;
                }
                if (inst.count > 0)
                    walkLoop(i, close, inst.count);
                i = close + 1;
            } else if (inst.op == Op::LoopEnd) {
                ++i;
            } else {
                step(i);
                ++i;
            }
        }
    }

    /**
     * Walk the body until the row states and bank machines repeat
     * (at most kLoopPassCap passes; exact for smaller trip counts),
     * then skip the remaining iterations arithmetically.  Rows still
     * changing at the cap degrade to Unknown.
     */
    void
    walkLoop(std::size_t begin, std::size_t close, std::uint64_t count)
    {
        walkRange(begin + 1, close);  // warm-up pass
        std::uint64_t executed = 1;
        Snapshot before;
        Time loop_start = 0;
        while (executed < count && executed < kLoopPassCap) {
            before = capture();
            loop_start = cursor_;
            walkRange(begin + 1, close);
            ++executed;
            if (sameState(before)) {
                skipIterations(loop_start, count - executed);
                return;
            }
        }
        if (executed >= count)
            return;  // exact: every iteration was walked

        // Cap hit without a fixpoint: anything still in flux after
        // (count - executed) more iterations is beyond this analysis.
        out_.exact = false;
        for (const auto &[key, st] : before.rows) {
            auto it = out_.rows.find(key);
            if (it == out_.rows.end() || !stateEq(it->second, st))
                degrade(key, begin);
        }
        for (const auto &[key, st] : out_.rows)
            if (before.rows.find(key) == before.rows.end())
                degrade(key, begin);
        skipIterations(loop_start, count - executed);
    }

    void
    degrade(std::uint64_t key, std::size_t begin)
    {
        RowState &st = out_.rows[key];
        st = RowState{};
        st.kind = RowStateKind::Unknown;
        st.defIndex = begin;
    }

    /** Advance the cursor over `reps` identity iterations. */
    void
    skipIterations(Time loop_start, std::uint64_t reps)
    {
        const Time body = cursor_ - loop_start;
        const Time skipped = satMulT(body, reps);
        if (skipped <= 0)
            return;
        for (BankSt &bank : banks_) {
            auto shift = [&](Time &t) {
                if (t >= loop_start)
                    t = satAddT(t, skipped);
            };
            shift(bank.openedAt);
            shift(bank.pendingClosedAt);
            shift(bank.pendingOpenedAt);
        }
        cursor_ = satAddT(cursor_, skipped);
    }

    // ---- consumption and definition ------------------------------------

    /** The row's contents feed a RD, copy, or merge. */
    void
    consume(std::size_t i, BankId b, RowId phys)
    {
        RowState &st = stateOf(b, phys);
        st.consumed = true;
        if (st.kind != RowStateKind::Initial &&
            st.kind != RowStateKind::CopyOf)
            return;
        // Contents trace back to pre-program cell charge: unreliable
        // if a hammer-grade aggressor sits within the blast radius.
        const RowId lo = phys >= 2 ? phys - 2 : 0;
        const RowId hi = std::min<RowId>(phys + 2, geom_.rowsPerBank - 1);
        for (RowId a = lo; a <= hi; ++a) {
            const RowActivity *ra = findRow(fx_, b, a);
            if (ra == nullptr ||
                ra->totalCloses() < kHammerIntentCloses)
                continue;
            add(Code::DfAggressorAsData, i,
                "row %u's contents are consumed as data, but row %u "
                "(distance %d) is closed %llu times by this program "
                "(hammer-grade, >= %llu): the consumed value may "
                "carry disturbance bitflips",
                phys, a, static_cast<int>(a) - static_cast<int>(phys),
                static_cast<unsigned long long>(ra->totalCloses()),
                static_cast<unsigned long long>(kHammerIntentCloses));
            return;
        }
    }

    /** Flag a staged value overwritten before anything read it. */
    void
    checkDeadWrite(std::size_t i, BankId b, RowId phys)
    {
        const auto it = out_.rows.find(rowKey(b, phys));
        if (it == out_.rows.end())
            return;
        const RowState &old = it->second;
        if (old.consumed || (old.kind != RowStateKind::Written &&
                             old.kind != RowStateKind::CopyOf))
            return;
        add(Code::DfDeadWrite, old.defIndex,
            "row %u's value staged here is overwritten at "
            "instruction %zu before anything reads it",
            phys, i);
    }

    void
    define(BankId b, RowId phys, RowState st, std::size_t i)
    {
        st.defIndex = i;
        st.consumed = false;
        stateOf(b, phys) = st;
    }

    // ---- macro-op data effects ------------------------------------------

    void
    doCopy(std::size_t i, BankId b, RowId src, RowId dst)
    {
        pudSubs_[b].insert(geom_.subarrayOf(dst));
        consume(i, b, src);
        checkDeadWrite(i, b, dst);

        RowState v = stateOf(b, src);  // copy: source is unchanged
        switch (v.kind) {
          case RowStateKind::Initial:
            v.kind = RowStateKind::CopyOf;
            v.srcKey = rowKey(b, src);
            break;
          case RowStateKind::Written:
          case RowStateKind::CopyOf:
          case RowStateKind::MajorityOf:
          case RowStateKind::ChargeShared:
          case RowStateKind::Clobbered:
          case RowStateKind::Unknown:
            break;  // value-preserving: dst mirrors src's lattice point
        }
        define(b, dst, v, i);
    }

    /** Canonical merge-input value of one member row. */
    RowState
    valueOf(BankId b, RowId phys)
    {
        RowState v = stateOf(b, phys);
        if (v.kind == RowStateKind::Initial) {
            v.kind = RowStateKind::CopyOf;
            v.srcKey = rowKey(b, phys);
        }
        v.defIndex = 0;
        v.consumed = false;
        return v;
    }

    int
    internMerge(BankId b, std::vector<MergeInput> inputs, int n,
                bool tie, std::size_t i)
    {
        std::string key = format("b%u n%d", b, n);
        for (const MergeInput &in : inputs)
            key += format("|%d:%d:%llu:%d*%d",
                          static_cast<int>(in.value.kind),
                          in.value.dataIndex,
                          static_cast<unsigned long long>(
                              in.value.srcKey),
                          in.value.mergeId, in.weight);
        const auto [it, fresh] =
            mergeIds_.insert({key, static_cast<int>(out_.merges.size())});
        if (fresh) {
            MergeRecord rec;
            rec.bank = b;
            rec.inputs = std::move(inputs);
            rec.groupSize = n;
            rec.tieable = tie;
            rec.instIndex = i;
            out_.merges.push_back(std::move(rec));
        }
        return it->second;
    }

    /**
     * A SiMRA group opens: the sense amplifiers immediately resolve
     * every bitline to the (weighted) majority of the activated cells,
     * so the merge happens at the ACT, before any WR.
     */
    void
    doMerge(std::size_t i, BankId b, const std::vector<RowId> &group,
            RowId anchor_phys)
    {
        const dram::SubarrayId sub = geom_.subarrayOf(anchor_phys);
        bool crosses = false;
        for (RowId r : group)
            crosses |= !geom_.contains(r) || geom_.subarrayOf(r) != sub;
        pudSubs_[b].insert(sub);
        if (crosses) {
            add(Code::DfGroupCrossesSubarray, i,
                "SiMRA activation group [%u, %u] spans a subarray or "
                "bank boundary (subarrays are %u rows): wordline "
                "drivers are per-subarray, so the charge state of "
                "every member is unpredictable",
                group.front(), group.back(), geom_.rowsPerSubarray);
            RowState cl;
            cl.kind = RowStateKind::Clobbered;
            for (RowId r : group)
                if (geom_.contains(r))
                    define(b, r, cl, i);
            return;
        }

        // Member census: staged data, in-place operands the group
        // swallows (an input value whose CopyOf source is itself a
        // member), never-written rows, undefined rows.
        bool staged = false, undef = false;
        for (RowId r : group) {
            const RowState &st = stateOf(b, r);
            staged |= st.kind == RowStateKind::Written ||
                      st.kind == RowStateKind::CopyOf ||
                      st.kind == RowStateKind::MajorityOf;
            undef |= !st.defined();
        }
        bool uncovered_initial = false;
        for (RowId r : group) {
            if (stateOf(b, r).kind != RowStateKind::Initial)
                continue;
            bool covered = false;
            for (RowId o : group)
                covered |= stateOf(b, o).kind == RowStateKind::CopyOf &&
                           stateOf(b, o).srcKey == rowKey(b, r);
            if (covered) {
                if (staged)
                    add(Code::DfGroupOverlap, i,
                        "SiMRA activation group [%u, %u] contains "
                        "operand row %u itself alongside copies of "
                        "it: the merge destroys the operand's "
                        "original contents",
                        group.front(), group.back(), r);
            } else {
                uncovered_initial = true;
            }
        }

        for (RowId r : group)
            consume(i, b, r);

        if (!staged) {
            // Merging only never-written charge is the deliberate
            // entropy-source idiom (QUAC-TRNG): defined by the device,
            // unknowable statically, and not worth a diagnostic.
            RowState cs;
            cs.kind = RowStateKind::ChargeShared;
            for (RowId r : group)
                define(b, r, cs, i);
            return;
        }

        if (undef || uncovered_initial) {
            add(Code::DfMajorityUninitInput, i,
                "SiMRA merge over [%u, %u] mixes staged operand data "
                "with %s rows: every bitline resolves against charge "
                "the program never defined, so the whole block ends "
                "charge-shared",
                group.front(), group.back(),
                undef ? "undefined" : "never-written");
            RowState cs;
            cs.kind = RowStateKind::ChargeShared;
            for (RowId r : group)
                define(b, r, cs, i);
            return;
        }

        // All inputs are known values: group by identity and weigh.
        std::vector<MergeInput> inputs;
        for (RowId r : group) {
            const RowState v = valueOf(b, r);
            bool found = false;
            for (MergeInput &in : inputs) {
                if (in.value.sameValue(v)) {
                    ++in.weight;
                    found = true;
                }
            }
            if (!found)
                inputs.push_back({v, 1});
        }
        std::sort(inputs.begin(), inputs.end(),
                  [](const MergeInput &a, const MergeInput &b) {
                      return valueLess(a.value, b.value);
                  });

        if (inputs.size() == 1) {
            // Unanimous: the merge is a multi-row restore of one value.
            for (RowId r : group)
                define(b, r, inputs.front().value, i);
            return;
        }

        std::vector<int> weights;
        for (const MergeInput &in : inputs)
            weights.push_back(in.weight);
        const int n = static_cast<int>(group.size());
        const bool tie = semantics::tieable(weights, n);
        const int id = internMerge(b, std::move(inputs), n, tie, i);
        if (tie) {
            add(Code::DfMajorityTie, i,
                "replication weights of the SiMRA merge over [%u, %u] "
                "admit a bitline tie (a subset of weights sums to "
                "%d): tied bitlines float at half charge and resolve "
                "unpredictably on real chips",
                group.front(), group.back(), n / 2);
        }
        RowState mj;
        mj.kind = RowStateKind::MajorityOf;
        mj.mergeId = id;
        for (RowId r : group)
            define(b, r, mj, i);
    }

    // ---- instruction handlers -------------------------------------------

    void
    act(std::size_t i, const Inst &inst)
    {
        if (inst.bank >= cfg_.banks || inst.row >= cfg_.rowsPerBank())
            return;  // protocol errors are the Walker's business
        BankSt &bank = banks_[inst.bank];
        const RowId phys = mapping_.toPhysical(inst.row);
        if (bank.open)
            return;  // ACT-while-open fatals at execution time

        if (bank.pendingValid) {
            const Time gap = cursor_ - bank.pendingClosedAt;
            const semantics::ReopenClass cls =
                bank.pendingRows.size() == 1
                    ? semantics::classifyReopen(
                          cfg_.timings, geom_, bank.pendingRows.front(),
                          phys, bank.pendingTOn, gap)
                    : semantics::ReopenClass::Conventional;
            switch (cls) {
              case semantics::ReopenClass::SimraIgnored:
                // Chip ignores both commands; the previous row stays
                // open with its original activation time.
                bank.open = true;
                bank.openRows = bank.pendingRows;
                bank.openedAt = bank.pendingOpenedAt;
                bank.pendingValid = false;
                return;
              case semantics::ReopenClass::SimraGroup: {
                const auto group = semantics::simraActivatedSet(
                    geom_, bank.pendingRows.front(), phys);
                bank.pendingValid = false;
                bank.open = true;
                bank.openRows.clear();
                for (RowId r : group)
                    if (geom_.contains(r))
                        bank.openRows.push_back(r);
                bank.openedAt = cursor_;
                doMerge(i, inst.bank, group, phys);
                return;
              }
              case semantics::ReopenClass::ComraCopy:
                doCopy(i, inst.bank, bank.pendingRows.front(), phys);
                bank.pendingValid = false;
                bank.open = true;
                bank.openRows.assign(1, phys);
                bank.openedAt = cursor_;
                return;
              case semantics::ReopenClass::Conventional:
                bank.pendingValid = false;
                break;
            }
        }

        bank.open = true;
        bank.openRows.assign(1, phys);
        bank.openedAt = cursor_;
    }

    void
    pre(BankId b)
    {
        BankSt &bank = banks_[b];
        if (!bank.open)
            return;
        bank.pendingValid = true;
        bank.pendingRows = bank.openRows;
        bank.pendingTOn = cursor_ - bank.openedAt;
        bank.pendingClosedAt = cursor_;
        bank.pendingOpenedAt = bank.openedAt;
        bank.open = false;
    }

    void
    rd(std::size_t i, const Inst &inst)
    {
        if (inst.bank >= cfg_.banks)
            return;
        BankSt &bank = banks_[inst.bank];
        if (!bank.open || bank.openRows.empty())
            return;  // RdOnClosedBank is the Walker's error
        const RowId phys = bank.openRows.front();
        const RowState &st = stateOf(inst.bank, phys);
        if (!st.defined()) {
            add(Code::DfReadUndefined, i,
                "RD returns row %u whose contents are %s: the "
                "collected bits carry no program-defined value",
                phys, name(st.kind));
        } else if (st.kind == RowStateKind::Initial) {
            add(Code::DfReadBeforeWrite, i,
                "RD returns row %u, which the program never wrote: "
                "the result is whatever the host staged before "
                "execution",
                phys);
        }
        consume(i, inst.bank, phys);
    }

    void
    wr(std::size_t i, const Inst &inst)
    {
        if (inst.bank >= cfg_.banks)
            return;
        BankSt &bank = banks_[inst.bank];
        if (!bank.open)
            return;  // WrOnClosedBank is the Walker's error
        RowState v;
        if (inst.dataIndex >= 0 &&
            inst.dataIndex <
                static_cast<int>(program_.dataTable().size())) {
            v.kind = RowStateKind::Written;
            v.dataIndex = inst.dataIndex;
        } else {
            v.kind = RowStateKind::Unknown;  // WrBadDataIndex fatals
        }
        for (RowId r : bank.openRows) {
            checkDeadWrite(i, inst.bank, r);
            define(inst.bank, r, v, i);
        }
    }

    void
    step(std::size_t i)
    {
        const Inst &inst = program_.insts()[i];
        cursor_ = satAddT(cursor_, std::max<Time>(inst.gap, 0));
        switch (inst.op) {
          case Op::Act:
            act(i, inst);
            break;
          case Op::Pre:
            if (inst.bank < cfg_.banks)
                pre(inst.bank);
            break;
          case Op::PreAll:
            for (BankId b = 0; b < cfg_.banks; ++b)
                pre(b);
            break;
          case Op::Rd:
            rd(i, inst);
            break;
          case Op::Wr:
            wr(i, inst);
            break;
          case Op::Ref:
            for (BankId b = 0; b < cfg_.banks; ++b)
                banks_[b].pendingValid = false;
            break;
          case Op::Nop:
          case Op::LoopBegin:
          case Op::LoopEnd:
            break;
        }
    }

    /**
     * End-of-program analysis.  Live-out values are *not* dead writes
     * (they are what the host DMAs back), but a staged row stranded on
     * the far side of a subarray boundary from all the PuD activity is
     * the historic control-row clobber: `base - 1` crossing into the
     * previous subarray writes a row no macro-op will ever use.
     */
    void
    finish()
    {
        for (const auto &[key, st] : out_.rows) {
            if (st.kind != RowStateKind::Written || st.consumed)
                continue;
            const BankId b = static_cast<BankId>(key >> 32);
            const RowId phys = static_cast<RowId>(key & 0xffffffffu);
            const auto it = pudSubs_.find(b);
            if (it == pudSubs_.end() || it->second.empty())
                continue;
            const dram::SubarrayId sub = geom_.subarrayOf(phys);
            if (it->second.count(sub))
                continue;  // its own subarray sees PuD activity
            const bool last_of_sub =
                (phys + 1) % geom_.rowsPerSubarray == 0;
            const bool first_of_sub = phys % geom_.rowsPerSubarray == 0;
            if ((last_of_sub && it->second.count(sub + 1)) ||
                (first_of_sub && sub > 0 &&
                 it->second.count(sub - 1))) {
                add(Code::DfControlRowClobber, st.defIndex,
                    "row %u is written but never consumed, and it "
                    "sits on the boundary of subarray %u while all "
                    "PuD activity runs in the adjacent subarray: "
                    "likely an off-by-one control-row address "
                    "crossing the subarray edge",
                    phys, sub);
            }
        }
    }

    static constexpr std::size_t npos = static_cast<std::size_t>(-1);

    const Program &program_;
    const dram::DeviceConfig &cfg_;
    dram::RowMapping mapping_;
    semantics::Geometry geom_;
    const ProgramEffects &fx_;
    DataflowResult &out_;
    std::vector<BankSt> banks_;
    std::map<BankId, std::set<dram::SubarrayId>> pudSubs_;
    std::map<std::string, int> mergeIds_;
    std::set<std::pair<int, std::size_t>> seen_;
    Time cursor_ = 0;
};

} // namespace

DataflowResult
analyzeDataflow(const bender::Program &program,
                const dram::DeviceConfig &cfg, const ProgramEffects *fx)
{
    DataflowResult out;
    if (fx != nullptr) {
        DfWalker(program, cfg, *fx, out).run();
    } else {
        const ProgramEffects local = summarizeEffects(program, cfg);
        DfWalker(program, cfg, local, out).run();
    }
    return out;
}

} // namespace pud::lint
