/**
 * @file
 * Row-state dataflow analysis for bender programs.
 *
 * analyzeDataflow() abstractly interprets a Program over per-(bank,
 * physical row) *contents* states -- who last defined each row, with
 * what provenance -- using the same macro-op semantics table
 * (pud/semantics.h) that PudEngine validates against at runtime, so
 * the static and dynamic views of CoMRA/SiMRA data effects cannot
 * drift.  The lattice:
 *
 *   Initial       pre-program cell contents (host-initialized)
 *   Written(d)    holds data-table entry d verbatim (WR)
 *   CopyOf(k)     holds the *initial* contents of row key k (CoMRA
 *                 copy chains resolve to their original source)
 *   MajorityOf(m) holds the resolved value of merge record m (a SiMRA
 *                 group activation over distinct known inputs)
 *   ChargeShared  defined by the device but unknown statically (merge
 *                 over undefined or partly-initial inputs; the
 *                 QUAC-TRNG idiom)
 *   Clobbered     physically unpredictable (e.g. the group crossed a
 *                 subarray boundary)
 *   Unknown       the analysis gave up (loop did not reach a row-state
 *                 fixpoint within the pass cap)
 *
 * Loops reuse the absint strategy -- closed-form in the trip count, no
 * unrolling: bodies are walked until the row-state map and bank
 * machines reach a fixpoint (at most kLoopPassCap passes; exact for
 * smaller trip counts), then the remaining iterations are skipped with
 * the time cursor advanced arithmetically.  Rows still changing at the
 * cap degrade to Unknown.
 *
 * The pass emits the Df* diagnostic family (diag.h): reads of
 * undefined or never-written rows, dead writes, hammered rows consumed
 * as data, SiMRA groups crossing subarray boundaries or swallowing
 * their own operands, control-row writes landing across a subarray
 * boundary from the PuD ops they flank, and tie-able majority merges.
 * None are errors: every flagged program still executes; the verdicts
 * explain what its rows will (not) hold.
 */

#ifndef PUD_LINT_DATAFLOW_H
#define PUD_LINT_DATAFLOW_H

#include <cstdint>
#include <map>
#include <vector>

#include "bender/program.h"
#include "dram/config.h"
#include "lint/absint.h"
#include "lint/diag.h"

namespace pud::lint {

/** Lattice point kinds; see the file comment. */
enum class RowStateKind : std::uint8_t
{
    Initial,
    Written,
    CopyOf,
    MajorityOf,
    ChargeShared,
    Clobbered,
    Unknown,
};

/** Short stable name of a kind ("initial", "written", ...). */
const char *name(RowStateKind kind);

/** One row's abstract contents. */
struct RowState
{
    RowStateKind kind = RowStateKind::Initial;
    int dataIndex = -1;        //!< Written: data-table index
    std::uint64_t srcKey = 0;  //!< CopyOf: rowKey() of the source
    int mergeId = -1;          //!< MajorityOf: index into merges

    /** Instruction that last defined this row (diagnostic anchor). */
    std::size_t defIndex = 0;

    /** Value consumed (RD / copy source / merge input) since defined. */
    bool consumed = false;

    /** True when the program can rely on the row's exact contents. */
    bool
    defined() const
    {
        return kind == RowStateKind::Initial ||
               kind == RowStateKind::Written ||
               kind == RowStateKind::CopyOf ||
               kind == RowStateKind::MajorityOf;
    }

    /** Value identity: same kind and payload (anchors excluded). */
    bool
    sameValue(const RowState &o) const
    {
        return kind == o.kind && dataIndex == o.dataIndex &&
               srcKey == o.srcKey && mergeId == o.mergeId;
    }
};

/**
 * One weighted input of a SiMRA merge.  `value.kind` is one of
 * Written / CopyOf / MajorityOf (Initial inputs are canonicalized to
 * CopyOf of themselves so copy-staged and in-place operands compare
 * equal).
 */
struct MergeInput
{
    RowState value;
    int weight = 0;
};

/**
 * A SiMRA group activation over distinct known inputs.  Records are
 * interned by their input multiset, so a loop body repeating the same
 * merge converges to a fixpoint instead of minting fresh identities.
 */
struct MergeRecord
{
    dram::BankId bank = 0;
    std::vector<MergeInput> inputs;  //!< sorted, weights summed
    int groupSize = 0;
    bool tieable = false;  //!< some input subset sums to groupSize/2
    std::size_t instIndex = 0;  //!< first ACT that formed this merge
};

/** Everything one dataflow pass produces. */
struct DataflowResult
{
    /** Final per-row states, keyed by rowKey(); untouched rows absent
     *  (they are Initial by definition). */
    std::map<std::uint64_t, RowState> rows;

    /** Interned merge records, indexed by RowState::mergeId. */
    std::vector<MergeRecord> merges;

    /** Df* findings, in program order, deduplicated per (code, inst). */
    std::vector<Diag> diags;

    /**
     * False when a loop body failed to reach a row-state fixpoint
     * within the pass cap (the affected rows are Unknown) or the
     * program is unbalanced.
     */
    bool exact = true;

    const RowState *
    find(dram::BankId bank, dram::RowId phys) const
    {
        const auto it = rows.find(rowKey(bank, phys));
        return it == rows.end() ? nullptr : &it->second;
    }
};

/** Loop pass cap: trip counts below this analyze exactly. */
constexpr std::uint64_t kLoopPassCap = 4;

/**
 * Run the dataflow pass.  `fx` is the program's absint summary
 * (summarizeEffects); pass nullptr to have the analysis compute it
 * (it is only needed for the hammered-row-consumed-as-data check).
 */
DataflowResult analyzeDataflow(const bender::Program &program,
                               const dram::DeviceConfig &cfg,
                               const ProgramEffects *fx = nullptr);

} // namespace pud::lint

#endif // PUD_LINT_DATAFLOW_H
