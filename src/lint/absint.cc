#include "lint/absint.h"

#include <algorithm>
#include <deque>
#include <limits>
#include <set>
#include <vector>

#include "dram/device.h"
#include "dram/mapping.h"
#include "dram/simra_decoder.h"

namespace pud::lint {

namespace {

using bender::Inst;
using bender::Op;
using bender::Program;
using dram::BankId;
using dram::OpenKind;
using dram::RowId;
using dram::TechClass;

constexpr Time kMaxTime = std::numeric_limits<Time>::max();
constexpr std::uint64_t kMaxU64 =
    std::numeric_limits<std::uint64_t>::max();

Time
satAddT(Time a, Time b)
{
    if (b > 0 && a > kMaxTime - b)
        return kMaxTime;
    return a + b;
}

Time
satMulT(Time a, std::uint64_t n)
{
    if (a <= 0 || n == 0)
        return 0;
    if (static_cast<std::uint64_t>(a) > static_cast<std::uint64_t>(
                                            kMaxTime) / n)
        return kMaxTime;
    return a * static_cast<Time>(n);
}

std::uint64_t
satAddU(std::uint64_t a, std::uint64_t b)
{
    return a > kMaxU64 - b ? kMaxU64 : a + b;
}

std::uint64_t
satMulU(std::uint64_t a, std::uint64_t n)
{
    if (a == 0 || n == 0)
        return 0;
    return a > kMaxU64 / n ? kMaxU64 : a * n;
}

/**
 * The abstract walk: a per-bank open/pending machine mirroring
 * Device::act/pre classification, with loop bodies walked at most
 * twice and the remaining iterations replayed arithmetically.
 */
class AbsWalker
{
  public:
    AbsWalker(const Program &program, const dram::DeviceConfig &cfg,
              ProgramEffects &out, SamplerTrace *trace)
        : program_(program),
          cfg_(cfg),
          mapping_(cfg.profile.mapping),
          decoder_(cfg.rowsPerSubarray),
          out_(out),
          trace_(trace),
          banks_(cfg.banks)
    {
        if (trace_ != nullptr) {
            trace_->window = dram::Device::kTrrWindow;
            trace_->refs.clear();
            trace_->pushes.assign(cfg.banks, 0);
            trace_->truncated = false;
            rings_.resize(cfg.banks);
            pushLogs_.resize(cfg.banks);
            taint_.resize(cfg.banks);
        }
    }

    void
    run()
    {
        walkRange(0, program_.insts().size());
        finish();
        out_.duration = cursor_;
        out_.lastRefAt = lastRefAt_;
    }

  private:
    struct BankSt
    {
        bool open = false;
        std::vector<RowId> openRows;  //!< physical; > 1 for SiMRA
        OpenKind kind = OpenKind::Normal;
        Time openedAt = 0;
        Time comraDelay = 0;  //!< of a ComraDst open
        Time simraActToPre = 0, simraPreToAct = 0;

        bool pendingValid = false;
        bool pendingRecorded = false;  //!< close already counted
        std::vector<RowId> pendingRows;
        Time pendingTOn = 0;
        Time pendingClosedAt = 0;
        Time pendingOpenedAt = 0;
        OpenKind pendingKind = OpenKind::Normal;
        Time pendingComraDelay = 0;
    };

    /** Additive state captured before a steady-state pass. */
    struct Snapshot
    {
        std::uint64_t totalActs, totalRefs;
        std::map<std::uint64_t, RowActivity> rows;
    };

    RowActivity &
    rowOf(BankId b, RowId phys)
    {
        return out_.rows[rowKey(b, phys)];
    }

    std::size_t
    matchEnd(std::size_t begin) const
    {
        const auto &insts = program_.insts();
        int depth = 0;
        for (std::size_t i = begin; i < insts.size(); ++i) {
            if (insts[i].op == Op::LoopBegin)
                ++depth;
            else if (insts[i].op == Op::LoopEnd && --depth == 0)
                return i;
        }
        return npos;
    }

    void
    walkRange(std::size_t begin, std::size_t end)
    {
        const auto &insts = program_.insts();
        std::size_t i = begin;
        while (i < end) {
            const Inst &inst = insts[i];
            ++out_.steps;
            if (inst.op == Op::LoopBegin) {
                std::size_t close = matchEnd(i);
                if (close == npos || close > end) {
                    // Unbalanced (an error elsewhere): analyze the
                    // tail once; counts become a lower bound.
                    out_.exact = false;
                    walkRange(i + 1, end);
                    return;
                }
                if (inst.count == 0) {
                    i = close + 1;
                    continue;
                }
                walkRange(i + 1, close);  // warm-up pass
                if (inst.count >= 2) {
                    const Snapshot snap{out_.totalActs, out_.totalRefs,
                                        out_.rows};
                    const Time loop_start = cursor_;
                    std::size_t refs_mark = 0;
                    std::vector<std::size_t> push_marks;
                    if (trace_ != nullptr) {
                        refs_mark = trace_->refs.size();
                        push_marks.reserve(pushLogs_.size());
                        for (const auto &log : pushLogs_)
                            push_marks.push_back(log.size());
                    }
                    walkRange(i + 1, close);  // steady-state pass
                    if (inst.count > 2) {
                        if (trace_ != nullptr)
                            replaySamplerTail(refs_mark, push_marks,
                                              inst.count - 2);
                        replayTail(snap, loop_start, inst.count - 2);
                    }
                }
                i = close + 1;
            } else if (inst.op == Op::LoopEnd) {
                ++i;
            } else {
                step(i);
                ++i;
            }
        }
    }

    /**
     * Account for the (reps) iterations beyond the two walked passes:
     * additive fields grow by (reps) times the steady-state delta,
     * min/max fields are already fixed points, and every live
     * timestamp shifts forward by the skipped wall-clock time.
     */
    void
    replayTail(const Snapshot &snap, Time loop_start, std::uint64_t reps)
    {
        const Time body = cursor_ - loop_start;
        const std::uint64_t body_refs =
            out_.totalRefs - snap.totalRefs;

        out_.totalActs = satAddU(
            out_.totalActs,
            satMulU(out_.totalActs - snap.totalActs, reps));
        out_.totalRefs = satAddU(
            out_.totalRefs, satMulU(body_refs, reps));

        static const RowActivity kZero{};
        for (auto &[key, cur] : out_.rows) {
            const auto it = snap.rows.find(key);
            const RowActivity &old =
                it == snap.rows.end() ? kZero : it->second;
            cur.acts = satAddU(cur.acts,
                               satMulU(cur.acts - old.acts, reps));
            for (int c = 0; c < 3; ++c) {
                cur.closes[c] = satAddU(
                    cur.closes[c],
                    satMulU(cur.closes[c] - old.closes[c], reps));
                cur.onTime[c] = satAddT(
                    cur.onTime[c],
                    satMulT(cur.onTime[c] - old.onTime[c], reps));
                // Epoch counts: a body with REFs resets the epoch
                // every iteration, so the steady-state value is the
                // periodic fixed point; a REF-free body's epoch keeps
                // growing and scales like any additive count.  The
                // per-epoch maxima are fixed points either way (they
                // fold at the next REF or at finish()).
                if (body_refs == 0) {
                    cur.epochCloses[c] = satAddU(
                        cur.epochCloses[c],
                        satMulU(cur.epochCloses[c] -
                                    old.epochCloses[c],
                                reps));
                }
            }
            cur.comraDelaySum = satAddT(
                cur.comraDelaySum,
                satMulT(cur.comraDelaySum - old.comraDelaySum, reps));
            cur.simraActToPreSum = satAddT(
                cur.simraActToPreSum,
                satMulT(cur.simraActToPreSum - old.simraActToPreSum,
                        reps));
            cur.simraPreToActSum = satAddT(
                cur.simraPreToActSum,
                satMulT(cur.simraPreToActSum - old.simraPreToActSum,
                        reps));
        }

        const Time skipped = satMulT(body, reps);
        shiftTimes(loop_start, skipped);
        cursor_ = satAddT(cursor_, skipped);
    }

    /**
     * Sampler-trace accounting for the (reps) tail iterations.
     *
     * Soundness: at any tail iteration, the real ring window holds
     * only (a) pushes made by body iterations -- all of which are
     * rows the steady pass pushed (set B) -- and (b) older pre-loop
     * pushes, which can only *age out* relative to the window the
     * steady pass observed.  So every tail REF's window rows are
     * within (steady window  union  B): each steady-pass ref point is
     * duplicated with that union as its (inexact) row set and
     * multiplicity = reps.  Downstream of the loop the live ring no
     * longer matches the real one (it missed the tail pushes), but
     * the real window can only contain live-ring rows plus B; B is
     * added to the bank's taint set, which widens every later ref
     * point the same way.  fillLo stays valid throughout: the real
     * device saw at least as many pushes as the walked passes.
     */
    void
    replaySamplerTail(std::size_t refs_mark,
                      const std::vector<std::size_t> &push_marks,
                      std::uint64_t reps)
    {
        // Per-bank rows pushed by one body iteration (observed on the
        // steady pass).
        std::vector<std::set<RowId>> body_rows(pushLogs_.size());
        for (std::size_t b = 0; b < pushLogs_.size(); ++b) {
            body_rows[b].insert(pushLogs_[b].begin() +
                                    static_cast<std::ptrdiff_t>(
                                        push_marks[b]),
                                pushLogs_[b].end());
        }

        const std::size_t refs_end = trace_->refs.size();
        for (std::size_t k = refs_mark; k < refs_end; ++k) {
            if (trace_->refs.size() >= kMaxSamplerRefPoints) {
                trace_->truncated = true;
                break;
            }
            SamplerRefPoint rp = trace_->refs[k];
            rp.multiplicity = reps;
            rp.exact = false;
            for (RowId r : body_rows[rp.bank])
                rp.window.emplace(r, 0);
            trace_->refs.push_back(std::move(rp));
        }

        for (std::size_t b = 0; b < taint_.size(); ++b) {
            taint_[b].insert(body_rows[b].begin(), body_rows[b].end());
            trace_->pushes[b] = satAddU(
                trace_->pushes[b],
                satMulU(pushLogs_[b].size() - push_marks[b], reps));
        }
    }

    /** Shift every timestamp set during the steady-state pass. */
    void
    shiftTimes(Time from, Time delta)
    {
        if (delta <= 0)
            return;
        auto shift = [&](Time &t) {
            if (t >= from)
                t = satAddT(t, delta);
        };
        for (auto &[key, t] : lastActAt_)
            shift(t);
        if (lastRefAt_ >= 0)
            shift(lastRefAt_);
        for (BankSt &bank : banks_) {
            shift(bank.openedAt);
            shift(bank.pendingClosedAt);
            shift(bank.pendingOpenedAt);
        }
    }

    /**
     * Mirror of Device::trrRecord: recordAct() is called at exactly
     * the sites the device pushes into the TRR sampler ring (normal
     * opens, the CoMRA dst ACT, the SiMRA second ACT), so the trace
     * ring tracks the real sampler push-for-push on walked passes.
     */
    void
    samplerPush(BankId b, RowId phys)
    {
        auto &ring = rings_[b];
        ring.push_back(phys);
        if (ring.size() > dram::Device::kTrrWindow)
            ring.pop_front();
        pushLogs_[b].push_back(phys);
        trace_->pushes[b] = satAddU(trace_->pushes[b], 1);
    }

    void
    recordAct(BankId b, RowId phys, std::size_t i)
    {
        RowActivity &ra = rowOf(b, phys);
        if (ra.acts == 0)
            ra.firstActIndex = i;
        ra.acts = satAddU(ra.acts, 1);
        out_.totalActs = satAddU(out_.totalActs, 1);
        if (trace_ != nullptr)
            samplerPush(b, phys);

        const std::uint64_t key = rowKey(b, phys);
        const auto it = lastActAt_.find(key);
        if (it != lastActAt_.end()) {
            const Time gap = cursor_ - it->second;
            if (ra.minInterAct == 0 || gap < ra.minInterAct)
                ra.minInterAct = gap;
            ra.maxInterAct = std::max(ra.maxInterAct, gap);
            it->second = cursor_;
        } else {
            lastActAt_[key] = cursor_;
        }
    }

    void
    recordClose(BankId b, const BankSt &bank, TechClass cls, RowId phys,
                Time t_on)
    {
        RowActivity &ra = rowOf(b, phys);
        const int c = static_cast<int>(cls);
        ra.closes[c] = satAddU(ra.closes[c], 1);
        ra.epochCloses[c] = satAddU(ra.epochCloses[c], 1);
        ra.onTime[c] = satAddT(ra.onTime[c], std::max<Time>(t_on, 0));
        ra.maxOnTime[c] =
            std::max(ra.maxOnTime[c], std::max<Time>(t_on, 0));
        switch (cls) {
          case TechClass::Comra:
            ra.comraDelaySum =
                satAddT(ra.comraDelaySum, bank.comraDelay);
            if (ra.minComraDelay < 0 ||
                bank.comraDelay < ra.minComraDelay)
                ra.minComraDelay = bank.comraDelay;
            break;
          case TechClass::Simra:
            ra.simraActToPreSum =
                satAddT(ra.simraActToPreSum, bank.simraActToPre);
            ra.simraPreToActSum =
                satAddT(ra.simraPreToActSum, bank.simraPreToAct);
            ra.maxSimraActToPre =
                std::max(ra.maxSimraActToPre, bank.simraActToPre);
            ra.maxSimraPreToAct =
                std::max(ra.maxSimraPreToAct, bank.simraPreToAct);
            ra.simraN = std::max(
                ra.simraN, static_cast<int>(bank.openRows.size()));
            break;
          case TechClass::Conventional:
            break;
        }
    }

    /** Record the close(s) of an open row (group), classified by kind. */
    void
    recordOpenClose(BankId b, BankSt &bank, Time t_on)
    {
        TechClass cls = TechClass::Conventional;
        if (bank.kind == OpenKind::ComraDst)
            cls = TechClass::Comra;
        else if (bank.kind == OpenKind::Simra)
            cls = TechClass::Simra;
        for (RowId r : bank.openRows)
            recordClose(b, bank, cls, r, t_on);
    }

    /** Resolve an unconsumed pending close as conventional. */
    void
    dropPending(BankId b, BankSt &bank)
    {
        if (!bank.pendingValid)
            return;
        bank.pendingValid = false;
        if (bank.pendingRecorded)
            return;
        for (RowId r : bank.pendingRows) {
            RowActivity &ra = rowOf(b, r);
            ra.closes[0] = satAddU(ra.closes[0], 1);
            ra.epochCloses[0] = satAddU(ra.epochCloses[0], 1);
            ra.onTime[0] = satAddT(ra.onTime[0],
                                   std::max<Time>(bank.pendingTOn, 0));
            ra.maxOnTime[0] = std::max(
                ra.maxOnTime[0], std::max<Time>(bank.pendingTOn, 0));
        }
    }

    void
    act(std::size_t i, const Inst &inst)
    {
        if (inst.bank >= cfg_.banks || inst.row >= cfg_.rowsPerBank())
            return;  // protocol errors are the Walker's business
        BankSt &bank = banks_[inst.bank];
        const RowId phys = mapping_.toPhysical(inst.row);
        if (bank.open)
            return;  // ACT-while-open fatals at execution time

        if (bank.pendingValid) {
            const dram::TimingParams &t = cfg_.timings;
            const Time gap = cursor_ - bank.pendingClosedAt;
            const bool single = bank.pendingRows.size() == 1;
            const bool same_sub =
                single && bank.pendingRows.front() /
                                  cfg_.rowsPerSubarray ==
                              phys / cfg_.rowsPerSubarray;

            // SiMRA: ACT-PRE-ACT with both gaps grossly violated.
            if (single && same_sub &&
                bank.pendingTOn <= t.simraMaxActToPre &&
                gap <= t.simraMaxPreToAct) {
                if (!cfg_.profile.supportsSimra) {
                    // Chip ignores both commands; the first row stays
                    // open with its original activation time.
                    bank.open = true;
                    bank.openRows = bank.pendingRows;
                    bank.kind = bank.pendingKind;
                    bank.openedAt = bank.pendingOpenedAt;
                    bank.comraDelay = bank.pendingComraDelay;
                    bank.pendingValid = false;
                    return;
                }
                auto group = decoder_.activatedSet(
                    bank.pendingRows.front(), phys);
                if (group.size() > 1) {
                    // The blip is part of this op, not a real close.
                    bank.pendingValid = false;
                    bank.open = true;
                    bank.openRows.assign(group.begin(), group.end());
                    bank.kind = OpenKind::Simra;
                    bank.openedAt = cursor_;
                    bank.simraActToPre = bank.pendingTOn;
                    bank.simraPreToAct = gap;
                    recordAct(inst.bank, phys, i);
                    return;
                }
                // Degenerate pair: fall through to normal handling.
            }

            // CoMRA: full restore, then reopen below tRP.
            if (single && same_sub && bank.pendingRows.front() != phys &&
                bank.pendingTOn >= t.tRAS - units::ns &&
                gap <= t.comraMaxPreToAct) {
                if (!bank.pendingRecorded) {
                    // Retro-tag the source close as the copy cycle's
                    // first half.
                    RowActivity &src =
                        rowOf(inst.bank, bank.pendingRows.front());
                    src.closes[1] = satAddU(src.closes[1], 1);
                    src.epochCloses[1] =
                        satAddU(src.epochCloses[1], 1);
                    src.onTime[1] = satAddT(
                        src.onTime[1],
                        std::max<Time>(bank.pendingTOn, 0));
                    src.maxOnTime[1] = std::max(
                        src.maxOnTime[1],
                        std::max<Time>(bank.pendingTOn, 0));
                    src.comraDelaySum = satAddT(src.comraDelaySum, gap);
                    if (src.minComraDelay < 0 ||
                        gap < src.minComraDelay)
                        src.minComraDelay = gap;
                }
                bank.pendingValid = false;
                bank.open = true;
                bank.openRows.assign(1, phys);
                bank.kind = OpenKind::ComraDst;
                bank.openedAt = cursor_;
                bank.comraDelay = gap;
                recordAct(inst.bank, phys, i);
                return;
            }

            dropPending(inst.bank, bank);
        }

        bank.open = true;
        bank.openRows.assign(1, phys);
        bank.kind = OpenKind::Normal;
        bank.openedAt = cursor_;
        recordAct(inst.bank, phys, i);
    }

    void
    pre(BankId b)
    {
        BankSt &bank = banks_[b];
        if (!bank.open)
            return;
        dropPending(b, bank);
        const Time t_on = cursor_ - bank.openedAt;
        bank.pendingValid = true;
        bank.pendingRows = bank.openRows;
        bank.pendingTOn = t_on;
        bank.pendingClosedAt = cursor_;
        bank.pendingOpenedAt = bank.openedAt;
        bank.pendingKind = bank.kind;
        bank.pendingComraDelay = bank.comraDelay;
        // Non-conventional closes can never reclassify (a SiMRA group
        // pending is multi-row; a CoMRA dst pending re-copying is
        // still one Comra close), so count them immediately.
        bank.pendingRecorded = bank.kind != OpenKind::Normal;
        if (bank.pendingRecorded)
            recordOpenClose(b, bank, t_on);
        bank.open = false;
    }

    void
    step(std::size_t i)
    {
        const Inst &inst = program_.insts()[i];
        cursor_ = satAddT(cursor_, std::max<Time>(inst.gap, 0));
        switch (inst.op) {
          case Op::Act:
            act(i, inst);
            break;
          case Op::Pre:
            if (inst.bank < cfg_.banks)
                pre(inst.bank);
            break;
          case Op::PreAll:
            for (BankId b = 0; b < cfg_.banks; ++b)
                pre(b);
            break;
          case Op::Ref: {
            out_.totalRefs = satAddU(out_.totalRefs, 1);
            if (lastRefAt_ >= 0) {
                const Time gap = cursor_ - lastRefAt_;
                if (gap > out_.maxRefGap) {
                    out_.maxRefGap = gap;
                    out_.maxRefGapIndex = i;
                }
            }
            if (out_.firstRefAt < 0)
                out_.firstRefAt = cursor_;
            lastRefAt_ = cursor_;
            for (BankId b = 0; b < cfg_.banks; ++b)
                dropPending(b, banks_[b]);
            // Pending closes flushed above belong to the epoch this
            // REF ends; fold it now and open the next one.
            foldEpochs();
            if (trace_ != nullptr)
                recordRefPoints(i);
            break;
          }
          case Op::Rd:
          case Op::Wr:
          case Op::Nop:
          case Op::LoopBegin:
          case Op::LoopEnd:
            break;
        }
    }

    /** Close the current refresh epoch on every row. */
    void
    foldEpochs()
    {
        for (auto &[key, ra] : out_.rows) {
            for (int c = 0; c < 3; ++c) {
                ra.maxEpochCloses[c] = std::max(ra.maxEpochCloses[c],
                                                ra.epochCloses[c]);
                ra.epochCloses[c] = 0;
            }
        }
    }

    /** Snapshot every bank's abstract sampler window at a REF. */
    void
    recordRefPoints(std::size_t i)
    {
        for (BankId b = 0; b < cfg_.banks; ++b) {
            if (trace_->refs.size() >= kMaxSamplerRefPoints) {
                trace_->truncated = true;
                return;
            }
            SamplerRefPoint rp;
            rp.instIndex = i;
            rp.bank = b;
            rp.fillLo = rings_[b].size();
            rp.exact = taint_[b].empty();
            for (RowId r : rings_[b])
                ++rp.window[r];
            for (RowId r : taint_[b])
                rp.window.emplace(r, 0);
            trace_->refs.push_back(std::move(rp));
        }
    }

    void
    finish()
    {
        for (BankId b = 0; b < cfg_.banks; ++b) {
            BankSt &bank = banks_[b];
            if (bank.open) {
                // The row will disturb its neighbours whenever it is
                // eventually closed; count that close now.
                recordOpenClose(b, bank, cursor_ - bank.openedAt);
                bank.open = false;
            }
            dropPending(b, bank);
        }
        // The trailing (REF-less) stretch is an epoch too.
        foldEpochs();
    }

    static constexpr std::size_t npos = static_cast<std::size_t>(-1);

    const Program &program_;
    const dram::DeviceConfig &cfg_;
    dram::RowMapping mapping_;
    dram::SimraDecoder decoder_;
    ProgramEffects &out_;
    SamplerTrace *trace_;
    std::vector<BankSt> banks_;
    std::map<std::uint64_t, Time> lastActAt_;
    Time cursor_ = 0;
    Time lastRefAt_ = -1;

    // Sampler trace state (only sized when trace_ != nullptr).
    std::vector<std::deque<RowId>> rings_;
    std::vector<std::vector<RowId>> pushLogs_;
    std::vector<std::set<RowId>> taint_;
};

} // namespace

const RowActivity *
findRow(const ProgramEffects &fx, dram::BankId bank, dram::RowId phys)
{
    const auto it = fx.rows.find(rowKey(bank, phys));
    return it == fx.rows.end() ? nullptr : &it->second;
}

ProgramEffects
summarizeEffects(const bender::Program &program,
                 const dram::DeviceConfig &cfg, SamplerTrace *trace)
{
    ProgramEffects fx;
    AbsWalker(program, cfg, fx, trace).run();
    return fx;
}

ProgramEffects
summarizeEffects(const bender::Program &program,
                 const dram::DeviceConfig &cfg)
{
    return summarizeEffects(program, cfg, nullptr);
}

} // namespace pud::lint
