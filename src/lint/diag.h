/**
 * @file
 * Diagnostic vocabulary of the bender-program static analyzer.
 *
 * Every finding is a Diag: a stable machine-readable code, a fixed
 * severity, the instruction it anchors to, and a human-readable
 * message.  The severity taxonomy is deliberate:
 *
 *  - Error:   the program will fatal() inside the executor or device,
 *             or silently read garbage (protocol violations, bad data
 *             indices, unbalanced loops).  Pre-flight checks refuse to
 *             run these.
 *  - Warning: the program runs, but something is *suspicious* -- most
 *             importantly a timing-parameter violation that matches no
 *             PuD idiom (an accidental sub-tRP gap corrupts HC_first
 *             sweeps without any error at execution time).
 *  - Note:    explanatory findings: a violated timing that matches the
 *             CoMRA/SiMRA signature (i.e. is *intended*), or why a hot
 *             loop will / will not take the executor fast-path.
 */

#ifndef PUD_LINT_DIAG_H
#define PUD_LINT_DIAG_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/units.h"

namespace pud::lint {

/** Diagnostic severity; fixed per code (see severityOf). */
enum class Severity : std::uint8_t
{
    Note,
    Warning,
    Error,
};

/** Stable diagnostic codes (names are part of the CLI/JSON surface). */
enum class Code : std::uint8_t
{
    // ---- loop structure --------------------------------------------------
    UnbalancedLoop,       //!< LoopBegin without a matching LoopEnd
    EmptyLoop,            //!< loop body contains no instructions
    ZeroTripLoop,         //!< trip count 0: the body never executes
    FastPathEligible,     //!< hot loop will be replayed arithmetically
    FastPathIneligible,   //!< hot loop must run naively (with reason)

    // ---- per-bank DDR protocol -------------------------------------------
    BankOutOfRange,       //!< command targets a nonexistent bank
    RowOutOfRange,        //!< ACT targets a nonexistent row
    ActWhileOpen,         //!< ACT on a bank with an open row (no PRE)
    RdOnClosedBank,       //!< RD with no open row
    WrOnClosedBank,       //!< WR with no open row
    PreOnIdleBank,        //!< PRE on an already-precharged bank (no-op)
    RefWithOpenBank,      //!< REF while a bank has an open row
    NegativeGap,          //!< command time would go backwards
    OpenBankAtEnd,        //!< program ends with a row still open

    // ---- data table -------------------------------------------------------
    WrBadDataIndex,       //!< Wr.dataIndex outside the data table
    WrWidthMismatch,      //!< data entry width != device row width

    // ---- timing classifier -------------------------------------------------
    IntendedComra,        //!< violated tRP matching the CoMRA signature
    IntendedSimra,        //!< violated tRAS+tRP matching SiMRA
    SimraUnsupported,     //!< SiMRA signature on a chip that ignores it
    SuspiciousPreToAct,   //!< sub-tRP gap matching no PuD idiom
    SuspiciousActToPre,   //!< sub-tRAS on-time matching no PuD idiom
    SuspiciousActToAct,   //!< sub-tRC ACT spacing (custom timing sets)
    ColumnBeforeTrcd,     //!< RD/WR earlier than tRCD after ACT
    RefRecoveryShort,     //!< command earlier than tRFC after REF
    RefreshWindowExceeded,//!< runs past tREFW without a single REF
    RefreshCadenceSparse, //!< REFs present but too sparse for tREFW

    // ---- static effect prediction (absint + effects) ----------------------
    DisturbanceLikely,    //!< a victim row can plausibly flip
    DisturbanceImpossible,//!< a hammer-grade sweep that cannot flip bits

    // ---- row-state dataflow (dataflow.h) -----------------------------------
    DfReadBeforeWrite,    //!< RD of a row the program never wrote
    DfReadUndefined,      //!< RD of a charge-shared/clobbered row
    DfDeadWrite,          //!< staged value overwritten before any read
    DfControlRowClobber,  //!< boundary write stranded across a subarray
    DfAggressorAsData,    //!< hammer-blast-radius row consumed as data
    DfGroupCrossesSubarray,//!< SiMRA group spans a subarray boundary
    DfGroupOverlap,       //!< SiMRA group swallows its own operand row
    DfMajorityUninitInput,//!< merge mixes staged and never-written rows
    DfMajorityTie,        //!< replication weights admit a bitline tie

    // ---- mitigation bypass certifier (mitigation_absint.h) -----------------
    MitBypassCertain,     //!< every enabled mitigation provably inert
    MitBypassPossible,    //!< no mitigation provably stops this victim
    MitMitigatedCertain,  //!< some mitigation provably prevents flips
    MitTrrSamplerStarved, //!< TRR draws diluted by non-adjacent ACTs
    MitAboThresholdSkirted,//!< PRAC never alerts under flip-grade load

    DiagFlood,            //!< repeats of one code capped ("and N more")
};

/** Machine-readable name of a code (stable CLI/JSON surface). */
const char *name(Code code);

/** Lowercase severity name. */
const char *name(Severity severity);

/** The fixed severity of a code. */
Severity severityOf(Code code);

/** True for the Df* row-state dataflow code family (dataflow.h). */
inline bool
isDataflowCode(Code code)
{
    return code >= Code::DfReadBeforeWrite &&
           code <= Code::DfMajorityTie;
}

/** True for the Mit* mitigation code family (mitigation_absint.h). */
inline bool
isMitigationCode(Code code)
{
    return code >= Code::MitBypassCertain &&
           code <= Code::MitAboThresholdSkirted;
}

/** One finding of the analyzer. */
struct Diag
{
    Code code;
    Severity severity;
    std::size_t instIndex;  //!< anchor instruction in Program::insts()
    std::string message;
};

/** Everything one lint pass produces. */
struct LintResult
{
    std::vector<Diag> diags;

    /** Exact program duration, loop trip counts included. */
    Time duration = 0;

    /**
     * Diagnostics hidden by the per-code flood cap (each capped code
     * carries one DiagFlood note naming its suppressed count).
     */
    std::size_t suppressed = 0;

    /**
     * Flood-suppressed diagnostics by severity (indexed by the
     * Severity enum): suppression hides repeats from the listing but
     * must not hide them from the run summary or from --werror exit
     * decisions, so the capped counts stay visible here.
     */
    std::size_t suppressedBySeverity[3] = {0, 0, 0};

    /** Visible (listed) findings of one severity. */
    std::size_t
    count(Severity severity) const
    {
        std::size_t n = 0;
        for (const Diag &d : diags)
            n += d.severity == severity;
        return n;
    }

    /** Findings of one severity including flood-suppressed repeats. */
    std::size_t
    totalCount(Severity severity) const
    {
        return count(severity) +
               suppressedBySeverity[static_cast<std::size_t>(severity)];
    }

    /** No error-severity findings (warnings/notes allowed). */
    bool clean() const { return totalCount(Severity::Error) == 0; }
};

} // namespace pud::lint

#endif // PUD_LINT_DIAG_H
