#include "lint/mitigation_absint.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "dram/disturb.h"

namespace pud::lint {

namespace {

using dram::BankId;
using dram::RowId;
using dram::TechClass;

std::string
format(const char *fmt, ...)
{
    char buf[512];
    va_list args;
    va_start(args, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, args);
    va_end(args);
    return buf;
}

double
anchorMin(const dram::FamilyProfile &p, TechClass cls)
{
    switch (cls) {
      case TechClass::Conventional: return p.rhMin;
      case TechClass::Comra:        return p.comraMin;
      case TechClass::Simra:        return p.simraMin;
    }
    return 0;
}

/** One acted row of one bank, with its summary. */
struct ActedRow
{
    RowId row;
    const RowActivity *activity;
    std::uint64_t pracWeighted;  //!< exact final PRAC counter value
};

/** Per-victim proof context shared by the per-mitigation certifiers. */
struct VictimCtx
{
    BankId bank;
    RowId row;
    RowId subarray;
    dram::Region region;

    /** Acted rows of the victim's bank (all of them). */
    const std::vector<ActedRow> *banked;

    /** Sampler ref points of the victim's bank (nullptr: no trace). */
    const std::vector<const SamplerRefPoint *> *refs;
};

/** Per-mitigation judgement with the figure backing a Certain claim. */
struct Judgement
{
    MitVerdict verdict = MitVerdict::BypassPossible;

    /** Worst-case inter-refresh damage behind a MitigatedCertain. */
    double interRefreshDamage = 0;
};

std::int64_t
rowDistance(RowId a, RowId b)
{
    return std::llabs(static_cast<std::int64_t>(a) -
                      static_cast<std::int64_t>(b));
}

/**
 * Mitigation-triggered refreshes land on the trigger row and/or its
 * +-1 neighbours.  A trigger row at distance >= 4 therefore only
 * refreshes rows at distance >= 3 from the victim -- outside the
 * v-2..v+2 band whose charge/lastSide state feeds the victim's damage
 * trajectory -- so it cannot perturb bit-identity with the
 * unmitigated run.
 */
constexpr std::int64_t kInertTriggerDistance = 4;

/**
 * Upper bound on the damage ONE close of class `cls` of aggressor
 * `a` deposits on the victim, at adjacency weight `w`.
 *
 * Sound because every per-close gain is monotone in its timing
 * parameter (pressGain grows with on-time, comraDelayGain falls with
 * the copy delay, simraTimingGain grows with both gaps), so folding
 * the summary's per-row *extremes* -- largest single-close on-time,
 * smallest CoMRA delay, largest SiMRA gaps -- dominates every
 * individual close even when the program mixes timings.  Sidedness is
 * pinned to double (>= any real side strength) and the anchor to the
 * family minimum halved (weaker than any drawable cell).
 */
double
perCloseMaxDamage(const dram::DeviceConfig &cfg, const RowActivity &a,
                  TechClass cls, double w, dram::Region region)
{
    const auto c = static_cast<int>(cls);
    if (a.closes[c] == 0)
        return 0;
    const double amin = anchorMin(cfg.profile, cls);
    if (amin <= 0)
        return 0;  // family cannot flip via this class

    dram::AggregateExposure e;
    e.cls = cls;
    e.simraN = a.simraN;
    e.weightedCloses = w;
    e.tOn = a.maxOnTime[c];
    if (cls == TechClass::Comra && a.minComraDelay >= 0)
        e.comraDelay = a.minComraDelay;
    if (cls == TechClass::Simra) {
        e.simraActToPre = a.maxSimraActToPre;
        e.simraPreToAct = a.maxSimraPreToAct;
    }
    e.doubleSided = true;
    e.region = region;
    e.temperature = cfg.temperature;
    return dram::foldThreshold(cfg, e, amin / 2.0);
}

/** Max over technique classes of the per-close damage bound. */
double
perCloseMaxDamage(const dram::DeviceConfig &cfg, const RowActivity &a,
                  double w, dram::Region region)
{
    double worst = 0;
    for (int c = 0; c < 3; ++c)
        worst = std::max(
            worst, perCloseMaxDamage(cfg, a, static_cast<TechClass>(c),
                                     w, region));
    return worst;
}

/**
 * The victim's distance-1 aggressors, *if* its whole damage-relevant
 * neighbourhood is adjacent: nullopt-like empty + false when any
 * same-subarray acted row sits at distance 2.  Distance-2 aggressors
 * deposit damage on the victim but their trigger refreshes (row +-1)
 * never reach it, so no trigger-driven mitigation can bound their
 * contribution -- both PRAC and Graphene MitigatedCertain proofs
 * require the neighbourhood to be adjacent-only.
 */
bool
adjacentOnlyAggressors(const VictimCtx &v,
                       const dram::DeviceConfig &cfg,
                       std::vector<const ActedRow *> &adj)
{
    adj.clear();
    for (const ActedRow &ar : *v.banked) {
        if (ar.activity->totalCloses() == 0)
            continue;
        if (ar.row / cfg.rowsPerSubarray != v.subarray)
            continue;  // sense-amp isolation: no damage reaches v
        const std::int64_t d = rowDistance(ar.row, v.row);
        if (d > 2)
            continue;
        if (d != 1)
            return false;
        adj.push_back(&ar);
    }
    return true;
}

// ---- sampling TRR --------------------------------------------------------

/**
 * Abstract sampling-TRR transformer.  The concrete device draws one
 * uniformly random entry of the per-bank sampler ring at every REF
 * (when the ring is non-empty) and refreshes the drawn row's
 * same-subarray +-1 neighbours; the abstract window at each REF is a
 * superset of the real ring contents (absint.h), so:
 *
 *  - BypassCertain: no REFs at all, or every window row of every ref
 *    point in the victim's bank is an inert trigger (distance >= 4)
 *    -- whatever the RNG draws, the refresh never lands in v-2..v+2.
 *  - MitigatedCertain: at every ref point in the victim's bank the
 *    ring is provably non-empty (fillLo > 0) and *every* possible
 *    draw is a distance-1 same-subarray neighbour of the victim, so
 *    the draw refreshes the victim itself at every REF; the victim's
 *    damage then resets each REF and its worst accrual between REFs
 *    is bounded by the per-epoch close maxima folded through the
 *    per-close damage bound.
 */
Judgement
judgeTrr(const VictimCtx &v, const dram::DeviceConfig &cfg,
         const ProgramEffects &fx, bool sound)
{
    Judgement j;
    if (v.refs == nullptr || !sound)
        return j;
    if (fx.totalRefs == 0) {
        j.verdict = MitVerdict::BypassCertain;
        return j;
    }

    bool inert = true;
    bool must_refresh_victim = !v.refs->empty();
    for (const SamplerRefPoint *rp : *v.refs) {
        if (rp->fillLo == 0)
            must_refresh_victim = false;
        for (const auto &[row, count] : rp->window) {
            if (rowDistance(row, v.row) < kInertTriggerDistance)
                inert = false;
            if (rowDistance(row, v.row) != 1 ||
                row / cfg.rowsPerSubarray != v.subarray)
                must_refresh_victim = false;
        }
        if (!inert && !must_refresh_victim)
            break;
    }
    if (inert) {
        j.verdict = MitVerdict::BypassCertain;
        return j;
    }
    if (!must_refresh_victim)
        return j;

    // Victim refreshed at every REF: bound one epoch's damage using
    // every acted row in the blast radius (activated rows age out of
    // the window but their closes still deposit).
    double epoch = 0;
    for (const ActedRow &ar : *v.banked) {
        if (ar.row / cfg.rowsPerSubarray != v.subarray)
            continue;
        const std::int64_t d = rowDistance(ar.row, v.row);
        if (d == 0 || d > 2)
            continue;
        const double w = d == 1 ? 1.0 : cfg.distance2Weight;
        for (int c = 0; c < 3; ++c)
            epoch += static_cast<double>(
                         ar.activity->maxEpochCloses[c]) *
                     perCloseMaxDamage(cfg, *ar.activity,
                                       static_cast<TechClass>(c), w,
                                       v.region);
    }
    if (epoch < 1.0) {
        j.verdict = MitVerdict::MitigatedCertain;
        j.interRefreshDamage = epoch;
    }
    return j;
}

// ---- PRAC ----------------------------------------------------------------

/**
 * Abstract PRAC transformer.  The summary's per-row close totals give
 * the *exact* final counter of every row (pracWeightedCloses shares
 * its weight table with PracCounters via mitsem.h); drains reset
 * counters, so a row whose whole-program weighted total stays below
 * the RDT can never assert back-off, and with victimsPerRfm == 1
 * every drained row had a counter >= RDT at drain time:
 *
 *  - BypassCertain: no row of the victim's bank can ever be drained
 *    within trigger distance (drain refreshes the row and its +-1
 *    neighbours).
 *  - MitigatedCertain: the victim's damage-relevant neighbourhood is
 *    adjacent-only, so every aggressor's drain refreshes the victim
 *    (drain-until-clear discipline: the crossing row is always
 *    drained inside the close that crossed); between consecutive
 *    victim refreshes each adjacent aggressor fits at most
 *    pracMaxClosesPerAlert closes of its cheapest class.
 */
Judgement
judgePrac(const VictimCtx &v, const dram::DeviceConfig &cfg,
          const mitigation::PracConfig &pc, bool sound)
{
    Judgement j;
    if (!sound)
        return j;

    bool any_hot = false;
    bool inert = true;
    for (const ActedRow &ar : *v.banked) {
        const bool hot = ar.pracWeighted >= pc.rdt;
        any_hot |= hot;
        // Drained rows always have non-zero counters; with one victim
        // per RFM the drained row is the bank maximum, itself >= RDT.
        const bool drainable = pc.victimsPerRfm == 1 ? hot : true;
        if (drainable &&
            rowDistance(ar.row, v.row) < kInertTriggerDistance)
            inert = false;
    }
    if (!any_hot || inert) {
        j.verdict = MitVerdict::BypassCertain;
        return j;
    }

    std::vector<const ActedRow *> adj;
    if (!adjacentOnlyAggressors(v, cfg, adj) || adj.empty())
        return j;
    double inter = 0;
    for (const ActedRow *ar : adj) {
        std::uint64_t per_alert = 0;
        for (int c = 0; c < 3; ++c)
            if (ar->activity->closes[c] > 0)
                per_alert = std::max(
                    per_alert,
                    mitigation::pracMaxClosesPerAlert(
                        pc, static_cast<TechClass>(c)));
        inter += static_cast<double>(per_alert) *
                 perCloseMaxDamage(cfg, *ar->activity, 1.0, v.region);
    }
    if (inter < 1.0) {
        j.verdict = MitVerdict::MitigatedCertain;
        j.interRefreshDamage = inter;
    }
    return j;
}

// ---- PARA ----------------------------------------------------------------

/**
 * Abstract PARA transformer: a Bernoulli coin per close.  With
 * p == 0 the mitigation is provably inert; with any p > 0 it can both
 * fire (perturbing bit-identity -- aggressors sit within distance 2,
 * so a fire always lands in the victim's band) and miss every draw
 * (miss probability (1-p)^closes > 0), so neither Certain verdict is
 * ever available.
 */
Judgement
judgePara(const mitigation::ParaConfig &pc)
{
    Judgement j;
    if (pc.probability <= 0)
        j.verdict = MitVerdict::BypassCertain;
    return j;
}

// ---- Graphene ------------------------------------------------------------

/**
 * Abstract Graphene transformer.  A Misra-Gries estimate never
 * exceeds the true close count, so a row whose whole-program closes
 * stay below the threshold can never trigger; and when the distinct
 * closed rows of a bank fit the table the estimates are *exact*
 * (mitsem.h), so an adjacent aggressor is guaranteed to trigger -- and
 * refresh the victim -- within every `threshold` closes.
 */
Judgement
judgeGraphene(const VictimCtx &v, const dram::DeviceConfig &cfg,
              const mitigation::GrapheneConfig &gc, bool sound)
{
    Judgement j;
    if (!sound)
        return j;

    bool inert = true;
    std::size_t distinct = 0;
    for (const ActedRow &ar : *v.banked) {
        if (ar.activity->totalCloses() == 0)
            continue;
        ++distinct;
        if (ar.activity->totalCloses() >= gc.threshold &&
            rowDistance(ar.row, v.row) < kInertTriggerDistance)
            inert = false;
    }
    if (inert) {
        j.verdict = MitVerdict::BypassCertain;
        return j;
    }

    std::vector<const ActedRow *> adj;
    if (!mitigation::grapheneCountsExact(gc, distinct) ||
        !adjacentOnlyAggressors(v, cfg, adj) || adj.empty())
        return j;
    double inter = 0;
    for (const ActedRow *ar : adj)
        inter += static_cast<double>(gc.threshold) *
                 perCloseMaxDamage(cfg, *ar->activity, 1.0, v.region);
    if (inter < 1.0) {
        j.verdict = MitVerdict::MitigatedCertain;
        j.interRefreshDamage = inter;
    }
    return j;
}

} // namespace

std::vector<Diag>
analyzeMitigations(const dram::DeviceConfig &cfg,
                   const MitigationSpec &spec, const ProgramEffects &fx,
                   const SamplerTrace *trace, EffectReport &report)
{
    std::vector<Diag> diags;
    if (!spec.any())
        return diags;

    const dram::DisturbanceModel model(cfg);
    const bool trace_ok = trace != nullptr && !trace->truncated;
    // Inexact summaries under-count closes, so neither "never
    // triggers" nor "always refreshes" survives; every Certain
    // verdict degrades to Possible (never unsoundly Certain).
    const bool sound = fx.exact;

    // Per-bank acted-row tables with their exact final PRAC counters.
    std::vector<std::vector<ActedRow>> acted(cfg.banks);
    for (const auto &[key, activity] : fx.rows) {
        const auto bank = static_cast<BankId>(key >> 32);
        const auto row = static_cast<RowId>(key & 0xffffffffu);
        if (bank >= cfg.banks || activity.totalCloses() == 0)
            continue;
        acted[bank].push_back(
            {row, &activity,
             mitigation::pracWeightedCloses(spec.pracConfig,
                                            activity.closes)});
    }
    std::vector<std::vector<const SamplerRefPoint *>> refs(cfg.banks);
    if (trace != nullptr)
        for (const SamplerRefPoint &rp : trace->refs)
            if (rp.bank < cfg.banks)
                refs[rp.bank].push_back(&rp);

    bool prac_ever_alerts = false;
    std::uint64_t prac_hottest = 0;
    for (const auto &rows : acted)
        for (const ActedRow &ar : rows) {
            prac_hottest = std::max(prac_hottest, ar.pracWeighted);
            prac_ever_alerts |= ar.pracWeighted >= spec.pracConfig.rdt;
        }

    std::string enabled;
    for (const char *n : {spec.trr ? "TRR" : nullptr,
                          spec.prac ? "PRAC" : nullptr,
                          spec.para ? "PARA" : nullptr,
                          spec.graphene ? "Graphene" : nullptr})
        if (n != nullptr)
            enabled += enabled.empty() ? n : (std::string(", ") + n);

    const VictimPrediction *first_likely = nullptr;
    for (VictimPrediction &vp : report.victims) {
        VictimCtx v;
        v.bank = vp.bank;
        v.row = vp.victimPhys;
        v.subarray = vp.victimPhys / cfg.rowsPerSubarray;
        v.region = model.regionOf(vp.victimPhys);
        v.banked = &acted[vp.bank];
        v.refs = spec.trr && trace_ok ? &refs[vp.bank] : nullptr;

        // Per-mitigation judgements; disabled mitigations are simply
        // absent from the meet.
        std::vector<Judgement> js;
        const char *certifier = nullptr;
        double certified_damage = 0;
        auto add = [&](const char *name, Judgement jd) {
            if (jd.verdict == MitVerdict::MitigatedCertain &&
                certifier == nullptr) {
                certifier = name;
                certified_damage = jd.interRefreshDamage;
            }
            js.push_back(jd);
        };
        if (spec.trr)
            add("TRR", judgeTrr(v, cfg, fx, sound && trace_ok));
        if (spec.prac)
            add("PRAC", judgePrac(v, cfg, spec.pracConfig, sound));
        if (spec.para)
            add("PARA", judgePara(spec.paraConfig));
        if (spec.graphene)
            add("Graphene",
                judgeGraphene(v, cfg, spec.grapheneConfig, sound));

        // Combined verdict: one certain mitigation suffices to stop
        // the flips; a certain bypass needs *every* enabled mechanism
        // provably inert.
        bool any_mitigated = false, all_bypassed = !js.empty();
        for (const Judgement &jd : js) {
            any_mitigated |= jd.verdict == MitVerdict::MitigatedCertain;
            all_bypassed &= jd.verdict == MitVerdict::BypassCertain;
        }
        vp.mitVerdict = any_mitigated ? MitVerdict::MitigatedCertain
                        : all_bypassed ? MitVerdict::BypassCertain
                                       : MitVerdict::BypassPossible;
        vp.bypassHcFirstLowerBound =
            vp.optimisticDamage > 0
                ? vp.weightedCloses / vp.optimisticDamage
                : 0;

        // Diagnostics only where mitigation matters: victims the
        // effect predictor already ruled Likely.
        if (vp.verdict != Verdict::Likely)
            continue;
        if (first_likely == nullptr)
            first_likely = &vp;

        switch (vp.mitVerdict) {
          case MitVerdict::MitigatedCertain:
            diags.push_back(
                {Code::MitMitigatedCertain,
                 severityOf(Code::MitMitigatedCertain), vp.anchorIndex,
                 format("victim physical row %u (bank %u): %s provably "
                        "refreshes it before damage accrues -- worst "
                        "inter-refresh damage %.3g of the flip "
                        "threshold; no bitflips under the enabled "
                        "mitigations (%s)",
                        vp.victimPhys, vp.bank,
                        certifier != nullptr ? certifier : "?",
                        certified_damage, enabled.c_str())});
            break;
          case MitVerdict::BypassCertain:
            diags.push_back(
                {Code::MitBypassCertain,
                 severityOf(Code::MitBypassCertain), vp.anchorIndex,
                 format("victim physical row %u (bank %u): every "
                        "enabled mitigation (%s) is provably inert "
                        "within distance %lld -- the %.0f weighted "
                        "closes land unmitigated (static bypass "
                        "HC_first lower bound: %.0f weighted closes)",
                        vp.victimPhys, vp.bank, enabled.c_str(),
                        static_cast<long long>(kInertTriggerDistance) -
                            1,
                        vp.weightedCloses,
                        vp.bypassHcFirstLowerBound)});
            break;
          case MitVerdict::BypassPossible:
          case MitVerdict::NotEvaluated: {
            std::string why;
            if (!fx.exact)
                why = "; summary is a lower bound (unbalanced loop)";
            else if (spec.trr && !trace_ok)
                why = "; sampler trace unavailable or truncated";
            else if (spec.para && spec.paraConfig.probability > 0)
                why = format("; PARA miss probability %.3g over the "
                             "victim's exposure",
                             mitigation::paraMissProbability(
                                 spec.paraConfig,
                                 static_cast<std::uint64_t>(
                                     vp.weightedCloses)));
            diags.push_back(
                {Code::MitBypassPossible,
                 severityOf(Code::MitBypassPossible), vp.anchorIndex,
                 format("victim physical row %u (bank %u): no enabled "
                        "mitigation (%s) provably stops it, and the "
                        "bypass is not certain either%s",
                        vp.victimPhys, vp.bank, enabled.c_str(),
                        why.c_str())});
            break;
          }
        }

        // U-TRR-style decoy dilution: the victim can flip, TRR is on
        // and not certainly stopping it, and the exactly-known
        // sampler windows hold mostly non-adjacent rows, so the draw
        // rarely protects this victim.
        if (spec.trr && trace_ok &&
            vp.mitVerdict != MitVerdict::MitigatedCertain) {
            std::uint64_t fill_sum = 0, adj_sum = 0;
            for (const SamplerRefPoint *rp : refs[vp.bank]) {
                if (!rp->exact)
                    continue;
                for (const auto &[row, count] : rp->window) {
                    fill_sum += count;
                    if (rowDistance(row, vp.victimPhys) == 1)
                        adj_sum += count;
                }
            }
            if (fill_sum >= 64 && adj_sum * 2 <= fill_sum)
                diags.push_back(
                    {Code::MitTrrSamplerStarved,
                     severityOf(Code::MitTrrSamplerStarved),
                     vp.anchorIndex,
                     format("victim physical row %u (bank %u): TRR "
                            "sampler windows hold the victim's "
                            "aggressors in only %.1f%% of %llu "
                            "sampled slots -- decoy activations "
                            "starve the protective draw",
                            vp.victimPhys, vp.bank,
                            100.0 * static_cast<double>(adj_sum) /
                                static_cast<double>(fill_sum),
                            static_cast<unsigned long long>(
                                fill_sum))});
        }
    }

    // A hammer-grade program that keeps every PRAC counter below the
    // RDT is skirting the alert threshold by construction.
    if (spec.prac && sound && !prac_ever_alerts &&
        first_likely != nullptr)
        diags.push_back(
            {Code::MitAboThresholdSkirted,
             severityOf(Code::MitAboThresholdSkirted),
             first_likely->anchorIndex,
             format("flip-grade sweep never asserts PRAC back-off: "
                    "hottest weighted activation counter reaches %llu "
                    "of the %u RDT -- the ABO threshold is being "
                    "skirted",
                    static_cast<unsigned long long>(prac_hottest),
                    spec.pracConfig.rdt)});

    return diags;
}

} // namespace pud::lint
