#include "check/diffcheck.h"

#include <cstdio>
#include <optional>
#include <vector>

#include "bender/host.h"
#include "lint/dataflow.h"
#include "lint/linter.h"
#include "mitigation/countermeasures.h"
#include "util/rng.h"
#include "util/units.h"

namespace pud::check {

namespace {

using bender::Program;
using dram::BankId;
using dram::ColId;
using dram::RowData;
using dram::RowId;
using dram::SubarrayId;
using lint::DataflowResult;
using lint::MergeInput;
using lint::MergeRecord;
using lint::RowState;
using lint::RowStateKind;

/** The whole bench lives in one bank; see the header comment. */
constexpr dram::BankId kBank = 0;

/** Recursive-resolution guard for pathological merge nests. */
constexpr int kResolveDepthCap = 8;

dram::DeviceConfig
benchConfig(std::uint64_t seed)
{
    dram::DeviceConfig cfg = dram::makeConfig("HMA81GU7AFR8N-UH", seed);
    cfg.banks = 1;
    cfg.subarraysPerBank = 2;
    cfg.rowsPerSubarray = 64;
    cfg.cols = 64;
    // No weak cells: disturbance cannot blur data-movement semantics.
    cfg.weakCellsPerRow = 0;
    cfg.profile.mapping = dram::MappingScheme::Sequential;
    return cfg;
}

RowData
randomRow(Rng &rng, ColId cols)
{
    RowData d(cols);
    for (ColId c = 0; c < cols; ++c)
        d.set(c, rng.chance(0.5));
    return d;
}

/**
 * Seeded program generator over the PuD idiom menu.  Every snippet is
 * protocol-clean in isolation and leaves the bank precharged, so any
 * concatenation is lint-clean (the executor pre-flight enforces it).
 */
class Generator
{
  public:
    Generator(Rng &rng, const dram::DeviceConfig &cfg)
        : rng_(rng), cfg_(cfg), t_(cfg.timings)
    {}

    Program
    build()
    {
        const int snippets = static_cast<int>(rng_.range(4, 9));
        for (int i = 0; i < snippets; ++i) {
            switch (rng_.below(9)) {
              case 0: writeRowSnippet(); break;
              case 1: copySnippet(); break;
              case 2: groupWriteSnippet(); break;
              case 3: majoritySnippet(/*tie_free=*/true); break;
              case 4: majoritySnippet(/*tie_free=*/false); break;
              case 5: trngSnippet(); break;
              case 6: readSnippet(); break;
              case 7: hammerSnippet(); break;
              case 8: loopedCopySnippet(); break;
            }
        }
        return std::move(p_);
    }

  private:
    RowId rps() const { return cfg_.rowsPerSubarray; }

    SubarrayId
    randSub()
    {
        return static_cast<SubarrayId>(
            rng_.below(static_cast<std::uint64_t>(
                cfg_.subarraysPerBank)));
    }

    RowId
    randRowIn(SubarrayId sub)
    {
        return sub * rps() +
               static_cast<RowId>(
                   rng_.below(static_cast<std::uint64_t>(rps())));
    }

    RowId randRow() { return randRowIn(randSub()); }

    /** A fresh or (sometimes) reused data-table entry. */
    int
    randData()
    {
        if (!dataIndices_.empty() && rng_.chance(0.3))
            return dataIndices_[rng_.below(dataIndices_.size())];
        const int idx = p_.addData(randomRow(rng_, cfg_.cols));
        dataIndices_.push_back(idx);
        return idx;
    }

    /** Full-restore open of src, reopen of dst in the CoMRA window. */
    void
    comra(RowId src, RowId dst)
    {
        p_.act(kBank, src, t_.tRC)
            .pre(kBank, t_.tRAS)
            .act(kBank, dst, units::fromNs(7.5))
            .pre(kBank, t_.tRAS);
    }

    /** ACT r1, early PRE, early ACT r2: opens the SiMRA group. */
    void
    simraOpen(RowId r1, RowId r2)
    {
        p_.act(kBank, r1, t_.tRC)
            .pre(kBank, units::fromNs(3))
            .act(kBank, r2, units::fromNs(3));
    }

    void
    writeRowSnippet()
    {
        p_.act(kBank, randRow(), t_.tRC)
            .wr(kBank, randData(), t_.tRCD)
            .pre(kBank, t_.tRAS);
    }

    void
    copySnippet()
    {
        const SubarrayId sub = randSub();
        const RowId src = randRowIn(sub);
        RowId dst = randRowIn(sub);
        if (dst == src)
            dst = sub * rps() + (src - sub * rps() + 1) % rps();
        comra(src, dst);
    }

    /** Aligned n-row decoder block in sub: [base, base + n). */
    RowId
    randBlock(SubarrayId sub, RowId n)
    {
        return sub * rps() +
               n * static_cast<RowId>(rng_.below(
                       static_cast<std::uint64_t>(rps() / n)));
    }

    void
    groupWriteSnippet()
    {
        static constexpr RowId kSizes[] = {2, 4, 8};
        const RowId n = kSizes[rng_.below(3)];
        const RowId base = randBlock(randSub(), n);
        simraOpen(base, base + n - 1);
        p_.wr(kBank, randData(), t_.tRCD).pre(kBank, t_.tRAS);
    }

    /**
     * Replicated MAJ over an 8-row group: operands staged from outside
     * the block with weights (3,3,2) (tie-free) or (4,4) (tie-able;
     * the checker skips verifying those rows).
     */
    void
    majoritySnippet(bool tie_free)
    {
        const SubarrayId sub = randSub();
        const RowId base = randBlock(sub, 8);
        const std::vector<int> weights =
            tie_free ? std::vector<int>{3, 3, 2}
                     : std::vector<int>{4, 4};
        RowId off = 0;
        for (const int w : weights) {
            RowId operand = randRowIn(sub);
            while (operand >= base && operand < base + 8)
                operand = randRowIn(sub);
            for (int i = 0; i < w; ++i)
                comra(operand, base + off++);
        }
        simraOpen(base, base + 7);
        p_.pre(kBank, t_.tRAS);
    }

    /** QUAC-TRNG: merge an unstaged block, read the entropy out. */
    void
    trngSnippet()
    {
        const RowId base = randBlock(randSub(), 8);
        simraOpen(base, base + 7);
        p_.rd(kBank, t_.tRCD).pre(kBank, t_.tRAS);
    }

    void
    readSnippet()
    {
        p_.act(kBank, randRow(), t_.tRC)
            .rd(kBank, t_.tRCD)
            .pre(kBank, t_.tRAS);
    }

    void
    hammerSnippet()
    {
        p_.loopBegin(static_cast<std::uint64_t>(rng_.range(50, 300)))
            .act(kBank, randRow(), t_.tRC)
            .pre(kBank, t_.tRAS)
            .loopEnd();
    }

    /** Copy under a loop: trips straddle the dataflow pass cap. */
    void
    loopedCopySnippet()
    {
        static constexpr std::uint64_t kTrips[] = {1, 2, 3, 17};
        const SubarrayId sub = randSub();
        const RowId src = randRowIn(sub);
        RowId dst = randRowIn(sub);
        if (dst == src)
            dst = sub * rps() + (src - sub * rps() + 1) % rps();
        p_.loopBegin(kTrips[rng_.below(4)]);
        comra(src, dst);
        p_.loopEnd();
    }

    Rng &rng_;
    const dram::DeviceConfig &cfg_;
    const dram::TimingParams &t_;
    Program p_;
    std::vector<int> dataIndices_;
};

/**
 * Resolve an abstract row value to concrete bits, or nullopt when the
 * analysis makes no bit-exact claim (ChargeShared, Clobbered, Unknown,
 * tie-able merges).  `initial` is the pre-program contents snapshot;
 * CopyOf refers to it by construction (copy chains resolve to their
 * original source, and sources overwritten *later* do not retroact).
 */
std::optional<RowData>
resolveValue(const RowState &st, const DataflowResult &df,
             const Program &program, const std::vector<RowData> &initial,
             int depth)
{
    if (depth > kResolveDepthCap)
        return std::nullopt;
    switch (st.kind) {
      case RowStateKind::Written:
        return program.dataTable()[static_cast<std::size_t>(
            st.dataIndex)];
      case RowStateKind::CopyOf:
        return initial[static_cast<std::size_t>(st.srcKey &
                                                0xffffffffULL)];
      case RowStateKind::MajorityOf: {
        const MergeRecord &m =
            df.merges[static_cast<std::size_t>(st.mergeId)];
        if (m.tieable)
            return std::nullopt;
        const ColId cols = initial.front().bits();
        std::vector<int> ones(static_cast<std::size_t>(cols), 0);
        for (const MergeInput &in : m.inputs) {
            const std::optional<RowData> v = resolveValue(
                in.value, df, program, initial, depth + 1);
            if (!v)
                return std::nullopt;
            for (ColId c = 0; c < cols; ++c)
                ones[static_cast<std::size_t>(c)] +=
                    in.weight * v->get(c);
        }
        RowData out(cols);
        for (ColId c = 0; c < cols; ++c)
            out.set(c,
                    2 * ones[static_cast<std::size_t>(c)] > m.groupSize);
        return out;
      }
      case RowStateKind::Initial:
        // Canonicalized to CopyOf(self) everywhere a value escapes;
        // seeing it here would be a dataflow bug -- refuse the claim.
        return std::nullopt;
      case RowStateKind::ChargeShared:
      case RowStateKind::Clobbered:
      case RowStateKind::Unknown:
        return std::nullopt;
    }
    return std::nullopt;
}

void
recordMismatch(DiffCheckStats &stats, std::uint64_t seed, RowId phys,
               const RowState *st, std::size_t diff_bits)
{
    ++stats.mismatches;
    if (!stats.firstMismatch.empty())
        return;
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "seed %llu: bank %u row %u: lint proves %s but the "
                  "device disagrees in %zu bit(s)",
                  static_cast<unsigned long long>(seed),
                  static_cast<unsigned>(kBank),
                  static_cast<unsigned>(phys),
                  st ? lint::name(st->kind) : "initial", diff_bits);
    stats.firstMismatch = buf;
}

void
checkOneSeed(std::uint64_t seed, DiffCheckStats &stats)
{
    Rng rng(seed);
    dram::DeviceConfig cfg = benchConfig(seed);
    // Exercise the ignored-command path: unsupported chips leave the
    // first row open with its original activation time, on both the
    // device and the dataflow side.
    if (rng.chance(0.2))
        cfg.profile.supportsSimra = false;

    bender::TestBench bench(cfg);
    // The pre-flight is the lint-rejection half of the contract: the
    // generator promises lint-clean programs, and requireClean fatals
    // on any error-severity finding before the device sees it.
    bench.executor().setPreflight(true);

    const RowId rows = cfg.rowsPerBank();
    std::vector<RowData> initial;
    initial.reserve(static_cast<std::size_t>(rows));
    for (RowId r = 0; r < rows; ++r) {
        initial.push_back(randomRow(rng, cfg.cols));
        bench.writeRow(kBank, r, initial.back());
    }

    Generator gen(rng, cfg);
    const Program program = gen.build();
    bench.run(program);

    const DataflowResult df = lint::analyzeDataflow(program, cfg);

    ++stats.programs;
    stats.instructions += program.insts().size();
    stats.merges += df.merges.size();
    for (const bender::Inst &inst : program.insts())
        stats.loops += inst.op == bender::Op::LoopBegin;

    for (RowId phys = 0; phys < rows; ++phys) {
        const RowState *st = df.find(kBank, phys);
        std::optional<RowData> expect;
        if (st == nullptr || st->kind == RowStateKind::Initial)
            expect = initial[static_cast<std::size_t>(phys)];
        else
            expect = resolveValue(*st, df, program, initial, 0);
        if (!expect) {
            ++stats.rowsUnverifiable;
            continue;
        }
        const RowData got = bench.readRow(kBank, phys);
        if (got == *expect)
            ++stats.rowsVerified;
        else
            recordMismatch(stats, seed, phys, st,
                           got.diffCount(*expect));
    }
}

// ===================================================================
// Mitigation soundness mode (DiffCheckConfig::mitigation != None).
// ===================================================================

/**
 * Bench shape for the certifier mode: same tiny geometry as the
 * dataflow mode, but with weak cells present and the family threshold
 * anchors scaled down so a few hundred ACT/PRE cycles straddle the
 * flip threshold -- otherwise no generated program could ever flip a
 * bit and the Certain verdicts would be asserted against nothing.
 */
dram::DeviceConfig
mitigationBenchConfig(std::uint64_t seed)
{
    dram::DeviceConfig cfg = dram::makeConfig("HMA81GU7AFR8N-UH", seed);
    cfg.banks = 1;
    cfg.subarraysPerBank = 2;
    cfg.rowsPerSubarray = 64;
    cfg.cols = 64;
    cfg.weakCellsPerRow = 4;
    cfg.profile.mapping = dram::MappingScheme::Sequential;
    // Down-scaled Table 2 anchors (same avg/min ratios as a real
    // family): HC_first ~ 400..900 closes for plain double-sided RH.
    cfg.profile.rhMin = 400;
    cfg.profile.rhAvg = 900;
    cfg.profile.comraMin = 160;
    cfg.profile.comraAvg = 360;
    cfg.profile.simraMin = 80;
    cfg.profile.simraAvg = 180;
    return cfg;
}

/**
 * Hammer-oriented program generator for the certifier mode.  Only
 * conventional ACT/PRE pressure (plus WR staging and REF) is emitted:
 * the per-close damage fold the certifier shares with the effect
 * predictor is anchored for those, and the point here is mitigation
 * interaction, not activation-mode coverage (the dataflow mode owns
 * that).  Program *shapes* are drawn so each mode's Certain verdicts
 * actually occur:
 *
 *  - a pure adjacent double-sided hammer with REF in the loop body
 *    keeps the TRR sampler window equal to {v-1, v+1}, certifying the
 *    victim mitigated;
 *  - a REF-free program never engages the sampler at all, certifying
 *    a TRR bypass;
 *  - a hammer cluster followed by a >= kTrrWindow-push decoy flood in
 *    the other subarray evicts the cluster from the ring before any
 *    REF arrives, certifying a *non-trivial* TRR bypass (the sampler
 *    fires, but provably only on far rows);
 *  - under PRAC, a below-threshold cluster next to a far hot cluster
 *    certifies a distance bypass (drains provably land far away), and
 *    an adjacent-only hammer under a small RDT certifies mitigation.
 */
class MitigationGenerator
{
  public:
    MitigationGenerator(Rng &rng, const dram::DeviceConfig &cfg,
                        MitigationUnderTest mode)
        : rng_(rng), cfg_(cfg), t_(cfg.timings), mode_(mode)
    {}

    Program
    build()
    {
        switch (rng_.below(4)) {
          case 0:
            // Adjacent-only double-sided pressure; REF interleaved in
            // the TRR mode so the sampler window stays pure.
            doubleSided(randVictim(randSub()),
                        rng_.range(100, 400),
                        /*ref_in_loop=*/mode_ == MitigationUnderTest::Trr);
            break;
          case 1:
            // REF-free pressure: TRR provably never samples.
            doubleSided(randVictim(randSub()), rng_.range(100, 1200),
                        /*ref_in_loop=*/false);
            if (rng_.chance(0.5))
                singleSided(randRowIn(randSub()), rng_.range(80, 600));
            break;
          case 2: {
            // Far-bypass shape: quiet cluster in subarray 0, loud
            // cluster in subarray 1, then REFs.  TRR: the flood evicts
            // the cluster from the ring.  PRAC: only the flood rows
            // can go hot / be drained.
            doubleSided(randVictim(0), rng_.range(60, 180),
                        /*ref_in_loop=*/false);
            doubleSided(randVictim(1), rng_.range(500, 700),
                        /*ref_in_loop=*/false);
            refBurst(rng_.range(2, 5));
            break;
          }
          default: {
            // Free composition: mostly-Possible territory plus the
            // starved/skirted diagnostics.
            const int snippets = static_cast<int>(rng_.range(2, 6));
            for (int i = 0; i < snippets; ++i) {
                switch (rng_.below(5)) {
                  case 0:
                    doubleSided(randVictim(randSub()),
                                rng_.range(60, 500), rng_.chance(0.3));
                    break;
                  case 1:
                    singleSided(randRowIn(randSub()),
                                rng_.range(60, 500));
                    break;
                  case 2: writeSnippet(); break;
                  case 3: refBurst(rng_.range(1, 4)); break;
                  default:
                    // Dilution pair: same-subarray distance-3 rows.
                    singleSided(randVictim(randSub()) - 2,
                                rng_.range(50, 200));
                    break;
                }
            }
            break;
          }
        }
        return std::move(p_);
    }

  private:
    RowId rps() const { return cfg_.rowsPerSubarray; }

    SubarrayId
    randSub()
    {
        return static_cast<SubarrayId>(
            rng_.below(static_cast<std::uint64_t>(
                cfg_.subarraysPerBank)));
    }

    RowId
    randRowIn(SubarrayId sub)
    {
        return sub * rps() +
               static_cast<RowId>(
                   rng_.below(static_cast<std::uint64_t>(rps())));
    }

    /** A victim with both neighbours and distance-2 rows in-subarray. */
    RowId
    randVictim(SubarrayId sub)
    {
        return sub * rps() + 2 +
               static_cast<RowId>(rng_.below(
                   static_cast<std::uint64_t>(rps() - 4)));
    }

    /**
     * Classic double-sided hammer around `victim`.  With `ref_in_loop`
     * every iteration ends in a REF (bank precharged, tRFC respected
     * before the next ACT), so the sampler window at every refresh
     * point is exactly {victim-1, victim+1}.
     */
    void
    doubleSided(RowId victim, std::uint64_t trips, bool ref_in_loop)
    {
        p_.loopBegin(trips)
            .act(kBank, victim - 1, t_.tRFC)
            .pre(kBank, t_.tRAS)
            .act(kBank, victim + 1, t_.tRC)
            .pre(kBank, t_.tRAS);
        if (ref_in_loop)
            p_.ref(t_.tRC).nop(t_.tRFC);
        p_.loopEnd();
    }

    void
    singleSided(RowId aggressor, std::uint64_t trips)
    {
        p_.loopBegin(trips)
            .act(kBank, aggressor, t_.tRFC)
            .pre(kBank, t_.tRAS)
            .loopEnd();
    }

    void
    writeSnippet()
    {
        const int idx = p_.addData(randomRow(rng_, cfg_.cols));
        p_.act(kBank, randRowIn(randSub()), t_.tRFC)
            .wr(kBank, idx, t_.tRCD)
            .pre(kBank, t_.tRAS);
    }

    /** REFs with the bank precharged; tRFC honoured on both sides. */
    void
    refBurst(std::uint64_t n)
    {
        for (std::uint64_t i = 0; i < n; ++i)
            p_.ref(t_.tRFC).nop(t_.tRFC);
    }

    Rng &rng_;
    const dram::DeviceConfig &cfg_;
    const dram::TimingParams &t_;
    MitigationUnderTest mode_;
    Program p_;
};

void
recordViolation(DiffCheckStats &stats, std::uint64_t seed, RowId phys,
                const char *what)
{
    ++stats.soundnessViolations;
    if (!stats.firstMismatch.empty())
        return;
    char buf[200];
    std::snprintf(buf, sizeof buf, "seed %llu: bank %u row %u: %s",
                  static_cast<unsigned long long>(seed),
                  static_cast<unsigned>(kBank),
                  static_cast<unsigned>(phys), what);
    stats.firstMismatch = buf;
}

/**
 * One certifier-mode seed: lint the program with the mitigation pass
 * enabled, execute it on two benches that differ only in whether the
 * mitigation runs live, and hold every per-victim verdict to its
 * contract (see the header comment, clauses A-C).
 */
void
checkOneMitigationSeed(std::uint64_t seed, MitigationUnderTest mode,
                       DiffCheckStats &stats)
{
    Rng rng(seed);
    const dram::DeviceConfig cfg = mitigationBenchConfig(seed);

    lint::MitigationSpec spec;
    mitigation::PracConfig prac_cfg;
    if (mode == MitigationUnderTest::Trr) {
        spec.trr = true;
    } else {
        spec.prac = true;
        // Sweep the back-off threshold across the generator's close
        // budgets: 20 certifies adjacent hammers mitigated, 200 sits
        // at the refusal boundary, 20000 never alerts (bypass + the
        // threshold-skirted diagnostic).
        static constexpr std::uint64_t kRdt[] = {20, 200, 20000};
        prac_cfg.rdt = kRdt[rng.below(3)];
        spec.pracConfig = prac_cfg;
    }

    MitigationGenerator gen(rng, cfg, mode);
    const Program program = gen.build();

    // Static side: full per-victim report with the certifier verdicts.
    lint::LintOptions opts;
    opts.mitigations = spec;
    lint::EffectReport report;
    lint::lintProgram(program, cfg, opts, &report);

    // Execution side: `plain` never mitigates, `mit` runs the
    // mechanism under test live.  Same config, same seed, identical
    // initial data; the populations are drawn from a counter-based
    // stream, so the two devices are cell-for-cell identical.
    bender::TestBench plain(cfg);
    bender::TestBench mit(cfg);
    plain.executor().setPreflight(true);
    mit.executor().setPreflight(false);
    std::optional<mitigation::PracMitigation> prac_hook;
    if (mode == MitigationUnderTest::Trr) {
        mit.device().setTrrEnabled(true);
    } else {
        prac_hook.emplace(prac_cfg, cfg.banks, cfg.rowsPerBank(),
                          cfg.rowsPerSubarray);
        mit.device().setMitigation(&*prac_hook);
    }

    const RowId rows = cfg.rowsPerBank();
    std::vector<RowData> initial;
    initial.reserve(static_cast<std::size_t>(rows));
    for (RowId r = 0; r < rows; ++r) {
        initial.push_back(randomRow(rng, cfg.cols));
        plain.writeRow(kBank, r, initial.back());
        mit.writeRow(kBank, r, initial.back());
    }

    plain.run(program);
    mit.run(program);

    ++stats.programs;
    stats.instructions += program.insts().size();
    for (const bender::Inst &inst : program.insts())
        stats.loops += inst.op == bender::Op::LoopBegin;

    for (const lint::VictimPrediction &vp : report.victims) {
        const RowData got_plain = plain.readRow(kBank, vp.victimPhys);
        const RowData got_mit = mit.readRow(kBank, vp.victimPhys);
        const RowData &init =
            initial[static_cast<std::size_t>(vp.victimPhys)];
        const std::size_t flips_plain = got_plain.diffCount(init);
        const std::size_t flips_mit = got_mit.diffCount(init);

        if (vp.verdict == lint::Verdict::Likely)
            ++stats.likelyVictims;
        if (flips_plain > 0)
            ++stats.flippedRows;

        // (A) The static reachability bound is mitigation-agnostic
        // (refreshes only ever reduce damage), so it binds both arms.
        if (vp.optimisticDamage < 1.0 && (flips_plain || flips_mit))
            recordViolation(stats, seed, vp.victimPhys,
                            "optimisticDamage < 1 but the row flipped");

        switch (vp.mitVerdict) {
          case lint::MitVerdict::MitigatedCertain:
            ++stats.mitigatedCertainRows;
            // (B) Provably below threshold at every instant: the
            // mitigated run must leave the row untouched.
            if (flips_mit > 0)
                recordViolation(
                    stats, seed, vp.victimPhys,
                    "MitMitigatedCertain row flipped under the live "
                    "mitigation");
            break;
          case lint::MitVerdict::BypassCertain:
            ++stats.bypassCertainRows;
            // (C) The mitigation provably never touches v-2..v+2, so
            // the victim's whole bit trajectory -- flips included --
            // must match the unmitigated arm.
            if (got_mit != got_plain)
                recordViolation(
                    stats, seed, vp.victimPhys,
                    "MitBypassCertain row diverges between mitigated "
                    "and unmitigated runs");
            break;
          case lint::MitVerdict::BypassPossible:
            ++stats.possibleRows;
            break;
          case lint::MitVerdict::NotEvaluated:
            break;
        }
    }
}

} // namespace

DiffCheckStats
runDiffCheck(const DiffCheckConfig &cfg)
{
    DiffCheckStats stats;
    for (std::uint64_t i = 0; i < cfg.seeds; ++i) {
        if (cfg.mitigation == MitigationUnderTest::None)
            checkOneSeed(cfg.firstSeed + i, stats);
        else
            checkOneMitigationSeed(cfg.firstSeed + i, cfg.mitigation,
                                   stats);
    }
    return stats;
}

} // namespace pud::check
