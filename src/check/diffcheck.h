/**
 * @file
 * Lint-vs-execution differential checker.
 *
 * runDiffCheck() closes the loop between the static row-state dataflow
 * analysis (lint/dataflow.h) and the real device model: a seeded,
 * deterministic program generator emits protocol-clean bender programs
 * from the PuD idiom menu (WR staging, CoMRA copies and copy chains,
 * replicated-majority MAJ, group writes, QUAC-TRNG merges, hammer
 * loops, loop-wrapped copies), runs each through BOTH the dataflow
 * pass and a TestBench Executor, and then holds the two sides to the
 * soundness contract:
 *
 *  (a) every program the generator emits is lint-clean, so the
 *      executor's pre-flight (which refuses error-severity findings
 *      with a fatal()) doubles as a generator-validity check -- a
 *      program lint would reject never reaches the device; and rows
 *      the analysis marks ChargeShared / Clobbered / Unknown are
 *      exactly the rows whose concrete contents it refuses to predict
 *      (counted, never compared);
 *
 *  (b) every row the analysis proves -- Initial, Written(d),
 *      CopyOf(k), or a tie-free MajorityOf merge -- must end the run
 *      bit-exact under dram::Device: Written against the data table,
 *      CopyOf against the pre-program contents snapshot, MajorityOf
 *      against the recursively resolved per-column weighted majority
 *      of its inputs (tie-free weight vectors admit no bitline ties,
 *      so the prediction is total).
 *
 * The bench is shrunk (1 bank, 2 x 64-row subarrays, 64-bit rows,
 * Sequential mapping, weakCellsPerRow = 0) so logical == physical rows
 * and no disturbance noise can blur pure data-movement semantics; a
 * fraction of seeds flip profile.supportsSimra off to exercise the
 * ignored-command path on both sides.  Everything is derived from the
 * seed alone: a reported seed reproduces the mismatch exactly.
 *
 * A second mode (DiffCheckConfig::mitigation != None) closes the same
 * loop for the mitigation bypass certifier (lint/mitigation_absint.h):
 * a hammer-oriented generator emits ACT/PRE pressure programs, the
 * certifier judges every predicted victim against the selected
 * mitigation (TRR or PRAC), and two TestBenches -- identical except
 * that one runs the mitigation live -- execute the program.  The
 * verdicts are then held to their universally-quantified meaning:
 *
 *  (A) optimisticDamage < 1 means no drawable cell can flip, so the
 *      victim must end both runs bit-identical to its initial data;
 *  (B) MitMitigatedCertain means the live mitigation provably kept
 *      the victim below threshold, so the mitigated run must show
 *      zero flips on that row;
 *  (C) MitBypassCertain means the mitigation provably never touched
 *      rows v-2..v+2, so the victim must end bit-identical across the
 *      mitigated and unmitigated runs.
 *
 * MitBypassPossible is the certifier's sound refusal and is counted
 * (possibleRows), never asserted against.  This mode uses weak cells
 * (weakCellsPerRow > 0) and down-scaled threshold anchors so a few
 * hundred closes straddle the flip threshold.
 */

#ifndef PUD_CHECK_DIFFCHECK_H
#define PUD_CHECK_DIFFCHECK_H

#include <cstdint>
#include <string>

namespace pud::check {

/** Which mitigation (if any) the differential check runs live. */
enum class MitigationUnderTest : std::uint8_t
{
    None,  //!< dataflow mode: lint-proven row values vs the device
    Trr,   //!< certifier vs the device's native TRR sampler
    Prac,  //!< certifier vs a live PracMitigation hook
};

/** Knobs of one differential-check run. */
struct DiffCheckConfig
{
    std::uint64_t seeds = 1000;   //!< number of generated programs
    std::uint64_t firstSeed = 1;  //!< first seed (inclusive)

    /** None = dataflow mode; otherwise the certifier soundness mode. */
    MitigationUnderTest mitigation = MitigationUnderTest::None;
};

/** Aggregate outcome of a run. */
struct DiffCheckStats
{
    std::uint64_t programs = 0;
    std::uint64_t instructions = 0;  //!< generated, loop bodies once
    std::uint64_t loops = 0;
    std::uint64_t merges = 0;        //!< interned SiMRA merge records
    std::uint64_t rowsVerified = 0;  //!< proven rows compared bit-exact
    std::uint64_t rowsUnverifiable = 0;  //!< ChargeShared/Clobbered/...
    std::uint64_t mismatches = 0;

    // -- mitigation mode only ------------------------------------------
    std::uint64_t likelyVictims = 0;  //!< victims with Verdict::Likely
    std::uint64_t mitigatedCertainRows = 0;  //!< asserted: zero flips
    std::uint64_t bypassCertainRows = 0;  //!< asserted: arm-identical
    std::uint64_t possibleRows = 0;  //!< sound refusals, never asserted
    std::uint64_t flippedRows = 0;   //!< victims that flipped unmitigated
    std::uint64_t soundnessViolations = 0;  //!< broken Certain verdicts

    /** Human-readable description of the first disagreement. */
    std::string firstMismatch;

    bool ok() const { return mismatches == 0 && soundnessViolations == 0; }
};

/** Run the differential check; deterministic in cfg alone. */
DiffCheckStats runDiffCheck(const DiffCheckConfig &cfg);

} // namespace pud::check

#endif // PUD_CHECK_DIFFCHECK_H
