/**
 * @file
 * Lint-vs-execution differential checker.
 *
 * runDiffCheck() closes the loop between the static row-state dataflow
 * analysis (lint/dataflow.h) and the real device model: a seeded,
 * deterministic program generator emits protocol-clean bender programs
 * from the PuD idiom menu (WR staging, CoMRA copies and copy chains,
 * replicated-majority MAJ, group writes, QUAC-TRNG merges, hammer
 * loops, loop-wrapped copies), runs each through BOTH the dataflow
 * pass and a TestBench Executor, and then holds the two sides to the
 * soundness contract:
 *
 *  (a) every program the generator emits is lint-clean, so the
 *      executor's pre-flight (which refuses error-severity findings
 *      with a fatal()) doubles as a generator-validity check -- a
 *      program lint would reject never reaches the device; and rows
 *      the analysis marks ChargeShared / Clobbered / Unknown are
 *      exactly the rows whose concrete contents it refuses to predict
 *      (counted, never compared);
 *
 *  (b) every row the analysis proves -- Initial, Written(d),
 *      CopyOf(k), or a tie-free MajorityOf merge -- must end the run
 *      bit-exact under dram::Device: Written against the data table,
 *      CopyOf against the pre-program contents snapshot, MajorityOf
 *      against the recursively resolved per-column weighted majority
 *      of its inputs (tie-free weight vectors admit no bitline ties,
 *      so the prediction is total).
 *
 * The bench is shrunk (1 bank, 2 x 64-row subarrays, 64-bit rows,
 * Sequential mapping, weakCellsPerRow = 0) so logical == physical rows
 * and no disturbance noise can blur pure data-movement semantics; a
 * fraction of seeds flip profile.supportsSimra off to exercise the
 * ignored-command path on both sides.  Everything is derived from the
 * seed alone: a reported seed reproduces the mismatch exactly.
 */

#ifndef PUD_CHECK_DIFFCHECK_H
#define PUD_CHECK_DIFFCHECK_H

#include <cstdint>
#include <string>

namespace pud::check {

/** Knobs of one differential-check run. */
struct DiffCheckConfig
{
    std::uint64_t seeds = 1000;   //!< number of generated programs
    std::uint64_t firstSeed = 1;  //!< first seed (inclusive)
};

/** Aggregate outcome of a run. */
struct DiffCheckStats
{
    std::uint64_t programs = 0;
    std::uint64_t instructions = 0;  //!< generated, loop bodies once
    std::uint64_t loops = 0;
    std::uint64_t merges = 0;        //!< interned SiMRA merge records
    std::uint64_t rowsVerified = 0;  //!< proven rows compared bit-exact
    std::uint64_t rowsUnverifiable = 0;  //!< ChargeShared/Clobbered/...
    std::uint64_t mismatches = 0;

    /** Human-readable description of the first disagreement. */
    std::string firstMismatch;

    bool ok() const { return mismatches == 0; }
};

/** Run the differential check; deterministic in cfg alone. */
DiffCheckStats runDiffCheck(const DiffCheckConfig &cfg);

} // namespace pud::check

#endif // PUD_CHECK_DIFFCHECK_H
