/**
 * @file
 * Per Row Activation Counting (PRAC) adapted to PuDHammer (paper §8.2).
 *
 * PRAC (JEDEC DDR5, April 2024 update) keeps an activation counter per
 * row; when a counter reaches the read-disturbance threshold (RDT) the
 * device asserts the Alert/back-off signal and the memory controller
 * must issue RFM commands, during which the device preventively
 * refreshes the highest-count rows and resets their counters.
 *
 * The paper's adaptations:
 *  - PRAC-AO (area-optimized): a SiMRA op updates the N counters
 *    sequentially, blocking the bank for N * tRC;
 *  - PRAC-PO (performance-optimized): all N counters update at once;
 *  - weighted counting: a SiMRA op adds weight 200 and a CoMRA op
 *    weight 10 to each participating row's counter (the lowest
 *    observed HC_firsts are ~4K / ~400 / ~20 for RowHammer / CoMRA /
 *    SiMRA), letting the RDT stay at the RowHammer level instead of
 *    dropping to 20 for all traffic.
 */

#ifndef PUD_MITIGATION_PRAC_H
#define PUD_MITIGATION_PRAC_H

#include <cstdint>
#include <span>
#include <vector>

#include "dram/types.h"
#include "util/units.h"

namespace pud::mitigation {

using dram::BankId;
using dram::RowId;

/** PRAC configuration. */
struct PracConfig
{
    /** Counter value that asserts back-off. */
    std::uint32_t rdt = 20;

    /** Weighted counting optimization (PRAC-PO-WC). */
    bool weighted = false;
    std::uint32_t simraWeight = 200;  //!< ~4K / 20
    std::uint32_t comraWeight = 10;   //!< ~4K / 400

    /** Area-optimized counter update (sequential, N * tRC). */
    bool areaOptimized = false;

    /** Rows refreshed (and counters reset) per RFM command. */
    int victimsPerRfm = 1;

    /** Row cycle time for the update-latency model. */
    Time tRC = units::fromNs(46.0);
};

/** Per-bank PRAC counter array with the paper's multi-update methods. */
class PracCounters
{
  public:
    PracCounters(const PracConfig &cfg, BankId banks, RowId rows_per_bank);

    /** Conventional ACT: +1.  @return true if back-off asserts. */
    bool onActivate(BankId bank, RowId row);

    /** CoMRA copy cycle: both rows updated (+comraWeight if weighted,
     *  else +1 each). */
    bool onComra(BankId bank, RowId src, RowId dst);

    /** SiMRA op: every activated row updated (+simraWeight or +1). */
    bool onSimra(BankId bank, std::span<const RowId> rows);

    /**
     * Per-close view (mitsem.h): every row of one close event bumped
     * by pracCloseWeight(cls).  A CoMRA copy reaches the counters as
     * two one-row Comra closes (src, then dst), which lands on the
     * same totals as one onComra() call.
     */
    bool onClose(BankId bank, std::span<const RowId> rows,
                 dram::TechClass cls);

    /**
     * Extra bank-blocking latency of the counter update beyond a
     * normal activation: zero for PRAC-PO (counters update in
     * parallel with the row cycle), (n-1) * tRC for PRAC-AO.
     */
    Time updateLatency(int rows_updated) const;

    /**
     * Serve one RFM: refresh the victimsPerRfm highest-count rows of
     * the bank and reset their counters.  @return rows refreshed;
     * their row ids are appended to *refreshed when non-null.
     */
    int onRfm(BankId bank, std::vector<RowId> *refreshed = nullptr);

    /** True while any counter in the bank is at/above the RDT. */
    bool alertPending(BankId bank) const;

    std::uint32_t counter(BankId bank, RowId row) const;
    const PracConfig &config() const { return cfg_; }

  private:
    bool bump(BankId bank, RowId row, std::uint32_t amount);

    PracConfig cfg_;
    RowId rowsPerBank_;
    std::vector<std::vector<std::uint32_t>> counters_;
};

} // namespace pud::mitigation

#endif // PUD_MITIGATION_PRAC_H
