/**
 * @file
 * Pure-function mitigation semantics shared by the concrete
 * mitigation models (PracCounters, the countermeasure hooks) and the
 * lint abstract transformers (src/lint/mitigation_absint) -- the same
 * factoring move pud::semantics made for the PuD engine: both sides
 * consume one table of facts, so the static pass can never drift from
 * what the executed mitigation actually does.
 *
 * Everything here is a pure function of configuration; no state.
 */

#ifndef PUD_MITIGATION_MITSEM_H
#define PUD_MITIGATION_MITSEM_H

#include <cstdint>

#include "dram/types.h"
#include "mitigation/prac.h"

namespace pud::mitigation {

/**
 * PRAC counter increment contributed by one *close* of a row under a
 * given technique class.  This is the per-close view of the per-op
 * PracCounters API: a CoMRA copy cycle closes src and dst once each
 * (onComra bumps both by comraWeight), a SiMRA op closes each group
 * row once (onSimra bumps each by simraWeight), and a conventional
 * close is one activation (+1).
 */
std::uint32_t pracCloseWeight(const PracConfig &cfg, dram::TechClass cls);

/**
 * Exact final PRAC counter of a row whose program-wide closes per
 * class are known: sum of closes[cls] * pracCloseWeight(cls).
 */
std::uint64_t pracWeightedCloses(const PracConfig &cfg,
                                 const std::uint64_t (&closes)[3]);

/**
 * Upper bound on the closes of class `cls` one row can accumulate
 * between two consecutive alert drains, assuming every alert is
 * served by RFMs until the back-off clears (the drain discipline of
 * PracMitigation): the counter re-arms below RDT after a drain and
 * the close that crosses RDT triggers the next drain, so at most
 * floor(rdt / weight) + 1 closes fit in between.
 */
std::uint64_t pracMaxClosesPerAlert(const PracConfig &cfg,
                                    dram::TechClass cls);

/** PARA: probabilistic adjacent-row activation (Kim et al., ISCA'14). */
struct ParaConfig
{
    /** Probability of refreshing the closed row's neighbors per close. */
    double probability = 1.0 / 512.0;

    /** RNG stream for the concrete model's coin flips. */
    std::uint64_t seed = 0x70a7a;
};

/** Probability that PARA never fires across `closes` closes. */
double paraMissProbability(const ParaConfig &cfg, std::uint64_t closes);

/**
 * Graphene: Misra-Gries frequent-item counters per bank (Park et al.,
 * MICRO'20).  A close of a tracked row increments its counter; a
 * close of an untracked row takes a free slot at count 1 or, when the
 * table is full, decrements every counter (classic Misra-Gries, so an
 * estimated count never exceeds the true close count).  A row whose
 * estimate reaches `threshold` has its +/-1 neighbors refreshed and
 * its counter reset.
 */
struct GrapheneConfig
{
    std::size_t tableSize = 16;
    std::uint64_t threshold = 250;
};

/**
 * True when the Misra-Gries table provably never evicts or decrements
 * -- i.e. the estimates equal the true counts -- which holds whenever
 * the number of distinct closed rows in the bank fits the table.
 */
bool grapheneCountsExact(const GrapheneConfig &cfg,
                         std::size_t distinct_closed_rows);

} // namespace pud::mitigation

#endif // PUD_MITIGATION_MITSEM_H
