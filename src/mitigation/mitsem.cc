#include "mitigation/mitsem.h"

#include <cmath>

namespace pud::mitigation {

std::uint32_t
pracCloseWeight(const PracConfig &cfg, dram::TechClass cls)
{
    if (!cfg.weighted)
        return 1;
    switch (cls) {
      case dram::TechClass::Conventional: return 1;
      case dram::TechClass::Comra:        return cfg.comraWeight;
      case dram::TechClass::Simra:        return cfg.simraWeight;
    }
    return 1;
}

std::uint64_t
pracWeightedCloses(const PracConfig &cfg, const std::uint64_t (&closes)[3])
{
    std::uint64_t total = 0;
    for (int c = 0; c < 3; ++c) {
        const auto cls = static_cast<dram::TechClass>(c);
        const std::uint64_t w = pracCloseWeight(cfg, cls);
        const std::uint64_t add = closes[c] * w;
        // Saturate: a counter past RDT is "alerting" regardless.
        if (closes[c] != 0 && add / closes[c] != w)
            return ~std::uint64_t(0);
        if (total + add < total)
            return ~std::uint64_t(0);
        total += add;
    }
    return total;
}

std::uint64_t
pracMaxClosesPerAlert(const PracConfig &cfg, dram::TechClass cls)
{
    const std::uint64_t w = pracCloseWeight(cfg, cls);
    return cfg.rdt / w + 1;
}

double
paraMissProbability(const ParaConfig &cfg, std::uint64_t closes)
{
    if (cfg.probability <= 0.0)
        return 1.0;
    if (cfg.probability >= 1.0)
        return closes == 0 ? 1.0 : 0.0;
    return std::pow(1.0 - cfg.probability,
                    static_cast<double>(closes));
}

bool
grapheneCountsExact(const GrapheneConfig &cfg,
                    std::size_t distinct_closed_rows)
{
    return distinct_closed_rows <= cfg.tableSize;
}

} // namespace pud::mitigation
