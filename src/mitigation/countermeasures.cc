#include "mitigation/countermeasures.h"

#include <algorithm>

#include "util/logging.h"

namespace pud::mitigation {

ComputeRegionPolicy::ComputeRegionPolicy(RowId subarray_rows,
                                         RowId compute_rows,
                                         int refresh_every_ops)
    : subarrayRows_(subarray_rows), computeRows_(compute_rows),
      refreshEveryOps_(refresh_every_ops)
{
    if (compute_rows == 0 || compute_rows > subarray_rows)
        fatal("ComputeRegionPolicy: %u compute rows in a %u-row "
              "subarray", compute_rows, subarray_rows);
    if (refresh_every_ops <= 0)
        fatal("ComputeRegionPolicy: non-positive refresh interval");
}

bool
ComputeRegionPolicy::inComputeRegion(RowId row_offset) const
{
    return row_offset < computeRows_;
}

bool
ComputeRegionPolicy::allowsSimra(std::span<const RowId> row_offsets) const
{
    return std::all_of(row_offsets.begin(), row_offsets.end(),
                       [this](RowId r) { return inComputeRegion(r); });
}

bool
ComputeRegionPolicy::allowsComra(RowId src_offset, RowId dst_offset) const
{
    return inComputeRegion(src_offset) || inComputeRegion(dst_offset);
}

RowId
ComputeRegionPolicy::onSimraOp()
{
    if (++opsSinceRefresh_ < refreshEveryOps_)
        return dram::kNoRow;
    opsSinceRefresh_ = 0;
    const RowId row = nextRefresh_;
    nextRefresh_ = (nextRefresh_ + 1) % computeRows_;
    return row;
}

std::uint64_t
ComputeRegionPolicy::maxOpsBetweenRefreshes() const
{
    return static_cast<std::uint64_t>(computeRows_) *
           static_cast<std::uint64_t>(refreshEveryOps_);
}

std::vector<RowId>
clusteredActivationSet(RowId row, int n, RowId rows_per_subarray)
{
    if (n <= 0 || (n & (n - 1)) != 0)
        fatal("clusteredActivationSet: N=%d not a power of two", n);
    const RowId base_sub = (row / rows_per_subarray) * rows_per_subarray;
    const RowId offset = row - base_sub;
    const RowId block = offset & ~static_cast<RowId>(n - 1);
    std::vector<RowId> out;
    out.reserve(n);
    for (int i = 0; i < n; ++i)
        out.push_back(base_sub + block + static_cast<RowId>(i));
    return out;
}

bool
hasSandwichedVictim(std::span<const RowId> sorted_group)
{
    for (std::size_t i = 0; i + 1 < sorted_group.size(); ++i) {
        const RowId gap = sorted_group[i + 1] - sorted_group[i];
        if (gap == 2)
            return true;
    }
    return false;
}

void
appendAdjacentRows(RowId row, RowId rows_per_subarray,
                   std::vector<RowId> &out)
{
    const RowId sub = row / rows_per_subarray;
    if (row > 0 && (row - 1) / rows_per_subarray == sub)
        out.push_back(row - 1);
    if ((row + 1) / rows_per_subarray == sub)
        out.push_back(row + 1);
}

PracMitigation::PracMitigation(const PracConfig &cfg, BankId banks,
                               RowId rows_per_bank,
                               RowId rows_per_subarray)
    : counters_(cfg, banks, rows_per_bank),
      rowsPerSubarray_(rows_per_subarray)
{
    if (rows_per_subarray == 0)
        fatal("PracMitigation: zero rows per subarray");
}

void
PracMitigation::onClose(BankId bank, const dram::CloseEvent &event,
                        std::vector<RowId> &refresh)
{
    if (!counters_.onClose(bank, event.rows, event.cls))
        return;
    ++alerts_;
    // The memory controller services the back-off before any further
    // traffic: RFMs drain until no counter is at/above the RDT.  Each
    // drained (highest-count) row is refreshed together with its +-1
    // same-subarray neighbors -- its disturbance victims.
    std::vector<RowId> drained;
    while (counters_.alertPending(bank)) {
        drained.clear();
        if (counters_.onRfm(bank, &drained) == 0)
            break;
        ++rfms_;
        for (RowId d : drained) {
            refresh.push_back(d);
            appendAdjacentRows(d, rowsPerSubarray_, refresh);
        }
    }
}

ParaMitigation::ParaMitigation(const ParaConfig &cfg,
                               RowId rows_per_subarray)
    : cfg_(cfg), rowsPerSubarray_(rows_per_subarray), rng_(cfg.seed)
{
    if (rows_per_subarray == 0)
        fatal("ParaMitigation: zero rows per subarray");
}

void
ParaMitigation::onClose(BankId bank, const dram::CloseEvent &event,
                        std::vector<RowId> &refresh)
{
    (void)bank;
    for (RowId r : event.rows) {
        if (!rng_.chance(cfg_.probability))
            continue;
        ++fires_;
        appendAdjacentRows(r, rowsPerSubarray_, refresh);
    }
}

GrapheneMitigation::GrapheneMitigation(const GrapheneConfig &cfg,
                                       BankId banks,
                                       RowId rows_per_subarray)
    : cfg_(cfg), rowsPerSubarray_(rows_per_subarray), tables_(banks)
{
    if (cfg.tableSize == 0)
        fatal("GrapheneMitigation: zero table size");
    if (cfg.threshold == 0)
        fatal("GrapheneMitigation: zero threshold");
    if (rows_per_subarray == 0)
        fatal("GrapheneMitigation: zero rows per subarray");
}

void
GrapheneMitigation::onClose(BankId bank, const dram::CloseEvent &event,
                            std::vector<RowId> &refresh)
{
    auto &table = tables_.at(bank);
    for (RowId r : event.rows) {
        auto it = table.find(r);
        if (it == table.end()) {
            if (table.size() < cfg_.tableSize) {
                it = table.emplace(r, 0).first;
            } else {
                // Misra-Gries spill: the untracked arrival is charged
                // against every tracked count instead of evicting.
                for (auto slot = table.begin(); slot != table.end();) {
                    if (--slot->second == 0)
                        slot = table.erase(slot);
                    else
                        ++slot;
                }
                continue;
            }
        }
        if (++it->second >= cfg_.threshold) {
            ++triggers_;
            appendAdjacentRows(r, rowsPerSubarray_, refresh);
            table.erase(it);
        }
    }
}

std::uint64_t
GrapheneMitigation::estimate(BankId bank, RowId row) const
{
    const auto &table = tables_.at(bank);
    const auto it = table.find(row);
    return it == table.end() ? 0 : it->second;
}

} // namespace pud::mitigation
