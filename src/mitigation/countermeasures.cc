#include "mitigation/countermeasures.h"

#include <algorithm>

#include "util/logging.h"

namespace pud::mitigation {

ComputeRegionPolicy::ComputeRegionPolicy(RowId subarray_rows,
                                         RowId compute_rows,
                                         int refresh_every_ops)
    : subarrayRows_(subarray_rows), computeRows_(compute_rows),
      refreshEveryOps_(refresh_every_ops)
{
    if (compute_rows == 0 || compute_rows > subarray_rows)
        fatal("ComputeRegionPolicy: %u compute rows in a %u-row "
              "subarray", compute_rows, subarray_rows);
    if (refresh_every_ops <= 0)
        fatal("ComputeRegionPolicy: non-positive refresh interval");
}

bool
ComputeRegionPolicy::inComputeRegion(RowId row_offset) const
{
    return row_offset < computeRows_;
}

bool
ComputeRegionPolicy::allowsSimra(std::span<const RowId> row_offsets) const
{
    return std::all_of(row_offsets.begin(), row_offsets.end(),
                       [this](RowId r) { return inComputeRegion(r); });
}

bool
ComputeRegionPolicy::allowsComra(RowId src_offset, RowId dst_offset) const
{
    return inComputeRegion(src_offset) || inComputeRegion(dst_offset);
}

RowId
ComputeRegionPolicy::onSimraOp()
{
    if (++opsSinceRefresh_ < refreshEveryOps_)
        return dram::kNoRow;
    opsSinceRefresh_ = 0;
    const RowId row = nextRefresh_;
    nextRefresh_ = (nextRefresh_ + 1) % computeRows_;
    return row;
}

std::uint64_t
ComputeRegionPolicy::maxOpsBetweenRefreshes() const
{
    return static_cast<std::uint64_t>(computeRows_) *
           static_cast<std::uint64_t>(refreshEveryOps_);
}

std::vector<RowId>
clusteredActivationSet(RowId row, int n, RowId rows_per_subarray)
{
    if (n <= 0 || (n & (n - 1)) != 0)
        fatal("clusteredActivationSet: N=%d not a power of two", n);
    const RowId base_sub = (row / rows_per_subarray) * rows_per_subarray;
    const RowId offset = row - base_sub;
    const RowId block = offset & ~static_cast<RowId>(n - 1);
    std::vector<RowId> out;
    out.reserve(n);
    for (int i = 0; i < n; ++i)
        out.push_back(base_sub + block + static_cast<RowId>(i));
    return out;
}

bool
hasSandwichedVictim(std::span<const RowId> sorted_group)
{
    for (std::size_t i = 0; i + 1 < sorted_group.size(); ++i) {
        const RowId gap = sorted_group[i + 1] - sorted_group[i];
        if (gap == 2)
            return true;
    }
    return false;
}

} // namespace pud::mitigation
