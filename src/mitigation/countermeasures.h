/**
 * @file
 * The three PuDHammer countermeasures sketched in paper §8.1.
 *
 *  1. Compute-region separation: SiMRA only inside a small compute
 *     region whose rows are refreshed round-robin every few SiMRA
 *     operations; CoMRA may have at most one operand outside.
 *  2. Weighted contribution of activation types (implemented in
 *     PracConfig::weighted, re-exported here for discoverability).
 *  3. Clustered multiple-row activation: a row decoder that only
 *     activates contiguous groups, making sandwiched (double-sided)
 *     SiMRA victims geometrically impossible.
 */

#ifndef PUD_MITIGATION_COUNTERMEASURES_H
#define PUD_MITIGATION_COUNTERMEASURES_H

#include <cstdint>
#include <span>
#include <vector>

#include "dram/types.h"

namespace pud::mitigation {

using dram::RowId;

/**
 * Countermeasure 1: compute-region separation with periodic
 * compute-row refresh.
 *
 * The subarray's first `computeRows` rows form the compute region.
 * Policy checks return whether an operation is admissible; the
 * refresh schedule spreads one compute-row refresh over every
 * `refreshEveryOps` SiMRA operations, bounding the damage any
 * compute-region row can accumulate between refreshes.
 */
class ComputeRegionPolicy
{
  public:
    ComputeRegionPolicy(RowId subarray_rows, RowId compute_rows,
                        int refresh_every_ops);

    bool inComputeRegion(RowId row_offset) const;

    /** SiMRA admissible only if every activated row is in-region. */
    bool allowsSimra(std::span<const RowId> row_offsets) const;

    /** CoMRA admissible if at most one operand is out-of-region. */
    bool allowsComra(RowId src_offset, RowId dst_offset) const;

    /**
     * Account one SiMRA operation; returns the compute-region row to
     * refresh now, or dram::kNoRow if this op carries no refresh.
     */
    RowId onSimraOp();

    /**
     * Worst-case SiMRA operations any compute-region row can endure
     * between its refreshes: computeRows * refreshEveryOps.
     */
    std::uint64_t maxOpsBetweenRefreshes() const;

    RowId computeRows() const { return computeRows_; }

  private:
    RowId subarrayRows_;
    RowId computeRows_;
    int refreshEveryOps_;
    int opsSinceRefresh_ = 0;
    RowId nextRefresh_ = 0;
};

/**
 * Countermeasure 3: clustered multiple-row activation.  Given the
 * first issued row and the requested group size, returns the
 * contiguous N-aligned block containing it -- the decoder constraint
 * that guarantees no unactivated row is sandwiched.
 */
std::vector<RowId> clusteredActivationSet(RowId row, int n,
                                          RowId rows_per_subarray);

/** True if any un-activated row lies between two activated rows. */
bool hasSandwichedVictim(std::span<const RowId> sorted_group);

} // namespace pud::mitigation

#endif // PUD_MITIGATION_COUNTERMEASURES_H
