/**
 * @file
 * The three PuDHammer countermeasures sketched in paper §8.1.
 *
 *  1. Compute-region separation: SiMRA only inside a small compute
 *     region whose rows are refreshed round-robin every few SiMRA
 *     operations; CoMRA may have at most one operand outside.
 *  2. Weighted contribution of activation types (implemented in
 *     PracConfig::weighted, re-exported here for discoverability).
 *  3. Clustered multiple-row activation: a row decoder that only
 *     activates contiguous groups, making sandwiched (double-sided)
 *     SiMRA victims geometrically impossible.
 */

#ifndef PUD_MITIGATION_COUNTERMEASURES_H
#define PUD_MITIGATION_COUNTERMEASURES_H

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "dram/device.h"
#include "dram/types.h"
#include "mitigation/mitsem.h"
#include "mitigation/prac.h"
#include "util/rng.h"

namespace pud::mitigation {

using dram::RowId;

/**
 * Countermeasure 1: compute-region separation with periodic
 * compute-row refresh.
 *
 * The subarray's first `computeRows` rows form the compute region.
 * Policy checks return whether an operation is admissible; the
 * refresh schedule spreads one compute-row refresh over every
 * `refreshEveryOps` SiMRA operations, bounding the damage any
 * compute-region row can accumulate between refreshes.
 */
class ComputeRegionPolicy
{
  public:
    ComputeRegionPolicy(RowId subarray_rows, RowId compute_rows,
                        int refresh_every_ops);

    bool inComputeRegion(RowId row_offset) const;

    /** SiMRA admissible only if every activated row is in-region. */
    bool allowsSimra(std::span<const RowId> row_offsets) const;

    /** CoMRA admissible if at most one operand is out-of-region. */
    bool allowsComra(RowId src_offset, RowId dst_offset) const;

    /**
     * Account one SiMRA operation; returns the compute-region row to
     * refresh now, or dram::kNoRow if this op carries no refresh.
     */
    RowId onSimraOp();

    /**
     * Worst-case SiMRA operations any compute-region row can endure
     * between its refreshes: computeRows * refreshEveryOps.
     */
    std::uint64_t maxOpsBetweenRefreshes() const;

    RowId computeRows() const { return computeRows_; }

  private:
    RowId subarrayRows_;
    RowId computeRows_;
    int refreshEveryOps_;
    int opsSinceRefresh_ = 0;
    RowId nextRefresh_ = 0;
};

/**
 * Countermeasure 3: clustered multiple-row activation.  Given the
 * first issued row and the requested group size, returns the
 * contiguous N-aligned block containing it -- the decoder constraint
 * that guarantees no unactivated row is sandwiched.
 */
std::vector<RowId> clusteredActivationSet(RowId row, int n,
                                          RowId rows_per_subarray);

/** True if any un-activated row lies between two activated rows. */
bool hasSandwichedVictim(std::span<const RowId> sorted_group);

/**
 * Append `row`'s +-1 same-subarray neighbors to *out -- the blast set
 * every close-driven mitigation refreshes when it singles out a row.
 */
void appendAdjacentRows(RowId row, RowId rows_per_subarray,
                        std::vector<RowId> &out);

/**
 * PRAC as an executable device hook: per-close weighted counters
 * (PracCounters via the mitsem per-close weights), with every alert
 * served immediately by RFMs until the back-off clears.  Each RFM
 * refreshes the drained row and its +-1 same-subarray neighbors.
 */
class PracMitigation : public dram::MitigationHook
{
  public:
    PracMitigation(const PracConfig &cfg, BankId banks,
                   RowId rows_per_bank, RowId rows_per_subarray);

    void onClose(BankId bank, const dram::CloseEvent &event,
                 std::vector<RowId> &refresh) override;

    const PracCounters &counters() const { return counters_; }
    std::uint64_t alerts() const { return alerts_; }
    std::uint64_t rfms() const { return rfms_; }

  private:
    PracCounters counters_;
    RowId rowsPerSubarray_;
    std::uint64_t alerts_ = 0;
    std::uint64_t rfms_ = 0;
};

/**
 * PARA (Kim et al., ISCA'14) as a device hook: on every close, each
 * closed row's +-1 same-subarray neighbors are refreshed with
 * probability `cfg.probability`, with no state beyond the RNG.
 */
class ParaMitigation : public dram::MitigationHook
{
  public:
    ParaMitigation(const ParaConfig &cfg, RowId rows_per_subarray);

    void onClose(BankId bank, const dram::CloseEvent &event,
                 std::vector<RowId> &refresh) override;

    std::uint64_t fires() const { return fires_; }

  private:
    ParaConfig cfg_;
    RowId rowsPerSubarray_;
    Rng rng_;
    std::uint64_t fires_ = 0;
};

/**
 * Graphene (Park et al., MICRO'20) as a device hook: a per-bank
 * Misra-Gries table over the close stream (+1 per closed row per
 * close event).  When a tracked row's estimate reaches the threshold
 * its +-1 same-subarray neighbors are refreshed and the entry is
 * retired; estimates never exceed true close counts, so a row below
 * the threshold in truth can never trigger.
 */
class GrapheneMitigation : public dram::MitigationHook
{
  public:
    GrapheneMitigation(const GrapheneConfig &cfg, BankId banks,
                       RowId rows_per_subarray);

    void onClose(BankId bank, const dram::CloseEvent &event,
                 std::vector<RowId> &refresh) override;

    std::uint64_t triggers() const { return triggers_; }

    /** Current Misra-Gries estimate (0 when untracked). */
    std::uint64_t estimate(BankId bank, RowId row) const;

  private:
    GrapheneConfig cfg_;
    RowId rowsPerSubarray_;
    std::vector<std::map<RowId, std::uint64_t>> tables_;
    std::uint64_t triggers_ = 0;
};

} // namespace pud::mitigation

#endif // PUD_MITIGATION_COUNTERMEASURES_H
