#include "mitigation/prac.h"

#include <algorithm>

#include "mitigation/mitsem.h"
#include "util/logging.h"

namespace pud::mitigation {

PracCounters::PracCounters(const PracConfig &cfg, BankId banks,
                           RowId rows_per_bank)
    : cfg_(cfg), rowsPerBank_(rows_per_bank),
      counters_(banks, std::vector<std::uint32_t>(rows_per_bank, 0))
{
    if (cfg.rdt == 0)
        fatal("PracCounters: RDT must be positive");
}

bool
PracCounters::bump(BankId bank, RowId row, std::uint32_t amount)
{
    auto &c = counters_.at(bank).at(row);
    c += amount;
    return c >= cfg_.rdt;
}

bool
PracCounters::onActivate(BankId bank, RowId row)
{
    return bump(bank, row, 1);
}

bool
PracCounters::onComra(BankId bank, RowId src, RowId dst)
{
    const std::uint32_t w = pracCloseWeight(cfg_, dram::TechClass::Comra);
    const bool a = bump(bank, src, w);
    const bool b = bump(bank, dst, w);
    return a || b;
}

bool
PracCounters::onSimra(BankId bank, std::span<const RowId> rows)
{
    const std::uint32_t w = pracCloseWeight(cfg_, dram::TechClass::Simra);
    bool alert = false;
    for (RowId r : rows)
        alert |= bump(bank, r, w);
    return alert;
}

bool
PracCounters::onClose(BankId bank, std::span<const RowId> rows,
                      dram::TechClass cls)
{
    const std::uint32_t w = pracCloseWeight(cfg_, cls);
    bool alert = false;
    for (RowId r : rows)
        alert |= bump(bank, r, w);
    return alert;
}

Time
PracCounters::updateLatency(int rows_updated) const
{
    if (!cfg_.areaOptimized || rows_updated <= 1)
        return 0;
    return static_cast<Time>(rows_updated - 1) * cfg_.tRC;
}

int
PracCounters::onRfm(BankId bank, std::vector<RowId> *refreshed_rows)
{
    auto &c = counters_.at(bank);
    int refreshed = 0;
    for (int k = 0; k < cfg_.victimsPerRfm; ++k) {
        auto it = std::max_element(c.begin(), c.end());
        if (it == c.end() || *it == 0)
            break;
        if (refreshed_rows != nullptr)
            refreshed_rows->push_back(
                static_cast<RowId>(it - c.begin()));
        *it = 0;
        ++refreshed;
    }
    return refreshed;
}

bool
PracCounters::alertPending(BankId bank) const
{
    const auto &c = counters_.at(bank);
    return std::any_of(c.begin(), c.end(), [this](std::uint32_t v) {
        return v >= cfg_.rdt;
    });
}

std::uint32_t
PracCounters::counter(BankId bank, RowId row) const
{
    return counters_.at(bank).at(row);
}

} // namespace pud::mitigation
