/**
 * @file
 * pud::exec -- a deterministic, work-stealing-free thread pool for the
 * embarrassingly-parallel population sweeps of the characterization
 * harness.
 *
 * Design constraints (and why):
 *
 *  - *Determinism*: the harness guarantees bit-identical results
 *    regardless of the number of worker threads.  The pool therefore
 *    never reorders or merges results itself: callers enumerate work
 *    units up front and write each unit's result into a pre-sized slot
 *    keyed by the unit index, so scheduling can only affect wall-clock
 *    time, never output.
 *  - *No work stealing*: indices are handed out from a single shared
 *    cursor in submission order.  Which worker runs which index is
 *    scheduler-dependent, but since results are slot-addressed this is
 *    invisible; the simple cursor keeps the pool auditable.
 *  - *Exception safety*: the first exception thrown by a work unit
 *    stops the hand-out of further indices and is rethrown on the
 *    calling thread once the batch drains, so `parallelFor` fails the
 *    same way a serial loop would (modulo which unit fails first).
 *
 * `parallelFor(jobs, n, fn)` is the main entry point; `jobs <= 1` runs
 * the loop inline on the calling thread (the legacy serial path, no
 * threads are created at all).
 */

#ifndef PUD_EXEC_POOL_H
#define PUD_EXEC_POOL_H

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pud::exec {

/** Worker count used for jobs=0 ("auto"): the hardware concurrency. */
int defaultJobs();

/** Clamp a --jobs request: <= 0 means auto, otherwise the request. */
int resolveJobs(int requested);

/**
 * Fixed-size thread pool executing indexed batches.
 *
 * Workers are started in the constructor and joined in the destructor.
 * `forEach` blocks until the whole batch has drained; the pool can be
 * reused for any number of batches, but batches are serialized (only
 * one runs at a time).
 */
class Pool
{
  public:
    /** Start `threads` workers (clamped to at least one). */
    explicit Pool(int threads);

    /** Drains any running batch and joins all workers. */
    ~Pool();

    Pool(const Pool &) = delete;
    Pool &operator=(const Pool &) = delete;

    int threads() const { return static_cast<int>(workers_.size()); }

    /**
     * Run `fn(i)` for every `i` in `[0, n)` across the workers and
     * block until all of them finished.  The first exception thrown by
     * any unit stops the hand-out of further indices and is rethrown
     * here after the batch drains.
     */
    void forEach(std::size_t n,
                 const std::function<void(std::size_t)> &fn);

  private:
    void workerLoop();

    std::vector<std::thread> workers_;

    std::mutex mu_;
    std::condition_variable wake_;
    std::condition_variable done_;
    bool stop_ = false;

    // Current batch, guarded by mu_ except for the atomic cursor.
    std::uint64_t generation_ = 0;
    std::size_t batchSize_ = 0;
    const std::function<void(std::size_t)> *batchFn_ = nullptr;
    std::atomic<std::size_t> cursor_{0};
    std::size_t joined_ = 0;  //!< workers that picked up this batch
    std::size_t active_ = 0;  //!< workers currently inside the batch

    std::mutex errorMu_;
    std::exception_ptr error_;

    std::mutex batchMu_;  //!< serializes concurrent forEach callers
};

/**
 * Run `fn(i)` for `i` in `[0, n)` with up to `jobs` worker threads.
 *
 * `jobs <= 1` (or `n <= 1`) executes the loop inline on the calling
 * thread without creating a pool -- byte-for-byte the legacy serial
 * path.  Otherwise a transient pool of `min(jobs, n)` workers drains
 * the index range.  Callers must make units independent and write
 * results into slot `i` of a pre-sized container so that the output is
 * identical for every `jobs` value.
 */
void parallelFor(int jobs, std::size_t n,
                 const std::function<void(std::size_t)> &fn);

} // namespace pud::exec

#endif // PUD_EXEC_POOL_H
