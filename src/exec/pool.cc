#include "exec/pool.h"

#include <algorithm>
#include <chrono>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace pud::exec {

int
defaultJobs()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
}

int
resolveJobs(int requested)
{
    return requested <= 0 ? defaultJobs() : requested;
}

Pool::Pool(int threads)
{
    const int n = std::max(1, threads);
    workers_.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

Pool::~Pool()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    wake_.notify_all();
    for (std::thread &t : workers_)
        t.join();
}

void
Pool::workerLoop()
{
    std::uint64_t seen = 0;
    for (;;) {
        std::unique_lock<std::mutex> lock(mu_);
        wake_.wait(lock, [&] { return stop_ || generation_ != seen; });
        if (stop_)
            return;
        seen = generation_;
        ++joined_;
        ++active_;
        const std::size_t n = batchSize_;
        const std::function<void(std::size_t)> *fn = batchFn_;
        lock.unlock();

        for (;;) {
            const std::size_t i =
                cursor_.fetch_add(1, std::memory_order_relaxed);
            if (i >= n)
                break;
            try {
                (*fn)(i);
            } catch (...) {
                std::lock_guard<std::mutex> elock(errorMu_);
                if (!error_)
                    error_ = std::current_exception();
                // Stop handing out further indices; units already
                // running drain normally.
                cursor_.store(n, std::memory_order_relaxed);
            }
        }

        lock.lock();
        if (--active_ == 0)
            done_.notify_all();
    }
}

void
Pool::forEach(std::size_t n, const std::function<void(std::size_t)> &fn)
{
    if (n == 0)
        return;
    // One batch at a time; concurrent callers queue up here.
    std::lock_guard<std::mutex> batch_lock(batchMu_);

    std::unique_lock<std::mutex> lock(mu_);
    batchSize_ = n;
    batchFn_ = &fn;
    cursor_.store(0, std::memory_order_relaxed);
    joined_ = 0;
    {
        std::lock_guard<std::mutex> elock(errorMu_);
        error_ = nullptr;
    }
    ++generation_;
    wake_.notify_all();

    // The batch is drained once every worker has picked it up and
    // every one of them has left the work loop again.  Workers that
    // arrive after the cursor ran out join and leave immediately, so
    // this terminates even when n < threads().
    done_.wait(lock, [&] {
        return joined_ == workers_.size() && active_ == 0;
    });
    batchFn_ = nullptr;

    std::exception_ptr error;
    {
        std::lock_guard<std::mutex> elock(errorMu_);
        error = error_;
        error_ = nullptr;
    }
    if (error)
        std::rethrow_exception(error);
}

void
parallelFor(int jobs, std::size_t n,
            const std::function<void(std::size_t)> &fn)
{
    if (obs::metricsOn()) [[unlikely]] {
        static const obs::CounterId c =
            obs::metrics().counterId("exec.parallel_for_calls");
        static const obs::HistId h =
            obs::metrics().histId("exec.parallel_for_units");
        obs::metrics().add(c);
        obs::metrics().observe(h, n);
    }
    const bool tracing = obs::traceOn();
    const auto wall_start = std::chrono::steady_clock::now();

    if (jobs <= 1 || n <= 1) {
        // Legacy serial path: inline, no threads, exceptions propagate
        // directly.
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
    } else {
        Pool pool(static_cast<int>(std::min<std::size_t>(
            static_cast<std::size_t>(jobs), n)));
        pool.forEach(n, fn);
    }

    if (tracing) [[unlikely]]
        obs::trace().event(
            "parallel_for",
            {{"jobs", static_cast<std::int64_t>(jobs)},
             {"units", n},
             {"wall_s", std::chrono::duration<double>(
                            std::chrono::steady_clock::now() -
                            wall_start)
                            .count()}});
}

} // namespace pud::exec
