/**
 * @file
 * Compiled execution plans for bender programs.
 *
 * The executor used to rescan a program on every run: matching each
 * LoopBegin to its LoopEnd, re-deciding fast-path eligibility, and
 * re-summing body durations.  An ExecPlan performs that analysis once
 * and is cached by *shape*: two programs that differ only in loop trip
 * counts (exactly what an HC_first bisection produces, dozens of
 * probes per victim) share one plan.  Everything trip-count-dependent
 * (durations, RD totals, record-vs-replay cost estimates) lives in
 * RunCosts, recomputed per run in O(#loops).
 *
 * The eligibility classification here is the single source of truth,
 * shared with pud::lint's FastPathEligible/Ineligible notes -- which
 * is why classifyBody is a header-only inline: pud_bender links
 * pud_lint for the pre-flight, so pud_lint cannot link back.
 */

#ifndef PUD_BENDER_PLAN_H
#define PUD_BENDER_PLAN_H

#include <cstdint>
#include <limits>
#include <vector>

#include "bender/program.h"

namespace pud::bender {

/**
 * Minimum trip count before the executor's fast-path engages: two
 * warm-up iterations plus one recorded one must leave enough remaining
 * iterations to amortize the recording.  (Also re-exported as
 * Executor::kFastPathThreshold.)
 */
inline constexpr std::uint64_t kFastPathThreshold = 8;

/** How the executor may run a hot loop body. */
enum class BodyClass : std::uint8_t
{
    /**
     * No REF, RD, or nested loop anywhere in the body: one recorded
     * iteration replays arithmetically for the whole remaining trip
     * count in a single step.
     */
    Simple,
    /**
     * Contains REF and/or nested loops but no RD: still recordable --
     * REF stripe/TRR effects and nested-loop damage advance by
     * closed-form per-iteration deltas, with a live "phase break"
     * whenever a refresh is about to touch a loop-damaged row.
     */
    Recorded,
    /** Contains RD: results must be collected per iteration. */
    Naive,
};

/**
 * Classify a loop body [begin, end) -- `end` is the matching LoopEnd.
 * RD anywhere (nested loops included) defeats the fast-path; REF and
 * nesting merely demote Simple to Recorded.
 */
inline BodyClass
classifyBody(const std::vector<Inst> &insts, std::size_t begin,
             std::size_t end)
{
    bool recorded = false;
    for (std::size_t i = begin; i < end; ++i) {
        switch (insts[i].op) {
          case Op::Rd:
            return BodyClass::Naive;
          case Op::Ref:
          case Op::LoopBegin:
          case Op::LoopEnd:
            recorded = true;
            break;
          default:
            break;
        }
    }
    return recorded ? BodyClass::Recorded : BodyClass::Simple;
}

/** One loop of the compiled tree. */
struct PlanLoop
{
    std::size_t begin = 0;  //!< index of the LoopBegin instruction
    std::size_t end = 0;    //!< index of the matching LoopEnd
    BodyClass cls = BodyClass::Naive;
    std::vector<std::uint32_t> children;  //!< indices into loops()

    // Flat (per-iteration, excluding nested subtrees) body summary.
    Time flatGap = 0;             //!< gap sum of directly-owned insts
    std::uint64_t flatRds = 0;    //!< RD count of directly-owned insts
    std::uint64_t flatInsts = 0;  //!< directly-owned non-marker insts
};

/**
 * The compiled, trip-count-independent structure of a program: the
 * loop tree with per-loop classification and flat summaries, plus the
 * normalized shape used for cache identity.
 */
class ExecPlan
{
  public:
    static ExecPlan compile(const Program &program);

    const std::vector<PlanLoop> &loops() const { return loops_; }

    /** Loop index of the LoopBegin at `inst`; -1 otherwise. */
    std::int32_t loopAt(std::size_t inst) const { return loopAt_[inst]; }

    /** Indices of top-level loops, in program order. */
    const std::vector<std::uint32_t> &topLoops() const { return topLoops_; }

    Time topFlatGap() const { return topFlatGap_; }
    std::uint64_t topFlatRds() const { return topFlatRds_; }

    /** Trip-count-independent hash (= shapeHashOf of the source). */
    std::uint64_t shapeHash() const { return shapeHash_; }

    /** Exact shape equality, ignoring loop trip counts. */
    bool matchesShape(const Program &program) const;

  private:
    std::vector<PlanLoop> loops_;
    std::vector<std::int32_t> loopAt_;
    std::vector<std::uint32_t> topLoops_;
    Time topFlatGap_ = 0;
    std::uint64_t topFlatRds_ = 0;

    std::uint64_t shapeHash_ = 0;
    std::vector<Inst> shapeInsts_;       //!< LoopBegin counts zeroed
    std::vector<std::uint32_t> dataBits_;  //!< data-table entry widths
};

/** Trip-count-independent program hash (loop counts excluded). */
std::uint64_t shapeHashOf(const Program &program);

/**
 * Per-run, trip-count-dependent plan data: body durations, RD totals,
 * and the cost estimates that decide whether recording an outer loop
 * beats letting its inner loops fast-path on their own.
 */
struct RunCosts
{
    std::vector<Time> duration;            //!< one body iteration
    std::vector<std::uint64_t> rds;        //!< RDs per body iteration
    /** Commands issued by one live body iteration (nested unrolled). */
    std::vector<std::uint64_t> naiveCost;
    /** Commands issued by one fast-pathed body iteration. */
    std::vector<std::uint64_t> fastCost;
    std::uint64_t totalRds = 0;            //!< whole-program RD count

    static RunCosts compute(const ExecPlan &plan, const Program &program);
};

/** Saturating helpers for RunCosts arithmetic. */
inline std::uint64_t
satAdd(std::uint64_t a, std::uint64_t b)
{
    const std::uint64_t s = a + b;
    return s < a ? std::numeric_limits<std::uint64_t>::max() : s;
}

inline std::uint64_t
satMul(std::uint64_t a, std::uint64_t b)
{
    if (a != 0 && b > std::numeric_limits<std::uint64_t>::max() / a)
        return std::numeric_limits<std::uint64_t>::max();
    return a * b;
}

} // namespace pud::bender

#endif // PUD_BENDER_PLAN_H
