#include "bender/plan.h"

#include "util/logging.h"

namespace pud::bender {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void
mix(std::uint64_t &h, std::uint64_t v)
{
    h ^= v;
    h *= kFnvPrime;
}

void
mixInstShape(std::uint64_t &h, const Inst &inst)
{
    mix(h, static_cast<std::uint64_t>(inst.op));
    mix(h, static_cast<std::uint64_t>(inst.gap));
    mix(h, inst.bank);
    mix(h, inst.row);
    mix(h, static_cast<std::uint64_t>(inst.dataIndex) + 1);
    // The trip count is deliberately excluded for LoopBegin: an
    // HC_first bisection's probes differ only there and must share one
    // plan (and one pre-flight lint).
    if (inst.op != Op::LoopBegin)
        mix(h, inst.count);
}

} // namespace

std::uint64_t
shapeHashOf(const Program &program)
{
    std::uint64_t h = kFnvOffset;
    mix(h, program.insts().size());
    for (const Inst &inst : program.insts())
        mixInstShape(h, inst);
    mix(h, program.dataTable().size());
    for (const RowData &data : program.dataTable())
        mix(h, data.bits());
    return h;
}

ExecPlan
ExecPlan::compile(const Program &program)
{
    const auto &insts = program.insts();

    ExecPlan plan;
    plan.loopAt_.assign(insts.size(), -1);

    // Open-loop stack; -1 marks top level.
    std::vector<std::int32_t> stack;

    auto flat_gap_of = [&](std::int32_t li) -> Time & {
        return li < 0 ? plan.topFlatGap_ : plan.loops_[li].flatGap;
    };

    for (std::size_t i = 0; i < insts.size(); ++i) {
        const Inst &inst = insts[i];
        const std::int32_t owner = stack.empty() ? -1 : stack.back();
        switch (inst.op) {
          case Op::LoopBegin: {
            const auto li =
                static_cast<std::int32_t>(plan.loops_.size());
            plan.loops_.emplace_back();
            plan.loops_.back().begin = i;
            plan.loopAt_[i] = li;
            if (owner < 0)
                plan.topLoops_.push_back(
                    static_cast<std::uint32_t>(li));
            else
                plan.loops_[owner].children.push_back(
                    static_cast<std::uint32_t>(li));
            stack.push_back(li);
            break;
          }
          case Op::LoopEnd: {
            if (stack.empty())
                fatal("ExecPlan: stray LoopEnd at instruction %zu", i);
            PlanLoop &loop = plan.loops_[stack.back()];
            loop.end = i;
            loop.cls = classifyBody(insts, loop.begin + 1, i);
            stack.pop_back();
            break;
          }
          default: {
            flat_gap_of(owner) += inst.gap;
            if (owner < 0) {
                if (inst.op == Op::Rd)
                    ++plan.topFlatRds_;
            } else {
                PlanLoop &loop = plan.loops_[owner];
                if (inst.op == Op::Rd)
                    ++loop.flatRds;
                ++loop.flatInsts;
            }
            break;
          }
        }
    }
    if (!stack.empty())
        fatal("ExecPlan: unbalanced loop at instruction %zu",
              plan.loops_[stack.back()].begin);

    plan.shapeHash_ = shapeHashOf(program);
    plan.shapeInsts_ = insts;
    for (Inst &inst : plan.shapeInsts_)
        if (inst.op == Op::LoopBegin)
            inst.count = 0;
    plan.dataBits_.reserve(program.dataTable().size());
    for (const RowData &data : program.dataTable())
        plan.dataBits_.push_back(data.bits());
    return plan;
}

bool
ExecPlan::matchesShape(const Program &program) const
{
    const auto &insts = program.insts();
    if (insts.size() != shapeInsts_.size() ||
        program.dataTable().size() != dataBits_.size()) {
        return false;
    }
    for (std::size_t i = 0; i < insts.size(); ++i) {
        const Inst &a = insts[i];
        const Inst &b = shapeInsts_[i];
        if (a.op != b.op || a.gap != b.gap || a.bank != b.bank ||
            a.row != b.row || a.dataIndex != b.dataIndex) {
            return false;
        }
        if (a.op != Op::LoopBegin && a.count != b.count)
            return false;
    }
    for (std::size_t i = 0; i < dataBits_.size(); ++i)
        if (program.dataTable()[i].bits() != dataBits_[i])
            return false;
    return true;
}

RunCosts
RunCosts::compute(const ExecPlan &plan, const Program &program)
{
    const auto &loops = plan.loops();
    const auto &insts = program.insts();

    RunCosts out;
    out.duration.assign(loops.size(), 0);
    out.rds.assign(loops.size(), 0);
    out.naiveCost.assign(loops.size(), 0);
    out.fastCost.assign(loops.size(), 0);

    // Children always have a larger loop index than their parent (the
    // compiler appends loops in LoopBegin order), so one descending
    // pass is a postorder traversal.
    for (std::size_t li = loops.size(); li-- > 0;) {
        const PlanLoop &loop = loops[li];
        Time d = loop.flatGap;
        std::uint64_t rds = loop.flatRds;
        std::uint64_t naive = loop.flatInsts;
        std::uint64_t fast = loop.flatInsts;
        for (std::uint32_t c : loop.children) {
            const std::uint64_t count = insts[loops[c].begin].count;
            d += static_cast<Time>(count) * out.duration[c];
            rds = satAdd(rds, satMul(count, out.rds[c]));
            naive = satAdd(naive, satMul(count, out.naiveCost[c]));
            // A fast-pathable child costs ~3 live iterations (warm-ups
            // + recording) plus O(1) replay bookkeeping, regardless of
            // its own trip count.
            const bool child_fast =
                loops[c].cls != BodyClass::Naive &&
                count >= kFastPathThreshold;
            fast = satAdd(fast,
                          child_fast
                              ? satAdd(satMul(3, out.fastCost[c]), 16)
                              : satMul(count, out.fastCost[c]));
        }
        out.duration[li] = d;
        out.rds[li] = rds;
        out.naiveCost[li] = naive;
        out.fastCost[li] = fast;
    }

    out.totalRds = plan.topFlatRds();
    for (std::uint32_t t : plan.topLoops()) {
        const std::uint64_t count = insts[loops[t].begin].count;
        out.totalRds =
            satAdd(out.totalRds, satMul(count, out.rds[t]));
    }
    return out;
}

} // namespace pud::bender
