#include "bender/executor.h"

#include <algorithm>
#include <chrono>

#include "lint/linter.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace pud::bender {

namespace {

/** Cap on up-front ExecResult::reads reservation (entries). */
constexpr std::uint64_t kReadReserveCap = 1ULL << 20;

/** Plan-cache entries kept before the cache is dropped wholesale. */
constexpr std::size_t kPlanCacheCap = 64;

} // namespace

void
Executor::execOne(const Program &program, const Inst &inst, Time &cursor,
                  ExecResult &result)
{
    cursor += inst.gap;
    switch (inst.op) {
      case Op::Act:
        device_->act(cursor, inst.bank, inst.row);
        break;
      case Op::Pre:
        device_->pre(cursor, inst.bank);
        break;
      case Op::PreAll:
        device_->preAll(cursor);
        break;
      case Op::Rd:
        result.reads.push_back(device_->rd(cursor, inst.bank));
        break;
      case Op::Wr:
        if (inst.dataIndex < 0 ||
            inst.dataIndex >=
                static_cast<int>(program.dataTable().size())) {
            fatal("Executor: Wr with invalid data index %d",
                  inst.dataIndex);
        }
        device_->wr(cursor, inst.bank,
                    program.dataTable()[inst.dataIndex]);
        break;
      case Op::Ref:
        device_->ref(cursor);
        break;
      case Op::Nop:
        break;
      case Op::LoopBegin:
      case Op::LoopEnd:
        panic("Executor: loop marker reached execOne");
    }
}

void
Executor::execLoop(const Program &program, const ExecPlan &plan,
                   const RunCosts &costs, std::size_t loop_index,
                   std::uint64_t n, Time &cursor, ExecResult &result)
{
    const PlanLoop &loop = plan.loops()[loop_index];
    const std::size_t body_begin = loop.begin + 1;
    const std::size_t body_end = loop.end;

    auto body = [&] {
        execRange(program, plan, costs, body_begin, body_end, cursor,
                  result);
    };

    // Recording an outer loop runs its body fully naively once, so it
    // only pays off when that beats letting the inner loops fast-path
    // across (n - 2) live iterations.  For flat bodies the inequality
    // is trivially true.
    const bool eligible =
        fastPath_ && !recording_ && loop.cls != BodyClass::Naive &&
        n >= kFastPathThreshold &&
        costs.naiveCost[loop_index] <=
            satMul(costs.fastCost[loop_index], n - 2);

    if (!eligible) {
        // Only a loop that *could* have fast-pathed is an interesting
        // fallback; short trips inside naive bodies are just noise.
        if (fastPath_ && !recording_ && n >= kFastPathThreshold) {
            if (obs::metricsOn()) [[unlikely]] {
                static const obs::CounterId c =
                    obs::metrics().counterId(
                        "executor.naive_fallbacks");
                obs::metrics().add(c);
            }
            if (obs::traceOn()) [[unlikely]]
                obs::trace().event(
                    "naive_fallback",
                    {{"loop", loop_index},
                     {"trip", n},
                     {"reason", loop.cls == BodyClass::Naive
                                    ? "body-class"
                                    : "cost-model"}});
        }
        for (std::uint64_t it = 0; it < n; ++it)
            body();
        return;
    }

    std::uint64_t it = 0;
    int strikes = 0;

    // Each chunk: two warm-up iterations reach steady state (CoMRA
    // copies settle, side-alternation state stabilizes), one recorded
    // iteration captures the periodic deltas, then the remainder
    // replays arithmetically.  A REF-free body replays to completion
    // in one chunk; a REF-bearing body replays until a refresh is
    // about to land on a loop-damaged row (phase break), executes that
    // iteration live, and re-records.  A body whose refreshes keep
    // colliding with its own rows never settles -- after two fruitless
    // chunks we stop re-recording and finish naively.
    while (n - it >= kFastPathThreshold && strikes < 2) {
        const Time chunk_start = cursor;
        body();
        body();
        device_->beginLoopRecording();
        recording_ = true;
        body();
        recording_ = false;
        const dram::Device::LoopRecord rec =
            device_->endLoopRecording();
        it += 3;
        if (obs::traceOn()) [[unlikely]]
            obs::trace().event("fastpath_record",
                               {{"loop", loop_index},
                                {"it", it},
                                {"quiescent", rec.quiescent}});

        if (!rec.quiescent) {
            ++strikes;
            continue;
        }

        const std::uint64_t replayed =
            device_->replayLoopIterations(rec, n - it);
        if (replayed > 0) {
            const Time skipped = static_cast<Time>(replayed) *
                                 costs.duration[loop_index];
            device_->shiftLoopTimestamps(chunk_start, skipped);
            cursor += skipped;
            it += replayed;
            result.fastPathIterations += replayed;
            stats_.fastPathIterations += replayed;
            if (obs::metricsOn()) [[unlikely]] {
                static const obs::CounterId c =
                    obs::metrics().counterId(
                        "executor.fastpath_iterations");
                obs::metrics().add(c, replayed);
            }
            if (obs::traceOn()) [[unlikely]]
                obs::trace().event("fastpath_replay",
                                   {{"loop", loop_index},
                                    {"replayed", replayed},
                                    {"remaining", n - it}});
        }
        if (it >= n)
            return;

        // Phase break: run the refresh-colliding iteration live, then
        // try another chunk if enough trip count remains.
        ++stats_.phaseBreaks;
        if (obs::metricsOn()) [[unlikely]] {
            static const obs::CounterId c =
                obs::metrics().counterId("executor.phase_breaks");
            obs::metrics().add(c);
        }
        if (obs::traceOn()) [[unlikely]]
            obs::trace().event(
                "phase_break",
                {{"loop", loop_index}, {"it", it}});
        body();
        ++it;
        strikes = replayed >= kFastPathThreshold ? 0 : strikes + 1;
    }

    if (it < n && strikes >= 2 && obs::traceOn()) [[unlikely]]
        obs::trace().event("naive_fallback",
                           {{"loop", loop_index},
                            {"trip", n - it},
                            {"reason", "strikes"}});
    while (it < n) {
        body();
        ++it;
    }
}

std::size_t
Executor::execRange(const Program &program, const ExecPlan &plan,
                    const RunCosts &costs, std::size_t begin,
                    std::size_t end, Time &cursor, ExecResult &result)
{
    const auto &insts = program.insts();
    std::size_t i = begin;
    while (i < end) {
        const Inst &inst = insts[i];
        if (inst.op == Op::LoopEnd) {
            panic("Executor: stray LoopEnd at %zu", i);
        } else if (inst.op == Op::LoopBegin) {
            const std::int32_t li = plan.loopAt(i);
            execLoop(program, plan, costs, static_cast<std::size_t>(li),
                     inst.count, cursor, result);
            i = plan.loops()[li].end + 1;
        } else {
            execOne(program, inst, cursor, result);
            ++i;
        }
    }
    return i;
}

void
Executor::preflightCheck(const Program &program)
{
    // Refuse programs the device would fatal on, with a pointer at the
    // bad instruction.  Warnings (deliberately violated timings that
    // match no PuD idiom) are the caller's business -- see
    // lint::lintProgram.
    lint::LintOptions opts;
    opts.effects = preflightEffects_;
    opts.dataflow = preflightDataflow_;
    opts.mitigations = preflightMitigations_;
    const lint::LintResult pre = lint::requireClean(
        program, device_->config(), "Executor", opts);
    if (preflightEffects_ || preflightDataflow_ ||
        preflightMitigations_.any()) {
        for (const lint::Diag &d : pre.diags) {
            const bool surfaced =
                (preflightEffects_ &&
                 d.code == lint::Code::DisturbanceImpossible) ||
                (preflightDataflow_ &&
                 d.severity == lint::Severity::Warning &&
                 lint::isDataflowCode(d.code)) ||
                (preflightMitigations_.any() &&
                 d.severity == lint::Severity::Warning &&
                 lint::isMitigationCode(d.code));
            if (surfaced)
                warn("Executor pre-flight: [%s] %s", lint::name(d.code),
                     d.message.c_str());
        }
    }
}

const ExecPlan &
Executor::planFor(const Program &program)
{
    const std::uint64_t hash = shapeHashOf(program);
    auto &bucket = planCache_[hash];
    for (CachedPlan &entry : bucket) {
        if (entry.plan->matchesShape(program)) {
            ++stats_.planCacheHits;
            if (obs::metricsOn()) [[unlikely]] {
                static const obs::CounterId c =
                    obs::metrics().counterId(
                        "executor.plan_cache_hits");
                obs::metrics().add(c);
            }
            if (obs::traceOn()) [[unlikely]]
                obs::trace().event("plan_cache_hit",
                                   {{"hash", hash}});
            if (preflight_ && !entry.linted) {
                preflightCheck(program);
                entry.linted = true;
            }
            return *entry.plan;
        }
    }

    ++stats_.planCacheMisses;
    if (obs::metricsOn()) [[unlikely]] {
        static const obs::CounterId c =
            obs::metrics().counterId("executor.plan_cache_misses");
        obs::metrics().add(c);
    }
    if (planCache_.size() > kPlanCacheCap)
        planCache_.clear();

    auto plan = std::make_shared<const ExecPlan>(
        ExecPlan::compile(program));
    if (obs::traceOn()) [[unlikely]]
        obs::trace().event(
            "plan_compile",
            {{"hash", hash},
             {"insts", program.insts().size()},
             {"loops", plan->loops().size()}});
    if (preflight_)
        preflightCheck(program);
    auto &fresh = planCache_[hash];
    fresh.push_back(CachedPlan{plan, preflight_});
    return *fresh.back().plan;
}

ExecResult
Executor::run(const Program &program)
{
    if (!program.balanced())
        fatal("Executor: program has unbalanced loops");

    const bool tracing = obs::traceOn();
    std::chrono::steady_clock::time_point wall_start;
    if (tracing) [[unlikely]] {
        wall_start = std::chrono::steady_clock::now();
        obs::trace().event("program_start",
                           {{"insts", program.insts().size()}});
    }

    const ExecPlan &plan = planFor(program);
    const RunCosts costs = RunCosts::compute(plan, program);

    ExecResult result;
    result.reads.reserve(static_cast<std::size_t>(
        std::min(costs.totalRds, kReadReserveCap)));
    // Leave a bus-turnaround gap after whatever ran before.
    Time cursor = device_->now() + units::fromNs(100);
    result.startTime = cursor;
    execRange(program, plan, costs, 0, program.insts().size(), cursor,
              result);
    device_->flush();
    result.endTime = cursor;

    if (obs::metricsOn()) [[unlikely]] {
        // Device time and read/iteration counts are functions of the
        // program alone -- safe for the deterministic metrics output.
        static const obs::CounterId c_runs =
            obs::metrics().counterId("executor.programs");
        static const obs::HistId h_ns =
            obs::metrics().histId("executor.program_device_ns");
        static const obs::HistId h_reads =
            obs::metrics().histId("executor.program_reads");
        obs::metrics().add(c_runs);
        obs::metrics().observe(
            h_ns, static_cast<std::uint64_t>(units::toNs(
                      result.endTime - result.startTime)));
        obs::metrics().observe(h_reads, result.reads.size());
    }
    if (tracing) [[unlikely]] {
        const double wall_s =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - wall_start)
                .count();
        obs::trace().event(
            "program_end",
            {{"device_ns",
              static_cast<std::int64_t>(
                  units::toNs(result.endTime - result.startTime))},
             {"wall_s", wall_s},
             {"reads", result.reads.size()},
             {"fastpath_iters", result.fastPathIterations}});
    }
    return result;
}

} // namespace pud::bender
