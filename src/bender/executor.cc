#include "bender/executor.h"

#include "lint/linter.h"
#include "util/logging.h"

namespace pud::bender {

std::size_t
Executor::matchEnd(const Program &program, std::size_t begin_index)
{
    const auto &insts = program.insts();
    int depth = 0;
    for (std::size_t i = begin_index; i < insts.size(); ++i) {
        if (insts[i].op == Op::LoopBegin)
            ++depth;
        else if (insts[i].op == Op::LoopEnd && --depth == 0)
            return i;
    }
    fatal("Executor: unbalanced loop at instruction %zu", begin_index);
}

bool
Executor::bodyEligible(const Program &program, std::size_t begin,
                       std::size_t end)
{
    for (std::size_t i = begin; i < end; ++i) {
        const Op op = program.insts()[i].op;
        if (op == Op::Ref || op == Op::Rd || op == Op::LoopBegin ||
            op == Op::LoopEnd) {
            return false;
        }
    }
    return true;
}

Time
Executor::bodyDuration(const Program &program, std::size_t begin,
                       std::size_t end)
{
    Time d = 0;
    for (std::size_t i = begin; i < end; ++i)
        d += program.insts()[i].gap;
    return d;
}

void
Executor::execOne(const Program &program, const Inst &inst, Time &cursor,
                  ExecResult &result)
{
    cursor += inst.gap;
    switch (inst.op) {
      case Op::Act:
        device_->act(cursor, inst.bank, inst.row);
        break;
      case Op::Pre:
        device_->pre(cursor, inst.bank);
        break;
      case Op::PreAll:
        device_->preAll(cursor);
        break;
      case Op::Rd:
        result.reads.push_back(device_->rd(cursor, inst.bank));
        break;
      case Op::Wr:
        if (inst.dataIndex < 0 ||
            inst.dataIndex >=
                static_cast<int>(program.dataTable().size())) {
            fatal("Executor: Wr with invalid data index %d",
                  inst.dataIndex);
        }
        device_->wr(cursor, inst.bank,
                    program.dataTable()[inst.dataIndex]);
        break;
      case Op::Ref:
        device_->ref(cursor);
        break;
      case Op::Nop:
        break;
      case Op::LoopBegin:
      case Op::LoopEnd:
        panic("Executor: loop marker reached execOne");
    }
}

std::size_t
Executor::execRange(const Program &program, std::size_t begin,
                    std::size_t end, Time &cursor, ExecResult &result)
{
    const auto &insts = program.insts();
    std::size_t i = begin;
    while (i < end) {
        const Inst &inst = insts[i];
        if (inst.op == Op::LoopEnd) {
            panic("Executor: stray LoopEnd at %zu", i);
        } else if (inst.op == Op::LoopBegin) {
            const std::size_t close = matchEnd(program, i);
            const std::size_t body_begin = i + 1;
            const std::uint64_t n = inst.count;

            const bool use_fast =
                fastPath_ && n >= kFastPathThreshold &&
                bodyEligible(program, body_begin, close);

            if (use_fast) {
                const Time loop_start = cursor;

                // Two warm-up iterations reach steady state (CoMRA
                // copies settle, side-alternation state stabilizes).
                for (int w = 0; w < 2; ++w)
                    for (std::size_t k = body_begin; k < close; ++k)
                        execOne(program, insts[k], cursor, result);

                // One recorded steady-state iteration.
                device_->beginRecording();
                for (std::size_t k = body_begin; k < close; ++k)
                    execOne(program, insts[k], cursor, result);
                const dram::DamageRecord record =
                    device_->endRecording();

                // Replay the remaining trip count arithmetically, and
                // shift loop-era timestamps so commands after the loop
                // see the state of the virtual final iteration.
                const std::uint64_t remaining = n - 3;
                device_->replayRecord(record, remaining);
                const Time skipped =
                    static_cast<Time>(remaining) *
                    bodyDuration(program, body_begin, close);
                device_->shiftLoopTimestamps(loop_start, skipped);
                cursor += skipped;
                result.fastPathIterations += remaining;
            } else {
                for (std::uint64_t it = 0; it < n; ++it) {
                    Time c = cursor;
                    execRange(program, body_begin, close, c, result);
                    cursor = c;
                }
            }
            i = close + 1;
        } else {
            execOne(program, inst, cursor, result);
            ++i;
        }
    }
    return i;
}

ExecResult
Executor::run(const Program &program)
{
    if (!program.balanced())
        fatal("Executor: program has unbalanced loops");

    // Pre-flight static analysis (debug builds): refuse programs the
    // device would fatal on, with a pointer at the bad instruction.
    // Warnings (deliberately violated timings that match no PuD idiom)
    // are the caller's business -- see lint::lintProgram.
    if (preflight_) {
        lint::LintOptions opts;
        opts.effects = preflightEffects_;
        const lint::LintResult pre = lint::requireClean(
            program, device_->config(), "Executor", opts);
        if (preflightEffects_) {
            for (const lint::Diag &d : pre.diags) {
                if (d.code == lint::Code::DisturbanceImpossible)
                    warn("Executor pre-flight: [%s] %s",
                         lint::name(d.code), d.message.c_str());
            }
        }
    }

    ExecResult result;
    // Leave a bus-turnaround gap after whatever ran before.
    Time cursor = device_->now() + units::fromNs(100);
    result.startTime = cursor;
    execRange(program, 0, program.insts().size(), cursor, result);
    device_->flush();
    result.endTime = cursor;
    return result;
}

} // namespace pud::bender
