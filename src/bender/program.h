/**
 * @file
 * Test-program representation for the DRAM Bender-like infrastructure.
 *
 * A Program is a straight-line sequence of timestamped DDR commands
 * with (possibly nested) counted loops -- the same abstraction the
 * real DRAM Bender exposes for crafting precisely-timed command
 * sequences, including ones that deliberately violate nominal timing
 * parameters.  Each instruction carries the gap (in ps) from the
 * previous command's issue time, so a program fully determines the
 * command schedule.
 */

#ifndef PUD_BENDER_PROGRAM_H
#define PUD_BENDER_PROGRAM_H

#include <cstdint>
#include <vector>

#include "dram/datapattern.h"
#include "dram/types.h"
#include "util/logging.h"
#include "util/units.h"

namespace pud::bender {

using dram::BankId;
using dram::RowId;
using dram::RowData;

/** Instruction opcodes. */
enum class Op : std::uint8_t
{
    Act,        //!< activate (bank, row) after `gap`
    Pre,        //!< precharge bank
    PreAll,     //!< precharge all banks
    Rd,         //!< read the open row; result collected by the executor
    Wr,         //!< write the open row(s) from the program data table
    Ref,        //!< refresh command
    Nop,        //!< advance time only
    LoopBegin,  //!< repeat up to the matching LoopEnd `count` times
    LoopEnd,
};

/** One program instruction. */
struct Inst
{
    Op op = Op::Nop;
    Time gap = 0;              //!< time since the previous command issue
    BankId bank = 0;
    RowId row = 0;             //!< Act only (logical row address)
    int dataIndex = -1;        //!< Wr only: index into the data table
    std::uint64_t count = 0;   //!< LoopBegin only
};

/**
 * A test program.  Built fluently:
 *
 *   Program p;
 *   p.loopBegin(100000)
 *        .act(0, src, tRP)
 *        .pre(0, tRAS)
 *        .act(0, dst, violated)   // CoMRA
 *        .pre(0, tRAS)
 *    .loopEnd();
 */
class Program
{
  public:
    Program &
    act(BankId bank, RowId row, Time gap)
    {
        insts_.push_back({Op::Act, gap, bank, row, -1, 0});
        return *this;
    }

    Program &
    pre(BankId bank, Time gap)
    {
        insts_.push_back({Op::Pre, gap, bank, 0, -1, 0});
        return *this;
    }

    Program &
    preAll(Time gap)
    {
        insts_.push_back({Op::PreAll, gap, 0, 0, -1, 0});
        return *this;
    }

    Program &
    rd(BankId bank, Time gap)
    {
        insts_.push_back({Op::Rd, gap, bank, 0, -1, 0});
        return *this;
    }

    /**
     * Write the open row(s) from data-table entry `data_index`.  The
     * index must already be registered (addData) -- a dangling index
     * would only surface deep inside the executor, so the builder
     * rejects it at construction time.
     */
    Program &
    wr(BankId bank, int data_index, Time gap)
    {
        if (data_index < 0 ||
            data_index >= static_cast<int>(dataTable_.size()))
            fatal("Program: wr data index %d outside the data table "
                  "(%zu entries); call addData first",
                  data_index, dataTable_.size());
        return wrUnchecked(bank, data_index, gap);
    }

    /**
     * wr() without the build-time data-index check.  Only for tests
     * and demo programs that *want* an invalid instruction (to
     * exercise lint and executor error paths); everything else should
     * use wr().
     */
    Program &
    wrUnchecked(BankId bank, int data_index, Time gap)
    {
        insts_.push_back({Op::Wr, gap, bank, 0, data_index, 0});
        return *this;
    }

    Program &
    ref(Time gap)
    {
        insts_.push_back({Op::Ref, gap, 0, 0, -1, 0});
        return *this;
    }

    Program &
    nop(Time gap)
    {
        insts_.push_back({Op::Nop, gap, 0, 0, -1, 0});
        return *this;
    }

    Program &
    loopBegin(std::uint64_t count)
    {
        insts_.push_back({Op::LoopBegin, 0, 0, 0, -1, count});
        ++openLoops_;
        return *this;
    }

    Program &
    loopEnd()
    {
        if (openLoops_ == 0)
            fatal("Program: loopEnd without loopBegin");
        --openLoops_;
        insts_.push_back({Op::LoopEnd, 0, 0, 0, -1, 0});
        return *this;
    }

    /** Register a row image for Wr instructions; returns its index. */
    int
    addData(RowData data)
    {
        dataTable_.push_back(std::move(data));
        return static_cast<int>(dataTable_.size()) - 1;
    }

    /** Patch the trip count of the loop opened by the i-th LoopBegin. */
    void
    setLoopCount(std::size_t loop_index, std::uint64_t count)
    {
        std::size_t seen = 0;
        for (auto &inst : insts_) {
            if (inst.op == Op::LoopBegin) {
                if (seen == loop_index) {
                    inst.count = count;
                    return;
                }
                ++seen;
            }
        }
        fatal("Program: no loop with index %zu", loop_index);
    }

    /**
     * Copy of this program with the i-th loop's trip count patched.
     * This is how sweep harnesses should vary a hammer count: the
     * copies share one *shape*, so the executor compiles and pre-flight
     * lints the program once for the whole sweep (bender/plan.h).
     */
    Program
    withLoopCount(std::size_t loop_index, std::uint64_t count) const
    {
        Program copy = *this;
        copy.setLoopCount(loop_index, count);
        return copy;
    }

    /** Number of loops (LoopBegin instructions) in the program. */
    std::size_t
    loopCount() const
    {
        std::size_t n = 0;
        for (const auto &inst : insts_)
            n += inst.op == Op::LoopBegin ? 1 : 0;
        return n;
    }

    const std::vector<Inst> &insts() const { return insts_; }
    const std::vector<RowData> &dataTable() const { return dataTable_; }
    bool balanced() const { return openLoops_ == 0; }

  private:
    std::vector<Inst> insts_;
    std::vector<RowData> dataTable_;
    int openLoops_ = 0;
};

} // namespace pud::bender

#endif // PUD_BENDER_PROGRAM_H
