/**
 * @file
 * Interpreter for bender test programs against the DRAM device model.
 *
 * The executor issues each instruction at its scheduled time.  For hot
 * hammering loops it uses an exact *loop fast-path*: the body is
 * executed normally for a few warm-up iterations, one steady-state
 * iteration is executed with damage recording enabled, and the
 * recorded per-iteration damage deltas are replayed arithmetically for
 * the remaining trip count.  This is exact under the linear damage-
 * accrual model (verified against naive execution in the tests) and
 * turns multi-hundred-thousand-hammer probes into microsecond work.
 *
 * The fast-path is disabled for loop bodies containing REF (stripe
 * refresh and TRR sampling are iteration-dependent), RD (results must
 * be collected per iteration), or nested loops.
 */

#ifndef PUD_BENDER_EXECUTOR_H
#define PUD_BENDER_EXECUTOR_H

#include <cstdint>
#include <vector>

#include "bender/program.h"
#include "dram/device.h"

namespace pud::bender {

/** Outcome of one program run. */
struct ExecResult
{
    Time startTime = 0;
    Time endTime = 0;
    std::vector<RowData> reads;  //!< one entry per executed Rd
    std::uint64_t fastPathIterations = 0;  //!< iterations skipped via replay
};

/** Executes programs against a Device. */
class Executor
{
  public:
    explicit Executor(dram::Device &device) : device_(&device) {}

    /** Run a program; commands start just after the device's clock. */
    ExecResult run(const Program &program);

    /** Enable/disable the loop fast-path (ablation / verification). */
    void setFastPath(bool on) { fastPath_ = on; }
    bool fastPath() const { return fastPath_; }

    /**
     * Enable/disable the pre-flight lint check: before running, the
     * program is statically analyzed (pud::lint) and error-severity
     * findings -- protocol violations the device would fatal on, bad
     * data indices -- abort the run with a diagnostic instead of
     * failing deep inside the device model.  Defaults to on in debug
     * builds and off in release builds (the analysis walks the whole
     * program and would tax hot characterization loops).
     */
    void setPreflight(bool on) { preflight_ = on; }
    bool preflight() const { return preflight_; }

    /**
     * Additionally run the static disturbance-effect predictor during
     * the pre-flight and warn() on its warning-severity findings (a
     * hammer-grade program that cannot flip bits on the configured
     * module).  Off by default: the predictor's verdicts depend on
     * sweep intent, so harnesses opt in where a full-budget program
     * is known to be checked.  Implies nothing unless the pre-flight
     * itself is enabled.
     */
    void setPreflightEffects(bool on) { preflightEffects_ = on; }
    bool preflightEffects() const { return preflightEffects_; }

    /** Minimum trip count before the fast-path engages. */
    static constexpr std::uint64_t kFastPathThreshold = 8;

  private:
    /**
     * Execute instructions in [begin, end); returns one past the last
     * consumed instruction index.  `cursor` is the running issue time.
     */
    std::size_t execRange(const Program &program, std::size_t begin,
                          std::size_t end, Time &cursor,
                          ExecResult &result);

    void execOne(const Program &program, const Inst &inst, Time &cursor,
                 ExecResult &result);

    /** Whether [begin, end) is fast-path eligible (no Ref/Rd/loops). */
    static bool bodyEligible(const Program &program, std::size_t begin,
                             std::size_t end);

    /** Sum of gaps over [begin, end). */
    static Time bodyDuration(const Program &program, std::size_t begin,
                             std::size_t end);

    /** Find the LoopEnd matching the LoopBegin at `begin_index`. */
    static std::size_t matchEnd(const Program &program,
                                std::size_t begin_index);

    dram::Device *device_;
    bool fastPath_ = true;
#ifdef NDEBUG
    bool preflight_ = false;
#else
    bool preflight_ = true;
#endif
    bool preflightEffects_ = false;
};

} // namespace pud::bender

#endif // PUD_BENDER_EXECUTOR_H
