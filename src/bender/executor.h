/**
 * @file
 * Interpreter for bender test programs against the DRAM device model.
 *
 * The executor issues each instruction at its scheduled time.  Hot
 * loops take an exact *fast-path*: the body runs live for two warm-up
 * iterations, one steady-state iteration is recorded (damage deltas,
 * TRR sampler pushes, REF anchors, touched rows), and the remaining
 * trip count is replayed arithmetically.  Loop bodies containing REF
 * replay iteration by iteration -- TRR RNG draws and refresh counters
 * advance exactly as live execution would, with a *phase break* back
 * to live execution whenever a refresh is about to land on a
 * loop-damaged row -- while REF-free bodies commit the whole remaining
 * count in one step.  Nested loops fast-path inside naive outer
 * iterations, and an outer loop records across its inner loops when
 * the cost model says that wins.  Only RD in the body forces fully
 * naive execution (results are collected per iteration).  All of this
 * is exact under the linear damage-accrual model and verified
 * bit-identical against naive execution in the tests, TRR included.
 *
 * Programs are compiled to an ExecPlan (bender/plan.h) and cached by
 * *shape* -- trip counts excluded -- so an HC_first bisection's dozens
 * of near-identical probes pay compilation and the pre-flight lint
 * once.  Cumulative counters are exposed via stats() for telemetry.
 */

#ifndef PUD_BENDER_EXECUTOR_H
#define PUD_BENDER_EXECUTOR_H

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "bender/plan.h"
#include "bender/program.h"
#include "dram/device.h"
#include "lint/mitigation_absint.h"

namespace pud::bender {

/** Outcome of one program run. */
struct ExecResult
{
    Time startTime = 0;
    Time endTime = 0;
    std::vector<RowData> reads;  //!< one entry per executed Rd
    std::uint64_t fastPathIterations = 0;  //!< iterations skipped via replay
};

/** Cumulative per-executor counters (telemetry). */
struct ExecStats
{
    std::uint64_t fastPathIterations = 0;  //!< replayed, never executed
    std::uint64_t planCacheHits = 0;
    std::uint64_t planCacheMisses = 0;
    std::uint64_t phaseBreaks = 0;  //!< replays interrupted by a refresh
};

/** Executes programs against a Device. */
class Executor
{
  public:
    explicit Executor(dram::Device &device) : device_(&device) {}

    /** Run a program; commands start just after the device's clock. */
    ExecResult run(const Program &program);

    /** Enable/disable the loop fast-path (ablation / verification). */
    void setFastPath(bool on) { fastPath_ = on; }
    bool fastPath() const { return fastPath_; }

    /**
     * Enable/disable the pre-flight lint check: before running, the
     * program is statically analyzed (pud::lint) and error-severity
     * findings -- protocol violations the device would fatal on, bad
     * data indices -- abort the run with a diagnostic instead of
     * failing deep inside the device model.  Defaults to on in debug
     * builds and off in release builds (the analysis walks the whole
     * program and would tax hot characterization loops).  The verdict
     * is cached with the compiled plan, so a given program *shape* is
     * analyzed once, at the trip counts it is first run with.
     */
    void setPreflight(bool on) { preflight_ = on; }
    bool preflight() const { return preflight_; }

    /**
     * Additionally run the static disturbance-effect predictor during
     * the pre-flight and warn() on its warning-severity findings (a
     * hammer-grade program that cannot flip bits on the configured
     * module).  Off by default: the predictor's verdicts depend on
     * sweep intent, so harnesses opt in where a full-budget program
     * is known to be checked.  Implies nothing unless the pre-flight
     * itself is enabled.
     */
    void setPreflightEffects(bool on) { preflightEffects_ = on; }
    bool preflightEffects() const { return preflightEffects_; }

    /**
     * Additionally run the row-state dataflow pass (lint/dataflow.h)
     * during the pre-flight and warn() on its warning-severity
     * findings -- merges over never-written rows, activation groups
     * crossing a subarray boundary, control-row writes stranded across
     * one.  Off by default for the same reason as the effect
     * predictor: reading never-written victim rows is the *point* of a
     * characterization sweep.  Implies nothing unless the pre-flight
     * itself is enabled.
     */
    void setPreflightDataflow(bool on) { preflightDataflow_ = on; }
    bool preflightDataflow() const { return preflightDataflow_; }

    /**
     * Additionally run the mitigation bypass certifier
     * (lint/mitigation_absint.h) against the mechanisms enabled in
     * `spec` during the pre-flight and warn() on its warning-severity
     * findings (a certain or uncertifiable bypass of the assumed
     * mitigations).  An empty spec (no mechanism enabled) disables the
     * pass.  Implies nothing unless the pre-flight itself is enabled.
     */
    void
    setPreflightMitigations(const lint::MitigationSpec &spec)
    {
        preflightMitigations_ = spec;
    }
    const lint::MitigationSpec &
    preflightMitigations() const
    {
        return preflightMitigations_;
    }

    /** Cumulative fast-path / plan-cache counters. */
    const ExecStats &stats() const { return stats_; }

    /** Minimum trip count before the fast-path engages. */
    static constexpr std::uint64_t kFastPathThreshold =
        bender::kFastPathThreshold;

  private:
    /** Look up (or compile + pre-flight) the program's cached plan. */
    const ExecPlan &planFor(const Program &program);

    void preflightCheck(const Program &program);

    /**
     * Execute instructions in [begin, end); returns one past the last
     * consumed instruction index.  `cursor` is the running issue time.
     */
    std::size_t execRange(const Program &program, const ExecPlan &plan,
                          const RunCosts &costs, std::size_t begin,
                          std::size_t end, Time &cursor,
                          ExecResult &result);

    /** Run one counted loop (fast-path or naive). */
    void execLoop(const Program &program, const ExecPlan &plan,
                  const RunCosts &costs, std::size_t loop_index,
                  std::uint64_t n, Time &cursor, ExecResult &result);

    void execOne(const Program &program, const Inst &inst, Time &cursor,
                 ExecResult &result);

    struct CachedPlan
    {
        std::shared_ptr<const ExecPlan> plan;
        bool linted = false;
    };

    dram::Device *device_;
    bool fastPath_ = true;
    /** True while the steady-state iteration of an enclosing loop is
     *  being recorded: nested fast-paths must not engage (replayed
     *  deposits would bypass the recording). */
    bool recording_ = false;
#ifdef NDEBUG
    bool preflight_ = false;
#else
    bool preflight_ = true;
#endif
    bool preflightEffects_ = false;
    bool preflightDataflow_ = false;
    lint::MitigationSpec preflightMitigations_;
    ExecStats stats_;
    std::unordered_map<std::uint64_t, std::vector<CachedPlan>>
        planCache_;
};

} // namespace pud::bender

#endif // PUD_BENDER_EXECUTOR_H
