/**
 * @file
 * The host side of the testing infrastructure (paper Fig. 2): a module
 * socket with a Device, a program Executor, and the temperature rig
 * (heater pads + controller) as a settable environment model.
 */

#ifndef PUD_BENDER_HOST_H
#define PUD_BENDER_HOST_H

#include <memory>

#include "bender/executor.h"
#include "bender/program.h"
#include "dram/device.h"

namespace pud::bender {

/**
 * Model of the heater-pad temperature controller (Maxwell FT20X in the
 * paper's rig).  The real controller holds the chips within a fraction
 * of a degree of the setpoint; settling is modeled as instantaneous.
 */
class TemperatureController
{
  public:
    explicit TemperatureController(dram::Device &device)
        : device_(&device)
    {}

    void
    setTarget(Celsius target)
    {
        if (target < 20.0 || target > 95.0)
            fatal("temperature target %.1fC outside rig range", target);
        device_->setTemperature(target);
    }

    Celsius current() const { return device_->temperature(); }

  private:
    dram::Device *device_;
};

/**
 * One DUT socket: owns the Device, its Executor, and the temperature
 * controller, plus host-DMA row helpers the characterization harness
 * uses for initialization and result collection.
 */
class TestBench
{
  public:
    explicit TestBench(dram::DeviceConfig cfg)
        : device_(std::make_unique<dram::Device>(std::move(cfg))),
          executor_(*device_),
          thermo_(*device_)
    {}

    dram::Device &device() { return *device_; }
    const dram::Device &device() const { return *device_; }
    Executor &executor() { return executor_; }
    TemperatureController &thermo() { return thermo_; }

    ExecResult run(const Program &p) { return executor_.run(p); }

    /**
     * Re-seed the socket for the next module instance without
     * reconstructing the Device arena: O(populated rows), and the
     * Executor's shape-keyed plan cache stays warm (plans depend only
     * on program shape, never on module state).
     */
    void reset(std::uint64_t seed) { device_->reset(seed); }

    void
    writeRow(BankId bank, RowId row, const RowData &data)
    {
        device_->writeRowDirect(bank, row, data);
    }

    void
    fillRow(BankId bank, RowId row, dram::DataPattern pattern)
    {
        device_->writeRowDirect(
            bank, row, RowData(device_->config().cols, pattern));
    }

    RowData
    readRow(BankId bank, RowId row) const
    {
        return device_->readRowDirect(bank, row);
    }

    /** Count bitflips of a row against its expected contents. */
    std::size_t
    countBitflips(BankId bank, RowId row, const RowData &expected) const
    {
        return readRow(bank, row).diffCount(expected);
    }

  private:
    std::unique_ptr<dram::Device> device_;
    Executor executor_;
    TemperatureController thermo_;
};

} // namespace pud::bender

#endif // PUD_BENDER_HOST_H
