/**
 * @file
 * Declarative operation semantics of the PuD macro-ops.
 *
 * Every PuD primitive -- CoMRA copy, SiMRA group write, replicated
 * majority -- has *row-state* side effects beyond its timing behaviour:
 * rows are read, overwritten, or clobbered, and whether a replicated
 * majority can ever tie depends only on the replication weights.  This
 * header captures those effects as pure functions over physical row
 * addresses and bank geometry, with no device or policy state.
 *
 * Two consumers keep each other honest:
 *
 *  - pud::ops::PudEngine validates and accounts every macro-op through
 *    this table before issuing commands, and
 *  - pud::lint's row-state dataflow pass (lint/dataflow.h) interprets
 *    bender programs abstractly against the *same* table,
 *
 * so the static analyzer and the dynamic engine cannot drift: a
 * geometry rule added here is enforced in both worlds at once, and the
 * differential checker (check/diffcheck.h) asserts the agreement on
 * randomized programs.
 */

#ifndef PUD_PUD_SEMANTICS_H
#define PUD_PUD_SEMANTICS_H

#include <optional>
#include <utility>
#include <vector>

#include "dram/config.h"
#include "dram/simra_decoder.h"
#include "dram/timing.h"
#include "dram/types.h"
#include "util/units.h"

namespace pud::semantics {

using dram::RowId;
using dram::SubarrayId;

/** Bank geometry, decoupled from a live Device. */
struct Geometry
{
    RowId rowsPerSubarray = 0;
    RowId rowsPerBank = 0;
    bool supportsSimra = false;

    SubarrayId
    subarrayOf(RowId phys) const
    {
        return phys / rowsPerSubarray;
    }

    bool
    sameSubarray(RowId a, RowId b) const
    {
        return subarrayOf(a) == subarrayOf(b);
    }

    bool
    contains(RowId phys) const
    {
        return phys < rowsPerBank;
    }
};

/** Extract the geometry of one bank from a device configuration. */
Geometry geometryOf(const dram::DeviceConfig &cfg);

/**
 * How an ACT following a pending (PRE'd but unclassified) close
 * resolves.  This is the single definition of the CoMRA/SiMRA timing
 * windows, mirrored by Device::act and consumed by the lint walkers.
 */
enum class ReopenClass : std::uint8_t
{
    /** Plain reopen: the pending close resolves conventionally. */
    Conventional,

    /**
     * CoMRA window hit (full tRAS restore, PRE->ACT at most
     * comraMaxPreToAct, same subarray, different row): the destination
     * row latches the source's bitline charge -- an in-DRAM copy.
     */
    ComraCopy,

    /**
     * SiMRA window hit (t_AggOn at most simraMaxActToPre, PRE->ACT at
     * most simraMaxPreToAct, same subarray) and the decoder resolves a
     * multi-row set: the group opens and every bitline resolves to the
     * majority of the activated cells.
     */
    SimraGroup,

    /**
     * SiMRA-grade violations on a chip that ignores grossly violating
     * commands: the quick PRE and the new ACT have no effect and the
     * previous row stays open.
     */
    SimraIgnored,
};

/**
 * Classify the reopen of one bank: the previous open lasted `t_on`,
 * the bank sat precharged for `gap`, and the new ACT targets
 * `next_phys` after the previous open of `prev_phys`.  Pure function
 * of the timing parameters and geometry; `prev_phys` must be the
 * single pending row (multi-row pendings never reclassify).
 */
ReopenClass classifyReopen(const dram::TimingParams &t,
                           const Geometry &g, RowId prev_phys,
                           RowId next_phys, Time t_on, Time gap);

/** The simultaneously-activated physical row set of an ACT-PRE-ACT pair. */
std::vector<RowId> simraActivatedSet(const Geometry &g, RowId r1,
                                     RowId r2);

/**
 * One macro-op's row-state footprint: which physical rows it consumes,
 * which it leaves holding a defined value, and which it leaves with
 * contents no caller may rely on.  Invalid operations carry a static
 * reason and empty row sets (a rejected op must not touch DRAM).
 */
struct MacroEffect
{
    bool valid = false;
    const char *reason = "";         //!< why invalid (static text)
    std::vector<RowId> reads;        //!< rows whose contents are consumed
    std::vector<RowId> writes;       //!< rows ending with a defined value
    std::vector<RowId> clobbered;    //!< rows ending undefined

    static MacroEffect
    reject(const char *why)
    {
        MacroEffect e;
        e.reason = why;
        return e;
    }
};

/** RowClone copy src -> dst (both physical). */
MacroEffect comraCopy(const Geometry &g, RowId src_phys, RowId dst_phys);

/**
 * SiMRA group write: open the n-aligned block containing `block_phys`
 * and overwrite every row.  `writes` is the whole block (base first).
 */
MacroEffect simraGroupWrite(const Geometry &g, RowId block_phys, int n);

/**
 * Can a weighted bitline majority tie?  True iff some non-empty,
 * non-full subset of the weights sums to exactly n/2 (n even); the
 * bitline then floats at half charge and the resolved bit is undefined
 * on real chips.  The engine's canonical replications -- (3,3,2) for
 * MAJ3, (4,3,3,3,3) for MAJ5 -- are tie-free by construction.
 */
bool tieable(const std::vector<int> &weights, int n);

/** Fully-expanded plan of one replicated-majority macro-op. */
struct MajorityPlan
{
    MacroEffect effect;

    /** Physical base of the n-aligned scratch block. */
    RowId base = 0;

    /** Staging RowClone copies, in issue order: (src, dst) physical. */
    std::vector<std::pair<RowId, RowId>> staging;

    /** True when the replication weights admit a bitline tie. */
    bool tieable = false;
};

/**
 * Validate and expand a replicated majority: operands staged into the
 * n-aligned block containing `scratch_phys` with the given per-operand
 * replication counts, then one SiMRA group activation resolves the
 * weighted majority into every block row.  All geometry rules (counts
 * positive and summing to n, block inside one subarray, operands in
 * the block's subarray) are checked before any row set is emitted.
 */
MajorityPlan
replicatedMajorityPlan(const Geometry &g,
                       const std::vector<RowId> &operands_phys,
                       const std::vector<int> &replication,
                       RowId scratch_phys, int n);

/**
 * The in-subarray control row flanking the 8-aligned block containing
 * `scratch_phys`: the row after the block when that stays inside the
 * subarray, otherwise the row before.  nullopt when no valid flank
 * exists (block crosses the subarray edge, or the subarray is exactly
 * the block).  Validating *both* candidates before returning is what
 * fixes the historic control-row clobber: `base - 1` underflows RowId
 * at physical row 0 and crosses into the previous subarray whenever
 * the block is the first of its subarray.
 */
std::optional<RowId> andOrControlRow(const Geometry &g,
                                     RowId scratch_phys);

} // namespace pud::semantics

#endif // PUD_PUD_SEMANTICS_H
