/**
 * @file
 * The Processing-using-DRAM operations library: the in-DRAM compute
 * primitives whose read-disturbance side effects the paper
 * characterizes (§2.3).
 *
 * Everything here is built from the same two violated-timing
 * mechanisms the characterization uses:
 *
 *  - RowClone copy (CoMRA): ACT src, PRE, ACT dst under a violated
 *    tRP copies src's bitline charge into dst (Seshadri+ MICRO'13;
 *    demonstrated on COTS chips by ComputeDRAM and follow-ups).
 *  - Simultaneous multi-row activation (SiMRA): ACT-PRE-ACT with both
 *    gaps grossly violated opens a 2^k-row group; the sense
 *    amplifiers resolve each bitline to the *majority* of the
 *    activated cells (Ambit-style charge sharing), and a following WR
 *    overwrites the whole group.
 *
 * Multi-input majority — and therefore AND/OR/MAJ3/MAJ5 — is obtained
 * by *replicating* operands across the rows of an activation block
 * with tie-free replication counts, exactly as done on real chips
 * (Yuksel et al., HPCA'24 / DSN'24).
 *
 * Every operation is accounted: the engine counts CoMRA and SiMRA
 * operations (the currency of the paper's §8 mitigations) and can
 * enforce a ComputeRegionPolicy (§8.1 countermeasure 1), injecting
 * the policy's compute-row refreshes.
 */

#ifndef PUD_PUD_ENGINE_H
#define PUD_PUD_ENGINE_H

#include <cstdint>
#include <optional>
#include <vector>

#include "bender/host.h"
#include "mitigation/countermeasures.h"
#include "pud/semantics.h"

namespace pud::ops {

using dram::BankId;
using dram::RowData;
using dram::RowId;

/** Operation accounting (maps onto PRAC weighted counting, §8.2). */
struct OpStats
{
    std::uint64_t copies = 0;        //!< CoMRA copy cycles issued
    std::uint64_t simraOps = 0;      //!< SiMRA activations issued
    std::uint64_t policyRefreshes = 0;  //!< compute-row refreshes injected
    std::uint64_t rejected = 0;      //!< operations blocked by policy
};

/**
 * In-DRAM compute engine for one bank of one module.
 *
 * Rows are addressed logically (as the memory controller sees them);
 * the engine takes care of command sequences and timing violations.
 */
class PudEngine
{
  public:
    /**
     * @param bench the testbench holding the target module
     * @param bank  target bank
     */
    PudEngine(bender::TestBench &bench, BankId bank);

    // ---- data movement ---------------------------------------------------

    /**
     * RowClone: copy src's contents to dst.  Both rows must be in the
     * same subarray.  @return false if the chip did not perform the
     * copy (wrong geometry) or the policy rejected it.
     */
    bool copy(RowId src, RowId dst);

    /**
     * Copy src's contents into every row of the N-row activation block
     * containing `block_row` (N in {2,4,8,16,32}): one SiMRA group
     * open plus a WR, the multi-destination copy of DSN'24.
     */
    bool broadcast(RowId src, RowId block_row, int n);

    /** Fill a row with a constant (host-side initialization). */
    void fill(RowId row, bool value);

    // ---- bitwise computation ----------------------------------------------

    /**
     * Three-input bitwise majority into an 8-row activation block:
     * operands are replicated (3, 3, 2) so no bitline ever ties.  The
     * result lands in every row of the block; it is also returned.
     *
     * @param scratch_block any row inside a free 8-aligned block in
     *        the same subarray as the operands
     */
    std::optional<RowData> maj3(RowId a, RowId b, RowId c,
                                RowId scratch_block);

    /** Five-input majority via a 16-row block, replication (4,3,3,3,3). */
    std::optional<RowData> maj5(RowId a, RowId b, RowId c, RowId d,
                                RowId e, RowId scratch_block);

    /** Bitwise AND via MAJ3 with an all-zeros control row. */
    std::optional<RowData> bitAnd(RowId a, RowId b, RowId scratch_block);

    /** Bitwise OR via MAJ3 with an all-ones control row. */
    std::optional<RowData> bitOr(RowId a, RowId b, RowId scratch_block);

    /**
     * Open the N-row activation block containing block_row and write
     * `data` into every row (N in {2,4,8,16,32}, power of two, block
     * within one subarray); false (no DRAM mutation) otherwise.
     */
    bool groupWrite(RowId block_row, int n, const RowData &data);

    /**
     * Generic replicated-majority into the n-aligned block containing
     * scratch_block: operands are staged via RowClone with the given
     * per-operand replication counts, then one SiMRA group activation
     * resolves the weighted majority.  The replication vector must
     * have one positive count per operand summing exactly to n, every
     * operand must share the block's subarray, and the policy must
     * allow every staging copy -- all validated *before* any DRAM
     * state changes; failures return nullopt and count in
     * stats().rejected.
     */
    std::optional<RowData>
    replicatedMajority(const std::vector<RowId> &operands,
                       const std::vector<int> &replication,
                       RowId scratch_block, int n);

    // ---- policy / accounting ----------------------------------------------

    /**
     * Enforce a compute-region policy (§8.1): operations whose rows
     * violate the region rules are rejected, and the policy's
     * per-operation compute-row refreshes are injected.  The policy's
     * row offsets are interpreted within `subarray`.
     */
    void setPolicy(mitigation::ComputeRegionPolicy *policy,
                   dram::SubarrayId subarray);

    const OpStats &stats() const { return stats_; }
    BankId bank() const { return bank_; }

  private:
    RowId subarrayOffset(RowId logical) const;
    bool policyAllowsComra(RowId src, RowId dst);
    bool policyAllowsSimra(const std::vector<RowId> &rows_physical);
    void policyOnSimraOp();

    /** Issue one RowClone command sequence (no policy check). */
    void issueCopy(RowId src, RowId dst);

    /**
     * Pick the control row flanking the 8-row block that holds
     * scratch_block, staying inside its subarray; nullopt (counted in
     * stats_.rejected) when no valid flank exists, *before* any state
     * is mutated.
     */
    std::optional<RowId> andOrCtrlRow(RowId scratch_block);

    bender::TestBench *bench_;
    BankId bank_;
    /** Geometry snapshot feeding the pud::semantics op table. */
    semantics::Geometry geom_;
    mitigation::ComputeRegionPolicy *policy_ = nullptr;
    dram::SubarrayId policySubarray_ = 0;
    OpStats stats_;
};

} // namespace pud::ops

#endif // PUD_PUD_ENGINE_H
