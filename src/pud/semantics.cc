#include "pud/semantics.h"

#include <algorithm>

namespace pud::semantics {

Geometry
geometryOf(const dram::DeviceConfig &cfg)
{
    Geometry g;
    g.rowsPerSubarray = cfg.rowsPerSubarray;
    g.rowsPerBank = cfg.rowsPerBank();
    g.supportsSimra = cfg.profile.supportsSimra;
    return g;
}

ReopenClass
classifyReopen(const dram::TimingParams &t, const Geometry &g,
               RowId prev_phys, RowId next_phys, Time t_on, Time gap)
{
    const bool same_sub = g.sameSubarray(prev_phys, next_phys);

    if (same_sub && t_on <= t.simraMaxActToPre &&
        gap <= t.simraMaxPreToAct) {
        if (!g.supportsSimra)
            return ReopenClass::SimraIgnored;
        // A degenerate pair (same row reissued) resolves to a single
        // wordline and falls through to the conventional/CoMRA rules.
        if (simraActivatedSet(g, prev_phys, next_phys).size() > 1)
            return ReopenClass::SimraGroup;
    }

    if (same_sub && prev_phys != next_phys &&
        t_on >= t.tRAS - units::ns && gap <= t.comraMaxPreToAct)
        return ReopenClass::ComraCopy;

    return ReopenClass::Conventional;
}

std::vector<RowId>
simraActivatedSet(const Geometry &g, RowId r1, RowId r2)
{
    return dram::SimraDecoder(g.rowsPerSubarray).activatedSet(r1, r2);
}

MacroEffect
comraCopy(const Geometry &g, RowId src_phys, RowId dst_phys)
{
    if (!g.contains(src_phys) || !g.contains(dst_phys))
        return MacroEffect::reject("row outside the bank");
    if (src_phys == dst_phys)
        return MacroEffect::reject("source and destination are the "
                                   "same row");
    if (!g.sameSubarray(src_phys, dst_phys))
        return MacroEffect::reject("source and destination are in "
                                   "different subarrays: the bitline "
                                   "charge cannot cross");
    MacroEffect e;
    e.valid = true;
    e.reads = {src_phys};
    e.writes = {dst_phys};
    return e;
}

MacroEffect
simraGroupWrite(const Geometry &g, RowId block_phys, int n)
{
    if (!g.supportsSimra)
        return MacroEffect::reject("module ignores grossly violating "
                                   "commands (no SiMRA support)");
    if (n < 2 || n > 32 || (n & (n - 1)) != 0)
        return MacroEffect::reject("group size must be a power of two "
                                   "in [2, 32]");
    if (!g.contains(block_phys))
        return MacroEffect::reject("row outside the bank");
    const RowId base = block_phys & ~static_cast<RowId>(n - 1);
    if (!g.sameSubarray(base, base + static_cast<RowId>(n - 1)))
        return MacroEffect::reject("activation block crosses a "
                                   "subarray boundary");
    MacroEffect e;
    e.valid = true;
    e.writes.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
        e.writes.push_back(base + static_cast<RowId>(i));
    return e;
}

bool
tieable(const std::vector<int> &weights, int n)
{
    if (n <= 0 || n % 2 != 0)
        return false;
    const int half = n / 2;
    // Subset-sum over the weights: reachable[s] = some subset sums to
    // s.  A tie needs a non-empty, non-full subset (both sides of the
    // split must disagree, so both must exist).
    std::vector<char> reachable(static_cast<std::size_t>(half) + 1, 0);
    reachable[0] = 1;
    int total = 0;
    for (int w : weights) {
        if (w <= 0)
            continue;
        total += w;
        for (int s = half; s >= w; --s)
            reachable[static_cast<std::size_t>(s)] |=
                reachable[static_cast<std::size_t>(s - w)];
    }
    // A subset summing to half is non-full iff the total exceeds half,
    // i.e. the complement is non-empty.
    return total > half && reachable[static_cast<std::size_t>(half)];
}

MajorityPlan
replicatedMajorityPlan(const Geometry &g,
                       const std::vector<RowId> &operands_phys,
                       const std::vector<int> &replication,
                       RowId scratch_phys, int n)
{
    MajorityPlan plan;

    const MacroEffect block = simraGroupWrite(g, scratch_phys, n);
    if (!block.valid) {
        plan.effect = block;
        return plan;
    }
    if (operands_phys.empty() ||
        replication.size() != operands_phys.size()) {
        plan.effect = MacroEffect::reject(
            "replication vector must hold one count per operand");
        return plan;
    }
    int total = 0;
    for (int r : replication) {
        if (r <= 0) {
            plan.effect = MacroEffect::reject(
                "replication counts must be positive");
            return plan;
        }
        total += r;
    }
    if (total != n) {
        plan.effect = MacroEffect::reject(
            "replication counts must sum to the block size");
        return plan;
    }

    const RowId base = block.writes.front();
    for (RowId operand : operands_phys) {
        if (!g.contains(operand)) {
            plan.effect = MacroEffect::reject("row outside the bank");
            return plan;
        }
        if (!g.sameSubarray(operand, base)) {
            plan.effect = MacroEffect::reject(
                "operand and scratch block are in different "
                "subarrays");
            return plan;
        }
    }

    plan.base = base;
    plan.tieable = tieable(replication, n);
    plan.staging.reserve(static_cast<std::size_t>(n));
    int slot = 0;
    for (std::size_t o = 0; o < operands_phys.size(); ++o)
        for (int r = 0; r < replication[o]; ++r)
            plan.staging.emplace_back(
                operands_phys[o], base + static_cast<RowId>(slot++));

    plan.effect.valid = true;
    plan.effect.reads = operands_phys;
    std::sort(plan.effect.reads.begin(), plan.effect.reads.end());
    plan.effect.reads.erase(std::unique(plan.effect.reads.begin(),
                                        plan.effect.reads.end()),
                            plan.effect.reads.end());
    if (plan.tieable) {
        plan.effect.clobbered = block.writes;
    } else {
        plan.effect.writes = block.writes;
    }
    return plan;
}

std::optional<RowId>
andOrControlRow(const Geometry &g, RowId scratch_phys)
{
    if (!g.contains(scratch_phys))
        return std::nullopt;
    const RowId base = scratch_phys & ~RowId(7);
    const RowId rps = g.rowsPerSubarray;
    const RowId sub_begin = (base / rps) * rps;
    const RowId sub_end = sub_begin + rps;
    if (base + 8 > sub_end)
        return std::nullopt;  // block itself crosses the subarray edge
    if (base + 8 < sub_end)
        return base + 8;
    if (base > sub_begin)
        return base - 1;
    // rowsPerSubarray == 8: the block spans the whole subarray and no
    // in-subarray control row exists on either side.
    return std::nullopt;
}

} // namespace pud::semantics
